package daydream_test

import (
	"testing"
	"time"

	"daydream"
	"daydream/internal/dnn"
)

func TestCollectAndBuild(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Model != "ResNet-50" || tr.IterationTime <= 0 {
		t.Fatalf("trace = %s/%v", tr.Model, tr.IterationTime)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() == 0 {
		t.Fatal("empty graph")
	}
	replay, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	rel := float64(replay-tr.IterationTime) / float64(tr.IterationTime)
	if rel < -0.01 || rel > 0.01 {
		t.Fatalf("replay %v vs traced %v", replay, tr.IterationTime)
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := daydream.Collect(daydream.CollectConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := daydream.Collect(daydream.CollectConfig{Model: "nope"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50", Device: "tpu"}); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50", Framework: "tf"}); err == nil {
		t.Error("unknown framework accepted")
	}
}

func TestCollectCustomModel(t *testing.T) {
	m := dnn.ResNet50(16) // non-default batch
	tr, err := daydream.Collect(daydream.CollectConfig{CustomModel: m})
	if err != nil {
		t.Fatal(err)
	}
	if tr.BatchSize != 16 {
		t.Fatalf("batch = %d, want 16", tr.BatchSize)
	}
}

func TestCollectDevices(t *testing.T) {
	fast, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50", Device: "v100"})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50", Device: "p4000"})
	if err != nil {
		t.Fatal(err)
	}
	if fast.IterationTime >= slow.IterationTime {
		t.Fatalf("V100 (%v) not faster than P4000 (%v)", fast.IterationTime, slow.IterationTime)
	}
}

func TestCompareAMP(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	base, pred, err := daydream.Compare(g, func(c *daydream.Graph) error {
		daydream.AMP(c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred >= base {
		t.Fatalf("AMP predicted no gain: %v vs %v", pred, base)
	}
	// Compare must not mutate the input graph.
	again, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Fatal("Compare mutated the baseline graph")
	}
}

func TestDistributedAPI(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "gnmt"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	topo := daydream.NewTopology(4, 2, 10)
	if topo.TotalGPUs() != 8 {
		t.Fatal("topology wrong")
	}
	base, pred, err := daydream.Compare(g, func(c *daydream.Graph) error {
		return daydream.Distributed(c, topo)
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred <= base {
		t.Fatal("communication predicted free")
	}
}

func TestP3PredictionAPI(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{
		Model: "vgg19", Device: "p4000", Framework: "mxnet",
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := daydream.P3Prediction(g, daydream.NewTopology(4, 1, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if iter <= 0 {
		t.Fatal("non-positive P3 prediction")
	}
	fifo, err := daydream.P3Prediction(g, daydream.NewTopology(4, 1, 5), -1)
	if err != nil {
		t.Fatal(err)
	}
	if iter > fifo {
		t.Fatalf("P3 (%v) should not lose to FIFO (%v)", iter, fifo)
	}
}

func TestFusedAdamAndReconAPI(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-base"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	base, pred, err := daydream.Compare(g, daydream.FusedAdam)
	if err != nil {
		t.Fatal(err)
	}
	if pred >= base {
		t.Fatal("FusedAdam predicted no gain on BERT")
	}

	dtr, err := daydream.Collect(daydream.CollectConfig{Model: "densenet121", Framework: "caffe"})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := daydream.BuildGraph(dtr)
	if err != nil {
		t.Fatal(err)
	}
	base, pred, err = daydream.Compare(dg, daydream.ReconBatchnorm)
	if err != nil {
		t.Fatal(err)
	}
	if pred >= base {
		t.Fatal("reconstruction predicted no gain on DenseNet")
	}
}

func TestModelNames(t *testing.T) {
	names := daydream.ModelNames()
	if len(names) != 7 {
		t.Fatalf("zoo = %v", names)
	}
	if _, err := daydream.ModelByName(names[0]); err != nil {
		t.Fatal(err)
	}
}

func TestGbps(t *testing.T) {
	if daydream.Gbps(8) != 1e9 {
		t.Fatal("Gbps conversion wrong")
	}
}

func TestBreakdownAPI(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50", MixedPrecision: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Precision != "fp16" {
		t.Fatalf("precision = %q", tr.Precision)
	}
	b := daydream.ComputeBreakdown(tr)
	if b.Total() != tr.IterationTime {
		t.Fatal("breakdown doesn't add up")
	}
	_ = time.Duration(0)
}
