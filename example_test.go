package daydream_test

import (
	"fmt"
	"log"

	"daydream"
)

// The model zoo covers the paper's Table 2 plus a Transformer.
func ExampleModelNames() {
	for _, n := range daydream.ModelNames() {
		fmt.Println(n)
	}
	// Output:
	// bert-base
	// bert-large
	// densenet121
	// gnmt
	// resnet50
	// transformer
	// vgg19
}

// Gbps converts link rates for Topology bandwidth fields.
func ExampleGbps() {
	fmt.Printf("%.0f bytes/s\n", daydream.Gbps(10))
	// Output:
	// 1250000000 bytes/s
}

// Collect profiles one training iteration on the synthetic substrate.
func ExampleCollect() {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.Model, tr.Device, tr.Precision, tr.BatchSize)
	// Output:
	// ResNet-50 GeForce RTX 2080 Ti fp32 64
}

// Compare answers a what-if question without mutating the baseline graph.
func ExampleCompare() {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
	if err != nil {
		log.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		log.Fatal(err)
	}
	base, pred, err := daydream.Compare(g, func(c *daydream.Graph) error {
		daydream.AMP(c)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AMP predicted faster:", pred < base)
	// Output:
	// AMP predicted faster: true
}

// NewTopology describes the clusters of the paper's Figure 8.
func ExampleNewTopology() {
	topo := daydream.NewTopology(4, 2, 10)
	fmt.Println(topo.String(), topo.TotalGPUs())
	// Output:
	// 4x2 8
}
