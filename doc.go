// Package daydream is a Go reproduction of "Daydream: Accurately
// Estimating the Efficacy of Optimizations for DNN Training" (Zhu,
// Phanishayee, Pekhimenko — USENIX ATC 2020).
//
// Daydream answers what-if questions about DNN training performance
// ("will mixed precision help my model?", "how will training scale to 16
// GPUs on a 10 Gbps network?") without implementing the optimizations. It
// works in four phases:
//
//  1. Collect a kernel-level trace of one training iteration (CUPTI-shaped
//     records plus per-layer instrumentation). In this reproduction the
//     trace comes from a deterministic synthetic training executor that
//     substitutes for real GPUs — see DESIGN.md for the substitution
//     argument.
//  2. Build a kernel-granularity dependency graph with the paper's five
//     dependency types, and map tasks to DNN layers without synchronization.
//  3. Transform the graph to model an optimization, using the primitives
//     Select, Scale, Insert, Remove and custom schedulers.
//  4. Simulate the transformed graph (the paper's Algorithm 1) to predict
//     the new iteration time.
//
// The basic flow:
//
//	tr, _ := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
//	g, _ := daydream.BuildGraph(tr)
//	pred := g.Clone()
//	daydream.AMP(pred)
//	t, _ := pred.PredictIteration()
//	fmt.Printf("AMP would change %v to %v\n", tr.IterationTime, t)
//
// Because a single profile answers arbitrarily many what-if questions,
// the package is built to make each additional question cheap. The
// dependency graph uses dense slice-indexed storage (task IDs are array
// indices, adjacency is CSR-style on the tasks), so Clone is a
// near-memcpy and Simulate runs a binary-heap frontier over flat arrays.
// Scenarios that never touch graph structure — AMP, fused optimizers,
// kernel profiles, device upgrades, duration grids — skip even the
// clone: a copy-on-write Overlay records per-task duration/gap/priority
// deltas over the shared immutable baseline and simulates through them,
// bit-identical to clone-and-mutate at a fraction of the cost. Sweep
// fans a whole scenario grid out over a worker pool sharing one
// baseline, dispatching each scenario to the overlay path
// (ScaleTransform) or the clone path (Transform):
//
//	results, _ := daydream.Sweep(g, []daydream.Scenario{
//	    {Name: "amp", ScaleTransform: func(o *daydream.Overlay) error {
//	        daydream.AMPOverlay(o); return nil
//	    }},
//	    {Name: "4x2 @10Gbps", Transform: func(c *daydream.Graph) (*daydream.Graph, error) {
//	        return c, daydream.Distributed(c, daydream.NewTopology(4, 2, 10))
//	    }},
//	})
//
// See the examples/ directory for complete programs, and cmd/daydream-bench
// for the harness that regenerates every table and figure of the paper's
// evaluation (its -micro mode writes pipeline benchmarks to BENCH.json,
// and -against gates CI on trajectory regressions).
package daydream
