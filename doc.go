// Package daydream is a Go reproduction of "Daydream: Accurately
// Estimating the Efficacy of Optimizations for DNN Training" (Zhu,
// Phanishayee, Pekhimenko — USENIX ATC 2020).
//
// Daydream answers what-if questions about DNN training performance
// ("will mixed precision help my model?", "how will training scale to 16
// GPUs on a 10 Gbps network?") without implementing the optimizations. It
// works in four phases:
//
//  1. Collect a kernel-level trace of one training iteration (CUPTI-shaped
//     records plus per-layer instrumentation). In this reproduction the
//     trace comes from a deterministic synthetic training executor that
//     substitutes for real GPUs — see DESIGN.md for the substitution
//     argument.
//  2. Build a kernel-granularity dependency graph with the paper's five
//     dependency types, and map tasks to DNN layers without synchronization.
//  3. Transform the graph to model an optimization, using the primitives
//     Select, Scale, Insert, Remove and custom schedulers.
//  4. Simulate the transformed graph (the paper's Algorithm 1) to predict
//     the new iteration time.
//
// The basic flow asks questions with first-class Optimization values:
//
//	tr, _ := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
//	g, _ := daydream.BuildGraph(tr)
//	base, pred, _ := daydream.Compare(g, daydream.OptAMP())
//	fmt.Printf("AMP would change %v to %v\n", base, pred)
//
// Every optimization model is an Optimization value (OptAMP,
// OptFusedAdam, OptReconBatchnorm, OptDistributed, OptP3,
// OptDeviceUpgrade, OptKernelProfile, OptScale), and Stack composes
// several into one composed what-if, the way the paper evaluates
// optimization combinations:
//
//	both := daydream.Stack(daydream.OptAMP(), daydream.OptFusedAdam())
//	base, pred, _ = daydream.Compare(g, both)
//
// A value is self-describing — it knows its name and whether it only
// rewrites task timings (TimingOnly) or changes graph structure
// (Structural) — and applies itself through one unified surface:
// Apply(*Patch). A Patch is a copy-on-write view of the shared
// immutable baseline layering structural deltas (task additions in an
// appendix ID range, task removals, edge additions/removals with
// kinds) on top of an Overlay's timing deltas, and Patch.Simulate runs
// Algorithm 1 over the composite view bit-identically to cloning and
// mutating — so no optimization ever needs a clone. The registry
// (Optimizations, OptimizationByName, ParseOptimization) resolves names
// and "amp+fusedadam"-style stack expressions (duplicate names are
// rejected), and TimingOptimization / PatchOptimization /
// StructuralOptimization build custom values that compose with the
// built-ins.
//
// Because a single profile answers arbitrarily many what-if questions,
// the package is built to make each additional question cheap. The
// dependency graph uses dense slice-indexed storage (task IDs are array
// indices, adjacency is CSR-style on the tasks), so Clone is a
// near-memcpy and Simulate runs a binary-heap frontier over flat
// arrays; a Patch simulates timing-only edits on the pure-overlay fast
// path and structural edits through masked/appendix arrays. Sweep fans
// a whole scenario grid out over a worker pool sharing one baseline,
// with every Opt on the clone-free patch path — only graph-replacing
// rewriters (OptP3's Repeat form) and legacy in-place transforms get a
// private clone:
//
//	results, _ := daydream.Sweep(g, []daydream.Scenario{
//	    {Opt: daydream.OptAMP()},                                  // timing tier
//	    {Opt: both},                                               // one shared patch
//	    {Opt: daydream.OptDistributed(daydream.NewTopology(4, 2, 10))}, // structural deltas, no clone
//	})
//
// Scheduling policies are first-class too. A Scheduler overrides
// Algorithm 1's schedule(): Pick(frontier, ctx) returns the index of
// the frontier task to dispatch and reads the simulation's effective
// state — timings, priorities, earliest starts — through the
// SchedContext, which makes policies view-generic: the same policy runs
// clone-free over a Graph, an Overlay or a structural Patch,
// bit-identical to scheduling the materialized graph. Supply one with
// WithScheduler (directly or in a Scenario's SimOptions), or let the
// optimization carry its own (OptVDNN pairs vDNN's offload/prefetch
// surgery with its copy-stream policy via core.SchedulerCarrier).
// Pre-TaskView schedulers (the Pick(frontier, effStart) *Task shape)
// wrap with AdaptScheduler; since they read raw Task fields, they are
// rejected where those fields diverge from the view — priority
// overlays, and any timing overlay on a structural patch — instead of
// silently diverging.
// KeepSims consumers diagnose any scenario without materializing:
// CriticalPath and DiagnoseSim walk the effective adjacency of the
// TaskView the simulation ran over.
//
// Migration from the previous per-path interface: the ApplyOverlay and
// ApplyGraph methods are now package-level adapters in internal/core
// synthesized from Apply (core.ApplyOverlay(opt, o) errors if the
// value records structural deltas; core.ApplyGraph(opt, g)
// materializes the patch into g), GraphRewriter is unchanged, and
// Measurer / Scenario.Measure take a read-only TaskView (a *Graph or
// *Patch) instead of a *Graph. The pre-Optimization API also remains:
// the free functions (AMP, FusedAdam, Distributed, …), their *Overlay
// forms, and the func-typed Compare / CompareScale /
// Scenario.Transform / Scenario.ScaleTransform shapes all still
// compile and behave identically — they are the same models the values
// wrap, and Compare additionally accepts a one-off func(*Patch) error.
//
// See the examples/ directory for complete programs, and cmd/daydream-bench
// for the harness that regenerates every table and figure of the paper's
// evaluation (its -micro mode writes pipeline benchmarks to BENCH.json,
// and -against gates CI on trajectory regressions).
package daydream
