package daydream_test

import (
	"strings"
	"sync"
	"testing"

	"daydream"
)

// profileGraph is the shared fixture: one profiled model graph.
func profileGraph(tb testing.TB, model string) *daydream.Graph {
	tb.Helper()
	tr, err := daydream.Collect(daydream.CollectConfig{Model: model})
	if err != nil {
		tb.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// TestCompareAcceptsEveryWhatIfForm pins the unified Compare: the
// Optimization value, the legacy structural func, and the overlay func
// all predict bit-identically for the same optimization.
func TestCompareAcceptsEveryWhatIfForm(t *testing.T) {
	g := profileGraph(t, "resnet50")
	base1, fromOpt, err := daydream.Compare(g, daydream.OptAMP())
	if err != nil {
		t.Fatal(err)
	}
	base2, fromFunc, err := daydream.Compare(g, func(c *daydream.Graph) error {
		daydream.AMP(c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	base3, fromOverlay, err := daydream.Compare(g, func(o *daydream.Overlay) error {
		daydream.AMPOverlay(o)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if base1 != base2 || base2 != base3 {
		t.Fatalf("baselines disagree: %v, %v, %v", base1, base2, base3)
	}
	if fromOpt != fromFunc || fromOpt != fromOverlay {
		t.Fatalf("predictions disagree: opt %v, func %v, overlay %v", fromOpt, fromFunc, fromOverlay)
	}
	if fromOpt >= base1 {
		t.Fatalf("AMP predicted no gain: %v vs %v", fromOpt, base1)
	}
	if _, _, err := daydream.Compare(g, 42); err == nil {
		t.Fatal("Compare accepted a non-what-if value")
	}
	if _, _, err := daydream.Compare(g, nil); err == nil {
		t.Fatal("Compare accepted a nil what-if")
	}
	var nilGraphFn func(*daydream.Graph) error
	if _, _, err := daydream.Compare(g, nilGraphFn); err == nil {
		t.Fatal("Compare accepted a typed-nil graph func")
	}
	var nilOverlayFn func(*daydream.Overlay) error
	if _, _, err := daydream.Compare(g, nilOverlayFn); err == nil {
		t.Fatal("Compare accepted a typed-nil overlay func")
	}

	// Defined function types keep working, as they did when Compare's
	// parameter was the function type itself.
	type myWhatIf func(*daydream.Graph) error
	_, fromDefined, err := daydream.Compare(g, myWhatIf(func(c *daydream.Graph) error {
		daydream.AMP(c)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if fromDefined != fromOpt {
		t.Fatalf("defined func type predicts %v, want %v", fromDefined, fromOpt)
	}
}

// TestCompareNoopStack pins the no-op fast path: an empty Stack reports
// the baseline on both sides without evaluating anything.
func TestCompareNoopStack(t *testing.T) {
	g := profileGraph(t, "resnet50")
	base, pred, err := daydream.Compare(g, daydream.Stack())
	if err != nil {
		t.Fatal(err)
	}
	if base != pred {
		t.Fatalf("no-op stack predicted %v, baseline %v", pred, base)
	}
}

// TestStackMatchesSequentialCompare checks the composed what-if against
// manually chaining the free functions on a clone.
func TestStackMatchesSequentialCompare(t *testing.T) {
	g := profileGraph(t, "bert-base")
	base, stacked, err := daydream.Compare(g, daydream.Stack(daydream.OptAMP(), daydream.OptFusedAdam()))
	if err != nil {
		t.Fatal(err)
	}
	_, sequential, err := daydream.Compare(g, func(c *daydream.Graph) error {
		daydream.AMP(c)
		return daydream.FusedAdam(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stacked != sequential {
		t.Fatalf("stack predicts %v, sequential clone %v", stacked, sequential)
	}
	if stacked >= base {
		t.Fatal("AMP+FusedAdam predicted no gain on BERT")
	}
}

// TestOptP3MatchesP3Prediction pins the P3 Optimization value (its own
// rewrite + measure) to the long-standing P3Prediction API.
func TestOptP3MatchesP3Prediction(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{
		Model: "vgg19", Device: "p4000", Framework: "mxnet",
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	topo := daydream.NewTopology(4, 1, 5)
	want, err := daydream.P3Prediction(g, topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := daydream.Compare(g, daydream.OptP3(topo, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("OptP3 predicts %v, P3Prediction %v", got, want)
	}
}

// TestOptimizationRegistryAPI exercises the public registry surface.
func TestOptimizationRegistryAPI(t *testing.T) {
	specs := daydream.Optimizations()
	if len(specs) == 0 {
		t.Fatal("empty registry")
	}
	for _, want := range []string{"amp", "fusedadam", "reconbn", "distributed", "p3", "upgrade", "kprofile", "scale"} {
		found := false
		for _, s := range specs {
			if s.Name == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("registry misses %q", want)
		}
	}
	opt, err := daydream.OptimizationByName("amp", daydream.OptimizationParams{})
	if err != nil || opt.Name() != "amp" {
		t.Fatalf("OptimizationByName(amp) = %v, %v", opt, err)
	}
	stacked, err := daydream.ParseOptimization("amp+fusedadam", daydream.OptimizationParams{})
	if err != nil {
		t.Fatal(err)
	}
	if stacked.Name() != "amp+fusedadam" || stacked.Footprint() != daydream.TimingOnly {
		t.Fatalf("parsed stack = %q (%v)", stacked.Name(), stacked.Footprint())
	}
	if _, err := daydream.OptimizationByName("bogus", daydream.OptimizationParams{}); err == nil {
		t.Fatal("unknown registry name accepted")
	}
}

// TestOptDeviceUpgradeNames checks name resolution (presets and
// marketing names) and that errors list every accepted name.
func TestOptDeviceUpgradeNames(t *testing.T) {
	if _, err := daydream.OptDeviceUpgrade("2080ti", "Tesla V100-SXM2-16GB"); err != nil {
		t.Fatal(err)
	}
	_, err := daydream.OptDeviceUpgrade("2080ti", "tpu")
	if err == nil {
		t.Fatal("unknown device accepted")
	}
	for _, name := range daydream.DeviceNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %q", err, name)
		}
	}
	if len(daydream.Devices()) != len(daydream.DeviceNames())/2 {
		t.Fatalf("Devices()/DeviceNames() disagree: %d vs %d",
			len(daydream.Devices()), len(daydream.DeviceNames()))
	}
}

// TestSweepWithOptimizationValues runs a mixed Opt battery through the
// sweep at several worker counts and checks it against the sequential
// clone loop (bit-identical, like every other sweep).
func TestSweepWithOptimizationValues(t *testing.T) {
	g := profileGraph(t, "bert-base")
	upgrade, err := daydream.OptDeviceUpgrade("2080ti", "v100")
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []daydream.Scenario{
		{Opt: daydream.Stack()},
		{Opt: daydream.OptAMP()},
		{Opt: daydream.Stack(daydream.OptAMP(), daydream.OptFusedAdam())},
		{Opt: upgrade},
		{Opt: daydream.OptDistributed(daydream.NewTopology(2, 2, 10))},
		{Base: g, Opt: daydream.OptScale("sgemm", 0.5)},
	}
	var want []daydream.SweepResult
	for _, sc := range scenarios {
		_, v, err := daydream.Compare(g, sc.Opt)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, daydream.SweepResult{Name: sc.Opt.Name(), Value: v})
	}
	for _, workers := range []int{0, 1, 3} {
		got, err := daydream.Sweep(g, scenarios, daydream.SweepWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Value != want[i].Value {
				t.Fatalf("workers=%d scenario %q: sweep %v, Compare %v",
					workers, want[i].Name, got[i].Value, want[i].Value)
			}
			if got[i].Name != want[i].Name {
				t.Fatalf("scenario %d name %q, want %q", i, got[i].Name, want[i].Name)
			}
		}
	}
}

// TestStackedSweepRace drives concurrent sweeps of stacked real
// optimizations over one shared profile. Run under -race (the CI does)
// this verifies composed timing-only stacks never write to the shared
// baseline or its memoized layer index.
func TestStackedSweepRace(t *testing.T) {
	g := profileGraph(t, "resnet50")
	stacked := daydream.Stack(daydream.OptAMP(), daydream.OptFusedAdam())
	var scenarios []daydream.Scenario
	for i := 0; i < 8; i++ {
		scenarios = append(scenarios, daydream.Scenario{Opt: stacked})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := daydream.Sweep(g, scenarios, daydream.SweepWorkers(4)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
