package daydream_test

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, plus micro-benchmarks of Daydream's own pipeline
// stages (trace collection, graph construction, simulation). Run with
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the complete ground-truth +
// prediction pipeline that cmd/daydream-bench prints, so -bench doubles
// as a regeneration of the paper's evaluation.

import (
	"fmt"
	"testing"

	"daydream"
	"daydream/internal/core"
	"daydream/internal/exp"
	"daydream/internal/framework"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var run func() ([]*exp.Table, error)
	for _, e := range exp.All() {
		if e.ID == id {
			run = e.Run
		}
	}
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Models regenerates Table 2 (model inventory).
func BenchmarkTable2Models(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig5AMP regenerates Figure 5 (AMP baseline / ground truth /
// prediction for four models).
func BenchmarkFig5AMP(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Breakdown regenerates Figure 6 (CPU/GPU runtime breakdown
// fp32 vs fp16).
func BenchmarkFig6Breakdown(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7FusedAdam regenerates Figure 7 (FusedAdam).
func BenchmarkFig7FusedAdam(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Distributed regenerates Figure 8 (4 models × 19 distributed
// configurations, ground truth + prediction each).
func BenchmarkFig8Distributed(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9NCCL regenerates Figure 9 (per-reduction interference).
func BenchmarkFig9NCCL(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10P3 regenerates Figure 10 (P3 vs bandwidth, two models).
func BenchmarkFig10P3(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkSec64BatchnormRecon regenerates §6.4 (reconstructed batchnorm).
func BenchmarkSec64BatchnormRecon(b *testing.B) { benchExperiment(b, "sec6.4") }

// BenchmarkTable1Coverage exercises all ten §5 optimization models.
func BenchmarkTable1Coverage(b *testing.B) { benchExperiment(b, "table1") }

// Pipeline micro-benchmarks.

// BenchmarkCollectTrace measures the synthetic profiler on the largest
// workload (BERT-Large: ~13K activities per iteration).
func BenchmarkCollectTrace(b *testing.B) {
	m, err := daydream.ModelByName("bert-large")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := framework.Run(framework.Config{Model: m, CollectTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildGraph measures dependency-graph construction plus layer
// mapping.
func BenchmarkBuildGraph(b *testing.B) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := daydream.BuildGraph(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures Algorithm 1 on a ~13K-task graph.
func BenchmarkSimulate(b *testing.B) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		b.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.PredictIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClone measures graph deep copy (every what-if pays this once).
func BenchmarkClone(b *testing.B) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		b.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Clone()
	}
}

// BenchmarkAMPTransform measures the Algorithm-3 transformation alone.
func BenchmarkAMPTransform(b *testing.B) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		b.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		daydream.AMP(c)
	}
}

// benchGraph builds the bert-large fixture shared by the scenario-path
// benchmarks.
func benchGraph(b *testing.B) *daydream.Graph {
	b.Helper()
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		b.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkScenarioClonePath measures one duration-only scenario
// (Algorithm-3 AMP on bert-large) the way the sweep's structural path
// evaluates it: clone, mutate, simulate with a reusable scratch. This
// is the baseline the overlay path is compared against.
func BenchmarkScenarioClonePath(b *testing.B) {
	g := benchGraph(b)
	scratch := core.NewSimScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		daydream.AMP(c)
		if _, err := c.Simulate(core.WithScratch(scratch)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioOverlayPath measures the same scenario through the
// clone-free copy-on-write path: reset a worker-owned overlay, record
// the Algorithm-3 deltas, simulate through them into a reusable result
// buffer. The acceptance bar is ≥3× over BenchmarkScenarioClonePath.
func BenchmarkScenarioOverlayPath(b *testing.B) {
	g := benchGraph(b)
	scratch := core.NewSimScratch()
	o := daydream.NewOverlay(g)
	buf := &daydream.SimResult{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Reset(g)
		daydream.AMPOverlay(o)
		if _, err := o.Simulate(core.WithScratch(scratch), core.WithResultBuffer(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweepWorkers pins the sweep benchmarks' worker count so their
// allocs/op (one scratch/overlay/result buffer per worker) do not vary
// with the machine's GOMAXPROCS.
const benchSweepWorkers = 4

// BenchmarkSweepOverlay64 measures sweep throughput for 64 duration-only
// scenarios on the clone-free path (scenarios/sec is ns/op⁻¹ × 64).
func BenchmarkSweepOverlay64(b *testing.B) {
	g := benchGraph(b)
	scenarios := make([]daydream.Scenario, 64)
	for i := range scenarios {
		scenarios[i] = daydream.Scenario{
			Name: fmt.Sprintf("amp%d", i),
			ScaleTransform: func(o *daydream.Overlay) error {
				daydream.AMPOverlay(o)
				return nil
			},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := daydream.Sweep(g, scenarios, daydream.SweepWorkers(benchSweepWorkers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepClone64 is BenchmarkSweepOverlay64 on the structural
// clone path, for the trajectory comparison.
func BenchmarkSweepClone64(b *testing.B) {
	g := benchGraph(b)
	scenarios := make([]daydream.Scenario, 64)
	for i := range scenarios {
		scenarios[i] = daydream.Scenario{
			Name: fmt.Sprintf("amp%d", i),
			Transform: func(c *daydream.Graph) (*daydream.Graph, error) {
				daydream.AMP(c)
				return c, nil
			},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := daydream.Sweep(g, scenarios, daydream.SweepWorkers(benchSweepWorkers)); err != nil {
			b.Fatal(err)
		}
	}
}
