package daydream_test

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, plus micro-benchmarks of Daydream's own pipeline
// stages (trace collection, graph construction, simulation). Run with
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the complete ground-truth +
// prediction pipeline that cmd/daydream-bench prints, so -bench doubles
// as a regeneration of the paper's evaluation.

import (
	"testing"

	"daydream"
	"daydream/internal/exp"
	"daydream/internal/framework"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var run func() ([]*exp.Table, error)
	for _, e := range exp.All() {
		if e.ID == id {
			run = e.Run
		}
	}
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Models regenerates Table 2 (model inventory).
func BenchmarkTable2Models(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig5AMP regenerates Figure 5 (AMP baseline / ground truth /
// prediction for four models).
func BenchmarkFig5AMP(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Breakdown regenerates Figure 6 (CPU/GPU runtime breakdown
// fp32 vs fp16).
func BenchmarkFig6Breakdown(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7FusedAdam regenerates Figure 7 (FusedAdam).
func BenchmarkFig7FusedAdam(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Distributed regenerates Figure 8 (4 models × 19 distributed
// configurations, ground truth + prediction each).
func BenchmarkFig8Distributed(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9NCCL regenerates Figure 9 (per-reduction interference).
func BenchmarkFig9NCCL(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10P3 regenerates Figure 10 (P3 vs bandwidth, two models).
func BenchmarkFig10P3(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkSec64BatchnormRecon regenerates §6.4 (reconstructed batchnorm).
func BenchmarkSec64BatchnormRecon(b *testing.B) { benchExperiment(b, "sec6.4") }

// BenchmarkTable1Coverage exercises all ten §5 optimization models.
func BenchmarkTable1Coverage(b *testing.B) { benchExperiment(b, "table1") }

// Pipeline micro-benchmarks.

// BenchmarkCollectTrace measures the synthetic profiler on the largest
// workload (BERT-Large: ~13K activities per iteration).
func BenchmarkCollectTrace(b *testing.B) {
	m, err := daydream.ModelByName("bert-large")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := framework.Run(framework.Config{Model: m, CollectTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildGraph measures dependency-graph construction plus layer
// mapping.
func BenchmarkBuildGraph(b *testing.B) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := daydream.BuildGraph(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures Algorithm 1 on a ~13K-task graph.
func BenchmarkSimulate(b *testing.B) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		b.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.PredictIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClone measures graph deep copy (every what-if pays this once).
func BenchmarkClone(b *testing.B) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		b.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Clone()
	}
}

// BenchmarkAMPTransform measures the Algorithm-3 transformation alone.
func BenchmarkAMPTransform(b *testing.B) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		b.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		daydream.AMP(c)
	}
}
