package daydream_test

import (
	"testing"

	"daydream"
	"daydream/internal/core"
	"daydream/internal/exp"
	"daydream/internal/sweep"
)

// fig8Predictions builds the Figure-8 prediction grid (19 distributed
// configurations) over one model's single-GPU profile.
func fig8Predictions(tb testing.TB, zoo string) (*daydream.Graph, []daydream.Scenario) {
	tb.Helper()
	tr, err := daydream.Collect(daydream.CollectConfig{Model: zoo})
	if err != nil {
		tb.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		tb.Fatal(err)
	}
	var scenarios []daydream.Scenario
	for _, topo := range exp.Fig8Grid() {
		scenarios = append(scenarios, exp.Fig8Scenario(g, topo))
	}
	return g, scenarios
}

// runSequential evaluates the scenarios one by one the way the seed
// harness did: fresh clone, apply the what-if, simulate, no scratch
// reuse. Optimization values apply through the clone path regardless of
// footprint, so the sweep's overlay dispatch is checked against
// clone-and-mutate.
func runSequential(tb testing.TB, scenarios []daydream.Scenario) []daydream.SweepResult {
	tb.Helper()
	out := make([]daydream.SweepResult, len(scenarios))
	for i, sc := range scenarios {
		g := sc.Base.Clone()
		var err error
		switch {
		case sc.Opt != nil:
			g, err = core.ApplyOptimization(g, sc.Opt)
		case sc.Transform != nil:
			g, err = sc.Transform(g)
		}
		if err != nil {
			tb.Fatal(err)
		}
		v, err := g.PredictIteration()
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = daydream.SweepResult{Name: sc.Name, Value: v}
	}
	return out
}

// TestSweepMatchesSequentialFig8 checks the acceptance property of the
// sweep subsystem: a Figure-8-sized grid produces bit-identical
// predictions through daydream.Sweep — at any worker count — as through
// the sequential loop it replaces.
func TestSweepMatchesSequentialFig8(t *testing.T) {
	_, scenarios := fig8Predictions(t, "bert-base")
	want := runSequential(t, scenarios)
	for _, workers := range []int{0, 1, 3, 8} {
		got, err := daydream.Sweep(nil, scenarios, daydream.SweepWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Value != want[i].Value {
				t.Fatalf("workers=%d: scenario %q predicts %v, sequential loop %v",
					workers, got[i].Name, got[i].Value, want[i].Value)
			}
		}
	}
}

// fullFig8Scenarios is the paper's complete Figure 8: 4 models × 19
// distributed configurations = 76 scenarios, each over its model's
// single-GPU profile.
func fullFig8Scenarios(tb testing.TB) []daydream.Scenario {
	tb.Helper()
	var scenarios []daydream.Scenario
	for _, zoo := range []string{"resnet50", "gnmt", "bert-base", "bert-large"} {
		_, scs := fig8Predictions(tb, zoo)
		scenarios = append(scenarios, scs...)
	}
	return scenarios
}

// BenchmarkFig8SweepPredictions measures the 76-scenario Figure-8
// prediction grid through the concurrent sweep (worker pool + per-worker
// simulation scratch). Compare against BenchmarkFig8SequentialPredictions
// for the wall-clock effect; on multi-core hardware the pool wins by
// roughly the core count, and even single-core it wins on allocation.
func BenchmarkFig8SweepPredictions(b *testing.B) {
	scenarios := fullFig8Scenarios(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := daydream.Sweep(nil, scenarios); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8SequentialPredictions is the seed-style sequential loop
// over the identical 76 scenarios.
func BenchmarkFig8SequentialPredictions(b *testing.B) {
	scenarios := fullFig8Scenarios(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runSequential(b, scenarios)
	}
}

// TestSweepReexports pins the top-level aliases to the internal sweep
// package, so the public API and the harness cannot drift apart.
func TestSweepReexports(t *testing.T) {
	var _ daydream.Scenario = sweep.Scenario{}
	var _ daydream.SweepResult = sweep.Result{}
	g, scenarios := fig8Predictions(t, "resnet50")
	results, err := daydream.Sweep(g, scenarios[:3],
		daydream.SweepWorkers(2), daydream.SweepKeepGraphs(), daydream.SweepKeepSims())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Graph == nil || r.Sim == nil || r.Value <= 0 {
			t.Fatalf("retention options ignored: %+v", r)
		}
	}
}
