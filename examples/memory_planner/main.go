// Memory planner: answer the paper's introductory question "Does GPU
// memory capacity limit the performance of my model?" — estimate training
// footprints for the model zoo, find the largest batch that fits each
// device, and size the headroom a memory-footprint optimization like
// vDNN_conv would free.
package main

import (
	"fmt"
	"log"

	"daydream"
	"daydream/internal/dnn"
	"daydream/internal/xpu"
)

func gb(n int64) float64 { return float64(n) / (1 << 30) }

func main() {
	fmt.Println("Training memory footprints (at zoo default batch sizes):")
	fmt.Printf("%-14s %8s %8s %8s %10s %8s %8s\n",
		"model", "params", "grads", "optim", "activs", "wkspc", "total")
	for _, name := range daydream.ModelNames() {
		m, err := daydream.ModelByName(name)
		if err != nil {
			log.Fatal(err)
		}
		f := daydream.EstimateMemory(m)
		fmt.Printf("%-14s %7.2fG %7.2fG %7.2fG %9.2fG %7.2fG %7.2fG\n",
			name, gb(f.Params), gb(f.Gradients), gb(f.OptimizerState),
			gb(f.Activations), gb(f.Workspace), gb(f.Total()))
	}

	fmt.Println("\nLargest ResNet-50 batch that fits:")
	// daydream.Devices lists every preset accelerator, so new presets
	// show up here without touching the example.
	for _, dev := range daydream.Devices() {
		b := daydream.MaxBatchSize(func(batch int) *daydream.Model {
			return dnn.ResNet50(batch)
		}, dev.MemBytes)
		fmt.Printf("  %-22s (%2.0f GB): batch %d\n", dev.Name, gb(dev.MemBytes), b)
	}

	// How much would offloading convolutional feature maps (vDNN_conv)
	// free, and what batch would that enable?
	const target = "resnet50"
	m, _ := daydream.ModelByName(target)
	freed := dnn.OffloadableActivations(m, func(l *dnn.Layer) bool { return l.Kind == dnn.Conv })
	f := daydream.EstimateMemory(m)
	fmt.Printf("\nvDNN_conv on %s/%d would offload %.2f GB of %.2f GB of activations (%.0f%%),\n",
		target, m.BatchSize, gb(freed), gb(f.Activations), 100*float64(freed)/float64(f.Activations))

	mem := xpu.RTX2080Ti().MemBytes
	plain := daydream.MaxBatchSize(func(b int) *daydream.Model { return dnn.ResNet50(b) }, mem)
	withVDNN := daydream.MaxBatchSize(func(b int) *daydream.Model { return dnn.ResNet50(b) },
		mem+offloadAt(mem))
	fmt.Printf("raising the feasible 2080 Ti batch from %d to ≈%d —\n", plain, withVDNN)
	fmt.Println("then run `examples/quickstart`-style what-ifs to see if the PCIe cost is worth it.")
}

// offloadAt estimates the activation bytes vDNN_conv frees at the batch
// size that saturates the given memory (a fixed-point-ish approximation:
// use the fit batch of the plain model).
func offloadAt(mem int64) int64 {
	b := daydream.MaxBatchSize(func(batch int) *daydream.Model {
		return dnn.ResNet50(batch)
	}, mem)
	m := dnn.ResNet50(b)
	return dnn.OffloadableActivations(m, func(l *dnn.Layer) bool { return l.Kind == dnn.Conv })
}
