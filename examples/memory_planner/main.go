// Memory planner: answer the paper's introductory question "Does GPU
// memory capacity limit the performance of my model?" — now with the
// memory-timeline simulation. The static closed-form estimate (the old
// planner) stays as a comparison column; the simulated peak comes from
// replaying each model's trace and sweeping tensor alloc/free events
// over the schedule, so it reflects when activations actually overlap
// rather than assuming they all coexist.
package main

import (
	"fmt"
	"log"

	"daydream"
	"daydream/internal/dnn"
	"daydream/internal/xpu"
)

func gb(n int64) float64 { return float64(n) / (1 << 30) }

// profileModel traces one zoo model and simulates its memory timeline.
func profileModel(name string) (*daydream.MemoryProfile, error) {
	g, err := graphFor(name)
	if err != nil {
		return nil, err
	}
	_, prof, err := daydream.ProfileOptimization(g, nil)
	return prof, err
}

// graphFor collects a baseline trace for a zoo model and builds its
// dependency graph (phases 1–2 of the Daydream workflow).
func graphFor(name string) (*daydream.Graph, error) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: name})
	if err != nil {
		return nil, err
	}
	return daydream.BuildGraph(tr)
}

func main() {
	// 1. Footprints across the zoo: the static estimate assumes every
	// activation is resident at once; the simulated peak knows better.
	fmt.Println("Training memory footprints (zoo default batch sizes):")
	fmt.Printf("%-14s %8s %8s %10s %8s %10s %9s\n",
		"model", "params", "grads", "activs", "static", "sim peak", "peak/est")
	for _, name := range daydream.ModelNames() {
		m, err := daydream.ModelByName(name)
		if err != nil {
			log.Fatal(err)
		}
		f := daydream.EstimateMemory(m)
		prof, err := profileModel(name)
		if err != nil {
			log.Fatal(err)
		}
		peak := prof.MaxPeak()
		fmt.Printf("%-14s %7.2fG %7.2fG %9.2fG %7.2fG %9.2fG %8.0f%%\n",
			name, gb(f.Params), gb(f.Gradients), gb(f.Activations),
			gb(f.Total()), gb(peak), 100*float64(peak)/float64(f.Total()))
	}

	// 2. Where does the peak live? Attribute it for resnet50.
	g, err := graphFor("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	_, base, err := daydream.ProfileOptimization(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	dev := base.Device(daydream.DeviceGPU)
	fmt.Printf("\nresnet50 peak: %.2f GB held %v–%v (%.2f GB resident params+grads)\n",
		gb(dev.Peak), dev.PeakStart, dev.PeakEnd, gb(dev.Resident))
	fmt.Println("largest tensors live under the peak:")
	for i, tu := range dev.PeakTensors {
		if i == 3 {
			break
		}
		fmt.Printf("  %-28s %7.1f MB  alive %v–%v\n",
			tu.Layer, float64(tu.Bytes)/(1<<20), tu.Alloc, tu.Free)
	}

	// 3. Memory-footprint what-ifs: both prediction axes from one
	// simulation — what each optimization saves, and what it costs.
	fmt.Println("\nWhat-ifs on resnet50 (one simulation each):")
	fmt.Printf("%-10s %10s %10s %12s %10s\n", "opt", "peak", "saving", "makespan", "time cost")
	baseSpan, _, err := daydream.ProfileOptimization(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []struct {
		name string
		opt  daydream.Optimization
	}{
		{"baseline", nil},
		{"vdnn", daydream.OptVDNN()},
		{"gist", daydream.OptGist()},
	} {
		span, prof, err := daydream.ProfileOptimization(g, w.opt)
		if err != nil {
			log.Fatal(err)
		}
		peak := prof.MaxPeak()
		fmt.Printf("%-10s %8.2fGB %9.1f%% %10.1fms %9.1f%%\n",
			w.name, gb(peak), 100*(1-float64(peak)/float64(base.MaxPeak())),
			float64(span.Microseconds())/1000,
			100*(float64(span)/float64(baseSpan)-1))
	}

	// 4. Capacity planning: the static bound for every preset device,
	// then the simulated fit — which also answers what vDNN buys.
	fmt.Println("\nLargest ResNet-50 batch that fits (static estimate):")
	for _, d := range daydream.Devices() {
		b := daydream.MaxBatchSize(func(batch int) *daydream.Model {
			return dnn.ResNet50(batch)
		}, d.MemBytes)
		fmt.Printf("  %-22s (%2.0f GB): batch %d\n", d.Name, gb(d.MemBytes), b)
	}

	build := func(batch int) (*daydream.Graph, error) {
		m := dnn.ResNet50(batch)
		tr, err := daydream.Collect(daydream.CollectConfig{CustomModel: m})
		if err != nil {
			return nil, err
		}
		return daydream.BuildGraph(tr)
	}
	cap2080 := xpu.RTX2080Ti().MemBytes
	plain, err := daydream.MaxBatchFit(cap2080, build, nil, 256)
	if err != nil {
		log.Fatal(err)
	}
	withVDNN, err := daydream.MaxBatchFit(cap2080, build, daydream.OptVDNN(), 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSimulated fit on a 2080 Ti (timeline peak, not the static sum):\n")
	fmt.Printf("  baseline: batch %d    with vDNN offload: batch %d\n", plain, withVDNN)
	fmt.Println("then run `examples/quickstart`-style what-ifs to see if the PCIe cost is worth it.")
}
