// Bandwidth planner: answer "would upgrading to a faster network improve
// training throughput?" (a question from the paper's introduction) by
// sweeping the network bandwidth for a fixed cluster shape and locating
// the point of diminishing returns — all from one single-GPU profile.
package main

import (
	"fmt"
	"log"
	"strings"

	"daydream"
)

func main() {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "gnmt"})
	if err != nil {
		log.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		log.Fatal(err)
	}
	single, err := g.PredictIteration()
	if err != nil {
		log.Fatal(err)
	}
	const machines, gpus = 4, 2
	fmt.Printf("%s on %d×%d GPUs — iteration time vs network bandwidth\n",
		tr.Model, machines, gpus)
	fmt.Printf("(single-GPU compute: %v; gradients: %.0f MB/iteration)\n\n",
		single, float64(gradientBytes(tr))/(1<<20))

	// One sweep answers the whole bandwidth axis: each point is the
	// distributed prediction as an Optimization value over the shared
	// profile.
	bandwidths := []float64{5, 10, 20, 40, 80, 160}
	scenarios := make([]daydream.Scenario, len(bandwidths))
	for i, gbps := range bandwidths {
		scenarios[i] = daydream.Scenario{
			Opt: daydream.OptDistributed(daydream.NewTopology(machines, gpus, gbps)),
		}
	}
	results, err := daydream.Sweep(g, scenarios)
	if err != nil {
		log.Fatal(err)
	}
	prev := 0.0
	for i, r := range results {
		iter := r.Value
		gain := ""
		if prev > 0 {
			gain = fmt.Sprintf(" (%.0f%% faster than previous step)", 100*(1-float64(iter)/prev))
		}
		bars := int(float64(iter) / float64(single) * 4)
		if bars > 60 {
			bars = 60
		}
		fmt.Printf("%6.0f Gbps  %-14v %s%s\n", bandwidths[i], iter, strings.Repeat("#", bars), gain)
		prev = float64(iter)
	}
	fmt.Println("\nOnce the bars stop shrinking, the network is no longer the bottleneck —")
	fmt.Println("spending on faster NICs past that point buys nothing.")
}

func gradientBytes(tr *daydream.Trace) int64 {
	var total int64
	for _, g := range tr.Gradients {
		total += g.Bytes
	}
	return total
}
