// Quickstart: profile one training iteration, build the dependency graph,
// and ask Daydream's archetypal what-if question — "will mixed precision
// help my model?" — without implementing mixed precision.
package main

import (
	"fmt"
	"log"

	"daydream"
)

func main() {
	// Phase 1: collect a kernel-level trace of one ResNet-50 iteration
	// (on the synthetic substrate standing in for CUPTI + PyTorch).
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s on %s: %d activities, iteration %v\n",
		tr.Model, tr.Device, len(tr.Activities), tr.IterationTime)

	// Phase 2: build the kernel-granularity dependency graph with
	// task-to-layer mapping.
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dependency graph: %d tasks, %d edges\n", g.NumTasks(), g.NumEdges())

	// Phases 3+4: transform a clone of the graph with the AMP model
	// (compute kernels 3× faster, memory-bound kernels 2×) and simulate.
	baseline, predicted, err := daydream.Compare(g, func(c *daydream.Graph) error {
		daydream.AMP(c)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (replayed): %v\n", baseline)
	fmt.Printf("with AMP (predicted): %v (%.1f%% faster)\n",
		predicted, 100*(1-float64(predicted)/float64(baseline)))

	// Where does the time go? (The paper's Figure 6 decomposition.)
	b := daydream.ComputeBreakdown(tr)
	fmt.Printf("breakdown: CPU+GPU %v, CPU-only %v, GPU-only %v\n",
		b.Parallel, b.CPUOnly, b.GPUOnly)
}
