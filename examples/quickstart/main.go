// Quickstart: profile one training iteration, build the dependency graph,
// and ask Daydream's archetypal what-if question — "will mixed precision
// help my model?" — without implementing mixed precision, then compose it
// with a second optimization through daydream.Stack.
package main

import (
	"fmt"
	"log"

	"daydream"
)

func main() {
	// Phase 1: collect a kernel-level trace of one ResNet-50 iteration
	// (on the synthetic substrate standing in for CUPTI + PyTorch).
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s on %s: %d activities, iteration %v\n",
		tr.Model, tr.Device, len(tr.Activities), tr.IterationTime)

	// Phase 2: build the kernel-granularity dependency graph with
	// task-to-layer mapping.
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dependency graph: %d tasks, %d edges\n", g.NumTasks(), g.NumEdges())

	// Phases 3+4: ask the question as an Optimization value — AMP
	// (compute kernels 3× faster, memory-bound kernels 2×). Compare
	// picks the cheapest valid path from the value's footprint; AMP is
	// timing-only, so it evaluates clone-free through a copy-on-write
	// overlay.
	baseline, predicted, err := daydream.Compare(g, daydream.OptAMP())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (replayed): %v\n", baseline)
	fmt.Printf("with AMP (predicted): %v (%.1f%% faster)\n",
		predicted, 100*(1-float64(predicted)/float64(baseline)))

	// Optimizations compose: the paper evaluates stacks like AMP +
	// FusedAdam as a single what-if. A Stack of timing-only values is
	// itself timing-only and still runs clone-free.
	stacked := daydream.Stack(daydream.OptAMP(), daydream.OptFusedAdam())
	_, both, err := daydream.Compare(g, stacked)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %s: %v (%.1f%% faster)\n",
		stacked.Name(), both, 100*(1-float64(both)/float64(baseline)))

	// Where does the time go? (The paper's Figure 6 decomposition.)
	b := daydream.ComputeBreakdown(tr)
	fmt.Printf("breakdown: CPU+GPU %v, CPU-only %v, GPU-only %v\n",
		b.Parallel, b.CPUOnly, b.GPUOnly)
}
