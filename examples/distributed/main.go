// Distributed scaling planner: answer "how will my workload scale with the
// number of GPUs, and would upgrading the network help?" from a single
// single-GPU profile — no cluster required (paper §2.2: Daydream "avoids
// the potential cost of cluster setup").
package main

import (
	"fmt"
	"log"

	"daydream"
)

func main() {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		log.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		log.Fatal(err)
	}
	single, err := g.PredictIteration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s single-GPU iteration: %v\n\n", tr.Model, single)
	fmt.Printf("%-8s %-10s %-14s %-12s %s\n",
		"config", "bandwidth", "iteration", "scaling", "efficiency")

	// The whole grid is one concurrent sweep over the shared profile:
	// each point carries Algorithm 6 for its topology as an
	// Optimization value.
	var topos []daydream.Topology
	var scenarios []daydream.Scenario
	for _, gbps := range []float64{10, 25, 100} {
		for _, cfg := range []struct{ m, g int }{
			{1, 2}, {1, 4}, {2, 4}, {4, 4}, {8, 4},
		} {
			topo := daydream.NewTopology(cfg.m, cfg.g, gbps)
			topos = append(topos, topo)
			scenarios = append(scenarios, daydream.Scenario{Opt: daydream.OptDistributed(topo)})
		}
	}
	results, err := daydream.Sweep(g, scenarios)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		topo := topos[i]
		n := float64(topo.TotalGPUs())
		// Per-iteration global batch grows with n, so throughput
		// scaling is n × (single / iter).
		scaling := n * float64(single) / float64(r.Value)
		fmt.Printf("%-8s %-10s %-14v %-12s %.0f%%\n",
			topo.String(), fmt.Sprintf("%.0fGbps", topo.NICBandwidth*8/1e9), r.Value,
			fmt.Sprintf("%.1fx of %.0fx", scaling, n), 100*scaling/n)
		if (i+1)%5 == 0 {
			fmt.Println()
		}
	}
}
