// Custom what-ifs: user code extends the system with its own
// daydream.Optimization values — the same first-class type the built-in
// models use — so custom questions compose with the built-ins through
// Stack, Compare and Sweep. This example asks three questions the
// paper's introduction poses:
//
//  1. "Why did my DNN training workload run slowly?" — find the dominant
//     kernels.
//  2. "How much would a 2× faster CPU help?" — a custom timing-only
//     optimization (shrink every CPU task and every inter-task gap),
//     evaluated clone-free and stacked under AMP.
//  3. "What if all element-wise kernels were fused away?" — a custom
//     structural optimization built on the Remove primitive through the
//     unified Patch surface, so even graph surgery evaluates clone-free.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"daydream"
)

func main() {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-base"})
	if err != nil {
		log.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := g.PredictIteration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s baseline iteration: %v\n\n", tr.Model, baseline)

	// 1. Where does GPU time go?
	byName := map[string]time.Duration{}
	for _, t := range g.Select(func(t *daydream.Task) bool { return t.OnGPU() }) {
		byName[t.Name] += t.Duration
	}
	type kv struct {
		name string
		d    time.Duration
	}
	var top []kv
	for n, d := range byName {
		top = append(top, kv{n, d})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].d > top[j].d })
	fmt.Println("top GPU kernels:")
	for _, e := range top[:5] {
		fmt.Printf("  %-45s %v\n", e.name, e.d)
	}

	// 2. What if the CPU were 2× faster? A custom timing-only
	// optimization: it edits durations and gaps through the overlay, so
	// Compare evaluates it clone-free — and it composes with the
	// built-in AMP value like any registry optimization.
	cpu2x := daydream.TimingOptimization("cpu2x", func(o *daydream.Overlay) error {
		for _, t := range o.Base().Tasks() {
			if t.OnCPU() {
				o.SetDuration(t, o.Duration(t)/2)
				o.SetGap(t, o.Gap(t)/2)
			}
		}
		return nil
	})
	report := func(opt daydream.Optimization) {
		_, pred, err := daydream.Compare(g, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %v (%.1f%% faster)\n",
			opt.Name()+":", pred, 100*(1-float64(pred)/float64(baseline)))
	}
	fmt.Println()
	report(cpu2x)
	report(daydream.Stack(cpu2x, daydream.OptAMP()))

	// 3. What if every element-wise kernel were fused into its producer?
	// Structural — but still clone-free: the kernels and the launches
	// that trigger them are removed as copy-on-write patch deltas over
	// the shared baseline. (StructuralOptimization remains for legacy
	// in-place transforms, at the cost of a private clone.)
	fused := daydream.PatchOptimization("fuse-pointwise", daydream.Structural,
		func(p *daydream.Patch) error {
			for _, t := range p.Base().Select(func(t *daydream.Task) bool {
				return t.OnGPU() && strings.Contains(t.Name, "elementwise")
			}) {
				if peer := t.Peer(); peer != nil {
					p.RemoveTask(peer)
				}
				p.RemoveTask(t)
			}
			return nil
		})
	report(fused)
}
