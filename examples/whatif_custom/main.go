// Custom what-ifs: the graph-transformation primitives (Select, Scale,
// Insert, Remove) are a user-facing API, not just plumbing for the built-in
// optimization models. This example asks three questions the paper's
// introduction poses, directly against the primitives:
//
//  1. "Why did my DNN training workload run slowly?" — find the dominant
//     kernels.
//  2. "How much would a 2× faster CPU help?" — shrink every CPU task and
//     every inter-task gap.
//  3. "What if all element-wise kernels were fused away?" — remove them
//     and their launches.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"daydream"
)

func main() {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-base"})
	if err != nil {
		log.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := g.Clone().PredictIteration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s baseline iteration: %v\n\n", tr.Model, baseline)

	// 1. Where does GPU time go?
	byName := map[string]time.Duration{}
	for _, t := range g.Select(func(t *daydream.Task) bool { return t.OnGPU() }) {
		byName[t.Name] += t.Duration
	}
	type kv struct {
		name string
		d    time.Duration
	}
	var top []kv
	for n, d := range byName {
		top = append(top, kv{n, d})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].d > top[j].d })
	fmt.Println("top GPU kernels:")
	for _, e := range top[:5] {
		fmt.Printf("  %-45s %v\n", e.name, e.d)
	}

	// 2. What if the CPU were 2× faster? Scale every CPU task and gap.
	cpu2x := g.Clone()
	for _, t := range cpu2x.Select(func(t *daydream.Task) bool { return t.OnCPU() }) {
		t.Duration /= 2
		t.Gap /= 2
	}
	p2, err := cpu2x.PredictIteration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2x faster CPU:   %v (%.1f%% faster)\n",
		p2, 100*(1-float64(p2)/float64(baseline)))

	// 3. What if every element-wise kernel were fused into its producer?
	// Remove the kernels and the launch calls that trigger them.
	fused := g.Clone()
	for _, t := range fused.Select(func(t *daydream.Task) bool {
		return t.OnGPU() && containsSubstr(t.Name, "elementwise")
	}) {
		if peer := t.Peer(); peer != nil {
			fused.Remove(peer)
		}
		fused.Remove(t)
	}
	p3, err := fused.PredictIteration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fused pointwise: %v (%.1f%% faster)\n",
		p3, 100*(1-float64(p3)/float64(baseline)))
}

func containsSubstr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
