// Pipeline planner: answer PipeDream/GPipe's planning question — how
// should a model's layers be split into pipeline stages, and how many
// microbatches should flow through them? — from one single-GPU profile.
// Every candidate partitioning is an Optimization value over the shared
// baseline, so the whole grid is a single clone-free sweep; the chosen
// split is then re-simulated at steady-state scale (1000 microbatches)
// in round-windowed mode, which holds per-task starts for only the last
// few microbatches and retires the rest into per-round summaries.
package main

import (
	"fmt"
	"log"

	"daydream"
)

func main() {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
	if err != nil {
		log.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		log.Fatal(err)
	}
	single, err := g.PredictIteration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — pipeline partitioning grid (single-GPU iteration: %v)\n\n", tr.Model, single)

	// The grid: stages × microbatches × schedule, one scenario each.
	type point struct {
		stages, micro int
		schedule      string
	}
	var grid []point
	var scenarios []daydream.Scenario
	for _, s := range []int{2, 4} {
		for _, m := range []int{2, 4, 8, 16} {
			for _, sched := range []string{"1f1b", "gpipe"} {
				grid = append(grid, point{s, m, sched})
				scenarios = append(scenarios, daydream.Scenario{
					Opt: daydream.OptPipeline(daydream.PipelineOptions{
						Stages: s, Microbatches: m, Schedule: sched,
					}),
				})
			}
		}
	}
	results, err := daydream.Sweep(g, scenarios)
	if err != nil {
		log.Fatal(err)
	}
	best := -1
	fmt.Printf("%-8s %-13s %-9s %-14s %s\n", "stages", "microbatches", "schedule", "iteration", "vs 1 GPU")
	for i, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("%-8d %-13d %-9s %-14v %+.1f%%\n",
			grid[i].stages, grid[i].micro, grid[i].schedule, r.Value,
			100*(float64(r.Value)/float64(single)-1))
		if best < 0 || r.Value < results[best].Value {
			best = i
		}
	}
	choice := grid[best]
	fmt.Printf("\nbest split: %d stages × %d microbatches under %s (%v)\n",
		choice.stages, choice.micro, choice.schedule, results[best].Value)

	// Steady state: the chosen partitioning with 1000 microbatches in
	// flight, simulated with an 8-round window. 1F1B's admission cap
	// bounds cross-stage skew, so the run holds O(window) per-task
	// starts while the retired summaries still report every round.
	const microbatches, window = 1000, 8
	steady, err := daydream.Sweep(g, []daydream.Scenario{{
		Opt: daydream.OptPipeline(daydream.PipelineOptions{
			Stages: choice.stages, Microbatches: microbatches, Schedule: "1f1b",
		}),
		SimOptions: []daydream.SimOption{daydream.WithRoundWindow(window)},
	}}, daydream.SweepKeepSims())
	if err != nil {
		log.Fatal(err)
	}
	res := steady[0].Sim
	fmt.Printf("\nsteady state (%d microbatches, %d-round window): %v total\n",
		microbatches, window, steady[0].Value)
	fmt.Printf("retired %d rounds into summaries; window held %d task slots (baseline graph alone has %d tasks)\n",
		res.RetiredRounds(), res.WindowOccupancy(), g.NumTasks())
	sums := res.Summaries()
	fmt.Printf("mid-stream round spans (the per-microbatch steady-state cost):\n")
	for _, s := range sums[len(sums)/2 : len(sums)/2+choice.stages] {
		fmt.Printf("  round %-4d span %v\n", s.Round, s.Span)
	}
}
