// Serve client: drive the long-lived prediction service over HTTP —
// upload a profiled baseline, ask what-if questions against it, sweep a
// grid, and pull the critical-path diagnosis, all with plain JSON
// requests.
//
// By default the example is self-contained: it starts an in-process
// server on a loopback port, so it runs standalone. Point -addr at an
// already-running `daydream serve` to use that instead.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"daydream"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running daydream serve (default: self-hosted)")
	model := flag.String("model", "resnet50", "model to profile for the baseline upload")
	flag.Parse()

	base := *addr
	if base == "" {
		// Self-host: the same server the daydream serve command runs,
		// mounted on a loopback listener.
		srv := daydream.NewServer(daydream.ServeConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		base = "http://" + ln.Addr().String()
		fmt.Printf("self-hosted daydream serve on %s\n", base)
	}

	// Phase 1: profile one iteration and upload the trace. The baseline
	// ID is derived from the trace bytes, so re-uploading the same
	// profile is an idempotent no-op.
	tr, err := daydream.Collect(daydream.CollectConfig{Model: *model})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	var up struct {
		ID         string `json:"id"`
		Created    bool   `json:"created"`
		Tasks      int    `json:"tasks"`
		BaselineNS int64  `json:"baseline_ns"`
	}
	post(base+"/v1/baselines", buf.Bytes(), &up)
	fmt.Printf("baseline %s (created=%v): %d tasks, iteration %v\n",
		up.ID, up.Created, up.Tasks, time.Duration(up.BaselineNS))

	// Phase 2: one prediction. The opt expression is the same stack
	// syntax the CLI uses; params carry optimization knobs.
	var pr struct {
		PredictedNS int64   `json:"predicted_ns"`
		ChangePct   float64 `json:"change_pct"`
		Tier        string  `json:"tier"`
		Cached      bool    `json:"cached"`
	}
	post(base+"/v1/baselines/"+up.ID+"/predict",
		[]byte(`{"opt":"amp+fusedadam"}`), &pr)
	fmt.Printf("amp+fusedadam: %v (%.1f%% change, tier=%s, cached=%v)\n",
		time.Duration(pr.PredictedNS), pr.ChangePct, pr.Tier, pr.Cached)

	// Phase 3: a grid in one request. Rows that fail report a typed
	// error without failing the sweep.
	var sw struct {
		Rows []struct {
			Opt         string  `json:"opt"`
			PredictedNS int64   `json:"predicted_ns"`
			ChangePct   float64 `json:"change_pct"`
			Tier        string  `json:"tier"`
			ErrorKind   string  `json:"error_kind,omitempty"`
		} `json:"rows"`
	}
	post(base+"/v1/baselines/"+up.ID+"/sweep",
		[]byte(`{"opts":["amp","fusedadam","scale"],"params":{"scale_target":"sgemm","scale_factor":0.5}}`), &sw)
	for _, row := range sw.Rows {
		if row.ErrorKind != "" {
			fmt.Printf("sweep %-12s failed: %s\n", row.Opt, row.ErrorKind)
			continue
		}
		fmt.Printf("sweep %-12s %v (%.1f%%, tier=%s)\n",
			row.Opt, time.Duration(row.PredictedNS), row.ChangePct, row.Tier)
	}

	// Phase 4: where does the time go on the critical path?
	var diag struct {
		PathTasks int `json:"path_tasks"`
		ByKind    []struct {
			Label  string  `json:"label"`
			TimeNS int64   `json:"time_ns"`
			Pct    float64 `json:"pct"`
		} `json:"by_kind"`
	}
	get(base+"/v1/baselines/"+up.ID+"/diagnose", &diag)
	fmt.Printf("critical path: %d tasks\n", diag.PathTasks)
	for _, a := range diag.ByKind {
		fmt.Printf("  %-24s %10v  %5.1f%%\n", a.Label, time.Duration(a.TimeNS), a.Pct)
	}
}

// post sends a JSON body and decodes the JSON response into out,
// failing loudly on any non-200 status.
func post(url string, body []byte, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, url, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, url, out)
}

func decode(resp *http.Response, url string, out any) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: status %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatalf("%s: %v", url, err)
	}
}
