package main

// The memory subcommand is the CLI face of the memory-timeline layer
// (internal/mem): simulate a zoo model, sweep its activation alloc/free
// events over the schedule, and answer the paper's introductory
// question — "does GPU memory capacity limit the performance of my
// model?" — dynamically. It reports the static analytic estimate next
// to the simulated peak, attributes the peak to the tensors live under
// it, optionally re-profiles under a memory optimization stack (vdnn,
// gist), and inverts the peak curve into the largest batch that fits
// the target device.

import (
	"flag"
	"fmt"
	"time"

	"daydream"
	"daydream/internal/xpu"
)

func cmdMemory(args []string) error {
	fs := flag.NewFlagSet("memory", flag.ExitOnError)
	model := fs.String("model", "resnet50", "zoo model name")
	fw := fs.String("framework", "pytorch", "framework dialect: pytorch, mxnet, caffe")
	device := fs.String("device", "2080ti", "device whose memory capacity bounds the fit search (preset or marketing name)")
	optExpr := fs.String("opt", "", "optimization stack expression to profile alongside the baseline (e.g. vdnn, gist)")
	maxBatch := fs.Int("maxbatch", 512, "ceiling for the max-batch-fit search (0 disables the search)")
	top := fs.Int("top", 5, "peak-attribution tensors to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// FindDevice's error lists every accepted device name, so a typo is
	// self-documenting.
	dev, err := xpu.FindDevice(*device)
	if err != nil {
		return err
	}
	m, err := daydream.ModelByName(*model)
	if err != nil {
		return err
	}
	g, err := collectModelGraph(*model, *fw)
	if err != nil {
		return err
	}

	est := daydream.EstimateMemory(m)
	fmt.Printf("model %s (batch %d), framework %s\n", *model, m.BatchSize, *fw)
	fmt.Printf("static estimate: params %.2f + grads %.2f + optim %.2f + activations %.2f + workspace %.2f = %.2f GB\n",
		gib(est.Params), gib(est.Gradients), gib(est.OptimizerState),
		gib(est.Activations), gib(est.Workspace), gib(est.Total()))

	baseMakespan, baseProf, err := daydream.ProfileOptimization(g, nil)
	if err != nil {
		return err
	}
	printDeviceProfile("simulated baseline", baseProf, baseMakespan, *top)

	var opt daydream.Optimization
	if *optExpr != "" {
		opt, err = daydream.ParseOptimization(*optExpr, daydream.OptimizationParams{})
		if err != nil {
			return err
		}
		makespan, prof, err := daydream.ProfileOptimization(g, opt)
		if err != nil {
			return err
		}
		printDeviceProfile(fmt.Sprintf("with %s", opt.Name()), prof, makespan, *top)
		basePeak, peak := baseProf.MaxPeak(), prof.MaxPeak()
		fmt.Printf("  memory %+.1f%%, makespan %+.1f%% vs baseline\n",
			100*(float64(peak)/float64(basePeak)-1),
			100*(float64(makespan)/float64(baseMakespan)-1))
	}

	if *maxBatch > 0 {
		fmt.Printf("\nlargest %s batch fitting %s (%.0f GB), simulated peak vs capacity:\n",
			*model, dev.Name, gib(dev.MemBytes))
		build := func(batch int) (*daydream.Graph, error) {
			bm, err := daydream.ModelByNameAtBatch(*model, batch)
			if err != nil {
				return nil, err
			}
			return collectCustomGraph(bm, *fw)
		}
		fit, err := daydream.MaxBatchFit(dev.MemBytes, build, nil, *maxBatch)
		if err != nil {
			return err
		}
		fmt.Printf("  baseline: batch %d\n", fit)
		if opt != nil {
			fitOpt, err := daydream.MaxBatchFit(dev.MemBytes, build, opt, *maxBatch)
			if err != nil {
				return err
			}
			fmt.Printf("  with %s: batch %d\n", opt.Name(), fitOpt)
		}
	}
	return nil
}

// collectModelGraph traces a zoo model and builds its mapped graph.
func collectModelGraph(model, fw string) (*daydream.Graph, error) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: model, Framework: fw})
	if err != nil {
		return nil, err
	}
	return daydream.BuildGraph(tr)
}

// collectCustomGraph traces a caller-built model (a batch-sweep point)
// and builds its mapped graph.
func collectCustomGraph(m *daydream.Model, fw string) (*daydream.Graph, error) {
	tr, err := daydream.Collect(daydream.CollectConfig{CustomModel: m, Framework: fw})
	if err != nil {
		return nil, err
	}
	return daydream.BuildGraph(tr)
}

// printDeviceProfile prints one profile's peak, interval and top peak
// tensors.
func printDeviceProfile(title string, prof *daydream.MemoryProfile, makespan time.Duration, top int) {
	d := prof.Device(daydream.DeviceGPU)
	if d == nil {
		return
	}
	fmt.Printf("\n%s: peak %.2f GB over [%v, %v) of a %v iteration (resident %.2f GB, %d timeline samples)\n",
		title, gib(d.Peak), d.PeakStart, d.PeakEnd, makespan, gib(d.Resident), len(d.Timeline))
	n := top
	if n > len(d.PeakTensors) {
		n = len(d.PeakTensors)
	}
	if n > 0 {
		fmt.Printf("  live at the peak (top %d of %d):\n", n, len(d.PeakTensors))
	}
	for _, tu := range d.PeakTensors[:n] {
		fmt.Printf("    %-28s %8.3f GB  [%v, %v)\n", tu.Layer, gib(tu.Bytes), tu.Alloc, tu.Free)
	}
}

// gib converts bytes to GiB for display.
func gib(n int64) float64 { return float64(n) / (1 << 30) }
