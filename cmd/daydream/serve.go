package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daydream"
)

// cmdServe runs the long-lived prediction service until SIGINT/SIGTERM,
// then drains: the HTTP listener stops accepting, in-flight requests
// and simulations finish (up to -grace), and the process exits 0 on a
// clean drain.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth beyond running workers (0 = 4x workers)")
	maxBaselines := fs.Int("max-baselines", 0, "baseline registry bound (0 = 8)")
	cacheEntries := fs.Int("cache", 0, "prediction cache entries (0 = 1024)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-simulation deadline (0 = 30s)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain budget")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := daydream.NewServer(daydream.ServeConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxBaselines:   *maxBaselines,
		CacheEntries:   *cacheEntries,
		RequestTimeout: *reqTimeout,
	})
	hs := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("daydream serve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("daydream serve: draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Stop the listener and let in-flight handlers return first, then
	// drain the simulations they may have left running (coalesced
	// computations outlive their requesters).
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http drain: %w", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("simulation drain: %w", err)
	}
	fmt.Println("daydream serve: drained cleanly")
	return nil
}
