// Command daydream is the CLI front end to the Daydream reproduction:
// collect a trace of a training iteration, inspect the dependency graph,
// replay it, and ask what-if questions about optimizations.
//
// Usage:
//
//	daydream trace     -model resnet50 [-device 2080ti] [-framework pytorch] [-fp16] -o trace.json
//	daydream graph     -trace trace.json
//	daydream simulate  -trace trace.json
//	daydream breakdown -trace trace.json
//	daydream predict   -trace trace.json -opt amp|fusedadam|reconbn|distributed|p3 \
//	                   [-machines 4 -gpus 2 -gbps 10] [-slice 819200]
//	daydream sweep     -trace trace.json [-workers 8] [-gbps 10,20,40]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"daydream"
	"daydream/internal/core"
	"daydream/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "graph":
		err = cmdGraph(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "breakdown":
		err = cmdBreakdown(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "diagnose":
		err = cmdDiagnose(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "daydream: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "daydream:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: daydream <command> [flags]

commands:
  trace      profile one training iteration and write the trace as JSON
  graph      build the dependency graph and print its statistics
  simulate   replay the trace through Algorithm 1 (fidelity check)
  breakdown  decompose the iteration into CPU-only/GPU-only/parallel time
  predict    apply a what-if optimization and predict the iteration time
  sweep      predict every optimization and a distributed grid concurrently
  export     convert a trace to Chrome Trace Event JSON (chrome://tracing)
  diagnose   attribute the critical path by resource and training phase`)
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	model := fs.String("model", "resnet50", "zoo model name")
	device := fs.String("device", "2080ti", "device preset: 2080ti, p4000, v100")
	fw := fs.String("framework", "pytorch", "framework dialect: pytorch, mxnet, caffe")
	fp16 := fs.Bool("fp16", false, "collect under mixed precision")
	seed := fs.Uint64("seed", 0, "jitter seed")
	out := fs.String("o", "trace.json", "output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := daydream.Collect(daydream.CollectConfig{
		Model: *model, Device: *device, Framework: *fw,
		MixedPrecision: *fp16, Seed: *seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("traced %s on %s: iteration %v, %d activities, %d layer spans → %s\n",
		tr.Model, tr.Device, tr.IterationTime, len(tr.Activities), len(tr.LayerSpans), *out)
	return nil
}

func loadGraph(path string) (*trace.Trace, *daydream.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		return nil, nil, err
	}
	g, err := daydream.BuildGraph(tr)
	return tr, g, err
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}
	fmt.Printf("model=%s device=%s framework=%s precision=%s\n",
		tr.Model, tr.Device, tr.Framework, tr.Precision)
	fmt.Printf("tasks=%d edges=%d\n", g.NumTasks(), g.NumEdges())
	for _, tid := range g.Threads() {
		fmt.Printf("  %-14s %6d tasks\n", tid, len(g.ThreadTasks(tid)))
	}
	fmt.Printf("GPU tasks mapped to layers: %.1f%%\n", 100*core.MappedFraction(g))
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}
	got, err := g.PredictIteration()
	if err != nil {
		return err
	}
	diff := 100 * (float64(got-tr.IterationTime) / float64(tr.IterationTime))
	fmt.Printf("traced iteration:    %v\n", tr.IterationTime)
	fmt.Printf("simulated iteration: %v (%+.3f%%)\n", got, diff)
	return nil
}

func cmdBreakdown(args []string) error {
	fs := flag.NewFlagSet("breakdown", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		return err
	}
	b := daydream.ComputeBreakdown(tr)
	total := b.Total()
	row := func(name string, d time.Duration) {
		fmt.Printf("%-10s %12v  %5.1f%%\n", name, d, 100*float64(d)/float64(total))
	}
	row("CPU+GPU", b.Parallel)
	row("CPU-only", b.CPUOnly)
	row("GPU-only", b.GPUOnly)
	fmt.Printf("%-10s %12v\n", "total", total)
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	opt := fs.String("opt", "amp", "optimization: amp, fusedadam, reconbn, distributed, p3, upgrade")
	device := fs.String("device", "v100", "target device for -opt upgrade")
	machines := fs.Int("machines", 4, "machines (distributed/p3)")
	gpus := fs.Int("gpus", 1, "GPUs per machine (distributed/p3)")
	gbps := fs.Float64("gbps", 10, "network bandwidth in Gbps (distributed/p3)")
	slice := fs.Int64("slice", 800<<10, "P3 slice size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}
	topo := daydream.NewTopology(*machines, *gpus, *gbps)
	var predicted time.Duration
	switch *opt {
	case "amp":
		_, predicted, err = daydream.Compare(g, func(c *daydream.Graph) error {
			daydream.AMP(c)
			return nil
		})
	case "fusedadam":
		_, predicted, err = daydream.Compare(g, daydream.FusedAdam)
	case "reconbn":
		_, predicted, err = daydream.Compare(g, daydream.ReconBatchnorm)
	case "distributed":
		_, predicted, err = daydream.Compare(g, func(c *daydream.Graph) error {
			return daydream.Distributed(c, topo)
		})
	case "p3":
		predicted, err = daydream.P3Prediction(g, topo, *slice)
	case "upgrade":
		_, predicted, err = daydream.Compare(g, func(c *daydream.Graph) error {
			return daydream.DeviceUpgrade(c, tr.Device, *device)
		})
	default:
		return fmt.Errorf("unknown optimization %q", *opt)
	}
	if err != nil {
		return err
	}
	fmt.Printf("baseline iteration:  %v\n", tr.IterationTime)
	fmt.Printf("predicted with %s: %v (%.1f%% change)\n",
		*opt, predicted, 100*(1-float64(predicted)/float64(tr.IterationTime)))
	return nil
}

// cmdSweep answers a whole battery of what-if questions from one trace
// in a single concurrent sweep: every single-GPU optimization plus a
// distributed grid over machine counts and network bandwidths.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	gbpsList := fs.String("gbps", "10,20,40", "comma-separated bandwidths for the distributed grid")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}

	scenarios := []daydream.Scenario{
		{Name: "baseline (replay)"},
		{Name: "amp", Transform: func(c *daydream.Graph) (*daydream.Graph, error) {
			daydream.AMP(c)
			return c, nil
		}},
		{Name: "fusedadam", Transform: func(c *daydream.Graph) (*daydream.Graph, error) {
			return c, daydream.FusedAdam(c)
		}},
		{Name: "reconbn", Transform: func(c *daydream.Graph) (*daydream.Graph, error) {
			return c, daydream.ReconBatchnorm(c)
		}},
	}
	for _, gbpsStr := range strings.Split(*gbpsList, ",") {
		gbps, err := strconv.ParseFloat(strings.TrimSpace(gbpsStr), 64)
		if err != nil {
			return fmt.Errorf("bad -gbps element %q: %v", gbpsStr, err)
		}
		for _, cfg := range []struct{ machines, gpus int }{
			{2, 1}, {4, 1}, {2, 2}, {4, 2},
		} {
			topo := daydream.NewTopology(cfg.machines, cfg.gpus, gbps)
			scenarios = append(scenarios, daydream.Scenario{
				Name: fmt.Sprintf("distributed %dx%d @%.0fGbps", cfg.machines, cfg.gpus, gbps),
				Transform: func(c *daydream.Graph) (*daydream.Graph, error) {
					return c, daydream.Distributed(c, topo)
				},
			})
		}
	}

	start := time.Now()
	results, err := daydream.Sweep(g, scenarios, daydream.SweepWorkers(*workers))
	if err != nil {
		return err
	}
	fmt.Printf("traced iteration: %v — %d scenarios in %v\n\n",
		tr.IterationTime, len(scenarios), time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-28s %14s %10s\n", "scenario", "predicted", "change")
	for _, r := range results {
		fmt.Printf("%-28s %14v %+9.1f%%\n",
			r.Name, r.Value, 100*(float64(r.Value)/float64(tr.IterationTime)-1))
	}
	return nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}
	byResource, byPhase, err := daydream.Diagnose(g)
	if err != nil {
		return err
	}
	fmt.Printf("critical path of one %s iteration (%v):\n", tr.Model, tr.IterationTime)
	printAttribution := func(title string, as []daydream.PathAttribution) {
		fmt.Printf("\nby %s:\n", title)
		for _, a := range as {
			fmt.Printf("  %-14s %12v  (%d tasks)\n", a.Label, a.Time, a.Tasks)
		}
	}
	printAttribution("execution resource", byResource)
	printAttribution("training phase", byPhase)
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	out := fs.String("o", "trace.chrome.json", "output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		return err
	}
	o, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer o.Close()
	if err := tr.WriteChromeTrace(o); err != nil {
		return err
	}
	fmt.Printf("wrote %s — open in chrome://tracing or https://ui.perfetto.dev\n", *out)
	return nil
}
