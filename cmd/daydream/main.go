// Command daydream is the CLI front end to the Daydream reproduction:
// collect a trace of a training iteration, inspect the dependency graph,
// replay it, and ask what-if questions about optimizations.
//
// Usage:
//
//	daydream trace     -model resnet50 [-device 2080ti] [-framework pytorch] [-fp16] -o trace.json
//	daydream graph     -trace trace.json
//	daydream simulate  -trace trace.json
//	daydream breakdown -trace trace.json
//	daydream predict   -trace trace.json -opt amp+fusedadam \
//	                   [-machines 4 -gpus 2 -gbps 10] [-slice 819200] [-device v100] \
//	                   [-kprofile sgemm=1.5ms] [-scale-name conv -scale-factor 0.5]
//	daydream sweep     -trace trace.json [-workers 8] [-gbps 10,20,40] [-opt amp,amp+fusedadam]
//
// The -opt argument is a stack expression over the optimization
// registry (daydream.Optimizations): names joined with '+' compose via
// daydream.Stack (each name may appear once); run `daydream predict -h`
// for the generated list. Every optimization applies through the
// unified copy-on-write Patch surface, so predict and sweep evaluate
// timing-only and structural what-ifs alike without cloning the
// profiled graph — only graph-replacing rewrites (p3) clone. That
// includes what-ifs that carry a scheduling policy (vdnn's copy-stream
// ordering): schedulers are view-generic, so scheduled scenarios stay
// clone-free too.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"daydream"
	"daydream/internal/core"
	"daydream/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "graph":
		err = cmdGraph(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "breakdown":
		err = cmdBreakdown(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "diagnose":
		err = cmdDiagnose(os.Args[2:])
	case "memory":
		err = cmdMemory(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "daydream: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "daydream:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: daydream <command> [flags]

commands:
  trace      profile one training iteration and write the trace as JSON
  graph      build the dependency graph and print its statistics
  simulate   replay the trace through Algorithm 1 (fidelity check)
  breakdown  decompose the iteration into CPU-only/GPU-only/parallel time
  predict    apply a what-if optimization and predict the iteration time
  sweep      predict every optimization and a distributed grid concurrently
  export     convert a trace to Chrome Trace Event JSON (chrome://tracing)
  diagnose   attribute the critical path by resource and training phase
  memory     simulate the memory timeline: peak, attribution, max batch fit
  serve      run the long-lived HTTP prediction service`)
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	model := fs.String("model", "resnet50", "zoo model name")
	device := fs.String("device", "2080ti", "device preset: 2080ti, p4000, v100")
	fw := fs.String("framework", "pytorch", "framework dialect: pytorch, mxnet, caffe")
	fp16 := fs.Bool("fp16", false, "collect under mixed precision")
	seed := fs.Uint64("seed", 0, "jitter seed")
	out := fs.String("o", "trace.json", "output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := daydream.Collect(daydream.CollectConfig{
		Model: *model, Device: *device, Framework: *fw,
		MixedPrecision: *fp16, Seed: *seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("traced %s on %s: iteration %v, %d activities, %d layer spans → %s\n",
		tr.Model, tr.Device, tr.IterationTime, len(tr.Activities), len(tr.LayerSpans), *out)
	return nil
}

func loadGraph(path string) (*trace.Trace, *daydream.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return daydream.LoadGraph(f)
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}
	fmt.Printf("model=%s device=%s framework=%s precision=%s\n",
		tr.Model, tr.Device, tr.Framework, tr.Precision)
	fmt.Printf("tasks=%d edges=%d\n", g.NumTasks(), g.NumEdges())
	for _, tid := range g.Threads() {
		fmt.Printf("  %-14s %6d tasks\n", tid, len(g.ThreadTasks(tid)))
	}
	fmt.Printf("GPU tasks mapped to layers: %.1f%%\n", 100*core.MappedFraction(g))
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}
	got, err := g.PredictIteration()
	if err != nil {
		return err
	}
	diff := 100 * (float64(got-tr.IterationTime) / float64(tr.IterationTime))
	fmt.Printf("traced iteration:    %v\n", tr.IterationTime)
	fmt.Printf("simulated iteration: %v (%+.3f%%)\n", got, diff)
	return nil
}

func cmdBreakdown(args []string) error {
	fs := flag.NewFlagSet("breakdown", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, _, err := loadGraph(*path)
	if err != nil {
		return err
	}
	b := daydream.ComputeBreakdown(tr)
	total := b.Total()
	row := func(name string, d time.Duration) {
		fmt.Printf("%-10s %12v  %5.1f%%\n", name, d, 100*float64(d)/float64(total))
	}
	row("CPU+GPU", b.Parallel)
	row("CPU-only", b.CPUOnly)
	row("GPU-only", b.GPUOnly)
	fmt.Printf("%-10s %12v\n", "total", total)
	return nil
}

// optFlagUsage generates the -opt help text from the optimization
// registry, so the CLI's accepted names can never drift from the
// library's.
func optFlagUsage() string {
	var b strings.Builder
	b.WriteString("optimization stack expression: registry names joined with '+' (e.g. amp+fusedadam)\n")
	for _, s := range daydream.Optimizations() {
		fmt.Fprintf(&b, "\t%-12s %s [%s", s.Name, s.Summary, s.Footprint)
		if s.ConeFriendly {
			b.WriteString(", incremental")
		}
		b.WriteString("]")
		if s.Params != "" {
			fmt.Fprintf(&b, " — needs %s", s.Params)
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// marketingName canonicalizes a device name (short preset or marketing
// form) to the marketing name, leaving unknown names untouched.
func marketingName(name string) string {
	presets := daydream.DeviceNames()
	for i, d := range daydream.Devices() {
		if presets[i] == name || d.Name == name {
			return d.Name
		}
	}
	return name
}

// timeoutContext builds a context for the -timeout flag: Background
// when the limit is zero (no deadline, no cancellation plumbing cost on
// the hot loop) and WithTimeout otherwise. The returned cancel is
// always safe to defer.
func timeoutContext(limit time.Duration) (context.Context, context.CancelFunc) {
	if limit <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), limit)
}

// parseGbpsList parses a comma-separated bandwidth list; Split always
// yields at least one element, so the result is never empty.
func parseGbpsList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		gbps, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -gbps element %q: %v", part, err)
		}
		out = append(out, gbps)
	}
	return out, nil
}

// parseKernelProfile parses "name=duration[,name=duration...]" with Go
// duration syntax ("sgemm=1.5ms,relu=20us").
func parseKernelProfile(s string) (daydream.KernelProfile, error) {
	if s == "" {
		return nil, nil
	}
	p := daydream.KernelProfile{}
	for _, pair := range strings.Split(s, ",") {
		name, dur, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -kprofile element %q (want name=duration)", pair)
		}
		d, err := time.ParseDuration(dur)
		if err != nil {
			return nil, fmt.Errorf("bad -kprofile duration in %q: %v", pair, err)
		}
		p[name] = d
	}
	return p, nil
}

// optParamFlags registers the topology-independent flags that feed
// OptimizationParams and returns a builder to run after parsing (each
// command registers its own topology flags). fromDevice supplies the
// profiled device (the trace's) for the upgrade what-if.
func optParamFlags(fs *flag.FlagSet) func(fromDevice string, topo daydream.Topology) (daydream.OptimizationParams, error) {
	device := fs.String("device", "v100", "target device for upgrade (preset or marketing name)")
	slice := fs.Int64("slice", 0, "P3 slice bytes (0 = 800KB default, <0 = plain FIFO)")
	kprofile := fs.String("kprofile", "", "kernel profile for kprofile: name=duration[,name=duration...]")
	scaleName := fs.String("scale-name", "", "kernel-name substring for scale")
	scaleFactor := fs.Float64("scale-factor", 0.5, "duration factor for scale")
	return func(fromDevice string, topo daydream.Topology) (daydream.OptimizationParams, error) {
		profile, err := parseKernelProfile(*kprofile)
		if err != nil {
			return daydream.OptimizationParams{}, err
		}
		return daydream.OptimizationParams{
			Topology:    topo,
			SliceBytes:  *slice,
			FromDevice:  fromDevice,
			ToDevice:    *device,
			Profile:     profile,
			ScaleTarget: *scaleName,
			ScaleFactor: *scaleFactor,
		}, nil
	}
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	opt := fs.String("opt", "amp", optFlagUsage())
	machines := fs.Int("machines", 4, "machines (distributed/p3)")
	gpus := fs.Int("gpus", 1, "GPUs per machine (distributed/p3)")
	gbps := fs.Float64("gbps", 10, "network bandwidth in Gbps (distributed/p3)")
	timeout := fs.Duration("timeout", 0, "abort the prediction after this duration (0 = no limit)")
	withMem := fs.Bool("mem", false, "also report the simulated peak memory, baseline vs optimized")
	params := optParamFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}
	p, err := params(tr.Device, daydream.NewTopology(*machines, *gpus, *gbps))
	if err != nil {
		return err
	}
	o, err := daydream.ParseOptimization(*opt, p)
	if err != nil {
		return err
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	baseline, predicted, err := daydream.Compare(g, o, daydream.WithContext(ctx))
	if err != nil {
		return err
	}
	fmt.Printf("baseline iteration:  %v\n", baseline)
	fmt.Printf("predicted with %s (%s): %v (%.1f%% change)\n",
		o.Name(), o.Footprint(), predicted, 100*(1-float64(predicted)/float64(baseline)))
	if *withMem {
		_, baseProf, err := daydream.ProfileOptimization(g, nil, daydream.WithContext(ctx))
		if err != nil {
			return fmt.Errorf("memory profile: %w", err)
		}
		_, optProf, err := daydream.ProfileOptimization(g, o, daydream.WithContext(ctx))
		if err != nil {
			return fmt.Errorf("memory profile: %w", err)
		}
		basePeak, optPeak := baseProf.MaxPeak(), optProf.MaxPeak()
		fmt.Printf("baseline peak memory:  %.2f GB\n", gib(basePeak))
		fmt.Printf("predicted peak memory: %.2f GB (%+.1f%% change)\n",
			gib(optPeak), 100*(float64(optPeak)/float64(basePeak)-1))
	}
	return nil
}

// cmdSweep answers a whole battery of what-if questions from one trace
// in a single concurrent sweep. By default the battery is every
// registry optimization buildable from the flags (plus the
// amp+fusedadam stack and a distributed grid over machine counts and
// bandwidths); -opt replaces it with explicit comma-separated stack
// expressions.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	gbpsList := fs.String("gbps", "10,20,40", "comma-separated bandwidths for the distributed grid")
	opt := fs.String("opt", "", "comma-separated stack expressions replacing the default battery (e.g. amp,amp+fusedadam)")
	machines := fs.Int("machines", 4, "machines for explicit -opt distributed/p3 expressions")
	gpus := fs.Int("gpus", 1, "GPUs per machine for explicit -opt distributed/p3 expressions")
	explain := fs.Bool("explain", false, "print the simulation tier each scenario dispatched to (replay/incremental/overlay/patch/clone)")
	window := fs.Int("window", 0, "simulate with a round window: retire rounds older than the last N into per-round summaries instead of keeping every per-task start (0 = full materialization)")
	timeout := fs.Duration("timeout", 0, "abort the sweep after this duration (0 = no limit); timed-out scenarios become typed error rows")
	params := optParamFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}
	bandwidths, err := parseGbpsList(*gbpsList)
	if err != nil {
		return err
	}
	// Explicit distributed/p3 expressions use the first grid bandwidth.
	p, err := params(tr.Device, daydream.NewTopology(*machines, *gpus, bandwidths[0]))
	if err != nil {
		return err
	}

	scenarios := []daydream.Scenario{{Name: "baseline (replay)"}}
	if *opt != "" {
		// Explicit battery: one scenario per stack expression; names
		// come from the optimization values themselves.
		for _, expr := range strings.Split(*opt, ",") {
			o, err := daydream.ParseOptimization(strings.TrimSpace(expr), p)
			if err != nil {
				return err
			}
			scenarios = append(scenarios, daydream.Scenario{Opt: o})
		}
	} else {
		// Default battery: every single-GPU registry optimization the
		// flags can build (cluster grids come below; unbuildable ones —
		// e.g. kprofile without -kprofile — are skipped), plus the
		// composed amp+fusedadam stack.
		setFlags := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
		// Flags that feed each optional spec: a Build failure is only
		// worth a warning when the user actually set one of them —
		// otherwise the spec is quietly out of the default battery.
		specFlags := map[string][]string{
			"upgrade":  {"device"},
			"kprofile": {"kprofile"},
			"scale":    {"scale-name", "scale-factor"},
		}
		for _, spec := range daydream.Optimizations() {
			if spec.Cluster {
				continue
			}
			if spec.Name == "upgrade" && marketingName(p.FromDevice) == marketingName(p.ToDevice) {
				continue // the trace is already on the target device
			}
			o, err := spec.Build(p)
			if err != nil {
				for _, name := range specFlags[spec.Name] {
					if setFlags[name] {
						fmt.Fprintf(os.Stderr, "daydream: sweep: skipping %s: %v\n", spec.Name, err)
						break
					}
				}
				continue
			}
			scenarios = append(scenarios, daydream.Scenario{Opt: o})
		}
		scenarios = append(scenarios, daydream.Scenario{
			Opt: daydream.Stack(daydream.OptAMP(), daydream.OptFusedAdam()),
		})
		for _, gbps := range bandwidths {
			for _, cfg := range []struct{ machines, gpus int }{
				{2, 1}, {4, 1}, {2, 2}, {4, 2},
			} {
				topo := daydream.NewTopology(cfg.machines, cfg.gpus, gbps)
				scenarios = append(scenarios, daydream.Scenario{Opt: daydream.OptDistributed(topo)})
			}
		}
	}

	if *window > 0 {
		for i := range scenarios {
			scenarios[i].SimOptions = append(scenarios[i].SimOptions,
				daydream.WithRoundWindow(*window))
		}
	}

	start := time.Now()
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	sweepOpts := []daydream.SweepOption{
		daydream.SweepWorkers(*workers), daydream.SweepContext(ctx),
	}
	if *explain && *window > 0 {
		// -explain reads retired-round counts and window occupancy off
		// each scenario's SimResult, so windowed explain runs retain it.
		sweepOpts = append(sweepOpts, daydream.SweepKeepSims())
	}
	// Per-scenario failures (e.g. vdnn on a model without offloadable
	// conv activations) are reported as rows, not a battery abort: the
	// sweep still returns every other scenario's prediction — and a
	// -timeout expiry turns the unfinished tail into typed rows.
	results, sweepErr := daydream.Sweep(g, scenarios, sweepOpts...)
	if results == nil {
		return sweepErr
	}
	fmt.Printf("traced iteration: %v — %d scenarios in %v\n\n",
		tr.IterationTime, len(scenarios), time.Since(start).Round(time.Millisecond))
	if *explain {
		fmt.Printf("%-34s %14s %10s  %s\n", "scenario", "predicted", "change", "tier")
	} else {
		fmt.Printf("%-34s %14s %10s\n", "scenario", "predicted", "change")
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-34s skipped: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Printf("%-34s %14v %+9.1f%%",
			r.Name, r.Value, 100*(float64(r.Value)/float64(tr.IterationTime)-1))
		if *explain {
			fmt.Printf("  %s", r.Tier)
			if r.Sim != nil && r.Sim.Windowed() {
				fmt.Printf("  window[retired=%d occupancy=%d]",
					r.Sim.RetiredRounds(), r.Sim.WindowOccupancy())
			}
			if p := pipelineRowParams(r.Name); p != "" {
				fmt.Printf("  %s", p)
			}
		}
		fmt.Println()
	}
	return nil
}

// pipelineRowParams decodes a pipeline stack element's inline grid for
// -explain rows ("pipeline:4x8:gpipe" → "stages=4 microbatches=8
// schedule=gpipe"); non-pipeline scenario names yield "".
func pipelineRowParams(name string) string {
	for _, elem := range strings.Split(name, "+") {
		arg, ok := strings.CutPrefix(elem, "pipeline:")
		if !ok {
			continue
		}
		grid, sched, has := strings.Cut(arg, ":")
		var s, m int
		if _, err := fmt.Sscanf(grid, "%dx%d", &s, &m); err != nil {
			continue
		}
		if !has {
			sched = "1f1b"
		}
		return fmt.Sprintf("stages=%d microbatches=%d schedule=%s", s, m, sched)
	}
	return ""
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, g, err := loadGraph(*path)
	if err != nil {
		return err
	}
	byResource, byPhase, err := daydream.Diagnose(g)
	if err != nil {
		return err
	}
	fmt.Printf("critical path of one %s iteration (%v):\n", tr.Model, tr.IterationTime)
	printAttribution := func(title string, as []daydream.PathAttribution) {
		fmt.Printf("\nby %s:\n", title)
		for _, a := range as {
			fmt.Printf("  %-14s %12v  (%d tasks)\n", a.Label, a.Time, a.Tasks)
		}
	}
	printAttribution("execution resource", byResource)
	printAttribution("training phase", byPhase)
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	path := fs.String("trace", "trace.json", "trace file")
	out := fs.String("o", "trace.chrome.json", "output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, _, err := loadGraph(*path)
	if err != nil {
		return err
	}
	o, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer o.Close()
	if err := tr.WriteChromeTrace(o); err != nil {
		return err
	}
	fmt.Printf("wrote %s — open in chrome://tracing or https://ui.perfetto.dev\n", *out)
	return nil
}
