// Command daydream-bench regenerates the paper's evaluation: every table
// and figure of §6 (Figures 5–10, §6.4, Tables 1–2), printed as aligned
// text tables with paper-vs-measured notes.
//
// Usage:
//
//	daydream-bench            # run everything, in paper order
//	daydream-bench -list      # list experiment IDs
//	daydream-bench -run fig8  # run experiments whose ID contains "fig8"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"daydream/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "only run experiments whose ID contains this substring")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	ran := 0
	for _, e := range exp.All() {
		if *run != "" && !strings.Contains(e.ID, *run) {
			continue
		}
		start := time.Now()
		tables, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "daydream-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := t.Format(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "daydream-bench:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "daydream-bench: no experiment matches -run %q (try -list)\n", *run)
		os.Exit(1)
	}
}
