// Command daydream-bench regenerates the paper's evaluation: every table
// and figure of §6 (Figures 5–10, §6.4, Tables 1–2), printed as aligned
// text tables with paper-vs-measured notes.
//
// Usage:
//
//	daydream-bench            # run everything, in paper order
//	daydream-bench -list      # list experiment IDs
//	daydream-bench -run fig8  # run experiments whose ID contains "fig8"
//	daydream-bench -micro     # pipeline micro-benchmarks → BENCH.json
//
// With -micro, the pipeline stages (trace collection, graph construction,
// simulation, clone, AMP transform, and a Figure-8-sized 76-scenario
// concurrent sweep) are measured with testing.Benchmark and written as
// machine-readable JSON (ns/op, bytes/op, allocs/op), so the performance
// trajectory is tracked across changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"daydream"
	"daydream/internal/core"
	"daydream/internal/exp"
	"daydream/internal/sweep"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "only run experiments whose ID contains this substring")
	micro := flag.Bool("micro", false, "run pipeline micro-benchmarks and write them as JSON")
	benchJSON := flag.String("benchjson", "BENCH.json", "output path for -micro results")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *micro {
		if err := runMicro(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "daydream-bench:", err)
			os.Exit(1)
		}
		return
	}
	ran := 0
	for _, e := range exp.All() {
		if *run != "" && !strings.Contains(e.ID, *run) {
			continue
		}
		start := time.Now()
		tables, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "daydream-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := t.Format(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "daydream-bench:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "daydream-bench: no experiment matches -run %q (try -list)\n", *run)
		os.Exit(1)
	}
}

// microResult is one benchmark line of BENCH.json.
type microResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchFile is the BENCH.json schema.
type benchFile struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workload   string        `json:"workload"`
	Benchmarks []microResult `json:"benchmarks"`
}

// runMicro measures the pipeline stages on the largest workload and the
// Figure-8-sized sweep, then writes the JSON report.
func runMicro(path string) error {
	const workload = "bert-large"
	tr, err := daydream.Collect(daydream.CollectConfig{Model: workload})
	if err != nil {
		return err
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		return err
	}
	fig8Scenarios, err := fig8SizedScenarios()
	if err != nil {
		return err
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"CollectTrace", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := daydream.Collect(daydream.CollectConfig{Model: workload}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BuildGraph", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := daydream.BuildGraph(tr); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Simulate", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.PredictIteration(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SimulateScratch", func(b *testing.B) {
			scratch := core.NewSimScratch()
			for i := 0; i < b.N; i++ {
				if _, err := g.PredictIteration(core.WithScratch(scratch)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Clone", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Clone()
			}
		}},
		{"AMPTransform", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := g.Clone()
				daydream.AMP(c)
			}
		}},
		{"Fig8Sweep76", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Run(nil, fig8Scenarios); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	out := benchFile{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   workload,
	}
	for _, bb := range benches {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bb.fn(b)
		})
		mr := microResult{
			Name:        bb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		out.Benchmarks = append(out.Benchmarks, mr)
		fmt.Printf("%-16s %12.0f ns/op %12d B/op %8d allocs/op\n",
			mr.Name, mr.NsPerOp, mr.BytesPerOp, mr.AllocsPerOp)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// fig8SizedScenarios builds the full Figure-8 prediction grid — 4 models
// × 19 distributed configurations = 76 scenarios over per-model profiles.
func fig8SizedScenarios() ([]sweep.Scenario, error) {
	var scenarios []sweep.Scenario
	for _, zoo := range []string{"resnet50", "gnmt", "bert-base", "bert-large"} {
		tr, err := daydream.Collect(daydream.CollectConfig{Model: zoo})
		if err != nil {
			return nil, err
		}
		g, err := daydream.BuildGraph(tr)
		if err != nil {
			return nil, err
		}
		for _, topo := range exp.Fig8Grid() {
			sc := exp.Fig8Scenario(g, topo)
			sc.Name = zoo + " " + sc.Name
			scenarios = append(scenarios, sc)
		}
	}
	return scenarios, nil
}
