// Command daydream-bench regenerates the paper's evaluation: every table
// and figure of §6 (Figures 5–10, §6.4, Tables 1–2), printed as aligned
// text tables with paper-vs-measured notes.
//
// Usage:
//
//	daydream-bench                         # run everything, in paper order
//	daydream-bench -list                   # list experiment IDs
//	daydream-bench -run fig8               # run experiments whose ID contains "fig8"
//	daydream-bench -micro                  # pipeline micro-benchmarks → BENCH.json
//	daydream-bench -micro -against BENCH.json  # …and fail on >25% regression
//	daydream-bench -serve                  # HTTP serving load harness (qps, P50/P99)
//
// With -micro, the pipeline stages (trace collection, graph construction,
// simulation, clone, AMP transform, clone-path, overlay-path and
// stacked-overlay (AMP+FusedAdam via one Stack value) scenario
// evaluation, the structural clone-vs-patch pair (Algorithm-6
// Distributed on bert-large via a private clone vs copy-on-write
// structural patch deltas), the scheduled clone-vs-patch pair (the same
// scenario under a custom Scheduler, run view-generically over the
// patch), the incremental tier (a warm IncrementalSim re-simulating a
// single-task delta's affected cone, and the per-layer Figure-5 grid
// swept over one shared baseline), and Figure-8-sized concurrent
// sweeps) are
// measured with
// testing.Benchmark and written as machine-readable JSON (ns/op,
// bytes/op, allocs/op, and scenarios/sec for the sweep benchmarks), so
// the performance trajectory is tracked across changes. With -against,
// the fresh numbers are compared to a committed baseline file and the
// run fails when any shared benchmark regresses beyond -tolerance
// (default 25%) in ns/op or allocs/op — the CI trajectory gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"daydream"
	"daydream/internal/core"
	"daydream/internal/exp"
	"daydream/internal/sweep"
	"daydream/internal/trace"
	"daydream/internal/whatif"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "only run experiments whose ID contains this substring")
	micro := flag.Bool("micro", false, "run pipeline micro-benchmarks and write them as JSON")
	benchJSON := flag.String("benchjson", "BENCH.json", "output path for -micro results")
	against := flag.String("against", "", "baseline BENCH.json to compare -micro results to (fails on regression)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression vs -against before failing")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); expiry surfaces as a typed cancellation error")
	serveLoad := flag.Bool("serve", false, "run the HTTP serving load harness over localhost and report qps with P50/P99")
	serveModel := flag.String("serve-model", "bert-large", "workload profiled for -serve")
	serveClients := flag.Int("serve-clients", 4, "closed-loop client goroutines for -serve")
	servePhase := flag.Duration("serve-phase", 3*time.Second, "duration of each -serve phase")
	flag.Parse()

	if *serveLoad {
		if err := runServeLoad(*serveModel, *serveClients, *servePhase); err != nil {
			fmt.Fprintln(os.Stderr, "daydream-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *micro {
		if err := runMicro(*benchJSON, *against, *tolerance, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "daydream-bench:", err)
			os.Exit(1)
		}
		return
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	ran := 0
	for _, e := range exp.All() {
		if *run != "" && !strings.Contains(e.ID, *run) {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			fmt.Fprintln(os.Stderr, "daydream-bench:", core.ContextError(cerr))
			os.Exit(1)
		}
		start := time.Now()
		tables, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "daydream-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := t.Format(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "daydream-bench:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "daydream-bench: no experiment matches -run %q (try -list)\n", *run)
		os.Exit(1)
	}
}

// timeoutContext builds a context for the -timeout flag: Background
// when the limit is zero (no deadline, and the benchmarks keep the
// nil-context fast path) and WithTimeout otherwise. The returned cancel
// is always safe to defer.
func timeoutContext(limit time.Duration) (context.Context, context.CancelFunc) {
	if limit <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), limit)
}

// microResult is one benchmark line of BENCH.json.
type microResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// ScenariosPerSec is sweep throughput, reported by the sweep
	// benchmarks so the overlay win stays visible in the trajectory.
	ScenariosPerSec float64 `json:"scenarios_per_sec,omitempty"`
}

// benchSweepWorkers pins the sweep benchmarks' worker count so their
// allocs/op do not vary with the machine's GOMAXPROCS.
const benchSweepWorkers = 4

// benchSched is the earliest-start policy forced onto the
// custom-scheduler slice path (the default-policy fast path only
// matches core.EarliestStart itself), so the scheduled benchmarks
// measure the view-generic scheduled simulator.
type benchSched struct{ core.EarliestStart }

// benchFile is the BENCH.json schema.
type benchFile struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workload   string        `json:"workload"`
	Benchmarks []microResult `json:"benchmarks"`
}

// runMicro measures the pipeline stages on the largest workload plus
// the scenario-evaluation paths and sweeps, writes the JSON report, and
// (when against is set) gates on regressions vs the committed baseline.
func runMicro(path, against string, tolerance float64, timeout time.Duration) error {
	ctx, cancel := timeoutContext(timeout)
	defer cancel()
	// With no -timeout the sweeps run context-free, so the benchmarked
	// numbers keep the nil-context fast path; with one, the deadline
	// rides the sweep's cancellation plumbing and aborts mid-sweep.
	sweepOpts := []sweep.Option{sweep.Workers(benchSweepWorkers)}
	if timeout > 0 {
		sweepOpts = append(sweepOpts, sweep.WithContext(ctx))
	}
	const workload = "bert-large"
	tr, err := daydream.Collect(daydream.CollectConfig{Model: workload})
	if err != nil {
		return err
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		return err
	}
	fig8Scenarios, err := fig8SizedScenarios()
	if err != nil {
		return err
	}
	overlayScenarios := make([]sweep.Scenario, 64)
	for i := range overlayScenarios {
		overlayScenarios[i] = sweep.Scenario{
			Name: fmt.Sprintf("amp%d", i),
			Opt:  daydream.OptAMP(),
		}
	}
	// The incremental benchmarks' single-task delta lands on the task
	// that finishes last on the baseline schedule, so the affected cone
	// is real (the makespan moves) yet sublinear in the graph.
	coldRes, err := g.Simulate()
	if err != nil {
		return err
	}
	var critTask *core.Task
	for _, u := range g.Tasks() {
		if coldRes.Finish(u) == coldRes.Makespan {
			critTask = u
		}
	}
	layerScenarios := fig5LayerScenarios(g)
	var pipelineScenarios []sweep.Scenario
	for _, stages := range []int{2, 4} {
		for _, mb := range []int{2, 4, 8} {
			for _, sched := range []string{whatif.Schedule1F1B, whatif.ScheduleGPipe} {
				pipelineScenarios = append(pipelineScenarios, sweep.Scenario{
					Opt: whatif.OptPipeline(whatif.PipelineOptions{
						Stages: stages, Microbatches: mb, Schedule: sched,
					}),
				})
			}
		}
	}

	// The serving benchmarks go through a real localhost listener so
	// BENCH.json tracks the whole request path, not just the simulator.
	var trBuf bytes.Buffer
	if err := tr.WriteJSON(&trBuf); err != nil {
		return err
	}
	sb, err := startServeBench(trBuf.Bytes(), benchSweepWorkers)
	if err != nil {
		return err
	}
	defer sb.close()

	benches := []struct {
		name      string
		scenarios int // >0: sweep benchmark, reports scenarios/sec
		fn        func(b *testing.B)
	}{
		{"CollectTrace", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := daydream.Collect(daydream.CollectConfig{Model: workload}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BuildGraph", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := daydream.BuildGraph(tr); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Simulate", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.PredictIteration(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SimulateScratch", 0, func(b *testing.B) {
			scratch := core.NewSimScratch()
			for i := 0; i < b.N; i++ {
				if _, err := g.PredictIteration(core.WithScratch(scratch)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Clone", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Clone()
			}
		}},
		{"AMPTransform", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := g.Clone()
				daydream.AMP(c)
			}
		}},
		// One duration-only scenario (Algorithm-3 AMP) end to end on
		// both evaluation paths — the clone-vs-overlay headline.
		{"CloneScenario", 0, func(b *testing.B) {
			scratch := core.NewSimScratch()
			for i := 0; i < b.N; i++ {
				c := g.Clone()
				daydream.AMP(c)
				if _, err := c.Simulate(core.WithScratch(scratch)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"OverlayScenario", 0, func(b *testing.B) {
			scratch := core.NewSimScratch()
			o := daydream.NewOverlay(g)
			buf := &daydream.SimResult{}
			for i := 0; i < b.N; i++ {
				o.Reset(g)
				daydream.AMPOverlay(o)
				if _, err := o.Simulate(core.WithScratch(scratch), core.WithResultBuffer(buf)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The same shape as OverlayScenario but through a warm
		// IncrementalSim: a single-task duration delta re-simulates only
		// the affected cone of the cached schedule instead of replaying
		// all ~12.7k tasks — the incremental-vs-overlay headline.
		{"IncrementalScenario", 0, func(b *testing.B) {
			sim, err := daydream.NewIncrementalSim(g)
			if err != nil {
				b.Fatal(err)
			}
			o := daydream.NewOverlay(g)
			buf := &daydream.SimResult{}
			base := critTask.Duration
			for i := 0; i < b.N; i++ {
				o.Reset(g)
				o.SetDuration(critTask, base+time.Duration(1+i%2)*time.Microsecond)
				if _, err := sim.ReSimulate(o, core.WithResultBuffer(buf)); err != nil {
					b.Fatal(err)
				}
				if sim.LastFellBack() {
					b.Fatal("single-task delta fell back to cold simulation")
				}
			}
		}},
		// A composed what-if (AMP+FusedAdam as one Stack value) end to
		// end through one overlay — the trajectory gate's eye on the
		// stacked clone-free path.
		{"StackedOverlayScenario", 0, func(b *testing.B) {
			stacked := daydream.Stack(daydream.OptAMP(), daydream.OptFusedAdam())
			scratch := core.NewSimScratch()
			o := daydream.NewOverlay(g)
			buf := &daydream.SimResult{}
			for i := 0; i < b.N; i++ {
				o.Reset(g)
				if err := core.ApplyOverlay(stacked, o); err != nil {
					b.Fatal(err)
				}
				if _, err := o.Simulate(core.WithScratch(scratch), core.WithResultBuffer(buf)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// One structural scenario (Algorithm-6 Distributed, 4×2 @
		// 10Gbps) end to end on both evaluation paths — the
		// clone-vs-patch headline for structural what-ifs.
		{"StructuralCloneScenario", 0, func(b *testing.B) {
			topo := daydream.NewTopology(4, 2, 10)
			scratch := core.NewSimScratch()
			for i := 0; i < b.N; i++ {
				c := g.Clone()
				if err := daydream.Distributed(c, topo); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Simulate(core.WithScratch(scratch)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"StructuralPatchScenario", 0, func(b *testing.B) {
			opt := daydream.OptDistributed(daydream.NewTopology(4, 2, 10))
			scratch := core.NewSimScratch()
			p := daydream.NewPatch(g)
			buf := &daydream.SimResult{}
			for i := 0; i < b.N; i++ {
				p.Reset(g)
				if err := opt.Apply(p); err != nil {
					b.Fatal(err)
				}
				if _, err := p.Simulate(core.WithScratch(scratch), core.WithResultBuffer(buf)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The same structural scenario under a custom (non-default)
		// Scheduler on both evaluation paths — the clone-vs-patch
		// headline for scheduled what-ifs. Before schedulers were
		// view-generic, the patch form fell back to materializing a
		// private clone per scenario; now it runs the slice-frontier
		// policy directly over the composite view.
		{"ScheduledCloneScenario", 0, func(b *testing.B) {
			topo := daydream.NewTopology(4, 2, 10)
			scratch := core.NewSimScratch()
			for i := 0; i < b.N; i++ {
				c := g.Clone()
				if err := daydream.Distributed(c, topo); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Simulate(core.WithScratch(scratch), core.WithScheduler(benchSched{})); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ScheduledPatchScenario", 0, func(b *testing.B) {
			opt := daydream.OptDistributed(daydream.NewTopology(4, 2, 10))
			scratch := core.NewSimScratch()
			p := daydream.NewPatch(g)
			buf := &daydream.SimResult{}
			for i := 0; i < b.N; i++ {
				p.Reset(g)
				if err := opt.Apply(p); err != nil {
					b.Fatal(err)
				}
				if _, err := p.Simulate(core.WithScratch(scratch), core.WithResultBuffer(buf), core.WithScheduler(benchSched{})); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The sweep benchmarks pin their worker count so allocs/op
		// (per-worker scratch/overlay/result state) stay comparable
		// across machines with different GOMAXPROCS — the trajectory
		// gate depends on that.
		{"OverlaySweep64", 64, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Run(g, overlayScenarios, sweepOpts...); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The ampgrid experiment's shape: one timing-only scenario per
		// BERT_Large DNN layer, all over one shared baseline — the
		// sweep's worker-owned incremental tier carries all but each
		// worker's warm-up scenario.
		{"Fig5IncrementalSweep", len(layerScenarios), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Run(g, layerScenarios, sweepOpts...); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Fig8Sweep76", 76, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Run(nil, fig8Scenarios, sweepOpts...); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The pipegrid experiment's shape: every (stages × microbatches
		// × schedule) partitioning as a structural patch scenario under
		// its carried 1F1B/GPipe scheduler, all over one shared
		// baseline.
		{"PipelineSweep", len(pipelineScenarios), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Run(g, pipelineScenarios, sweepOpts...); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// A Repeat(1000)-scale pipeline simulation in windowed mode:
		// 1000 microbatches through 4 stages under 1F1B with an 8-round
		// window. Beyond the ns/op trajectory this pins the window's
		// memory contract on every run — all but the last 8 rounds must
		// retire, and the per-task start storage must stay O(window)
		// (1F1B's admission cap bounds the skew), not O(microbatches).
		{"WindowedRepeatSimulate", 0, func(b *testing.B) {
			opt := whatif.OptPipeline(whatif.PipelineOptions{Stages: 4, Microbatches: 1000})
			p := daydream.NewPatch(g)
			if err := opt.Apply(p); err != nil {
				b.Fatal(err)
			}
			const stages, rounds, window = 4, 1000, 8
			perRound := (p.NumTasks() - g.NumTasks() + rounds - 1) / rounds
			budget := g.NumTasks() + (window+2*stages)*2*perRound
			sched := core.OptScheduler(opt)
			scratch := core.NewSimScratch()
			buf := &daydream.SimResult{}
			for i := 0; i < b.N; i++ {
				res, err := p.Simulate(core.WithScratch(scratch), core.WithResultBuffer(buf),
					core.WithScheduler(sched), core.WithRoundWindow(window))
				if err != nil {
					b.Fatal(err)
				}
				if got := res.RetiredRounds(); got != rounds-window {
					b.Fatalf("retired %d rounds, want %d", got, rounds-window)
				}
				if occ := res.WindowOccupancy(); occ > budget {
					b.Fatalf("window occupancy %d exceeds O(window) budget %d", occ, budget)
				}
			}
		}},
		// The memory-timeline post-pass alone: sweep the baseline's
		// alloc/free events over the already-computed cold schedule.
		// This is the marginal cost every tier pays to add a memory
		// profile to an existing simulation.
		{"MemoryTimeline", 0, func(b *testing.B) {
			ann, err := daydream.AnnotateMemory(g)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := daydream.ComputeMemoryProfile(g, coldRes, ann); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// A full memory-aware what-if end to end: vDNN_all surgery as
		// patch deltas, simulation under the carried copy-stream
		// scheduler, and the profile with the offload/prefetch tensor
		// rewrite — both prediction axes from one simulation.
		{"MemoryProfileScenario", 0, func(b *testing.B) {
			opt := whatif.OptVDNN(whatif.VDNNOptions{
				OffloadLayer: func(gr trace.GradientInfo) bool { return gr.ActBytes > 0 },
			})
			for i := 0; i < b.N; i++ {
				if _, _, err := daydream.ProfileOptimization(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The capacity inversion: each op answers "largest resnet50
		// batch under 8 whose simulated peak fits a 2080 Ti", tracing
		// and profiling every candidate through the sweep tier.
		{"MaxBatchFit", 0, func(b *testing.B) {
			build := func(batch int) (*daydream.Graph, error) {
				m, err := daydream.ModelByNameAtBatch("resnet50", batch)
				if err != nil {
					return nil, err
				}
				btr, err := daydream.Collect(daydream.CollectConfig{CustomModel: m})
				if err != nil {
					return nil, err
				}
				return daydream.BuildGraph(btr)
			}
			for i := 0; i < b.N; i++ {
				if _, err := daydream.MaxBatchFit(11<<30, build, nil, 8); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// One HTTP predict round-trip per op — a never-seen scenario
		// (cache miss, real simulation) vs a repeated one (cache hit) —
		// and an 8-row sweep grid per op. scenarios/sec is requests/sec
		// for the predicts and rows/sec for the grid.
		{"ServePredict", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sb.predictUnique(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ServePredictCached", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sb.predictCached(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ServeSweep", sweepGridSize, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sb.sweepGrid(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	out := benchFile{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   workload,
	}
	for _, bb := range benches {
		if cerr := ctx.Err(); cerr != nil {
			return core.ContextError(cerr)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bb.fn(b)
		})
		mr := microResult{
			Name:        bb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if bb.scenarios > 0 && mr.NsPerOp > 0 {
			mr.ScenariosPerSec = float64(bb.scenarios) * 1e9 / mr.NsPerOp
		}
		out.Benchmarks = append(out.Benchmarks, mr)
		fmt.Printf("%-16s %12.0f ns/op %12d B/op %8d allocs/op",
			mr.Name, mr.NsPerOp, mr.BytesPerOp, mr.AllocsPerOp)
		if mr.ScenariosPerSec > 0 {
			fmt.Printf("  %8.0f scenarios/s", mr.ScenariosPerSec)
		}
		fmt.Println()
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if against != "" {
		return checkTrajectory(against, &out, tolerance)
	}
	return nil
}

// checkTrajectory compares fresh micro results to a committed baseline
// file and errors when any benchmark present in both regresses beyond
// the tolerance in ns/op or allocs/op, or when a baseline benchmark is
// missing from the fresh run entirely — a silently dropped benchmark
// would otherwise read as "no regression".
func checkTrajectory(againstPath string, fresh *benchFile, tolerance float64) error {
	raw, err := os.ReadFile(againstPath)
	if err != nil {
		return fmt.Errorf("trajectory baseline: %w", err)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("trajectory baseline %s: %w", againstPath, err)
	}
	byName := make(map[string]microResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	freshNames := make(map[string]bool, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshNames[b.Name] = true
	}
	var regressions []string
	for _, was := range base.Benchmarks {
		if !freshNames[was.Name] {
			regressions = append(regressions, fmt.Sprintf(
				"%s: present in baseline but missing from this run", was.Name))
		}
	}
	for _, now := range fresh.Benchmarks {
		was, ok := byName[now.Name]
		if !ok {
			continue // new benchmark: no baseline yet
		}
		if was.NsPerOp > 0 && now.NsPerOp > was.NsPerOp*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f (+%.0f%%)",
				now.Name, now.NsPerOp, was.NsPerOp, 100*(now.NsPerOp/was.NsPerOp-1)))
		}
		// Allocation counts are machine-independent: hold them to the
		// same tolerance (with +2 absolute slack for tiny counts).
		if limit := float64(was.AllocsPerOp)*(1+tolerance) + 2; float64(now.AllocsPerOp) > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d",
				now.Name, now.AllocsPerOp, was.AllocsPerOp))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench trajectory regressed beyond %.0f%% vs %s:\n  %s",
			100*tolerance, againstPath, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("trajectory OK vs %s (tolerance %.0f%%)\n", againstPath, 100*tolerance)
	return nil
}

// fig5LayerScenarios builds the ampgrid experiment's per-layer AMP
// grid over an already-built profile: one duration-only scenario per
// DNN layer, every scenario sharing the one baseline so the sweep's
// incremental tier engages.
func fig5LayerScenarios(g *core.Graph) []sweep.Scenario {
	ix := g.LayerPhaseIndex()
	scenarios := make([]sweep.Scenario, ix.Layers())
	for layer := range scenarios {
		layer := layer
		scenarios[layer] = sweep.Scenario{
			Name: fmt.Sprintf("layer-%d", layer),
			ScaleTransform: func(o *core.Overlay) error {
				compute := ix.GPUComputeBound()
				for i, u := range ix.GPUTasks() {
					if !u.HasLayer || u.LayerIndex != layer {
						continue
					}
					if compute[i] {
						o.SetDuration(u, o.Duration(u)/3)
					} else {
						o.SetDuration(u, o.Duration(u)/2)
					}
				}
				return nil
			},
		}
	}
	return scenarios
}

// fig8SizedScenarios builds the full Figure-8 prediction grid — 4 models
// × 19 distributed configurations = 76 scenarios over per-model profiles.
func fig8SizedScenarios() ([]sweep.Scenario, error) {
	var scenarios []sweep.Scenario
	for _, zoo := range []string{"resnet50", "gnmt", "bert-base", "bert-large"} {
		tr, err := daydream.Collect(daydream.CollectConfig{Model: zoo})
		if err != nil {
			return nil, err
		}
		g, err := daydream.BuildGraph(tr)
		if err != nil {
			return nil, err
		}
		for _, topo := range exp.Fig8Grid() {
			sc := exp.Fig8Scenario(g, topo)
			sc.Name = zoo + " " + sc.Name
			scenarios = append(scenarios, sc)
		}
	}
	return scenarios, nil
}
