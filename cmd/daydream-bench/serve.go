package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"daydream"
	"daydream/internal/serve"
)

// serveBench hosts an in-process prediction server on a real localhost
// TCP listener, so the load harness and the Serve* micro benchmarks
// measure the full request path — kernel sockets, HTTP framing, JSON,
// admission, cache, simulation — not a handler called in a vacuum.
type serveBench struct {
	srv    *daydream.Server
	hs     *http.Server
	ln     net.Listener
	url    string
	client *http.Client
	baseID string
	seq    atomic.Int64
}

func startServeBench(traceJSON []byte, clients int) (*serveBench, error) {
	srv := daydream.NewServer(daydream.ServeConfig{
		// One queue slot per client beyond the workers: the harness is
		// a closed loop, so admission should never shed.
		QueueDepth: 2 * clients,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sb := &serveBench{
		srv:    srv,
		hs:     &http.Server{Handler: srv.Handler()},
		ln:     ln,
		url:    "http://" + ln.Addr().String(),
		client: &http.Client{},
	}
	go func() { _ = sb.hs.Serve(ln) }()

	resp, err := sb.client.Post(sb.url+"/v1/baselines", "application/json", bytes.NewReader(traceJSON))
	if err != nil {
		sb.close()
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		sb.close()
		return nil, fmt.Errorf("serve bench upload: status %d: %s", resp.StatusCode, body)
	}
	var up serve.UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		sb.close()
		return nil, err
	}
	sb.baseID = up.ID
	return sb, nil
}

func (sb *serveBench) close() {
	ctx, cancel := timeoutContext(5 * time.Second)
	defer cancel()
	_ = sb.hs.Shutdown(ctx)
	_ = sb.srv.Shutdown(ctx)
}

// post fires one request and fails on anything but 200.
func (sb *serveBench) post(path string, body []byte) error {
	resp, err := sb.client.Post(sb.url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, data)
	}
	return nil
}

// predictUnique asks a never-before-seen scenario — a COZ-style scale
// of the pointwise elementwise kernels, the largest kernel family in
// the BERT profile, whose factor encodes a global sequence number — so
// every request misses the cache and pays for a real simulation. The
// wide match rides the dense overlay tier: its delta cone would cover
// nearly the whole graph, where a full replay is cheaper than an
// incremental resimulation.
func (sb *serveBench) predictUnique() error {
	n := sb.seq.Add(1)
	body := fmt.Sprintf(
		`{"opt":"scale","params":{"scale_target":"Pointwise","scale_factor":%.9f}}`,
		0.5+float64(n)*1e-9)
	return sb.post("/v1/baselines/"+sb.baseID+"/predict", []byte(body))
}

// predictCached repeats one constant scenario: after the first miss,
// every request is a cache hit.
func (sb *serveBench) predictCached() error {
	return sb.post("/v1/baselines/"+sb.baseID+"/predict", []byte(`{"opt":"amp"}`))
}

// sweepGridSize rows per ServeSweep request: every registry entry that
// succeeds on a single-GPU BERT profile, plus two stacks.
const sweepGridSize = 8

func (sb *serveBench) sweepGrid() error {
	body := `{"opts":["amp","fusedadam","reconbn","reconbn-removal","upgrade","scale","amp+fusedadam","amp+reconbn"],` +
		`"params":{"from_device":"2080ti","to_device":"v100","scale_target":"sgemm","scale_factor":0.5}}`
	return sb.post("/v1/baselines/"+sb.baseID+"/sweep", []byte(body))
}

// runServeLoad is the -serve load harness: closed-loop clients hammer
// the in-process server over localhost for two phases — unique
// scenarios (every request simulates) and cache-hit repeats — and
// report queries/sec with P50/P99 per phase, separately, since the two
// regimes differ by orders of magnitude.
func runServeLoad(model string, clients int, phaseDur time.Duration) error {
	fmt.Printf("serve load: collecting %s profile...\n", model)
	tr, err := daydream.Collect(daydream.CollectConfig{Model: model})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		return err
	}
	sb, err := startServeBench(buf.Bytes(), clients)
	if err != nil {
		return err
	}
	defer sb.close()
	fmt.Printf("serve load: %s on %s, %d clients, %v per phase\n\n",
		model, sb.url, clients, phaseDur)

	phases := []struct {
		name string
		fn   func() error
	}{
		{"predict-unique", sb.predictUnique},
		{"predict-cached", sb.predictCached},
	}
	fmt.Printf("%-16s %10s %10s %12s %12s %8s\n",
		"phase", "requests", "qps", "p50", "p99", "errors")
	for _, ph := range phases {
		n, errs, qps, p50, p99 := loadPhase(ph.fn, clients, phaseDur)
		fmt.Printf("%-16s %10d %10.0f %12v %12v %8d\n",
			ph.name, n, qps, p50, p99, errs)
		if ph.name == "predict-unique" {
			verdict := "PASS"
			if qps < 500 || p99 >= 50*time.Millisecond {
				verdict = "FAIL"
			}
			fmt.Printf("%-16s target ≥500 qps at p99 < 50ms: %s\n", "", verdict)
		}
	}
	return nil
}

// loadPhase drives fn from `clients` closed-loop goroutines for dur and
// returns request count, error count, throughput, and latency
// percentiles over every successful request.
func loadPhase(fn func() error, clients int, dur time.Duration) (n, errs int, qps float64, p50, p99 time.Duration) {
	var wg sync.WaitGroup
	lats := make([][]time.Duration, clients)
	errCounts := make([]int, clients)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if err := fn(); err != nil {
					errCounts[c]++
					continue
				}
				lats[c] = append(lats[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for c := range lats {
		all = append(all, lats[c]...)
		errs += errCounts[c]
	}
	n = len(all) + errs
	if len(all) == 0 {
		return n, errs, 0, 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	qps = float64(len(all)) / elapsed.Seconds()
	p50 = all[len(all)/2]
	p99 = all[(len(all)*99)/100]
	return n, errs, qps, p50, p99
}
