package daydream_test

import (
	"bytes"
	"testing"

	"daydream"
	"daydream/internal/dnn"
)

func TestDiagnoseAPI(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "bert-large"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	byResource, byPhase, err := daydream.Diagnose(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(byResource) == 0 || len(byPhase) == 0 {
		t.Fatal("empty diagnosis")
	}
	// BERT-Large's critical path is CPU-dominated, led by the weight
	// update (the paper's §6.3 bottleneck).
	if byResource[0].Label != "cpu" {
		t.Errorf("dominant resource = %q, want cpu", byResource[0].Label)
	}
	if byPhase[0].Label != "weight_update" {
		t.Errorf("dominant phase = %q, want weight_update", byPhase[0].Label)
	}
}

func TestDeviceUpgradeAPI(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	base, pred, err := daydream.Compare(g, func(c *daydream.Graph) error {
		// The trace records the full marketing name; both resolve.
		return daydream.DeviceUpgrade(c, tr.Device, "v100")
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred >= base {
		t.Fatalf("V100 upgrade predicted no gain: %v vs %v", pred, base)
	}
	if err := daydream.DeviceUpgrade(g.Clone(), "tpu", "v100"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestKernelProfileAPI(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "resnet50"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := daydream.BuildGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	if n := daydream.ApplyKernelProfile(g, daydream.KernelProfile{"sgemm": 0}); n == 0 {
		t.Fatal("profile matched nothing")
	}
}

func TestMemoryAPI(t *testing.T) {
	m, err := daydream.ModelByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	f := daydream.EstimateMemory(m)
	if f.Total() <= 0 {
		t.Fatal("empty footprint")
	}
	b := daydream.MaxBatchSize(func(batch int) *daydream.Model {
		return dnn.ResNet50(batch)
	}, 11<<30)
	if b <= 0 {
		t.Fatal("nothing fits 11GB?")
	}
}

func TestChromeExportAPI(t *testing.T) {
	tr, err := daydream.Collect(daydream.CollectConfig{Model: "gnmt"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty chrome export")
	}
}
