module daydream

go 1.24
