package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latRingSize bounds each endpoint's latency sample ring. P50/P99 are
// computed over the last latRingSize requests — a sliding window, not
// all-time, so a warmed-up server's percentiles reflect current load.
const latRingSize = 1024

// endpointStats aggregates one endpoint's counters and latency window.
type endpointStats struct {
	count  atomic.Int64
	errors atomic.Int64

	mu   sync.Mutex
	ring [latRingSize]int64
	n    int64 // total samples ever recorded
}

func (e *endpointStats) record(d time.Duration, isErr bool) {
	e.count.Add(1)
	if isErr {
		e.errors.Add(1)
	}
	e.mu.Lock()
	e.ring[e.n%latRingSize] = int64(d)
	e.n++
	e.mu.Unlock()
}

// EndpointSnapshot is one endpoint's /statsz entry.
type EndpointSnapshot struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	AvgNS  int64 `json:"avg_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
}

func (e *endpointStats) snapshot() EndpointSnapshot {
	s := EndpointSnapshot{Count: e.count.Load(), Errors: e.errors.Load()}
	e.mu.Lock()
	n := e.n
	if n > latRingSize {
		n = latRingSize
	}
	window := append([]int64(nil), e.ring[:n]...)
	e.mu.Unlock()
	if len(window) == 0 {
		return s
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	var sum int64
	for _, v := range window {
		sum += v
	}
	s.AvgNS = sum / int64(len(window))
	s.P50NS = window[len(window)/2]
	s.P99NS = window[(len(window)*99)/100]
	return s
}

// stats is the server-wide counter set behind /statsz.
type stats struct {
	start time.Time

	upload   endpointStats
	predict  endpointStats
	sweep    endpointStats
	diagnose endpointStats
	memory   endpointStats

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64
	rejected    atomic.Int64
	evictions   atomic.Int64
}

func (s *stats) endpoint(name string) *endpointStats {
	switch name {
	case "upload":
		return &s.upload
	case "predict":
		return &s.predict
	case "sweep":
		return &s.sweep
	case "diagnose":
		return &s.diagnose
	case "memory":
		return &s.memory
	}
	return nil
}

// StatsResponse is the /statsz body.
type StatsResponse struct {
	UptimeMS  int64 `json:"uptime_ms"`
	Baselines int   `json:"baselines"`
	// QueueDepth counts requests currently holding or waiting for a
	// worker slot; Workers is the concurrency bound.
	QueueDepth int64 `json:"queue_depth"`
	Workers    int   `json:"workers"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`
	Coalesced    int64   `json:"coalesced"`
	Rejected     int64   `json:"rejected"`
	Evictions    int64   `json:"evictions"`

	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
}
