package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"daydream/internal/core"
	"daydream/internal/mem"
	"daydream/internal/sweep"
	"daydream/internal/whatif"
)

// handlerFunc is a handler that reports failure as an error; wrap maps
// it onto the HTTP taxonomy and records latency.
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/baselines", s.wrap("upload", s.handleUpload))
	mux.HandleFunc("POST /v1/baselines/{id}/predict", s.wrap("predict", s.handlePredict))
	mux.HandleFunc("POST /v1/baselines/{id}/sweep", s.wrap("sweep", s.handleSweep))
	mux.HandleFunc("GET /v1/baselines/{id}/diagnose", s.wrap("diagnose", s.handleDiagnose))
	mux.HandleFunc("GET /v1/baselines/{id}/memory", s.wrap("memory", s.handleMemory))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func (s *Server) wrap(name string, h handlerFunc) http.HandlerFunc {
	ep := s.stats.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, ErrDraining)
			return
		}
		start := time.Now()
		err := h(w, r)
		if err != nil {
			writeError(w, err)
		}
		ep.record(time.Since(start), err != nil)
	}
}

// handleUpload ingests a trace: content-addressed dedupe, then the
// canonical LoadGraph path, validation, one baseline simulation (kept
// for diagnose), and layer-index memoization — all before publication,
// so every later request reads a fully-built immutable baseline.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	id := "b" + hex.EncodeToString(sum[:8])

	// Same bytes, same ID: answer an existing baseline without
	// rebuilding (and refresh its LRU standing).
	if b, err := s.retain(id); err == nil {
		defer s.releaseBaseline(b)
		writeJSON(w, uploadResponse(b, false))
		return nil
	}

	if !s.track() {
		return ErrDraining
	}
	defer s.untrack()
	if err := s.acquire(r.Context()); err != nil {
		return err
	}
	defer s.release()

	tr, g, err := core.LoadGraph(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	defer cancel()
	res, err := g.Simulate(core.WithContext(ctx))
	if err != nil {
		return err
	}
	g.LayerPhaseIndex()

	b, created := s.insert(&baseline{
		id: id, tr: tr, g: g, res: res, baselineNS: res.Makespan,
	})
	writeJSON(w, uploadResponse(b, created))
	return nil
}

func uploadResponse(b *baseline, created bool) UploadResponse {
	return UploadResponse{
		ID:         b.id,
		Created:    created,
		Model:      b.tr.Model,
		Device:     b.tr.Device,
		Tasks:      b.g.NumTasks(),
		Edges:      b.g.NumEdges(),
		BaselineNS: int64(b.baselineNS),
	}
}

// resolveTimeout merges a request's optional Timeout field with the
// server ceiling: a request may shorten its budget, never extend it.
func (s *Server) resolveTimeout(field string) (time.Duration, error) {
	timeout := s.cfg.RequestTimeout
	if field == "" {
		return timeout, nil
	}
	d, err := time.ParseDuration(field)
	if err != nil {
		return 0, &badRequest{err}
	}
	if d <= 0 {
		return 0, &badRequest{errors.New("serve: timeout must be positive")}
	}
	if d < timeout {
		timeout = d
	}
	return timeout, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) error {
	b, err := s.retain(r.PathValue("id"))
	if err != nil {
		return err
	}
	defer s.releaseBaseline(b)

	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return &badRequest{err}
	}
	if strings.TrimSpace(req.Opt) == "" {
		return &badRequest{errors.New(`serve: missing "opt" expression`)}
	}
	timeout, err := s.resolveTimeout(req.Timeout)
	if err != nil {
		return err
	}
	opt, err := whatif.ParseStack(req.Opt, req.Params.optParams())
	if err != nil {
		return &badRequest{err}
	}

	stack := canonStack(req.Opt)
	key := b.id + "|" + stack + "|" + req.Params.canon() + "|" + timeout.String()
	resp := PredictResponse{ID: b.id, Opt: stack, BaselineNS: int64(b.baselineNS)}

	if out, ok := s.cache.get(key); ok {
		s.stats.cacheHits.Add(1)
		fillPredict(&resp, out)
		resp.Cached = true
		writeJSON(w, resp)
		return nil
	}
	s.stats.cacheMisses.Add(1)

	// Single-flight: the leader computes under the server's base
	// context in a drain-tracked goroutine; every identical concurrent
	// request waits on the same call. The computation is pinned to its
	// own baseline reference so waiters hanging up cannot expose it to
	// eviction mid-simulation.
	c, leader := s.group.join(key)
	if leader {
		if !s.track() {
			s.group.finish(key, c, outcome{}, ErrDraining)
			return ErrDraining
		}
		pin, pinErr := s.retain(b.id)
		if pinErr != nil {
			// Unreachable while the handler's own reference pins b,
			// but fail the call rather than trust that forever.
			s.untrack()
			s.group.finish(key, c, outcome{}, pinErr)
			return pinErr
		}
		go func() {
			defer s.untrack()
			defer s.releaseBaseline(pin)
			out, err := s.compute(pin.g, opt, timeout)
			if err == nil {
				s.cache.put(key, out)
			}
			s.group.finish(key, c, out, err)
		}()
	} else {
		s.stats.coalesced.Add(1)
	}

	select {
	case <-c.done:
		if c.err != nil {
			return c.err
		}
		fillPredict(&resp, c.out)
		resp.Coalesced = !leader
		writeJSON(w, resp)
		return nil
	case <-r.Context().Done():
		// The client gave up; the leader's computation (if any) keeps
		// running under baseCtx and will still populate the cache.
		return r.Context().Err()
	}
}

func fillPredict(resp *PredictResponse, out outcome) {
	resp.PredictedNS = int64(out.value)
	resp.Tier = out.tier
	if resp.BaselineNS > 0 {
		resp.ChangePct = 100 * float64(resp.PredictedNS-resp.BaselineNS) / float64(resp.BaselineNS)
	}
}

// compute runs one scenario through the shared warm pool under a fresh
// deadline slice of the server's base context.
func (s *Server) compute(g *core.Graph, opt core.Optimization, timeout time.Duration) (outcome, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		return outcome{}, err
	}
	defer s.release()
	rows, err := s.pool.Run(g, []sweep.Scenario{{Opt: opt}},
		sweep.Workers(1), sweep.WithContext(ctx))
	if err != nil {
		return outcome{}, err
	}
	if rows[0].Err != nil {
		return outcome{}, rows[0].Err
	}
	return outcome{value: rows[0].Value, tier: rows[0].Tier}, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	b, err := s.retain(r.PathValue("id"))
	if err != nil {
		return err
	}
	defer s.releaseBaseline(b)

	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return &badRequest{err}
	}
	if len(req.Opts) == 0 {
		return &badRequest{errors.New(`serve: missing "opts" grid`)}
	}
	timeout, err := s.resolveTimeout(req.Timeout)
	if err != nil {
		return err
	}

	// Parse the whole grid before running any of it: a misspelled
	// expression is a client error for the request, not a row result.
	params := req.Params.optParams()
	scenarios := make([]sweep.Scenario, len(req.Opts))
	for i, expr := range req.Opts {
		opt, err := whatif.ParseStack(expr, params)
		if err != nil {
			return &badRequest{err}
		}
		scenarios[i] = sweep.Scenario{Name: canonStack(expr), Opt: opt}
	}

	if !s.track() {
		return ErrDraining
	}
	defer s.untrack()
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	// A client hang-up aborts the grid — unlike coalesced predictions,
	// a sweep has exactly one interested party.
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()
	if err := s.acquire(ctx); err != nil {
		return err
	}
	defer s.release()

	// One admission slot covers the grid: rows run sequentially on one
	// warm pool worker, so a sweep costs the same concurrency budget as
	// a predict and cone-friendly rows ride the incremental tier.
	rows, _ := s.pool.Run(b.g, scenarios, sweep.Workers(1), sweep.WithContext(ctx))

	resp := SweepResponse{ID: b.id, BaselineNS: int64(b.baselineNS)}
	resp.Rows = make([]SweepRow, len(rows))
	for i, row := range rows {
		out := SweepRow{Opt: row.Name}
		if row.Err != nil {
			_, kind := classify(row.Err)
			out.Error = row.Err.Error()
			out.ErrorKind = kind
		} else {
			out.PredictedNS = int64(row.Value)
			out.Tier = row.Tier
			if resp.BaselineNS > 0 {
				out.ChangePct = 100 * float64(out.PredictedNS-resp.BaselineNS) / float64(resp.BaselineNS)
			}
		}
		resp.Rows[i] = out
	}
	writeJSON(w, resp)
	return nil
}

// handleDiagnose reconstructs the baseline's critical path from the
// schedule retained at upload and attributes it by thread kind and
// training phase — pure reads on immutable state, so it bypasses
// admission control entirely.
func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) error {
	b, err := s.retain(r.PathValue("id"))
	if err != nil {
		return err
	}
	defer s.releaseBaseline(b)

	path := core.CriticalPathView(b.g, b.res)
	resp := DiagnoseResponse{
		ID:         b.id,
		Model:      b.tr.Model,
		BaselineNS: int64(b.baselineNS),
		PathTasks:  len(path),
		ByKind:     attributions(b, path, core.ByThreadKind),
		ByPhase:    attributions(b, path, core.ByPhase),
	}
	writeJSON(w, resp)
	return nil
}

func attributions(b *baseline, path []*core.Task, label func(*core.Task) string) []Attribution {
	rows := core.AttributePathSim(b.res, path, label)
	out := make([]Attribution, len(rows))
	for i, row := range rows {
		out[i] = Attribution{
			Label:  row.Label,
			TimeNS: int64(row.Time),
			Tasks:  row.Tasks,
		}
		if b.baselineNS > 0 {
			out[i].Pct = 100 * float64(row.Time) / float64(b.baselineNS)
		}
	}
	return out
}

// handleMemory sweeps the baseline's memory timeline over the schedule
// retained at upload: the annotation memoizes on the immutable graph
// (atomic, rebuild-once) and the profile is a pure post-pass over the
// retained SimResult, so — like diagnose — the endpoint is read-only
// and bypasses admission control. Traces without a layer mapping cannot
// carry a timeline and are rejected as client errors. ?timeline=true
// additionally returns every sample.
func (s *Server) handleMemory(w http.ResponseWriter, r *http.Request) error {
	b, err := s.retain(r.PathValue("id"))
	if err != nil {
		return err
	}
	defer s.releaseBaseline(b)

	ann, err := mem.AnnotationOf(b.g)
	if err != nil {
		return &badRequest{err}
	}
	prof, err := mem.ComputeProfile(b.g, b.res, ann)
	if err != nil {
		return err
	}
	d := prof.Device(mem.DeviceGPU)
	resp := MemoryResponse{
		ID:              b.id,
		Model:           b.tr.Model,
		Device:          d.Device,
		BaselineNS:      int64(b.baselineNS),
		ResidentBytes:   d.Resident,
		PeakBytes:       d.Peak,
		PeakStartNS:     int64(d.PeakStart),
		PeakEndNS:       int64(d.PeakEnd),
		TimelineSamples: len(d.Timeline),
	}
	tensors := d.PeakTensors
	if len(tensors) > maxPeakTensors {
		tensors = tensors[:maxPeakTensors]
	}
	resp.PeakTensors = make([]MemoryTensor, len(tensors))
	for i, tu := range tensors {
		resp.PeakTensors[i] = MemoryTensor{
			Layer:   tu.Layer,
			Round:   tu.Round,
			Bytes:   tu.Bytes,
			AllocNS: int64(tu.Alloc),
			FreeNS:  int64(tu.Free),
		}
	}
	if r.URL.Query().Get("timeline") == "true" {
		resp.Timeline = make([]MemorySample, len(d.Timeline))
		for i, sm := range d.Timeline {
			resp.Timeline[i] = MemorySample{TNS: int64(sm.T), Bytes: sm.Bytes}
		}
	}
	writeJSON(w, resp)
	return nil
}

// maxPeakTensors caps the peak attribution list in a memory response;
// the timeline query returns the full curve when a client wants more.
const maxPeakTensors = 10

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, ErrDraining)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.stats.cacheHits.Load(), s.stats.cacheMisses.Load()
	resp := StatsResponse{
		UptimeMS:     time.Since(s.stats.start).Milliseconds(),
		Baselines:    s.numBaselines(),
		QueueDepth:   s.queued.Load(),
		Workers:      s.cfg.Workers,
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: s.cache.len(),
		Coalesced:    s.stats.coalesced.Load(),
		Rejected:     s.stats.rejected.Load(),
		Evictions:    s.stats.evictions.Load(),
		Endpoints: map[string]EndpointSnapshot{
			"upload":   s.stats.upload.snapshot(),
			"predict":  s.stats.predict.snapshot(),
			"sweep":    s.stats.sweep.snapshot(),
			"diagnose": s.stats.diagnose.snapshot(),
			"memory":   s.stats.memory.snapshot(),
		},
	}
	if total := hits + misses; total > 0 {
		resp.CacheHitRate = float64(hits) / float64(total)
	}
	writeJSON(w, resp)
}
