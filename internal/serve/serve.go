package serve

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"daydream/internal/core"
	"daydream/internal/sweep"
	"daydream/internal/trace"
)

// Config tunes the server. The zero value is usable: every field has a
// production default applied by NewServer.
type Config struct {
	// MaxBaselines bounds the registry (default 8). Idle baselines
	// beyond the bound are evicted least-recently-used.
	MaxBaselines int
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot beyond the
	// Workers already running (default 4×Workers). Past it: 429.
	QueueDepth int
	// CacheEntries bounds the prediction result cache (default 1024).
	CacheEntries int
	// RequestTimeout caps any one simulation (default 30s); a request
	// Timeout field may shorten it, never extend it.
	RequestTimeout time.Duration
	// MaxTraceBytes bounds an uploaded trace (default 256 MB).
	MaxTraceBytes int64
	// PoolIdle bounds the warm sweep workers kept between requests
	// (default Workers) — each holds a scratch/patch/incremental set.
	PoolIdle int
}

func (c *Config) applyDefaults() {
	if c.MaxBaselines <= 0 {
		c.MaxBaselines = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTraceBytes <= 0 {
		c.MaxTraceBytes = 256 << 20
	}
	if c.PoolIdle <= 0 {
		c.PoolIdle = c.Workers
	}
}

// baseline is one registry entry. Everything but the registry
// bookkeeping (refs, lastUsed — guarded by Server.mu) is immutable
// after publish and read lock-free by any number of handlers.
type baseline struct {
	id string
	tr *trace.Trace
	g  *core.Graph
	// res is the baseline schedule, retained for diagnose; baselineNS
	// is its makespan, the denominator of every change_pct.
	res        *core.SimResult
	baselineNS time.Duration

	refs     int
	lastUsed int64
}

// Server is the long-lived prediction service. Create with NewServer,
// mount Handler on an http.Server, stop with Shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	pool  *sweep.Pool
	cache *resultCache
	group *flightGroup
	stats stats

	// baseCtx outlives any one request; compute goroutines run under
	// it (plus RequestTimeout) so a hung-up client cannot cancel a
	// coalesced computation. cancel fires only at the end of Shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc

	// Admission: sem holds Workers slots; queued counts holders plus
	// waiters and bounds the waiting line.
	sem    chan struct{}
	queued atomic.Int64

	// Drain state: once draining, track() refuses new compute and
	// handlers answer 503; Shutdown waits for inflight to hit zero.
	draining atomic.Bool
	inflight atomic.Int64

	mu        sync.Mutex
	baselines map[string]*baseline
	seq       int64
}

// NewServer builds a server with cfg (zero fields defaulted).
func NewServer(cfg Config) *Server {
	cfg.applyDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		pool:      sweep.NewPool(cfg.PoolIdle),
		cache:     newResultCache(cfg.CacheEntries),
		group:     newFlightGroup(),
		baseCtx:   ctx,
		cancel:    cancel,
		sem:       make(chan struct{}, cfg.Workers),
		baselines: make(map[string]*baseline),
	}
	s.stats.start = time.Now()
	s.mux = s.routes()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: new work is refused immediately (503
// "draining"), in-flight simulations run to completion, and once the
// last finishes — or ctx expires — the base context is canceled so any
// straggler aborts through core.WithContext at its next periodic
// check. Safe to call once; the server cannot be restarted.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			s.cancel()
			return ctx.Err()
		case <-ticker.C:
		}
	}
	s.cancel()
	return nil
}

// track registers one unit of in-flight compute for drain accounting.
// The increment-then-check order closes the race with Shutdown: either
// this call sees draining and backs out, or Shutdown's drain loop sees
// the incremented count.
func (s *Server) track() bool {
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Add(-1)
		return false
	}
	return true
}

func (s *Server) untrack() { s.inflight.Add(-1) }

// acquire claims a worker slot, waiting in a bounded line: beyond
// QueueDepth waiters the request is shed with ErrOverloaded instead of
// queueing unboundedly (admission control, not backpressure-by-hang).
func (s *Server) acquire(ctx context.Context) error {
	if q := s.queued.Add(1); q > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.stats.rejected.Add(1)
		return ErrOverloaded
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.queued.Add(-1)
		return ctx.Err()
	}
}

func (s *Server) release() {
	<-s.sem
	s.queued.Add(-1)
}

// retain pins a baseline against eviction and bumps its LRU clock.
// Callers must release exactly once.
func (s *Server) retain(id string) (*baseline, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.baselines[id]
	if !ok {
		return nil, ErrUnknownBaseline
	}
	b.refs++
	s.seq++
	b.lastUsed = s.seq
	return b, nil
}

func (s *Server) releaseBaseline(b *baseline) {
	s.mu.Lock()
	b.refs--
	s.mu.Unlock()
}

// insert publishes a baseline, returning the winner and whether this
// call created it (a concurrent identical upload loses the race
// harmlessly — same bytes, same ID, same graph shape). Inserting past
// MaxBaselines evicts idle entries, least-recently-used first; pinned
// entries are skipped, so the registry can transiently exceed the
// bound rather than evict under a live request.
func (s *Server) insert(b *baseline) (*baseline, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.baselines[b.id]; ok {
		return cur, false
	}
	s.seq++
	b.lastUsed = s.seq
	s.baselines[b.id] = b
	for len(s.baselines) > s.cfg.MaxBaselines {
		var victim *baseline
		for _, cand := range s.baselines {
			if cand.refs > 0 || cand == b {
				continue
			}
			if victim == nil || cand.lastUsed < victim.lastUsed {
				victim = cand
			}
		}
		if victim == nil {
			break
		}
		delete(s.baselines, victim.id)
		s.stats.evictions.Add(1)
	}
	return b, true
}

func (s *Server) numBaselines() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.baselines)
}
