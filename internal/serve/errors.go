package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"daydream/internal/core"
	"daydream/internal/sweep"
	"daydream/internal/trace"
)

// Sentinel errors for service-level conditions (everything else arrives
// carrying the core/trace taxonomy).
var (
	// ErrOverloaded reports that the admission queue is full.
	ErrOverloaded = errors.New("serve: overloaded, queue full")
	// ErrDraining reports that the server is shutting down.
	ErrDraining = errors.New("serve: draining, not accepting work")
	// ErrUnknownBaseline reports a baseline ID not in the registry.
	ErrUnknownBaseline = errors.New("serve: unknown baseline")
)

// apiError is the JSON error body: a human-readable message plus a
// stable machine-readable kind, so clients can branch without parsing
// prose.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// badRequest wraps a request-shape error (bad JSON, bad expression,
// bad parameter) so classify maps it to 400 without guessing from
// message text.
type badRequest struct{ err error }

func (e *badRequest) Error() string { return e.err.Error() }
func (e *badRequest) Unwrap() error { return e.err }

// classify maps an error onto its HTTP status and taxonomy kind. The
// kind strings are part of the API: tests and clients match on them.
func classify(err error) (status int, kind string) {
	var br *badRequest
	switch {
	// Service-level conditions.
	case errors.Is(err, ErrUnknownBaseline):
		return http.StatusNotFound, "unknown-baseline"
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"

	// Trace taxonomy: the client's bytes were bad → 400.
	case errors.Is(err, trace.ErrMalformed):
		return http.StatusBadRequest, "malformed-trace"
	case errors.Is(err, trace.ErrNegativeTime):
		return http.StatusBadRequest, "negative-time"
	case errors.Is(err, trace.ErrTimeOverflow):
		return http.StatusBadRequest, "time-overflow"
	case errors.Is(err, trace.ErrDuplicateID):
		return http.StatusBadRequest, "duplicate-id"
	case errors.Is(err, trace.ErrBadCorrelation):
		return http.StatusBadRequest, "bad-correlation"
	case errors.Is(err, trace.ErrSpanInverted):
		return http.StatusBadRequest, "span-inverted"

	// Graph taxonomy: the trace parsed but violates a simulation
	// invariant → 422 (well-formed, semantically unprocessable).
	case errors.Is(err, core.ErrCycle):
		return http.StatusUnprocessableEntity, "cycle"
	case errors.Is(err, core.ErrDanglingEdge):
		return http.StatusUnprocessableEntity, "dangling-edge"
	case errors.Is(err, core.ErrNegativeDuration):
		return http.StatusUnprocessableEntity, "negative-duration"
	case errors.Is(err, core.ErrStalled):
		return http.StatusUnprocessableEntity, "stalled"

	// Cancellation taxonomy.
	case errors.Is(err, core.ErrDeadlineExceeded),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, core.ErrCanceled),
		errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "canceled"

	// Isolated panic: one 500, server stays up.
	case errors.Is(err, sweep.ErrPanic):
		return http.StatusInternalServerError, "panic"

	case errors.As(err, &br):
		return http.StatusBadRequest, "bad-request"
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge, "too-large"
	}
	return http.StatusInternalServerError, "internal"
}

// writeError renders err as the service's JSON error body.
func writeError(w http.ResponseWriter, err error) {
	status, kind := classify(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: err.Error(), Kind: kind})
}

// writeJSON renders v with a 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
