package serve

import (
	"container/list"
	"sync"
	"time"
)

// outcome is a completed prediction: what the cache stores and what
// single-flight waiters share.
type outcome struct {
	value time.Duration
	tier  string
}

// resultCache is a bounded LRU over completed predictions, keyed by
// (baseline ID, canonical stack, canonical params, timeout). Only
// successes are stored — errors are cheap to reproduce and must not
// shadow a later fix (e.g. a re-uploaded device profile).
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	out outcome
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element, max),
	}
}

func (c *resultCache) get(key string) (outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return outcome{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

func (c *resultCache) put(key string, out outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, out: out})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// call is one in-flight single-flight computation. The leader closes
// done exactly once; waiters read out/err only after done.
type call struct {
	done chan struct{}
	out  outcome
	err  error
}

// flightGroup coalesces concurrent identical predictions: the first
// requester becomes the leader and computes; the rest wait on the same
// call. The leader's computation runs under the server's base context,
// not any one request's — a waiter hanging up never kills the shared
// result the others are waiting for.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*call
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*call)}
}

// join returns the in-flight call for key, creating it (leader=true)
// when none exists.
func (g *flightGroup) join(key string) (c *call, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &call{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the leader's result and removes the key so the next
// identical request starts fresh (on success it will hit the cache
// instead).
func (g *flightGroup) finish(key string, c *call, out outcome, err error) {
	c.out, c.err = out, err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}
