// Package serve is Daydream's long-lived prediction service: a stdlib
// net/http JSON API over the trace→graph→simulate pipeline, built so
// one immutable baseline graph answers many what-if queries (the
// paper's §4 design, turned into a persistent surface).
//
// # Endpoints
//
//	POST /v1/baselines                 upload a trace; build, validate,
//	                                   simulate and index the baseline;
//	                                   returns its content-derived ID
//	POST /v1/baselines/{id}/predict    one opt-stack expression → one
//	                                   predicted iteration time
//	POST /v1/baselines/{id}/sweep      a grid of expressions fanned
//	                                   through internal/sweep, dispatch
//	                                   tier reported per row
//	GET  /v1/baselines/{id}/diagnose   critical path + per-kind and
//	                                   per-phase attribution
//	GET  /healthz                      liveness
//	GET  /statsz                       cache hit rate, queue depth,
//	                                   per-endpoint latency counters
//
// # Concurrency contract
//
// A baseline is immutable once published: handlers read its graph,
// schedule and layer index without locks, and every what-if evaluates
// through worker-owned Patch/Overlay/scratch buffers checked out of a
// shared sweep.Pool — the baseline itself is never written after
// upload. At most Config.Workers simulations run at once (a sweep
// counts as one); up to Config.QueueDepth more may wait. Beyond that
// the server sheds load with 429 rather than queueing unboundedly.
// Identical in-flight predict scenarios coalesce into one computation
// (single-flight), and completed predictions land in a bounded LRU
// result cache keyed by (baseline ID, canonical stack expression,
// canonical parameters, timeout).
//
// # Eviction contract
//
// The registry holds at most Config.MaxBaselines baselines. Inserting
// past the bound evicts the least-recently-used baseline with no
// in-flight requests pinning it; baselines referenced by an active
// request are never evicted, so the registry may transiently exceed
// the bound rather than yank a graph out from under a handler. An
// evicted ID answers 404 until re-uploaded (same bytes → same ID).
//
// # Failure and shutdown
//
// Errors map the PR-7 taxonomy onto HTTP: malformed traces are 4xx
// with a machine-readable "kind" in the JSON body, graph-level
// invariant violations are 422, deadlines are 504, overload is 429,
// and a panicking optimization costs one 500 — the worker quarantines
// its buffers and the server stays up. Shutdown first refuses new work
// (503 "draining"), then drains in-flight simulations, then cancels
// the base context so stragglers abort through core.WithContext.
package serve
