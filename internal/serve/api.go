package serve

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"daydream/internal/comm"
	"daydream/internal/whatif"
)

// Params carries the optimization parameters of a predict/sweep request
// in JSON form. Zero-valued fields are simply not read; each registry
// entry documents what it needs (GET /statsz does not list them — the
// `daydream sweep -opt help` text does).
type Params struct {
	// Machines × GPUsPerMachine at GbpsNIC describe the cluster for the
	// distributed and p3 what-ifs, with the paper's PCIe intra-machine
	// defaults.
	Machines       int     `json:"machines,omitempty"`
	GPUsPerMachine int     `json:"gpus_per_machine,omitempty"`
	GbpsNIC        float64 `json:"gbps_nic,omitempty"`
	// SliceBytes is the P3 slice size (0 = 800 KB default, <0 = FIFO).
	SliceBytes int64 `json:"slice_bytes,omitempty"`
	// FromDevice/ToDevice name accelerators for the upgrade what-if.
	FromDevice string `json:"from_device,omitempty"`
	ToDevice   string `json:"to_device,omitempty"`
	// ProfileNS carries externally measured kernel durations in
	// nanoseconds (kprofile).
	ProfileNS map[string]int64 `json:"profile_ns,omitempty"`
	// ScaleTarget/ScaleFactor drive the COZ-style scale what-if.
	ScaleTarget string  `json:"scale_target,omitempty"`
	ScaleFactor float64 `json:"scale_factor,omitempty"`
	// Rounds is the P3 steady-state iteration count.
	Rounds int `json:"rounds,omitempty"`
}

// optParams converts the JSON form into registry parameters.
func (p *Params) optParams() whatif.OptParams {
	if p == nil {
		return whatif.OptParams{}
	}
	op := whatif.OptParams{
		SliceBytes:  p.SliceBytes,
		FromDevice:  p.FromDevice,
		ToDevice:    p.ToDevice,
		ScaleTarget: p.ScaleTarget,
		ScaleFactor: p.ScaleFactor,
		Rounds:      p.Rounds,
	}
	if p.Machines > 0 && p.GPUsPerMachine > 0 {
		// Mirror daydream.NewTopology's paper-evaluation defaults.
		op.Topology = comm.Topology{
			Machines:       p.Machines,
			GPUsPerMachine: p.GPUsPerMachine,
			NICBandwidth:   comm.Gbps(p.GbpsNIC),
			IntraBandwidth: 11e9,
			StepLatency:    15 * time.Microsecond,
		}
	}
	if len(p.ProfileNS) > 0 {
		prof := make(whatif.KernelProfile, len(p.ProfileNS))
		for k, ns := range p.ProfileNS {
			prof[k] = time.Duration(ns)
		}
		op.Profile = prof
	}
	return op
}

// canon renders the parameters into a canonical cache-key fragment:
// field-ordered, map keys sorted, zero values included (they are part
// of the meaning — scale_factor 0 vs 1 differ).
func (p *Params) canon() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "m=%d,g=%d,nic=%g,slice=%d,from=%s,to=%s,target=%s,factor=%g,rounds=%d",
		p.Machines, p.GPUsPerMachine, p.GbpsNIC, p.SliceBytes,
		p.FromDevice, p.ToDevice, p.ScaleTarget, p.ScaleFactor, p.Rounds)
	if len(p.ProfileNS) > 0 {
		keys := make([]string, 0, len(p.ProfileNS))
		for k := range p.ProfileNS {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, ",prof[%s]=%d", k, p.ProfileNS[k])
		}
	}
	return b.String()
}

// canonStack normalizes an opt-stack expression for cache keys: spaces
// trimmed per element, order preserved (stacks compose in expression
// order, so "amp+fusedadam" and "fusedadam+amp" are distinct keys).
func canonStack(expr string) string {
	parts := strings.Split(expr, "+")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
	}
	return strings.Join(parts, "+")
}

// UploadResponse answers POST /v1/baselines.
type UploadResponse struct {
	ID         string `json:"id"`
	Created    bool   `json:"created"`
	Model      string `json:"model"`
	Device     string `json:"device"`
	Tasks      int    `json:"tasks"`
	Edges      int    `json:"edges"`
	BaselineNS int64  `json:"baseline_ns"`
}

// PredictRequest is the body of POST /v1/baselines/{id}/predict.
type PredictRequest struct {
	// Opt is an opt-stack expression resolved by whatif.ParseStack
	// ("amp", "amp+fusedadam", ...).
	Opt string `json:"opt"`
	// Params supplies the parameters the stack's elements need.
	Params *Params `json:"params,omitempty"`
	// Timeout optionally caps this request's simulation time (a Go
	// duration string, e.g. "250ms"); the server's RequestTimeout
	// still applies as the ceiling.
	Timeout string `json:"timeout,omitempty"`
}

// PredictResponse answers a predict request.
type PredictResponse struct {
	ID          string  `json:"id"`
	Opt         string  `json:"opt"`
	PredictedNS int64   `json:"predicted_ns"`
	BaselineNS  int64   `json:"baseline_ns"`
	ChangePct   float64 `json:"change_pct"`
	// Tier is the dispatch tier the simulation rode (sweep.Tier*).
	Tier string `json:"tier"`
	// Cached marks a result served from the prediction cache;
	// Coalesced marks one shared with an identical in-flight request.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
}

// SweepRequest is the body of POST /v1/baselines/{id}/sweep: a grid of
// opt-stack expressions sharing one parameter set.
type SweepRequest struct {
	Opts    []string `json:"opts"`
	Params  *Params  `json:"params,omitempty"`
	Timeout string   `json:"timeout,omitempty"`
}

// SweepRow is one grid row's outcome. Rows fail independently: a row
// error carries the taxonomy kind while the rest of the grid stands.
type SweepRow struct {
	Opt         string  `json:"opt"`
	PredictedNS int64   `json:"predicted_ns,omitempty"`
	ChangePct   float64 `json:"change_pct,omitempty"`
	Tier        string  `json:"tier,omitempty"`
	Error       string  `json:"error,omitempty"`
	ErrorKind   string  `json:"error_kind,omitempty"`
}

// SweepResponse answers a sweep request.
type SweepResponse struct {
	ID         string     `json:"id"`
	BaselineNS int64      `json:"baseline_ns"`
	Rows       []SweepRow `json:"rows"`
}

// Attribution is one critical-path attribution bucket.
type Attribution struct {
	Label  string  `json:"label"`
	TimeNS int64   `json:"time_ns"`
	Tasks  int     `json:"tasks"`
	Pct    float64 `json:"pct"`
}

// MemoryTensor is one peak-attribution entry of a memory response: a
// tensor live under the peak and the simulated interval it occupied
// memory.
type MemoryTensor struct {
	Layer   string `json:"layer"`
	Round   int    `json:"round"`
	Bytes   int64  `json:"bytes"`
	AllocNS int64  `json:"alloc_ns"`
	FreeNS  int64  `json:"free_ns"`
}

// MemorySample is one timeline breakpoint: bytes allocated from t_ns
// until the next sample.
type MemorySample struct {
	TNS   int64 `json:"t_ns"`
	Bytes int64 `json:"bytes"`
}

// MemoryResponse answers GET /v1/baselines/{id}/memory: the baseline's
// simulated memory timeline — peak bytes, the interval the peak holds
// over, the constant resident load, and the largest tensors live under
// the peak. With ?timeline=true it carries the full sample curve.
type MemoryResponse struct {
	ID              string         `json:"id"`
	Model           string         `json:"model"`
	Device          string         `json:"device"`
	BaselineNS      int64          `json:"baseline_ns"`
	ResidentBytes   int64          `json:"resident_bytes"`
	PeakBytes       int64          `json:"peak_bytes"`
	PeakStartNS     int64          `json:"peak_start_ns"`
	PeakEndNS       int64          `json:"peak_end_ns"`
	TimelineSamples int            `json:"timeline_samples"`
	PeakTensors     []MemoryTensor `json:"peak_tensors"`
	Timeline        []MemorySample `json:"timeline,omitempty"`
}

// DiagnoseResponse answers GET /v1/baselines/{id}/diagnose.
type DiagnoseResponse struct {
	ID         string        `json:"id"`
	Model      string        `json:"model"`
	BaselineNS int64         `json:"baseline_ns"`
	PathTasks  int           `json:"path_tasks"`
	ByKind     []Attribution `json:"by_kind"`
	ByPhase    []Attribution `json:"by_phase"`
}
