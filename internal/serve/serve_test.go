package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/whatif"
)

// traceBytes profiles a zoo model on the synthetic substrate and
// returns its trace as JSON — what a real client would upload. Results
// are memoized per (model, seed): collection dominates test time.
var traceMemo sync.Map

func traceBytes(t testing.TB, model string, seed uint64) []byte {
	t.Helper()
	key := fmt.Sprintf("%s/%d", model, seed)
	if data, ok := traceMemo.Load(key); ok {
		return data.([]byte)
	}
	m, err := dnn.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := framework.Run(framework.Config{Model: m, Seed: seed, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	traceMemo.Store(key, buf.Bytes())
	return buf.Bytes()
}

// testServer mounts a fresh server on httptest and tears both down.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, hs
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// upload pushes a trace and returns its baseline ID.
func upload(t *testing.T, hs *httptest.Server, trace []byte) UploadResponse {
	t.Helper()
	resp, body := post(t, hs.URL+"/v1/baselines", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d, body %s", resp.StatusCode, body)
	}
	var up UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	return up
}

func decodeErr(t *testing.T, body []byte) apiError {
	t.Helper()
	var ae apiError
	if err := json.Unmarshal(body, &ae); err != nil {
		t.Fatalf("error body %q is not the JSON error shape: %v", body, err)
	}
	return ae
}

func TestServeRoundTrip(t *testing.T) {
	srv, hs := testServer(t, Config{})
	tr := traceBytes(t, "resnet50", 1)

	up := upload(t, hs, tr)
	if !up.Created || up.ID == "" || up.Tasks == 0 || up.BaselineNS <= 0 {
		t.Fatalf("bad upload response: %+v", up)
	}

	// Same bytes → same ID, no rebuild.
	again := upload(t, hs, tr)
	if again.Created || again.ID != up.ID {
		t.Fatalf("re-upload: got %+v, want existing %s", again, up.ID)
	}

	// Predict, then hit the cache with the identical request.
	predictURL := hs.URL + "/v1/baselines/" + up.ID + "/predict"
	req := []byte(`{"opt":"amp"}`)
	resp, body := post(t, predictURL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d, body %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.PredictedNS <= 0 || pr.Tier == "" || pr.Cached {
		t.Fatalf("bad predict response: %+v", pr)
	}
	if pr.ChangePct >= 0 {
		t.Fatalf("amp should speed resnet50 up, got change %+.2f%%", pr.ChangePct)
	}

	resp, body = post(t, predictURL, req)
	var cached PredictResponse
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !cached.Cached {
		t.Fatalf("repeat predict not cached: status %d, %+v", resp.StatusCode, cached)
	}
	if cached.PredictedNS != pr.PredictedNS {
		t.Fatalf("cached prediction %d != original %d", cached.PredictedNS, pr.PredictedNS)
	}

	// Sweep a grid; every row succeeds and reports its tier.
	resp, body = post(t, hs.URL+"/v1/baselines/"+up.ID+"/sweep",
		[]byte(`{"opts":["amp","fusedadam","amp+fusedadam"]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d, body %s", resp.StatusCode, body)
	}
	var sw SweepResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Rows) != 3 {
		t.Fatalf("sweep rows = %d, want 3", len(sw.Rows))
	}
	for _, row := range sw.Rows {
		if row.Error != "" || row.Tier == "" || row.PredictedNS <= 0 {
			t.Fatalf("bad sweep row: %+v", row)
		}
	}
	if sw.Rows[0].Opt != "amp" || sw.Rows[2].Opt != "amp+fusedadam" {
		t.Fatalf("row labels wrong: %+v", sw.Rows)
	}

	// Diagnose the baseline's critical path.
	resp, body = get(t, hs.URL+"/v1/baselines/"+up.ID+"/diagnose")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose: status %d, body %s", resp.StatusCode, body)
	}
	var dg DiagnoseResponse
	if err := json.Unmarshal(body, &dg); err != nil {
		t.Fatal(err)
	}
	if dg.PathTasks == 0 || len(dg.ByKind) == 0 || len(dg.ByPhase) == 0 {
		t.Fatalf("bad diagnose response: %+v", dg)
	}

	// Memory timeline over the schedule retained at upload.
	resp, body = get(t, hs.URL+"/v1/baselines/"+up.ID+"/memory")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("memory: status %d, body %s", resp.StatusCode, body)
	}
	var mr MemoryResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.PeakBytes <= mr.ResidentBytes || mr.TimelineSamples == 0 || len(mr.PeakTensors) == 0 {
		t.Fatalf("bad memory response: %+v", mr)
	}
	if mr.Timeline != nil {
		t.Fatalf("timeline returned without ?timeline=true: %+v", mr)
	}
	resp, body = get(t, hs.URL+"/v1/baselines/"+up.ID+"/memory?timeline=true")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("memory timeline: status %d, body %s", resp.StatusCode, body)
	}
	var mrt MemoryResponse
	if err := json.Unmarshal(body, &mrt); err != nil {
		t.Fatal(err)
	}
	if len(mrt.Timeline) != mrt.TimelineSamples {
		t.Fatalf("timeline carries %d samples, header says %d", len(mrt.Timeline), mrt.TimelineSamples)
	}
	if last := mrt.Timeline[len(mrt.Timeline)-1]; last.Bytes != mrt.ResidentBytes {
		t.Fatalf("timeline does not balance back to resident: %d != %d", last.Bytes, mrt.ResidentBytes)
	}

	// Health and stats reflect the traffic above.
	resp, body = get(t, hs.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, hs.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.CacheHits < 1 || st.CacheMisses < 1 || st.CacheHitRate <= 0 {
		t.Fatalf("stats missed the cache traffic: %+v", st)
	}
	if st.Endpoints["predict"].Count < 2 || st.Endpoints["upload"].Count < 2 {
		t.Fatalf("per-endpoint counters wrong: %+v", st.Endpoints)
	}
	if st.Endpoints["predict"].P99NS <= 0 {
		t.Fatalf("predict latency percentiles empty: %+v", st.Endpoints["predict"])
	}
	if st.Baselines != srv.numBaselines() {
		t.Fatalf("statsz baselines %d != registry %d", st.Baselines, srv.numBaselines())
	}
}

// TestServePipelineStack drives a parameterized stack element over
// HTTP: the pipeline what-if arrives as inline arguments in the opt
// expression ("pipeline:SxM[:sched]"), rides the registry's ParseArg
// hook, and simulates as a structural patch under its carried
// scheduler — no server-side special-casing.
func TestServePipelineStack(t *testing.T) {
	_, hs := testServer(t, Config{})
	up := upload(t, hs, traceBytes(t, "resnet50", 1))
	predictURL := hs.URL + "/v1/baselines/" + up.ID + "/predict"

	var preds [2]PredictResponse
	for i, expr := range []string{`{"opt":"pipeline:2x4"}`, `{"opt":"pipeline:2x4:gpipe"}`} {
		resp, body := post(t, predictURL, []byte(expr))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %s: status %d, body %s", expr, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &preds[i]); err != nil {
			t.Fatal(err)
		}
		if preds[i].Tier != "patch" {
			t.Fatalf("pipeline predict tier = %q, want patch (clone-free)", preds[i].Tier)
		}
		if preds[i].ChangePct >= 0 {
			t.Fatalf("2-stage pipeline should beat single-GPU resnet50, got %+.2f%%", preds[i].ChangePct)
		}
		if preds[i].Cached {
			t.Fatalf("schedule variants must not share a cache key: %+v", preds[i])
		}
	}
	if preds[0].Opt != "pipeline:2x4" || preds[1].Opt != "pipeline:2x4:gpipe" {
		t.Fatalf("inline args lost in echo: %q, %q", preds[0].Opt, preds[1].Opt)
	}

	// A malformed inline grid fails the request up front, like any
	// other parse error.
	resp, body := post(t, predictURL, []byte(`{"opt":"pipeline:2x"}`))
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusBadRequest || ae.Kind != "bad-request" {
		t.Fatalf("bad pipeline grid: %d %+v", resp.StatusCode, ae)
	}
}

func TestServeClientErrors(t *testing.T) {
	_, hs := testServer(t, Config{})
	tr := traceBytes(t, "resnet50", 1)
	up := upload(t, hs, tr)
	predictURL := hs.URL + "/v1/baselines/" + up.ID + "/predict"

	// Unknown baseline → 404 with the taxonomy kind.
	resp, body := post(t, hs.URL+"/v1/baselines/nope/predict", []byte(`{"opt":"amp"}`))
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusNotFound || ae.Kind != "unknown-baseline" {
		t.Fatalf("unknown baseline: %d %+v", resp.StatusCode, ae)
	}

	// Unknown optimization → 400 whose message doubles as the registry
	// docs for a remote caller.
	resp, body = post(t, predictURL, []byte(`{"opt":"amp+warpspeed"}`))
	ae := decodeErr(t, body)
	if resp.StatusCode != http.StatusBadRequest || ae.Kind != "bad-request" {
		t.Fatalf("unknown opt: %d %+v", resp.StatusCode, ae)
	}
	for _, spec := range whatif.Registry() {
		if !strings.Contains(ae.Error, spec.Name) {
			t.Fatalf("unknown-opt error %q does not list %q", ae.Error, spec.Name)
		}
	}

	// Malformed request shapes → 400.
	for _, bad := range []string{`{`, `{}`, `{"opt":"amp","timeout":"-3s"}`, `{"opt":"amp","timeout":"soon"}`} {
		resp, body = post(t, predictURL, []byte(bad))
		if ae := decodeErr(t, body); resp.StatusCode != http.StatusBadRequest || ae.Kind != "bad-request" {
			t.Fatalf("bad body %q: %d %+v", bad, resp.StatusCode, ae)
		}
	}

	// Empty sweep grid → 400; a misspelled grid entry fails the whole
	// request rather than one row.
	sweepURL := hs.URL + "/v1/baselines/" + up.ID + "/sweep"
	resp, body = post(t, sweepURL, []byte(`{"opts":[]}`))
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusBadRequest || ae.Kind != "bad-request" {
		t.Fatalf("empty grid: %d %+v", resp.StatusCode, ae)
	}
	resp, body = post(t, sweepURL, []byte(`{"opts":["amp","warpspeed"]}`))
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusBadRequest || !strings.Contains(ae.Error, "warpspeed") {
		t.Fatalf("bad grid entry: %d %+v", resp.StatusCode, ae)
	}

	// Oversized upload → 413.
	_, hs2 := testServer(t, Config{MaxTraceBytes: 64})
	resp, body = post(t, hs2.URL+"/v1/baselines", tr)
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusRequestEntityTooLarge || ae.Kind != "too-large" {
		t.Fatalf("oversized upload: %d %+v", resp.StatusCode, ae)
	}
}

func TestServePredictDeadline(t *testing.T) {
	_, hs := testServer(t, Config{})
	up := upload(t, hs, traceBytes(t, "resnet50", 1))

	// A 1ns budget has expired before the simulation even dispatches:
	// the context check on entry converts it to a typed deadline error,
	// deterministically.
	resp, body := post(t, hs.URL+"/v1/baselines/"+up.ID+"/predict",
		[]byte(`{"opt":"fusedadam","timeout":"1ns"}`))
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusGatewayTimeout || ae.Kind != "deadline" {
		t.Fatalf("deadline: %d %+v", resp.StatusCode, ae)
	}

	// The timed-out scenario must not have poisoned the cache or the
	// server: the same stack with a sane budget succeeds.
	resp, body = post(t, hs.URL+"/v1/baselines/"+up.ID+"/predict",
		[]byte(`{"opt":"fusedadam"}`))
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || pr.Cached || pr.PredictedNS <= 0 {
		t.Fatalf("post-deadline predict: %d %+v", resp.StatusCode, pr)
	}
}

func TestServeOverload(t *testing.T) {
	srv, hs := testServer(t, Config{Workers: 1, QueueDepth: 1})
	up := upload(t, hs, traceBytes(t, "resnet50", 1))

	// Saturate admission artificially: with Workers+QueueDepth counted
	// as already queued, the next simulation must shed with 429 rather
	// than wait.
	srv.queued.Add(2)
	resp, body := post(t, hs.URL+"/v1/baselines/"+up.ID+"/predict", []byte(`{"opt":"amp"}`))
	srv.queued.Add(-2)
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusTooManyRequests || ae.Kind != "overloaded" {
		t.Fatalf("overload: %d %+v", resp.StatusCode, ae)
	}
	if srv.stats.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}

	// Load shedding is not a lockout: the same request succeeds once
	// the queue clears.
	resp, _ = post(t, hs.URL+"/v1/baselines/"+up.ID+"/predict", []byte(`{"opt":"amp"}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload predict: %d", resp.StatusCode)
	}
}

// TestServeEvictionRace hammers a 2-slot registry with uploads and
// predictions over 4 distinct baselines. Run under -race this is the
// eviction torture test: retain/release vs LRU eviction vs coalesced
// compute goroutines. Requests may legitimately 404 (their baseline was
// evicted between upload and predict) — anything else is a failure.
func TestServeEvictionRace(t *testing.T) {
	_, hs := testServer(t, Config{MaxBaselines: 2, CacheEntries: 8})
	traces := make([][]byte, 4)
	for i := range traces {
		traces[i] = traceBytes(t, "resnet50", uint64(i+1))
	}

	var wg sync.WaitGroup
	fail := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				tr := traces[(g+round)%len(traces)]
				resp, err := http.Post(hs.URL+"/v1/baselines", "application/json", bytes.NewReader(tr))
				if err != nil {
					fail <- err.Error()
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail <- fmt.Sprintf("upload: %d %s", resp.StatusCode, body)
					return
				}
				var upr UploadResponse
				if err := json.Unmarshal(body, &upr); err != nil {
					fail <- err.Error()
					return
				}
				resp, err = http.Post(hs.URL+"/v1/baselines/"+upr.ID+"/predict",
					"application/json", strings.NewReader(`{"opt":"amp"}`))
				if err != nil {
					fail <- err.Error()
					return
				}
				body, _ = io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					fail <- fmt.Sprintf("predict: %d %s", resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}

	resp, _ := get(t, hs.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after eviction race: %d", resp.StatusCode)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	srv := NewServer(Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	up := upload(t, hs, traceBytes(t, "resnet50", 1))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with no in-flight work: %v", err)
	}

	// Every endpoint now refuses with 503 draining — including the
	// health check, so load balancers stop routing here.
	for _, probe := range []func() (*http.Response, []byte){
		func() (*http.Response, []byte) {
			return post(t, hs.URL+"/v1/baselines/"+up.ID+"/predict", []byte(`{"opt":"amp"}`))
		},
		func() (*http.Response, []byte) { return post(t, hs.URL+"/v1/baselines", traceBytes(t, "resnet50", 1)) },
		func() (*http.Response, []byte) { return get(t, hs.URL+"/healthz") },
	} {
		resp, body := probe()
		if ae := decodeErr(t, body); resp.StatusCode != http.StatusServiceUnavailable || ae.Kind != "draining" {
			t.Fatalf("draining probe: %d %+v", resp.StatusCode, ae)
		}
	}
}

// TestFlightGroupCoalesces pins single-flight semantics at the unit
// level, where joining concurrently is deterministic rather than a
// scheduling accident.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	c1, leader1 := g.join("k")
	c2, leader2 := g.join("k")
	if !leader1 || leader2 || c1 != c2 {
		t.Fatalf("join: leader1=%v leader2=%v same=%v", leader1, leader2, c1 == c2)
	}
	other, leaderOther := g.join("other")
	if !leaderOther || other == c1 {
		t.Fatal("distinct keys must not coalesce")
	}

	g.finish("k", c1, outcome{value: 42, tier: "overlay"}, nil)
	<-c1.done
	if c1.out.value != 42 || c1.err != nil {
		t.Fatalf("published outcome wrong: %+v err=%v", c1.out, c1.err)
	}

	// The key is free again after finish.
	c3, leader3 := g.join("k")
	if !leader3 || c3 == c1 {
		t.Fatal("finished key must start a fresh call")
	}
	g.finish("k", c3, outcome{}, nil)
	g.finish("other", other, outcome{}, nil)
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", outcome{value: 1})
	c.put("b", outcome{value: 2})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	// a was just touched, so inserting c evicts b.
	c.put("c", outcome{value: 3})
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	if got, _ := c.get("c"); got.value != 3 {
		t.Fatalf("c = %+v", got)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}
