package framework

import (
	"time"

	"daydream/internal/xpu"
)

// scheduleNCCL places the pending bucket all-reduces on the NCCL channel in
// ready order, applying the interference model: an NCCL primitive is both a
// communication primitive and a GPU kernel (paper §6.5). A ring kernel
// co-scheduled while compute kernels still occupy the device contends for
// SMs and memory bandwidth for its whole lifetime — and because the ring
// is a synchronous pipeline across all workers, a slowdown on any worker
// stretches the entire primitive. The sync-before-comm mitigation launches
// the primitive onto a drained device, leaving only a small residual
// co-scheduling cost; run exclusively, only the kernel-scheduling overhead
// above the wire formula remains (Figure 9's "Optimal" vs "Theoretical").
func (m *machine) scheduleNCCL(pending []pendingComm, bwdComputeEnd time.Duration) {
	if len(pending) == 0 {
		return
	}
	topo := m.cfg.Cluster.Topology
	ch := m.chans[ncclChannel]
	for _, p := range pending {
		theo := topo.AllReduceTime(p.bytes)
		excl := time.Duration(float64(theo) * (1 + exclusiveOverhead) *
			xpu.Jitter("ncclAllReduce", m.nextSalt(), 0.03))
		alpha := interferenceWithSync
		if !m.cfg.Cluster.SyncBeforeComm && p.ready < bwdComputeEnd {
			alpha = interferenceBaseline
		}
		dur := time.Duration(float64(excl) * (1 + alpha))
		start := maxDur(ch, p.ready)
		m.recordComm("ncclAllReduce", ncclChannel, p.bucket, p.bytes, start, dur, theo, excl)
		ch = start + dur
		m.bucketCommEnd[p.bucket] = ch
	}
	m.chans[ncclChannel] = ch
	if ch > m.lastCommEnd {
		m.lastCommEnd = ch
	}
}
