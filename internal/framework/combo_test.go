package framework

import (
	"testing"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/trace"
	"daydream/internal/xpu"
)

// TestConcurrentPlusDistributed combines the §7.5 multi-stream mode with
// DDP: the engine must keep its invariants (valid trace, comm records,
// concurrency no slower) when both features are on.
func TestConcurrentPlusDistributed(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	cluster := &Cluster{Topology: topo(2, 1, 10), Backend: BackendNCCL, SyncBeforeComm: true}
	serial := mustRun(t, Config{Model: m, Cluster: cluster, CollectTrace: true})
	conc := mustRun(t, Config{Model: m, Cluster: cluster, ConcurrentKernels: true, CollectTrace: true})
	if err := conc.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(conc.Comm) != len(serial.Comm) {
		t.Fatalf("comm records differ: %d vs %d", len(conc.Comm), len(serial.Comm))
	}
	if conc.IterationTime > serial.IterationTime {
		t.Fatalf("concurrency slowed the distributed run: %v vs %v",
			conc.IterationTime, serial.IterationTime)
	}
}

// TestPSMultiGPUPerMachine checks the parameter-server model handles
// several workers per machine (the server-load factor n/servers grows).
func TestPSMultiGPUPerMachine(t *testing.T) {
	m := dnn.VGG19(16)
	run := func(gpus int) *Result {
		return mustRun(t, Config{
			Model: m, Device: xpu.P4000(), Dialect: MXNet,
			Cluster: &Cluster{Topology: topo(4, gpus, 10), Backend: BackendPS},
		})
	}
	one, two := run(1), run(2)
	if two.IterationTime <= one.IterationTime {
		t.Fatalf("doubling workers per machine should add server load: %v vs %v",
			two.IterationTime, one.IterationTime)
	}
}

// TestSparseEmbeddingUpdate checks that GNMT's huge embedding tables get
// sparse (activation-bounded) optimizer traffic rather than full-table
// rewrites.
func TestSparseEmbeddingUpdate(t *testing.T) {
	m, _ := dnn.ByName("gnmt")
	res := mustRun(t, Config{Model: m, CollectTrace: true})
	g, err := core.Build(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	core.MapLayers(g, res.Trace.LayerSpans)
	// The embedding layers' weight-update kernels must be far smaller
	// than a full-table (131 MB ≈ 230 µs) rewrite would be.
	emb := g.Select(core.And(core.OnGPUPred,
		core.InPhase(trace.WeightUpdate),
		core.InLayer("encoder.embedding")))
	if len(emb) == 0 {
		t.Fatal("no embedding weight-update kernels")
	}
	for _, u := range emb {
		if u.Duration > 50*1000 { // 50µs in ns
			t.Fatalf("embedding WU kernel %v too slow for a sparse update", u.Duration)
		}
	}
}

// TestBucketMetadataMatchesAssignment cross-checks the trace's bucket
// metadata against a fresh bucketing of the same gradients.
func TestBucketMetadataMatchesAssignment(t *testing.T) {
	m, _ := dnn.ByName("bert-large")
	res := mustRun(t, Config{
		Model:        m,
		Cluster:      &Cluster{Topology: topo(2, 1, 10), Backend: BackendNCCL},
		CollectTrace: true,
	})
	fromTrace := comm.BucketsFromTrace(res.Trace.Gradients)
	grads := make([]trace.GradientInfo, len(res.Trace.Gradients))
	copy(grads, res.Trace.Gradients)
	for i := range grads {
		grads[i].Bucket = -1
	}
	fresh := comm.AssignBuckets(grads, comm.DefaultBucketBytes)
	if len(fromTrace) != len(fresh) {
		t.Fatalf("bucket counts differ: %d vs %d", len(fromTrace), len(fresh))
	}
	for i := range fresh {
		if fromTrace[i].Bytes != fresh[i].Bytes {
			t.Fatalf("bucket %d bytes differ: %d vs %d", i, fromTrace[i].Bytes, fresh[i].Bytes)
		}
	}
}

// TestConcurrentKernelsOnlyWhereBranches checks the flag is inert for
// models without side branches.
func TestConcurrentKernelsOnlyWhereBranches(t *testing.T) {
	m, _ := dnn.ByName("bert-base") // no Branch layers
	res := mustRun(t, Config{Model: m, ConcurrentKernels: true, CollectTrace: true})
	if got := res.Trace.Streams(); len(got) != 1 {
		t.Fatalf("branch-free model used streams %v", got)
	}
}
