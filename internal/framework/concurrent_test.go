package framework

import (
	"math"
	"testing"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/trace"
)

// TestConcurrentKernelsOverlap checks that the §7.5 multi-stream mode
// really runs ResNet's downsample shortcuts on a second stream, and that
// the concurrency never slows the iteration down.
func TestConcurrentKernelsOverlap(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	serial := mustRun(t, Config{Model: m, CollectTrace: true})
	conc := mustRun(t, Config{Model: m, ConcurrentKernels: true, CollectTrace: true})

	streams := conc.Trace.Streams()
	if len(streams) != 2 {
		t.Fatalf("concurrent trace has streams %v, want two", streams)
	}
	if got := serial.Trace.Streams(); len(got) != 1 {
		t.Fatalf("serial trace has streams %v, want one", got)
	}
	if conc.IterationTime > serial.IterationTime {
		t.Fatalf("concurrent (%v) slower than serial (%v)", conc.IterationTime, serial.IterationTime)
	}

	// At least one branch kernel must actually overlap a main-stream
	// kernel in time.
	var mains, branches []trace.Interval
	for _, a := range conc.Trace.Activities {
		if a.Kind != trace.KindKernel {
			continue
		}
		iv := trace.Interval{Start: a.Start, End: a.End()}
		switch a.Stream {
		case computeStream:
			mains = append(mains, iv)
		case branchStream:
			branches = append(branches, iv)
		}
	}
	if len(branches) == 0 {
		t.Fatal("no kernels on the branch stream")
	}
	if trace.IntersectLength(mains, branches) == 0 {
		t.Fatal("branch kernels never overlap the main stream")
	}
}

// TestConcurrentTraceReplay quantifies §7.5's caveat: a two-stream trace
// replays slightly optimistically because the dataflow join between
// streams is not CUPTI-visible, but the error stays small (the paper
// observes the same for GNMT: "can still be predicted with high
// accuracy").
func TestConcurrentTraceReplay(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	res := mustRun(t, Config{Model: m, ConcurrentKernels: true, CollectTrace: true})
	g, err := core.Build(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(float64(sim-res.IterationTime)) / float64(res.IterationTime)
	t.Logf("two-stream replay: traced %v, simulated %v (%.2f%%)", res.IterationTime, sim, 100*rel)
	if rel > 0.05 {
		t.Fatalf("two-stream replay error %.1f%% too large", 100*rel)
	}
}
