package framework

import (
	"bytes"
	"testing"

	"daydream/internal/comm"
	"daydream/internal/dnn"
	"daydream/internal/trace"
	"daydream/internal/xpu"
)

func topo(machines, gpus int, gbps float64) comm.Topology {
	return comm.Topology{
		Machines:       machines,
		GPUsPerMachine: gpus,
		NICBandwidth:   comm.Gbps(gbps),
		IntraBandwidth: 11e9,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunRequiresModel(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestFusedAdamRequiresAdamModel(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	_, err := Run(Config{Model: m, Optimizer: OptFusedAdam, OptimizerSet: true})
	if err == nil {
		t.Fatal("FusedAdam on an SGD model accepted")
	}
}

func TestDeterminism(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	a := mustRun(t, Config{Model: m, CollectTrace: true})
	b := mustRun(t, Config{Model: m, CollectTrace: true})
	if a.IterationTime != b.IterationTime {
		t.Fatalf("same config, different times: %v vs %v", a.IterationTime, b.IterationTime)
	}
	if len(a.Trace.Activities) != len(b.Trace.Activities) {
		t.Fatal("same config, different trace sizes")
	}
	for i := range a.Trace.Activities {
		if a.Trace.Activities[i] != b.Trace.Activities[i] {
			t.Fatalf("activity %d differs between identical runs", i)
		}
	}
}

func TestSeedChangesRun(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	a := mustRun(t, Config{Model: m})
	b := mustRun(t, Config{Model: m, Seed: 12345})
	if a.IterationTime == b.IterationTime {
		t.Fatal("different seeds produced identical iteration times")
	}
	// But not wildly different: jitter is a few percent.
	ratio := float64(a.IterationTime) / float64(b.IterationTime)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("seed changed iteration time by more than jitter: %v vs %v", a.IterationTime, b.IterationTime)
	}
}

func TestTraceShape(t *testing.T) {
	m, _ := dnn.ByName("gnmt")
	res := mustRun(t, Config{Model: m, CollectTrace: true})
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := trace.ComputeStats(tr)
	if st.Count[trace.KindKernel] == 0 || st.Count[trace.KindLaunch] == 0 ||
		st.Count[trace.KindSync] == 0 || st.Count[trace.KindDataLoad] == 0 {
		t.Fatalf("trace missing activity kinds: %v", st.Count)
	}
	if st.Count[trace.KindKernel] > st.Count[trace.KindLaunch] {
		t.Error("more kernels than launch calls")
	}
	// Every phase appears in the layer spans.
	phases := map[trace.Phase]bool{}
	for _, s := range tr.LayerSpans {
		phases[s.Phase] = true
	}
	for _, p := range []trace.Phase{trace.Forward, trace.Backward, trace.WeightUpdate} {
		if !phases[p] {
			t.Errorf("no %v layer spans", p)
		}
	}
	if tr.IterationTime <= 0 {
		t.Error("non-positive iteration time")
	}
}

func TestAMPFasterThanFP32(t *testing.T) {
	for _, name := range dnn.Names() {
		m, _ := dnn.ByName(name)
		fp32 := mustRun(t, Config{Model: m})
		fp16 := mustRun(t, Config{Model: m, Precision: xpu.FP16})
		if fp16.IterationTime >= fp32.IterationTime {
			t.Errorf("%s: AMP no faster (%v vs %v)", name, fp16.IterationTime, fp32.IterationTime)
		}
		// End-to-end AMP speedups stay within physical bounds (< the
		// 3x tensor-core ceiling).
		if r := float64(fp32.IterationTime) / float64(fp16.IterationTime); r > 3 {
			t.Errorf("%s: AMP speedup %.2f exceeds the per-kernel ceiling", name, r)
		}
	}
}

func TestFusedAdamFasterThanUnfused(t *testing.T) {
	for _, name := range []string{"bert-base", "bert-large"} {
		m, _ := dnn.ByName(name)
		unfused := mustRun(t, Config{Model: m})
		fused := mustRun(t, Config{Model: m, Optimizer: OptFusedAdam, OptimizerSet: true})
		imp := 1 - float64(fused.IterationTime)/float64(unfused.IterationTime)
		if imp < 0.10 {
			t.Errorf("%s: FusedAdam improvement %.1f%%, want >10%% (paper: 20–39%%)", name, 100*imp)
		}
	}
}

func TestDistributedSlowerThanSingle(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	single := mustRun(t, Config{Model: m})
	dist := mustRun(t, Config{
		Model:   m,
		Cluster: &Cluster{Topology: topo(4, 1, 10), Backend: BackendNCCL},
	})
	if dist.IterationTime <= single.IterationTime {
		t.Fatal("adding communication made the iteration faster")
	}
}

func TestSyncBeforeCommNeverDegrades(t *testing.T) {
	// The paper's §6.5 finding: adding synchronization before NCCL
	// primitives "does not lead to performance degradation in any
	// configuration" and helps in comm-bound ones.
	m, _ := dnn.ByName("gnmt")
	for _, gbps := range []float64{10, 40} {
		base := mustRun(t, Config{
			Model:   m,
			Cluster: &Cluster{Topology: topo(4, 2, gbps), Backend: BackendNCCL},
		})
		sync := mustRun(t, Config{
			Model:   m,
			Cluster: &Cluster{Topology: topo(4, 2, gbps), Backend: BackendNCCL, SyncBeforeComm: true},
		})
		if float64(sync.IterationTime) > 1.02*float64(base.IterationTime) {
			t.Errorf("%vGbps: sync variant slower (%v vs %v)", gbps, sync.IterationTime, base.IterationTime)
		}
	}
}

func TestCommRecordOrdering(t *testing.T) {
	m, _ := dnn.ByName("gnmt")
	res := mustRun(t, Config{
		Model:   m,
		Cluster: &Cluster{Topology: topo(2, 1, 10), Backend: BackendNCCL},
	})
	if len(res.Comm) == 0 {
		t.Fatal("no communication records")
	}
	for _, c := range res.Comm {
		if c.Theoretical <= 0 || c.Exclusive < c.Theoretical {
			t.Errorf("record %+v: want Exclusive ≥ Theoretical > 0", c)
		}
		if c.Actual < c.Exclusive {
			t.Errorf("record %+v: want Actual ≥ Exclusive", c)
		}
	}
}

func TestNCCLBucketCount(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	res := mustRun(t, Config{
		Model:        m,
		Cluster:      &Cluster{Topology: topo(2, 1, 10), Backend: BackendNCCL},
		CollectTrace: true,
	})
	buckets := comm.BucketsFromTrace(res.Trace.Gradients)
	if len(buckets) == 0 {
		t.Fatal("no buckets in trace metadata")
	}
	if len(res.Comm) != len(buckets) {
		t.Fatalf("comm records %d != buckets %d", len(res.Comm), len(buckets))
	}
}

func TestPSBandwidthSensitivity(t *testing.T) {
	m := dnn.VGG19(16)
	slow := mustRun(t, Config{
		Model: m, Device: xpu.P4000(), Dialect: MXNet,
		Cluster: &Cluster{Topology: topo(4, 1, 2), Backend: BackendPS},
	})
	fast := mustRun(t, Config{
		Model: m, Device: xpu.P4000(), Dialect: MXNet,
		Cluster: &Cluster{Topology: topo(4, 1, 20), Backend: BackendPS},
	})
	if slow.IterationTime <= fast.IterationTime {
		t.Fatal("PS training insensitive to bandwidth")
	}
}

func TestP3BeatsFIFOWhenCommBound(t *testing.T) {
	m := dnn.VGG19(16)
	run := func(p3 bool) *Result {
		return mustRun(t, Config{
			Model: m, Device: xpu.P4000(), Dialect: MXNet,
			Cluster: &Cluster{Topology: topo(4, 1, 5), Backend: BackendPS, P3: p3},
		})
	}
	fifo, p3 := run(false), run(true)
	if float64(p3.IterationTime) > 0.9*float64(fifo.IterationTime) {
		t.Errorf("P3 (%v) should clearly beat FIFO (%v) at 5 Gbps", p3.IterationTime, fifo.IterationTime)
	}
}

func TestReconBatchnormFaster(t *testing.T) {
	m, _ := dnn.ByName("densenet121")
	base := mustRun(t, Config{Model: m, Dialect: Caffe})
	recon := mustRun(t, Config{Model: m, Dialect: Caffe, ReconBatchnorm: true})
	if recon.IterationTime >= base.IterationTime {
		t.Fatal("reconstructed batchnorm did not help")
	}
}

func TestDialectOverheadOrdering(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	pt := mustRun(t, Config{Model: m, Dialect: PyTorch})
	cf := mustRun(t, Config{Model: m, Dialect: Caffe})
	if cf.IterationTime >= pt.IterationTime {
		t.Error("Caffe (C++ dispatch) should be at least as fast as PyTorch")
	}
}

func TestTraceJSONRoundTripStaysValid(t *testing.T) {
	m, _ := dnn.ByName("densenet121")
	res := mustRun(t, Config{Model: m, CollectTrace: true})
	var buf bytes.Buffer
	if err := res.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.IterationTime != res.Trace.IterationTime {
		t.Error("iteration time lost in round trip")
	}
	if len(got.Activities) != len(res.Trace.Activities) {
		t.Error("activities lost in round trip")
	}
}

func TestGradientMetadata(t *testing.T) {
	m, _ := dnn.ByName("vgg19")
	res := mustRun(t, Config{Model: m, CollectTrace: true})
	var total int64
	for _, g := range res.Trace.Gradients {
		total += g.Bytes
	}
	if total != m.GradientBytes() {
		t.Fatalf("gradient metadata sums to %d, want %d", total, m.GradientBytes())
	}
	// Single-GPU runs leave gradients unbucketed.
	for _, g := range res.Trace.Gradients {
		if g.Bucket != -1 {
			t.Fatal("single-GPU trace should not assign buckets")
		}
	}
}

func TestDistributedTraceHasCommTasks(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	res := mustRun(t, Config{
		Model:        m,
		Cluster:      &Cluster{Topology: topo(2, 1, 10), Backend: BackendNCCL},
		CollectTrace: true,
	})
	n := 0
	for _, a := range res.Trace.Activities {
		if a.Kind == trace.KindComm {
			n++
		}
	}
	if n != len(res.Comm) {
		t.Fatalf("trace has %d comm activities, records say %d", n, len(res.Comm))
	}
}

func TestScalingWithWorkerCount(t *testing.T) {
	m, _ := dnn.ByName("bert-large")
	prev := mustRun(t, Config{Model: m}).IterationTime
	for _, workers := range []int{2, 4} {
		cur := mustRun(t, Config{
			Model:   m,
			Cluster: &Cluster{Topology: topo(workers, 1, 10), Backend: BackendNCCL},
		}).IterationTime
		if cur <= prev {
			t.Errorf("%d workers (%v) not slower than previous (%v): ring cost grows with n", workers, cur, prev)
		}
		prev = cur
	}
}

func TestBreakdownAddsUp(t *testing.T) {
	m, _ := dnn.ByName("bert-base")
	res := mustRun(t, Config{Model: m, CollectTrace: true})
	b := trace.ComputeBreakdown(res.Trace)
	if b.Total() != res.IterationTime {
		t.Fatalf("breakdown total %v != iteration %v", b.Total(), res.IterationTime)
	}
	if b.CPUOnly < 0 || b.GPUOnly < 0 || b.Parallel < 0 {
		t.Fatal("negative breakdown component")
	}
}

func TestOptimizerStrings(t *testing.T) {
	if OptSGD.String() != "sgd" || OptAdam.String() != "adam" || OptFusedAdam.String() != "fused_adam" {
		t.Error("optimizer strings wrong")
	}
	if PyTorch.String() != "pytorch" || MXNet.String() != "mxnet" || Caffe.String() != "caffe" {
		t.Error("dialect strings wrong")
	}
}
