// Package framework is this reproduction's substitute for the real
// PyTorch/MXNet/Caffe + CUDA + NCCL stack: a deterministic discrete-event
// executor that "runs" DNN training iterations on the virtual hardware of
// internal/xpu and emits CUPTI-shaped traces (internal/trace).
//
// Crucially, the engine implements the paper's evaluated optimizations for
// real within the virtual machine model — mixed precision with per-kernel
// roofline speedups, the fused Adam optimizer, reconstructed batchnorm with
// its re-implementation overheads, NCCL all-reduce with GPU interference,
// and an MXNet-style parameter server with server-side processing costs.
// Daydream's predictions (internal/whatif) are computed from *baseline*
// traces using only the paper's published transformation rules, so the
// prediction errors reported by internal/exp are emergent, not assumed.
package framework

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/dnn"
	"daydream/internal/trace"
	"daydream/internal/xpu"
)

// Dialect selects which framework's execution behaviour to emulate. The
// differences that matter to Daydream are the dispatch overheads and the
// communication mechanism (NCCL buckets vs parameter server).
type Dialect int

// Framework dialects.
const (
	// PyTorch uses NCCL all-reduce with gradient buckets and has
	// Python-level dispatch overheads.
	PyTorch Dialect = iota
	// MXNet uses the parameter-server architecture (push/pull); this is
	// the dialect of the P3 experiments.
	MXNet
	// Caffe is a C++ framework with lower dispatch overheads; this is
	// the dialect of the reconstructed-batchnorm experiment.
	Caffe
)

// String returns the framework name in lower case.
func (d Dialect) String() string {
	switch d {
	case MXNet:
		return "mxnet"
	case Caffe:
		return "caffe"
	}
	return "pytorch"
}

// Optimizer selects the weight-update implementation.
type Optimizer int

// Optimizer implementations.
const (
	// OptSGD is SGD with momentum: a few elementwise kernels per tensor.
	OptSGD Optimizer = iota
	// OptAdam is the stock unfused Adam: ~13 elementwise kernels per
	// parameter tensor, each with full framework dispatch overhead.
	OptAdam
	// OptFusedAdam is Apex's FusedAdam: a handful of multi-tensor fused
	// kernels for the entire update.
	OptFusedAdam
)

// String returns the optimizer name.
func (o Optimizer) String() string {
	switch o {
	case OptAdam:
		return "adam"
	case OptFusedAdam:
		return "fused_adam"
	}
	return "sgd"
}

// Backend selects the distributed communication mechanism.
type Backend int

// Communication backends.
const (
	// BackendNCCL is PyTorch DDP: bucketed ring all-reduce.
	BackendNCCL Backend = iota
	// BackendPS is the MXNet parameter server: per-layer push/pull.
	BackendPS
)

// Cluster configures distributed training. A nil Cluster (or one whose
// topology has a single GPU) means single-worker training.
type Cluster struct {
	// Topology is the machines × GPUs layout and link bandwidths.
	Topology comm.Topology
	// Backend selects NCCL all-reduce or parameter server.
	Backend Backend
	// SyncBeforeComm inserts a CUDA synchronization before every NCCL
	// call — the mitigation the paper discovers in §6.5.
	SyncBeforeComm bool
	// P3 enables priority-based parameter propagation (slicing plus
	// priority scheduling) on the PS backend.
	P3 bool
	// P3SliceBytes is the gradient slice size for P3.
	P3SliceBytes int64
	// ServerBandwidth is the PS server's processing rate in bytes/s; it
	// models the server-side CPU cost that makes communication tasks
	// "increasingly bottlenecked by non-network resources" at high
	// bandwidth (paper §6.6). Zero selects a default.
	ServerBandwidth float64
	// ServerLatency is the fixed per-request server overhead.
	ServerLatency time.Duration
}

// enabled reports whether the cluster actually distributes training.
func (c *Cluster) enabled() bool {
	return c != nil && c.Topology.TotalGPUs() > 1
}

// Config configures one training run.
type Config struct {
	// Model is the workload. Required.
	Model *dnn.Model
	// Device is the accelerator model; defaults to an RTX 2080 Ti.
	Device *xpu.Device
	// Host is the CPU model; defaults to the paper's EPYC 7601.
	Host *xpu.Host
	// Dialect is the framework to emulate; defaults to PyTorch.
	Dialect Dialect
	// Precision is fp32 or fp16 (AMP); defaults to fp32.
	Precision xpu.Precision
	// Optimizer is the weight-update implementation. Defaults to the
	// model's native optimizer (SGD or unfused Adam).
	Optimizer Optimizer
	// OptimizerSet marks Optimizer as explicitly chosen.
	OptimizerSet bool
	// ReconBatchnorm applies the reconstructed-batchnorm optimization
	// of Jung et al. for real, including its re-implementation
	// overheads (extra allocations/copies, §6.4).
	ReconBatchnorm bool
	// ConcurrentKernels executes side-branch layers (e.g. ResNet's
	// downsample shortcuts) on a second CUDA stream, concurrently with
	// the main path — the multi-stream behaviour the paper's §7.5
	// leaves to future work. Traces then contain two streams; replaying
	// them is slightly optimistic because the dataflow join is not a
	// CUPTI-visible dependency.
	ConcurrentKernels bool
	// Cluster configures distributed training; nil for single worker.
	Cluster *Cluster
	// BucketBytes overrides the DDP gradient bucket capacity.
	BucketBytes int64
	// Seed perturbs the deterministic jitter, modeling a different
	// "run" of the same configuration.
	Seed uint64
	// CollectTrace requests a full trace of the measured iteration.
	CollectTrace bool
}

// CommRecord reports the timing of one communication primitive in the
// measured iteration, in the four variants Figure 9 compares.
type CommRecord struct {
	// Name is the primitive ("ncclAllReduce", "push", "pull").
	Name string
	// Bucket is the gradient bucket (or layer index for PS).
	Bucket int
	// Bytes is the payload.
	Bytes int64
	// Theoretical is the analytic formula time (NCCL-tests formula).
	Theoretical time.Duration
	// Exclusive is the time when run with the GPU otherwise idle
	// (Figure 9's "Optimal").
	Exclusive time.Duration
	// Actual is the time observed in this run, including any
	// interference with concurrently executing compute kernels.
	Actual time.Duration
}

// Result is the outcome of a training run.
type Result struct {
	// IterationTime is the steady-state time of one training iteration.
	IterationTime time.Duration
	// Trace is the measured iteration's trace (nil unless
	// Config.CollectTrace).
	Trace *trace.Trace
	// Comm lists the communication primitives of the measured
	// iteration, in launch order.
	Comm []CommRecord
}

// applyDefaults fills zero-value fields and validates the configuration.
func (c *Config) applyDefaults() error {
	if c.Model == nil {
		return fmt.Errorf("framework: Config.Model is required")
	}
	if c.Device == nil {
		c.Device = xpu.RTX2080Ti()
	}
	if c.Host == nil {
		c.Host = xpu.EPYC7601()
	}
	if !c.OptimizerSet {
		if c.Model.Optimizer == dnn.Adam {
			c.Optimizer = OptAdam
		} else {
			c.Optimizer = OptSGD
		}
		c.OptimizerSet = true
	}
	if c.Optimizer == OptFusedAdam && c.Model.Optimizer != dnn.Adam {
		return fmt.Errorf("framework: FusedAdam requires an Adam-trained model, got %s", c.Model.Name)
	}
	if c.BucketBytes == 0 {
		c.BucketBytes = comm.DefaultBucketBytes
	}
	if c.Cluster != nil {
		if c.Cluster.ServerBandwidth == 0 {
			c.Cluster.ServerBandwidth = 1.0e9
		}
		if c.Cluster.ServerLatency == 0 {
			c.Cluster.ServerLatency = 200 * time.Microsecond
		}
		if c.Cluster.P3 && c.Cluster.P3SliceBytes == 0 {
			c.Cluster.P3SliceBytes = 800 << 10 // 800 KB, close to P3's 50k-float slices
		}
	}
	return nil
}

// Run executes the configured training workload: a few warm-up iterations
// followed by one measured (and optionally traced) iteration. It returns
// the steady-state iteration time, per-primitive communication records and
// the trace.
func Run(cfg Config) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	m := newMachine(&cfg)
	const iterations = 4
	measured := iterations - 2 // record the second-to-last iteration
	var (
		measuredStart time.Duration
		nextStart     time.Duration
	)
	for it := 0; it < iterations; it++ {
		if it == measured {
			measuredStart = m.cpu
			m.startRecording()
		}
		if it == measured+1 {
			nextStart = m.cpu
			m.stopRecording()
		}
		m.runIteration(it)
	}
	iterTime := nextStart - measuredStart
	res := &Result{
		IterationTime: iterTime,
		Comm:          m.commRecords,
	}
	if cfg.CollectTrace {
		res.Trace = m.buildTrace(measuredStart, iterTime)
		if err := res.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("framework: emitted invalid trace: %w", err)
		}
	}
	return res, nil
}
