package framework

import (
	"time"

	"daydream/internal/dnn"
	"daydream/internal/trace"
	"daydream/internal/xpu"
)

// runIteration executes one training iteration: batch wait + prefetch of
// the next batch, input transfer, forward, loss retrieval, backward with
// communication hooks, weight update, and the end-of-iteration
// synchronization.
func (m *machine) runIteration(it int) {
	model := m.cfg.Model

	// Wait for this iteration's mini-batch, then kick off the loader for
	// the next one.
	if ready, ok := m.batchReady[it]; ok && ready > m.cpu {
		m.cpu = ready
	}
	m.scheduleDataLoad(it + 1)
	m.opGap()
	m.memcpyH2D(model.InputBytes())

	m.bucketCommEnd = make(map[int]time.Duration)

	// Forward.
	psMode := m.cfg.Cluster.enabled() && m.cfg.Cluster.Backend == BackendPS
	for _, l := range model.Layers {
		if psMode && l.HasParams() {
			// MXNet's dependency engine blocks the forward op of a
			// layer until its parameters have been pulled back
			// from the servers.
			if pd, ok := m.pullDone[l.Index]; ok && pd > m.cpu {
				m.cpu = pd
			}
		}
		m.runLayerPhase(l, trace.Forward, m.layerKernels(l, trace.Forward), 0)
	}

	// Loss retrieval: a device-to-host copy that drains the stream
	// (the "loss.item()" pattern).
	m.opGap()
	m.memcpyD2H(8)

	// Backward, with communication launched wait-free per layer/bucket.
	var pending []pendingComm
	ncclMode := m.cfg.Cluster.enabled() && m.cfg.Cluster.Backend == BackendNCCL
	bucketLeft := make(map[int]int)
	if ncclMode {
		for _, b := range m.buckets {
			bucketLeft[b.ID] = len(b.Layers)
		}
	}
	for i := len(model.Layers) - 1; i >= 0; i-- {
		l := model.Layers[i]
		end := m.runLayerPhase(l, trace.Backward, m.layerKernels(l, trace.Backward), 0)
		switch {
		case ncclMode && l.HasParams():
			id := m.bucketOf[l.Index]
			bucketLeft[id]--
			if bucketLeft[id] == 0 {
				if m.cfg.Cluster.SyncBeforeComm {
					m.streamSync()
				}
				m.gap(m.host.HostCall(m.host.DispatchGap, "ddp.hook", m.nextSalt()))
				pending = append(pending, pendingComm{
					name:   "ncclAllReduce",
					bucket: id,
					bytes:  m.buckets[id].Bytes,
					ready:  end,
				})
			}
		case psMode && l.HasParams():
			pending = append(pending, m.psPushes(l.Index, l.GradBytes(), end)...)
		}
	}
	bwdComputeEnd := m.gpuIdleAt()
	if ncclMode {
		m.scheduleNCCL(pending, bwdComputeEnd)
	} else if psMode {
		m.schedulePS(pending)
	}

	// Weight update.
	m.runWeightUpdate()

	// End of iteration: drain the device (and, under DDP, the
	// communication backend).
	m.opGap()
	m.deviceSync("cudaDeviceSynchronize", ncclMode)
}

// bwdCPUFactor scales a layer's CPU dispatch cost in the backward pass:
// autograd re-dispatches roughly every forward op plus bookkeeping.
const bwdCPUFactor = 1.6

// runLayerPhase executes one phase of one layer: the per-operator
// framework dispatch gaps (scaled by the layer's operator count and, for
// backward, the autograd factor), then a dispatch gap + launch per kernel,
// bracketed by the instrumentation span. minStart constrains the layer's
// kernels (cross-resource dependencies). It returns the completion time of
// the layer's last kernel (the CPU clock if the layer launches nothing).
func (m *machine) runLayerPhase(l *dnn.Layer, phase trace.Phase, ks []xpu.Kernel, minStart time.Duration) time.Duration {
	ops := l.CPUOps()
	if phase == trace.Backward {
		ops = int(float64(ops)*bwdCPUFactor + 0.5)
	}
	for i := 0; i < ops; i++ {
		m.opGap()
	}
	m.onBranch = m.cfg.ConcurrentKernels && l.Branch
	start := m.cpu
	end := m.cpu
	for i := range ks {
		m.dispatchGap()
		end = m.launchKernel(&ks[i], minStart)
	}
	m.onBranch = false
	if m.cfg.ReconBatchnorm && l.Kind == dnn.BatchNorm && phase == trace.Forward {
		// The reconstructed batchnorm implementation allocates
		// scratch buffers and copies statistics around — the
		// overheads the paper's §6.4 ground truth pays but the
		// prediction does not model.
		m.cudaMalloc("cudaMalloc")
		m.memcpyH2D(4096)
	}
	m.span(l.Name, l.Index, phase, start, m.cpu)
	return end
}

// layerKernels returns the kernels a layer phase launches, with the
// reconstructed-batchnorm ground-truth rewrite applied when enabled:
// ReLU kernels disappear (fused into neighbours), batchnorm kernels load
// half the data but run on a less-tuned implementation, and convolutions
// pay a small fused-epilogue cost.
func (m *machine) layerKernels(l *dnn.Layer, phase trace.Phase) []xpu.Kernel {
	var ks []xpu.Kernel
	if phase == trace.Forward {
		ks = l.ForwardKernels()
	} else {
		ks = l.BackwardKernels()
	}
	if !m.cfg.ReconBatchnorm {
		return ks
	}
	switch l.Kind {
	case dnn.ReLU:
		return nil
	case dnn.BatchNorm:
		out := make([]xpu.Kernel, len(ks))
		for i, k := range ks {
			k.Name = "recon_" + k.EffectiveName()
			k.Bytes *= 0.5 * reconBNInefficiency
			k.FLOPs *= reconBNInefficiency
			out[i] = k
		}
		return out
	case dnn.Conv:
		out := make([]xpu.Kernel, len(ks))
		for i, k := range ks {
			k.FLOPs *= reconConvEpilogue
			k.Bytes *= reconConvEpilogue
			out[i] = k
		}
		return out
	}
	return ks
}

// Reconstructed-batchnorm ground-truth calibration: the re-implemented
// batchnorm kernels are less tuned than cuDNN's, and the fused convolution
// epilogues cost a little extra — together these are why the measured
// speedup (~7%) falls short of the idealized prediction (§6.4).
const (
	reconBNInefficiency = 1.75
	reconConvEpilogue   = 1.05
)

// scheduleDataLoad starts the loader thread preparing iteration k's batch.
func (m *machine) scheduleDataLoad(k int) {
	bytes := m.cfg.Model.InputBytes()
	sec := float64(bytes)/dataLoadBandwidth + 1e-3
	dur := time.Duration(sec * float64(time.Second) * xpu.Jitter("dataload", m.nextSalt(), 0.08))
	start := maxDur(m.loader, m.cpu)
	m.record(trace.Activity{
		Name: "dataloader.next_batch", Kind: trace.KindDataLoad,
		Start: start, Duration: dur,
		Thread: loaderThread, Bytes: bytes,
	})
	m.loader = start + dur
	m.batchReady[k] = m.loader
}
