package framework

import (
	"sort"
	"time"

	"daydream/internal/comm"
	"daydream/internal/xpu"
)

// psPushes converts one layer's freshly computed gradient into pending
// push requests. Without P3 the whole tensor is one request; with P3 it is
// cut into fixed-size slices tagged with the layer's forward position so
// that parameters needed earliest in the next forward pass win the
// network first (priority-based parameter propagation).
func (m *machine) psPushes(layerIndex int, gradBytes int64, ready time.Duration) []pendingComm {
	sliceBytes := gradBytes
	if m.cfg.Cluster.P3 {
		sliceBytes = m.cfg.Cluster.P3SliceBytes
	}
	var out []pendingComm
	for _, sz := range comm.Slices(gradBytes, sliceBytes) {
		out = append(out, pendingComm{
			name:     "push",
			bucket:   layerIndex,
			layer:    layerIndex,
			bytes:    sz,
			ready:    ready,
			priority: -layerIndex, // earlier layers are needed sooner
		})
	}
	return out
}

// schedulePS runs the parameter-server transfer schedule: pushes on the
// worker's send channel, server-side processing, pulls on the receive
// channel. The baseline serves requests in ready (FIFO) order; P3 picks
// the highest-priority ready slice. Server processing cost is the
// ground-truth-only effect that makes communication "increasingly
// bottlenecked by non-network resources" at high bandwidth (§6.6).
func (m *machine) schedulePS(pending []pendingComm) {
	if len(pending) == 0 {
		return
	}
	cl := m.cfg.Cluster
	topo := cl.Topology
	bw := topo.NICBandwidth
	n := float64(topo.TotalGPUs())
	servers := float64(topo.Machines)
	lat := topo.StepLatency
	prioritize := cl.P3

	type request struct {
		pendingComm
		serverDone time.Duration
	}

	// Push phase on the send channel. The server pool is a *serial*
	// shared resource: aggregating a request occupies server CPU
	// proportional to its size (scaled by how many workers feed how
	// many servers), so at high network bandwidth the servers — not the
	// wire — pace the pulls. Daydream's predictor knows only gradient
	// sizes and network bandwidth, which is exactly why it overestimates
	// P3's gains in that regime (§6.6).
	reqs := make([]request, 0, len(pending))
	send := m.chans[psSendChan]
	server := m.chans[psServerChan]
	remaining := append([]pendingComm(nil), pending...)
	for len(remaining) > 0 {
		i := pickRequest(remaining, send, prioritize)
		p := remaining[i]
		remaining = append(remaining[:i], remaining[i+1:]...)
		start := maxDur(send, p.ready)
		dur := comm.TransferTime(p.bytes, bw, lat)
		dur = time.Duration(float64(dur) * xpu.Jitter("ps.push", m.nextSalt(), 0.05))
		m.recordComm("push", psSendChan, p.layer, p.bytes, start, dur, comm.TransferTime(p.bytes, bw, lat), dur)
		send = start + dur
		serverProc := time.Duration(float64(p.bytes) * (n / servers) / cl.ServerBandwidth * float64(time.Second))
		serverStart := maxDur(server, send)
		server = serverStart + serverProc
		reqs = append(reqs, request{pendingComm: p, serverDone: server + cl.ServerLatency})
	}
	m.chans[psSendChan] = send
	m.chans[psServerChan] = server

	// Pull phase on the receive channel.
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].serverDone < reqs[j].serverDone })
	recv := m.chans[psRecvChan]
	pulls := make([]pendingComm, len(reqs))
	for i, r := range reqs {
		pulls[i] = r.pendingComm
		pulls[i].ready = r.serverDone
	}
	newPullDone := make(map[int]time.Duration)
	for len(pulls) > 0 {
		i := pickRequest(pulls, recv, prioritize)
		p := pulls[i]
		pulls = append(pulls[:i], pulls[i+1:]...)
		start := maxDur(recv, p.ready)
		dur := comm.TransferTime(p.bytes, bw, lat)
		dur = time.Duration(float64(dur) * xpu.Jitter("ps.pull", m.nextSalt(), 0.05))
		m.recordComm("pull", psRecvChan, p.layer, p.bytes, start, dur, comm.TransferTime(p.bytes, bw, lat), dur)
		recv = start + dur
		if e := recv; e > newPullDone[p.layer] {
			newPullDone[p.layer] = e
		}
	}
	m.chans[psRecvChan] = recv
	for li, e := range newPullDone {
		m.pullDone[li] = e
		if e > m.lastCommEnd {
			m.lastCommEnd = e
		}
	}
}

// pickRequest selects the next request to serve on a channel whose clock
// is now. FIFO mode returns the first request (the list is already in
// arrival order); priority mode returns the highest-priority request that
// is ready at the channel's next idle time, falling back to the earliest
// ready one.
func pickRequest(reqs []pendingComm, now time.Duration, prioritize bool) int {
	if !prioritize {
		return 0
	}
	// The channel becomes free at max(now, earliest ready).
	earliest := reqs[0].ready
	for _, r := range reqs[1:] {
		if r.ready < earliest {
			earliest = r.ready
		}
	}
	free := now
	if earliest > free {
		free = earliest
	}
	best := -1
	for i, r := range reqs {
		if r.ready > free {
			continue
		}
		if best == -1 || r.priority > reqs[best].priority {
			best = i
		}
	}
	if best == -1 {
		// Nothing ready yet: take the earliest arrival.
		best = 0
		for i, r := range reqs {
			if r.ready < reqs[best].ready {
				best = i
			}
		}
	}
	return best
}
