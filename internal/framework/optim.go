package framework

import (
	"time"

	"daydream/internal/dnn"
	"daydream/internal/trace"
	"daydream/internal/xpu"
)

// Weight-update calibration. Unfused optimizers dispatch every elementwise
// operation through the framework's Python/C++ front end, which is why the
// paper finds "the CUDA launch calls on the CPU become the main bottleneck"
// for BERT (§6.3).
const (
	// adamKernelsPerTensor is the number of elementwise kernels the
	// stock Adam implementation launches per parameter tensor per step
	// (exp-avg update, exp-avg-sq update, bias corrections, denom,
	// addcdiv, ...). With BERT-Base's ~200 parameter tensors this yields
	// the ~2.6 K weight-update kernels the paper counts.
	adamKernelsPerTensor = 13
	// adamDispatch is the per-kernel Python dispatch overhead inside the
	// optimizer loop.
	adamDispatch = 32 * time.Microsecond
	// adamBytesFactor is each Adam elementwise kernel's DRAM traffic in
	// units of the tensor size.
	adamBytesFactor = 1.0
	// sgdKernelsPerTensor is the kernels-per-tensor count of SGD with
	// momentum.
	sgdKernelsPerTensor = 3
	// sgdDispatch is SGD's per-kernel dispatch overhead.
	sgdDispatch = 10 * time.Microsecond
	// sgdBytesFactor is each SGD kernel's traffic in tensor sizes.
	sgdBytesFactor = 2.5
	// fusedBytesFactor is the fused optimizer's total traffic in units
	// of total parameter bytes (read p/g/m/v, write p/m/v).
	fusedBytesFactor = 7
)

// runWeightUpdate executes the optimizer step. Under the NCCL backend each
// layer's update waits for its gradient bucket's all-reduce.
func (m *machine) runWeightUpdate() {
	if m.cfg.Precision == xpu.FP16 && m.cfg.Optimizer != OptFusedAdam {
		m.runAMPUnscale()
	}
	switch m.cfg.Optimizer {
	case OptFusedAdam:
		m.runFusedAdam()
	case OptAdam:
		m.runUnfusedUpdate(adamKernelsPerTensor, adamDispatch, adamBytesFactor, xpu.ClassOptimizer)
	default:
		m.runUnfusedUpdate(sgdKernelsPerTensor, sgdDispatch, sgdBytesFactor, xpu.ClassOptimizer)
	}
}

// runUnfusedUpdate launches kernelsPerTensor elementwise kernels per
// parameter tensor, each behind a framework dispatch, mirroring stock
// PyTorch optimizers. Embedding tables receive sparse gradients, so their
// update traffic is bounded by the rows actually touched this iteration.
func (m *machine) runUnfusedUpdate(kernelsPerTensor int, dispatch time.Duration, bytesFactor float64, class xpu.Class) {
	m.opGap()
	for _, l := range m.cfg.Model.Layers {
		if !l.HasParams() {
			continue
		}
		minStart := m.commWaitFor(l.Index)
		start := m.cpu
		for _, tensor := range l.Tensors {
			bytes := float64(tensor) * 4 * bytesFactor
			if l.Kind == dnn.Embedding && l.ActBytes > 0 && float64(l.ActBytes) < bytes {
				bytes = float64(l.ActBytes) * bytesFactor
			}
			for k := 0; k < kernelsPerTensor; k++ {
				m.gap(m.host.HostCall(dispatch, "optimizer.dispatch", m.nextSalt()))
				kern := xpu.Kernel{Class: class, Bytes: bytes}
				m.launchKernel(&kern, minStart)
			}
		}
		m.span(l.Name, l.Index, trace.WeightUpdate, start, m.cpu)
	}
}

// runFusedAdam launches Apex's multi-tensor fused update: the entire
// optimizer step collapses into one GPU kernel behind one launch.
func (m *machine) runFusedAdam() {
	m.opGap()
	minStart := m.allCommDone()
	start := m.cpu
	totalBytes := float64(m.cfg.Model.ParamCount()) * 4 * fusedBytesFactor
	m.gap(m.host.HostCall(adamDispatch, "fused_adam.dispatch", m.nextSalt()))
	kern := xpu.Kernel{Class: xpu.ClassFusedOptimizer, Bytes: totalBytes}
	m.launchKernel(&kern, minStart)
	m.span("optimizer.fused_adam", len(m.cfg.Model.Layers), trace.WeightUpdate, start, m.cpu)
}

// runAMPUnscale models Apex AMP's loss-scale bookkeeping before an unfused
// optimizer step: one unscale kernel per parameter tensor, a global
// finite-check reduction, and the blocking device-to-host copy of the
// overflow flag. This is the (small) CPU-side cost AMP adds, keeping the
// Figure-6 observation that "CPU runtime barely changes".
func (m *machine) runAMPUnscale() {
	m.opGap()
	start := m.cpu
	for _, l := range m.cfg.Model.Layers {
		if !l.HasParams() {
			continue
		}
		minStart := m.commWaitFor(l.Index)
		for _, tensor := range l.Tensors {
			m.dispatchGap()
			kern := xpu.Kernel{
				Name:  "elementwise_kernel_amp_unscale",
				Class: xpu.ClassElementwise,
				Bytes: float64(tensor) * 4 * 2,
			}
			m.launchKernel(&kern, minStart)
		}
	}
	m.dispatchGap()
	check := xpu.Kernel{Name: "reduce_kernel_amp_finite_check", Class: xpu.ClassReduce, Bytes: 1 << 20}
	m.launchKernel(&check, 0)
	// The overflow flag is read back asynchronously (the loss scaler
	// consumes it next iteration), so only scale-management CPU work is
	// paid here.
	m.gap(m.host.HostCall(m.host.DispatchGap, "amp.loss_scaler", m.nextSalt()))
	m.span("amp.unscale", len(m.cfg.Model.Layers)+1, trace.WeightUpdate, start, m.cpu)
}

// commWaitFor returns the earliest time layer li's weight update may start.
// PyTorch DDP blocks the end of backward() on *every* bucket's all-reduce
// before the optimizer runs, so the constraint is the completion of all
// communication, not just the layer's own bucket — the same dependency
// shape Algorithm 6 gives the prediction.
func (m *machine) commWaitFor(li int) time.Duration {
	if m.bucketOf == nil {
		return 0
	}
	return m.allCommDone()
}

// allCommDone returns the completion time of the last communication
// primitive of the current iteration.
func (m *machine) allCommDone() time.Duration {
	var end time.Duration
	for _, e := range m.bucketCommEnd {
		if e > end {
			end = e
		}
	}
	return end
}
