package framework

import (
	"testing"

	"daydream/internal/dnn"
	"daydream/internal/xpu"
)

// TestSmokeIterationTimes prints the baseline iteration time of every zoo
// model so calibration against the paper's reported magnitudes can be
// checked by eye (go test -v).
func TestSmokeIterationTimes(t *testing.T) {
	for _, name := range dnn.Names() {
		model, err := dnn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Model: model, CollectTrace: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fp16, err := Run(Config{Model: model, Precision: xpu.FP16})
		if err != nil {
			t.Fatalf("%s fp16: %v", name, err)
		}
		t.Logf("%-12s fp32=%8.1fms fp16=%8.1fms speedup=%.2fx activities=%d params=%.1fM",
			name,
			float64(res.IterationTime.Microseconds())/1000,
			float64(fp16.IterationTime.Microseconds())/1000,
			float64(res.IterationTime)/float64(fp16.IterationTime),
			len(res.Trace.Activities),
			float64(model.ParamCount())/1e6)
	}
}
