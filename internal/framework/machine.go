package framework

import (
	"time"

	"daydream/internal/comm"
	"daydream/internal/trace"
	"daydream/internal/xpu"
)

// Thread and stream identifiers used by the emulated frameworks. One main
// compute thread plus one data-loading thread mirrors the paper's
// observation that "once a mini-batch has been prepared by data loading
// threads, only one or two CPU threads are involved in the control flow".
const (
	mainThread    = 1
	loaderThread  = 2
	computeStream = 7
	// branchStream carries side-branch kernels when the concurrent-
	// kernels mode is enabled (paper §7.5).
	branchStream = 8
	ncclChannel  = "nccl"
	psSendChan   = "ps.send"
	psRecvChan   = "ps.recv"
	psServerChan = "ps.server"
)

// Interference calibration: how much slower a NCCL primitive runs when it
// overlaps compute kernels (paper Fig. 9 measures ground truth ≈ 34% above
// theoretical), how much the sync mitigation leaves (≈ sync runs 22.8%
// faster than baseline), and the kernel-scheduling overhead a primitive
// pays even when the GPU is otherwise idle ("Optimal" ≈ just above
// "Theoretical").
const (
	interferenceBaseline = 0.30
	interferenceWithSync = 0.05
	exclusiveOverhead    = 0.045
	dataLoadBandwidth    = 1.6e9 // bytes/s of the preprocessing pipeline
)

// pendingComm is a communication primitive waiting to be scheduled on a
// channel.
type pendingComm struct {
	name     string
	bucket   int
	bytes    int64
	ready    time.Duration // when the payload is available (GPU side)
	priority int           // larger = more urgent (P3)
	layer    int           // producing layer index (PS)
}

// machine is the virtual execution state of one worker (rank 0; workers
// are symmetric).
type machine struct {
	cfg  *Config
	dev  *xpu.Device
	host *xpu.Host

	cpu         time.Duration // main-thread clock
	loader      time.Duration // loader-thread clock
	stream      time.Duration // compute-stream FIFO tail (end of last kernel)
	branch      time.Duration // branch-stream FIFO tail (concurrent mode)
	chans       map[string]time.Duration
	lastCommEnd time.Duration
	// onBranch routes the current layer's kernels to the branch stream;
	// pendingJoin gates the next main-stream kernel on the branch's
	// completion (the dataflow join the trace cannot express).
	onBranch    bool
	pendingJoin time.Duration

	// batchReady[k] is when the loader finished preparing iteration k's
	// mini-batch.
	batchReady map[int]time.Duration
	// pullDone[layerIndex] is when the PS pull for a layer's parameters
	// completed (used by the next iteration's forward pass).
	pullDone map[int]time.Duration

	// grads and buckets are the per-layer gradient metadata.
	grads   []trace.GradientInfo
	buckets []comm.Bucket
	// bucketOf maps a layer index to its bucket ID (NCCL backend).
	bucketOf map[int]int
	// bucketCommEnd[bucketID] is when the bucket's all-reduce finished
	// in the current iteration.
	bucketCommEnd map[int]time.Duration

	commRecords []CommRecord

	recording bool
	acts      []trace.Activity
	spans     []trace.LayerSpan
	nextID    int
	nextCorr  uint64
	salt      uint64
}

func newMachine(cfg *Config) *machine {
	m := &machine{
		cfg:        cfg,
		dev:        cfg.Device,
		host:       cfg.Host,
		chans:      make(map[string]time.Duration),
		batchReady: make(map[int]time.Duration),
		pullDone:   make(map[int]time.Duration),
		salt:       cfg.Seed,
	}
	m.initGradients()
	return m
}

// initGradients computes the per-layer gradient metadata and, for the NCCL
// backend, the DDP bucket assignment the instrumented framework would
// report.
func (m *machine) initGradients() {
	for _, l := range m.cfg.Model.Layers {
		m.grads = append(m.grads, trace.GradientInfo{
			Layer:    l.Name,
			Index:    l.Index,
			Bytes:    l.GradBytes(),
			Bucket:   -1,
			ActBytes: l.ActBytes,
			Kind:     l.Kind.String(),
		})
	}
	if m.cfg.Cluster.enabled() && m.cfg.Cluster.Backend == BackendNCCL {
		m.buckets = comm.AssignBuckets(m.grads, m.cfg.BucketBytes)
		m.bucketOf = make(map[int]int)
		for _, b := range m.buckets {
			for _, li := range b.Layers {
				m.bucketOf[li] = b.ID
			}
		}
	}
}

func (m *machine) startRecording() { m.recording = true }
func (m *machine) stopRecording()  { m.recording = false }

// nextSalt returns a fresh jitter salt.
func (m *machine) nextSalt() uint64 {
	m.salt++
	return m.salt
}

// record appends an activity if recording is enabled, assigning its ID.
func (m *machine) record(a trace.Activity) {
	if !m.recording {
		return
	}
	a.ID = m.nextID
	m.nextID++
	m.acts = append(m.acts, a)
}

// gap advances the main-thread clock without emitting an activity —
// framework time CUPTI cannot see, which Daydream later recovers as
// inter-task gaps.
func (m *machine) gap(d time.Duration) { m.cpu += d }

// dispatchGap advances the clock by the host's intra-operator dispatch
// overhead.
func (m *machine) dispatchGap() {
	m.gap(m.host.HostCall(m.host.DispatchGap, "dispatch", m.nextSalt()))
}

// opGap advances the clock by the host's between-operator overhead, scaled
// by dialect (Caffe's C++ core dispatches faster than Python frontends).
func (m *machine) opGap() {
	base := m.host.OpGap
	switch m.cfg.Dialect {
	case Caffe:
		base = base / 2
	case MXNet:
		base = base * 4 / 5
	}
	m.gap(m.host.HostCall(base, "op", m.nextSalt()))
}

// launchKernel emits a cudaLaunchKernel on the main thread and the
// correlated kernel on the compute stream (or, in concurrent mode while a
// side branch is active, the branch stream). minStart constrains the
// kernel's earliest start beyond stream order (used for cross-resource
// dependencies such as "weight update waits for its bucket's all-reduce").
// It returns the kernel's completion time.
func (m *machine) launchKernel(k *xpu.Kernel, minStart time.Duration) time.Duration {
	m.nextCorr++
	corr := m.nextCorr
	launchDur := m.host.HostCall(m.host.LaunchCall, "cudaLaunchKernel", m.nextSalt())
	m.record(trace.Activity{
		Name: "cudaLaunchKernel", Kind: trace.KindLaunch,
		Start: m.cpu, Duration: launchDur,
		Thread: mainThread, Correlation: corr,
	})
	m.cpu += launchDur
	kDur := m.dev.KernelCost(k, m.cfg.Precision, m.nextSalt())
	streamID, clock := computeStream, &m.stream
	if m.onBranch {
		streamID, clock = branchStream, &m.branch
	} else if m.pendingJoin > 0 {
		// First main-stream kernel after a branch: the dataflow
		// joins here (e.g. the residual add consumes the shortcut).
		if m.pendingJoin > minStart {
			minStart = m.pendingJoin
		}
		m.pendingJoin = 0
	}
	kStart := maxDur(*clock, m.cpu, minStart)
	m.record(trace.Activity{
		Name: k.EffectiveName(), Kind: trace.KindKernel,
		Start: kStart, Duration: kDur,
		Stream: streamID, Correlation: corr,
	})
	*clock = kStart + kDur
	if m.onBranch {
		m.pendingJoin = m.branch
	}
	return *clock
}

// gpuIdleAt returns when all GPU streams drain.
func (m *machine) gpuIdleAt() time.Duration { return maxDur(m.stream, m.branch) }

// memcpyH2D emits an asynchronous host-to-device copy: the API call on the
// CPU and the correlated transfer on the stream.
func (m *machine) memcpyH2D(bytes int64) {
	m.nextCorr++
	corr := m.nextCorr
	apiDur := m.host.HostCall(m.host.MemcpyCall, "cudaMemcpyAsync", m.nextSalt())
	m.record(trace.Activity{
		Name: "cudaMemcpyAsync", Kind: trace.KindMemcpyAPI,
		Start: m.cpu, Duration: apiDur,
		Thread: mainThread, Correlation: corr, Bytes: bytes, Dir: trace.MemcpyH2D,
	})
	m.cpu += apiDur
	dur := m.dev.MemcpyCost(bytes, m.nextSalt())
	start := maxDur(m.stream, m.cpu)
	m.record(trace.Activity{
		Name: "memcpy_HtoD", Kind: trace.KindMemcpy,
		Start: start, Duration: dur,
		Stream: computeStream, Correlation: corr, Bytes: bytes, Dir: trace.MemcpyH2D,
	})
	m.stream = start + dur
}

// memcpyD2H emits a device-to-host copy. Per the paper's observation
// (§4.2.2), even cudaMemcpyAsyncDtoH blocks the CPU until all previously
// launched kernels on the stream complete, so the API call's duration
// covers the wait.
func (m *machine) memcpyD2H(bytes int64) {
	m.nextCorr++
	corr := m.nextCorr
	apiStart := m.cpu
	dur := m.dev.MemcpyCost(bytes, m.nextSalt())
	gpuStart := maxDur(m.gpuIdleAt(), apiStart)
	gpuEnd := gpuStart + dur
	m.record(trace.Activity{
		Name: "memcpy_DtoH", Kind: trace.KindMemcpy,
		Start: gpuStart, Duration: dur,
		Stream: computeStream, Correlation: corr, Bytes: bytes, Dir: trace.MemcpyD2H,
	})
	m.stream = gpuEnd
	apiDur := gpuEnd - apiStart + m.host.HostCall(m.host.MemcpyCall, "cudaMemcpyAsyncDtoH", m.nextSalt())
	m.record(trace.Activity{
		Name: "cudaMemcpyAsync", Kind: trace.KindMemcpyAPI,
		Start: apiStart, Duration: apiDur,
		Thread: mainThread, Correlation: corr, Bytes: bytes, Dir: trace.MemcpyD2H,
	})
	m.cpu = apiStart + apiDur
}

// deviceSync emits a cudaDeviceSynchronize: the CPU blocks until every
// GPU stream (and any outstanding communication) drains.
func (m *machine) deviceSync(name string, waitComm bool) {
	start := m.cpu
	waitUntil := m.gpuIdleAt()
	if waitComm && m.lastCommEnd > waitUntil {
		waitUntil = m.lastCommEnd
	}
	base := m.host.HostCall(m.host.SyncCallBase, name, m.nextSalt())
	end := maxDur(start+base, waitUntil+base)
	m.record(trace.Activity{
		Name: name, Kind: trace.KindSync,
		Start: start, Duration: end - start,
		Thread: mainThread,
	})
	m.cpu = end
}

// streamSync emits a cudaStreamSynchronize that waits only for the compute
// stream.
func (m *machine) streamSync() { m.deviceSync("cudaStreamSynchronize", false) }

// cudaMalloc emits an allocation API call (used by the reconstructed-
// batchnorm ground truth, whose re-implementation allocates scratch
// buffers).
func (m *machine) cudaMalloc(name string) {
	dur := m.host.HostCall(m.host.MallocCall, name, m.nextSalt())
	m.record(trace.Activity{
		Name: name, Kind: trace.KindMalloc,
		Start: m.cpu, Duration: dur, Thread: mainThread,
	})
	m.cpu += dur
}

// span records a layer phase span if recording.
func (m *machine) span(name string, index int, phase trace.Phase, start, end time.Duration) {
	if !m.recording {
		return
	}
	m.spans = append(m.spans, trace.LayerSpan{
		Layer: name, Index: index, Phase: phase,
		Thread: mainThread, Start: start, End: end,
	})
}

// recordComm appends a communication activity and its record.
func (m *machine) recordComm(name, channel string, bucket int, bytes int64, start, dur, theoretical, exclusive time.Duration) {
	m.record(trace.Activity{
		Name: name, Kind: trace.KindComm,
		Start: start, Duration: dur,
		Channel: channel, Bytes: bytes,
	})
	if m.recording {
		m.commRecords = append(m.commRecords, CommRecord{
			Name: name, Bucket: bucket, Bytes: bytes,
			Theoretical: theoretical, Exclusive: exclusive, Actual: dur,
		})
	}
}

// buildTrace packages the recorded activities into a Trace rebased to the
// measured iteration's start.
func (m *machine) buildTrace(base time.Duration, iterTime time.Duration) *trace.Trace {
	t := &trace.Trace{
		Model:         m.cfg.Model.Name,
		Framework:     m.cfg.Dialect.String(),
		Device:        m.dev.Name,
		BatchSize:     m.cfg.Model.BatchSize,
		Precision:     m.cfg.Precision.String(),
		IterationTime: iterTime,
		Activities:    m.acts,
		LayerSpans:    m.spans,
		Gradients:     append([]trace.GradientInfo(nil), m.grads...),
	}
	for i := range t.Activities {
		t.Activities[i].Start -= base
		if t.Activities[i].Start < 0 {
			t.Activities[i].Start = 0
		}
	}
	for i := range t.LayerSpans {
		t.LayerSpans[i].Start -= base
		t.LayerSpans[i].End -= base
	}
	t.SortByStart()
	return t
}

// maxDur returns the maximum of its arguments.
func maxDur(ds ...time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
