package comm

import "daydream/internal/trace"

// DefaultBucketBytes is PyTorch DDP's default gradient bucket capacity
// (25 MB).
const DefaultBucketBytes = 25 << 20

// Bucket is one DDP gradient bucket: a group of per-layer gradients that
// is all-reduced with a single NCCL call (paper §4.2.1: "gradients from
// multiple layers can be grouped and sent with a single allReduce
// primitive").
type Bucket struct {
	// ID is the bucket index in launch order (first-ready first).
	ID int
	// Bytes is the total gradient payload.
	Bytes int64
	// Layers are the indices of the layers whose gradients the bucket
	// carries.
	Layers []int
}

// AssignBuckets groups per-layer gradients into buckets of at most capBytes
// in reverse layer order — the order backpropagation produces them, which
// is the order DDP fills buckets in. Layers without gradients are skipped.
// The returned buckets are in launch order (deepest layers first), and each
// input gradient's Bucket field is updated in place.
func AssignBuckets(grads []trace.GradientInfo, capBytes int64) []Bucket {
	if capBytes <= 0 {
		capBytes = DefaultBucketBytes
	}
	// Sort view: reverse topological order.
	order := make([]*trace.GradientInfo, 0, len(grads))
	for i := range grads {
		if grads[i].Bytes > 0 {
			order = append(order, &grads[i])
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	var buckets []Bucket
	cur := Bucket{ID: 0}
	flush := func() {
		if len(cur.Layers) > 0 {
			buckets = append(buckets, cur)
			cur = Bucket{ID: len(buckets)}
		}
	}
	for _, g := range order {
		if cur.Bytes > 0 && cur.Bytes+g.Bytes > capBytes {
			flush()
		}
		g.Bucket = cur.ID
		cur.Bytes += g.Bytes
		cur.Layers = append(cur.Layers, g.Index)
	}
	flush()
	return buckets
}

// BucketsFromTrace reconstructs the bucket list from a trace whose
// gradient metadata already carries bucket assignments (set by the
// instrumented framework at collection time).
func BucketsFromTrace(grads []trace.GradientInfo) []Bucket {
	byID := map[int]*Bucket{}
	maxID := -1
	for _, g := range grads {
		if g.Bucket < 0 || g.Bytes <= 0 {
			continue
		}
		b, ok := byID[g.Bucket]
		if !ok {
			b = &Bucket{ID: g.Bucket}
			byID[g.Bucket] = b
		}
		b.Bytes += g.Bytes
		b.Layers = append(b.Layers, g.Index)
		if g.Bucket > maxID {
			maxID = g.Bucket
		}
	}
	out := make([]Bucket, 0, len(byID))
	for id := 0; id <= maxID; id++ {
		if b, ok := byID[id]; ok {
			out = append(out, *b)
		}
	}
	return out
}

// Slices splits a payload of the given size into slices of at most
// sliceBytes, returning the slice sizes. P3 uses this to break large
// gradient tensors into prioritizable units.
func Slices(bytes, sliceBytes int64) []int64 {
	if bytes <= 0 {
		return nil
	}
	if sliceBytes <= 0 || bytes <= sliceBytes {
		return []int64{bytes}
	}
	var out []int64
	for bytes > 0 {
		n := sliceBytes
		if bytes < n {
			n = bytes
		}
		out = append(out, n)
		bytes -= n
	}
	return out
}
