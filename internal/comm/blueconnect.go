package comm

import (
	"fmt"
	"time"
)

// Stage is one step of a BlueConnect-decomposed all-reduce: a
// reduce-scatter or all-gather over a sub-group of the cluster, executed
// on its own communication channel so stages over disjoint dimensions can
// proceed in parallel pipelines.
type Stage struct {
	// Op is "reduce_scatter" or "all_gather".
	Op string
	// Group is the sub-group size p_i of this stage.
	Group int
	// Channel names the parallel communication channel the stage uses.
	Channel string
	// Bytes is the payload the stage moves.
	Bytes int64
	// Duration is the stage's theoretical duration.
	Duration time.Duration
}

// Decompose splits an all-reduce of the given payload into BlueConnect's
// stage sequence for a factorization p1·p2·…·pk of the worker count:
// reduce-scatter over p1, …, pk, then all-gather over pk, …, p1. Each
// stage i operates on bytes/(p1·…·p_{i−1}) of data, using bandwidth bw[i]
// (stages over intra-machine dimensions use faster links). len(bw) must
// equal len(factors); bw[i] is the bus bandwidth for dimension i.
func Decompose(bytes int64, factors []int, bw []float64, stepLatency time.Duration) ([]Stage, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("comm: empty factorization")
	}
	if len(bw) != len(factors) {
		return nil, fmt.Errorf("comm: got %d bandwidths for %d factors", len(bw), len(factors))
	}
	var stages []Stage
	remaining := bytes
	for i, p := range factors {
		if p < 1 {
			return nil, fmt.Errorf("comm: factor %d must be positive", p)
		}
		stages = append(stages, Stage{
			Op:       "reduce_scatter",
			Group:    p,
			Channel:  fmt.Sprintf("nccl.dim%d", i),
			Bytes:    remaining,
			Duration: ReduceScatterTime(remaining, p, bw[i], stepLatency),
		})
		remaining /= int64(p)
	}
	for i := len(factors) - 1; i >= 0; i-- {
		p := factors[i]
		stages = append(stages, Stage{
			Op:       "all_gather",
			Group:    p,
			Channel:  fmt.Sprintf("nccl.dim%d", i),
			Bytes:    remaining,
			Duration: AllGatherTime(remaining, p, bw[i], stepLatency),
		})
		remaining *= int64(p)
	}
	return stages, nil
}
