// Package comm provides the analytic communication cost models Daydream
// uses to synthesize communication tasks from single-GPU profiles:
// ring all-reduce per the NCCL-tests performance formula the paper cites
// [56], parameter-server push/pull, and the reduce-scatter/all-gather
// stages BlueConnect decomposes all-reduce into. It also implements
// PyTorch-DDP-style gradient bucketing.
package comm

import (
	"fmt"
	"time"
)

// Topology describes a data-parallel training cluster the way the paper's
// Figure 8 configurations do: machines × GPUs-per-machine plus the network
// bandwidth between machines.
type Topology struct {
	// Machines is the number of machines.
	Machines int
	// GPUsPerMachine is the number of workers per machine.
	GPUsPerMachine int
	// NICBandwidth is the per-machine network bandwidth in bytes/s
	// (e.g. 10 Gbps ⇒ 1.25e9).
	NICBandwidth float64
	// IntraBandwidth is the intra-machine (PCIe) bandwidth in bytes/s.
	IntraBandwidth float64
	// StepLatency is the fixed per-algorithm-step latency (link latency
	// plus kernel scheduling).
	StepLatency time.Duration
}

// TotalGPUs returns the total worker count.
func (t Topology) TotalGPUs() int { return t.Machines * t.GPUsPerMachine }

// String renders the configuration the way the paper labels Figure 8
// columns: "MxG".
func (t Topology) String() string {
	return fmt.Sprintf("%dx%d", t.Machines, t.GPUsPerMachine)
}

// BusBandwidth returns the per-worker effective "bus bandwidth" of a ring
// spanning the whole cluster. With g workers per machine, g ring links
// traverse each NIC, so each gets NIC/g; single-machine rings ride PCIe.
func (t Topology) BusBandwidth() float64 {
	if t.Machines <= 1 {
		return t.IntraBandwidth
	}
	bw := t.NICBandwidth / float64(t.GPUsPerMachine)
	if t.IntraBandwidth > 0 && t.IntraBandwidth < bw {
		bw = t.IntraBandwidth
	}
	return bw
}

// Gbps converts a link rate in gigabits per second to bytes per second.
func Gbps(g float64) float64 { return g * 1e9 / 8 }

// RingAllReduceTime returns the theoretical duration of an all-reduce of
// the given payload across n workers at the given bus bandwidth:
// 2(n−1)/n · bytes / busBW plus 2(n−1) step latencies. This is the
// NCCL-tests formula the paper's Figure 9 labels "Theoretical".
func RingAllReduceTime(bytes int64, n int, busBW float64, stepLatency time.Duration) time.Duration {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	steps := 2 * (n - 1)
	sec := 2 * float64(n-1) / float64(n) * float64(bytes) / busBW
	return time.Duration(sec*float64(time.Second)) + time.Duration(steps)*stepLatency
}

// AllReduceTime returns the theoretical ring all-reduce duration for the
// topology.
func (t Topology) AllReduceTime(bytes int64) time.Duration {
	return RingAllReduceTime(bytes, t.TotalGPUs(), t.BusBandwidth(), t.StepLatency)
}

// ReduceScatterTime returns the theoretical duration of a ring
// reduce-scatter across n workers: (n−1)/n · bytes / busBW.
func ReduceScatterTime(bytes int64, n int, busBW float64, stepLatency time.Duration) time.Duration {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	sec := float64(n-1) / float64(n) * float64(bytes) / busBW
	return time.Duration(sec*float64(time.Second)) + time.Duration(n-1)*stepLatency
}

// AllGatherTime returns the theoretical duration of a ring all-gather,
// which is identical in cost to reduce-scatter.
func AllGatherTime(bytes int64, n int, busBW float64, stepLatency time.Duration) time.Duration {
	return ReduceScatterTime(bytes, n, busBW, stepLatency)
}

// TransferTime returns the duration of a point-to-point transfer of the
// given payload (a parameter-server push or pull).
func TransferTime(bytes int64, bw float64, latency time.Duration) time.Duration {
	if bytes <= 0 {
		return latency
	}
	return time.Duration(float64(bytes)/bw*float64(time.Second)) + latency
}
