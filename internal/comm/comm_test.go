package comm

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"daydream/internal/trace"
)

func TestGbps(t *testing.T) {
	if Gbps(10) != 1.25e9 {
		t.Errorf("10 Gbps = %v B/s, want 1.25e9", Gbps(10))
	}
}

func TestRingAllReduceFormula(t *testing.T) {
	// 2(n−1)/n · bytes/bw: 100 MB across 4 workers at 1 GB/s = 150 ms.
	got := RingAllReduceTime(100e6, 4, 1e9, 0)
	want := 150 * time.Millisecond
	if got != want {
		t.Errorf("ring all-reduce = %v, want %v", got, want)
	}
}

func TestRingAllReduceEdgeCases(t *testing.T) {
	if RingAllReduceTime(100, 1, 1e9, time.Second) != 0 {
		t.Error("single worker must cost nothing")
	}
	if RingAllReduceTime(0, 8, 1e9, time.Second) != 0 {
		t.Error("empty payload must cost nothing")
	}
}

func TestRingAllReduceLatencyTerm(t *testing.T) {
	base := RingAllReduceTime(1e6, 4, 1e9, 0)
	withLat := RingAllReduceTime(1e6, 4, 1e9, time.Millisecond)
	if withLat-base != 6*time.Millisecond { // 2(n−1) steps
		t.Errorf("latency term = %v, want 6ms", withLat-base)
	}
}

// TestReduceScatterPlusAllGather checks the BlueConnect identity: a
// reduce-scatter followed by an all-gather over the same group moves
// exactly as much data as the all-reduce they replace.
func TestReduceScatterPlusAllGather(t *testing.T) {
	f := func(kb uint16, nRaw uint8) bool {
		bytes := int64(kb)*1024 + 1024
		n := int(nRaw%15) + 2
		rs := ReduceScatterTime(bytes, n, 1e9, 0)
		ag := AllGatherTime(bytes, n, 1e9, 0)
		ar := RingAllReduceTime(bytes, n, 1e9, 0)
		diff := rs + ag - ar
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // nanosecond rounding only
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTime(t *testing.T) {
	got := TransferTime(1e9, 1e9, 5*time.Millisecond)
	if got != time.Second+5*time.Millisecond {
		t.Errorf("transfer = %v", got)
	}
	if TransferTime(0, 1e9, 7*time.Millisecond) != 7*time.Millisecond {
		t.Error("zero payload should cost only latency")
	}
}

func TestBusBandwidth(t *testing.T) {
	single := Topology{Machines: 1, GPUsPerMachine: 4, IntraBandwidth: 11e9, NICBandwidth: 1.25e9}
	if single.BusBandwidth() != 11e9 {
		t.Error("single-machine ring should ride PCIe")
	}
	multi := Topology{Machines: 4, GPUsPerMachine: 2, IntraBandwidth: 11e9, NICBandwidth: 1.25e9}
	if multi.BusBandwidth() != 1.25e9/2 {
		t.Errorf("2 GPUs sharing a NIC: bus = %v, want NIC/2", multi.BusBandwidth())
	}
}

func TestTopologyString(t *testing.T) {
	topo := Topology{Machines: 4, GPUsPerMachine: 2}
	if topo.String() != "4x2" {
		t.Errorf("String = %q", topo.String())
	}
	if topo.TotalGPUs() != 8 {
		t.Errorf("TotalGPUs = %d", topo.TotalGPUs())
	}
}

func grads(sizes ...int64) []trace.GradientInfo {
	out := make([]trace.GradientInfo, len(sizes))
	for i, s := range sizes {
		out[i] = trace.GradientInfo{Layer: string(rune('a' + i)), Index: i, Bytes: s, Bucket: -1}
	}
	return out
}

func TestAssignBucketsReverseOrder(t *testing.T) {
	gs := grads(10, 20, 30, 40)
	buckets := AssignBuckets(gs, 60)
	if len(buckets) != 2 {
		t.Fatalf("bucket count = %d, want 2", len(buckets))
	}
	// Reverse order: layers 3,2 fill bucket 0 (40+30 > 60 → 40 then 30
	// overflows... 40+30=70 > 60, so bucket0={3}, bucket1={2,1,0}? No:
	// 30+20+10=60 fits exactly.
	if buckets[0].Layers[0] != 3 {
		t.Errorf("first bucket starts with layer %d, want 3 (deepest)", buckets[0].Layers[0])
	}
	var covered int
	for _, b := range buckets {
		covered += len(b.Layers)
	}
	if covered != 4 {
		t.Errorf("buckets cover %d layers, want 4", covered)
	}
}

func TestAssignBucketsWritesBack(t *testing.T) {
	gs := grads(10, 20, 30)
	AssignBuckets(gs, 1000)
	for _, g := range gs {
		if g.Bucket != 0 {
			t.Errorf("layer %d bucket = %d, want 0 (everything fits)", g.Index, g.Bucket)
		}
	}
}

func TestAssignBucketsOversizedGradient(t *testing.T) {
	gs := grads(10, 500, 10)
	buckets := AssignBuckets(gs, 100)
	// The 500-byte gradient exceeds the cap; it must still travel, in a
	// bucket of its own.
	found := false
	for _, b := range buckets {
		if len(b.Layers) == 1 && b.Bytes == 500 {
			found = true
		}
		if b.Bytes > 100 && len(b.Layers) > 1 {
			t.Errorf("multi-layer bucket exceeds cap: %+v", b)
		}
	}
	if !found {
		t.Error("oversized gradient did not get its own bucket")
	}
}

func TestAssignBucketsSkipsZero(t *testing.T) {
	gs := grads(0, 10, 0, 20)
	buckets := AssignBuckets(gs, 100)
	for _, b := range buckets {
		for _, li := range b.Layers {
			if gs[li].Bytes == 0 {
				t.Errorf("gradient-free layer %d bucketed", li)
			}
		}
	}
	_ = buckets
}

// TestAssignBucketsProperties checks, on random gradient sets, that every
// non-empty gradient is covered exactly once and payloads are conserved.
func TestAssignBucketsProperties(t *testing.T) {
	f := func(seed int64, capKB uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		sizes := make([]int64, n)
		var total int64
		for i := range sizes {
			sizes[i] = int64(rng.Intn(1 << 16))
			total += sizes[i]
		}
		gs := grads(sizes...)
		buckets := AssignBuckets(gs, int64(capKB)*256+1)
		var sum int64
		seen := map[int]bool{}
		for _, b := range buckets {
			sum += b.Bytes
			for _, li := range b.Layers {
				if seen[li] {
					return false
				}
				seen[li] = true
			}
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketsFromTraceRoundTrip(t *testing.T) {
	gs := grads(100, 200, 300, 400, 500)
	want := AssignBuckets(gs, 600)
	got := BucketsFromTrace(gs)
	if len(got) != len(want) {
		t.Fatalf("round trip bucket count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Bytes != want[i].Bytes || len(got[i].Layers) != len(want[i].Layers) {
			t.Errorf("bucket %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestSlices(t *testing.T) {
	if got := Slices(0, 10); got != nil {
		t.Errorf("Slices(0) = %v", got)
	}
	if got := Slices(25, 10); len(got) != 3 || got[2] != 5 {
		t.Errorf("Slices(25,10) = %v", got)
	}
	if got := Slices(10, 0); len(got) != 1 || got[0] != 10 {
		t.Errorf("Slices with no cap = %v", got)
	}
}

// TestSlicesConservation checks payload conservation on random inputs.
func TestSlicesConservation(t *testing.T) {
	f := func(total uint32, slice uint16) bool {
		var sum int64
		for _, s := range Slices(int64(total), int64(slice)) {
			if s <= 0 {
				return false
			}
			sum += s
		}
		return sum == int64(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecompose(t *testing.T) {
	stages, err := Decompose(64<<20, []int{4, 2}, []float64{1e9, 11e9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 { // reduce-scatter ×2 + all-gather ×2
		t.Fatalf("stage count = %d, want 4", len(stages))
	}
	if stages[0].Op != "reduce_scatter" || stages[3].Op != "all_gather" {
		t.Error("stage ops out of order")
	}
	if stages[1].Bytes != (64<<20)/4 {
		t.Errorf("second stage bytes = %d, want payload/4", stages[1].Bytes)
	}
	// Symmetric channels: stage 0 and stage 3 use dimension 0.
	if stages[0].Channel != stages[3].Channel {
		t.Error("mirrored stages should share a channel")
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(1024, nil, nil, 0); err == nil {
		t.Error("empty factorization accepted")
	}
	if _, err := Decompose(1024, []int{2}, []float64{1e9, 2e9}, 0); err == nil {
		t.Error("mismatched bandwidths accepted")
	}
	if _, err := Decompose(1024, []int{0}, []float64{1e9}, 0); err == nil {
		t.Error("zero factor accepted")
	}
}
