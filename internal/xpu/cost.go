package xpu

import "time"

// profilerResolution quantizes reported durations, mimicking CUPTI's
// microsecond-scale timestamping.
const profilerResolution = 100e-9 // 100 ns

// efficiency returns the fraction of the relevant peak (FLOPS or bandwidth)
// a kernel of the given class achieves. These factors are the calibration
// knobs of the substrate; they were chosen so that iteration times and AMP
// speedups land in the ranges the paper reports for the same models and
// batch sizes (e.g. end-to-end AMP speedups "generally less than 2×").
//
// Compute-bound efficiency saturates with kernel size: small GEMMs (an
// LSTM's recurrent steps, BERT's per-head products at small batch) cannot
// fill the machine, and tensor cores need even larger tiles to pay off —
// which is why mixed precision barely accelerates them.
func efficiency(c Class, p Precision, flops float64) float64 {
	switch {
	case c.computeBound():
		if p == FP16 {
			return 0.44 * saturate(flops, 0.55e9)
		}
		return 0.58 * saturate(flops, 0.3e9)
	case c == ClassEmbedding:
		return 0.35 // scattered access pattern
	case c.fp32Accum():
		return 0.62
	default:
		return 0.74 // streaming elementwise kernels
	}
}

// saturate returns flops/(flops+knee): ~0 for tiny kernels, →1 for large.
func saturate(flops, knee float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / (flops + knee)
}

// fp16Traffic returns the DRAM traffic multiplier under mixed precision:
// pure fp16 tensors halve traffic; kernels keeping fp32 accumulators or
// master copies save less.
func fp16Traffic(c Class) float64 {
	if c.fp32Accum() {
		return 0.56
	}
	return 0.5
}

// KernelCost returns the execution duration of k on d at precision p.
// salt varies the deterministic jitter between invocations of identically
// shaped kernels.
//
// The model is a roofline: duration = max(flops/achievable_flops,
// bytes/achievable_bw), floored at the device's minimum kernel time,
// quantized at profiler resolution, with ±JitterAmp noise.
func (d *Device) KernelCost(k *Kernel, p Precision, salt uint64) time.Duration {
	flops := k.FLOPs
	bytes := k.Bytes
	peak := d.FP32FLOPS
	if p == FP16 {
		bytes *= fp16Traffic(k.Class)
		if k.Class.computeBound() && k.TensorCore {
			if d.HasTensorCores() {
				peak = d.FP16FLOPS
			} else {
				peak = 2 * d.FP32FLOPS // packed half2 math
			}
		}
	}
	eff := efficiency(k.Class, p, flops)
	var sec float64
	if cb := k.Class.computeBound(); cb && flops > 0 {
		sec = flops / (peak * eff)
		if mem := bytes / d.MemBandwidth; mem > sec {
			sec = mem
		}
	} else {
		sec = bytes / (d.MemBandwidth * eff)
		if flops > 0 {
			if cmp := flops / (d.FP32FLOPS * 0.25); cmp > sec {
				sec = cmp // ALU-heavy pointwise kernels (exp, tanh)
			}
		}
	}
	sec *= Jitter(k.EffectiveName(), salt, d.JitterAmp)
	sec = roundUp(sec, profilerResolution)
	dur := time.Duration(sec * float64(time.Second))
	if dur < d.KernelFloor {
		dur = d.KernelFloor
	}
	return dur
}

// MemcpyCost returns the device-side duration of copying n bytes over PCIe.
func (d *Device) MemcpyCost(n int64, salt uint64) time.Duration {
	sec := float64(n)/d.PCIeBandwidth + 4e-6 // DMA setup latency
	sec *= Jitter("memcpy", salt, d.JitterAmp)
	return time.Duration(roundUp(sec, profilerResolution) * float64(time.Second))
}

// HostCall returns the duration of the named CUDA runtime call on the host,
// with deterministic jitter.
func (h *Host) HostCall(base time.Duration, name string, salt uint64) time.Duration {
	sec := base.Seconds() * Jitter(name, salt, h.JitterAmp)
	return time.Duration(roundUp(sec, profilerResolution) * float64(time.Second))
}
