package xpu

import "fmt"

// Class is a coarse taxonomy of GPU kernels by their dominant resource.
// It drives the cost model's efficiency assumptions and the kernel naming
// scheme; the names are what Daydream's Select-by-keyword operates on
// (paper §4.4: "kernels with sgemm string in names are compute-bound
// matrix-multiplications").
type Class int

// Kernel classes.
const (
	// ClassGEMM is a dense matrix multiplication (cuBLAS sgemm and
	// friends) — compute-bound.
	ClassGEMM Class = iota
	// ClassConv is a cuDNN convolution kernel — compute-bound.
	ClassConv
	// ClassElementwise is a pointwise arithmetic kernel — memory-bound
	// and typically shorter than its launch call.
	ClassElementwise
	// ClassBatchNorm is a batch-normalization kernel — memory-bound.
	ClassBatchNorm
	// ClassPool is a pooling kernel — memory-bound.
	ClassPool
	// ClassSoftmax is a softmax/log-softmax kernel — memory-bound with
	// fp32 accumulation.
	ClassSoftmax
	// ClassReduce is a reduction (sum/mean/norm) kernel — memory-bound
	// with fp32 accumulation.
	ClassReduce
	// ClassEmbedding is an embedding gather/scatter kernel.
	ClassEmbedding
	// ClassLayerNorm is a layer-normalization kernel.
	ClassLayerNorm
	// ClassDropout is a dropout mask kernel.
	ClassDropout
	// ClassOptimizer is an optimizer update elementwise kernel.
	ClassOptimizer
	// ClassFusedOptimizer is a multi-tensor fused optimizer kernel
	// (FusedAdam).
	ClassFusedOptimizer
	// ClassMemset is a buffer zeroing kernel.
	ClassMemset
)

// computeBound reports whether the class is limited by arithmetic
// throughput rather than memory bandwidth.
func (c Class) computeBound() bool { return c == ClassGEMM || c == ClassConv }

// fp32Accum reports whether fp16 execution of this class keeps fp32
// accumulators/masters, which limits its mixed-precision traffic savings.
func (c Class) fp32Accum() bool {
	switch c {
	case ClassSoftmax, ClassReduce, ClassLayerNorm, ClassBatchNorm:
		return true
	}
	return false
}

// Kernel describes one GPU kernel invocation analytically: how much
// arithmetic it performs and how much memory traffic it generates at fp32.
// The cost model turns this into a duration for a given device/precision.
type Kernel struct {
	// Name is the trace-visible kernel name. If empty, a conventional
	// CUDA-library-style name is synthesized from Class.
	Name string
	// Class categorizes the kernel.
	Class Class
	// FLOPs is the arithmetic work of the invocation.
	FLOPs float64
	// Bytes is the DRAM traffic of the invocation at fp32.
	Bytes float64
	// TensorCore marks kernels that can use tensor cores under mixed
	// precision.
	TensorCore bool
}

// conventional kernel names per class, fp32 variants. The substrings are
// chosen so that the paper's Select-by-keyword rules work verbatim:
// "sgemm" and "scudnn" mark compute-bound kernels (Algorithm 3),
// "elementwise"/"PointwiseApply" mark pointwise ones.
var classNames = map[Class]string{
	ClassGEMM:           "volta_sgemm_128x64_nn",
	ClassConv:           "scudnn_winograd_128x128_ldg1_ldg4",
	ClassElementwise:    "elementwise_kernel",
	ClassBatchNorm:      "bn_fw_tr_1C11_kernel_NCHW",
	ClassPool:           "pooling_fw_4d_kernel",
	ClassSoftmax:        "softmax_warp_forward",
	ClassReduce:         "reduce_kernel",
	ClassEmbedding:      "indexSelectLargeIndex",
	ClassLayerNorm:      "layer_norm_kernel",
	ClassDropout:        "fused_dropout_kernel",
	ClassOptimizer:      "elementwise_kernel_PointwiseApply",
	ClassFusedOptimizer: "multi_tensor_apply_kernel_adam",
	ClassMemset:         "memset_kernel",
}

// EffectiveName returns Name, or the conventional name for the class when
// Name is empty.
func (k *Kernel) EffectiveName() string {
	if k.Name != "" {
		return k.Name
	}
	if n, ok := classNames[k.Class]; ok {
		return n
	}
	return fmt.Sprintf("kernel_class_%d", int(k.Class))
}
