package xpu

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestJitterBoundsAndDeterminism(t *testing.T) {
	f := func(salt uint64, ampSeed uint8) bool {
		amp := float64(ampSeed%20) / 100 // 0 .. 0.19
		j1 := Jitter("kernel_x", salt, amp)
		j2 := Jitter("kernel_x", salt, amp)
		if j1 != j2 {
			return false // must be a pure function
		}
		return j1 >= 1-amp-1e-12 && j1 <= 1+amp+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterZeroAmp(t *testing.T) {
	if Jitter("x", 42, 0) != 1 {
		t.Fatal("zero-amplitude jitter must be exactly 1")
	}
}

func TestJitterVariesWithSalt(t *testing.T) {
	a := Jitter("x", 1, 0.1)
	b := Jitter("x", 2, 0.1)
	if a == b {
		t.Fatal("different salts produced identical jitter (astronomically unlikely)")
	}
}

func TestJitterVariesWithName(t *testing.T) {
	if Jitter("a", 7, 0.1) == Jitter("b", 7, 0.1) {
		t.Fatal("different names produced identical jitter")
	}
}

func TestRoundUp(t *testing.T) {
	if got := roundUp(1.01e-6, 1e-7); got < 1.05e-6 || got > 1.15e-6 {
		t.Errorf("roundUp(1.01µs, 100ns) = %v, want 1.1µs", got)
	}
	if got := roundUp(5, 0); got != 5 {
		t.Errorf("roundUp with zero resolution = %v, want identity", got)
	}
}

func TestSplitmixDistribution(t *testing.T) {
	// Not a statistical test — just that consecutive seeds don't
	// collide and unitNoise stays in [0,1).
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		h := splitmix64(i)
		if seen[h] {
			t.Fatalf("splitmix64 collision at %d", i)
		}
		seen[h] = true
		if u := unitNoise(i); u < 0 || u >= 1 {
			t.Fatalf("unitNoise(%d) = %v out of [0,1)", i, u)
		}
	}
}

func TestKernelCostFP16FasterForTensorCoreGEMM(t *testing.T) {
	d := RTX2080Ti()
	k := &Kernel{Class: ClassGEMM, FLOPs: 20e9, Bytes: 50e6, TensorCore: true}
	fp32 := d.KernelCost(k, FP32, 1)
	fp16 := d.KernelCost(k, FP16, 1)
	ratio := float64(fp32) / float64(fp16)
	if ratio < 2.2 || ratio > 3.5 {
		t.Errorf("large tensor-core GEMM fp32/fp16 = %.2f, want ≈3", ratio)
	}
}

func TestKernelCostSmallGEMMBenefitsLess(t *testing.T) {
	d := RTX2080Ti()
	small := &Kernel{Class: ClassGEMM, FLOPs: 0.3e9, Bytes: 5e6, TensorCore: true}
	big := &Kernel{Class: ClassGEMM, FLOPs: 30e9, Bytes: 50e6, TensorCore: true}
	smallRatio := float64(d.KernelCost(small, FP32, 1)) / float64(d.KernelCost(small, FP16, 1))
	bigRatio := float64(d.KernelCost(big, FP32, 1)) / float64(d.KernelCost(big, FP16, 1))
	if smallRatio >= bigRatio {
		t.Errorf("small GEMM speedup %.2f should be below big GEMM speedup %.2f", smallRatio, bigRatio)
	}
}

func TestKernelCostMemoryBoundHalves(t *testing.T) {
	d := RTX2080Ti()
	k := &Kernel{Class: ClassElementwise, Bytes: 200e6}
	ratio := float64(d.KernelCost(k, FP32, 1)) / float64(d.KernelCost(k, FP16, 1))
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("elementwise fp32/fp16 = %.2f, want ≈2", ratio)
	}
}

func TestKernelCostFP32AccumSavesLess(t *testing.T) {
	d := RTX2080Ti()
	sm := &Kernel{Class: ClassSoftmax, Bytes: 200e6}
	ratio := float64(d.KernelCost(sm, FP32, 1)) / float64(d.KernelCost(sm, FP16, 1))
	if ratio >= 2.0 {
		t.Errorf("softmax (fp32 accumulation) speedup %.2f should be < 2", ratio)
	}
}

func TestKernelCostFloor(t *testing.T) {
	d := RTX2080Ti()
	tiny := &Kernel{Class: ClassElementwise, Bytes: 16}
	if got := d.KernelCost(tiny, FP32, 1); got != d.KernelFloor {
		t.Errorf("tiny kernel cost %v, want floor %v", got, d.KernelFloor)
	}
}

func TestKernelCostMonotonicInBytes(t *testing.T) {
	d := RTX2080Ti()
	f := func(seed uint32) bool {
		b := float64(seed%1000+1) * 1e6
		k1 := &Kernel{Class: ClassElementwise, Bytes: b}
		k2 := &Kernel{Class: ClassElementwise, Bytes: 4 * b}
		// Same salt ⇒ same jitter for the same name ⇒ strict scaling.
		return d.KernelCost(k2, FP32, uint64(seed)) > d.KernelCost(k1, FP32, uint64(seed))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelCostNoTensorCoresOnP4000(t *testing.T) {
	d := P4000()
	k := &Kernel{Class: ClassGEMM, FLOPs: 20e9, Bytes: 50e6, TensorCore: true}
	ratio := float64(d.KernelCost(k, FP32, 1)) / float64(d.KernelCost(k, FP16, 1))
	if ratio > 1.9 {
		t.Errorf("P4000 (no tensor cores) GEMM speedup %.2f should stay below packed-half 2x", ratio)
	}
}

func TestMemcpyCost(t *testing.T) {
	d := RTX2080Ti()
	small := d.MemcpyCost(1<<10, 1)
	big := d.MemcpyCost(100<<20, 1)
	if big <= small {
		t.Error("memcpy cost must grow with size")
	}
	// 100 MB over ~12 GB/s ≈ 8.3 ms.
	if big < 6*time.Millisecond || big > 11*time.Millisecond {
		t.Errorf("100MB copy = %v, want ≈8ms", big)
	}
}

func TestHostCallJitterBounds(t *testing.T) {
	h := EPYC7601()
	base := 10 * time.Microsecond
	for salt := uint64(0); salt < 50; salt++ {
		got := h.HostCall(base, "call", salt)
		lo := time.Duration(float64(base) * (1 - h.JitterAmp - 0.01))
		hi := time.Duration(float64(base) * (1 + h.JitterAmp + 0.01))
		if got < lo || got > hi {
			t.Fatalf("HostCall = %v outside [%v, %v]", got, lo, hi)
		}
	}
}

func TestDevicePresets(t *testing.T) {
	if !RTX2080Ti().HasTensorCores() {
		t.Error("2080 Ti should have tensor cores")
	}
	if P4000().HasTensorCores() {
		t.Error("P4000 should not have tensor cores")
	}
	if !V100().HasTensorCores() {
		t.Error("V100 should have tensor cores")
	}
	for _, name := range []string{"2080ti", "p4000", "v100"} {
		if _, ok := DeviceByName(name); !ok {
			t.Errorf("DeviceByName(%q) missing", name)
		}
	}
	if _, ok := DeviceByName("tpu"); ok {
		t.Error("unknown device accepted")
	}
}

func TestPrecisionString(t *testing.T) {
	if FP32.String() != "fp32" || FP16.String() != "fp16" {
		t.Error("precision strings wrong")
	}
}

func TestEffectiveName(t *testing.T) {
	k := &Kernel{Class: ClassGEMM}
	if got := k.EffectiveName(); got != "volta_sgemm_128x64_nn" {
		t.Errorf("GEMM conventional name = %q", got)
	}
	k.Name = "custom"
	if k.EffectiveName() != "custom" {
		t.Error("explicit name not honored")
	}
	unknown := &Kernel{Class: Class(99)}
	if unknown.EffectiveName() == "" {
		t.Error("unknown class must still synthesize a name")
	}
}

func TestSaturate(t *testing.T) {
	if saturate(0, 1e9) != 0 {
		t.Error("saturate(0) != 0")
	}
	if s := saturate(1e9, 1e9); s != 0.5 {
		t.Errorf("saturate at knee = %v, want 0.5", s)
	}
	if s := saturate(1e15, 1e9); s < 0.999 {
		t.Errorf("saturate far past knee = %v, want →1", s)
	}
}

func TestClassProperties(t *testing.T) {
	if !ClassGEMM.computeBound() || !ClassConv.computeBound() {
		t.Error("GEMM/Conv must be compute-bound")
	}
	if ClassElementwise.computeBound() {
		t.Error("elementwise must not be compute-bound")
	}
	for _, c := range []Class{ClassSoftmax, ClassReduce, ClassLayerNorm, ClassBatchNorm} {
		if !c.fp32Accum() {
			t.Errorf("%d should keep fp32 accumulators", int(c))
		}
	}
	if ClassElementwise.fp32Accum() {
		t.Error("elementwise should not keep fp32 accumulators")
	}
}

func TestDevicePresetTable(t *testing.T) {
	devs := Devices()
	if len(devs) != 3 {
		t.Fatalf("Devices() = %d entries", len(devs))
	}
	names := DeviceNames()
	if len(names) != 2*len(devs) {
		t.Fatalf("DeviceNames() = %v", names)
	}
	// Every preset short name and every marketing name resolves, and
	// both spellings agree.
	for i, short := range PresetNames() {
		byShort, ok := DeviceByName(short)
		if !ok {
			t.Fatalf("preset %q does not resolve", short)
		}
		if byShort.Name != devs[i].Name {
			t.Fatalf("preset %q resolves to %q, Devices()[%d] is %q",
				short, byShort.Name, i, devs[i].Name)
		}
		found, err := FindDevice(short)
		if err != nil || found.Name != byShort.Name {
			t.Fatalf("FindDevice(%q) = %v, %v", short, found, err)
		}
		byFull, err := FindDevice(byShort.Name)
		if err != nil || byFull.Name != byShort.Name {
			t.Fatalf("FindDevice(%q) = %v, %v", byShort.Name, byFull, err)
		}
	}
	// Devices() hands out fresh models: mutating one does not poison
	// later lookups.
	devs[0].MemBytes = 1
	if d, _ := DeviceByName("2080ti"); d.MemBytes == 1 {
		t.Fatal("Devices() shares state with the preset table")
	}
}

func TestFindDeviceErrorListsAllNames(t *testing.T) {
	_, err := FindDevice("tpu")
	if err == nil {
		t.Fatal("unknown device accepted")
	}
	for _, name := range DeviceNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list known name %q", err, name)
		}
	}
}
