package xpu

import (
	"fmt"
	"strings"
	"time"
)

// Precision is the numeric precision a kernel executes in.
type Precision int

// Supported precisions.
const (
	FP32 Precision = iota
	// FP16 is mixed precision as deployed by Apex AMP: fp16 storage and
	// tensor-core math where eligible, fp32 accumulation where required.
	FP16
)

// String returns "fp32" or "fp16".
func (p Precision) String() string {
	if p == FP16 {
		return "fp16"
	}
	return "fp32"
}

// Device is the analytic model of one accelerator.
type Device struct {
	// Name is the marketing name, used in trace metadata.
	Name string
	// FP32FLOPS is peak fp32 throughput in FLOP/s.
	FP32FLOPS float64
	// FP16FLOPS is peak tensor-core fp16 throughput in FLOP/s. Zero
	// means no tensor cores: fp16 math then runs at FP32FLOPS×2 (packed
	// half2 arithmetic at best).
	FP16FLOPS float64
	// MemBandwidth is DRAM bandwidth in bytes/s.
	MemBandwidth float64
	// KernelFloor is the minimum duration of any kernel (scheduling and
	// tail latency). Tiny kernels never run faster than this, which is
	// why launch-bound phases (BERT's unfused Adam) see no GPU speedup
	// from AMP.
	KernelFloor time.Duration
	// PCIeBandwidth is host↔device copy bandwidth in bytes/s.
	PCIeBandwidth float64
	// MemBytes is the device memory capacity.
	MemBytes int64
	// JitterAmp is the relative amplitude of deterministic duration
	// noise applied to every kernel.
	JitterAmp float64
}

// HasTensorCores reports whether the device accelerates fp16 GEMMs beyond
// packed-half fp32 rates.
func (d *Device) HasTensorCores() bool { return d.FP16FLOPS > 2.5*d.FP32FLOPS }

// Host models the CPU side of the CUDA runtime: the cost of the API calls
// CUPTI sees, and the framework dispatch overhead it does not (which
// Daydream recovers as inter-task "gaps").
type Host struct {
	// Name identifies the CPU.
	Name string
	// LaunchCall is the duration of one cudaLaunchKernel call.
	LaunchCall time.Duration
	// SyncCallBase is the CPU-side overhead of a synchronization call
	// beyond the time spent waiting for the device.
	SyncCallBase time.Duration
	// MemcpyCall is the CPU-side duration of cudaMemcpyAsync.
	MemcpyCall time.Duration
	// MallocCall is the duration of cudaMalloc/cudaFree.
	MallocCall time.Duration
	// DispatchGap is the un-instrumented framework time between
	// consecutive CUDA calls inside one operator (Python/C++ glue).
	DispatchGap time.Duration
	// OpGap is the un-instrumented framework time between operators.
	OpGap time.Duration
	// JitterAmp is the relative noise amplitude for host durations.
	JitterAmp float64
}

// RTX2080Ti returns the model of the paper's main evaluation GPU
// (11 GB GDDR6, Turing tensor cores).
func RTX2080Ti() *Device {
	return &Device{
		Name:          "GeForce RTX 2080 Ti",
		FP32FLOPS:     13.45e12,
		FP16FLOPS:     53.8e12,
		MemBandwidth:  616e9,
		KernelFloor:   1700 * time.Nanosecond,
		PCIeBandwidth: 12.0e9,
		MemBytes:      11 << 30,
		JitterAmp:     0.06,
	}
}

// P4000 returns the model of the Quadro P4000 used in the paper's P3
// experiments (Pascal, no tensor cores).
func P4000() *Device {
	return &Device{
		Name:          "Quadro P4000",
		FP32FLOPS:     5.3e12,
		FP16FLOPS:     0,
		MemBandwidth:  243e9,
		KernelFloor:   2000 * time.Nanosecond,
		PCIeBandwidth: 11.0e9,
		MemBytes:      8 << 30,
		JitterAmp:     0.06,
	}
}

// V100 returns a Volta V100 model, useful for what-if device upgrades.
func V100() *Device {
	return &Device{
		Name:          "Tesla V100-SXM2-16GB",
		FP32FLOPS:     15.7e12,
		FP16FLOPS:     125e12,
		MemBandwidth:  900e9,
		KernelFloor:   1600 * time.Nanosecond,
		PCIeBandwidth: 12.0e9,
		MemBytes:      16 << 30,
		JitterAmp:     0.06,
	}
}

// EPYC7601 returns the host model matching the paper's testbed (AMD EPYC
// 7601 16-core, modest single-thread performance) running a Python-fronted
// framework of the PyTorch-1.0 era: ~6.5 µs per cudaLaunchKernel and tens
// of microseconds of framework dispatch per operator.
func EPYC7601() *Host {
	return &Host{
		Name:         "AMD EPYC 7601",
		LaunchCall:   6500 * time.Nanosecond,
		SyncCallBase: 4000 * time.Nanosecond,
		MemcpyCall:   9000 * time.Nanosecond,
		MallocCall:   12000 * time.Nanosecond,
		DispatchGap:  6000 * time.Nanosecond,
		OpGap:        28000 * time.Nanosecond,
		JitterAmp:    0.10,
	}
}

// presets is the single table every device-name lookup reads: one short
// preset name per accelerator model. Adding a device here makes it
// visible to DeviceByName, Devices, DeviceNames and FindDevice at once.
var presets = []struct {
	Short string
	Build func() *Device
}{
	{"2080ti", RTX2080Ti},
	{"p4000", P4000},
	{"v100", V100},
}

// Devices returns a fresh model of every preset accelerator, in preset
// order.
func Devices() []*Device {
	out := make([]*Device, len(presets))
	for i, p := range presets {
		out[i] = p.Build()
	}
	return out
}

// PresetNames returns the short preset names, in preset order.
func PresetNames() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.Short
	}
	return out
}

// DeviceNames returns every accepted device name: the short preset names
// followed by the full marketing names, in preset order.
func DeviceNames() []string {
	out := make([]string, 0, 2*len(presets))
	out = append(out, PresetNames()...)
	for _, p := range presets {
		out = append(out, p.Build().Name)
	}
	return out
}

// DeviceByName returns a preset device model by (case-sensitive) short
// name: "2080ti", "p4000", "v100". It returns false for unknown names.
func DeviceByName(name string) (*Device, bool) {
	for _, p := range presets {
		if p.Short == name {
			return p.Build(), true
		}
	}
	return nil, false
}

// FindDevice resolves a short preset name or a full marketing name (the
// form trace metadata records). Unknown names error with the complete
// accepted-name list, so callers never maintain their own.
func FindDevice(name string) (*Device, error) {
	for _, p := range presets {
		if p.Short == name {
			return p.Build(), nil
		}
		if d := p.Build(); d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("xpu: unknown device %q (known: %s)", name, strings.Join(DeviceNames(), ", "))
}
