// Package xpu models the hardware Daydream's traces come from: a GPU-like
// accelerator with streams, a roofline kernel cost model, and a host CPU
// with CUDA-runtime call overheads. It replaces the physical 2080 Ti / P4000
// machines of the paper. All quantities are deterministic functions of
// (device, kernel descriptor, invocation salt), so traces are reproducible
// run to run — a property the tests rely on.
package xpu

import "math"

// splitmix64 is the SplitMix64 mixing function; it turns any 64-bit value
// into a well-distributed 64-bit hash. Used instead of math/rand so that
// every kernel duration is a pure function of its inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a string into a 64-bit seed (FNV-1a).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// unitNoise returns a deterministic value in [0,1) derived from the seed.
func unitNoise(seed uint64) float64 {
	return float64(splitmix64(seed)>>11) / float64(1<<53)
}

// Jitter returns a multiplicative noise factor in [1-amp, 1+amp], a pure
// function of the (name, salt) pair. It models run-to-run kernel duration
// variance without sacrificing determinism.
func Jitter(name string, salt uint64, amp float64) float64 {
	if amp <= 0 {
		return 1
	}
	u := unitNoise(splitmix64(hashString(name)) ^ salt)
	return 1 + amp*(2*u-1)
}

// roundUp quantizes a positive seconds value to the given resolution in
// seconds; real profilers report with finite (µs-scale) resolution.
func roundUp(sec, res float64) float64 {
	if res <= 0 {
		return sec
	}
	return math.Ceil(sec/res) * res
}
