package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"daydream/internal/serve"
)

// TestServeSurvivesCorruptUploads feeds every corrupt trace in the
// chaos corpus through the HTTP surface. Contract: each upload is
// rejected with a client-class status and a machine-readable kind, the
// server stays healthy throughout, and — the part a long-lived service
// lives or dies by — no goroutine leaks across the whole barrage.
func TestServeSurvivesCorruptUploads(t *testing.T) {
	srv := serve.NewServer(serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Let httptest's listener goroutine settle before baselining.
	if resp, err := http.Get(hs.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	before := Goroutines()

	for _, ct := range CorruptTraces() {
		t.Run(ct.Name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/baselines", "application/json", bytes.NewReader(ct.JSON))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode < 400 || resp.StatusCode >= 500 {
				t.Fatalf("corrupt trace %q: status %d, want 4xx; body %s", ct.Name, resp.StatusCode, body)
			}
			var ae struct {
				Error string `json:"error"`
				Kind  string `json:"kind"`
			}
			if err := json.Unmarshal(body, &ae); err != nil {
				t.Fatalf("rejection body %q is not the JSON error shape: %v", body, err)
			}
			if ae.Kind == "" || ae.Kind == "internal" || ae.Error == "" {
				t.Fatalf("corrupt trace %q: untyped rejection %+v", ct.Name, ae)
			}
		})
	}

	// The barrage must not have wedged the server...
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after corrupt uploads: %d", resp.StatusCode)
	}

	// ...or leaked a single goroutine (idle keep-alive conns are closed
	// before settling so only a real leak can fail this).
	http.DefaultClient.CloseIdleConnections()
	if n := SettledGoroutines(before); n > before {
		t.Fatalf("goroutine leak: %d before corrupt uploads, %d after", before, n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
}
