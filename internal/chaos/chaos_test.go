package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/trace"
)

// baselineGraph profiles a real zoo model so the chaos suite runs over
// the same graphs production sweeps see.
func baselineGraph(t *testing.T) *core.Graph {
	t.Helper()
	m, err := dnn.ByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	res, err := framework.Run(framework.Config{Model: m, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCorruptTracesRejectedTyped(t *testing.T) {
	for _, ct := range CorruptTraces() {
		ct := ct
		t.Run(ct.Name, func(t *testing.T) {
			tr, err := trace.ReadJSON(bytes.NewReader(ct.JSON))
			if err == nil {
				t.Fatalf("corrupt trace accepted: %+v", tr)
			}
			if !errors.Is(err, ct.Want) {
				t.Fatalf("err = %v, want %v", err, ct.Want)
			}
		})
	}
}

// TestAdversarialPatchesAcrossTiers drives cyclic and negative-timing
// patches plus panicking callbacks through one sweep touching every
// dispatch tier, asserting typed error rows — and that the shared
// baseline comes out fingerprint-identical with no leaked goroutines.
func TestAdversarialPatchesAcrossTiers(t *testing.T) {
	g := baselineGraph(t)
	fp := Fingerprint(g)
	before := Goroutines()

	shrink := func(factor float64) func(o *core.Overlay) error {
		return func(o *core.Overlay) error {
			for _, task := range o.Base().Select(core.OnGPUPred) {
				o.ScaleDuration(task, factor)
			}
			return nil
		}
	}
	structural := core.PatchOpt("drop-a-kernel", core.Structural, func(p *core.Patch) error {
		kerns := p.Base().Select(core.OnGPUPred)
		p.RemoveTask(kerns[len(kerns)/2])
		return nil
	}, nil)

	scenarios := []sweep.Scenario{
		// Healthy rows on each tier, bracketing the faults: replay,
		// timing-only (overlay/incremental), structural patch, clone.
		{Name: "replay"},
		{Name: "timing-1", ScaleTransform: shrink(0.9)},
		{Name: "timing-2", ScaleTransform: shrink(0.8)},
		{Name: "timing-3", ScaleTransform: shrink(0.7)},
		{Name: "structural", Opt: structural},
		{Name: "clone", Transform: func(c *core.Graph) (*core.Graph, error) {
			core.Scale(c.Select(core.OnGPUPred), 0.5)
			return c, nil
		}},
		// Faults.
		{Name: "cycle", Opt: core.PatchOpt("cycle", core.Structural, CyclicPatch, nil)},
		{Name: "neg-timing", Opt: core.PatchOpt("neg", core.TimingOnly, NegativeTimingPatch, nil)},
		{Name: "panic-opt", Opt: PanicOpt()},
		{Name: "half-edit-panic", Opt: HalfEditPanicOpt()},
		{Name: "panic-sched", SimOptions: []core.SimOption{core.WithScheduler(&PanicScheduler{AfterPicks: 100})}},
		{Name: "rogue-sched", SimOptions: []core.SimOption{core.WithScheduler(RoguePicker{})}},
		{Name: "panic-measure", ScaleTransform: shrink(0.95), Measure: PanicMeasure},
		// Healthy tail re-using the (possibly quarantined) workers.
		{Name: "timing-tail", ScaleTransform: shrink(0.9)},
		{Name: "structural-tail", Opt: structural},
		{Name: "replay-tail"},
	}

	results, err := sweep.Run(g, scenarios, sweep.Workers(2))
	if err == nil {
		t.Fatal("sweep with injected faults reported no error")
	}
	byName := map[string]sweep.Result{}
	for _, r := range results {
		byName[r.Name] = r
	}

	if r := byName["cycle"]; !errors.Is(r.Err, core.ErrStalled) {
		t.Fatalf("cycle row: Err = %v, want ErrStalled", r.Err)
	}
	for _, name := range []string{"panic-opt", "half-edit-panic", "panic-sched", "panic-measure"} {
		if r := byName[name]; !errors.Is(r.Err, sweep.ErrPanic) {
			t.Fatalf("%s row: Err = %v, want ErrPanic", name, r.Err)
		}
	}
	if r := byName["rogue-sched"]; r.Err == nil {
		t.Fatal("rogue-sched row: out-of-range pick produced no error")
	}
	// A negative effective timing is simulable garbage-in (documented
	// cold fallback), but it must yield either a value or a typed error
	// — never a crash; and Validate must flag it up front.
	negPatch := core.NewPatch(g)
	if err := NegativeTimingPatch(negPatch); err != nil {
		t.Fatal(err)
	}
	if verr := negPatch.Validate(); !errors.Is(verr, core.ErrNegativeDuration) {
		t.Fatalf("negative-timing patch Validate = %v, want ErrNegativeDuration", verr)
	}

	// Healthy rows — including those after faults on the same workers —
	// match a fault-free run exactly.
	healthy := []string{"replay", "timing-1", "timing-2", "timing-3", "structural", "clone", "timing-tail", "structural-tail", "replay-tail"}
	cleanScens := make([]sweep.Scenario, 0, len(healthy))
	for _, name := range healthy {
		for _, sc := range scenarios {
			if sc.Name == name {
				cleanScens = append(cleanScens, sc)
			}
		}
	}
	want, err := sweep.Run(g, cleanScens, sweep.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range healthy {
		got := byName[name]
		if got.Err != nil {
			t.Fatalf("healthy row %s: Err = %v", name, got.Err)
		}
		if got.Value != want[i].Value {
			t.Fatalf("healthy row %s = %v, clean run %v: fault leaked across scenarios", name, got.Value, want[i].Value)
		}
	}

	// The shared baseline is untouched and no goroutine outlived Run.
	if got := Fingerprint(g); got != fp {
		t.Fatalf("baseline fingerprint changed: %x → %x", fp, got)
	}
	if after := SettledGoroutines(before); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestChaosCancellationUnderLoad cancels a large sweep mid-flight and
// checks the result rows split cleanly into completed and typed
// canceled, with the baseline intact.
func TestChaosCancellationUnderLoad(t *testing.T) {
	g := baselineGraph(t)
	fp := Fingerprint(g)
	before := Goroutines()

	scenarios := make([]sweep.Scenario, 64)
	for i := range scenarios {
		factor := 1.0 - float64(i)/128
		scenarios[i] = sweep.Scenario{
			Name: fmt.Sprintf("s%d", i),
			ScaleTransform: func(o *core.Overlay) error {
				for _, task := range o.Base().Select(core.OnGPUPred) {
					o.ScaleDuration(task, factor)
				}
				return nil
			},
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	scenarios[5].Measure = func(v core.TaskView, res *core.SimResult) (time.Duration, error) {
		cancel()
		return res.Makespan, nil
	}

	results, err := sweep.Run(g, scenarios, sweep.Workers(4), sweep.WithContext(ctx))
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("Run = %v, want ErrCanceled", err)
	}
	completed, canceled := 0, 0
	for i, r := range results {
		switch {
		case r.Err == nil:
			completed++
		case errors.Is(r.Err, core.ErrCanceled):
			canceled++
		default:
			t.Fatalf("row %d: unexpected error class %v", i, r.Err)
		}
	}
	if completed == 0 || canceled == 0 {
		t.Fatalf("want a mix of completed and canceled rows, got %d/%d", completed, canceled)
	}
	if got := Fingerprint(g); got != fp {
		t.Fatalf("baseline fingerprint changed under cancellation: %x → %x", fp, got)
	}
	if after := SettledGoroutines(before); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestChaosIncrementalTierFaults poisons the incremental tier
// specifically: warm state built, then a panic, then more warm-tier
// scenarios that must match cold simulation bit for bit.
func TestChaosIncrementalTierFaults(t *testing.T) {
	g := baselineGraph(t)

	shrink := func(factor float64) sweep.Scenario {
		return sweep.Scenario{
			Name: fmt.Sprintf("shrink-%v", factor),
			ScaleTransform: func(o *core.Overlay) error {
				for _, task := range o.Base().Select(core.OnGPUPred) {
					o.ScaleDuration(task, factor)
				}
				return nil
			},
		}
	}
	// Workers(1): scenarios 1..N share one worker; by the third
	// timing-only scenario the worker is on the incremental tier. The
	// panic then lands on warm state, which quarantine discards.
	scenarios := []sweep.Scenario{
		shrink(0.9), shrink(0.8), shrink(0.7), shrink(0.6),
		{Name: "kaboom", ScaleTransform: func(o *core.Overlay) error { panic("chaos") }},
		shrink(0.5), shrink(0.4),
	}
	results, err := sweep.Run(g, scenarios, sweep.Workers(1))
	if !errors.Is(err, sweep.ErrPanic) {
		t.Fatalf("Run = %v, want ErrPanic", err)
	}
	for i, r := range results {
		if i == 4 {
			continue
		}
		if r.Err != nil {
			t.Fatalf("row %d: Err = %v", i, r.Err)
		}
		// Cold reference for the same delta.
		factor := []float64{0.9, 0.8, 0.7, 0.6, 0, 0.5, 0.4}[i]
		o := core.NewOverlay(g)
		for _, task := range g.Select(core.OnGPUPred) {
			o.ScaleDuration(task, factor)
		}
		ref, err := o.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if r.Value != ref.Makespan {
			t.Fatalf("row %d = %v, cold reference %v: warm state survived the panic", i, r.Value, ref.Makespan)
		}
	}
}
