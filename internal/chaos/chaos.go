// Package chaos is the fault-injection toolkit behind the engine's
// robustness suite: corrupted trace generators, adversarial patch
// builders (cycles, dangling edges, negative timings), panicking and
// misbehaving schedulers/optimizations/measurers, a goroutine leak
// checker, and a baseline fingerprint.
//
// The package provides the faults; the chaos test suite feeds them
// through every dispatch tier (incremental/overlay/patch/cold/clone)
// and asserts the fault-tolerance contract the serve subsystem will
// depend on: hostile input produces typed error rows, never a crash, a
// leaked goroutine, or a corrupted shared baseline.
package chaos

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// CorruptTrace is one hostile trace-ingestion input and the taxonomy
// sentinel its rejection must match.
type CorruptTrace struct {
	// Name labels the corruption for test output.
	Name string
	// JSON is the hostile input fed to trace.ReadJSON.
	JSON []byte
	// Want is the sentinel the rejection must satisfy via errors.Is.
	Want error
}

// CorruptTraces enumerates the trace corruptions the ingestion layer
// must reject with typed errors: malformed bytes, non-finite and
// fractional timestamps, negative and overflowing times, duplicate
// IDs, broken correlation pairing, inverted layer spans.
func CorruptTraces() []CorruptTrace {
	return []CorruptTrace{
		{"garbage", []byte("\x00\xff not json"), trace.ErrMalformed},
		{"truncated", []byte(`{"activities":[{"id":1,"na`), trace.ErrMalformed},
		{"nan-duration", []byte(`{"activities":[{"id":1,"kind":5,"duration":NaN,"stream":7}]}`), trace.ErrMalformed},
		{"inf-start", []byte(`{"activities":[{"id":1,"kind":5,"start":1e999,"stream":7}]}`), trace.ErrMalformed},
		{"fractional-time", []byte(`{"activities":[{"id":1,"kind":5,"duration":1.25,"stream":7}]}`), trace.ErrMalformed},
		{"negative-duration", []byte(`{"activities":[{"id":1,"kind":5,"duration":-4,"stream":7}]}`), trace.ErrNegativeTime},
		{"negative-start", []byte(`{"activities":[{"id":1,"kind":5,"start":-1,"duration":4,"stream":7}]}`), trace.ErrNegativeTime},
		{"overflow-end", []byte(`{"activities":[{"id":1,"kind":5,"start":9223372036854775807,"duration":9223372036854775807,"stream":7}]}`), trace.ErrTimeOverflow},
		{"duplicate-id", []byte(`{"activities":[{"id":2,"kind":0,"thread":1},{"id":2,"kind":0,"thread":1}]}`), trace.ErrDuplicateID},
		{"unpaired-correlation", []byte(`{"activities":[{"id":1,"kind":1,"thread":1,"correlation":5}]}`), trace.ErrBadCorrelation},
		{"correlation-on-comm", []byte(`{"activities":[{"id":1,"kind":8,"channel":"nccl","correlation":5}]}`), trace.ErrBadCorrelation},
		{"inverted-span", []byte(`{"layer_spans":[{"layer":"l","start":9,"end":2}]}`), trace.ErrSpanInverted},
	}
}

// CyclicPatch closes a dependency cycle in the patch's effective view:
// a back edge from some task's child to the task itself, so the
// existing forward edge completes the loop. The baseline stays acyclic
// — only the composite view is poisoned.
func CyclicPatch(p *core.Patch) error {
	for _, t := range p.Tasks() {
		for _, c := range p.Children(t) {
			return p.AddDependency(c, t, core.DepCustom)
		}
	}
	return fmt.Errorf("chaos: graph has no edges to close a cycle over")
}

// NegativeTimingPatch writes a negative effective duration into the
// patch's timing tier.
func NegativeTimingPatch(p *core.Patch) error {
	tasks := p.Tasks()
	if len(tasks) == 0 {
		return fmt.Errorf("chaos: empty graph")
	}
	p.SetDuration(tasks[len(tasks)/2], -time.Microsecond)
	return nil
}

// PanicScheduler panics after picking AfterPicks tasks (zero panics on
// the first pick) — a policy that misbehaves mid-simulation, not at the
// door.
type PanicScheduler struct {
	AfterPicks int
	picks      int
}

// Pick implements core.Scheduler.
func (s *PanicScheduler) Pick(frontier []*core.Task, ctx *core.SchedContext) int {
	if s.picks >= s.AfterPicks {
		panic(fmt.Sprintf("chaos: scheduler panic after %d picks", s.picks))
	}
	s.picks++
	return 0
}

// RoguePicker returns out-of-range frontier indexes — a buggy (not
// panicking) policy the simulator must reject with an error.
type RoguePicker struct{}

// Pick implements core.Scheduler.
func (RoguePicker) Pick(frontier []*core.Task, ctx *core.SchedContext) int {
	return len(frontier) + 3
}

// PanicOpt is an Optimization whose Apply panics.
func PanicOpt() core.Optimization {
	return core.PatchOpt("chaos-panic-opt", core.TimingOnly, func(p *core.Patch) error {
		panic("chaos: optimization panic")
	}, nil)
}

// HalfEditPanicOpt edits real state through the patch before
// panicking, leaving half-written deltas behind — the poisoned-buffer
// case quarantine exists for.
func HalfEditPanicOpt() core.Optimization {
	return core.PatchOpt("chaos-half-edit-panic", core.TimingOnly, func(p *core.Patch) error {
		for i, t := range p.Tasks() {
			if i == 3 {
				panic("chaos: panic mid-edit")
			}
			p.SetDuration(t, p.Duration(t)*3)
		}
		panic("chaos: panic after edit")
	}, nil)
}

// PanicMeasure panics inside the measurement callback.
func PanicMeasure(v core.TaskView, res *core.SimResult) (time.Duration, error) {
	panic("chaos: measure panic")
}

// Fingerprint hashes a graph's observable state — task IDs, names,
// kinds, threads, timings, priorities, dependency edges and sequence
// links — so tests can prove a shared baseline came through a hostile
// sweep bit-identical.
func Fingerprint(g *core.Graph) uint64 {
	h := fnv.New64a()
	for _, t := range g.Tasks() {
		fmt.Fprintf(h, "t%d|%s|%d|%v|%d|%d|%d;", t.ID, t.Name, t.Kind, t.Thread, t.Duration, t.Gap, t.Priority)
		for _, p := range g.Parents(t) {
			fmt.Fprintf(h, "p%d;", p.ID)
		}
		for _, c := range g.Children(t) {
			fmt.Fprintf(h, "c%d;", c.ID)
		}
		if n := g.SeqNext(t); n != nil {
			fmt.Fprintf(h, "n%d;", n.ID)
		}
	}
	return h.Sum64()
}

// Goroutines reports the current goroutine count after giving the
// runtime a moment to retire exiting goroutines; pair a snapshot before
// a hostile Run with a comparison after it to detect leaks.
func Goroutines() int { return runtime.NumGoroutine() }

// SettledGoroutines polls until the goroutine count drops to at most
// want or the attempts run out, and returns the final count — absorbing
// the scheduling delay between a worker's return and its goroutine
// actually exiting.
func SettledGoroutines(want int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100 && n > want; i++ {
		time.Sleep(2 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}
