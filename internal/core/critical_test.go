package core

import (
	"testing"
	"time"

	"daydream/internal/trace"
)

func TestCriticalPathSerialChain(t *testing.T) {
	g, tasks := chain(3, 10*time.Microsecond)
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(g, res)
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3", len(path))
	}
	for i := range path {
		if path[i] != tasks[i] {
			t.Fatalf("path[%d] = %v, want %v", i, path[i], tasks[i])
		}
	}
}

func TestCriticalPathPicksLongerThread(t *testing.T) {
	g := NewGraph()
	short := g.NewTask("short", trace.KindCPUOp, CPU(1), 5*time.Microsecond)
	g.AppendTask(short)
	long := g.NewTask("long", trace.KindKernel, Stream(7), 50*time.Microsecond)
	g.AppendTask(long)
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(g, res)
	if len(path) != 1 || path[0] != long {
		t.Fatalf("path = %v, want just the long kernel", path)
	}
}

func TestCriticalPathCrossThread(t *testing.T) {
	// launch → kernel → sync: all three are binding.
	g := NewGraph()
	launch := g.NewTask("launch", trace.KindLaunch, CPU(1), 10*time.Microsecond)
	g.AppendTask(launch)
	kernel := g.NewTask("k", trace.KindKernel, Stream(7), 20*time.Microsecond)
	g.AppendTask(kernel)
	if err := g.Correlate(launch, kernel); err != nil {
		t.Fatal(err)
	}
	sync := g.NewTask("sync", trace.KindSync, CPU(1), 2*time.Microsecond)
	g.AppendTask(sync)
	if err := g.AddDependency(kernel, sync, DepSync); err != nil {
		t.Fatal(err)
	}
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(g, res)
	if len(path) != 3 || path[0] != launch || path[1] != kernel || path[2] != sync {
		t.Fatalf("path = %v, want launch→kernel→sync", path)
	}
}

func TestCriticalPathCoversMakespan(t *testing.T) {
	// On a real model graph, the path's total time accounts for the
	// whole makespan (no unexplained slack along the binding chain
	// when the chain reaches back to time zero).
	g := modelGraph(t, "resnet50")
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(g, res)
	if len(path) < 10 {
		t.Fatalf("suspiciously short critical path: %d tasks", len(path))
	}
	var sum time.Duration
	for _, u := range path {
		sum += u.Duration + u.Gap
	}
	if first := path[0]; res.Start[first.ID] == 0 && sum != res.Makespan {
		t.Fatalf("zero-anchored path sums to %v, makespan %v", sum, res.Makespan)
	}
	if sum > res.Makespan {
		t.Fatalf("path time %v exceeds makespan %v", sum, res.Makespan)
	}
}

// TestCriticalPathZeroDurationRoot pins the zero-start fix: a task that
// starts at time zero because a zero-duration parent finished at zero is
// still bound by that parent — the walk must not truncate the chain at
// start == 0.
func TestCriticalPathZeroDurationRoot(t *testing.T) {
	g := NewGraph()
	root := g.NewTask("zero-root", trace.KindCPUOp, CPU(1), 0)
	g.AppendTask(root)
	kernel := g.NewTask("k", trace.KindKernel, Stream(7), 30*time.Microsecond)
	g.AppendTask(kernel)
	if err := g.AddDependency(root, kernel, DepCustom); err != nil {
		t.Fatal(err)
	}
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Start[kernel.ID] != 0 {
		t.Fatalf("kernel starts at %v, want 0", res.Start[kernel.ID])
	}
	path := CriticalPath(g, res)
	if len(path) != 2 || path[0] != root || path[1] != kernel {
		t.Fatalf("path = %v, want zero-root→kernel", path)
	}
	// Same through a zero-duration sequence predecessor.
	g2 := NewGraph()
	seqRoot := g2.NewTask("seq-root", trace.KindCPUOp, CPU(1), 0)
	g2.AppendTask(seqRoot)
	op := g2.NewTask("op", trace.KindCPUOp, CPU(1), 20*time.Microsecond)
	g2.AppendTask(op)
	res2, err := g2.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	path2 := CriticalPath(g2, res2)
	if len(path2) != 2 || path2[0] != seqRoot {
		t.Fatalf("sequence path = %v, want seq-root→op", path2)
	}
}

// TestCriticalPathViewOverPatch checks CriticalPathView reads effective
// adjacency and sequence links through a structural patch: the path of
// the patched scenario equals the path of the materialized graph, task
// ID for task ID, without materializing for the diagnosis itself.
func TestCriticalPathViewOverPatch(t *testing.T) {
	g, tasks := chain(3, 10*time.Microsecond)
	p := NewPatch(g)
	// Gate a long appendix comm task on the first chain task and feed it
	// into the last, stretching the critical path through the appendix.
	c := p.NewTask("comm", trace.KindComm, Channel("x"), 100*time.Microsecond)
	if err := p.AddDependency(tasks[0], c, DepComm); err != nil {
		t.Fatal(err)
	}
	if err := p.AddDependency(c, tasks[2], DepComm); err != nil {
		t.Fatal(err)
	}
	res, err := p.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	got := CriticalPathView(p, res)
	if p.Materializations() != 0 {
		t.Fatalf("diagnosing the patch materialized %d times, want 0", p.Materializations())
	}

	m, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	mres, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	want := CriticalPathView(m, mres)
	if len(got) != len(want) {
		t.Fatalf("path length: view %d, materialized %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("path[%d]: view task %d, materialized task %d", i, got[i].ID, want[i].ID)
		}
	}
	// The path routes through the appendix task.
	through := false
	for _, u := range got {
		if u == c {
			through = true
		}
	}
	if !through {
		t.Fatalf("path %v does not include the appendix comm task", got)
	}
	// Effective-timing attribution sums to the path's simulated time.
	att := AttributePathSim(res, got, ByThreadKind)
	var total time.Duration
	for _, a := range att {
		total += a.Time
	}
	var pathTime time.Duration
	for _, u := range got {
		pathTime += res.TaskDuration(u) + res.TaskGap(u)
	}
	if total != pathTime {
		t.Fatalf("AttributePathSim sums to %v, path time %v", total, pathTime)
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	g := NewGraph()
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if path := CriticalPath(g, res); path != nil {
		t.Fatalf("empty graph has a path: %v", path)
	}
}

func TestAttributePath(t *testing.T) {
	g := modelGraph(t, "bert-base")
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(g, res)
	byKind := AttributePath(path, ByThreadKind)
	if len(byKind) == 0 {
		t.Fatal("no attribution groups")
	}
	var total time.Duration
	for _, a := range byKind {
		total += a.Time
		if a.Tasks <= 0 {
			t.Fatalf("group %q has no tasks", a.Label)
		}
	}
	// Attribution partitions the path.
	var pathTime time.Duration
	for _, u := range path {
		pathTime += u.Duration + u.Gap
	}
	if total != pathTime {
		t.Fatalf("attribution sums to %v, path is %v", total, pathTime)
	}
	// Sorted descending.
	for i := 1; i < len(byKind); i++ {
		if byKind[i].Time > byKind[i-1].Time {
			t.Fatal("attribution not sorted")
		}
	}
	// Phase attribution also works.
	byPhase := AttributePath(path, ByPhase)
	if len(byPhase) == 0 {
		t.Fatal("no phase attribution")
	}
}
