package core

import (
	"fmt"
	"sort"
	"time"

	"daydream/internal/trace"
)

// Graph is the kernel-granularity dependency graph. Tasks live on
// execution threads (CPU threads, GPU streams, communication channels);
// edges carry one of the paper's five dependency kinds.
//
// Storage is dense: task IDs are indices into a slice (a removed task
// leaves a nil hole), and adjacency lives on the tasks themselves as
// parallel children/childKinds slices. This makes Clone a near-memcpy
// and Simulate array-indexed — the properties the concurrent what-if
// sweep subsystem (internal/sweep) builds on.
type Graph struct {
	// Meta carries workload metadata copied from the source trace,
	// needed by what-if transformations (gradient sizes, bucketing).
	Meta Metadata

	tasks   []*Task // indexed by Task.ID; nil = removed
	live    int     // number of non-nil tasks
	edges   int     // number of dependency edges
	threads map[ThreadID]*seqList

	// layerIdx memoizes the layer/phase index (see index.go). Clone
	// deliberately leaves the copy's memo empty: the index holds task
	// pointers into the graph it was built from.
	layerIdx layerIdxMemo

	// memAnnot memoizes the opaque memory-annotation snapshot
	// internal/mem attaches through SetMemAnnotation (see memhook.go).
	// Clone leaves the copy's memo empty; structural mutations and
	// MapLayers invalidate it alongside the layer/phase index.
	memAnnot memAnnotMemo
}

// Metadata is the non-timeline information a what-if analysis needs.
type Metadata struct {
	// Model, Device, Framework, Precision describe the profiled run.
	Model     string
	Device    string
	Framework string
	Precision string
	// BatchSize is the per-worker batch size.
	BatchSize int
	// IterationTime is the traced iteration time (for reference).
	IterationTime time.Duration
	// Gradients is the per-layer gradient metadata.
	Gradients []trace.GradientInfo
}

type seqList struct {
	head, tail *Task
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{threads: make(map[ThreadID]*seqList)}
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return g.live }

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int { return g.edges }

// IDSpan returns the exclusive upper bound of task IDs ever allocated,
// including removed ones. SimResult.Start has this length.
func (g *Graph) IDSpan() int { return len(g.tasks) }

// Task returns the task with the given ID, or nil.
func (g *Graph) Task(id int) *Task {
	if id < 0 || id >= len(g.tasks) {
		return nil
	}
	return g.tasks[id]
}

// contains reports whether t is a live member of this graph.
func (g *Graph) containsTask(t *Task) bool {
	return t != nil && t.ID >= 0 && t.ID < len(g.tasks) && g.tasks[t.ID] == t
}

// Tasks returns all tasks in creation order. The returned slice is fresh.
func (g *Graph) Tasks() []*Task {
	out := make([]*Task, 0, g.live)
	for _, t := range g.tasks {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Threads returns the thread IDs present in the graph, sorted for
// determinism.
func (g *Graph) Threads() []ThreadID {
	out := make([]ThreadID, 0, len(g.threads))
	for tid := range g.threads {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Num != b.Num {
			return a.Num < b.Num
		}
		return a.Name < b.Name
	})
	return out
}

// ThreadTasks returns the thread's tasks in sequence order.
func (g *Graph) ThreadTasks(tid ThreadID) []*Task {
	var out []*Task
	if l := g.threads[tid]; l != nil {
		for t := l.head; t != nil; t = t.seqNext {
			out = append(out, t)
		}
	}
	return out
}

// NewTask creates a task with a fresh ID. The task is not yet placed on a
// thread; use AppendTask, InsertAfter or InsertBefore.
func (g *Graph) NewTask(name string, kind trace.Kind, thread ThreadID, dur time.Duration) *Task {
	t := &Task{
		ID:         len(g.tasks),
		Name:       name,
		Kind:       kind,
		Thread:     thread,
		Duration:   dur,
		LayerIndex: -1,
	}
	g.tasks = append(g.tasks, t)
	g.live++
	g.InvalidateLayerPhaseIndex()
	return t
}

// seq returns (allocating if needed) the sequence list for a thread.
func (g *Graph) seq(tid ThreadID) *seqList {
	l := g.threads[tid]
	if l == nil {
		l = &seqList{}
		g.threads[tid] = l
	}
	return l
}

// AppendTask places t at the tail of its thread's sequence, adding the
// sequence dependency from the previous tail.
func (g *Graph) AppendTask(t *Task) {
	l := g.seq(t.Thread)
	if l.tail != nil {
		t.seqPrev = l.tail
		l.tail.seqNext = t
		g.addEdge(l.tail, t, DepSequence)
	} else {
		l.head = t
	}
	l.tail = t
}

// InsertAfter places t on prev's thread immediately after prev, splicing
// the sequence dependency chain (the paper's Insert primitive, Figure 4).
func (g *Graph) InsertAfter(prev, t *Task) error {
	if prev == nil {
		return fmt.Errorf("core: InsertAfter: nil anchor")
	}
	if !g.containsTask(prev) {
		return fmt.Errorf("core: InsertAfter: anchor %v not in graph", prev)
	}
	t.Thread = prev.Thread
	next := prev.seqNext
	t.seqPrev = prev
	t.seqNext = next
	prev.seqNext = t
	if next != nil {
		next.seqPrev = t
		g.removeEdge(prev, next)
		g.addEdge(t, next, DepSequence)
	} else {
		g.seq(t.Thread).tail = t
	}
	g.addEdge(prev, t, DepSequence)
	return nil
}

// InsertBefore places t on next's thread immediately before next.
func (g *Graph) InsertBefore(next, t *Task) error {
	if next == nil {
		return fmt.Errorf("core: InsertBefore: nil anchor")
	}
	if prev := next.seqPrev; prev != nil {
		return g.InsertAfter(prev, t)
	}
	// Insert at head.
	t.Thread = next.Thread
	l := g.seq(t.Thread)
	t.seqNext = next
	next.seqPrev = t
	l.head = t
	g.addEdge(t, next, DepSequence)
	return nil
}

// AddDependency adds an edge from → to of the given kind. Duplicate edges
// are ignored (the first kind wins). Self-edges are rejected.
func (g *Graph) AddDependency(from, to *Task, kind DepKind) error {
	if from == nil || to == nil {
		return fmt.Errorf("core: AddDependency: nil task")
	}
	if from == to {
		return fmt.Errorf("core: AddDependency: self edge on %v", from)
	}
	g.addEdge(from, to, kind)
	return nil
}

// RemoveDependency removes the edge from → to if present, reporting
// whether an edge was removed — the inverse of AddDependency, and the
// Graph form of Patch.RemoveDependency.
func (g *Graph) RemoveDependency(from, to *Task) bool {
	if from == nil || to == nil || !hasEdge(from, to) {
		return false
	}
	g.removeEdge(from, to)
	return true
}

// hasEdge reports whether the edge from → to exists, scanning whichever
// endpoint has the smaller adjacency list.
func hasEdge(from, to *Task) bool {
	if len(from.children) <= len(to.parents) {
		for _, c := range from.children {
			if c == to {
				return true
			}
		}
		return false
	}
	for _, p := range to.parents {
		if p == from {
			return true
		}
	}
	return false
}

func (g *Graph) addEdge(from, to *Task, kind DepKind) {
	if hasEdge(from, to) {
		return
	}
	from.children = append(from.children, to)
	from.childKinds = append(from.childKinds, kind)
	to.parents = append(to.parents, from)
	g.edges++
}

func (g *Graph) removeEdge(from, to *Task) {
	for i, c := range from.children {
		if c == to {
			from.children = append(from.children[:i], from.children[i+1:]...)
			from.childKinds = append(from.childKinds[:i], from.childKinds[i+1:]...)
			to.parents = removeTask(to.parents, from)
			g.edges--
			return
		}
	}
}

// EdgeKind returns the kind of the edge from → to, if present.
func (g *Graph) EdgeKind(from, to *Task) (DepKind, bool) {
	for i, c := range from.children {
		if c == to {
			return from.childKinds[i], true
		}
	}
	return 0, false
}

func removeTask(s []*Task, t *Task) []*Task {
	for i, x := range s {
		if x == t {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Correlate records launch ↔ kernel correlation between an API task and a
// GPU task: peers are linked and a correlation edge is added.
func (g *Graph) Correlate(api, gpu *Task) error {
	if err := g.AddDependency(api, gpu, DepCorrelation); err != nil {
		return err
	}
	api.peer = gpu
	gpu.peer = api
	return nil
}

// Remove deletes a task (the paper's Remove primitive): the thread
// sequence is spliced around it, and every non-sequence ordering
// constraint through the task is preserved by reconnecting its remaining
// parents to its remaining children.
//
// To avoid the O(parents×children) DepCustom edge blow-up of a naive
// reconnection, only the bipartite core is materialized: a parent already
// ordered before another parent, or a child already ordered after another
// child, is skipped — the ordering it needs is implied by the edges the
// remaining maximal parents and minimal children receive.
func (g *Graph) Remove(t *Task) {
	if !g.containsTask(t) {
		return
	}
	// Splice the thread sequence.
	prev, next := t.seqPrev, t.seqNext
	l := g.seq(t.Thread)
	if prev != nil {
		prev.seqNext = next
	} else {
		l.head = next
	}
	if next != nil {
		next.seqPrev = prev
	} else {
		l.tail = prev
	}
	// Snapshot edges before unlinking.
	parents := append([]*Task(nil), t.parents...)
	children := append([]*Task(nil), t.children...)
	for _, p := range parents {
		g.removeEdge(p, t)
	}
	for _, c := range children {
		g.removeEdge(t, c)
	}
	// Restore the sequence chain.
	if prev != nil && next != nil {
		g.addEdge(prev, next, DepSequence)
	}
	// Preserve transitive ordering through the removed task: connect the
	// maximal parents (not ordered before a sibling parent) to the
	// minimal children (not ordered after a sibling child). Every other
	// parent/child pair is reachable through these edges plus the edges
	// already present among the siblings.
	maxParents := parents
	if len(parents) > 1 {
		maxParents = make([]*Task, 0, len(parents))
		for _, p := range parents {
			implied := false
			for _, q := range parents {
				if q != p && hasEdge(p, q) {
					implied = true
					break
				}
			}
			if !implied {
				maxParents = append(maxParents, p)
			}
		}
	}
	minChildren := children
	if len(children) > 1 {
		minChildren = make([]*Task, 0, len(children))
		for _, c := range children {
			implied := false
			for _, d := range children {
				if d != c && hasEdge(d, c) {
					implied = true
					break
				}
			}
			if !implied {
				minChildren = append(minChildren, c)
			}
		}
	}
	for _, p := range maxParents {
		for _, c := range minChildren {
			if p == c {
				continue
			}
			if p == prev && c == next {
				continue // already restored as sequence
			}
			g.addEdge(p, c, DepCustom)
		}
	}
	if t.peer != nil && t.peer.peer == t {
		t.peer.peer = nil
	}
	g.tasks[t.ID] = nil
	g.live--
	g.InvalidateLayerPhaseIndex()
}

// Select returns the tasks matching the predicate, in creation order
// (the paper's Select primitive).
func (g *Graph) Select(pred func(*Task) bool) []*Task {
	var out []*Task
	for _, t := range g.tasks {
		if t != nil && pred(t) {
			out = append(out, t)
		}
	}
	return out
}

// Scale multiplies the durations of the given tasks by factor (the
// shrink/scale primitive).
func Scale(tasks []*Task, factor float64) {
	for _, t := range tasks {
		t.Duration = time.Duration(float64(t.Duration) * factor)
	}
}

// Validate checks structural invariants: sequence-chain consistency and
// acyclicity. It returns the first violation.
func (g *Graph) Validate() error {
	for tid, l := range g.threads {
		var prev *Task
		for t := l.head; t != nil; t = t.seqNext {
			if t.Thread != tid {
				return fmt.Errorf("core: task %v chained on thread %v", t, tid)
			}
			if t.seqPrev != prev {
				return fmt.Errorf("core: broken sequence links at %v", t)
			}
			prev = t
		}
		if l.tail != prev {
			return fmt.Errorf("core: thread %v tail mismatch", tid)
		}
	}
	// Kahn's algorithm for cycle detection.
	ref := make([]int, len(g.tasks))
	var frontier []*Task
	for _, t := range g.tasks {
		if t == nil {
			continue
		}
		ref[t.ID] = len(t.parents)
		if len(t.parents) == 0 {
			frontier = append(frontier, t)
		}
	}
	seen := 0
	for len(frontier) > 0 {
		t := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		seen++
		for _, c := range t.children {
			ref[c.ID]--
			if ref[c.ID] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	if seen != g.live {
		var members []*Task
		for _, t := range g.tasks {
			if t != nil && ref[t.ID] > 0 {
				members = append(members, t)
			}
		}
		return newCycleError(members)
	}
	return nil
}

// Clone returns a deep copy of the graph; transformations on the copy do
// not affect the original. Task IDs are preserved.
//
// The copy allocates one contiguous task arena plus three shared
// adjacency arrays sized by the edge count, so cloning is a handful of
// allocations and mostly memcpy regardless of graph size. Each task's
// adjacency slices are capacity-clipped into the shared arrays, so a
// later append on the clone copies out instead of corrupting a sibling.
// Clone does not mutate the receiver and is safe to call concurrently
// from multiple goroutines as long as nothing mutates the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Meta:    g.Meta,
		live:    g.live,
		edges:   g.edges,
		threads: make(map[ThreadID]*seqList, len(g.threads)),
	}
	c.Meta.Gradients = append([]trace.GradientInfo(nil), g.Meta.Gradients...)
	arena := make([]Task, len(g.tasks))
	c.tasks = make([]*Task, len(g.tasks))
	parentsBuf := make([]*Task, 0, g.edges)
	childrenBuf := make([]*Task, 0, g.edges)
	kindsBuf := make([]DepKind, 0, g.edges)
	remap := func(t *Task) *Task {
		if t == nil {
			return nil
		}
		return &arena[t.ID]
	}
	for id, t := range g.tasks {
		if t == nil {
			continue
		}
		nt := &arena[id]
		*nt = *t
		nt.seqPrev = remap(t.seqPrev)
		nt.seqNext = remap(t.seqNext)
		nt.peer = remap(t.peer)
		lo := len(parentsBuf)
		for _, p := range t.parents {
			parentsBuf = append(parentsBuf, remap(p))
		}
		nt.parents = parentsBuf[lo:len(parentsBuf):len(parentsBuf)]
		lo = len(childrenBuf)
		for _, ch := range t.children {
			childrenBuf = append(childrenBuf, remap(ch))
		}
		nt.children = childrenBuf[lo:len(childrenBuf):len(childrenBuf)]
		lo = len(kindsBuf)
		kindsBuf = append(kindsBuf, t.childKinds...)
		nt.childKinds = kindsBuf[lo:len(kindsBuf):len(kindsBuf)]
		c.tasks[id] = nt
	}
	for tid, l := range g.threads {
		c.threads[tid] = &seqList{head: remap(l.head), tail: remap(l.tail)}
	}
	return c
}
