package core

import (
	"fmt"
	"sort"
	"time"

	"daydream/internal/trace"
)

// Graph is the kernel-granularity dependency graph. Tasks live on
// execution threads (CPU threads, GPU streams, communication channels);
// edges carry one of the paper's five dependency kinds.
type Graph struct {
	// Meta carries workload metadata copied from the source trace,
	// needed by what-if transformations (gradient sizes, bucketing).
	Meta Metadata

	tasks   map[int]*Task
	order   []int // task IDs in creation order
	threads map[ThreadID]*seqList
	kinds   map[[2]int]DepKind
	nextID  int
}

// Metadata is the non-timeline information a what-if analysis needs.
type Metadata struct {
	// Model, Device, Framework, Precision describe the profiled run.
	Model     string
	Device    string
	Framework string
	Precision string
	// BatchSize is the per-worker batch size.
	BatchSize int
	// IterationTime is the traced iteration time (for reference).
	IterationTime time.Duration
	// Gradients is the per-layer gradient metadata.
	Gradients []trace.GradientInfo
}

type seqList struct {
	head, tail *Task
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		tasks:   make(map[int]*Task),
		threads: make(map[ThreadID]*seqList),
		kinds:   make(map[[2]int]DepKind),
	}
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int { return len(g.kinds) }

// Task returns the task with the given ID, or nil.
func (g *Graph) Task(id int) *Task { return g.tasks[id] }

// Tasks returns all tasks in creation order. The returned slice is fresh.
func (g *Graph) Tasks() []*Task {
	out := make([]*Task, 0, len(g.tasks))
	for _, id := range g.order {
		if t, ok := g.tasks[id]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Threads returns the thread IDs present in the graph, sorted for
// determinism.
func (g *Graph) Threads() []ThreadID {
	out := make([]ThreadID, 0, len(g.threads))
	for tid := range g.threads {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Num != b.Num {
			return a.Num < b.Num
		}
		return a.Name < b.Name
	})
	return out
}

// ThreadTasks returns the thread's tasks in sequence order.
func (g *Graph) ThreadTasks(tid ThreadID) []*Task {
	var out []*Task
	if l := g.threads[tid]; l != nil {
		for t := l.head; t != nil; t = t.seqNext {
			out = append(out, t)
		}
	}
	return out
}

// NewTask creates a task with a fresh ID. The task is not yet placed on a
// thread; use AppendTask, InsertAfter or InsertBefore.
func (g *Graph) NewTask(name string, kind trace.Kind, thread ThreadID, dur time.Duration) *Task {
	t := &Task{
		ID:         g.nextID,
		Name:       name,
		Kind:       kind,
		Thread:     thread,
		Duration:   dur,
		LayerIndex: -1,
	}
	g.nextID++
	g.tasks[t.ID] = t
	g.order = append(g.order, t.ID)
	return t
}

// seq returns (allocating if needed) the sequence list for a thread.
func (g *Graph) seq(tid ThreadID) *seqList {
	l := g.threads[tid]
	if l == nil {
		l = &seqList{}
		g.threads[tid] = l
	}
	return l
}

// AppendTask places t at the tail of its thread's sequence, adding the
// sequence dependency from the previous tail.
func (g *Graph) AppendTask(t *Task) {
	l := g.seq(t.Thread)
	if l.tail != nil {
		t.seqPrev = l.tail
		l.tail.seqNext = t
		g.addEdge(l.tail, t, DepSequence)
	} else {
		l.head = t
	}
	l.tail = t
}

// InsertAfter places t on prev's thread immediately after prev, splicing
// the sequence dependency chain (the paper's Insert primitive, Figure 4).
func (g *Graph) InsertAfter(prev, t *Task) error {
	if prev == nil {
		return fmt.Errorf("core: InsertAfter: nil anchor")
	}
	if g.tasks[prev.ID] != prev {
		return fmt.Errorf("core: InsertAfter: anchor %v not in graph", prev)
	}
	t.Thread = prev.Thread
	next := prev.seqNext
	t.seqPrev = prev
	t.seqNext = next
	prev.seqNext = t
	if next != nil {
		next.seqPrev = t
		g.removeEdge(prev, next)
		g.addEdge(t, next, DepSequence)
	} else {
		g.seq(t.Thread).tail = t
	}
	g.addEdge(prev, t, DepSequence)
	return nil
}

// InsertBefore places t on next's thread immediately before next.
func (g *Graph) InsertBefore(next, t *Task) error {
	if next == nil {
		return fmt.Errorf("core: InsertBefore: nil anchor")
	}
	if prev := next.seqPrev; prev != nil {
		return g.InsertAfter(prev, t)
	}
	// Insert at head.
	t.Thread = next.Thread
	l := g.seq(t.Thread)
	t.seqNext = next
	next.seqPrev = t
	l.head = t
	g.addEdge(t, next, DepSequence)
	return nil
}

// AddDependency adds an edge from → to of the given kind. Duplicate edges
// are ignored (the first kind wins). Self-edges are rejected.
func (g *Graph) AddDependency(from, to *Task, kind DepKind) error {
	if from == nil || to == nil {
		return fmt.Errorf("core: AddDependency: nil task")
	}
	if from == to {
		return fmt.Errorf("core: AddDependency: self edge on %v", from)
	}
	g.addEdge(from, to, kind)
	return nil
}

func (g *Graph) addEdge(from, to *Task, kind DepKind) {
	key := [2]int{from.ID, to.ID}
	if _, dup := g.kinds[key]; dup {
		return
	}
	g.kinds[key] = kind
	from.children = append(from.children, to)
	to.parents = append(to.parents, from)
}

func (g *Graph) removeEdge(from, to *Task) {
	key := [2]int{from.ID, to.ID}
	if _, ok := g.kinds[key]; !ok {
		return
	}
	delete(g.kinds, key)
	from.children = removeTask(from.children, to)
	to.parents = removeTask(to.parents, from)
}

// EdgeKind returns the kind of the edge from → to, if present.
func (g *Graph) EdgeKind(from, to *Task) (DepKind, bool) {
	k, ok := g.kinds[[2]int{from.ID, to.ID}]
	return k, ok
}

func removeTask(s []*Task, t *Task) []*Task {
	for i, x := range s {
		if x == t {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Correlate records launch ↔ kernel correlation between an API task and a
// GPU task: peers are linked and a correlation edge is added.
func (g *Graph) Correlate(api, gpu *Task) error {
	if err := g.AddDependency(api, gpu, DepCorrelation); err != nil {
		return err
	}
	api.peer = gpu
	gpu.peer = api
	return nil
}

// Remove deletes a task (the paper's Remove primitive): the thread
// sequence is spliced around it, and every non-sequence ordering
// constraint through the task is preserved by reconnecting its remaining
// parents to its remaining children.
func (g *Graph) Remove(t *Task) {
	if g.tasks[t.ID] != t {
		return
	}
	// Splice the thread sequence.
	prev, next := t.seqPrev, t.seqNext
	l := g.seq(t.Thread)
	if prev != nil {
		prev.seqNext = next
	} else {
		l.head = next
	}
	if next != nil {
		next.seqPrev = prev
	} else {
		l.tail = prev
	}
	// Snapshot edges before unlinking.
	parents := append([]*Task(nil), t.parents...)
	children := append([]*Task(nil), t.children...)
	for _, p := range parents {
		g.removeEdge(p, t)
	}
	for _, c := range children {
		g.removeEdge(t, c)
	}
	// Restore the sequence chain.
	if prev != nil && next != nil {
		g.addEdge(prev, next, DepSequence)
	}
	// Preserve transitive ordering through the removed task.
	for _, p := range parents {
		for _, c := range children {
			if p == c {
				continue
			}
			if p == prev && c == next {
				continue // already restored as sequence
			}
			g.addEdge(p, c, DepCustom)
		}
	}
	if t.peer != nil && t.peer.peer == t {
		t.peer.peer = nil
	}
	delete(g.tasks, t.ID)
}

// Select returns the tasks matching the predicate, in creation order
// (the paper's Select primitive).
func (g *Graph) Select(pred func(*Task) bool) []*Task {
	var out []*Task
	for _, id := range g.order {
		if t, ok := g.tasks[id]; ok && pred(t) {
			out = append(out, t)
		}
	}
	return out
}

// Scale multiplies the durations of the given tasks by factor (the
// shrink/scale primitive).
func Scale(tasks []*Task, factor float64) {
	for _, t := range tasks {
		t.Duration = time.Duration(float64(t.Duration) * factor)
	}
}

// Validate checks structural invariants: sequence-chain consistency and
// acyclicity. It returns the first violation.
func (g *Graph) Validate() error {
	for tid, l := range g.threads {
		var prev *Task
		for t := l.head; t != nil; t = t.seqNext {
			if t.Thread != tid {
				return fmt.Errorf("core: task %v chained on thread %v", t, tid)
			}
			if t.seqPrev != prev {
				return fmt.Errorf("core: broken sequence links at %v", t)
			}
			prev = t
		}
		if l.tail != prev {
			return fmt.Errorf("core: thread %v tail mismatch", tid)
		}
	}
	// Kahn's algorithm for cycle detection.
	ref := make(map[int]int, len(g.tasks))
	var frontier []*Task
	for _, t := range g.tasks {
		ref[t.ID] = len(t.parents)
		if len(t.parents) == 0 {
			frontier = append(frontier, t)
		}
	}
	seen := 0
	for len(frontier) > 0 {
		t := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		seen++
		for _, c := range t.children {
			ref[c.ID]--
			if ref[c.ID] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	if seen != len(g.tasks) {
		return fmt.Errorf("core: dependency graph has a cycle (%d of %d tasks reachable)", seen, len(g.tasks))
	}
	return nil
}

// Clone returns a deep copy of the graph; transformations on the copy do
// not affect the original. Task IDs are preserved.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.Meta = g.Meta
	c.Meta.Gradients = append([]trace.GradientInfo(nil), g.Meta.Gradients...)
	c.nextID = g.nextID
	c.order = append([]int(nil), g.order...)
	for id, t := range g.tasks {
		nt := *t
		nt.parents, nt.children = nil, nil
		nt.seqPrev, nt.seqNext, nt.peer = nil, nil, nil
		c.tasks[id] = &nt
	}
	for key, kind := range g.kinds {
		c.kinds[key] = kind
		from, to := c.tasks[key[0]], c.tasks[key[1]]
		from.children = append(from.children, to)
		to.parents = append(to.parents, from)
	}
	for tid, l := range g.threads {
		nl := &seqList{}
		var prev *Task
		for t := l.head; t != nil; t = t.seqNext {
			nt := c.tasks[t.ID]
			nt.seqPrev = prev
			if prev != nil {
				prev.seqNext = nt
			} else {
				nl.head = nt
			}
			prev = nt
		}
		nl.tail = prev
		c.threads[tid] = nl
	}
	for id, t := range g.tasks {
		if t.peer != nil {
			c.tasks[id].peer = c.tasks[t.peer.ID]
		}
	}
	return c
}
