package core

import (
	"fmt"
	"time"
)

// Overlay views a shared immutable baseline Graph through per-task
// duration/gap/priority deltas — a copy-on-write layer for what-if
// scenarios that never touch graph structure (AMP, fused optimizers
// modeled as rescaling, kernel profiles, device upgrades, bandwidth and
// duration grids). Instead of paying a full Clone per scenario, such a
// scenario records only its timing edits and simulates through them:
// the baseline's tasks, adjacency and thread sequences are read in
// place, so any number of overlays can share one baseline concurrently
// as long as nothing mutates it.
//
// Edits are stored sparsely (a map keyed by task ID) while few, and
// densely (flat per-ID slices) past a crossover, so both a two-kernel
// profile tweak and an all-GPU-task rescale stay cheap. The overlay
// also snapshots the baseline's timing arrays and thread layout once
// per binding, so densification and simulation are memcpy-and-index
// work rather than pointer chasing. An Overlay is not safe for
// concurrent use itself; the sharing model is one overlay per goroutine
// over one shared baseline. Reset rebinds an overlay to a (possibly
// different) baseline while keeping its storage, which is how the sweep
// worker pool makes scenario evaluation allocation-free.
type Overlay struct {
	base *Graph

	// Sparse storage below the crossover.
	sparse map[int]overlayEdit
	// Dense storage past the crossover: full effective-value arrays,
	// materialized from the baseline snapshot and overwritten in
	// place. Dense mode is sticky across Reset (re-materializing is a
	// memcpy), so a worker evaluating bulk-edit scenarios pays the
	// sparse map only once.
	dense bool
	dur   []time.Duration
	gap   []time.Duration
	prio  []int

	// prioEdited records whether any priority was overlaid; when false
	// the simulation reads Task.Priority directly. timingEdited records
	// whether any duration or gap was overlaid — the structural patch
	// path uses it to reject legacy (AdaptScheduler-wrapped) policies,
	// which read raw Task fields and would silently see baseline
	// timings where the pre-view fallback materialized effective ones.
	prioEdited   bool
	timingEdited bool

	// gen counts timing edits (and rebinds); consumers that memoize
	// state derived from the overlay's effective values — a Patch's
	// materialization cache — compare generations to invalidate.
	gen uint64

	// Immutable per-binding snapshot of the baseline: flat timing
	// arrays plus the task → thread-ordinal layout, built once when
	// first needed and reused by every subsequent densify/simulate.
	snapBase  *Graph
	baseDur   []time.Duration
	baseGap   []time.Duration
	basePrio  []int
	threadOf  []int32
	threadIDs []ThreadID
}

// editDur/editGap/editPrio mark which fields of an overlayEdit are set.
const (
	editDur = 1 << iota
	editGap
	editPrio
)

// overlayEdit is one sparse per-task override record.
type overlayEdit struct {
	dur  time.Duration
	gap  time.Duration
	prio int
	set  uint8
}

// NewOverlay returns an empty overlay over the baseline graph.
func NewOverlay(g *Graph) *Overlay {
	o := &Overlay{}
	o.Reset(g)
	return o
}

// Base returns the baseline graph the overlay views.
func (o *Overlay) Base() *Graph { return o.base }

// Reset drops every edit and rebinds the overlay to the given baseline
// (which may be the current one), retaining the allocated storage and —
// when the baseline is unchanged — the baseline snapshot.
func (o *Overlay) Reset(g *Graph) {
	if g != o.base || g != o.snapBase {
		// New (or never snapshotted) baseline: drop everything derived.
		o.snapBase = nil
		o.dense = false
	} else if o.dense {
		// Same baseline: stay dense, re-materialize by memcpy.
		copy(o.dur, o.baseDur)
		copy(o.gap, o.baseGap)
		copy(o.prio, o.basePrio)
	}
	o.base = g
	o.prioEdited = false
	o.timingEdited = false
	o.gen++
	for id := range o.sparse {
		delete(o.sparse, id)
	}
}

// generation returns the edit counter (see gen).
func (o *Overlay) generation() uint64 { return o.gen }

// snapshot builds (once per binding) the flat baseline timing arrays
// and the thread layout. The baseline must not be mutated while the
// overlay is bound to it.
func (o *Overlay) snapshot() {
	if o.snapBase == o.base {
		return
	}
	g := o.base
	n := len(g.tasks)
	o.baseDur = growDurations(o.baseDur, n)
	o.baseGap = growDurations(o.baseGap, n)
	o.basePrio = growInts(o.basePrio, n)
	o.threadOf = growInt32s(o.threadOf, n)
	o.threadIDs = o.threadIDs[:0]
	ord := make(map[ThreadID]int32, len(g.threads))
	for id, t := range g.tasks {
		if t == nil {
			o.threadOf[id] = -1
			continue
		}
		o.baseDur[id], o.baseGap[id], o.basePrio[id] = t.Duration, t.Gap, t.Priority
		ti, ok := ord[t.Thread]
		if !ok {
			ti = int32(len(o.threadIDs))
			ord[t.Thread] = ti
			o.threadIDs = append(o.threadIDs, t.Thread)
		}
		o.threadOf[id] = ti
	}
	o.snapBase = g
}

// crossover is the sparse-edit count past which the overlay densifies:
// beyond it, per-read map lookups cost more than materializing flat
// arrays once.
func (o *Overlay) crossover() int {
	n := len(o.base.tasks) / 8
	if n < 64 {
		n = 64
	}
	return n
}

// DenseEdits reports whether the overlay has accumulated enough
// distinct edits to switch to dense per-ID storage (more than
// max(64, tasks/8) edited tasks). A dense delta's affected cone is
// close to the whole schedule, so callers batching what-ifs — the
// sweep's worker pool — use this as the cheap "will incremental
// re-simulation pay off?" signal before building warm state;
// IncrementalSim.ReSimulate applies its own exact per-call cutoff
// regardless.
func (o *Overlay) DenseEdits() bool { return o.dense }

// EstimateConeSize estimates, before any warm schedule exists, the
// affected cone of the overlay's timing delta: an upper bound on how
// many tasks an incremental re-simulation could recompute, along with
// the baseline's task span. The bound takes everything at or after the
// earliest edited ID — trace-built graphs assign IDs in record order,
// so schedule order tracks ID order closely. Batching callers (the
// sweep's tier chooser) route near-total cones straight to overlay
// replay: a handful of edits at the very front of the iteration
// invalidates almost the whole warm schedule, so arming and building
// incremental state would cost a cold simulation only to fall back
// anyway. A dense overlay reports a total cone.
func (o *Overlay) EstimateConeSize() (cone, total int) {
	total = len(o.base.tasks)
	if o.dense {
		return total, total
	}
	if len(o.sparse) == 0 {
		return 0, total
	}
	min := total
	for id := range o.sparse {
		if id < min {
			min = id
		}
	}
	return total - min, total
}

// densify materializes the dense per-ID arrays from the baseline
// snapshot plus the sparse edits, then retires the map.
func (o *Overlay) densify() {
	o.snapshot()
	n := len(o.base.tasks)
	o.dur = growDurations(o.dur, n)
	o.gap = growDurations(o.gap, n)
	o.prio = growInts(o.prio, n)
	copy(o.dur, o.baseDur)
	copy(o.gap, o.baseGap)
	copy(o.prio, o.basePrio)
	for id, e := range o.sparse {
		if e.set&editDur != 0 {
			o.dur[id] = e.dur
		}
		if e.set&editGap != 0 {
			o.gap[id] = e.gap
		}
		if e.set&editPrio != 0 {
			o.prio[id] = e.prio
		}
		delete(o.sparse, id)
	}
	o.dense = true
}

// Duration returns the task's effective duration under the overlay.
func (o *Overlay) Duration(t *Task) time.Duration {
	if o.dense {
		return o.dur[t.ID]
	}
	if e, ok := o.sparse[t.ID]; ok && e.set&editDur != 0 {
		return e.dur
	}
	return t.Duration
}

// Gap returns the task's effective gap under the overlay.
func (o *Overlay) Gap(t *Task) time.Duration {
	if o.dense {
		return o.gap[t.ID]
	}
	if e, ok := o.sparse[t.ID]; ok && e.set&editGap != 0 {
		return e.gap
	}
	return t.Gap
}

// Priority returns the task's effective priority under the overlay.
func (o *Overlay) Priority(t *Task) int {
	if o.dense {
		return o.prio[t.ID]
	}
	if e, ok := o.sparse[t.ID]; ok && e.set&editPrio != 0 {
		return e.prio
	}
	return t.Priority
}

// SetDuration overrides the task's duration without touching the
// baseline.
func (o *Overlay) SetDuration(t *Task, d time.Duration) {
	o.gen++
	o.timingEdited = true
	if o.dense {
		o.dur[t.ID] = d
		return
	}
	if o.sparse == nil {
		o.sparse = make(map[int]overlayEdit)
	}
	e := o.sparse[t.ID]
	e.dur, e.set = d, e.set|editDur
	o.sparse[t.ID] = e
	if len(o.sparse) > o.crossover() {
		o.densify()
	}
}

// SetGap overrides the task's gap without touching the baseline.
func (o *Overlay) SetGap(t *Task, d time.Duration) {
	o.gen++
	o.timingEdited = true
	if o.dense {
		o.gap[t.ID] = d
		return
	}
	if o.sparse == nil {
		o.sparse = make(map[int]overlayEdit)
	}
	e := o.sparse[t.ID]
	e.gap, e.set = d, e.set|editGap
	o.sparse[t.ID] = e
	if len(o.sparse) > o.crossover() {
		o.densify()
	}
}

// SetPriority overrides the task's scheduling priority without touching
// the baseline. Priority overlays drive the default earliest-start
// scheduler's tie-breaking exactly as mutated priorities would, and a
// view-generic custom Scheduler sees them through SchedContext.Priority.
// Only a legacy scheduler wrapped with AdaptScheduler — which reads
// Task.Priority from the shared baseline — cannot, so Simulate rejects
// that combination.
func (o *Overlay) SetPriority(t *Task, p int) {
	o.prioEdited = true
	o.gen++
	if o.dense {
		o.prio[t.ID] = p
		return
	}
	if o.sparse == nil {
		o.sparse = make(map[int]overlayEdit)
	}
	e := o.sparse[t.ID]
	e.prio, e.set = p, e.set|editPrio
	o.sparse[t.ID] = e
	if len(o.sparse) > o.crossover() {
		o.densify()
	}
}

// ScaleDuration multiplies the task's effective duration by factor,
// with the same arithmetic as the Scale primitive.
func (o *Overlay) ScaleDuration(t *Task, factor float64) {
	o.SetDuration(t, time.Duration(float64(o.Duration(t))*factor))
}

// fillTiming writes the effective per-ID durations and gaps into dur
// and gap (each sized to the baseline's ID span). The caller has run
// snapshot().
func (o *Overlay) fillTiming(dur, gap []time.Duration) {
	if o.dense {
		copy(dur, o.dur)
		copy(gap, o.gap)
		return
	}
	copy(dur, o.baseDur)
	copy(gap, o.baseGap)
	for id, e := range o.sparse {
		if e.set&editDur != 0 {
			dur[id] = e.dur
		}
		if e.set&editGap != 0 {
			gap[id] = e.gap
		}
	}
}

// fillPriority writes the effective per-ID priorities into prio, or
// returns nil when no priority was overlaid (the caller then reads
// Task.Priority directly). The caller has run snapshot().
func (o *Overlay) fillPriority(prio []int) []int {
	if !o.prioEdited {
		return nil
	}
	if o.dense {
		copy(prio, o.prio)
		return prio
	}
	copy(prio, o.basePrio)
	for id, e := range o.sparse {
		if e.set&editPrio != 0 {
			prio[id] = e.prio
		}
	}
	return prio
}

// growDurations resizes s to length n, reusing capacity.
func growDurations(s []time.Duration, n int) []time.Duration {
	if cap(s) < n {
		return make([]time.Duration, n)
	}
	return s[:n]
}

// growInts resizes s to length n, reusing capacity.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growInt32s resizes s to length n, reusing capacity.
func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// Simulate executes Algorithm 1 over the baseline graph with the
// overlay's timings — the clone-free counterpart of Graph.Simulate. The
// baseline is only read; the returned result carries the effective
// timings, so SimResult.Finish, TaskDuration and CriticalPath see the
// overlaid values. Results are bit-identical to cloning the baseline,
// applying the same edits to the clone's tasks, and simulating the
// clone. Thread progress is tracked in a flat per-ordinal array from
// the baseline snapshot instead of a map, which makes the overlay loop
// faster than the clone path's even before the saved Clone.
func (o *Overlay) Simulate(opts ...SimOption) (*SimResult, error) {
	var so simOptions
	for _, fn := range opts {
		fn(&so)
	}
	if err := ctxCanceled(so.ctx); err != nil {
		return nil, err
	}
	g := o.base
	if g == nil {
		return nil, fmt.Errorf("core: Overlay.Simulate: overlay has no baseline graph")
	}
	o.snapshot()
	scratch := so.scratch
	if scratch == nil {
		scratch = &SimScratch{}
	}
	n := len(g.tasks)
	scratch.ensure(n)

	resN := n
	if so.window > 0 {
		resN = 0 // windowed: starts and timings live in the window rings
	}
	res := newResult(so.result, resN, len(g.threads))
	var dur, gap []time.Duration
	if so.window > 0 {
		win, err := newWindowState(o, so.window, true)
		if err != nil {
			return nil, err
		}
		res.win = win
		// The loop still wants O(1) effective-timing reads, but the
		// full arrays must not ride the retained result — borrow
		// scratch storage instead, and let record copy each dispatched
		// task's timings into the O(window) rings.
		scratch.effDur = growDurations(scratch.effDur, n)
		scratch.effGap = growDurations(scratch.effGap, n)
		dur, gap = scratch.effDur, scratch.effGap
	} else {
		res.dur = growDurations(res.dur, n)
		res.gap = growDurations(res.gap, n)
		dur, gap = res.dur, res.gap
	}
	o.fillTiming(dur, gap)
	if s := customScheduler(so.scheduler); s != nil {
		if o.prioEdited && isLegacySched(s) {
			return nil, fmt.Errorf("core: Overlay.Simulate: priority overlays are invisible to a legacy Scheduler (AdaptScheduler reads Task.Priority from the shared baseline); migrate the policy to the view-generic Pick(frontier, ctx) contract")
		}
		return simulateScheduled(o, s, scratch, res, so.ctx)
	}
	var prio []int
	if o.prioEdited {
		scratch.prio = growInts(scratch.prio, n)
		prio = o.fillPriority(scratch.prio)
	}

	ref, earliest := scratch.ref, scratch.earliest
	for id, t := range g.tasks {
		if t == nil {
			continue
		}
		ref[id] = len(t.parents)
		earliest[id] = 0
	}

	threadOf := o.threadOf
	// Per-thread progress, -1 = thread not yet touched (so the result
	// map gets exactly the entries a plain simulation would).
	tEnds := growDurations(scratch.threadEnds, len(o.threadIDs))
	scratch.threadEnds = tEnds
	for i := range tEnds {
		tEnds[i] = -1
	}
	taskPrio := func(t *Task) int {
		if prio != nil {
			return prio[t.ID]
		}
		return t.Priority
	}
	h := scratch.heap
	for _, t := range g.tasks {
		if t != nil && len(t.parents) == 0 {
			h = heapPush(h, heapEntry{0, taskPrio(t), t})
		}
	}
	executed := 0
	for len(h) > 0 {
		var e heapEntry
		e, h = heapPop(h)
		u := e.t
		start := earliest[u.ID]
		if p := tEnds[threadOf[u.ID]]; p > start {
			start = p
		}
		if start > e.key {
			h = heapPush(h, heapEntry{start, e.prio, u})
			continue
		}
		end := start + dur[u.ID] + gap[u.ID]
		if res.win == nil {
			res.Start[u.ID] = start
		} else {
			res.win.record(u, start, dur[u.ID], gap[u.ID])
		}
		tEnds[threadOf[u.ID]] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		executed++
		if so.ctx != nil && executed%cancelCheckInterval == 0 {
			if cerr := so.ctx.Err(); cerr != nil {
				scratch.heap = h[:0]
				return nil, ContextError(cerr)
			}
		}
		for _, c := range u.children {
			if end > earliest[c.ID] {
				earliest[c.ID] = end
			}
			ref[c.ID]--
			if ref[c.ID] == 0 {
				key := earliest[c.ID]
				if p := tEnds[threadOf[c.ID]]; p > key {
					key = p
				}
				h = heapPush(h, heapEntry{key, taskPrio(c), c})
			}
		}
	}
	scratch.heap = h[:0]
	for i, end := range tEnds {
		if end >= 0 {
			res.ThreadEnd[o.threadIDs[i]] = end
		}
	}
	if executed != g.live {
		var blocked []*Task
		for id, t := range g.tasks {
			if t != nil && ref[id] > 0 {
				blocked = append(blocked, t)
			}
		}
		return nil, newStallError(executed, g.live, blocked)
	}
	return res, nil
}

// Materialize returns a private clone of the baseline with the
// overlay's effective timings written into its tasks — the graph the
// equivalent clone-path scenario would have produced. The sweep uses it
// to honor KeepGraphs' private-graph contract for overlay scenarios.
func (o *Overlay) Materialize() *Graph {
	c := o.base.Clone()
	for id, bt := range o.base.tasks {
		if bt == nil {
			continue
		}
		ct := c.tasks[id]
		ct.Duration = o.Duration(bt)
		ct.Gap = o.Gap(bt)
		ct.Priority = o.Priority(bt)
	}
	return c
}

// PredictIteration simulates the overlaid baseline and returns the
// makespan — the predicted iteration time under the overlay's edits.
func (o *Overlay) PredictIteration(opts ...SimOption) (time.Duration, error) {
	res, err := o.Simulate(opts...)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
