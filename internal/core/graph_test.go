package core

import (
	"testing"
	"time"

	"daydream/internal/trace"
)

// chain builds a graph with n sequential CPU tasks of the given duration.
func chain(n int, dur time.Duration) (*Graph, []*Task) {
	g := NewGraph()
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		t := g.NewTask("op", trace.KindCPUOp, CPU(1), dur)
		g.AppendTask(t)
		tasks[i] = t
	}
	return g, tasks
}

func TestThreadIDString(t *testing.T) {
	if CPU(1).String() != "cpu:1" || Stream(7).String() != "stream:7" ||
		Channel("nccl").String() != "channel:nccl" {
		t.Error("ThreadID strings wrong")
	}
}

func TestDepKindString(t *testing.T) {
	want := map[DepKind]string{
		DepSequence: "sequence", DepCorrelation: "correlation",
		DepSync: "sync", DepComm: "comm", DepCustom: "custom",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestAppendCreatesSequenceEdges(t *testing.T) {
	g, tasks := chain(3, time.Microsecond)
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	for i := 0; i < 2; i++ {
		k, ok := g.EdgeKind(tasks[i], tasks[i+1])
		if !ok || k != DepSequence {
			t.Fatalf("edge %d→%d kind = %v, ok=%v", i, i+1, k, ok)
		}
	}
	if tasks[1].SeqPrev() != tasks[0] || tasks[1].SeqNext() != tasks[2] {
		t.Fatal("sequence links wrong")
	}
}

func TestInsertAfter(t *testing.T) {
	g, tasks := chain(2, time.Microsecond)
	mid := g.NewTask("inserted", trace.KindCPUOp, CPU(1), time.Microsecond)
	if err := g.InsertAfter(tasks[0], mid); err != nil {
		t.Fatal(err)
	}
	order := g.ThreadTasks(CPU(1))
	if len(order) != 3 || order[1] != mid {
		t.Fatalf("thread order wrong: %v", order)
	}
	// The old direct edge must be gone; the spliced chain present.
	if _, ok := g.EdgeKind(tasks[0], tasks[1]); ok {
		t.Fatal("stale sequence edge kept after insert")
	}
	if _, ok := g.EdgeKind(tasks[0], mid); !ok {
		t.Fatal("missing edge to inserted task")
	}
	if _, ok := g.EdgeKind(mid, tasks[1]); !ok {
		t.Fatal("missing edge from inserted task")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAfterTail(t *testing.T) {
	g, tasks := chain(1, time.Microsecond)
	end := g.NewTask("tail", trace.KindCPUOp, CPU(1), time.Microsecond)
	if err := g.InsertAfter(tasks[0], end); err != nil {
		t.Fatal(err)
	}
	order := g.ThreadTasks(CPU(1))
	if order[len(order)-1] != end {
		t.Fatal("insert at tail failed")
	}
	// Appending afterwards must link after the new tail.
	extra := g.NewTask("extra", trace.KindCPUOp, CPU(1), time.Microsecond)
	g.AppendTask(extra)
	if end.SeqNext() != extra {
		t.Fatal("tail pointer stale after InsertAfter")
	}
}

func TestInsertBeforeHead(t *testing.T) {
	g, tasks := chain(2, time.Microsecond)
	head := g.NewTask("head", trace.KindCPUOp, CPU(1), time.Microsecond)
	if err := g.InsertBefore(tasks[0], head); err != nil {
		t.Fatal(err)
	}
	order := g.ThreadTasks(CPU(1))
	if order[0] != head {
		t.Fatalf("head insert failed: %v", order)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertErrors(t *testing.T) {
	g, _ := chain(1, time.Microsecond)
	if err := g.InsertAfter(nil, g.NewTask("x", trace.KindCPUOp, CPU(1), 0)); err == nil {
		t.Error("nil anchor accepted")
	}
	other := NewGraph()
	foreign := other.NewTask("f", trace.KindCPUOp, CPU(1), 0)
	other.AppendTask(foreign)
	if err := g.InsertAfter(foreign, g.NewTask("y", trace.KindCPUOp, CPU(1), 0)); err == nil {
		t.Error("foreign anchor accepted")
	}
}

func TestRemoveSplicesSequence(t *testing.T) {
	g, tasks := chain(3, time.Microsecond)
	g.Remove(tasks[1])
	order := g.ThreadTasks(CPU(1))
	if len(order) != 2 || order[0] != tasks[0] || order[1] != tasks[2] {
		t.Fatalf("splice failed: %v", order)
	}
	if k, ok := g.EdgeKind(tasks[0], tasks[2]); !ok || k != DepSequence {
		t.Fatal("sequence not restored across removal")
	}
	if g.NumTasks() != 2 {
		t.Fatal("task not deleted")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemovePreservesTransitiveOrder(t *testing.T) {
	// a → victim (custom), victim → b (custom): removing victim must
	// keep a before b.
	g := NewGraph()
	a := g.NewTask("a", trace.KindKernel, Stream(7), time.Microsecond)
	g.AppendTask(a)
	victim := g.NewTask("victim", trace.KindKernel, Stream(7), time.Microsecond)
	g.AppendTask(victim)
	b := g.NewTask("b", trace.KindSync, CPU(1), time.Microsecond)
	g.AppendTask(b)
	if err := g.AddDependency(victim, b, DepSync); err != nil {
		t.Fatal(err)
	}
	g.Remove(victim)
	if _, ok := g.EdgeKind(a, b); !ok {
		t.Fatal("transitive ordering a→b lost")
	}
}

func TestRemoveHeadAndTail(t *testing.T) {
	g, tasks := chain(3, time.Microsecond)
	g.Remove(tasks[0])
	g.Remove(tasks[2])
	order := g.ThreadTasks(CPU(1))
	if len(order) != 1 || order[0] != tasks[1] {
		t.Fatalf("head/tail removal left %v", order)
	}
	// New appends must chain after the surviving task.
	nt := g.NewTask("new", trace.KindCPUOp, CPU(1), 0)
	g.AppendTask(nt)
	if tasks[1].SeqNext() != nt {
		t.Fatal("tail pointer stale after removals")
	}
}

func TestRemoveIdempotent(t *testing.T) {
	g, tasks := chain(2, time.Microsecond)
	g.Remove(tasks[0])
	g.Remove(tasks[0]) // second removal is a no-op
	if g.NumTasks() != 1 {
		t.Fatal("double remove corrupted the graph")
	}
}

func TestAddDependencyErrors(t *testing.T) {
	g, tasks := chain(2, time.Microsecond)
	if err := g.AddDependency(tasks[0], tasks[0], DepCustom); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddDependency(nil, tasks[0], DepCustom); err == nil {
		t.Error("nil endpoint accepted")
	}
	// Duplicate edges collapse.
	before := g.NumEdges()
	if err := g.AddDependency(tasks[0], tasks[1], DepCustom); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != before {
		t.Error("duplicate edge stored")
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g, tasks := chain(2, time.Microsecond)
	if err := g.AddDependency(tasks[1], tasks[0], DepCustom); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestCorrelate(t *testing.T) {
	g := NewGraph()
	api := g.NewTask("cudaLaunchKernel", trace.KindLaunch, CPU(1), time.Microsecond)
	g.AppendTask(api)
	kern := g.NewTask("k", trace.KindKernel, Stream(7), time.Microsecond)
	g.AppendTask(kern)
	if err := g.Correlate(api, kern); err != nil {
		t.Fatal(err)
	}
	if api.Peer() != kern || kern.Peer() != api {
		t.Fatal("peers not linked")
	}
	if k, ok := g.EdgeKind(api, kern); !ok || k != DepCorrelation {
		t.Fatal("correlation edge missing")
	}
	g.Remove(kern)
	if api.Peer() != nil {
		t.Fatal("dangling peer after removal")
	}
}

func TestCloneIndependence(t *testing.T) {
	g, tasks := chain(3, time.Microsecond)
	g.Meta.Model = "m"
	g.Meta.Gradients = []trace.GradientInfo{{Layer: "l", Bytes: 1}}
	c := g.Clone()
	// Mutate the clone in every way.
	c.Task(tasks[1].ID).Duration = time.Hour
	c.Remove(c.Task(tasks[0].ID))
	c.Meta.Gradients[0].Bytes = 99
	if tasks[1].Duration == time.Hour {
		t.Fatal("clone shares task storage")
	}
	if g.NumTasks() != 3 {
		t.Fatal("removal on clone affected original")
	}
	if g.Meta.Gradients[0].Bytes == 99 {
		t.Fatal("clone shares metadata storage")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClonePreservesSimulation(t *testing.T) {
	g, _ := chain(5, time.Microsecond)
	orig, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	cloned, err := g.Clone().PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if orig != cloned {
		t.Fatalf("clone simulates differently: %v vs %v", orig, cloned)
	}
}

func TestSelectOrder(t *testing.T) {
	g, tasks := chain(4, time.Microsecond)
	tasks[1].Name = "pick"
	tasks[3].Name = "pick"
	got := g.Select(NameContains("pick"))
	if len(got) != 2 || got[0] != tasks[1] || got[1] != tasks[3] {
		t.Fatalf("Select order wrong: %v", got)
	}
}

func TestScale(t *testing.T) {
	g, tasks := chain(2, 10*time.Microsecond)
	Scale(g.Tasks(), 0.5)
	if tasks[0].Duration != 5*time.Microsecond {
		t.Fatalf("scaled duration = %v", tasks[0].Duration)
	}
}

func TestThreadsSorted(t *testing.T) {
	g := NewGraph()
	for _, tid := range []ThreadID{Channel("z"), Stream(9), CPU(2), CPU(1), Channel("a")} {
		task := g.NewTask("t", kindFor(tid), tid, 0)
		g.AppendTask(task)
	}
	ths := g.Threads()
	want := []ThreadID{CPU(1), CPU(2), Stream(9), Channel("a"), Channel("z")}
	for i := range want {
		if ths[i] != want[i] {
			t.Fatalf("Threads()[%d] = %v, want %v", i, ths[i], want[i])
		}
	}
}

func kindFor(tid ThreadID) trace.Kind {
	switch tid.Kind {
	case GPUStream:
		return trace.KindKernel
	case CommChannel:
		return trace.KindComm
	}
	return trace.KindCPUOp
}
