package core

import (
	"fmt"
	"time"

	"daydream/internal/trace"
)

// Patch is a copy-on-write view of an immutable baseline Graph that
// layers structural deltas — task additions, task removals, edge
// additions and removals with kinds, sequence splices — on top of the
// timing deltas of an embedded Overlay. It is the unified application
// surface of the what-if system: every Optimization applies itself to a
// Patch, timing-only models write only the timing tier, and structural
// models (Distributed's all-reduce insertion, P3's push/pull
// annotation, removal-form batchnorm restructuring) record their
// surgery without ever cloning the baseline.
//
// The view semantics mirror the Graph primitives exactly:
//
//   - NewTask allocates appendix tasks in the ID range [base.IDSpan(),
//     base.IDSpan()+added), the same IDs a clone would have handed out,
//     so simulation results are positionally interchangeable with the
//     clone path's.
//   - AppendTask / InsertAfter / InsertBefore splice the per-thread
//     sequence through override links; the baseline's own links are
//     never touched.
//   - AddDependency / RemoveDependency edit the effective edge set;
//     RemoveTask reproduces Graph.Remove's transitive-ordering
//     reconnection on the effective adjacency.
//
// Patch.Simulate runs the same Algorithm-1 heap as Graph.Simulate over
// the composite view: baseline tasks read through the delta arrays,
// appendix tasks live past the baseline's ID span, and removed
// tasks/edges are masked. Results are bit-identical to cloning the
// baseline, applying the same operations to the clone, and simulating
// it — the property internal/whatif's patch equivalence suite enforces
// across the model zoo.
//
// A Patch additionally journals its structural operations, so
// Materialize (and the ApplyGraph adapter) can replay them onto a
// private graph for legacy callers that need a real *Graph.
//
// A Patch is not safe for concurrent use; the sharing model is one
// patch per goroutine over one shared baseline (the sweep worker pool
// owns one per worker and Reset rebinds it per scenario, reusing all
// storage). Correlation peers are a per-task property the patch cannot
// rewrite: RemoveTask leaves the baseline's Peer links untouched (the
// materialized replay clears them on the private copy, as Graph.Remove
// does).
type Patch struct {
	base   *Graph
	timing *Overlay

	// added is the appendix: tasks created through the patch, with IDs
	// continuing the baseline's ID space in creation order.
	added []*Task
	// removed masks task IDs (baseline or appendix) deleted by
	// RemoveTask.
	removed map[int]struct{}
	// removedEdges masks baseline edges by {from, to} ID pair.
	removedEdges map[[2]int]struct{}
	// addedOut holds the patch-added out-edges keyed by source ID, and
	// addedIn the patch-added in-edge sources per target ID in addition
	// order — both the indegree contribution Simulate folds into its
	// reference counts and the deterministic parent order effParents
	// appends after the baseline's (matching the materialized graph's).
	addedOut       map[int][]patchEdge
	addedIn        map[int][]*Task
	addedEdgeCount int

	// Sequence-chain overrides: present keys shadow the baseline's
	// seqPrev/seqNext links and per-thread head/tail (a nil value means
	// "end of chain" / "empty thread").
	seqNextOv map[int]*Task
	seqPrevOv map[int]*Task
	headOv    map[ThreadID]*Task
	tailOv    map[ThreadID]*Task

	// ops is the structural journal, replayed by materializeInto.
	ops []patchOp

	// Materialization memo: mat is the last Materialize result, valid
	// while the structural journal length and the timing tier's edit
	// generation still match the values captured at materialization.
	// matCount counts actual clone+replay materializations, for the
	// double-materialization regression tests.
	mat      *Graph
	matOps   int
	matGen   uint64
	matCount int

	// Reusable simulation storage (see Simulate).
	threadIDs   []ThreadID
	threadOf    []int32
	maskRemoved []bool
	remOut      []bool
	outEdges    [][]patchEdge
	tasksView   []*Task
}

// patchEdge is one patch-added edge endpoint.
type patchEdge struct {
	to   *Task
	kind DepKind
}

// patchOp is one journaled structural operation.
type patchOp struct {
	kind   opKind
	t      *Task // subject (new task, removed task, edge target)
	anchor *Task // insertion anchor / edge source
	dep    DepKind
}

type opKind uint8

const (
	opNewTask opKind = iota
	opAppendTask
	opInsertAfter
	opInsertBefore
	opAddDep
	opRemoveDep
	opRemoveTask
)

// NewPatch returns an empty patch over the baseline graph.
func NewPatch(g *Graph) *Patch {
	p := &Patch{timing: NewOverlay(g)}
	p.init(g)
	return p
}

// patchOverOverlay wraps a caller-owned overlay as a patch's timing
// tier, so the ApplyOverlay adapter lands edits in the caller's overlay.
func patchOverOverlay(o *Overlay) *Patch {
	p := &Patch{timing: o}
	p.init(o.Base())
	return p
}

func (p *Patch) init(g *Graph) {
	p.base = g
}

// ensureStructural lazily allocates the structural delta maps on the
// first structural mutator call. A pure-timing patch (the common case
// for the ApplyOverlay adapter and timing-only sweeps) therefore never
// allocates them; every read path tolerates the nil maps (nil-map
// reads, ranges and clears are all no-ops in Go).
func (p *Patch) ensureStructural() {
	if p.removed != nil {
		return
	}
	p.removed = make(map[int]struct{})
	p.removedEdges = make(map[[2]int]struct{})
	p.addedOut = make(map[int][]patchEdge)
	p.addedIn = make(map[int][]*Task)
	p.seqNextOv = make(map[int]*Task)
	p.seqPrevOv = make(map[int]*Task)
	p.headOv = make(map[ThreadID]*Task)
	p.tailOv = make(map[ThreadID]*Task)
}

// Base returns the baseline graph the patch views.
func (p *Patch) Base() *Graph { return p.base }

// Timing returns the patch's timing tier: the copy-on-write Overlay
// holding its duration/gap/priority deltas over baseline tasks.
func (p *Patch) Timing() *Overlay { return p.timing }

// Structural reports whether the patch carries structural deltas (task
// or edge additions/removals). A non-structural patch simulates on the
// pure timing-overlay fast path.
func (p *Patch) Structural() bool { return len(p.ops) > 0 }

// Reset drops every delta and rebinds the patch to the given baseline
// (which may be the current one), retaining all allocated storage — the
// sweep worker pool relies on this to keep per-scenario evaluation
// nearly allocation-free.
func (p *Patch) Reset(g *Graph) {
	p.timing.Reset(g)
	p.base = g
	p.added = p.added[:0]
	p.ops = p.ops[:0]
	p.addedEdgeCount = 0
	p.mat = nil
	clear(p.removed)
	clear(p.removedEdges)
	clear(p.addedOut)
	clear(p.addedIn)
	clear(p.seqNextOv)
	clear(p.seqPrevOv)
	clear(p.headOv)
	clear(p.tailOv)
}

// baseSpan returns the baseline's ID span (appendix IDs start here).
func (p *Patch) baseSpan() int { return len(p.base.tasks) }

// IDSpan returns the exclusive upper bound of effective task IDs:
// baseline span plus appendix length. SimResult.Start has this length.
func (p *Patch) IDSpan() int { return p.baseSpan() + len(p.added) }

// NumTasks returns the number of live tasks in the effective view.
func (p *Patch) NumTasks() int { return p.base.live + len(p.added) - len(p.removed) }

// isAppendix reports whether t is one of the patch's own tasks.
func (p *Patch) isAppendix(t *Task) bool {
	i := t.ID - p.baseSpan()
	return i >= 0 && i < len(p.added) && p.added[i] == t
}

// contains reports whether t is live in the effective view.
func (p *Patch) contains(t *Task) bool {
	if t == nil {
		return false
	}
	if _, gone := p.removed[t.ID]; gone {
		return false
	}
	return p.base.containsTask(t) || p.isAppendix(t)
}

// Task returns the effective task with the given ID, or nil.
func (p *Patch) Task(id int) *Task {
	if _, gone := p.removed[id]; gone {
		return nil
	}
	if i := id - p.baseSpan(); i >= 0 {
		if i < len(p.added) {
			return p.added[i]
		}
		return nil
	}
	return p.base.Task(id)
}

// Tasks returns the effective task set in creation order: live unmasked
// baseline tasks followed by the appendix. The returned slice's backing
// array is reused by the next call; callers must not retain or modify
// it.
func (p *Patch) Tasks() []*Task {
	out := p.tasksView[:0]
	for _, t := range p.base.tasks {
		if t == nil {
			continue
		}
		if _, gone := p.removed[t.ID]; gone {
			continue
		}
		out = append(out, t)
	}
	for _, t := range p.added {
		if _, gone := p.removed[t.ID]; gone {
			continue
		}
		out = append(out, t)
	}
	p.tasksView = out
	return out
}

// Timing tier accessors. For baseline tasks these delegate to the
// overlay; appendix tasks are private to the patch, so their fields are
// read and written directly.

// Duration returns the task's effective duration under the patch.
func (p *Patch) Duration(t *Task) time.Duration {
	if p.isAppendix(t) {
		return t.Duration
	}
	return p.timing.Duration(t)
}

// Gap returns the task's effective gap under the patch.
func (p *Patch) Gap(t *Task) time.Duration {
	if p.isAppendix(t) {
		return t.Gap
	}
	return p.timing.Gap(t)
}

// Priority returns the task's effective scheduling priority.
func (p *Patch) Priority(t *Task) int {
	if p.isAppendix(t) {
		return t.Priority
	}
	return p.timing.Priority(t)
}

// SetDuration overrides the task's duration without touching the
// baseline.
func (p *Patch) SetDuration(t *Task, d time.Duration) {
	if p.isAppendix(t) {
		t.Duration = d
		p.mat = nil
		return
	}
	p.timing.SetDuration(t, d)
}

// SetGap overrides the task's gap without touching the baseline.
func (p *Patch) SetGap(t *Task, d time.Duration) {
	if p.isAppendix(t) {
		t.Gap = d
		p.mat = nil
		return
	}
	p.timing.SetGap(t, d)
}

// SetPriority overrides the task's scheduling priority without touching
// the baseline.
func (p *Patch) SetPriority(t *Task, prio int) {
	if p.isAppendix(t) {
		t.Priority = prio
		p.mat = nil
		return
	}
	p.timing.SetPriority(t, prio)
}

// ScaleDuration multiplies the task's effective duration by factor,
// with the same arithmetic as the Scale primitive.
func (p *Patch) ScaleDuration(t *Task, factor float64) {
	p.SetDuration(t, time.Duration(float64(p.Duration(t))*factor))
}

// NewTask creates an appendix task with the next effective ID — exactly
// the ID Graph.NewTask would allocate on a clone of the baseline, so
// patch and clone results stay positionally interchangeable. The task
// is not yet placed on a thread; use AppendTask, InsertAfter or
// InsertBefore.
func (p *Patch) NewTask(name string, kind trace.Kind, thread ThreadID, dur time.Duration) *Task {
	t := &Task{
		ID:         p.IDSpan(),
		Name:       name,
		Kind:       kind,
		Thread:     thread,
		Duration:   dur,
		LayerIndex: -1,
	}
	p.ensureStructural()
	p.added = append(p.added, t)
	p.ops = append(p.ops, patchOp{kind: opNewTask, t: t})
	return t
}

// Effective sequence links: override maps shadow the baseline fields;
// appendix tasks have no baseline fields and live in the maps only.

func (p *Patch) effSeqNext(t *Task) *Task {
	if v, ok := p.seqNextOv[t.ID]; ok {
		return v
	}
	if p.isAppendix(t) {
		return nil
	}
	return t.seqNext
}

func (p *Patch) effSeqPrev(t *Task) *Task {
	if v, ok := p.seqPrevOv[t.ID]; ok {
		return v
	}
	if p.isAppendix(t) {
		return nil
	}
	return t.seqPrev
}

func (p *Patch) effTail(tid ThreadID) *Task {
	if v, ok := p.tailOv[tid]; ok {
		return v
	}
	if l := p.base.threads[tid]; l != nil {
		return l.tail
	}
	return nil
}

func (p *Patch) effHead(tid ThreadID) *Task {
	if v, ok := p.headOv[tid]; ok {
		return v
	}
	if l := p.base.threads[tid]; l != nil {
		return l.head
	}
	return nil
}

// requirePlaceable guards the placement primitives: only patch-created
// (appendix) tasks may be placed on a thread. Placing a baseline task
// would mean moving it — which the patch cannot express without
// mutating the shared graph (InsertAfter writes t.Thread).
func (p *Patch) requirePlaceable(who string, t *Task) error {
	if t == nil {
		return fmt.Errorf("core: Patch.%s: nil task", who)
	}
	if !p.isAppendix(t) {
		return fmt.Errorf("core: Patch.%s: task %v is not patch-created; only tasks from Patch.NewTask can be placed (the shared baseline is immutable)", who, t)
	}
	return nil
}

// AppendTask places t — a task created by Patch.NewTask — at the tail
// of its thread's effective sequence, adding the sequence dependency
// from the previous tail: the patch form of Graph.AppendTask. Passing
// a task the patch did not create is a programming error (the shared
// baseline is immutable and its tasks cannot be moved) and panics;
// the Insert forms report the same misuse through their error return.
func (p *Patch) AppendTask(t *Task) {
	if err := p.requirePlaceable("AppendTask", t); err != nil {
		panic(err)
	}
	p.ensureStructural()
	p.ops = append(p.ops, patchOp{kind: opAppendTask, t: t})
	tail := p.effTail(t.Thread)
	if tail != nil {
		p.seqPrevOv[t.ID] = tail
		p.seqNextOv[tail.ID] = t
		p.addEdgeView(tail, t, DepSequence)
	} else {
		p.headOv[t.Thread] = t
	}
	p.tailOv[t.Thread] = t
}

// InsertAfter places t — a task created by Patch.NewTask — on prev's
// thread immediately after prev, splicing the effective sequence chain
// (the paper's Insert primitive).
func (p *Patch) InsertAfter(prev, t *Task) error {
	if prev == nil {
		return fmt.Errorf("core: Patch.InsertAfter: nil anchor")
	}
	if !p.contains(prev) {
		return fmt.Errorf("core: Patch.InsertAfter: anchor %v not in effective view", prev)
	}
	if err := p.requirePlaceable("InsertAfter", t); err != nil {
		return err
	}
	p.ensureStructural()
	p.ops = append(p.ops, patchOp{kind: opInsertAfter, t: t, anchor: prev})
	t.Thread = prev.Thread
	next := p.effSeqNext(prev)
	p.seqPrevOv[t.ID] = prev
	p.seqNextOv[t.ID] = next
	p.seqNextOv[prev.ID] = t
	if next != nil {
		p.seqPrevOv[next.ID] = t
		p.removeEdgeView(prev, next)
		p.addEdgeView(t, next, DepSequence)
	} else {
		p.tailOv[t.Thread] = t
	}
	p.addEdgeView(prev, t, DepSequence)
	return nil
}

// InsertBefore places t — a task created by Patch.NewTask — on next's
// thread immediately before next.
func (p *Patch) InsertBefore(next, t *Task) error {
	if next == nil {
		return fmt.Errorf("core: Patch.InsertBefore: nil anchor")
	}
	if !p.contains(next) {
		return fmt.Errorf("core: Patch.InsertBefore: anchor %v not in effective view", next)
	}
	if err := p.requirePlaceable("InsertBefore", t); err != nil {
		return err
	}
	p.ensureStructural()
	if prev := p.effSeqPrev(next); prev != nil {
		return p.InsertAfter(prev, t)
	}
	p.ops = append(p.ops, patchOp{kind: opInsertBefore, t: t, anchor: next})
	t.Thread = next.Thread
	p.seqNextOv[t.ID] = next
	p.seqPrevOv[t.ID] = nil
	p.seqPrevOv[next.ID] = t
	p.headOv[t.Thread] = t
	p.addEdgeView(t, next, DepSequence)
	return nil
}

// AddDependency adds an effective edge from → to of the given kind,
// with Graph.AddDependency's semantics: duplicate edges are ignored
// (the first kind wins), self-edges and nil tasks are rejected. Both
// endpoints must be live in the effective view — an edge touching a
// removed (or foreign) task is rejected, exactly as the materialized
// replay would fail it, so the composite view can never disagree with
// the clone path about a dangling edge.
func (p *Patch) AddDependency(from, to *Task, kind DepKind) error {
	if from == nil || to == nil {
		return fmt.Errorf("core: Patch.AddDependency: nil task")
	}
	if from == to {
		return fmt.Errorf("core: Patch.AddDependency: self edge on %v", from)
	}
	if !p.contains(from) {
		return fmt.Errorf("core: Patch.AddDependency: task %v not in effective view", from)
	}
	if !p.contains(to) {
		return fmt.Errorf("core: Patch.AddDependency: task %v not in effective view", to)
	}
	p.ensureStructural()
	if !p.addEdgeView(from, to, kind) {
		return nil // duplicate, like Graph.AddDependency
	}
	p.ops = append(p.ops, patchOp{kind: opAddDep, anchor: from, t: to, dep: kind})
	return nil
}

// RemoveDependency removes the effective edge from → to, whether it
// came from the baseline or the patch. It reports whether an edge was
// removed.
func (p *Patch) RemoveDependency(from, to *Task) bool {
	if from == nil || to == nil {
		return false
	}
	p.ensureStructural()
	if !p.removeEdgeView(from, to) {
		return false
	}
	p.ops = append(p.ops, patchOp{kind: opRemoveDep, anchor: from, t: to})
	return true
}

// effHasEdge reports whether the effective edge a → b exists.
func (p *Patch) effHasEdge(a, b *Task) bool {
	for _, e := range p.addedOut[a.ID] {
		if e.to == b {
			return true
		}
	}
	if p.base.containsTask(a) && p.base.containsTask(b) && hasEdge(a, b) {
		_, gone := p.removedEdges[[2]int{a.ID, b.ID}]
		return !gone
	}
	return false
}

// addEdgeView records the effective edge a → b, deduplicating against
// both the baseline and earlier patch edges. It reports whether an edge
// was added. Internal callers (sequence splices, Remove reconnection)
// do not journal the edge: the materialized replay reproduces it
// through the journaled primitive.
func (p *Patch) addEdgeView(a, b *Task, kind DepKind) bool {
	if p.effHasEdge(a, b) {
		return false
	}
	p.addedOut[a.ID] = append(p.addedOut[a.ID], patchEdge{to: b, kind: kind})
	p.addedIn[b.ID] = append(p.addedIn[b.ID], a)
	p.addedEdgeCount++
	return true
}

// removeEdgeView removes the effective edge a → b: a patch-added edge
// is dropped from the delta, a baseline edge is masked. It reports
// whether an edge was removed.
func (p *Patch) removeEdgeView(a, b *Task) bool {
	if list, ok := p.addedOut[a.ID]; ok {
		for i, e := range list {
			if e.to == b {
				p.addedOut[a.ID] = append(list[:i], list[i+1:]...)
				if ins := p.addedIn[b.ID]; len(ins) > 0 {
					for j, q := range ins {
						if q == a {
							p.addedIn[b.ID] = append(ins[:j], ins[j+1:]...)
							break
						}
					}
				}
				p.addedEdgeCount--
				return true
			}
		}
	}
	if p.base.containsTask(a) && p.base.containsTask(b) && hasEdge(a, b) {
		key := [2]int{a.ID, b.ID}
		if _, gone := p.removedEdges[key]; !gone {
			p.removedEdges[key] = struct{}{}
			return true
		}
	}
	return false
}

// edgeLive reports whether the baseline edge from → to survives the
// patch's edge-removal mask (the endpoints' own liveness is checked by
// the caller).
func (p *Patch) edgeLive(from, to int) bool {
	_, gone := p.removedEdges[[2]int{from, to}]
	return !gone
}

// effParents returns t's live effective dependency parents (fresh
// slice): unmasked baseline parents in baseline order, then patch-added
// in-edges in addition order — the exact parent order the materialized
// graph would carry, so order-sensitive consumers (the critical-path
// walk, RemoveTask's reconnection) behave identically on both.
func (p *Patch) effParents(t *Task) []*Task {
	var out []*Task
	if !p.isAppendix(t) {
		for _, q := range t.parents {
			if _, gone := p.removed[q.ID]; gone {
				continue
			}
			if p.edgeLive(q.ID, t.ID) {
				out = append(out, q)
			}
		}
	}
	for _, q := range p.addedIn[t.ID] {
		if _, gone := p.removed[q.ID]; gone {
			continue
		}
		out = append(out, q)
	}
	return out
}

// effChildren returns t's live effective dependents (fresh slice).
func (p *Patch) effChildren(t *Task) []*Task {
	var out []*Task
	if !p.isAppendix(t) {
		for _, c := range t.children {
			if _, gone := p.removed[c.ID]; gone {
				continue
			}
			if p.edgeLive(t.ID, c.ID) {
				out = append(out, c)
			}
		}
	}
	for _, e := range p.addedOut[t.ID] {
		if _, gone := p.removed[e.to.ID]; gone {
			continue
		}
		out = append(out, e.to)
	}
	return out
}

// RemoveTask deletes a task from the effective view (the paper's Remove
// primitive), reproducing Graph.Remove's semantics exactly: the
// effective thread sequence is spliced around it, and every
// non-sequence ordering constraint through the task is preserved by
// reconnecting its remaining maximal parents to its remaining minimal
// children (the same bipartite core Graph.Remove materializes).
func (p *Patch) RemoveTask(t *Task) {
	if !p.contains(t) {
		return
	}
	p.ensureStructural()
	p.ops = append(p.ops, patchOp{kind: opRemoveTask, t: t})
	// Splice the effective thread sequence.
	prev, next := p.effSeqPrev(t), p.effSeqNext(t)
	if prev != nil {
		p.seqNextOv[prev.ID] = next
	} else {
		p.headOv[t.Thread] = next
	}
	if next != nil {
		p.seqPrevOv[next.ID] = prev
	} else {
		p.tailOv[t.Thread] = prev
	}
	// Snapshot effective edges, then unlink them.
	parents := p.effParents(t)
	children := p.effChildren(t)
	for _, q := range parents {
		p.removeEdgeView(q, t)
	}
	for _, c := range children {
		p.removeEdgeView(t, c)
	}
	// Restore the sequence chain.
	if prev != nil && next != nil {
		p.addEdgeView(prev, next, DepSequence)
	}
	// Reconnect maximal parents to minimal children, as Graph.Remove
	// does (ordering among siblings implies the rest).
	maxParents := parents
	if len(parents) > 1 {
		maxParents = make([]*Task, 0, len(parents))
		for _, a := range parents {
			implied := false
			for _, q := range parents {
				if q != a && p.effHasEdge(a, q) {
					implied = true
					break
				}
			}
			if !implied {
				maxParents = append(maxParents, a)
			}
		}
	}
	minChildren := children
	if len(children) > 1 {
		minChildren = make([]*Task, 0, len(children))
		for _, c := range children {
			implied := false
			for _, d := range children {
				if d != c && p.effHasEdge(d, c) {
					implied = true
					break
				}
			}
			if !implied {
				minChildren = append(minChildren, c)
			}
		}
	}
	for _, a := range maxParents {
		for _, c := range minChildren {
			if a == c {
				continue
			}
			if a == prev && c == next {
				continue // already restored as sequence
			}
			p.addEdgeView(a, c, DepCustom)
		}
	}
	p.removed[t.ID] = struct{}{}
}

// growBools resizes s to length n, reusing capacity, and clears it.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growEdgeLists resizes s to length n, reusing capacity, and clears it.
func growEdgeLists(s [][]patchEdge, n int) [][]patchEdge {
	if cap(s) < n {
		return make([][]patchEdge, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Simulate executes Algorithm 1 over the composite view — the
// structural counterpart of Overlay.Simulate. Baseline tasks read their
// timings through the patch's timing tier, appendix tasks execute with
// their own fields, masked tasks and edges are skipped, and patch-added
// edges contribute to reference counts and relaxation exactly as real
// edges would. The baseline is only read; results are bit-identical to
// materializing the patch into a private clone and simulating that.
//
// A patch with no structural deltas delegates to the timing tier's
// Simulate, so timing-only scenarios keep the pure-overlay fast path.
// Custom Schedulers run directly over the composite view too: the
// slice-frontier scheduled path reads effective timings, priorities and
// adjacency through the patch, so vDNN-style scheduling policies on a
// structural patch are just as clone-free as the default policy (only a
// legacy AdaptScheduler-wrapped policy, which reads raw Task fields, is
// rejected when the timing tier overlays priorities).
func (p *Patch) Simulate(opts ...SimOption) (*SimResult, error) {
	if !p.Structural() {
		return p.timing.Simulate(opts...)
	}
	var so simOptions
	for _, fn := range opts {
		fn(&so)
	}
	if err := ctxCanceled(so.ctx); err != nil {
		return nil, err
	}
	g := p.base
	if g == nil {
		return nil, fmt.Errorf("core: Patch.Simulate: patch has no baseline graph")
	}
	o := p.timing
	o.snapshot()
	baseSpan := len(g.tasks)
	n := baseSpan + len(p.added)
	scratch := so.scratch
	if scratch == nil {
		scratch = &SimScratch{}
	}
	scratch.ensure(n)

	resN := n
	if so.window > 0 {
		resN = 0 // windowed: starts and timings live in the window rings
	}
	res := newResult(so.result, resN, len(g.threads)+1)
	var dur, gap []time.Duration
	if so.window > 0 {
		win, err := newWindowState(p, so.window, true)
		if err != nil {
			return nil, err
		}
		res.win = win
		// Effective timings go to borrowed scratch storage so the
		// retained result stays O(window); record copies each dispatched
		// task's timings into the rings.
		scratch.effDur = growDurations(scratch.effDur, n)
		scratch.effGap = growDurations(scratch.effGap, n)
		dur, gap = scratch.effDur, scratch.effGap
	} else {
		res.dur = growDurations(res.dur, n)
		res.gap = growDurations(res.gap, n)
		dur, gap = res.dur, res.gap
	}
	o.fillTiming(dur[:baseSpan], gap[:baseSpan])
	for i, t := range p.added {
		dur[baseSpan+i] = t.Duration
		gap[baseSpan+i] = t.Gap
	}
	if s := customScheduler(so.scheduler); s != nil {
		if (o.prioEdited || o.timingEdited) && isLegacySched(s) {
			return nil, fmt.Errorf("core: Patch.Simulate: timing/priority overlays are invisible to a legacy Scheduler (AdaptScheduler reads raw Task fields from the shared baseline, where the old materialized fallback carried effective values); migrate the policy to the view-generic Pick(frontier, ctx) contract")
		}
		return simulateScheduled(p, s, scratch, res, so.ctx)
	}
	var prio []int
	if o.prioEdited {
		scratch.prio = growInts(scratch.prio, n)
		o.fillPriority(scratch.prio[:baseSpan])
		for i, t := range p.added {
			scratch.prio[baseSpan+i] = t.Priority
		}
		prio = scratch.prio
	}

	// Thread layout: the overlay snapshot's ordinals extended with any
	// threads only the appendix uses.
	p.threadIDs = append(p.threadIDs[:0], o.threadIDs...)
	p.threadOf = growInt32s(p.threadOf, n)
	copy(p.threadOf, o.threadOf[:baseSpan])
	for i, t := range p.added {
		ti := int32(-1)
		for j, tid := range p.threadIDs {
			if tid == t.Thread {
				ti = int32(j)
				break
			}
		}
		if ti < 0 {
			ti = int32(len(p.threadIDs))
			p.threadIDs = append(p.threadIDs, t.Thread)
		}
		p.threadOf[baseSpan+i] = ti
	}

	// Dense delta masks for the hot loop: O(deltas) to fill after an
	// O(n) clear, so per-edge checks cost an array index, not a map
	// lookup.
	p.maskRemoved = growBools(p.maskRemoved, n)
	for id := range p.removed {
		p.maskRemoved[id] = true
	}
	p.remOut = growBools(p.remOut, n)
	for key := range p.removedEdges {
		p.remOut[key[0]] = true
	}
	p.outEdges = growEdgeLists(p.outEdges, n)
	for id, list := range p.addedOut {
		p.outEdges[id] = list
	}
	maskRemoved, remOut, outEdges := p.maskRemoved, p.remOut, p.outEdges

	// Reference counts and earliest starts over the effective edge set.
	ref, earliest := scratch.ref, scratch.earliest
	hasRemovals := len(p.removed) > 0
	hasEdgeRemovals := len(p.removedEdges) > 0
	for id, t := range g.tasks {
		earliest[id] = 0
		if t == nil || maskRemoved[id] {
			ref[id] = 0
			continue
		}
		np := len(t.parents)
		if hasRemovals || hasEdgeRemovals {
			np = 0
			for _, q := range t.parents {
				if maskRemoved[q.ID] {
					continue
				}
				if remOut[q.ID] && !p.edgeLive(q.ID, id) {
					continue
				}
				np++
			}
		}
		ref[id] = np
	}
	for i := range p.added {
		id := baseSpan + i
		earliest[id] = 0
		ref[id] = 0
	}
	// Patch-added in-edges contribute indegree only when their source is
	// live — the same liveness rule the relax loop and the scheduled
	// path's eachChild apply, so the two simulation paths can never
	// disagree about a dangling edge.
	for id, ins := range p.addedIn {
		if maskRemoved[id] {
			continue
		}
		for _, q := range ins {
			if !maskRemoved[q.ID] {
				ref[id]++
			}
		}
	}

	threadOf := p.threadOf
	tEnds := growDurations(scratch.threadEnds, len(p.threadIDs))
	scratch.threadEnds = tEnds
	for i := range tEnds {
		tEnds[i] = -1
	}
	taskPrio := func(t *Task) int {
		if prio != nil {
			return prio[t.ID]
		}
		return t.Priority
	}
	h := scratch.heap
	for id, t := range g.tasks {
		if t != nil && !maskRemoved[id] && ref[id] == 0 {
			h = heapPush(h, heapEntry{0, taskPrio(t), t})
		}
	}
	for i, t := range p.added {
		if id := baseSpan + i; !maskRemoved[id] && ref[id] == 0 {
			h = heapPush(h, heapEntry{0, taskPrio(t), t})
		}
	}
	executed := 0
	for len(h) > 0 {
		var e heapEntry
		e, h = heapPop(h)
		u := e.t
		start := earliest[u.ID]
		if pe := tEnds[threadOf[u.ID]]; pe > start {
			start = pe
		}
		if start > e.key {
			h = heapPush(h, heapEntry{start, e.prio, u})
			continue
		}
		end := start + dur[u.ID] + gap[u.ID]
		if res.win == nil {
			res.Start[u.ID] = start
		} else {
			res.win.record(u, start, dur[u.ID], gap[u.ID])
		}
		tEnds[threadOf[u.ID]] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		executed++
		if so.ctx != nil && executed%cancelCheckInterval == 0 {
			if cerr := so.ctx.Err(); cerr != nil {
				scratch.heap = h[:0]
				return nil, ContextError(cerr)
			}
		}
		relax := func(c *Task) {
			if end > earliest[c.ID] {
				earliest[c.ID] = end
			}
			ref[c.ID]--
			if ref[c.ID] == 0 {
				key := earliest[c.ID]
				if pe := tEnds[threadOf[c.ID]]; pe > key {
					key = pe
				}
				h = heapPush(h, heapEntry{key, taskPrio(c), c})
			}
		}
		if u.ID < baseSpan {
			fromRemoved := remOut[u.ID]
			for _, c := range u.children {
				if maskRemoved[c.ID] {
					continue
				}
				if fromRemoved && !p.edgeLive(u.ID, c.ID) {
					continue
				}
				relax(c)
			}
		}
		for _, pe := range outEdges[u.ID] {
			if !maskRemoved[pe.to.ID] {
				relax(pe.to)
			}
		}
	}
	scratch.heap = h[:0]
	for i, end := range tEnds {
		if end >= 0 {
			res.ThreadEnd[p.threadIDs[i]] = end
		}
	}
	if live := p.NumTasks(); executed != live {
		var blocked []*Task
		for id, t := range g.tasks {
			if t != nil && !maskRemoved[id] && ref[id] > 0 {
				blocked = append(blocked, t)
			}
		}
		for i, t := range p.added {
			if id := baseSpan + i; !maskRemoved[id] && ref[id] > 0 {
				blocked = append(blocked, t)
			}
		}
		return nil, newStallError(executed, live, blocked)
	}
	return res, nil
}

// PredictIteration simulates the patched baseline and returns the
// makespan — the predicted iteration time under the patch's deltas.
func (p *Patch) PredictIteration(opts ...SimOption) (time.Duration, error) {
	res, err := p.Simulate(opts...)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// Materialize returns a private clone of the baseline with the patch's
// timing deltas written into its tasks and the structural journal
// replayed onto it — the graph the equivalent clone-path scenario would
// have produced. The sweep uses it to honor KeepGraphs' private-graph
// contract for patch scenarios.
//
// The result is memoized: calling Materialize again without an
// intervening edit through the patch (structural primitives, Set*
// timing edits, Reset) returns the same graph instead of paying the
// clone+replay again. Callers that intend to mutate the returned graph
// and keep materializing from the patch should Clone it first; writes
// that bypass the patch (direct field assignments on appendix tasks)
// are not tracked and do not invalidate the memo.
func (p *Patch) Materialize() (*Graph, error) {
	if p.mat != nil && p.matOps == len(p.ops) && p.matGen == p.timing.generation() {
		return p.mat, nil
	}
	c := p.base.Clone()
	if err := p.materializeInto(c); err != nil {
		return nil, err
	}
	p.mat, p.matOps, p.matGen = c, len(p.ops), p.timing.generation()
	p.matCount++
	return c, nil
}

// Materializations returns how many times the patch actually paid the
// clone+replay cost of Materialize (memo hits are free). Diagnostic;
// the double-materialization regression tests pin it.
func (p *Patch) Materializations() int { return p.matCount }

// Validate checks the effective composite view for the invariants
// Simulate assumes, returning the first violation as a typed error:
// every patch-added edge and sequence override must reference tasks
// live in the view (ErrDanglingEdge), every effective duration and
// duration+gap must be non-negative (ErrNegativeDuration), and the
// effective dependency graph must be acyclic (ErrCycle, via a
// CycleError naming the unorderable tasks). A patch built solely
// through the public primitives cannot dangle — AddDependency and the
// placement primitives reject dead endpoints up front — so the edge
// checks guard against baselines mutated underneath a bound patch, the
// exact corruption a long-lived service sharing baselines across
// requests must detect rather than mis-simulate.
func (p *Patch) Validate() error {
	if p.base == nil {
		return fmt.Errorf("core: Patch.Validate: patch has no baseline graph")
	}
	// Patch-added edges: both endpoints live in the effective view.
	for srcID, edges := range p.addedOut {
		src := p.Task(srcID)
		if src == nil {
			return fmt.Errorf("%w: patch edge from dead task #%d", ErrDanglingEdge, srcID)
		}
		for _, e := range edges {
			if !p.contains(e.to) {
				return fmt.Errorf("%w: patch edge %v → %v targets a task not live in the view", ErrDanglingEdge, src, e.to)
			}
		}
	}
	// Sequence-chain overrides: present links must point at live tasks
	// (nil means end-of-chain and is always fine).
	for id, nxt := range p.seqNextOv {
		if nxt != nil && !p.contains(nxt) {
			return fmt.Errorf("%w: sequence override after #%d points at dead task %v", ErrDanglingEdge, id, nxt)
		}
	}
	for id, prv := range p.seqPrevOv {
		if prv != nil && !p.contains(prv) {
			return fmt.Errorf("%w: sequence override before #%d points at dead task %v", ErrDanglingEdge, id, prv)
		}
	}
	for tid, h := range p.headOv {
		if h != nil && !p.contains(h) {
			return fmt.Errorf("%w: head override of thread %v points at dead task %v", ErrDanglingEdge, tid, h)
		}
	}
	for tid, tl := range p.tailOv {
		if tl != nil && !p.contains(tl) {
			return fmt.Errorf("%w: tail override of thread %v points at dead task %v", ErrDanglingEdge, tid, tl)
		}
	}
	// Effective timings: the simulator's monotonicity arguments assume
	// non-negative durations and non-negative duration+gap.
	var badTiming error
	p.eachTask(func(t *Task) {
		if badTiming != nil {
			return
		}
		d, gp := p.Duration(t), p.Gap(t)
		if d < 0 {
			badTiming = fmt.Errorf("%w: task %v has effective duration %v", ErrNegativeDuration, t, d)
		} else if d+gp < 0 {
			badTiming = fmt.Errorf("%w: task %v has effective duration+gap %v", ErrNegativeDuration, t, d+gp)
		}
	})
	if badTiming != nil {
		return badTiming
	}
	// Kahn's algorithm over the effective view for cycle detection.
	span := p.IDSpan()
	ref := make([]int, span)
	var frontier []*Task
	live := 0
	p.eachTask(func(t *Task) {
		live++
		n := len(p.effParents(t))
		ref[t.ID] = n
		if n == 0 {
			frontier = append(frontier, t)
		}
	})
	seen := 0
	for len(frontier) > 0 {
		t := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		seen++
		p.eachChild(t, func(c *Task) {
			ref[c.ID]--
			if ref[c.ID] == 0 {
				frontier = append(frontier, c)
			}
		})
	}
	if seen != live {
		var members []*Task
		p.eachTask(func(t *Task) {
			if ref[t.ID] > 0 {
				members = append(members, t)
			}
		})
		return newCycleError(members)
	}
	return nil
}

// materializeInto applies the patch to target, which must be either the
// baseline itself (private to the caller) or a clone of it: effective
// timings are written into the live tasks, then the structural journal
// is replayed through the Graph primitives, so the result is exactly
// what the clone path would have built.
func (p *Patch) materializeInto(target *Graph) error {
	baseSpan := p.baseSpan()
	for id, bt := range p.base.tasks {
		if bt == nil {
			continue
		}
		ct := target.tasks[id]
		ct.Duration = p.timing.Duration(bt)
		ct.Gap = p.timing.Gap(bt)
		ct.Priority = p.timing.Priority(bt)
	}
	var appendix map[*Task]*Task
	if len(p.added) > 0 {
		appendix = make(map[*Task]*Task, len(p.added))
	}
	mapT := func(t *Task) *Task {
		if t == nil {
			return nil
		}
		if t.ID < baseSpan {
			return target.tasks[t.ID]
		}
		return appendix[t]
	}
	for _, op := range p.ops {
		switch op.kind {
		case opNewTask:
			nt := target.NewTask(op.t.Name, op.t.Kind, op.t.Thread, op.t.Duration)
			nt.Gap = op.t.Gap
			nt.TracedStart = op.t.TracedStart
			nt.TracedDuration = op.t.TracedDuration
			nt.Layer, nt.LayerIndex, nt.Phase, nt.HasLayer = op.t.Layer, op.t.LayerIndex, op.t.Phase, op.t.HasLayer
			nt.Correlation = op.t.Correlation
			nt.Bytes = op.t.Bytes
			nt.Dir = op.t.Dir
			nt.Priority = op.t.Priority
			nt.Round = op.t.Round
			appendix[op.t] = nt
		case opAppendTask:
			target.AppendTask(mapT(op.t))
		case opInsertAfter:
			if err := target.InsertAfter(mapT(op.anchor), mapT(op.t)); err != nil {
				return err
			}
		case opInsertBefore:
			if err := target.InsertBefore(mapT(op.anchor), mapT(op.t)); err != nil {
				return err
			}
		case opAddDep:
			if err := target.AddDependency(mapT(op.anchor), mapT(op.t), op.dep); err != nil {
				return err
			}
		case opRemoveDep:
			target.RemoveDependency(mapT(op.anchor), mapT(op.t))
		case opRemoveTask:
			target.Remove(mapT(op.t))
		}
	}
	return nil
}
