package core

import (
	"fmt"
	"time"
)

// Scheduler picks the next task to dispatch from the execution frontier —
// the paper's overridable schedule() of Algorithm 1 (§4.4 "Schedule").
// effStart returns the earliest time the task could begin given current
// thread progress. Implementations must be deterministic.
type Scheduler interface {
	Pick(frontier []*Task, effStart func(*Task) time.Duration) *Task
}

// EarliestStart is the default scheduler: the frontier task with the
// earliest effective start wins; ties fall to higher priority, then lower
// task ID.
type EarliestStart struct{}

// Pick implements Scheduler.
func (EarliestStart) Pick(frontier []*Task, effStart func(*Task) time.Duration) *Task {
	var best *Task
	var bestT time.Duration
	for _, t := range frontier {
		et := effStart(t)
		switch {
		case best == nil, et < bestT:
			best, bestT = t, et
		case et == bestT:
			if t.Priority > best.Priority || (t.Priority == best.Priority && t.ID < best.ID) {
				best = t
			}
		}
	}
	return best
}

// SimResult is the outcome of one simulation.
type SimResult struct {
	// Makespan is the time from simulation start to the completion of
	// the last task (gaps included).
	Makespan time.Duration
	// Start is indexed by task ID and holds each task's simulated start
	// time. Its length is the graph's ID span (removed IDs stay zero).
	Start []time.Duration
	// ThreadEnd maps each thread to its final progress.
	ThreadEnd map[ThreadID]time.Duration

	// dur and gap hold the effective per-task timings of an overlay
	// simulation (empty for a plain Graph.Simulate, where the Task
	// fields are authoritative). TaskDuration/TaskGap/Finish read
	// through them so result consumers never see baseline timings for
	// an overlaid task.
	dur, gap []time.Duration
}

// TaskDuration returns the task duration the simulation used: the
// overlay's effective duration for an overlay simulation, the task's own
// Duration otherwise.
func (r *SimResult) TaskDuration(t *Task) time.Duration {
	if len(r.dur) > t.ID {
		return r.dur[t.ID]
	}
	return t.Duration
}

// TaskGap returns the gap the simulation used for the task (see
// TaskDuration).
func (r *SimResult) TaskGap(t *Task) time.Duration {
	if len(r.gap) > t.ID {
		return r.gap[t.ID]
	}
	return t.Gap
}

// Finish returns the simulated completion time of a task.
func (r *SimResult) Finish(t *Task) time.Duration {
	return r.Start[t.ID] + r.TaskDuration(t)
}

// newResult readies result storage for an ID span of n, reusing buf's
// backing arrays when one was supplied via WithResultBuffer.
func newResult(buf *SimResult, n, threads int) *SimResult {
	if buf == nil {
		return &SimResult{
			Start:     make([]time.Duration, n),
			ThreadEnd: make(map[ThreadID]time.Duration, threads),
		}
	}
	buf.Makespan = 0
	if cap(buf.Start) < n {
		buf.Start = make([]time.Duration, n)
	} else {
		buf.Start = buf.Start[:n]
		for i := range buf.Start {
			buf.Start[i] = 0
		}
	}
	if buf.ThreadEnd == nil {
		buf.ThreadEnd = make(map[ThreadID]time.Duration, threads)
	} else {
		for k := range buf.ThreadEnd {
			delete(buf.ThreadEnd, k)
		}
	}
	// Keep the capacity, drop the content: a plain simulation must not
	// inherit a previous overlay simulation's timings.
	buf.dur = buf.dur[:0]
	buf.gap = buf.gap[:0]
	return buf
}

// SimScratch holds the reusable per-simulation working set: the
// reference-count and earliest-start arrays plus the frontier storage.
// A scratch may be reused across any number of sequential simulations of
// graphs of any size (it grows as needed), which removes almost all
// per-simulation allocation — the property the sweep worker pool relies
// on. A scratch must not be shared by concurrent simulations.
type SimScratch struct {
	ref        []int
	earliest   []time.Duration
	heap       []heapEntry
	frontier   []*Task
	prio       []int           // effective priorities for overlay simulations
	threadEnds []time.Duration // per-thread-ordinal progress for overlay simulations
}

// NewSimScratch returns an empty scratch, ready for WithScratch.
func NewSimScratch() *SimScratch { return &SimScratch{} }

// ensure sizes the arrays for an ID span of n.
func (s *SimScratch) ensure(n int) {
	if cap(s.ref) < n {
		s.ref = make([]int, n)
		s.earliest = make([]time.Duration, n)
	}
	s.ref = s.ref[:n]
	s.earliest = s.earliest[:n]
	s.heap = s.heap[:0]
	s.frontier = s.frontier[:0]
}

// heapEntry is one frontier task with the effective-start key it was
// inserted (or re-inserted) with. Keys only grow as the simulation
// progresses, so a popped entry whose key is stale is re-pushed with its
// current effective start (lazy update); an entry whose key is current is
// the true minimum under the (start, -priority, ID) order — exactly the
// task EarliestStart's linear scan would have picked. The entry carries
// the effective priority so overlay simulations can tie-break on
// overlaid priorities without touching the shared baseline tasks.
type heapEntry struct {
	key  time.Duration
	prio int
	t    *Task
}

func heapLess(a, b heapEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.t.ID < b.t.ID
}

func heapPush(h []heapEntry, e heapEntry) []heapEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPop(h []heapEntry) (heapEntry, []heapEntry) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && heapLess(h[l], h[least]) {
			least = l
		}
		if r < n && heapLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top, h
}

// simOptions collects Simulate options.
type simOptions struct {
	scheduler Scheduler
	scratch   *SimScratch
	result    *SimResult
}

// SimOption configures Simulate.
type SimOption func(*simOptions)

// WithScheduler overrides the default earliest-start scheduling policy
// (used, e.g., to model P3's priority queues or vDNN's prefetch policy).
func WithScheduler(s Scheduler) SimOption {
	return func(o *simOptions) { o.scheduler = s }
}

// WithScratch reuses a caller-owned working set across simulations,
// eliminating per-simulation allocation of the frontier and bookkeeping
// arrays. The scratch must not be used by two simulations concurrently.
func WithScratch(s *SimScratch) SimOption {
	return func(o *simOptions) { o.scratch = s }
}

// WithResultBuffer fills (and returns) the caller-owned SimResult
// instead of allocating a fresh one, reusing its backing arrays. The
// previous contents of buf are discarded, so a caller that reuses one
// buffer across simulations must be done with the earlier result — the
// sweep worker pool uses this to make steady-state scenario evaluation
// allocation-free when results are not retained.
func WithResultBuffer(buf *SimResult) SimOption {
	return func(o *simOptions) { o.result = buf }
}

// Simulate executes Algorithm 1 of the paper: a frontier-based replay that
// dispatches each task to its execution thread once its dependencies
// complete, advancing per-thread progress by duration plus gap, and
// propagating earliest-start times along dependency edges.
//
// Under the default earliest-start policy the frontier is a binary heap
// with lazily updated keys; a custom Scheduler sees the frontier as a
// plain slice, preserving the overridable schedule() contract.
func (g *Graph) Simulate(opts ...SimOption) (*SimResult, error) {
	o := simOptions{}
	for _, fn := range opts {
		fn(&o)
	}
	scratch := o.scratch
	if scratch == nil {
		scratch = &SimScratch{}
	}
	n := len(g.tasks)
	scratch.ensure(n)

	res := newResult(o.result, n, len(g.threads))
	ref, earliest := scratch.ref, scratch.earliest
	for id, t := range g.tasks {
		if t == nil {
			continue
		}
		ref[id] = len(t.parents)
		earliest[id] = 0
	}

	if o.scheduler != nil {
		if _, isDefault := o.scheduler.(EarliestStart); !isDefault {
			return g.simulateScheduled(o.scheduler, scratch, res)
		}
	}

	h := scratch.heap
	for _, t := range g.tasks {
		if t != nil && len(t.parents) == 0 {
			h = heapPush(h, heapEntry{0, t.Priority, t})
		}
	}
	executed := 0
	for len(h) > 0 {
		var e heapEntry
		e, h = heapPop(h)
		u := e.t
		start := earliest[u.ID]
		if p := res.ThreadEnd[u.Thread]; p > start {
			start = p
		}
		if start > e.key {
			// Stale key: thread progress moved past the insertion-time
			// estimate. Re-insert with the current effective start.
			h = heapPush(h, heapEntry{start, u.Priority, u})
			continue
		}
		res.Start[u.ID] = start
		end := start + u.Duration + u.Gap
		res.ThreadEnd[u.Thread] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		executed++
		for _, c := range u.children {
			if end > earliest[c.ID] {
				earliest[c.ID] = end
			}
			ref[c.ID]--
			if ref[c.ID] == 0 {
				key := earliest[c.ID]
				if p := res.ThreadEnd[c.Thread]; p > key {
					key = p
				}
				h = heapPush(h, heapEntry{key, c.Priority, c})
			}
		}
	}
	scratch.heap = h[:0]
	if executed != g.live {
		return nil, fmt.Errorf("core: simulated %d of %d tasks; graph has a cycle", executed, g.live)
	}
	return res, nil
}

// simulateScheduled is the slice-frontier path for custom schedulers: the
// scheduler inspects every frontier task, as in the seed engine.
func (g *Graph) simulateScheduled(sched Scheduler, scratch *SimScratch, res *SimResult) (*SimResult, error) {
	ref, earliest := scratch.ref, scratch.earliest
	frontier := scratch.frontier
	for _, t := range g.tasks {
		if t != nil && len(t.parents) == 0 {
			frontier = append(frontier, t)
		}
	}
	effStart := func(t *Task) time.Duration {
		es := earliest[t.ID]
		if p := res.ThreadEnd[t.Thread]; p > es {
			es = p
		}
		return es
	}
	executed := 0
	for len(frontier) > 0 {
		u := sched.Pick(frontier, effStart)
		if u == nil {
			return nil, fmt.Errorf("core: scheduler returned no task from a frontier of %d", len(frontier))
		}
		found := false
		for i, t := range frontier {
			if t == u {
				frontier[i] = frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: scheduler picked task %v outside the frontier", u)
		}
		start := effStart(u)
		res.Start[u.ID] = start
		end := start + u.Duration + u.Gap
		res.ThreadEnd[u.Thread] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		executed++
		for _, c := range u.children {
			if end > earliest[c.ID] {
				earliest[c.ID] = end
			}
			ref[c.ID]--
			if ref[c.ID] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	scratch.frontier = frontier[:0]
	if executed != g.live {
		return nil, fmt.Errorf("core: simulated %d of %d tasks; graph has a cycle", executed, g.live)
	}
	return res, nil
}

// PredictIteration simulates the graph and returns the makespan — the
// predicted iteration time. It is a convenience wrapper for the common
// whole-graph question.
func (g *Graph) PredictIteration(opts ...SimOption) (time.Duration, error) {
	res, err := g.Simulate(opts...)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
