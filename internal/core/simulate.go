package core

import (
	"context"
	"fmt"
	"time"
)

// Scheduler picks the next task to dispatch from the execution frontier —
// the paper's overridable schedule() of Algorithm 1 (§4.4 "Schedule").
//
// Pick returns the index into frontier of the task to dispatch; the
// simulator removes the pick with an O(1) swap, so a custom policy costs
// one frontier scan per step, not two. The SchedContext exposes the
// effective state of the view the simulation runs over — a *Graph, an
// *Overlay or a structural *Patch — so one policy evaluates clone-free
// everywhere: read timings and priorities through ctx (ctx.Priority,
// ctx.Duration), never from raw Task fields, which hold baseline values
// under an overlay or patch. Implementations must be deterministic.
// Returning an index outside [0, len(frontier)) aborts the simulation
// with an error.
//
// Pre-TaskView schedulers implementing the old
// Pick(frontier, effStart) *Task shape wrap with AdaptScheduler.
type Scheduler interface {
	Pick(frontier []*Task, ctx *SchedContext) int
}

// SchedContext is the read surface a Scheduler picks through: the
// effective per-task attributes of the simulation's task view plus the
// evolving schedule state (earliest starts, per-thread progress). It is
// valid only for the duration of the Pick call that receives it.
type SchedContext struct {
	view      TaskView
	earliest  []time.Duration
	threadEnd map[ThreadID]time.Duration
}

// View returns the task view the simulation runs over: the *Graph
// itself, or the *Overlay/*Patch whose effective attributes the
// scheduler must read through.
func (c *SchedContext) View() TaskView { return c.view }

// EffStart returns the earliest time the task could begin given its
// completed dependencies and current thread progress.
func (c *SchedContext) EffStart(t *Task) time.Duration {
	es := c.earliest[t.ID]
	if p := c.threadEnd[t.Thread]; p > es {
		es = p
	}
	return es
}

// Duration returns the task's effective duration under the view.
func (c *SchedContext) Duration(t *Task) time.Duration { return c.view.Duration(t) }

// Gap returns the task's effective gap under the view.
func (c *SchedContext) Gap(t *Task) time.Duration { return c.view.Gap(t) }

// Priority returns the task's effective scheduling priority under the
// view — including priorities overlaid by a what-if, which Task.Priority
// cannot see.
func (c *SchedContext) Priority(t *Task) int { return c.view.Priority(t) }

// EarliestStart is the default scheduler: the frontier task with the
// earliest effective start wins; ties fall to higher priority, then lower
// task ID.
type EarliestStart struct{}

// Pick implements Scheduler.
func (EarliestStart) Pick(frontier []*Task, ctx *SchedContext) int {
	best := -1
	var bestT time.Duration
	var bestPrio int
	for i, t := range frontier {
		et := ctx.EffStart(t)
		switch {
		case best < 0, et < bestT:
			best, bestT, bestPrio = i, et, ctx.Priority(t)
		case et == bestT:
			if p := ctx.Priority(t); p > bestPrio || (p == bestPrio && t.ID < frontier[best].ID) {
				best, bestPrio = i, p
			}
		}
	}
	return best
}

// LegacyScheduler is the pre-TaskView scheduler contract: pick a task
// pointer given only an effective-start oracle. It cannot see overlaid
// priorities or effective timings — wrap it with AdaptScheduler to run
// it on the view-generic path, or migrate to Scheduler's
// Pick(frontier, ctx) int form.
type LegacyScheduler interface {
	Pick(frontier []*Task, effStart func(*Task) time.Duration) *Task
}

// AdaptScheduler wraps a LegacyScheduler as a view-generic Scheduler:
// the legacy pick runs with the context's EffStart and the returned
// task is located in the frontier. Because the wrapped policy reads raw
// Task fields, simulations reject it where those fields diverge from
// the effective view: an Overlay with priority edits (as before this
// shim existed), and a structural Patch with any timing or priority
// overlay (where the pre-view fallback materialized effective fields).
// Migrate field-reading policies to the native contract; policies that
// only use effStart keep working unchanged through the shim.
func AdaptScheduler(s LegacyScheduler) Scheduler { return &legacyScheduler{s: s} }

// legacyScheduler is AdaptScheduler's shim.
type legacyScheduler struct{ s LegacyScheduler }

func (l *legacyScheduler) Pick(frontier []*Task, ctx *SchedContext) int {
	t := l.s.Pick(frontier, ctx.EffStart)
	if t == nil {
		return -1
	}
	for i, f := range frontier {
		if f == t {
			return i
		}
	}
	return -1
}

// isLegacySched reports whether sched routes through the AdaptScheduler
// shim (and therefore reads raw Task fields).
func isLegacySched(s Scheduler) bool {
	_, ok := s.(*legacyScheduler)
	return ok
}

// customScheduler returns s unless it is nil or the default
// earliest-start policy (which stays on the heap fast path).
func customScheduler(s Scheduler) Scheduler {
	if s == nil {
		return nil
	}
	if _, isDefault := s.(EarliestStart); isDefault {
		return nil
	}
	return s
}

// SimResult is the outcome of one simulation.
type SimResult struct {
	// Makespan is the time from simulation start to the completion of
	// the last task (gaps included).
	Makespan time.Duration
	// Start is indexed by task ID and holds each task's simulated start
	// time. Its length is the graph's ID span (removed IDs stay zero).
	Start []time.Duration
	// ThreadEnd maps each thread to its final progress.
	ThreadEnd map[ThreadID]time.Duration

	// dur and gap hold the effective per-task timings of an overlay
	// simulation (empty for a plain Graph.Simulate, where the Task
	// fields are authoritative). TaskDuration/TaskGap/Finish read
	// through them so result consumers never see baseline timings for
	// an overlaid task.
	dur, gap []time.Duration

	// win holds the sliding-window state of a round-windowed simulation
	// (WithRoundWindow); nil for ordinary results. When set, Start is
	// empty and per-task reads route through the window.
	win *windowState
}

// TaskDuration returns the task duration the simulation used: the
// overlay's effective duration for an overlay simulation, the task's own
// Duration otherwise. On a windowed result the task must be within the
// retained window.
func (r *SimResult) TaskDuration(t *Task) time.Duration {
	if w := r.win; w != nil {
		if w.durRing == nil {
			return t.Duration
		}
		if t.ID < w.lo[w.retired] {
			w.retiredPanic("TaskDuration", t)
		}
		return w.durRing[t.ID%len(w.durRing)]
	}
	if len(r.dur) > t.ID {
		return r.dur[t.ID]
	}
	return t.Duration
}

// TaskGap returns the gap the simulation used for the task (see
// TaskDuration).
func (r *SimResult) TaskGap(t *Task) time.Duration {
	if w := r.win; w != nil {
		if w.gapRing == nil {
			return t.Gap
		}
		if t.ID < w.lo[w.retired] {
			w.retiredPanic("TaskGap", t)
		}
		return w.gapRing[t.ID%len(w.gapRing)]
	}
	if len(r.gap) > t.ID {
		return r.gap[t.ID]
	}
	return t.Gap
}

// Finish returns the simulated completion time of a task. On a windowed
// result the task must be within the retained window (use
// Summaries/RoundSpan for retired rounds).
func (r *SimResult) Finish(t *Task) time.Duration {
	if w := r.win; w != nil {
		start, ok := w.startOf(t.ID)
		if !ok {
			w.retiredPanic("Finish", t)
		}
		return start + r.TaskDuration(t)
	}
	return r.Start[t.ID] + r.TaskDuration(t)
}

// Reset clears the result to its zero state while keeping every backing
// array (and the ThreadEnd map) allocated, so a pooled result can be
// handed back to WithResultBuffer without re-allocating. A reset result
// reads as empty: no starts, no thread ends, no effective timings.
func (r *SimResult) Reset() {
	r.Makespan = 0
	r.Start = r.Start[:0]
	for k := range r.ThreadEnd {
		delete(r.ThreadEnd, k)
	}
	r.dur = r.dur[:0]
	r.gap = r.gap[:0]
	r.win = nil
}

// Clone returns a deep copy of the result: the copy shares no storage
// with the original, so one can keep a warm baseline result alive (for
// incremental re-simulation or later inspection) while the original's
// buffer is reused by the next simulation. Window state (rings,
// summaries) is deep-copied too.
func (r *SimResult) Clone() *SimResult {
	c := &SimResult{
		Makespan: r.Makespan,
		Start:    append([]time.Duration(nil), r.Start...),
		dur:      append([]time.Duration(nil), r.dur...),
		gap:      append([]time.Duration(nil), r.gap...),
	}
	if r.ThreadEnd != nil {
		c.ThreadEnd = make(map[ThreadID]time.Duration, len(r.ThreadEnd))
		for k, v := range r.ThreadEnd {
			c.ThreadEnd[k] = v
		}
	}
	if r.win != nil {
		w := *r.win
		w.lo = append([]int(nil), r.win.lo...)
		w.hi = append([]int(nil), r.win.hi...)
		w.left = append([]int(nil), r.win.left...)
		w.rEnd = append([]time.Duration(nil), r.win.rEnd...)
		w.rThreads = make([]map[ThreadID]time.Duration, len(r.win.rThreads))
		for i, m := range r.win.rThreads {
			if m == nil {
				continue
			}
			cm := make(map[ThreadID]time.Duration, len(m))
			for k, v := range m {
				cm[k] = v
			}
			w.rThreads[i] = cm
		}
		w.ring = append([]time.Duration(nil), r.win.ring...)
		w.durRing = append([]time.Duration(nil), r.win.durRing...)
		w.gapRing = append([]time.Duration(nil), r.win.gapRing...)
		w.summaries = make([]RoundSummary, len(r.win.summaries))
		for i, s := range r.win.summaries {
			cs := s
			if s.ThreadEnd != nil {
				cs.ThreadEnd = make(map[ThreadID]time.Duration, len(s.ThreadEnd))
				for k, v := range s.ThreadEnd {
					cs.ThreadEnd[k] = v
				}
			}
			w.summaries[i] = cs
		}
		c.win = &w
	}
	return c
}

// newResult readies result storage for an ID span of n, reusing buf's
// backing arrays when one was supplied via WithResultBuffer.
func newResult(buf *SimResult, n, threads int) *SimResult {
	if buf == nil {
		return &SimResult{
			Start:     make([]time.Duration, n),
			ThreadEnd: make(map[ThreadID]time.Duration, threads),
		}
	}
	buf.Makespan = 0
	if cap(buf.Start) < n {
		buf.Start = make([]time.Duration, n)
	} else {
		buf.Start = buf.Start[:n]
		for i := range buf.Start {
			buf.Start[i] = 0
		}
	}
	if buf.ThreadEnd == nil {
		buf.ThreadEnd = make(map[ThreadID]time.Duration, threads)
	} else {
		for k := range buf.ThreadEnd {
			delete(buf.ThreadEnd, k)
		}
	}
	// Keep the capacity, drop the content: a plain simulation must not
	// inherit a previous overlay simulation's timings (or a previous
	// windowed simulation's window).
	buf.dur = buf.dur[:0]
	buf.gap = buf.gap[:0]
	buf.win = nil
	return buf
}

// SimScratch holds the reusable per-simulation working set: the
// reference-count and earliest-start arrays plus the frontier storage.
// A scratch may be reused across any number of sequential simulations of
// graphs of any size (it grows as needed), which removes almost all
// per-simulation allocation — the property the sweep worker pool relies
// on. A scratch must not be shared by concurrent simulations.
type SimScratch struct {
	ref        []int
	earliest   []time.Duration
	heap       []heapEntry
	frontier   []*Task
	prio       []int           // effective priorities for overlay simulations
	threadEnds []time.Duration // per-thread-ordinal progress for overlay simulations
	// effDur and effGap hold the effective timings of a *windowed*
	// overlay/patch simulation: transient loop state, so the retained
	// result stays O(window) while timing reads stay O(1).
	effDur, effGap []time.Duration
}

// NewSimScratch returns an empty scratch, ready for WithScratch.
func NewSimScratch() *SimScratch { return &SimScratch{} }

// ensure sizes the arrays for an ID span of n.
func (s *SimScratch) ensure(n int) {
	if cap(s.ref) < n {
		s.ref = make([]int, n)
		s.earliest = make([]time.Duration, n)
	}
	s.ref = s.ref[:n]
	s.earliest = s.earliest[:n]
	s.heap = s.heap[:0]
	s.frontier = s.frontier[:0]
}

// heapEntry is one frontier task with the effective-start key it was
// inserted (or re-inserted) with. Keys only grow as the simulation
// progresses, so a popped entry whose key is stale is re-pushed with its
// current effective start (lazy update); an entry whose key is current is
// the true minimum under the (start, -priority, ID) order — exactly the
// task EarliestStart's linear scan would have picked. The entry carries
// the effective priority so overlay simulations can tie-break on
// overlaid priorities without touching the shared baseline tasks.
type heapEntry struct {
	key  time.Duration
	prio int
	t    *Task
}

func heapLess(a, b heapEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.t.ID < b.t.ID
}

func heapPush(h []heapEntry, e heapEntry) []heapEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPop(h []heapEntry) (heapEntry, []heapEntry) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && heapLess(h[l], h[least]) {
			least = l
		}
		if r < n && heapLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top, h
}

// simOptions collects Simulate options.
type simOptions struct {
	scheduler Scheduler
	scratch   *SimScratch
	result    *SimResult
	// ctx, when non-nil, is checked on entry and every
	// cancelCheckInterval dispatches; a canceled or expired context
	// aborts the simulation with a typed ErrCanceled /
	// ErrDeadlineExceeded error.
	ctx context.Context
	// execOrder, when non-nil, receives every task ID in execution
	// (pop) order — a valid topological order of the effective edge set.
	// IncrementalSim records the warm schedule through it.
	execOrder *[]int32
	// window, when positive, enables round-windowed simulation
	// (WithRoundWindow): retired rounds keep only a RoundSummary while
	// a sliding window of that many rounds keeps full per-task starts.
	window int
}

// cancelCheckInterval is how many task dispatches pass between context
// polls — the cooperative-cancellation granularity of every simulate
// path. At ~10⁷ dispatches/s a poll every 1024 tasks bounds the
// cancellation latency to well under a millisecond while keeping the
// hot loop's overhead unmeasurable (one predictable nil check per
// dispatch when no context is set).
const cancelCheckInterval = 1024

// ctxCanceled reports the context's error if it is non-nil and done —
// the entry check every simulate path runs before touching scratch, so
// a pre-canceled context returns promptly and typed.
func ctxCanceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return ContextError(cerr)
	}
	return nil
}

// withExecOrder records the execution order of a default-policy
// simulation into ord (appending; the caller truncates). Internal:
// only the incremental simulator's warm build uses it.
func withExecOrder(ord *[]int32) SimOption {
	return func(o *simOptions) { o.execOrder = ord }
}

// SimOption configures Simulate.
type SimOption func(*simOptions)

// WithScheduler overrides the default earliest-start scheduling policy
// (used, e.g., to model P3's priority queues or vDNN's prefetch policy).
func WithScheduler(s Scheduler) SimOption {
	return func(o *simOptions) { o.scheduler = s }
}

// WithContext makes the simulation cooperatively cancellable: the
// context is checked on entry and every cancelCheckInterval (1024)
// task dispatches, on every simulate path (Graph, Overlay, Patch,
// scheduled, incremental). A canceled context aborts with an error
// wrapping ErrCanceled; an expired deadline wraps ErrDeadlineExceeded —
// both also match the originating context error under errors.Is. An
// aborted simulation leaves the caller's scratch and result buffer
// valid for reuse (their contents are unspecified).
func WithContext(ctx context.Context) SimOption {
	return func(o *simOptions) { o.ctx = ctx }
}

// WithScratch reuses a caller-owned working set across simulations,
// eliminating per-simulation allocation of the frontier and bookkeeping
// arrays. The scratch must not be used by two simulations concurrently.
func WithScratch(s *SimScratch) SimOption {
	return func(o *simOptions) { o.scratch = s }
}

// WithResultBuffer fills (and returns) the caller-owned SimResult
// instead of allocating a fresh one, reusing its backing arrays.
//
// Discard semantics: the previous contents of buf are discarded
// unconditionally — Makespan is zeroed, Start is resized and cleared to
// the new view's ID span, ThreadEnd's entries are deleted (the map
// itself is kept), and any effective timings from an earlier overlay
// simulation are dropped so a plain Graph simulation never inherits
// them. Nothing of the earlier result survives, so a caller that reuses
// one buffer across simulations must be fully done with the earlier
// result — copy what it needs first (SimResult.Clone) or pool distinct
// buffers (SimResult.Reset). The sweep worker pool relies on this to
// make steady-state scenario evaluation allocation-free when results
// are not retained.
func WithResultBuffer(buf *SimResult) SimOption {
	return func(o *simOptions) { o.result = buf }
}

// SchedulerOf resolves the custom scheduling policy configured by the
// options, or nil when they select the default earliest-start policy.
// Dispatch layers (the sweep's tier selection) use it to decide whether
// a scenario is eligible for schedules that only model the default
// policy, such as the incremental tier.
func SchedulerOf(opts ...SimOption) Scheduler {
	var o simOptions
	for _, fn := range opts {
		fn(&o)
	}
	return customScheduler(o.scheduler)
}

// Simulate executes Algorithm 1 of the paper: a frontier-based replay that
// dispatches each task to its execution thread once its dependencies
// complete, advancing per-thread progress by duration plus gap, and
// propagating earliest-start times along dependency edges.
//
// Under the default earliest-start policy the frontier is a binary heap
// with lazily updated keys; a custom Scheduler sees the frontier as a
// plain slice, preserving the overridable schedule() contract.
func (g *Graph) Simulate(opts ...SimOption) (*SimResult, error) {
	o := simOptions{}
	for _, fn := range opts {
		fn(&o)
	}
	if err := ctxCanceled(o.ctx); err != nil {
		return nil, err
	}
	scratch := o.scratch
	if scratch == nil {
		scratch = &SimScratch{}
	}
	n := len(g.tasks)
	scratch.ensure(n)

	resN := n
	if o.window > 0 {
		resN = 0 // windowed: starts live in the window rings, not Start
	}
	res := newResult(o.result, resN, len(g.threads))
	if o.window > 0 {
		win, err := newWindowState(g, o.window, false)
		if err != nil {
			return nil, err
		}
		res.win = win
	}
	if s := customScheduler(o.scheduler); s != nil {
		return simulateScheduled(g, s, scratch, res, o.ctx)
	}
	ref, earliest := scratch.ref, scratch.earliest
	for id, t := range g.tasks {
		if t == nil {
			continue
		}
		ref[id] = len(t.parents)
		earliest[id] = 0
	}

	h := scratch.heap
	for _, t := range g.tasks {
		if t != nil && len(t.parents) == 0 {
			h = heapPush(h, heapEntry{0, t.Priority, t})
		}
	}
	executed := 0
	for len(h) > 0 {
		var e heapEntry
		e, h = heapPop(h)
		u := e.t
		start := earliest[u.ID]
		if p := res.ThreadEnd[u.Thread]; p > start {
			start = p
		}
		if start > e.key {
			// Stale key: thread progress moved past the insertion-time
			// estimate. Re-insert with the current effective start.
			h = heapPush(h, heapEntry{start, u.Priority, u})
			continue
		}
		end := start + u.Duration + u.Gap
		if res.win == nil {
			res.Start[u.ID] = start
		} else {
			res.win.record(u, start, u.Duration, u.Gap)
		}
		res.ThreadEnd[u.Thread] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		executed++
		if o.ctx != nil && executed%cancelCheckInterval == 0 {
			if cerr := o.ctx.Err(); cerr != nil {
				scratch.heap = h[:0]
				return nil, ContextError(cerr)
			}
		}
		if o.execOrder != nil {
			*o.execOrder = append(*o.execOrder, int32(u.ID))
		}
		for _, c := range u.children {
			if end > earliest[c.ID] {
				earliest[c.ID] = end
			}
			ref[c.ID]--
			if ref[c.ID] == 0 {
				key := earliest[c.ID]
				if p := res.ThreadEnd[c.Thread]; p > key {
					key = p
				}
				h = heapPush(h, heapEntry{key, c.Priority, c})
			}
		}
	}
	scratch.heap = h[:0]
	if executed != g.live {
		// Frontier starvation: the effective graph cannot be fully
		// ordered. Unexecuted tasks are exactly those whose reference
		// count never reached zero.
		var blocked []*Task
		for id, t := range g.tasks {
			if t != nil && ref[id] > 0 {
				blocked = append(blocked, t)
			}
		}
		return nil, newStallError(executed, g.live, blocked)
	}
	return res, nil
}

// simulateScheduled is the slice-frontier path for custom schedulers,
// generic over the task view: the scheduler inspects every frontier
// task through the SchedContext, which reads the view's effective
// attributes — so the same policy runs directly over a *Graph, an
// *Overlay or a structural *Patch, with zero clones and bit-identical
// results to materializing the view and simulating that. The caller has
// sized scratch (scratch.ensure) and built res for the view's ID span;
// the scratch's frontier storage is reset on every exit path, error or
// not, so a reused SimScratch never leaks stale frontier entries into
// the next simulation. A non-nil ctx is polled every
// cancelCheckInterval dispatches (the caller has run the entry check).
func simulateScheduled(v schedView, sched Scheduler, scratch *SimScratch, res *SimResult, ctx context.Context) (*SimResult, error) {
	ref, earliest := scratch.ref, scratch.earliest
	for i := range ref {
		ref[i] = 0
		earliest[i] = 0
	}
	// Reference counts over the effective edge set, by one pass of
	// live-child iteration (cheaper than enumerating parents on a patch).
	// incRef is hoisted so the pass allocates one closure, not one per
	// task.
	live := 0
	incRef := func(c *Task) { ref[c.ID]++ }
	v.eachTask(func(t *Task) {
		live++
		v.eachChild(t, incRef)
	})
	frontier := scratch.frontier
	v.eachTask(func(t *Task) {
		if ref[t.ID] == 0 {
			frontier = append(frontier, t)
		}
	})
	sctx := &SchedContext{view: v, earliest: earliest, threadEnd: res.ThreadEnd}
	executed := 0
	// One relax closure for the whole run (a per-step literal would
	// allocate once per executed task); end is threaded through a local.
	var end time.Duration
	relax := func(c *Task) {
		if end > earliest[c.ID] {
			earliest[c.ID] = end
		}
		ref[c.ID]--
		if ref[c.ID] == 0 {
			frontier = append(frontier, c)
		}
	}
	for len(frontier) > 0 {
		i := sched.Pick(frontier, sctx)
		if i < 0 || i >= len(frontier) {
			scratch.frontier = frontier[:0]
			return nil, fmt.Errorf("core: scheduler picked frontier index %d of %d (a legacy adapter returns -1 for a nil or out-of-frontier task)", i, len(frontier))
		}
		u := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		start := sctx.EffStart(u)
		d, gp := v.Duration(u), v.Gap(u)
		end = start + d + gp
		if res.win == nil {
			res.Start[u.ID] = start
		} else {
			res.win.record(u, start, d, gp)
		}
		res.ThreadEnd[u.Thread] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		executed++
		if ctx != nil && executed%cancelCheckInterval == 0 {
			if cerr := ctx.Err(); cerr != nil {
				scratch.frontier = frontier[:0]
				return nil, ContextError(cerr)
			}
		}
		v.eachChild(u, relax)
	}
	scratch.frontier = frontier[:0]
	if executed != live {
		// Frontier starvation: collect the tasks whose reference count
		// never reached zero — the cycle members and their downstream.
		var blocked []*Task
		v.eachTask(func(t *Task) {
			if ref[t.ID] > 0 {
				blocked = append(blocked, t)
			}
		})
		return nil, newStallError(executed, live, blocked)
	}
	return res, nil
}

// PredictIteration simulates the graph and returns the makespan — the
// predicted iteration time. It is a convenience wrapper for the common
// whole-graph question.
func (g *Graph) PredictIteration(opts ...SimOption) (time.Duration, error) {
	res, err := g.Simulate(opts...)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
