package core

import (
	"fmt"
	"time"
)

// Scheduler picks the next task to dispatch from the execution frontier —
// the paper's overridable schedule() of Algorithm 1 (§4.4 "Schedule").
// effStart returns the earliest time the task could begin given current
// thread progress. Implementations must be deterministic.
type Scheduler interface {
	Pick(frontier []*Task, effStart func(*Task) time.Duration) *Task
}

// EarliestStart is the default scheduler: the frontier task with the
// earliest effective start wins; ties fall to higher priority, then lower
// task ID.
type EarliestStart struct{}

// Pick implements Scheduler.
func (EarliestStart) Pick(frontier []*Task, effStart func(*Task) time.Duration) *Task {
	var best *Task
	var bestT time.Duration
	for _, t := range frontier {
		et := effStart(t)
		switch {
		case best == nil, et < bestT:
			best, bestT = t, et
		case et == bestT:
			if t.Priority > best.Priority || (t.Priority == best.Priority && t.ID < best.ID) {
				best = t
			}
		}
	}
	return best
}

// SimResult is the outcome of one simulation.
type SimResult struct {
	// Makespan is the time from simulation start to the completion of
	// the last task (gaps included).
	Makespan time.Duration
	// Start maps task ID to simulated start time.
	Start map[int]time.Duration
	// ThreadEnd maps each thread to its final progress.
	ThreadEnd map[ThreadID]time.Duration
}

// Finish returns the simulated completion time of a task.
func (r *SimResult) Finish(t *Task) time.Duration {
	return r.Start[t.ID] + t.Duration
}

// simOptions collects Simulate options.
type simOptions struct {
	scheduler Scheduler
}

// SimOption configures Simulate.
type SimOption func(*simOptions)

// WithScheduler overrides the default earliest-start scheduling policy
// (used, e.g., to model P3's priority queues or vDNN's prefetch policy).
func WithScheduler(s Scheduler) SimOption {
	return func(o *simOptions) { o.scheduler = s }
}

// Simulate executes Algorithm 1 of the paper: a frontier-based replay that
// dispatches each task to its execution thread once its dependencies
// complete, advancing per-thread progress by duration plus gap, and
// propagating earliest-start times along dependency edges.
func (g *Graph) Simulate(opts ...SimOption) (*SimResult, error) {
	o := simOptions{scheduler: EarliestStart{}}
	for _, fn := range opts {
		fn(&o)
	}

	res := &SimResult{
		Start:     make(map[int]time.Duration, len(g.tasks)),
		ThreadEnd: make(map[ThreadID]time.Duration),
	}
	ref := make(map[int]int, len(g.tasks))
	earliest := make(map[int]time.Duration, len(g.tasks))
	var frontier []*Task
	for _, id := range g.order {
		t, ok := g.tasks[id]
		if !ok {
			continue
		}
		ref[id] = len(t.parents)
		if ref[id] == 0 {
			frontier = append(frontier, t)
		}
	}

	effStart := func(t *Task) time.Duration {
		es := earliest[t.ID]
		if p := res.ThreadEnd[t.Thread]; p > es {
			es = p
		}
		return es
	}

	executed := 0
	for len(frontier) > 0 {
		u := o.scheduler.Pick(frontier, effStart)
		if u == nil {
			return nil, fmt.Errorf("core: scheduler returned no task from a frontier of %d", len(frontier))
		}
		// Remove u from the frontier.
		found := false
		for i, t := range frontier {
			if t == u {
				frontier[i] = frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: scheduler picked task %v outside the frontier", u)
		}
		start := effStart(u)
		res.Start[u.ID] = start
		end := start + u.Duration + u.Gap
		res.ThreadEnd[u.Thread] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		executed++
		for _, c := range u.children {
			if end > earliest[c.ID] {
				earliest[c.ID] = end
			}
			ref[c.ID]--
			if ref[c.ID] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	if executed != len(g.tasks) {
		return nil, fmt.Errorf("core: simulated %d of %d tasks; graph has a cycle", executed, len(g.tasks))
	}
	return res, nil
}

// PredictIteration simulates the graph and returns the makespan — the
// predicted iteration time. It is a convenience wrapper for the common
// whole-graph question.
func (g *Graph) PredictIteration(opts ...SimOption) (time.Duration, error) {
	res, err := g.Simulate(opts...)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
