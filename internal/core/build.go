package core

import (
	"fmt"
	"sort"
	"time"

	"daydream/internal/trace"
)

// minSyncResidual is the floor on a synchronization task's own duration
// once its waiting time has been converted into dependency edges.
const minSyncResidual = 2 * time.Microsecond

// Build constructs the kernel-granularity dependency graph from a trace,
// adding the paper's five dependency types (§4.2.2):
//
//  1. sequential order of CPU tasks in the same thread,
//  2. sequential order of GPU tasks in the same CUDA stream,
//  3. correlation from CUDA API calls to the GPU activities they launch,
//  4. CUDA synchronization (and blocking device-to-host copies): an edge
//     from the last GPU task enqueued before the call to the call, and
//  5. communication: an edge from the last compute task that precedes a
//     communication primitive (traces of distributed runs only; what-if
//     transformations insert their own communication tasks with precise
//     dependencies).
//
// Synchronization-flavoured CPU tasks keep only the residual duration that
// remains after their traced waiting time is explained by dependency
// edges; otherwise a what-if that shrinks upstream GPU work could never
// shrink the overall runtime.
func Build(tr *trace.Trace) (*Graph, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("core: build: %w", err)
	}
	g := NewGraph()
	g.Meta = Metadata{
		Model:         tr.Model,
		Device:        tr.Device,
		Framework:     tr.Framework,
		Precision:     tr.Precision,
		BatchSize:     tr.BatchSize,
		IterationTime: tr.IterationTime,
		Gradients:     append([]trace.GradientInfo(nil), tr.Gradients...),
	}

	// Work over a time-sorted copy of the activities.
	acts := append([]trace.Activity(nil), tr.Activities...)
	sort.SliceStable(acts, func(i, j int) bool {
		if acts[i].Start != acts[j].Start {
			return acts[i].Start < acts[j].Start
		}
		return acts[i].ID < acts[j].ID
	})

	tasks := make([]*Task, len(acts))
	byCorrAPI := make(map[uint64]*Task)
	byCorrGPU := make(map[uint64]*Task)
	for i := range acts {
		a := &acts[i]
		tid, err := threadOf(a)
		if err != nil {
			return nil, err
		}
		t := g.NewTask(a.Name, a.Kind, tid, a.Duration)
		t.TracedStart = a.Start
		t.TracedDuration = a.Duration
		t.Correlation = a.Correlation
		t.Bytes = a.Bytes
		t.Dir = a.Dir
		tasks[i] = t
		if a.Correlation != 0 {
			if a.Kind.OnCPU() {
				byCorrAPI[a.Correlation] = t
			} else {
				byCorrGPU[a.Correlation] = t
			}
		}
	}

	// Dependency types 1, 2 and channel order: append each task to its
	// thread sequence (the input is time-sorted, so per-thread order is
	// trace order). CPU gaps are computed against the next CPU task on
	// the same thread.
	lastOnThread := make(map[ThreadID]*Task)
	for _, t := range tasks {
		if prev := lastOnThread[t.Thread]; prev != nil && t.Thread.Kind == CPUThread {
			gap := t.TracedStart - prev.End()
			if gap > 0 {
				prev.Gap = gap
			}
		}
		g.AppendTask(t)
		lastOnThread[t.Thread] = t
	}

	// Dependency type 3: correlation edges.
	for corr, api := range byCorrAPI {
		gpu := byCorrGPU[corr]
		if gpu == nil {
			return nil, fmt.Errorf("core: correlation %d has no GPU record", corr)
		}
		if err := g.Correlate(api, gpu); err != nil {
			return nil, err
		}
	}

	// Dependency types 4 and 5: sweep in time order tracking, per
	// stream, the most recently enqueued GPU task (a GPU task is
	// "enqueued" when its correlated API record appears; uncorrelated
	// GPU tasks count at their own start).
	lastEnqueued := make(map[ThreadID]*Task)
	var lastGPU *Task
	for _, t := range tasks {
		// A blocking call waits for the GPU work enqueued strictly
		// before it, so resolve its edges before registering its own
		// correlated copy.
		if isBlockingCall(t) {
			var waited time.Duration
			for _, gpu := range lastEnqueued {
				g.addEdge(gpu, t, DepSync)
				if gpu.End() > waited {
					waited = gpu.End()
				}
			}
			t.Duration = syncResidual(t, waited)
		} else if t.Kind == trace.KindComm && lastGPU != nil {
			g.addEdge(lastGPU, t, DepComm)
		}
		switch {
		case t.OnCPU() && t.Correlation != 0:
			if gpu := t.peer; gpu != nil {
				lastEnqueued[gpu.Thread] = gpu
				lastGPU = gpu
			}
		case t.OnGPU() && t.Correlation == 0:
			lastEnqueued[t.Thread] = t
			lastGPU = t
		}
	}

	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// threadOf maps an activity to its execution thread.
func threadOf(a *trace.Activity) (ThreadID, error) {
	switch {
	case a.Kind.OnCPU():
		return CPU(a.Thread), nil
	case a.Kind.OnGPU():
		return Stream(a.Stream), nil
	case a.Kind.OnChannel():
		return Channel(a.Channel), nil
	}
	return ThreadID{}, fmt.Errorf("core: activity %d (%s) of kind %s has no execution thread", a.ID, a.Name, a.Kind)
}

// isBlockingCall reports whether a CPU task blocks until previously
// enqueued GPU work completes: CUDA synchronizations and device-to-host
// copies (§4.2.2).
func isBlockingCall(t *Task) bool {
	if !t.OnCPU() {
		return false
	}
	return t.Kind == trace.KindSync || (t.Kind == trace.KindMemcpyAPI && t.Dir == trace.MemcpyD2H)
}

// syncResidual converts a blocking call's traced duration into the
// residual that remains once waiting is explained by edges: the time from
// the waited-for GPU completion (or the call's start, whichever is later)
// to the call's traced end.
func syncResidual(t *Task, waited time.Duration) time.Duration {
	start := t.TracedStart
	if waited > start {
		start = waited
	}
	res := t.End() - start
	if res < minSyncResidual {
		res = minSyncResidual
	}
	return res
}
