package core

import (
	"sync"
	"testing"

	"daydream/internal/trace"
)

// naiveLastBwdGPU is the pre-index linear scan, kept as the reference
// the index must reproduce exactly (including tie-breaking on equal
// traced starts).
func naiveLastBwdGPU(g *Graph, layerIndex int) *Task {
	var best *Task
	for _, t := range g.Tasks() {
		if !t.OnGPU() || !t.HasLayer || t.Phase != trace.Backward || t.LayerIndex != layerIndex {
			continue
		}
		if best == nil || t.TracedStart > best.TracedStart {
			best = t
		}
	}
	return best
}

func naiveFirstFwdGPU(g *Graph, layerIndex, round int) *Task {
	var best *Task
	for _, t := range g.Tasks() {
		if !t.OnGPU() || !t.HasLayer || t.Phase != trace.Forward ||
			t.LayerIndex != layerIndex || t.Round != round {
			continue
		}
		if best == nil || t.TracedStart < best.TracedStart {
			best = t
		}
	}
	return best
}

func naiveEarliestWU(g *Graph) *Task {
	var best *Task
	for _, t := range g.Tasks() {
		if !t.HasLayer || t.Phase != trace.WeightUpdate {
			continue
		}
		if best == nil || t.TracedStart < best.TracedStart {
			best = t
		}
	}
	return best
}

func TestLayerPhaseIndexMatchesNaiveScans(t *testing.T) {
	g := modelGraph(t, "resnet50")
	ix := g.LayerPhaseIndex()
	if ix.Layers() == 0 {
		t.Fatal("index found no layers on a mapped graph")
	}
	for li := -1; li <= ix.Layers(); li++ {
		if got, want := ix.LastBackwardGPUAnyRound(li), naiveLastBwdGPU(g, li); got != want {
			t.Fatalf("LastBackwardGPUAnyRound(%d) = %v, naive scan = %v", li, got, want)
		}
		for r := 0; r < ix.Rounds(); r++ {
			if got, want := ix.FirstForwardGPU(li, r), naiveFirstFwdGPU(g, li, r); got != want {
				t.Fatalf("FirstForwardGPU(%d,%d) = %v, naive scan = %v", li, r, got, want)
			}
		}
	}
	if got, want := ix.EarliestWeightUpdate(), naiveEarliestWU(g); got != want {
		t.Fatalf("EarliestWeightUpdate = %v, naive scan = %v", got, want)
	}
	// Cached GPU lists agree with Select.
	if got, want := len(ix.GPUTasks()), len(g.Select(OnGPUPred)); got != want {
		t.Fatalf("GPUTasks: %d entries, Select: %d", got, want)
	}
	wu := g.Select(And(OnGPUPred, InPhase(trace.WeightUpdate)))
	if got := ix.WeightUpdateGPUTasks(); len(got) != len(wu) {
		t.Fatalf("WeightUpdateGPUTasks: %d entries, Select: %d", len(got), len(wu))
	} else {
		for i := range wu {
			if got[i] != wu[i] {
				t.Fatalf("WeightUpdateGPUTasks[%d] = %v, Select = %v", i, got[i], wu[i])
			}
		}
	}
}

func TestLayerPhaseIndexRepeatedGraphRounds(t *testing.T) {
	g := modelGraph(t, "resnet50")
	rep, err := g.Repeat(3)
	if err != nil {
		t.Fatal(err)
	}
	ix := rep.LayerPhaseIndex()
	if ix.Rounds() != 3 {
		t.Fatalf("Rounds = %d, want 3", ix.Rounds())
	}
	for li := 0; li < ix.Layers(); li++ {
		for r := 0; r < 3; r++ {
			if got, want := ix.FirstForwardGPU(li, r), naiveFirstFwdGPU(rep, li, r); got != want {
				t.Fatalf("FirstForwardGPU(%d,%d) = %v, naive = %v", li, r, got, want)
			}
		}
	}
}

func TestLayerPhaseIndexMemoAndInvalidation(t *testing.T) {
	g := modelGraph(t, "resnet50")
	ix1 := g.LayerPhaseIndex()
	if ix2 := g.LayerPhaseIndex(); ix2 != ix1 {
		t.Fatal("second call did not return the memoized index")
	}
	// Structural mutation invalidates.
	nt := g.NewTask("extra", trace.KindKernel, Stream(7), 1)
	g.AppendTask(nt)
	ix3 := g.LayerPhaseIndex()
	if ix3 == ix1 {
		t.Fatal("NewTask did not invalidate the memoized index")
	}
	g.Remove(nt)
	if ix4 := g.LayerPhaseIndex(); ix4 == ix3 {
		t.Fatal("Remove did not invalidate the memoized index")
	}
	// A clone must not inherit the parent's memo (its index would point
	// at the parent's tasks).
	c := g.Clone()
	cix := c.LayerPhaseIndex()
	if cix == g.LayerPhaseIndex() {
		t.Fatal("clone shares the parent's index")
	}
	if got := cix.EarliestWeightUpdate(); got != nil && c.Task(got.ID) != got {
		t.Fatal("clone's index points at tasks outside the clone")
	}
}

func TestLayerPhaseIndexConcurrentBuild(t *testing.T) {
	g := modelGraph(t, "resnet50")
	var wg sync.WaitGroup
	indexes := make([]*LayerPhaseIndex, 8)
	for i := range indexes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			indexes[i] = g.LayerPhaseIndex()
		}(i)
	}
	wg.Wait()
	want := naiveEarliestWU(g)
	for i, ix := range indexes {
		if ix == nil {
			t.Fatalf("goroutine %d got nil index", i)
		}
		if ix.EarliestWeightUpdate() != want {
			t.Fatalf("goroutine %d: EarliestWeightUpdate mismatch", i)
		}
	}
}

// TestGPUTasksMatching checks the memoized substring match against the
// naive predicate scan, the shared-slice identity of a memo hit, and
// concurrent lookups under varied substrings.
func TestGPUTasksMatching(t *testing.T) {
	g := modelGraph(t, "resnet50")
	ix := g.LayerPhaseIndex()

	subs := []string{"conv", "sgemm", "", "no-such-kernel-name"}
	for _, sub := range subs {
		got := ix.GPUTasksMatching(sub)
		match := NameContains(sub)
		var want []*Task
		for _, u := range ix.GPUTasks() {
			if match(u) {
				want = append(want, u)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("GPUTasksMatching(%q): %d tasks, naive scan found %d", sub, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("GPUTasksMatching(%q): task %d differs from naive scan", sub, i)
			}
		}
		// A repeat lookup must serve the memoized slice, not rescan.
		again := ix.GPUTasksMatching(sub)
		if len(again) > 0 && &again[0] != &got[0] {
			t.Fatalf("GPUTasksMatching(%q): repeat lookup rebuilt the slice", sub)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub := subs[(w+i)%len(subs)]
				if got := ix.GPUTasksMatching(sub); len(got) != len(ix.GPUTasksMatching(sub)) {
					t.Errorf("concurrent GPUTasksMatching(%q) disagreed with itself", sub)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
