package core

import (
	"fmt"
	"testing"
	"time"

	"daydream/internal/trace"
)

// patchTestGraph builds a CPU chain launching a GPU chain with a couple
// of cross edges, enough structure for structural deltas to bite.
func patchTestGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph()
	var kernels []*Task
	for i := 0; i < n; i++ {
		launch := g.NewTask("cudaLaunchKernel", trace.KindLaunch, CPU(1), 2*time.Microsecond)
		g.AppendTask(launch)
		kern := g.NewTask(fmt.Sprintf("k%d", i), trace.KindKernel, Stream(7), time.Duration(10+i)*time.Microsecond)
		g.AppendTask(kern)
		if err := g.Correlate(launch, kern); err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, kern)
	}
	// A sync edge back to the CPU from the middle kernel.
	if n >= 3 {
		sync := g.NewTask("cudaStreamSynchronize", trace.KindSync, CPU(1), time.Microsecond)
		g.AppendTask(sync)
		if err := g.AddDependency(kernels[n/2], sync, DepSync); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// applyBoth runs the same structural edit script against a private
// clone (through the Graph primitives) and against a patch (through the
// Patch primitives), then asserts bit-identical simulations and a
// bit-identical materialization.
func applyBoth(t *testing.T, g *Graph, edit func(t *testing.T, ed interface {
	NewTask(name string, kind trace.Kind, thread ThreadID, dur time.Duration) *Task
	AppendTask(*Task)
	AddDependency(from, to *Task, kind DepKind) error
}, tasks func(int) *Task)) {
	t.Helper()
	c := g.Clone()
	edit(t, c, func(id int) *Task { return c.Task(id) })
	p := NewPatch(g)
	edit(t, p, func(id int) *Task { return g.Task(id) })
	assertPatchMatchesGraph(t, p, c)
}

// assertPatchMatchesGraph checks the patch's simulation and
// materialization against an explicitly mutated reference graph.
func assertPatchMatchesGraph(t *testing.T, p *Patch, want *Graph) {
	t.Helper()
	wres, err := want.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	gres, err := p.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if gres.Makespan != wres.Makespan {
		t.Fatalf("makespan: patch %v, graph %v", gres.Makespan, wres.Makespan)
	}
	if p.IDSpan() != want.IDSpan() {
		t.Fatalf("ID span: patch %d, graph %d", p.IDSpan(), want.IDSpan())
	}
	if p.NumTasks() != want.NumTasks() {
		t.Fatalf("task count: patch %d, graph %d", p.NumTasks(), want.NumTasks())
	}
	for id := 0; id < want.IDSpan(); id++ {
		if (want.Task(id) == nil) != (p.Task(id) == nil) {
			t.Fatalf("task %d liveness: patch %v, graph %v", id, p.Task(id), want.Task(id))
		}
		if want.Task(id) == nil {
			continue
		}
		if gres.Start[id] != wres.Start[id] {
			t.Fatalf("task %d start: patch %v, graph %v", id, gres.Start[id], wres.Start[id])
		}
	}
	m, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	mres, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if mres.Makespan != wres.Makespan {
		t.Fatalf("materialized makespan: %v, graph %v", mres.Makespan, wres.Makespan)
	}
	if m.NumEdges() != want.NumEdges() {
		t.Fatalf("materialized edges: %d, graph %d", m.NumEdges(), want.NumEdges())
	}
}

func TestPatchAppendAndDependencies(t *testing.T) {
	g := patchTestGraph(t, 5)
	applyBoth(t, g, func(t *testing.T, ed interface {
		NewTask(name string, kind trace.Kind, thread ThreadID, dur time.Duration) *Task
		AppendTask(*Task)
		AddDependency(from, to *Task, kind DepKind) error
	}, task func(int) *Task) {
		// Two comm tasks on a fresh channel, serialized, gated by
		// kernels, feeding the sync task.
		a := ed.NewTask("allreduce-a", trace.KindComm, Channel("nccl"), 50*time.Microsecond)
		ed.AppendTask(a)
		b := ed.NewTask("allreduce-b", trace.KindComm, Channel("nccl"), 30*time.Microsecond)
		ed.AppendTask(b)
		if err := ed.AddDependency(task(1), a, DepComm); err != nil {
			t.Fatal(err)
		}
		if err := ed.AddDependency(task(3), b, DepComm); err != nil {
			t.Fatal(err)
		}
		if err := ed.AddDependency(a, task(10), DepComm); err != nil {
			t.Fatal(err)
		}
		// Duplicate edges are silently ignored on both surfaces.
		if err := ed.AddDependency(task(1), a, DepCustom); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPatchRemoveTaskMatchesGraphRemove(t *testing.T) {
	for _, ids := range [][]int{
		{3},          // middle kernel (has sync child)
		{1, 3, 5},    // several kernels, front to back
		{5, 3, 1},    // same, back to front
		{0, 2, 4, 6}, // every launch: exercises peer-less removal chains
	} {
		ids := ids
		t.Run(fmt.Sprintf("%v", ids), func(t *testing.T) {
			g := patchTestGraph(t, 5)
			c := g.Clone()
			for _, id := range ids {
				c.Remove(c.Task(id))
			}
			p := NewPatch(g)
			for _, id := range ids {
				p.RemoveTask(g.Task(id))
			}
			assertPatchMatchesGraph(t, p, c)
			// Double removal is a no-op, as on the graph.
			p.RemoveTask(g.Task(ids[0]))
			assertPatchMatchesGraph(t, p, c)
		})
	}
}

func TestPatchInsertPrimitives(t *testing.T) {
	g := patchTestGraph(t, 4)
	c := g.Clone()
	ck := c.NewTask("mid", trace.KindKernel, Stream(7), 7*time.Microsecond)
	if err := c.InsertAfter(c.Task(3), ck); err != nil {
		t.Fatal(err)
	}
	ch := c.NewTask("head", trace.KindLaunch, CPU(1), time.Microsecond)
	if err := c.InsertBefore(c.Task(0), ch); err != nil {
		t.Fatal(err)
	}

	p := NewPatch(g)
	pk := p.NewTask("mid", trace.KindKernel, Stream(7), 7*time.Microsecond)
	if err := p.InsertAfter(g.Task(3), pk); err != nil {
		t.Fatal(err)
	}
	ph := p.NewTask("head", trace.KindLaunch, CPU(1), time.Microsecond)
	if err := p.InsertBefore(g.Task(0), ph); err != nil {
		t.Fatal(err)
	}
	assertPatchMatchesGraph(t, p, c)

	if err := p.InsertAfter(nil, pk); err == nil {
		t.Fatal("nil anchor accepted")
	}
	if err := p.InsertAfter(c.Task(3), pk); err == nil {
		t.Fatal("foreign-graph anchor accepted")
	}
}

func TestPatchRemoveDependency(t *testing.T) {
	g := patchTestGraph(t, 5)
	sync := g.Task(g.IDSpan() - 1)
	kern := g.Task(5) // the kernel feeding the sync task (n/2 = 2 → ID 5)
	c := g.Clone()
	if !c.RemoveDependency(c.Task(kern.ID), c.Task(sync.ID)) {
		t.Fatal("graph edge not found")
	}
	p := NewPatch(g)
	if !p.RemoveDependency(kern, sync) {
		t.Fatal("patch edge not found")
	}
	if p.RemoveDependency(kern, sync) {
		t.Fatal("patch removed a masked edge twice")
	}
	assertPatchMatchesGraph(t, p, c)

	// Re-adding after removal works, with a (possibly different) kind.
	if err := c.AddDependency(c.Task(kern.ID), c.Task(sync.ID), DepCustom); err != nil {
		t.Fatal(err)
	}
	if err := p.AddDependency(kern, sync, DepCustom); err != nil {
		t.Fatal(err)
	}
	assertPatchMatchesGraph(t, p, c)
}

func TestPatchTimingTierAndAppendixTiming(t *testing.T) {
	g := patchTestGraph(t, 4)
	p := NewPatch(g)
	// Baseline edits go through the overlay tier; appendix edits write
	// the private fields.
	k := g.Task(1)
	p.SetDuration(k, time.Millisecond)
	p.SetGap(k, time.Microsecond)
	p.SetPriority(k, 9)
	a := p.NewTask("x", trace.KindComm, Channel("c"), 4*time.Microsecond)
	p.AppendTask(a)
	if err := p.AddDependency(k, a, DepComm); err != nil {
		t.Fatal(err)
	}
	p.SetDuration(a, 2*time.Millisecond)
	p.ScaleDuration(a, 0.5)
	p.SetPriority(a, 3)
	if p.Duration(k) != time.Millisecond || p.Gap(k) != time.Microsecond || p.Priority(k) != 9 {
		t.Fatalf("baseline timing reads: %v %v %d", p.Duration(k), p.Gap(k), p.Priority(k))
	}
	if p.Duration(a) != time.Millisecond || a.Priority != 3 {
		t.Fatalf("appendix timing reads: %v %d", p.Duration(a), a.Priority)
	}
	if k.Duration == time.Millisecond {
		t.Fatal("baseline task mutated")
	}
	// The reference graph with the same edits.
	c := g.Clone()
	ck := c.Task(1)
	ck.Duration, ck.Gap, ck.Priority = time.Millisecond, time.Microsecond, 9
	ca := c.NewTask("x", trace.KindComm, Channel("c"), 4*time.Microsecond)
	c.AppendTask(ca)
	if err := c.AddDependency(ck, ca, DepComm); err != nil {
		t.Fatal(err)
	}
	ca.Duration, ca.Priority = time.Millisecond, 3
	assertPatchMatchesGraph(t, p, c)

	// The simulation result reads effective timings for both tiers.
	res, err := p.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskDuration(k) != time.Millisecond || res.TaskDuration(a) != time.Millisecond {
		t.Fatalf("result durations: %v %v", res.TaskDuration(k), res.TaskDuration(a))
	}
}

func TestPatchResetReuse(t *testing.T) {
	g := patchTestGraph(t, 6)
	base, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPatch(g)
	scratch := NewSimScratch()
	buf := &SimResult{}
	for i := 0; i < 4; i++ {
		p.Reset(g)
		if p.Structural() {
			t.Fatal("Reset left structural deltas")
		}
		// Pure replay after reset matches the baseline.
		if got, err := p.PredictIteration(WithScratch(scratch), WithResultBuffer(buf)); err != nil || got != base {
			t.Fatalf("iteration %d: replay %v (%v), want %v", i, got, err, base)
		}
		// Then a structural edit, different each round.
		c := p.NewTask(fmt.Sprintf("comm%d", i), trace.KindComm, Channel("x"), time.Duration(i+1)*time.Millisecond)
		p.AppendTask(c)
		if err := p.AddDependency(g.Task(1), c, DepComm); err != nil {
			t.Fatal(err)
		}
		got, err := p.PredictIteration(WithScratch(scratch), WithResultBuffer(buf))
		if err != nil {
			t.Fatal(err)
		}
		// The comm task extends the makespan by at least its duration
		// beyond the gating kernel's finish, and each round's edit is
		// strictly longer than the last.
		if got <= base || got < time.Duration(i+1)*time.Millisecond {
			t.Fatalf("iteration %d: patched %v (baseline %v)", i, got, base)
		}
	}
	// The baseline is untouched throughout.
	if got, _ := g.PredictIteration(); got != base {
		t.Fatalf("baseline drifted: %v vs %v", got, base)
	}
}

// lifoPatchScheduler is a trivial non-default scheduler.
type lifoPatchScheduler struct{}

func (lifoPatchScheduler) Pick(frontier []*Task, _ *SchedContext) int {
	return len(frontier) - 1
}

func TestPatchCustomSchedulerRunsOnCompositeView(t *testing.T) {
	g := patchTestGraph(t, 3)
	p := NewPatch(g)
	c := p.NewTask("c", trace.KindComm, Channel("x"), time.Microsecond)
	p.AppendTask(c)
	if err := p.AddDependency(g.Task(1), c, DepComm); err != nil {
		t.Fatal(err)
	}
	p.SetDuration(g.Task(1), 40*time.Microsecond)
	// A structural patch with a custom scheduler simulates directly over
	// the composite view — zero clones — and must be bit-identical to
	// materializing the patch and scheduling the real graph.
	got, err := p.Simulate(WithScheduler(lifoPatchScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Materializations() != 0 {
		t.Fatalf("scheduled patch simulation materialized %d times, want 0", p.Materializations())
	}
	m, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Simulate(WithScheduler(lifoPatchScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("view path makespan %v, clone path %v", got.Makespan, want.Makespan)
	}
	for id := range want.Start {
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: view %v, clone %v", id, got.Start[id], want.Start[id])
		}
	}
	// The result carries effective timings for baseline and appendix
	// task pointers.
	if got.TaskDuration(g.Task(1)) != 40*time.Microsecond || got.TaskDuration(c) != time.Microsecond {
		t.Fatalf("scheduled result durations: %v, %v", got.TaskDuration(g.Task(1)), got.TaskDuration(c))
	}
	// The default scheduler stays on the composite-view heap path.
	if _, err := p.Simulate(WithScheduler(EarliestStart{})); err != nil {
		t.Fatal(err)
	}
	// A non-structural patch delegates to the overlay path, which runs
	// custom schedulers view-generically too.
	p.Reset(g)
	if _, err := p.Simulate(WithScheduler(lifoPatchScheduler{})); err != nil {
		t.Fatal(err)
	}
}

// TestPatchAddDependencyRequiresLiveTasks pins the liveness guard: an
// edge touching a removed task is rejected (the materialized replay
// would fail it too), so the heap and scheduled simulation paths can
// never disagree about a dangling edge.
func TestPatchAddDependencyRequiresLiveTasks(t *testing.T) {
	g := patchTestGraph(t, 3)
	p := NewPatch(g)
	victim := g.Task(0)
	p.RemoveTask(victim)
	if err := p.AddDependency(victim, g.Task(1), DepCustom); err == nil {
		t.Fatal("AddDependency accepted a removed source")
	}
	if err := p.AddDependency(g.Task(1), victim, DepCustom); err == nil {
		t.Fatal("AddDependency accepted a removed target")
	}
	// Both paths still simulate the same live view.
	want, err := p.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Simulate(WithScheduler(wrappedEarliest{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("scheduled %v, heap %v", got.Makespan, want.Makespan)
	}
}

// TestPatchLegacySchedulerRejectedUnderTimingOverlays pins the shim
// guard: on a structural patch whose timing tier holds duration/gap
// edits, an AdaptScheduler-wrapped policy (raw Task-field reads) is
// rejected — the pre-view fallback materialized effective fields, so
// running it over the view would silently diverge.
func TestPatchLegacySchedulerRejectedUnderTimingOverlays(t *testing.T) {
	g := patchTestGraph(t, 3)
	p := NewPatch(g)
	c := p.NewTask("c", trace.KindComm, Channel("x"), time.Microsecond)
	p.AppendTask(c)
	p.SetDuration(g.Task(1), 40*time.Microsecond)
	if _, err := p.Simulate(WithScheduler(AdaptScheduler(legacyLifo{}))); err == nil {
		t.Fatal("legacy scheduler + timing overlay on a structural patch did not error")
	}
	// The native policy and the default heap path keep working.
	if _, err := p.Simulate(WithScheduler(lifoPatchScheduler{})); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Simulate(); err != nil {
		t.Fatal(err)
	}
	// Without timing edits the shim is accepted on the structural path.
	p.Reset(g)
	d := p.NewTask("d", trace.KindComm, Channel("x"), time.Microsecond)
	p.AppendTask(d)
	if _, err := p.Simulate(WithScheduler(AdaptScheduler(legacyLifo{}))); err != nil {
		t.Fatal(err)
	}
}

// TestPatchMaterializeMemo pins the materialization cache: repeated
// Materialize calls without intervening edits return the same graph and
// pay the clone+replay exactly once (the KeepGraphs +
// custom-Scheduler sweep path used to materialize twice), and any edit
// — structural, patch timing, timing-tier, or Reset — invalidates.
func TestPatchMaterializeMemo(t *testing.T) {
	g := patchTestGraph(t, 3)
	p := NewPatch(g)
	c := p.NewTask("c", trace.KindComm, Channel("x"), time.Microsecond)
	p.AppendTask(c)

	m1, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 || p.Materializations() != 1 {
		t.Fatalf("repeated Materialize: %d materializations (same graph: %v), want 1 memoized", p.Materializations(), m1 == m2)
	}

	// A structural edit invalidates.
	if err := p.AddDependency(g.Task(0), c, DepCustom); err != nil {
		t.Fatal(err)
	}
	m3, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m2 || p.Materializations() != 2 {
		t.Fatalf("structural edit did not invalidate the memo (%d materializations)", p.Materializations())
	}

	// A timing edit through the patch invalidates.
	p.SetDuration(g.Task(1), 5*time.Microsecond)
	if _, err := p.Materialize(); err != nil {
		t.Fatal(err)
	}
	// …and one through the timing tier directly (the sweep's
	// ScaleTransform shape) does too.
	p.Timing().SetGap(g.Task(1), time.Microsecond)
	if _, err := p.Materialize(); err != nil {
		t.Fatal(err)
	}
	if p.Materializations() != 4 {
		t.Fatalf("timing edits: %d materializations, want 4", p.Materializations())
	}

	// An edit to an appendix task through the patch invalidates too.
	p.SetDuration(c, 9*time.Microsecond)
	m5, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Materializations() != 5 {
		t.Fatalf("appendix timing edit did not invalidate (%d materializations)", p.Materializations())
	}
	if d := m5.Task(c.ID).Duration; d != 9*time.Microsecond {
		t.Fatalf("materialized appendix duration %v", d)
	}

	// Reset drops the memo.
	p.Reset(g)
	if _, err := p.Materialize(); err != nil {
		t.Fatal(err)
	}
	if p.Materializations() != 6 {
		t.Fatalf("Reset did not invalidate (%d materializations)", p.Materializations())
	}
}

func TestPatchPlacementRequiresAppendixTask(t *testing.T) {
	g := patchTestGraph(t, 3)
	p := NewPatch(g)
	base := g.Task(3) // a kernel on Stream(7)
	if err := p.InsertAfter(g.Task(0), base); err == nil {
		t.Fatal("InsertAfter accepted a baseline task")
	}
	if err := p.InsertBefore(g.Task(0), base); err == nil {
		t.Fatal("InsertBefore accepted a baseline task")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AppendTask accepted a baseline task")
			}
		}()
		p.AppendTask(base)
	}()
	// The misuse attempts left no deltas and no baseline mutation.
	if p.Structural() {
		t.Fatal("rejected placements recorded structural deltas")
	}
	if base.Thread != Stream(7) {
		t.Fatalf("baseline task thread mutated: %v", base.Thread)
	}
}

func TestPatchTaskViewAndCycleDetection(t *testing.T) {
	g := patchTestGraph(t, 3)
	p := NewPatch(g)
	a := p.NewTask("a", trace.KindComm, Channel("x"), time.Microsecond)
	p.RemoveTask(g.Task(0))
	tasks := p.Tasks()
	if len(tasks) != g.NumTasks() {
		t.Fatalf("view has %d tasks, want %d (one removed, one added)", len(tasks), g.NumTasks())
	}
	if tasks[len(tasks)-1] != a {
		t.Fatal("appendix task not last in creation order")
	}
	for _, u := range tasks {
		if u.ID == 0 {
			t.Fatal("removed task still in view")
		}
	}
	// An appendix cycle is caught like a graph cycle.
	b := p.NewTask("b", trace.KindComm, Channel("y"), time.Microsecond)
	if err := p.AddDependency(a, b, DepCustom); err != nil {
		t.Fatal(err)
	}
	if err := p.AddDependency(b, a, DepCustom); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Simulate(); err == nil {
		t.Fatal("cyclic patch simulated")
	}
}
