package core

import (
	"errors"
	"fmt"
	"time"
)

// Round-windowed simulation: on a round-major graph (Repeat, or a Patch
// whose appendix is laid out round-major — task IDs non-decreasing in
// Task.Round), WithRoundWindow(w) retires every round that falls more
// than w rounds behind the completion frontier into a RoundSummary and
// keeps full per-task starts only for a sliding window, so simulating
// thousands of rounds costs O(window) result memory instead of
// O(rounds). The retained window is bit-identical to the unwindowed
// result; see doc.go "The round window" for the full contract.

// ErrNotRoundMajor marks a windowed simulation over a view whose task
// IDs are not non-decreasing in Task.Round — the layout the sliding
// window's ring storage requires. Repeat graphs and round-major patch
// appendices satisfy it by construction.
var ErrNotRoundMajor = errors.New("core: windowed simulation requires a round-major task layout (IDs non-decreasing in Round)")

// ErrWindowedResult marks an operation that needs the full start array
// of an unwindowed result — internal/mem's post-pass, incremental warm
// builds — applied to a windowed one. The documented fallback is to
// re-simulate without WithRoundWindow.
var ErrWindowedResult = errors.New("core: result is round-windowed (full per-task starts were retired); re-simulate without WithRoundWindow")

// WithRoundWindow enables round-windowed simulation: rounds more than w
// rounds behind the completion frontier are retired into per-round
// summaries (RoundSummary) and their per-task starts evicted; the last
// w completed rounds plus every round still executing keep full starts,
// readable through StartOf/Finish exactly as in an unwindowed run. The
// view must be round-major (ErrNotRoundMajor otherwise). w <= 0 means
// no windowing. Windowed results report Windowed() == true, expose an
// empty Start field, and are rejected by consumers that need the full
// array (ErrWindowedResult).
func WithRoundWindow(w int) SimOption {
	return func(o *simOptions) { o.window = w }
}

// RoundSummary is the retained record of a retired round.
type RoundSummary struct {
	// Round is the round (Repeat copy / microbatch) index.
	Round int
	// End is the completion time of the round's last task.
	End time.Duration
	// Span is End minus the previous round's End — the round's
	// makespan contribution, which converges to the steady-state
	// iteration time on a repeated graph.
	Span time.Duration
	// ThreadEnd maps each thread that executed one of the round's tasks
	// to the end time of its last such task.
	ThreadEnd map[ThreadID]time.Duration
}

// windowState is the sliding-window storage of a windowed simulation.
// Per-task starts (and, for overlay/patch runs, effective timings) live
// in rings indexed by ID mod capacity; the retained ID range is
// contiguous because the layout is round-major, so distinct retained
// IDs never share a slot as long as the range fits the ring (record
// grows it when a straggler round keeps the range wide).
type windowState struct {
	w      int // rounds kept behind the completion frontier
	rounds int
	lo, hi []int // per-round ID range [lo, hi)
	left   []int // per-round unexecuted task counts
	// Per-round aggregates collected during execution; O(rounds ×
	// threads), the summary data the window is allowed to keep.
	rEnd     []time.Duration
	rThreads []map[ThreadID]time.Duration
	done     int // rounds [0, done) are fully executed (contiguous prefix)
	retired  int // rounds [0, retired) are summarized and evicted
	maxID    int // highest recorded task ID
	peak     int // widest retained ID span observed (occupancy stat)

	ring             []time.Duration // start times, slot = ID % len(ring)
	durRing, gapRing []time.Duration // effective timings (nil for Graph runs)

	summaries []RoundSummary
}

// newWindowState scans the view once to build the per-round layout and
// sizes the rings for w retained rounds plus one executing round. A
// view whose IDs are not non-decreasing in Round is rejected with
// ErrNotRoundMajor. withTimings selects effective-timing rings for
// views whose timings diverge from the raw Task fields.
func newWindowState(v schedView, w int, withTimings bool) (*windowState, error) {
	ws := &windowState{w: w, maxID: -1}
	prev := 0
	var scanErr error
	v.eachTask(func(t *Task) {
		if scanErr != nil {
			return
		}
		r := t.Round
		if r < prev || r < 0 {
			scanErr = fmt.Errorf("%w: task #%d %q has round %d after round %d", ErrNotRoundMajor, t.ID, t.Name, r, prev)
			return
		}
		for ws.rounds <= r {
			// New round (empty rounds between two populated ones get
			// zero-width ranges at the boundary).
			ws.lo = append(ws.lo, t.ID)
			ws.hi = append(ws.hi, t.ID)
			ws.left = append(ws.left, 0)
			ws.rounds++
		}
		if t.ID+1 > ws.hi[r] {
			ws.hi[r] = t.ID + 1
		}
		ws.left[r]++
		prev = r
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if ws.rounds == 0 {
		ws.rounds = 1
		ws.lo, ws.hi, ws.left = []int{0}, []int{0}, []int{0}
	}
	ws.rEnd = make([]time.Duration, ws.rounds)
	ws.rThreads = make([]map[ThreadID]time.Duration, ws.rounds)
	// Ring capacity: the widest ID span of any round together with the w
	// rounds before it. Out-of-order completion beyond that grows the
	// ring at record time.
	cap := 1
	for r := 0; r < ws.rounds; r++ {
		base := r - w
		if base < 0 {
			base = 0
		}
		if span := ws.hi[r] - ws.lo[base]; span > cap {
			cap = span
		}
	}
	ws.ring = make([]time.Duration, cap)
	if withTimings {
		ws.durRing = make([]time.Duration, cap)
		ws.gapRing = make([]time.Duration, cap)
	}
	// Empty leading rounds are complete before the first dispatch.
	for ws.done < ws.rounds && ws.left[ws.done] == 0 {
		ws.done++
	}
	return ws, nil
}

// record commits one executed task: its start (and effective timings)
// into the window rings, its finish and end into the round aggregates,
// and — when it completes the contiguous-done prefix — retires rounds
// that fell behind the window. The round's End aggregates finishes
// (start + duration, matching SimResult.Finish and RoundSpan); its
// ThreadEnd aggregates gap-inclusive ends (matching SimResult.ThreadEnd).
func (ws *windowState) record(t *Task, start, dur, gap time.Duration) {
	if t.ID-ws.lo[ws.retired] >= len(ws.ring) {
		ws.grow(t.ID)
	}
	slot := t.ID % len(ws.ring)
	ws.ring[slot] = start
	if ws.durRing != nil {
		ws.durRing[slot] = dur
		ws.gapRing[slot] = gap
	}
	if t.ID > ws.maxID {
		ws.maxID = t.ID
	}
	if span := ws.maxID + 1 - ws.lo[ws.retired]; span > ws.peak {
		ws.peak = span
	}
	r := t.Round
	finish, end := start+dur, start+dur+gap
	if finish > ws.rEnd[r] {
		ws.rEnd[r] = finish
	}
	m := ws.rThreads[r]
	if m == nil {
		m = make(map[ThreadID]time.Duration, 4)
		ws.rThreads[r] = m
	}
	if end > m[t.Thread] {
		m[t.Thread] = end
	}
	ws.left[r]--
	if r == ws.done && ws.left[r] == 0 {
		for ws.done < ws.rounds && ws.left[ws.done] == 0 {
			ws.done++
		}
		for ws.retired < ws.done-ws.w {
			ws.retire()
		}
	}
}

// retire summarizes and evicts the oldest retained round.
func (ws *windowState) retire() {
	r := ws.retired
	var prev time.Duration
	if r > 0 {
		prev = ws.summaries[r-1].End
	}
	ws.summaries = append(ws.summaries, RoundSummary{
		Round:     r,
		End:       ws.rEnd[r],
		Span:      ws.rEnd[r] - prev,
		ThreadEnd: ws.rThreads[r],
	})
	ws.rThreads[r] = nil
	ws.retired++
}

// grow widens the rings when out-of-order round completion keeps the
// retained ID span wider than planned — graceful degradation toward
// the unwindowed footprint, never corruption.
func (ws *windowState) grow(id int) {
	need := id + 1 - ws.lo[ws.retired]
	newCap := 2 * len(ws.ring)
	if newCap < need {
		newCap = need
	}
	replace := func(old []time.Duration) []time.Duration {
		fresh := make([]time.Duration, newCap)
		for i := ws.lo[ws.retired]; i <= ws.maxID; i++ {
			fresh[i%newCap] = old[i%len(old)]
		}
		return fresh
	}
	ws.ring = replace(ws.ring)
	if ws.durRing != nil {
		ws.durRing = replace(ws.durRing)
		ws.gapRing = replace(ws.gapRing)
	}
}

// startOf returns the windowed start of a task ID, or false when its
// round has been retired.
func (ws *windowState) startOf(id int) (time.Duration, bool) {
	if id < ws.lo[ws.retired] {
		return 0, false
	}
	return ws.ring[id%len(ws.ring)], true
}

// retiredPanic aborts a full-detail read of a retired task with a
// message that names the window contract.
func (ws *windowState) retiredPanic(what string, t *Task) {
	panic(fmt.Sprintf("core: %s(#%d %q): round %d was retired from the simulation window (%d rounds retired; retained IDs start at %d) — read retired rounds through Summaries/RoundSpan or re-simulate without WithRoundWindow",
		what, t.ID, t.Name, t.Round, ws.retired, ws.lo[ws.retired]))
}

// Windowed reports whether the result came from a round-windowed
// simulation (WithRoundWindow): Start is empty and per-task detail is
// only retained for the sliding window.
func (r *SimResult) Windowed() bool { return r.win != nil }

// RetiredRounds returns how many rounds were retired into summaries
// (zero for unwindowed results).
func (r *SimResult) RetiredRounds() int {
	if r.win == nil {
		return 0
	}
	return r.win.retired
}

// Summaries returns the retired rounds' summaries in round order. The
// slice is owned by the result; callers must not mutate it.
func (r *SimResult) Summaries() []RoundSummary {
	if r.win == nil {
		return nil
	}
	return r.win.summaries
}

// WindowOccupancy returns the widest per-task span the window actually
// retained at any point of a windowed simulation (tasks, not rounds) —
// the O(window) footprint the mode trades the full start array for.
// Zero for unwindowed results.
func (r *SimResult) WindowOccupancy() int {
	if r.win == nil {
		return 0
	}
	return r.win.peak
}

// StartOf returns a task's simulated start and whether it is available:
// always for unwindowed results, and for tasks within the retained
// window of windowed ones (false when the task's round was retired).
func (r *SimResult) StartOf(t *Task) (time.Duration, bool) {
	if r.win == nil {
		return r.Start[t.ID], true
	}
	return r.win.startOf(t.ID)
}
