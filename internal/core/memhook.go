package core

import "sync/atomic"

// memAnnotMemo is the atomic memo cell embedded in Graph for the
// memory-annotation snapshot. The core package treats the value as
// opaque: internal/mem owns its concrete type (an ID-indexed tensor
// schedule), core only provides the same memoization lifecycle the
// layer/phase index has — atomic publication for concurrent readers,
// invalidation on structural mutation, an empty memo on Clone.
type memAnnotMemo struct {
	p atomic.Pointer[any]
}

// MemAnnotation returns the memory-annotation snapshot last attached
// with SetMemAnnotation, or nil when none is attached (or a structural
// mutation invalidated it). Callers type-assert the result; a nil or
// foreign value means "rebuild".
func (g *Graph) MemAnnotation() any {
	if v := g.memAnnot.p.Load(); v != nil {
		return *v
	}
	return nil
}

// SetMemAnnotation publishes a memory-annotation snapshot on the graph.
// Publication is atomic, so any number of goroutines sharing an
// immutable graph (sweep workers, serve handlers) may attach and read
// concurrently; concurrent first builds may publish
// duplicate-but-identical snapshots, of which one wins — the same
// contract as LayerPhaseIndex.
func (g *Graph) SetMemAnnotation(v any) {
	g.memAnnot.p.Store(&v)
}

// InvalidateMemAnnotation drops the memoized annotation, forcing the
// next mem.AnnotationOf call to rebuild. Structural mutations and
// MapLayers call it automatically (via InvalidateLayerPhaseIndex);
// call it manually after hand-editing Task layer mappings or
// Meta.Gradients.
func (g *Graph) InvalidateMemAnnotation() {
	g.memAnnot.p.Store(nil)
}
