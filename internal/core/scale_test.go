package core

import (
	"testing"
	"time"
)

// TestSimulatorScalesToLargeGraphs chains ten BERT-Large iterations
// (~130K tasks) and checks the simulator stays correct and fast enough
// for interactive what-if exploration.
func TestSimulatorScalesToLargeGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph test skipped in -short mode")
	}
	g := modelGraph(t, "bert-large")
	single, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Repeat(10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumTasks() != 10*g.NumTasks() {
		t.Fatalf("repeat produced %d tasks, want %d", rep.NumTasks(), 10*g.NumTasks())
	}
	start := time.Now()
	res, err := rep.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("simulated %d tasks in %v", rep.NumTasks(), elapsed)
	if elapsed > 30*time.Second {
		t.Fatalf("simulation of %d tasks took %v", rep.NumTasks(), elapsed)
	}
	// Ten chained synchronous iterations ≈ 10 × one iteration.
	ratio := float64(res.Makespan) / float64(10*single)
	if ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("10-iteration makespan %v vs 10×%v (ratio %.3f)", res.Makespan, single, ratio)
	}
}
