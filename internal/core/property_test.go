package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"daydream/internal/trace"
)

// randomDAG builds a random multi-thread dependency graph. Forward-only
// cross edges (lower ID → higher ID) guarantee acyclicity.
func randomDAG(rng *rand.Rand) *Graph {
	g := NewGraph()
	threads := []ThreadID{CPU(1), CPU(2), Stream(7), Channel("c")}
	n := rng.Intn(60) + 2
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tid := threads[rng.Intn(len(threads))]
		task := g.NewTask("t", kindFor(tid), tid, time.Duration(rng.Intn(5000))*time.Microsecond)
		if tid.Kind == CPUThread {
			task.Gap = time.Duration(rng.Intn(500)) * time.Microsecond
		}
		task.Priority = rng.Intn(10) - 5
		g.AppendTask(task)
		tasks[i] = task
	}
	for e := 0; e < n/2; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		_ = g.AddDependency(tasks[i], tasks[j], DepCustom)
	}
	return g
}

// TestRandomDAGSimulationInvariants checks, over many random graphs, that
// Algorithm 1 (a) executes every task, (b) never violates a dependency,
// (c) never overlaps tasks on one thread, and (d) is deterministic.
func TestRandomDAGSimulationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		if err := g.Validate(); err != nil {
			return false
		}
		res, err := g.Simulate()
		if err != nil {
			return false
		}
		if len(res.Start) != g.NumTasks() {
			return false
		}
		for _, u := range g.Tasks() {
			uEnd := res.Start[u.ID] + u.Duration + u.Gap
			for _, c := range u.Children() {
				if res.Start[c.ID] < uEnd {
					return false
				}
			}
		}
		for _, tid := range g.Threads() {
			var prevEnd time.Duration
			for _, u := range g.ThreadTasks(tid) {
				if res.Start[u.ID] < prevEnd {
					return false
				}
				prevEnd = res.Start[u.ID] + u.Duration + u.Gap
			}
		}
		res2, err := g.Simulate()
		if err != nil || res2.Makespan != res.Makespan {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomRemovalsKeepGraphSound removes random tasks from random graphs
// and checks the graph stays valid, acyclic and simulatable, and that the
// makespan never grows (removal only deletes work).
func TestRandomRemovalsKeepGraphSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		before, err := g.Clone().PredictIteration()
		if err != nil {
			return false
		}
		victims := g.Tasks()
		rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
		k := rng.Intn(len(victims)/2 + 1)
		for _, v := range victims[:k] {
			g.Remove(v)
		}
		if err := g.Validate(); err != nil {
			return false
		}
		after, err := g.PredictIteration()
		if err != nil {
			return false
		}
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomScalingMonotonic checks that uniformly shrinking every task
// never increases the makespan, and uniformly growing never decreases it.
func TestRandomScalingMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		base, err := g.Clone().PredictIteration()
		if err != nil {
			return false
		}
		shrunk := g.Clone()
		Scale(shrunk.Tasks(), 0.5)
		s, err := shrunk.PredictIteration()
		if err != nil {
			return false
		}
		grown := g.Clone()
		Scale(grown.Tasks(), 2.0)
		l, err := grown.PredictIteration()
		if err != nil {
			return false
		}
		return s <= base && l >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomCloneEquivalence checks that a clone of a random graph
// simulates to the identical schedule.
func TestRandomCloneEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		a, err := g.Simulate()
		if err != nil {
			return false
		}
		b, err := g.Clone().Simulate()
		if err != nil {
			return false
		}
		if a.Makespan != b.Makespan {
			return false
		}
		for id, s := range a.Start {
			if b.Start[id] != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomRepeatPeriod checks on random graphs that an n-fold repeat is
// valid and its rounds complete in order.
func TestRandomRepeatPeriod(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		rep, err := g.Repeat(3)
		if err != nil {
			return false
		}
		res, err := rep.Simulate()
		if err != nil {
			return false
		}
		r0 := RoundSpan(rep, res, 0)
		r1 := RoundSpan(rep, res, 1)
		r2 := RoundSpan(rep, res, 2)
		// Rounds complete in order; the makespan may exceed the last
		// finish by at most the final task's trailing gap.
		return r0 <= r1 && r1 <= r2 && r2 <= res.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildIsDeterministicAcrossSortOrder shuffles a trace's activity
// order and checks Build produces an equivalent graph (same makespan).
func TestBuildIsDeterministicAcrossSortOrder(t *testing.T) {
	g := modelGraph(t, "gnmt")
	want, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild from a shuffled copy of the same trace.
	tr := rebuildTrace(t)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(tr.Activities), func(i, j int) {
		tr.Activities[i], tr.Activities[j] = tr.Activities[j], tr.Activities[i]
	})
	g2, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	MapLayers(g2, tr.LayerSpans)
	got, err := g2.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("shuffled build simulates differently: %v vs %v", got, want)
	}
}

func rebuildTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := collectTrace(t, "gnmt")
	return tr
}
