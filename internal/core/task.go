package core

import (
	"fmt"
	"time"

	"daydream/internal/trace"
)

// ThreadKind classifies an execution thread: the paper's three resource
// types (§4.2.1, "ExecutionThread").
type ThreadKind int

// Execution thread kinds.
const (
	// CPUThread is an operating-system thread of the framework process.
	CPUThread ThreadKind = iota
	// GPUStream is a CUDA stream.
	GPUStream
	// CommChannel is a communication channel: a NCCL ring, or a
	// parameter-server send/receive direction.
	CommChannel
)

// String returns the kind name.
func (k ThreadKind) String() string {
	switch k {
	case GPUStream:
		return "stream"
	case CommChannel:
		return "channel"
	}
	return "cpu"
}

// ThreadID identifies one execution thread. It is a comparable value type
// usable as a map key. CPU threads and GPU streams use Num; communication
// channels use Name.
type ThreadID struct {
	Kind ThreadKind
	Num  int
	Name string
}

// String renders the thread compactly, e.g. "cpu:1", "stream:7",
// "channel:nccl".
func (t ThreadID) String() string {
	if t.Kind == CommChannel {
		return fmt.Sprintf("channel:%s", t.Name)
	}
	return fmt.Sprintf("%s:%d", t.Kind, t.Num)
}

// CPU returns the ThreadID of a CPU thread.
func CPU(num int) ThreadID { return ThreadID{Kind: CPUThread, Num: num} }

// Stream returns the ThreadID of a GPU stream.
func Stream(num int) ThreadID { return ThreadID{Kind: GPUStream, Num: num} }

// Channel returns the ThreadID of a communication channel.
func Channel(name string) ThreadID { return ThreadID{Kind: CommChannel, Name: name} }

// DepKind labels a dependency edge with the paper's taxonomy (§4.2.2).
type DepKind int

// Dependency kinds.
const (
	// DepSequence is program order within one CPU thread, one CUDA
	// stream, or one communication channel.
	DepSequence DepKind = iota
	// DepCorrelation links a CUDA runtime API call to the GPU activity
	// it launched (shared CUPTI correlation ID).
	DepCorrelation
	// DepSync is a GPU→CPU edge produced by a CUDA synchronization (or a
	// blocking device-to-host memory copy).
	DepSync
	// DepComm attaches communication tasks: gradient-producing GPU task
	// → communication primitive → weight-update consumer.
	DepComm
	// DepCustom marks edges added by what-if transformations.
	DepCustom
)

// String returns the dependency kind name.
func (k DepKind) String() string {
	switch k {
	case DepCorrelation:
		return "correlation"
	case DepSync:
		return "sync"
	case DepComm:
		return "comm"
	case DepCustom:
		return "custom"
	}
	return "sequence"
}

// Task is one node of the dependency graph: a GPU kernel, a CUDA API call,
// a data-loading task or a communication primitive (§4.2.1).
type Task struct {
	// ID is unique within the graph.
	ID int
	// Name is the kernel or API name.
	Name string
	// Kind is the trace activity kind.
	Kind trace.Kind
	// Thread is the execution thread the task occupies.
	Thread ThreadID
	// Duration is the task's execution time.
	Duration time.Duration
	// Gap is the un-instrumented time between this task's end and the
	// next task on the same CPU thread (§4.2.1, "Gap"); zero for GPU
	// and communication tasks.
	Gap time.Duration
	// TracedStart is the start timestamp observed in the trace; it is
	// not used by the simulator (which derives starts from
	// dependencies) but drives construction and layer mapping.
	TracedStart time.Duration
	// TracedDuration is the duration observed in the trace, before any
	// build-time decomposition (synchronization residuals) or what-if
	// scaling. Used by ablations and diagnostics.
	TracedDuration time.Duration
	// Layer and LayerIndex identify the DNN layer the task maps to;
	// HasLayer reports whether the mapping succeeded.
	Layer      string
	LayerIndex int
	Phase      trace.Phase
	HasLayer   bool
	// Correlation is the CUPTI correlation ID (zero if none).
	Correlation uint64
	// Bytes is the payload for copies and communication.
	Bytes int64
	// Dir is the copy direction, if applicable.
	Dir trace.MemcpyDir
	// Priority orders tasks under priority scheduling (larger is more
	// urgent); used by schedulers such as P3's.
	Priority int
	// Round is the iteration replica index after Graph.Repeat.
	Round int

	// Adjacency is stored CSR-style on the task itself: children and
	// childKinds are parallel slices, so the graph needs no edge map and
	// Clone can rebuild all adjacency from two shared backing arrays.
	parents    []*Task
	children   []*Task
	childKinds []DepKind
	seqPrev    *Task
	seqNext    *Task
	peer       *Task // correlation peer (launch↔kernel)
}

// End is a convenience for TracedStart+Duration.
func (t *Task) End() time.Duration { return t.TracedStart + t.Duration }

// Parents returns the task's dependency parents. The slice must not be
// modified.
func (t *Task) Parents() []*Task { return t.parents }

// Children returns the task's dependents. The slice must not be modified.
func (t *Task) Children() []*Task { return t.children }

// SeqPrev returns the previous task on the same execution thread, or nil.
func (t *Task) SeqPrev() *Task { return t.seqPrev }

// SeqNext returns the next task on the same execution thread, or nil.
func (t *Task) SeqNext() *Task { return t.seqNext }

// Peer returns the correlation peer: for a launch/memcpy API task the GPU
// task it triggered, and vice versa. Nil if uncorrelated.
func (t *Task) Peer() *Task { return t.peer }

// OnGPU reports whether the task executes on a GPU stream.
func (t *Task) OnGPU() bool { return t.Thread.Kind == GPUStream }

// OnCPU reports whether the task executes on a CPU thread.
func (t *Task) OnCPU() bool { return t.Thread.Kind == CPUThread }

// String renders a short description for debugging.
func (t *Task) String() string {
	return fmt.Sprintf("#%d %s [%s %v]", t.ID, t.Name, t.Thread, t.Duration)
}
