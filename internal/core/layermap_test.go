package core

import (
	"testing"
	"time"

	"daydream/internal/trace"
)

func TestMapLayersBracketsLaunches(t *testing.T) {
	g := NewGraph()
	us := time.Microsecond
	mk := func(name string, kind trace.Kind, tid ThreadID, start time.Duration, corr uint64) *Task {
		task := g.NewTask(name, kind, tid, 5*us)
		task.TracedStart = start
		task.Correlation = corr
		g.AppendTask(task)
		return task
	}
	l1 := mk("cudaLaunchKernel", trace.KindLaunch, CPU(1), 0, 1)
	k1 := mk("k1", trace.KindKernel, Stream(7), 6*us, 1)
	l2 := mk("cudaLaunchKernel", trace.KindLaunch, CPU(1), 20*us, 2)
	k2 := mk("k2", trace.KindKernel, Stream(7), 26*us, 2)
	between := mk("op", trace.KindCPUOp, CPU(1), 12*us, 0)
	if err := g.Correlate(l1, k1); err != nil {
		t.Fatal(err)
	}
	if err := g.Correlate(l2, k2); err != nil {
		t.Fatal(err)
	}
	spans := []trace.LayerSpan{
		{Layer: "conv1", Index: 0, Phase: trace.Forward, Thread: 1, Start: 0, End: 10 * us},
		{Layer: "conv2", Index: 1, Phase: trace.Forward, Thread: 1, Start: 18 * us, End: 30 * us},
	}
	mapped := MapLayers(g, spans)
	if mapped != 4 { // two launches + two kernels via correlation
		t.Fatalf("mapped %d tasks, want 4", mapped)
	}
	if l1.Layer != "conv1" || k1.Layer != "conv1" {
		t.Errorf("first pair mapped to %q/%q", l1.Layer, k1.Layer)
	}
	if l2.Layer != "conv2" || k2.Layer != "conv2" {
		t.Errorf("second pair mapped to %q/%q", l2.Layer, k2.Layer)
	}
	if between.HasLayer {
		t.Error("task between spans must stay unmapped (framework glue)")
	}
	if k1.Phase != trace.Forward || k1.LayerIndex != 0 {
		t.Error("phase/index not propagated")
	}
}

func TestMapLayersEmptySpans(t *testing.T) {
	g, _ := chain(2, time.Microsecond)
	if MapLayers(g, nil) != 0 {
		t.Fatal("mapping without spans mapped something")
	}
}

func TestMapLayersRespectsThread(t *testing.T) {
	g := NewGraph()
	task := g.NewTask("op", trace.KindCPUOp, CPU(2), time.Microsecond)
	task.TracedStart = 5 * time.Microsecond
	g.AppendTask(task)
	spans := []trace.LayerSpan{{Layer: "l", Thread: 1, Start: 0, End: 10 * time.Microsecond}}
	if MapLayers(g, spans) != 0 {
		t.Fatal("span on thread 1 mapped a task on thread 2")
	}
}

func TestMappedFractionOnRealModels(t *testing.T) {
	// Launch-triggered GPU work inside layer spans should map almost
	// completely; only the input H2D copy and the loss D2H stay outside.
	g := modelGraph(t, "bert-base")
	if f := MappedFraction(g); f < 0.95 {
		t.Fatalf("mapped fraction %.3f, want ≥0.95", f)
	}
}

func TestMappedFractionEmpty(t *testing.T) {
	g, _ := chain(2, time.Microsecond)
	if MappedFraction(g) != 0 {
		t.Fatal("CPU-only graph has nonzero GPU mapped fraction")
	}
}

func TestWeightUpdatePhaseMapped(t *testing.T) {
	g := modelGraph(t, "bert-base")
	wu := g.Select(And(OnGPUPred, InPhase(trace.WeightUpdate)))
	// BERT-Base: ~199 tensors × 13 Adam kernels ≈ 2.6K (§6.3's count).
	if len(wu) < 2400 || len(wu) > 2900 {
		t.Fatalf("weight-update GPU kernels = %d, want ≈2600 (paper: 2633)", len(wu))
	}
}
