package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Error taxonomy. Every failure the engine can produce for hostile or
// malformed input wraps one of these sentinels, so callers — the sweep's
// error rows, a long-lived prediction server classifying failures per
// request — dispatch with errors.Is instead of string matching.
//
// Cancellation errors additionally wrap the originating context error,
// so errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) keep working for code written against the
// standard library's contract.
var (
	// ErrCanceled marks a simulation (or sweep scenario) abandoned
	// because its context was canceled.
	ErrCanceled = errors.New("core: simulation canceled")
	// ErrDeadlineExceeded marks a simulation (or sweep scenario)
	// abandoned because its context's deadline passed.
	ErrDeadlineExceeded = errors.New("core: simulation deadline exceeded")
	// ErrCycle marks a dependency graph (or effective patch view) whose
	// edge set contains a cycle — no valid schedule exists. Validate
	// reports it before simulation; Simulate itself reports the
	// consequence as ErrStalled.
	ErrCycle = errors.New("core: dependency cycle")
	// ErrDanglingEdge marks an effective edge whose endpoint is not live
	// in the view (removed, or foreign to the baseline).
	ErrDanglingEdge = errors.New("core: dangling edge")
	// ErrNegativeDuration marks a task whose effective duration (or
	// duration+gap) is negative — untrusted timing input the simulator's
	// monotonicity assumptions exclude.
	ErrNegativeDuration = errors.New("core: negative duration")
	// ErrStalled marks a simulation whose ready frontier emptied while
	// live tasks remained blocked: the effective graph has a cycle (or
	// an unsatisfiable dependency), so the schedule would be partial.
	// Simulate returns this instead of a result full of zero starts; the
	// wrapped StallError names the blocked tasks.
	ErrStalled = errors.New("core: simulation stalled")
)

// ContextError converts a non-nil context error into the typed
// taxonomy: context.DeadlineExceeded becomes ErrDeadlineExceeded,
// anything else ErrCanceled. The result wraps both the sentinel and the
// cause, so errors.Is matches either.
func ContextError(cause error) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, cause)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// StallError reports a frontier starvation: the simulation executed
// Executed of Live tasks and then had nothing ready, leaving Blocked
// task IDs with unresolved dependencies. It unwraps to ErrStalled.
type StallError struct {
	// Executed and Live count the tasks scheduled and the tasks the
	// effective view holds.
	Executed, Live int
	// Blocked holds the IDs of every live task that never became ready,
	// in ID order. On a cyclic graph these are the cycle members plus
	// everything downstream of them.
	Blocked []int
	// names labels the first few blocked tasks for the message.
	names []string
}

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: simulation stalled after %d of %d tasks; %d blocked (dependencies never resolved — the effective graph has a cycle)",
		e.Executed, e.Live, len(e.Blocked))
	if len(e.names) > 0 {
		b.WriteString(": ")
		b.WriteString(strings.Join(e.names, ", "))
		if len(e.Blocked) > len(e.names) {
			fmt.Fprintf(&b, ", … %d more", len(e.Blocked)-len(e.names))
		}
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrStalled) true.
func (e *StallError) Unwrap() error { return ErrStalled }

// stallNameLimit caps how many blocked tasks the message names; the
// Blocked slice always carries every ID.
const stallNameLimit = 8

// newStallError builds a StallError from the blocked tasks, collected
// by the simulate paths from their reference counts.
func newStallError(executed, live int, blocked []*Task) *StallError {
	e := &StallError{Executed: executed, Live: live}
	for _, t := range blocked {
		e.Blocked = append(e.Blocked, t.ID)
		if len(e.names) < stallNameLimit {
			e.names = append(e.names, fmt.Sprintf("#%d %s", t.ID, t.Name))
		}
	}
	return e
}

// CycleError reports a dependency cycle found by validation. Members
// holds the IDs of the tasks Kahn's algorithm could not order — the
// cycle's tasks plus everything downstream of them. It unwraps to
// ErrCycle.
type CycleError struct {
	// Members holds the unorderable task IDs, in ID order.
	Members []int
	// names labels the first few members for the message.
	names []string
}

func (e *CycleError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: dependency cycle: %d tasks cannot be topologically ordered", len(e.Members))
	if len(e.names) > 0 {
		b.WriteString(": ")
		b.WriteString(strings.Join(e.names, ", "))
		if len(e.Members) > len(e.names) {
			fmt.Fprintf(&b, ", … %d more", len(e.Members)-len(e.names))
		}
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrCycle) true.
func (e *CycleError) Unwrap() error { return ErrCycle }

// newCycleError builds a CycleError from the unorderable tasks.
func newCycleError(members []*Task) *CycleError {
	e := &CycleError{}
	for _, t := range members {
		e.Members = append(e.Members, t.ID)
		if len(e.names) < stallNameLimit {
			e.names = append(e.names, fmt.Sprintf("#%d %s", t.ID, t.Name))
		}
	}
	return e
}
