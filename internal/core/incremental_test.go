package core

import (
	"math/rand"
	"testing"
	"time"
)

// assertSameSim compares an incremental result against a cold one bit
// for bit: makespan, every start, every thread end, and the effective
// timings of every live task.
func assertSameSim(t *testing.T, v TaskView, got, want *SimResult) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Fatalf("makespan: incremental %v, cold %v", got.Makespan, want.Makespan)
	}
	if len(got.Start) != len(want.Start) {
		t.Fatalf("start length: incremental %d, cold %d", len(got.Start), len(want.Start))
	}
	for id := range want.Start {
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: incremental %v, cold %v", id, got.Start[id], want.Start[id])
		}
	}
	if len(got.ThreadEnd) != len(want.ThreadEnd) {
		t.Fatalf("thread-end count: incremental %d, cold %d", len(got.ThreadEnd), len(want.ThreadEnd))
	}
	for tid, end := range want.ThreadEnd {
		if got.ThreadEnd[tid] != end {
			t.Fatalf("thread %v end: incremental %v, cold %v", tid, got.ThreadEnd[tid], end)
		}
	}
	for _, task := range v.Tasks() {
		if gd, wd := got.TaskDuration(task), want.TaskDuration(task); gd != wd {
			t.Fatalf("task %d duration: incremental %v, cold %v", task.ID, gd, wd)
		}
		if gg, wg := got.TaskGap(task), want.TaskGap(task); gg != wg {
			t.Fatalf("task %d gap: incremental %v, cold %v", task.ID, gg, wg)
		}
	}
}

// TestIncrementalRandomDeltasZooModel is the randomized convergence
// test of the incremental engine on a real profiled graph: k random
// duration (and gap) edits, k ∈ {1, 4, 64}, must re-simulate
// bit-identically to a cold overlay simulation.
func TestIncrementalRandomDeltasZooModel(t *testing.T) {
	g := modelGraph(t, "resnet50")
	sim, err := NewIncrementalSim(g)
	if err != nil {
		t.Fatal(err)
	}
	tasks := g.Tasks()
	rng := rand.New(rand.NewSource(42))
	buf := &SimResult{}
	o := NewOverlay(g)
	for _, k := range []int{1, 4, 64} {
		for round := 0; round < 8; round++ {
			o.Reset(g)
			for i := 0; i < k; i++ {
				task := tasks[rng.Intn(len(tasks))]
				switch rng.Intn(3) {
				case 0:
					o.SetDuration(task, time.Duration(rng.Intn(4000))*time.Microsecond)
				case 1:
					o.SetGap(task, time.Duration(rng.Intn(300))*time.Microsecond)
				default:
					o.ScaleDuration(task, 0.25+rng.Float64()*2)
				}
			}
			got, err := sim.ReSimulate(o, WithResultBuffer(buf))
			if err != nil {
				t.Fatal(err)
			}
			if sim.LastFellBack() {
				t.Fatalf("k=%d round=%d: fell back on a forced-thread graph", k, round)
			}
			want, err := o.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			assertSameSim(t, o, got, want)
		}
	}
}

// TestIncrementalRandomDAGs drives the engine over random multi-thread
// DAGs (whose threads are still dependency-forced: AppendTask links
// consecutive thread tasks) with random sparse deltas.
func TestIncrementalRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		sim, err := NewIncrementalSim(g)
		if err != nil {
			t.Fatal(err)
		}
		tasks := g.Tasks()
		o := NewOverlay(g)
		for round := 0; round < 6; round++ {
			o.Reset(g)
			for i := rng.Intn(4) + 1; i > 0; i-- {
				task := tasks[rng.Intn(len(tasks))]
				o.SetDuration(task, time.Duration(rng.Intn(5000))*time.Microsecond)
			}
			got, err := sim.ReSimulate(o)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			want, err := o.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			assertSameSim(t, o, got, want)
		}
	}
}

// TestIncrementalConeRegression pins the sublinearity claim: a delta
// touching the last task of the critical path recomputes only its
// affected cone, not the whole graph.
func TestIncrementalConeRegression(t *testing.T) {
	g := modelGraph(t, "resnet50")
	sim, err := NewIncrementalSim(g)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(g, warm)
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	last := path[len(path)-1]

	o := NewOverlay(g)
	const delta = 123 * time.Microsecond
	o.SetDuration(last, last.Duration+delta)
	got, err := sim.ReSimulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if sim.LastFellBack() {
		t.Fatal("fell back on a single-task duration delta")
	}
	// The critical path ends the iteration, so stretching its last task
	// stretches the makespan by exactly the delta.
	if want := warm.Makespan + delta; got.Makespan != want {
		t.Fatalf("makespan %v, want %v", got.Makespan, want)
	}
	if n, limit := sim.RecomputedTasks(), g.NumTasks()/10; n == 0 || n > limit {
		t.Fatalf("recomputed %d tasks; want O(cone), at most %d of %d", n, limit, g.NumTasks())
	}
	want, err := o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	assertSameSim(t, o, got, want)

	// A no-op delta (same value re-set) converges instantly.
	o.Reset(g)
	o.SetDuration(last, last.Duration)
	if _, err := sim.ReSimulate(o); err != nil {
		t.Fatal(err)
	}
	if n := sim.RecomputedTasks(); n != 0 {
		t.Fatalf("no-op delta recomputed %d tasks", n)
	}
}

// TestIncrementalBaselineView re-simulates the baseline graph itself:
// the empty delta reproduces the warm schedule without recomputation.
func TestIncrementalBaselineView(t *testing.T) {
	g := modelGraph(t, "gnmt")
	sim, err := NewIncrementalSim(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.ReSimulate(g)
	if err != nil {
		t.Fatal(err)
	}
	if sim.LastFellBack() || sim.RecomputedTasks() != 0 {
		t.Fatalf("baseline view: fellBack=%v recomputed=%d", sim.LastFellBack(), sim.RecomputedTasks())
	}
	want, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	assertSameSim(t, g, got, want)

	other := g.Clone()
	if _, err := sim.ReSimulate(other); err == nil {
		t.Fatal("accepted a foreign graph view")
	}
}

// TestIncrementalFallbacks pins every delta class the incremental
// schedule cannot model onto the cold path — still bit-identical, with
// LastFellBack reporting the tier.
func TestIncrementalFallbacks(t *testing.T) {
	g := modelGraph(t, "resnet50")
	sim, err := NewIncrementalSim(g)
	if err != nil {
		t.Fatal(err)
	}
	tasks := g.Tasks()

	t.Run("priority-edit", func(t *testing.T) {
		o := NewOverlay(g)
		o.SetPriority(tasks[3], 99)
		got, err := sim.ReSimulate(o)
		if err != nil {
			t.Fatal(err)
		}
		if !sim.LastFellBack() {
			t.Fatal("priority edit did not fall back")
		}
		want, err := o.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		assertSameSim(t, o, got, want)
	})

	t.Run("structural-patch", func(t *testing.T) {
		p := NewPatch(g)
		nt := p.NewTask("extra", tasks[0].Kind, tasks[0].Thread, 40*time.Microsecond)
		p.AppendTask(nt)
		got, err := sim.ReSimulate(p)
		if err != nil {
			t.Fatal(err)
		}
		if !sim.LastFellBack() {
			t.Fatal("structural patch did not fall back")
		}
		want, err := p.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if got.Makespan != want.Makespan {
			t.Fatalf("makespan: incremental %v, cold %v", got.Makespan, want.Makespan)
		}
	})

	t.Run("timing-only-patch", func(t *testing.T) {
		p := NewPatch(g)
		p.SetDuration(tasks[7], 5*time.Microsecond)
		got, err := sim.ReSimulate(p)
		if err != nil {
			t.Fatal(err)
		}
		if sim.LastFellBack() {
			t.Fatal("timing-only patch fell back")
		}
		want, err := p.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		assertSameSim(t, p.Timing(), got, want)
	})

	t.Run("custom-scheduler", func(t *testing.T) {
		type wrapped struct{ EarliestStart }
		o := NewOverlay(g)
		o.SetDuration(tasks[5], 1*time.Microsecond)
		got, err := sim.ReSimulate(o, WithScheduler(wrapped{}))
		if err != nil {
			t.Fatal(err)
		}
		if !sim.LastFellBack() {
			t.Fatal("custom scheduler did not fall back")
		}
		want, err := o.Simulate(WithScheduler(wrapped{}))
		if err != nil {
			t.Fatal(err)
		}
		assertSameSim(t, o, got, want)
	})

	t.Run("negative-timing", func(t *testing.T) {
		o := NewOverlay(g)
		o.SetGap(tasks[2], -tasks[2].Duration-time.Microsecond)
		got, err := sim.ReSimulate(o)
		if err != nil {
			t.Fatal(err)
		}
		if !sim.LastFellBack() {
			t.Fatal("negative effective timing did not fall back")
		}
		want, err := o.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		assertSameSim(t, o, got, want)
	})

	t.Run("foreign-baseline-overlay", func(t *testing.T) {
		o := NewOverlay(g.Clone())
		if _, err := sim.ReSimulate(o); err == nil {
			t.Fatal("accepted an overlay over a foreign baseline")
		}
	})

	st := sim.Stats()
	if st.Calls == 0 || st.Fallbacks == 0 || st.Fallbacks >= st.Calls {
		t.Fatalf("implausible stats: %+v", st)
	}
}

// TestIncrementalUnforcedThread builds a thread whose warm order is NOT
// forced by dependency edges and checks that any divergence there goes
// cold — including a delta that genuinely flips the thread's execution
// order, where trusting the warm order would be wrong.
func TestIncrementalUnforcedThread(t *testing.T) {
	build := func() (*Graph, *Task, *Task, *Task, *Task) {
		g := NewGraph()
		c1 := g.NewTask("c1", kindFor(CPU(1)), CPU(1), 100*time.Microsecond)
		g.AppendTask(c1)
		c2 := g.NewTask("c2", kindFor(CPU(2)), CPU(2), 200*time.Microsecond)
		g.AppendTask(c2)
		g1 := g.NewTask("g1", kindFor(Stream(7)), Stream(7), 50*time.Microsecond)
		g.AppendTask(g1)
		g2 := g.NewTask("g2", kindFor(Stream(7)), Stream(7), 50*time.Microsecond)
		g.AppendTask(g2)
		// Unforce the stream: drop the sequence edge so g1/g2 order is
		// decided by readiness alone.
		if !g.RemoveDependency(g1, g2) {
			t.Fatal("no sequence edge to remove")
		}
		if err := g.AddDependency(c1, g1, DepCustom); err != nil {
			t.Fatal(err)
		}
		if err := g.AddDependency(c2, g2, DepCustom); err != nil {
			t.Fatal(err)
		}
		return g, c1, c2, g1, g2
	}

	g, c1, _, g1, g2 := build()
	sim, err := NewIncrementalSim(g)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// Warm order on the stream: g1 (ready 100) before g2 (ready 200).
	if warm.Start[g1.ID] != 100*time.Microsecond || warm.Start[g2.ID] != 200*time.Microsecond {
		t.Fatalf("unexpected warm schedule: g1=%v g2=%v", warm.Start[g1.ID], warm.Start[g2.ID])
	}

	// Delta that flips the order: c1 slows to 300µs, so g2 becomes
	// ready first and the cold scheduler runs it first.
	o := NewOverlay(g)
	o.SetDuration(c1, 300*time.Microsecond)
	got, err := sim.ReSimulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.LastFellBack() {
		t.Fatal("order-flipping delta on an unforced thread did not fall back")
	}
	want, err := o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	assertSameSim(t, o, got, want)
	if want.Start[g2.ID] != 200*time.Microsecond || want.Start[g1.ID] != 300*time.Microsecond {
		t.Fatalf("cold schedule did not flip: g1=%v g2=%v", want.Start[g1.ID], want.Start[g2.ID])
	}

	// A benign slowdown that keeps the order still goes cold — the
	// engine is conservative on unforced threads — and stays exact.
	o.Reset(g)
	o.SetDuration(c1, 120*time.Microsecond)
	got, err = sim.ReSimulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.LastFellBack() {
		t.Fatal("divergence on an unforced thread did not fall back")
	}
	want, err = o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	assertSameSim(t, o, got, want)
}

// TestSimResultResetClone covers the pooling helpers: Clone shares no
// storage, Reset empties in place while keeping capacity.
func TestSimResultResetClone(t *testing.T) {
	g, tasks := chain(4, 10*time.Microsecond)
	o := NewOverlay(g)
	o.SetDuration(tasks[1], 99*time.Microsecond)
	res, err := o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Clone()
	if c.Makespan != res.Makespan || len(c.Start) != len(res.Start) {
		t.Fatalf("clone mismatch: %+v vs %+v", c, res)
	}
	if c.TaskDuration(tasks[1]) != 99*time.Microsecond {
		t.Fatal("clone lost effective timings")
	}
	// Mutating the clone must not touch the original.
	c.Start[0] = 1234
	for tid := range c.ThreadEnd {
		c.ThreadEnd[tid] = 5678
	}
	if res.Start[0] == 1234 {
		t.Fatal("clone shares Start storage")
	}
	for _, end := range res.ThreadEnd {
		if end == 5678 {
			t.Fatal("clone shares ThreadEnd storage")
		}
	}

	res.Reset()
	if res.Makespan != 0 || len(res.Start) != 0 || len(res.ThreadEnd) != 0 {
		t.Fatalf("reset left state behind: %+v", res)
	}
	if res.TaskDuration(tasks[1]) != tasks[1].Duration {
		t.Fatal("reset kept effective timings")
	}
	// A reset buffer is immediately reusable via WithResultBuffer.
	if _, err := g.Simulate(WithResultBuffer(res)); err != nil {
		t.Fatal(err)
	}
	if len(res.Start) != g.IDSpan() {
		t.Fatal("buffer not refilled after Reset")
	}
}
