package core

import (
	"sync"
	"sync/atomic"

	"daydream/internal/trace"
)

// LayerPhaseIndex is a read-only index of a graph's task-to-layer
// mapping: for every (layer, round) it records the backward-phase GPU
// task finishing last and the forward-phase GPU task starting first in
// the traced schedule, plus the earliest weight-update task and cached
// phase-filtered GPU task lists. It replaces the O(layers × tasks)
// scans the what-if models otherwise pay per query (Algorithms 6 and 7
// walk every layer) with a single O(tasks) build.
//
// The index snapshots the graph at build time. Graph mutations that
// allocate or remove tasks, and MapLayers, invalidate the memoized copy
// (the next LayerPhaseIndex call rebuilds); direct writes to a Task's
// Layer/Phase fields do not, so re-map through MapLayers or call
// InvalidateLayerPhaseIndex after hand-editing mappings. Tasks returned
// by the index remain valid as long as they are not removed, so a
// transformation may hold the index across its own insertions — newly
// inserted tasks are simply absent from the snapshot.
type LayerPhaseIndex struct {
	layers int
	rounds int

	// lastBwdGPU and firstFwdGPU are indexed by round*layers+layer;
	// nil where no task matches.
	lastBwdGPU  []*Task
	firstFwdGPU []*Task
	// lastBwdGPUAny is the per-layer result across all rounds.
	lastBwdGPUAny []*Task

	earliestWU *Task
	gpu        []*Task
	gpuCompute []bool
	wuGPU      []*Task

	// nameMatch memoizes GPUTasksMatching scans; nameMatchN bounds it.
	nameMatch  sync.Map
	nameMatchN atomic.Int32
}

// LayerPhaseIndex returns the graph's memoized layer/phase index,
// building it on first use. The memo is published atomically, so any
// number of goroutines sharing an immutable graph (e.g. overlay sweep
// workers) may call it concurrently; concurrent first calls may build
// duplicate-but-identical indexes, of which one wins.
func (g *Graph) LayerPhaseIndex() *LayerPhaseIndex {
	if ix := g.layerIdx.Load(); ix != nil {
		return ix
	}
	ix := buildLayerPhaseIndex(g)
	g.layerIdx.Store(ix)
	return ix
}

// InvalidateLayerPhaseIndex drops the memoized index, forcing a rebuild
// on the next LayerPhaseIndex call. Structural mutations and MapLayers
// call it automatically. The memory-annotation memo is derived from the
// same task/layer snapshot, so it is dropped with the index.
func (g *Graph) InvalidateLayerPhaseIndex() {
	g.layerIdx.Store(nil)
	g.InvalidateMemAnnotation()
}

// layerIdxMemo is the atomic memo cell embedded in Graph.
type layerIdxMemo struct {
	p atomic.Pointer[LayerPhaseIndex]
}

func (m *layerIdxMemo) Load() *LayerPhaseIndex    { return m.p.Load() }
func (m *layerIdxMemo) Store(ix *LayerPhaseIndex) { m.p.Store(ix) }

// buildLayerPhaseIndex scans the graph once, in task-creation order so
// ties resolve exactly as the original linear scans did.
func buildLayerPhaseIndex(g *Graph) *LayerPhaseIndex {
	ix := &LayerPhaseIndex{}
	for _, t := range g.tasks {
		if t == nil {
			continue
		}
		if t.OnGPU() {
			ix.gpu = append(ix.gpu, t)
			ix.gpuCompute = append(ix.gpuCompute, ComputeIntensivePred(t))
		}
		if !t.HasLayer {
			continue
		}
		if t.LayerIndex >= ix.layers {
			ix.layers = t.LayerIndex + 1
		}
		if t.Round >= ix.rounds {
			ix.rounds = t.Round + 1
		}
	}
	if ix.rounds == 0 {
		ix.rounds = 1
	}
	ix.lastBwdGPU = make([]*Task, ix.rounds*ix.layers)
	ix.firstFwdGPU = make([]*Task, ix.rounds*ix.layers)
	ix.lastBwdGPUAny = make([]*Task, ix.layers)
	for _, t := range g.tasks {
		if t == nil || !t.HasLayer {
			continue
		}
		if t.Phase == trace.WeightUpdate {
			if ix.earliestWU == nil || t.TracedStart < ix.earliestWU.TracedStart {
				ix.earliestWU = t
			}
			if t.OnGPU() {
				ix.wuGPU = append(ix.wuGPU, t)
			}
		}
		if !t.OnGPU() || t.LayerIndex < 0 {
			continue
		}
		slot := t.Round*ix.layers + t.LayerIndex
		switch t.Phase {
		case trace.Backward:
			if cur := ix.lastBwdGPU[slot]; cur == nil || t.TracedStart > cur.TracedStart {
				ix.lastBwdGPU[slot] = t
			}
			if cur := ix.lastBwdGPUAny[t.LayerIndex]; cur == nil || t.TracedStart > cur.TracedStart {
				ix.lastBwdGPUAny[t.LayerIndex] = t
			}
		case trace.Forward:
			if cur := ix.firstFwdGPU[slot]; cur == nil || t.TracedStart < cur.TracedStart {
				ix.firstFwdGPU[slot] = t
			}
		}
	}
	return ix
}

// LastBackwardGPU returns the backward-phase GPU task of the given
// layer index and round that finishes last in the traced schedule, or
// nil.
func (ix *LayerPhaseIndex) LastBackwardGPU(layer, round int) *Task {
	if layer < 0 || layer >= ix.layers || round < 0 || round >= ix.rounds {
		return nil
	}
	return ix.lastBwdGPU[round*ix.layers+layer]
}

// LastBackwardGPUAnyRound is LastBackwardGPU across all rounds.
func (ix *LayerPhaseIndex) LastBackwardGPUAnyRound(layer int) *Task {
	if layer < 0 || layer >= ix.layers {
		return nil
	}
	return ix.lastBwdGPUAny[layer]
}

// FirstForwardGPU returns the forward-phase GPU task of the given layer
// index and round that starts first in the traced schedule, or nil.
func (ix *LayerPhaseIndex) FirstForwardGPU(layer, round int) *Task {
	if layer < 0 || layer >= ix.layers || round < 0 || round >= ix.rounds {
		return nil
	}
	return ix.firstFwdGPU[round*ix.layers+layer]
}

// EarliestWeightUpdate returns the earliest task of the weight-update
// phase (Algorithm 6's "WU ← the earliest node in the weight update
// phase"), or nil.
func (ix *LayerPhaseIndex) EarliestWeightUpdate() *Task { return ix.earliestWU }

// GPUTasks returns every GPU task in creation order. The slice is
// shared: callers must not modify it.
func (ix *LayerPhaseIndex) GPUTasks() []*Task { return ix.gpu }

// nameMatchCap bounds the GPUTasksMatching memo so an adversarial
// stream of distinct substrings (e.g. untrusted what-if requests to a
// long-lived service) cannot grow the index without bound. Past the
// cap, lookups still work — they just rescan.
const nameMatchCap = 512

// GPUTasksMatching returns every GPU task whose name contains sub, in
// creation order, memoizing the result per substring. Repeatedly
// evaluating the same kernel target at different factors — the common
// shape of a COZ-style serving workload — otherwise pays an O(tasks)
// name scan per query that dwarfs the sub-millisecond simulation
// itself. The returned slice is shared: callers must not modify it.
// Safe for concurrent use.
func (ix *LayerPhaseIndex) GPUTasksMatching(sub string) []*Task {
	if v, ok := ix.nameMatch.Load(sub); ok {
		return v.([]*Task)
	}
	match := NameContains(sub)
	var out []*Task
	for _, t := range ix.gpu {
		if match(t) {
			out = append(out, t)
		}
	}
	if ix.nameMatchN.Add(1) <= nameMatchCap {
		ix.nameMatch.Store(sub, out)
	}
	return out
}

// GPUComputeBound returns, parallel to GPUTasks, whether each GPU task
// is compute-intensive under the paper's Algorithm-3 name convention
// (snapshotted at build time — renaming a task does not invalidate the
// memo). The slice is shared: callers must not modify it.
func (ix *LayerPhaseIndex) GPUComputeBound() []bool { return ix.gpuCompute }

// WeightUpdateGPUTasks returns the weight-update-phase GPU tasks in
// creation order. The slice is shared: callers must not modify it.
func (ix *LayerPhaseIndex) WeightUpdateGPUTasks() []*Task { return ix.wuGPU }

// Rounds returns the number of rounds the index covers (1 for a
// non-repeated graph).
func (ix *LayerPhaseIndex) Rounds() int { return ix.rounds }

// Layers returns the exclusive upper bound of mapped layer indices.
func (ix *LayerPhaseIndex) Layers() int { return ix.layers }
