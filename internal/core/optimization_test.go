package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"daydream/internal/trace"
)

// optTestGraph builds a small two-thread graph for optimization tests.
func optTestGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < n; i++ {
		launch := g.NewTask("cudaLaunchKernel", trace.KindLaunch, CPU(1), 2*time.Microsecond)
		g.AppendTask(launch)
		kern := g.NewTask(fmt.Sprintf("k%d", i), trace.KindKernel, Stream(7), 10*time.Microsecond)
		g.AppendTask(kern)
		if err := g.Correlate(launch, kern); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// halveGPU is a timing-only test optimization.
func halveGPU() Optimization {
	return TimingOpt("halve-gpu", func(o *Overlay) error {
		for _, u := range o.Base().Tasks() {
			if u.OnGPU() {
				o.SetDuration(u, o.Duration(u)/2)
			}
		}
		return nil
	}, nil)
}

func TestOptFootprintString(t *testing.T) {
	if TimingOnly.String() != "timing-only" || Structural.String() != "structural" {
		t.Fatalf("footprint strings: %q, %q", TimingOnly, Structural)
	}
}

func TestTimingOptDerivedApplyGraph(t *testing.T) {
	g := optTestGraph(t, 6)
	opt := halveGPU()
	if opt.Footprint() != TimingOnly {
		t.Fatalf("footprint = %v", opt.Footprint())
	}

	// Overlay path.
	o := NewOverlay(g)
	if err := opt.ApplyOverlay(o); err != nil {
		t.Fatal(err)
	}
	want, err := o.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}

	// Clone path, derived from the overlay form.
	c := g.Clone()
	if err := opt.ApplyGraph(c); err != nil {
		t.Fatal(err)
	}
	got, err := c.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("derived clone path %v, overlay path %v", got, want)
	}
	for _, u := range c.Tasks() {
		if u.OnGPU() && u.Duration != 5*time.Microsecond {
			t.Fatalf("derived ApplyGraph did not write back: %v", u)
		}
	}
	// The baseline is untouched by both paths.
	for _, u := range g.Tasks() {
		if u.OnGPU() && u.Duration != 10*time.Microsecond {
			t.Fatalf("baseline mutated: %v", u)
		}
	}
}

func TestStructuralOptRejectsOverlay(t *testing.T) {
	opt := StructuralOpt("drop-all", func(g *Graph) error { return nil })
	if opt.Footprint() != Structural {
		t.Fatalf("footprint = %v", opt.Footprint())
	}
	if err := opt.ApplyOverlay(NewOverlay(optTestGraph(t, 1))); err == nil {
		t.Fatal("structural optimization applied through an overlay")
	}
}

func TestStackFootprintAndName(t *testing.T) {
	timing := halveGPU()
	structural := StructuralOpt("surgery", func(g *Graph) error { return nil })

	if fp := Stack(timing, timing).Footprint(); fp != TimingOnly {
		t.Fatalf("timing-only stack footprint = %v", fp)
	}
	if fp := Stack(timing, structural).Footprint(); fp != Structural {
		t.Fatalf("mixed stack footprint = %v", fp)
	}
	if name := Stack(timing, structural).Name(); name != "halve-gpu+surgery" {
		t.Fatalf("stack name = %q", name)
	}
	// Nested stacks flatten; nil parts drop.
	nested := Stack(Stack(timing, nil), structural)
	if name := nested.Name(); name != "halve-gpu+surgery" {
		t.Fatalf("flattened stack name = %q", name)
	}
}

func TestEmptyStackIsNoop(t *testing.T) {
	empty := Stack()
	if !OptIsNoop(empty) {
		t.Fatal("empty stack not a no-op")
	}
	if OptIsNoop(halveGPU()) || OptIsNoop(Stack(halveGPU())) {
		t.Fatal("non-empty optimization reported as no-op")
	}
	if !OptIsNoop(nil) {
		t.Fatal("nil optimization not a no-op")
	}
	if empty.Name() != "baseline" {
		t.Fatalf("empty stack name = %q", empty.Name())
	}
	// Applying the no-op changes nothing on either path.
	g := optTestGraph(t, 3)
	want, _ := g.PredictIteration()
	o := NewOverlay(g)
	if err := empty.ApplyOverlay(o); err != nil {
		t.Fatal(err)
	}
	if got, _ := o.PredictIteration(); got != want {
		t.Fatalf("no-op overlay changed prediction: %v vs %v", got, want)
	}
	c := g.Clone()
	if err := empty.ApplyGraph(c); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.PredictIteration(); got != want {
		t.Fatalf("no-op ApplyGraph changed prediction: %v vs %v", got, want)
	}
}

func TestStackAppliesInOrder(t *testing.T) {
	var order []string
	mk := func(name string) Optimization {
		return TimingOpt(name, func(*Overlay) error {
			order = append(order, name)
			return nil
		}, nil)
	}
	s := Stack(mk("a"), mk("b"), mk("c"))
	if err := s.ApplyOverlay(NewOverlay(optTestGraph(t, 1))); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "abc" {
		t.Fatalf("application order = %v", order)
	}
}

func TestRewriteOptAndStackRewrite(t *testing.T) {
	g := optTestGraph(t, 4)
	repeat := RewriteOpt("repeat2",
		func(c *Graph) (*Graph, error) { return c.Repeat(2) },
		func(rg *Graph, res *SimResult) (time.Duration, error) {
			return RoundSpan(rg, res, 1) - RoundSpan(rg, res, 0), nil
		})
	if repeat.Footprint() != Structural {
		t.Fatalf("rewriter footprint = %v", repeat.Footprint())
	}
	if err := repeat.ApplyGraph(g.Clone()); err == nil {
		t.Fatal("rewriter applied in place")
	}
	if OptMeasure(repeat) == nil {
		t.Fatal("rewriter lost its measure")
	}

	// ApplyOptimization routes through RewriteGraph.
	rg, err := ApplyOptimization(g.Clone(), repeat)
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumTasks() != 2*g.NumTasks() {
		t.Fatalf("rewritten graph has %d tasks, want %d", rg.NumTasks(), 2*g.NumTasks())
	}

	// A stack mixing in-place and rewriting parts threads the graph
	// through, keeps the rewriter's measure, and refuses ApplyGraph.
	mixed := Stack(halveGPU(), repeat)
	if err := mixed.ApplyGraph(g.Clone()); err == nil {
		t.Fatal("stack with a rewriter applied in place")
	}
	if OptMeasure(mixed) == nil {
		t.Fatal("stack lost the rewriter's measure")
	}
	mg, err := ApplyOptimization(g.Clone(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if mg.NumTasks() != 2*g.NumTasks() {
		t.Fatalf("mixed-stack graph has %d tasks, want %d", mg.NumTasks(), 2*g.NumTasks())
	}
}

func TestStackOverlayRejectsStructuralPart(t *testing.T) {
	s := Stack(halveGPU(), StructuralOpt("surgery", func(g *Graph) error { return nil }))
	if err := s.ApplyOverlay(NewOverlay(optTestGraph(t, 1))); err == nil {
		t.Fatal("structural stack applied through an overlay")
	}
}
