package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"daydream/internal/trace"
)

// optTestGraph builds a small two-thread graph for optimization tests.
func optTestGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < n; i++ {
		launch := g.NewTask("cudaLaunchKernel", trace.KindLaunch, CPU(1), 2*time.Microsecond)
		g.AppendTask(launch)
		kern := g.NewTask(fmt.Sprintf("k%d", i), trace.KindKernel, Stream(7), 10*time.Microsecond)
		g.AppendTask(kern)
		if err := g.Correlate(launch, kern); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// halveGPU is a timing-only test optimization.
func halveGPU() Optimization {
	return TimingOpt("halve-gpu", func(o *Overlay) error {
		for _, u := range o.Base().Tasks() {
			if u.OnGPU() {
				o.SetDuration(u, o.Duration(u)/2)
			}
		}
		return nil
	}, nil)
}

// dropFirstKernel is a patch-form structural test optimization.
func dropFirstKernel() Optimization {
	return PatchOpt("drop-first-kernel", Structural, func(p *Patch) error {
		for _, u := range p.Base().Tasks() {
			if u.OnGPU() {
				p.RemoveTask(u)
				return nil
			}
		}
		return fmt.Errorf("no GPU task")
	}, nil)
}

func TestOptFootprintString(t *testing.T) {
	if TimingOnly.String() != "timing-only" || Structural.String() != "structural" {
		t.Fatalf("footprint strings: %q, %q", TimingOnly, Structural)
	}
}

func TestTimingOptAppliesThroughPatchAndAdapters(t *testing.T) {
	g := optTestGraph(t, 6)
	opt := halveGPU()
	if opt.Footprint() != TimingOnly {
		t.Fatalf("footprint = %v", opt.Footprint())
	}
	if OptNeedsGraph(opt) {
		t.Fatal("timing-only optimization demands a materialized graph")
	}

	// Unified patch path.
	p := NewPatch(g)
	if err := opt.Apply(p); err != nil {
		t.Fatal(err)
	}
	if p.Structural() {
		t.Fatal("timing-only Apply recorded structural deltas")
	}
	want, err := p.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}

	// Deprecated overlay adapter: edits land in the caller's overlay.
	o := NewOverlay(g)
	if err := ApplyOverlay(opt, o); err != nil {
		t.Fatal(err)
	}
	fromOverlay, err := o.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if fromOverlay != want {
		t.Fatalf("overlay adapter %v, patch path %v", fromOverlay, want)
	}

	// Deprecated in-place adapter, derived from the overlay form.
	c := g.Clone()
	if err := ApplyGraph(opt, c); err != nil {
		t.Fatal(err)
	}
	got, err := c.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("derived clone path %v, patch path %v", got, want)
	}
	for _, u := range c.Tasks() {
		if u.OnGPU() && u.Duration != 5*time.Microsecond {
			t.Fatalf("derived ApplyGraph did not write back: %v", u)
		}
	}
	// The baseline is untouched by every path.
	for _, u := range g.Tasks() {
		if u.OnGPU() && u.Duration != 10*time.Microsecond {
			t.Fatalf("baseline mutated: %v", u)
		}
	}
}

func TestPatchOptAppliesStructurally(t *testing.T) {
	g := optTestGraph(t, 4)
	opt := dropFirstKernel()
	if opt.Footprint() != Structural {
		t.Fatalf("footprint = %v", opt.Footprint())
	}
	if OptNeedsGraph(opt) {
		t.Fatal("patch-form structural optimization demands a materialized graph")
	}

	// Patch path.
	p := NewPatch(g)
	if err := opt.Apply(p); err != nil {
		t.Fatal(err)
	}
	if !p.Structural() {
		t.Fatal("structural Apply recorded no structural deltas")
	}
	want, err := p.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}

	// ApplyGraph adapter materializes the same deltas in place.
	c := g.Clone()
	if err := ApplyGraph(opt, c); err != nil {
		t.Fatal(err)
	}
	if c.NumTasks() != g.NumTasks()-1 {
		t.Fatalf("adapter removed %d tasks, want 1", g.NumTasks()-c.NumTasks())
	}
	got, err := c.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("materialized path %v, patch path %v", got, want)
	}

	// The overlay adapter refuses structural footprints.
	if err := ApplyOverlay(opt, NewOverlay(g)); err == nil {
		t.Fatal("structural optimization applied through an overlay")
	}
}

func TestStructuralOptNeedsGraph(t *testing.T) {
	opt := StructuralOpt("drop-all", func(g *Graph) error { return nil })
	if opt.Footprint() != Structural {
		t.Fatalf("footprint = %v", opt.Footprint())
	}
	if !OptNeedsGraph(opt) {
		t.Fatal("legacy in-place transform does not demand a materialized graph")
	}
	if err := ApplyOverlay(opt, NewOverlay(optTestGraph(t, 1))); err == nil {
		t.Fatal("structural optimization applied through an overlay")
	}
	if err := opt.Apply(NewPatch(optTestGraph(t, 1))); err == nil {
		t.Fatal("legacy in-place transform applied through a patch")
	}
	// ApplyGraph still runs the legacy func directly.
	if err := ApplyGraph(opt, optTestGraph(t, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestStackFootprintAndName(t *testing.T) {
	timing := halveGPU()
	structural := StructuralOpt("surgery", func(g *Graph) error { return nil })

	if fp := Stack(timing, timing).Footprint(); fp != TimingOnly {
		t.Fatalf("timing-only stack footprint = %v", fp)
	}
	if fp := Stack(timing, structural).Footprint(); fp != Structural {
		t.Fatalf("mixed stack footprint = %v", fp)
	}
	if name := Stack(timing, structural).Name(); name != "halve-gpu+surgery" {
		t.Fatalf("stack name = %q", name)
	}
	// Nested stacks flatten; nil parts drop.
	nested := Stack(Stack(timing, nil), structural)
	if name := nested.Name(); name != "halve-gpu+surgery" {
		t.Fatalf("flattened stack name = %q", name)
	}
	// A stack of patch-capable parts does not demand a graph; one
	// legacy part moves the whole stack to the clone path.
	if OptNeedsGraph(Stack(timing, dropFirstKernel())) {
		t.Fatal("patch-capable stack demands a materialized graph")
	}
	if !OptNeedsGraph(Stack(timing, structural)) {
		t.Fatal("stack with a legacy part does not demand a materialized graph")
	}
}

func TestEmptyStackIsNoop(t *testing.T) {
	empty := Stack()
	if !OptIsNoop(empty) {
		t.Fatal("empty stack not a no-op")
	}
	if OptIsNoop(halveGPU()) || OptIsNoop(Stack(halveGPU())) {
		t.Fatal("non-empty optimization reported as no-op")
	}
	if !OptIsNoop(nil) {
		t.Fatal("nil optimization not a no-op")
	}
	if empty.Name() != "baseline" {
		t.Fatalf("empty stack name = %q", empty.Name())
	}
	// Applying the no-op changes nothing on either path.
	g := optTestGraph(t, 3)
	want, _ := g.PredictIteration()
	p := NewPatch(g)
	if err := empty.Apply(p); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.PredictIteration(); got != want {
		t.Fatalf("no-op patch changed prediction: %v vs %v", got, want)
	}
	c := g.Clone()
	if err := ApplyGraph(empty, c); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.PredictIteration(); got != want {
		t.Fatalf("no-op ApplyGraph changed prediction: %v vs %v", got, want)
	}
}

func TestStackAppliesInOrder(t *testing.T) {
	var order []string
	mk := func(name string) Optimization {
		return TimingOpt(name, func(*Overlay) error {
			order = append(order, name)
			return nil
		}, nil)
	}
	s := Stack(mk("a"), mk("b"), mk("c"))
	if err := s.Apply(NewPatch(optTestGraph(t, 1))); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "abc" {
		t.Fatalf("application order = %v", order)
	}
}

// TestStackMixesTimingAndPatchParts checks a stack of a timing-only and
// a patch-form structural part applies through ONE patch, and predicts
// identically to the sequential clone application.
func TestStackMixesTimingAndPatchParts(t *testing.T) {
	g := optTestGraph(t, 6)
	s := Stack(halveGPU(), dropFirstKernel())
	if OptNeedsGraph(s) {
		t.Fatal("mixed patch-capable stack demands a materialized graph")
	}
	p := NewPatch(g)
	if err := s.Apply(p); err != nil {
		t.Fatal(err)
	}
	got, err := p.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := ApplyGraph(halveGPU(), c); err != nil {
		t.Fatal(err)
	}
	if err := ApplyGraph(dropFirstKernel(), c); err != nil {
		t.Fatal(err)
	}
	want, err := c.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("mixed stack via one patch %v, sequential clone %v", got, want)
	}
}

func TestRewriteOptAndStackRewrite(t *testing.T) {
	g := optTestGraph(t, 4)
	repeat := RewriteOpt("repeat2",
		func(c *Graph) (*Graph, error) { return c.Repeat(2) },
		func(v TaskView, res *SimResult) (time.Duration, error) {
			return RoundSpan(v, res, 1) - RoundSpan(v, res, 0), nil
		})
	if repeat.Footprint() != Structural {
		t.Fatalf("rewriter footprint = %v", repeat.Footprint())
	}
	if !OptNeedsGraph(repeat) {
		t.Fatal("rewriter does not demand a materialized graph")
	}
	if err := ApplyGraph(repeat, g.Clone()); err == nil {
		t.Fatal("rewriter applied in place")
	}
	if err := repeat.Apply(NewPatch(g)); err == nil {
		t.Fatal("rewriter applied through a patch")
	}
	if OptMeasure(repeat) == nil {
		t.Fatal("rewriter lost its measure")
	}

	// ApplyOptimization routes through RewriteGraph.
	rg, err := ApplyOptimization(g.Clone(), repeat)
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumTasks() != 2*g.NumTasks() {
		t.Fatalf("rewritten graph has %d tasks, want %d", rg.NumTasks(), 2*g.NumTasks())
	}

	// A stack mixing in-place and rewriting parts threads the graph
	// through, keeps the rewriter's measure, and refuses ApplyGraph.
	mixed := Stack(halveGPU(), repeat)
	if err := ApplyGraph(mixed, g.Clone()); err == nil {
		t.Fatal("stack with a rewriter applied in place")
	}
	if OptMeasure(mixed) == nil {
		t.Fatal("stack lost the rewriter's measure")
	}
	mg, err := ApplyOptimization(g.Clone(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if mg.NumTasks() != 2*g.NumTasks() {
		t.Fatalf("mixed-stack graph has %d tasks, want %d", mg.NumTasks(), 2*g.NumTasks())
	}
}

func TestStackOverlayRejectsStructuralPart(t *testing.T) {
	s := Stack(halveGPU(), StructuralOpt("surgery", func(g *Graph) error { return nil }))
	if err := ApplyOverlay(s, NewOverlay(optTestGraph(t, 1))); err == nil {
		t.Fatal("structural stack applied through an overlay")
	}
	// A timing-only Apply that sneaks structural deltas in is also
	// rejected by the overlay adapter.
	sneaky := PatchOpt("sneaky", TimingOnly, func(p *Patch) error {
		p.NewTask("x", trace.KindKernel, Stream(1), time.Microsecond)
		return nil
	}, nil)
	if err := ApplyOverlay(sneaky, NewOverlay(optTestGraph(t, 1))); err == nil {
		t.Fatal("structural deltas leaked through the overlay adapter")
	}
}
