package core

import "time"

// TaskView is the read-only task set a simulation, measurement, report
// or scheduling policy reads from: a *Graph, an *Overlay viewing a
// shared baseline through copy-on-write timing deltas, or a *Patch
// layering structural deltas on top of those. Tasks come back in
// creation order. Consumers must treat the tasks and every returned
// slice as read-only; a Patch reuses the Tasks slice's backing array
// across calls.
//
// Beyond enumeration, the view exposes the *effective* per-task
// attributes — duration, gap, priority, thread, dependency parents and
// children, sequence links. For a *Graph these are the raw Task fields;
// for an *Overlay or *Patch they read through the copy-on-write deltas,
// so code written against the view (the scheduled simulator,
// CriticalPathView, Measure functions) works identically over all three
// without cloning or materializing anything.
type TaskView interface {
	// Tasks returns the live tasks in creation order.
	Tasks() []*Task
	// Task returns the live task with the given ID, or nil.
	Task(id int) *Task
	// IDSpan returns the exclusive upper bound of effective task IDs;
	// SimResult.Start has this length.
	IDSpan() int
	// NumTasks returns the number of live tasks.
	NumTasks() int
	// Duration returns the task's effective duration under the view.
	Duration(t *Task) time.Duration
	// Gap returns the task's effective gap under the view.
	Gap(t *Task) time.Duration
	// Priority returns the task's effective scheduling priority.
	Priority(t *Task) int
	// Thread returns the execution thread the task occupies.
	Thread(t *Task) ThreadID
	// Parents returns the task's effective dependency parents.
	Parents(t *Task) []*Task
	// Children returns the task's effective dependents.
	Children(t *Task) []*Task
	// SeqPrev returns the previous task on the task's execution thread
	// in the effective sequence, or nil.
	SeqPrev(t *Task) *Task
	// SeqNext returns the next task on the task's execution thread in
	// the effective sequence, or nil.
	SeqNext(t *Task) *Task
}

// schedView is the internal contract the view-generic scheduled
// simulator needs on top of TaskView: allocation-free, deterministic
// task and live-child iteration. All three views implement it.
type schedView interface {
	TaskView
	eachTask(fn func(*Task))
	eachChild(t *Task, fn func(*Task))
}

// Graph's TaskView accessors read the raw Task fields — the graph IS
// its own effective view.

// Duration returns t.Duration (TaskView).
func (g *Graph) Duration(t *Task) time.Duration { return t.Duration }

// Gap returns t.Gap (TaskView).
func (g *Graph) Gap(t *Task) time.Duration { return t.Gap }

// Priority returns t.Priority (TaskView).
func (g *Graph) Priority(t *Task) int { return t.Priority }

// Thread returns t.Thread (TaskView).
func (g *Graph) Thread(t *Task) ThreadID { return t.Thread }

// Parents returns the task's dependency parents (TaskView). The slice
// must not be modified.
func (g *Graph) Parents(t *Task) []*Task { return t.parents }

// Children returns the task's dependents (TaskView). The slice must not
// be modified.
func (g *Graph) Children(t *Task) []*Task { return t.children }

// SeqPrev returns the previous task on the same thread, or nil
// (TaskView).
func (g *Graph) SeqPrev(t *Task) *Task { return t.seqPrev }

// SeqNext returns the next task on the same thread, or nil (TaskView).
func (g *Graph) SeqNext(t *Task) *Task { return t.seqNext }

func (g *Graph) eachTask(fn func(*Task)) {
	for _, t := range g.tasks {
		if t != nil {
			fn(t)
		}
	}
}

func (g *Graph) eachChild(t *Task, fn func(*Task)) {
	for _, c := range t.children {
		fn(c)
	}
}

// Overlay's TaskView accessors delegate structure to the baseline
// (an overlay never changes it) and timings/priorities to the deltas.

// Tasks returns the baseline's live tasks in creation order (TaskView).
func (o *Overlay) Tasks() []*Task { return o.base.Tasks() }

// Task returns the baseline task with the given ID, or nil (TaskView).
func (o *Overlay) Task(id int) *Task { return o.base.Task(id) }

// IDSpan returns the baseline's ID span (TaskView).
func (o *Overlay) IDSpan() int { return o.base.IDSpan() }

// NumTasks returns the baseline's live-task count (TaskView).
func (o *Overlay) NumTasks() int { return o.base.NumTasks() }

// Thread returns t.Thread (TaskView).
func (o *Overlay) Thread(t *Task) ThreadID { return t.Thread }

// Parents returns the task's dependency parents (TaskView).
func (o *Overlay) Parents(t *Task) []*Task { return t.parents }

// Children returns the task's dependents (TaskView).
func (o *Overlay) Children(t *Task) []*Task { return t.children }

// SeqPrev returns the previous task on the same thread, or nil
// (TaskView).
func (o *Overlay) SeqPrev(t *Task) *Task { return t.seqPrev }

// SeqNext returns the next task on the same thread, or nil (TaskView).
func (o *Overlay) SeqNext(t *Task) *Task { return t.seqNext }

func (o *Overlay) eachTask(fn func(*Task)) { o.base.eachTask(fn) }

func (o *Overlay) eachChild(t *Task, fn func(*Task)) { o.base.eachChild(t, fn) }

// Patch's TaskView accessors read through the structural deltas; its
// Tasks/Task/IDSpan/NumTasks/Duration/Gap/Priority live in patch.go.

// Thread returns t.Thread (TaskView). Appendix tasks carry the thread
// their placement primitive assigned.
func (p *Patch) Thread(t *Task) ThreadID { return t.Thread }

// Parents returns the task's live effective dependency parents: the
// unmasked baseline parents in baseline order followed by patch-added
// in-edges in addition order — exactly the parent order the
// materialized graph would carry (TaskView). The slice is fresh.
func (p *Patch) Parents(t *Task) []*Task { return p.effParents(t) }

// Children returns the task's live effective dependents, unmasked
// baseline children first, patch-added edges after (TaskView). The
// slice is fresh.
func (p *Patch) Children(t *Task) []*Task { return p.effChildren(t) }

// SeqPrev returns the previous task in the effective thread sequence,
// or nil (TaskView).
func (p *Patch) SeqPrev(t *Task) *Task { return p.effSeqPrev(t) }

// SeqNext returns the next task in the effective thread sequence, or
// nil (TaskView).
func (p *Patch) SeqNext(t *Task) *Task { return p.effSeqNext(t) }

func (p *Patch) eachTask(fn func(*Task)) {
	for _, t := range p.base.tasks {
		if t == nil {
			continue
		}
		if _, gone := p.removed[t.ID]; gone {
			continue
		}
		fn(t)
	}
	for _, t := range p.added {
		if _, gone := p.removed[t.ID]; gone {
			continue
		}
		fn(t)
	}
}

func (p *Patch) eachChild(t *Task, fn func(*Task)) {
	if !p.isAppendix(t) {
		masked := len(p.removedEdges) > 0
		for _, c := range t.children {
			if _, gone := p.removed[c.ID]; gone {
				continue
			}
			if masked && !p.edgeLive(t.ID, c.ID) {
				continue
			}
			fn(c)
		}
	}
	for _, e := range p.addedOut[t.ID] {
		if _, gone := p.removed[e.to.ID]; gone {
			continue
		}
		fn(e.to)
	}
}
