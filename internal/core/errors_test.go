package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// pickFirst is a minimal custom scheduler forcing the scheduled
// (slice-frontier) simulation path.
type pickFirst struct{}

func (pickFirst) Pick(frontier []*Task, ctx *SchedContext) int { return 0 }

// trippingCtx is a context whose Err starts returning context.Canceled
// after trip calls — it sneaks past the entry check to exercise the
// periodic in-loop polls deterministically.
type trippingCtx struct {
	context.Context
	calls, trip int
}

func (c *trippingCtx) Err() error {
	c.calls++
	if c.calls > c.trip {
		return context.Canceled
	}
	return nil
}

func TestPatchCycleIsTyped(t *testing.T) {
	g, ts := chainGraph(t)
	p := NewPatch(g)
	// a → k1 → k2 exists (correlation + sequence); closing k2 → a makes
	// a cycle in the effective view only.
	if err := p.AddDependency(ts[3], ts[0], DepCustom); err != nil {
		t.Fatal(err)
	}

	if err := p.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	} else {
		var ce *CycleError
		if !errors.As(err, &ce) || len(ce.Members) == 0 {
			t.Fatalf("Validate = %v, want *CycleError with members", err)
		}
	}

	// Heap path: frontier starvation, never a partial schedule.
	res, err := p.Simulate()
	if res != nil || !errors.Is(err, ErrStalled) {
		t.Fatalf("Simulate = (%v, %v), want (nil, ErrStalled)", res, err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("Simulate error %v is not a *StallError", err)
	}
	if len(se.Blocked) == 0 || se.Executed >= se.Live {
		t.Fatalf("StallError = %+v, want blocked tasks and executed < live", se)
	}

	// Scheduled path: same typed error.
	res, err = p.Simulate(WithScheduler(pickFirst{}))
	if res != nil || !errors.Is(err, ErrStalled) {
		t.Fatalf("scheduled Simulate = (%v, %v), want (nil, ErrStalled)", res, err)
	}

	// The baseline is untouched and still simulates.
	if err := g.Validate(); err != nil {
		t.Fatalf("baseline Validate after patch cycle: %v", err)
	}
	if _, err := g.Simulate(); err != nil {
		t.Fatalf("baseline Simulate after patch cycle: %v", err)
	}
}

func TestGraphCycleIsTyped(t *testing.T) {
	g, ts := chainGraph(t)
	if err := g.AddDependency(ts[3], ts[0], DepCustom); err != nil {
		t.Fatal(err)
	}

	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	}

	res, err := g.Simulate()
	if res != nil || !errors.Is(err, ErrStalled) {
		t.Fatalf("Simulate = (%v, %v), want (nil, ErrStalled)", res, err)
	}
	res, err = g.Simulate(WithScheduler(pickFirst{}))
	if res != nil || !errors.Is(err, ErrStalled) {
		t.Fatalf("scheduled Simulate = (%v, %v), want (nil, ErrStalled)", res, err)
	}

	o := NewOverlay(g)
	res, err = o.Simulate()
	if res != nil || !errors.Is(err, ErrStalled) {
		t.Fatalf("overlay Simulate = (%v, %v), want (nil, ErrStalled)", res, err)
	}
}

func TestPatchValidateDetectsNegativeTiming(t *testing.T) {
	g, ts := chainGraph(t)
	p := NewPatch(g)
	if err := p.Validate(); err != nil {
		t.Fatalf("clean patch Validate = %v", err)
	}
	p.SetDuration(ts[1], -5)
	if err := p.Validate(); !errors.Is(err, ErrNegativeDuration) {
		t.Fatalf("Validate = %v, want ErrNegativeDuration", err)
	}
	p.SetDuration(ts[1], 5)
	p.SetGap(ts[1], -50)
	if err := p.Validate(); !errors.Is(err, ErrNegativeDuration) {
		t.Fatalf("Validate = %v, want ErrNegativeDuration (dur+gap)", err)
	}
	p.SetGap(ts[1], 0)
	if err := p.Validate(); err != nil {
		t.Fatalf("repaired patch Validate = %v", err)
	}
}

func TestPatchValidateDetectsDanglingEdge(t *testing.T) {
	g, ts := chainGraph(t)
	p := NewPatch(g)
	extra := p.NewTask("extra", ts[0].Kind, CPU(0), 10)
	p.AppendTask(extra)
	if err := p.AddDependency(ts[1], extra, DepCustom); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("clean patch Validate = %v", err)
	}
	// Corrupt the view the way a baseline mutated underneath a bound
	// patch would: mark the edge target removed without unlinking.
	p.removed[extra.ID] = struct{}{}
	if err := p.Validate(); !errors.Is(err, ErrDanglingEdge) {
		t.Fatalf("Validate = %v, want ErrDanglingEdge", err)
	}
}

// cancelable simulate paths: a pre-canceled context yields ErrCanceled
// (matching context.Canceled too) on every tier, promptly.
func TestSimulateCancellation(t *testing.T) {
	g, ts := chainGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	check := func(name string, res *SimResult, err error) {
		t.Helper()
		if res != nil {
			t.Fatalf("%s: got a result despite canceled context", name)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v does not match context.Canceled", name, err)
		}
	}

	res, err := g.Simulate(WithContext(ctx))
	check("graph", res, err)
	res, err = g.Simulate(WithContext(ctx), WithScheduler(pickFirst{}))
	check("graph/scheduled", res, err)

	o := NewOverlay(g)
	o.SetDuration(ts[2], 300)
	res, err = o.Simulate(WithContext(ctx))
	check("overlay", res, err)

	p := NewPatch(g)
	extra := p.NewTask("extra", ts[0].Kind, CPU(0), 10)
	p.AppendTask(extra)
	res, err = p.Simulate(WithContext(ctx))
	check("patch", res, err)

	inc, err := NewIncrementalSim(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err = inc.ReSimulate(o, WithContext(ctx))
	check("incremental", res, err)

	// Deadline flavor.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := g.Simulate(WithContext(dctx)); !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v, want ErrDeadlineExceeded wrapping context.DeadlineExceeded", err)
	}

	// A live context changes nothing.
	want, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Simulate(WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("live-context Makespan = %v, want %v", got.Makespan, want.Makespan)
	}
}

// The in-loop periodic poll aborts a simulation already past its entry
// check, and leaves the scratch reusable.
func TestSimulateMidFlightCancellation(t *testing.T) {
	g := modelGraph(t, "resnet50")
	if g.NumTasks() <= cancelCheckInterval {
		t.Skipf("model graph too small (%d tasks) to cross the poll interval", g.NumTasks())
	}
	scratch := NewSimScratch()

	// Entry check passes (trip=1 lets the first Err call through), the
	// first in-loop poll at executed==cancelCheckInterval trips.
	tc := &trippingCtx{Context: context.Background(), trip: 1}
	res, err := g.Simulate(WithContext(tc), WithScratch(scratch))
	if res != nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-flight cancel = (%v, %v), want (nil, ErrCanceled)", res, err)
	}

	// The aborted scratch must be clean for reuse.
	want, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Simulate(WithScratch(scratch))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("post-abort reuse Makespan = %v, want %v", got.Makespan, want.Makespan)
	}

	// Scheduled path's poll.
	tc = &trippingCtx{Context: context.Background(), trip: 1}
	res, err = g.Simulate(WithContext(tc), WithScheduler(pickFirst{}), WithScratch(scratch))
	if res != nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("scheduled mid-flight cancel = (%v, %v), want (nil, ErrCanceled)", res, err)
	}
	got, err = g.Simulate(WithScratch(scratch))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("post-abort scheduled reuse Makespan = %v, want %v", got.Makespan, want.Makespan)
	}
}
