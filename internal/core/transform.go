package core

import (
	"fmt"
	"time"

	"daydream/internal/trace"
)

// Predicate helpers for Select (§4.4: select by layer, by name keyword, by
// location).

// OnGPUPred matches GPU tasks (kernels and device-side copies).
func OnGPUPred(t *Task) bool { return t.OnGPU() }

// NameContains matches tasks whose name contains the substring — the
// paper's select-by-keyword (e.g. "sgemm", "elementwise").
func NameContains(sub string) func(*Task) bool {
	return func(t *Task) bool { return contains(t.Name, sub) }
}

// ComputeIntensivePred matches tasks the paper's Algorithm 3 treats as
// compute-intensive by name convention ("sgemm"/"scudnn" kernels — the
// ones tensor cores accelerate ~3×). AMP and DeviceUpgrade share it,
// and LayerPhaseIndex caches it per GPU task so overlay scenarios skip
// the substring scans entirely.
func ComputeIntensivePred(t *Task) bool {
	return contains(t.Name, "sgemm") || contains(t.Name, "scudnn")
}

// InPhase matches tasks mapped to the given training phase.
func InPhase(p trace.Phase) func(*Task) bool {
	return func(t *Task) bool { return t.HasLayer && t.Phase == p }
}

// InLayer matches tasks mapped to the named layer.
func InLayer(name string) func(*Task) bool {
	return func(t *Task) bool { return t.HasLayer && t.Layer == name }
}

// KindIs matches tasks of the given activity kind.
func KindIs(k trace.Kind) func(*Task) bool {
	return func(t *Task) bool { return t.Kind == k }
}

// And composes predicates conjunctively.
func And(ps ...func(*Task) bool) func(*Task) bool {
	return func(t *Task) bool {
		for _, p := range ps {
			if !p(t) {
				return false
			}
		}
		return true
	}
}

// contains reports whether s contains sub (strings.Contains without the
// import, keeping the hot path allocation-free).
func contains(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// KernelInsertion describes a GPU kernel to insert together with its CPU
// launch call, the common pattern of the Insert primitive (Figure 4b):
// "When inserting a GPU task, we need to insert the corresponding CPU
// tasks that launch it."
type KernelInsertion struct {
	// Name is the new kernel's name.
	Name string
	// Duration is the new kernel's estimated duration.
	Duration time.Duration
	// LaunchAfter is the CPU task after which the launch call is
	// inserted.
	LaunchAfter *Task
	// KernelAfter is the GPU task after which the kernel is enqueued;
	// if nil, the kernel is placed right after LaunchAfter's peer, or
	// appended to the stream.
	KernelAfter *Task
	// Stream is the target stream when KernelAfter is nil and no peer
	// exists.
	Stream ThreadID
	// LaunchDuration is the CPU launch call's duration; a typical
	// cudaLaunchKernel cost is used when zero.
	LaunchDuration time.Duration
	// Layer optionally tags both tasks with a layer mapping.
	Layer      string
	LayerIndex int
	Phase      trace.Phase
}

// defaultLaunchCost approximates a cudaLaunchKernel call when the caller
// does not supply one (it can also be inferred from existing launches).
const defaultLaunchCost = 6500 * time.Nanosecond

// InsertKernel inserts a GPU kernel and its launching CPU call, returning
// (launch, kernel).
func (g *Graph) InsertKernel(ins KernelInsertion) (*Task, *Task, error) {
	if ins.LaunchAfter == nil {
		return nil, nil, fmt.Errorf("core: InsertKernel: LaunchAfter is required")
	}
	launchDur := ins.LaunchDuration
	if launchDur == 0 {
		launchDur = defaultLaunchCost
	}
	launch := g.NewTask("cudaLaunchKernel", trace.KindLaunch, ins.LaunchAfter.Thread, launchDur)
	if err := g.InsertAfter(ins.LaunchAfter, launch); err != nil {
		return nil, nil, err
	}
	anchor := ins.KernelAfter
	if anchor == nil && ins.LaunchAfter.peer != nil && ins.LaunchAfter.peer.OnGPU() {
		anchor = ins.LaunchAfter.peer
	}
	var stream ThreadID
	switch {
	case anchor != nil:
		stream = anchor.Thread
	case ins.Stream.Kind == GPUStream:
		stream = ins.Stream
	default:
		return nil, nil, fmt.Errorf("core: InsertKernel: no stream anchor for %q", ins.Name)
	}
	kernel := g.NewTask(ins.Name, trace.KindKernel, stream, ins.Duration)
	if anchor != nil {
		if err := g.InsertAfter(anchor, kernel); err != nil {
			return nil, nil, err
		}
	} else {
		g.AppendTask(kernel)
	}
	if err := g.Correlate(launch, kernel); err != nil {
		return nil, nil, err
	}
	if ins.Layer != "" {
		for _, t := range []*Task{launch, kernel} {
			t.Layer, t.LayerIndex, t.Phase, t.HasLayer = ins.Layer, ins.LayerIndex, ins.Phase, true
		}
	}
	return launch, kernel, nil
}

// MeanDuration returns the mean duration of the given tasks (zero for an
// empty selection) — handy for estimating inserted kernels "based on
// existing element-wise kernels" as the paper does for Gist and DGC.
func MeanDuration(tasks []*Task) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	var sum time.Duration
	for _, t := range tasks {
		sum += t.Duration
	}
	return sum / time.Duration(len(tasks))
}

// Repeat returns a new graph containing n back-to-back copies of g: every
// thread's sequence is replicated and chained, modeling consecutive
// training iterations in steady state. Tasks carry their copy index in
// Round. Cross-iteration what-ifs (P3's pull-before-next-forward, vDNN
// prefetching) transform the repeated graph.
func (g *Graph) Repeat(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: Repeat: n must be ≥1, got %d", n)
	}
	out := NewGraph()
	out.Meta = g.Meta
	// idMap[r][oldID] = new task for round r.
	idMap := make([][]*Task, n)
	for r := 0; r < n; r++ {
		idMap[r] = make([]*Task, len(g.tasks))
		for id, t := range g.tasks {
			if t == nil {
				continue
			}
			nt := out.NewTask(t.Name, t.Kind, t.Thread, t.Duration)
			nt.Gap = t.Gap
			nt.TracedStart = t.TracedStart
			nt.TracedDuration = t.TracedDuration
			nt.Layer, nt.LayerIndex, nt.Phase, nt.HasLayer = t.Layer, t.LayerIndex, t.Phase, t.HasLayer
			nt.Correlation = t.Correlation
			nt.Bytes = t.Bytes
			nt.Dir = t.Dir
			nt.Priority = t.Priority
			nt.Round = r
			idMap[r][id] = nt
		}
		// Thread sequences, chained to the previous round.
		for tid := range g.threads {
			var prev *Task
			if r > 0 {
				prev = out.seq(tid).tail
			}
			for t := g.threads[tid].head; t != nil; t = t.seqNext {
				nt := idMap[r][t.ID]
				if prev != nil {
					nt.seqPrev = prev
					prev.seqNext = nt
					out.addEdge(prev, nt, DepSequence)
				} else {
					out.seq(tid).head = nt
				}
				out.seq(tid).tail = nt
				prev = nt
			}
		}
		// Non-sequence edges within the round, and correlation peers.
		for id, t := range g.tasks {
			if t == nil {
				continue
			}
			for i, c := range t.children {
				if kind := t.childKinds[i]; kind != DepSequence {
					out.addEdge(idMap[r][id], idMap[r][c.ID], kind)
				}
			}
			if t.peer != nil {
				if np := idMap[r][t.peer.ID]; np != nil {
					idMap[r][id].peer = np
				}
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// RoundSpan returns, for a simulated repeated graph (or a Patch viewing
// one), the completion time of the last task of the given round. The
// steady-state iteration time of an n-round graph is RoundSpan(r) −
// RoundSpan(r−1).
func RoundSpan(v TaskView, res *SimResult, round int) time.Duration {
	// On a windowed result, retired rounds answer from their summary;
	// retained rounds fall through to the per-task scan below.
	if w := res.win; w != nil && round >= 0 && round < w.retired {
		return w.summaries[round].End
	}
	var end time.Duration
	for _, t := range v.Tasks() {
		if t.Round != round {
			continue
		}
		if f := res.Finish(t); f > end {
			end = f
		}
	}
	return end
}
