package core

import (
	"fmt"
	"strings"
	"time"
)

// OptFootprint classifies how much of the graph an Optimization touches.
// Since every optimization now applies through a single Patch, the
// footprint is a fast-path hint (and display label) rather than a
// dispatch decision: TimingOnly optimizations write only the patch's
// timing tier (and stay eligible for the pure-overlay simulation fast
// path), Structural ones record structural deltas too.
type OptFootprint uint8

const (
	// TimingOnly marks an optimization that only rewrites per-task
	// durations, gaps or priorities — AMP, kernel profiles, device
	// upgrades, fused optimizers modeled as rescaling.
	TimingOnly OptFootprint = iota
	// Structural marks an optimization that inserts or removes tasks or
	// edges — Distributed, P3, custom graph surgery.
	Structural
)

// String returns "timing-only" or "structural".
func (f OptFootprint) String() string {
	if f == Structural {
		return "structural"
	}
	return "timing-only"
}

// Optimization is a first-class what-if value: a self-describing graph
// transformation that knows its own name, how much of the graph it
// touches, and how to apply itself. The same value drives Compare, a
// sweep Scenario, the experiment grids and the CLI; Stack composes
// several into one.
//
// Apply is the single application surface: the optimization records its
// timing edits and structural deltas (task/edge additions and removals)
// on the Patch, which views the shared immutable baseline copy-on-write
// — no optimization ever needs to clone. The deprecated per-path
// methods of the previous interface are now package-level adapters
// synthesized from Apply: ApplyOverlay applies the timing tier into a
// caller-owned Overlay, ApplyGraph materializes the patch into a
// private graph for legacy callers.
//
// Two optional interfaces extend the contract: GraphRewriter for
// transformations that must replace the graph (P3's Repeat), and
// Measurer for optimizations that define their own result metric.
type Optimization interface {
	// Name labels the optimization in results and CLI output.
	Name() string
	// Footprint reports whether the optimization only rewrites timings
	// or changes graph structure — a fast-path hint and display label.
	Footprint() OptFootprint
	// Apply records the optimization's edits as copy-on-write deltas
	// over the patch's shared baseline: timing edits in the timing
	// tier, structural edits as patch deltas. Apply must not mutate
	// the baseline graph.
	Apply(*Patch) error
}

// GraphRewriter is the optional interface of optimizations that must
// replace the graph instead of patching over it (P3 repeats the
// iteration graph before annotating it, and legacy in-place transforms
// built from func(*Graph) funcs mutate arbitrary task state a patch
// cannot express). ApplyOptimization prefers it over the patch path;
// the sweep gives such optimizations a private clone.
type GraphRewriter interface {
	RewriteGraph(*Graph) (*Graph, error)
}

// graphDemander lets composite optimizations (Stack) report precisely
// whether any part demands a materialized graph; a bare GraphRewriter
// implementation otherwise implies it.
type graphDemander interface {
	needsGraph() bool
}

// OptNeedsGraph reports whether opt demands a materialized private
// graph (a GraphRewriter, a legacy in-place transform, or a Stack
// containing one) instead of the clone-free patch path.
func OptNeedsGraph(opt Optimization) bool {
	if d, ok := opt.(graphDemander); ok {
		return d.needsGraph()
	}
	_, ok := opt.(GraphRewriter)
	return ok
}

// Measurer is the optional interface of optimizations that define their
// own result metric. MeasureFunc returns the extractor to run on the
// optimization's simulation, or nil for the default (the simulated
// makespan). P3 uses it to report the steady-state round distance
// instead of the multi-round makespan. The extractor receives the task
// view the simulation ran over — the transformed private graph on the
// rewrite path, the shared Patch on the patch path — and must treat it
// as read-only, reading effective timings through the SimResult
// (Finish, TaskDuration) rather than Task fields: the same contract as
// sweep.Scenario.Measure.
type Measurer interface {
	MeasureFunc() func(TaskView, *SimResult) (time.Duration, error)
}

// OptMeasure returns opt's custom metric extractor, or nil when opt
// measures the default makespan.
func OptMeasure(opt Optimization) func(TaskView, *SimResult) (time.Duration, error) {
	if m, ok := opt.(Measurer); ok {
		return m.MeasureFunc()
	}
	return nil
}

// SchedulerCarrier is the optional interface of optimizations whose
// what-if includes a scheduling policy, not just a graph edit — vDNN's
// delayed-prefetch copy-stream ordering, priority-queue communication
// policies. Evaluation (Compare, sweep scenarios) runs the simulation
// under the returned Scheduler unless the caller supplies its own
// WithScheduler, which wins. A nil return means the default
// earliest-start policy. Because schedulers are view-generic, a carried
// policy keeps the scenario clone-free: it runs directly over the
// patch's composite view.
type SchedulerCarrier interface {
	SimScheduler() Scheduler
}

// OptScheduler returns opt's carried scheduling policy, or nil when opt
// simulates under the default policy.
func OptScheduler(opt Optimization) Scheduler {
	if c, ok := opt.(SchedulerCarrier); ok {
		return c.SimScheduler()
	}
	return nil
}

// noopMarker is the internal interface of optimizations that are known
// to change nothing (an empty Stack). Consumers use OptIsNoop to take
// the replay fast path: simulate the shared baseline directly, no clone
// and no patch.
type noopMarker interface {
	noopOpt() bool
}

// OptIsNoop reports whether opt is known to leave the graph unchanged
// (nil, or an empty Stack), so evaluation can replay the baseline
// without cloning or patching.
func OptIsNoop(opt Optimization) bool {
	if opt == nil {
		return true
	}
	if m, ok := opt.(noopMarker); ok {
		return m.noopOpt()
	}
	return false
}

// ApplyOverlay is the deprecated timing-tier adapter, synthesized from
// Apply: it binds a transient Patch whose timing tier is the
// caller-owned overlay and applies opt through it, so the edits land in
// o. Only valid for TimingOnly footprints; structural optimizations
// (and any Apply that records structural deltas) return an error.
func ApplyOverlay(opt Optimization, o *Overlay) error {
	if opt.Footprint() != TimingOnly {
		return fmt.Errorf("core: optimization %q is structural and cannot apply through an overlay", opt.Name())
	}
	p := patchOverOverlay(o)
	if err := opt.Apply(p); err != nil {
		return err
	}
	if p.Structural() {
		return fmt.Errorf("core: optimization %q recorded structural deltas and cannot apply through an overlay", opt.Name())
	}
	return nil
}

// ApplyGraph is the deprecated in-place adapter, synthesized from
// Apply: it records opt on a Patch over g and materializes the patch
// back into g. g must be private to the caller (a clone when the
// baseline is shared). Optimizations that must replace the graph
// (GraphRewriter) report that they cannot apply in place — use
// ApplyOptimization.
func ApplyGraph(opt Optimization, g *Graph) error {
	if ga, ok := opt.(graphApplier); ok {
		return ga.applyGraphInPlace(g)
	}
	if _, ok := opt.(GraphRewriter); ok {
		return fmt.Errorf("core: optimization %q replaces the graph; apply it through RewriteGraph", opt.Name())
	}
	p := NewPatch(g)
	if err := opt.Apply(p); err != nil {
		return err
	}
	return p.materializeInto(g)
}

// graphApplier is the internal fast path of ApplyGraph: built-in
// optimization values that carry a direct in-place form apply it
// without the patch round trip.
type graphApplier interface {
	applyGraphInPlace(*Graph) error
}

// ApplyOptimization applies opt to g — through GraphRewriter when it
// replaces the graph, in place otherwise — and returns the graph to
// simulate. g must be private to the caller (a clone when the baseline
// is shared); rewriters may consume it.
func ApplyOptimization(g *Graph, opt Optimization) (*Graph, error) {
	if rw, ok := opt.(GraphRewriter); ok {
		return rw.RewriteGraph(g)
	}
	if err := ApplyGraph(opt, g); err != nil {
		return nil, err
	}
	return g, nil
}

// funcOpt is the ready-made Optimization implementation behind
// PatchOpt, TimingOpt, StructuralOpt and RewriteOpt.
type funcOpt struct {
	name    string
	fp      OptFootprint
	apply   func(*Patch) error
	overlay func(*Overlay) error
	graph   func(*Graph) error
	measure func(TaskView, *SimResult) (time.Duration, error)
}

func (f *funcOpt) Name() string            { return f.name }
func (f *funcOpt) Footprint() OptFootprint { return f.fp }

func (f *funcOpt) Apply(p *Patch) error {
	switch {
	case f.apply != nil:
		return f.apply(p)
	case f.overlay != nil:
		return f.overlay(p.Timing())
	case f.graph != nil:
		return fmt.Errorf("core: optimization %q is a legacy in-place transform and needs a materialized graph; apply it through ApplyGraph or ApplyOptimization", f.name)
	}
	return fmt.Errorf("core: optimization %q replaces the graph; apply it through RewriteGraph", f.name)
}

// needsGraph reports whether the value lacks a patch form entirely
// (legacy in-place transforms and rewriters).
func (f *funcOpt) needsGraph() bool { return f.apply == nil && f.overlay == nil }

func (f *funcOpt) applyGraphInPlace(g *Graph) error {
	switch {
	case f.graph != nil:
		return f.graph(g)
	case f.overlay != nil:
		return applyOverlayInPlace(g, f.overlay)
	case f.apply != nil:
		p := NewPatch(g)
		if err := f.apply(p); err != nil {
			return err
		}
		return p.materializeInto(g)
	}
	return fmt.Errorf("core: optimization %q replaces the graph; apply it through RewriteGraph", f.name)
}

func (f *funcOpt) MeasureFunc() func(TaskView, *SimResult) (time.Duration, error) {
	return f.measure
}

// applyOverlayInPlace derives a clone-path application from an overlay
// form: record the edits over g, then write the effective timings into
// g's own tasks. Correct because the overlay only reads the baseline
// while edits are recorded.
func applyOverlayInPlace(g *Graph, apply func(*Overlay) error) error {
	o := NewOverlay(g)
	if err := apply(o); err != nil {
		return err
	}
	for _, t := range g.tasks {
		if t == nil {
			continue
		}
		t.Duration = o.Duration(t)
		t.Gap = o.Gap(t)
		t.Priority = o.Priority(t)
	}
	return nil
}

// PatchOpt builds an Optimization from its unified patch form — the
// native constructor of the redesigned interface. Timing-only
// optimizations should write only the patch's timing tier (and declare
// TimingOnly); structural ones record task/edge deltas through the
// patch primitives. The optional measure defines the value's own result
// metric (nil keeps the default, the simulated makespan).
func PatchOpt(name string, fp OptFootprint, apply func(*Patch) error, measure func(TaskView, *SimResult) (time.Duration, error)) Optimization {
	return &funcOpt{name: name, fp: fp, apply: apply, measure: measure}
}

// TimingOpt builds a TimingOnly Optimization from its overlay form and
// (optionally) a direct clone-path form. Apply writes the overlay form
// into the patch's timing tier; when graph is nil the in-place adapter
// is derived from the overlay form — apply the edits, write the
// effective timings back — so a custom duration-only what-if only needs
// one function.
func TimingOpt(name string, overlay func(*Overlay) error, graph func(*Graph) error) Optimization {
	return &funcOpt{name: name, fp: TimingOnly, overlay: overlay, graph: graph}
}

// StructuralOpt builds a Structural Optimization from a legacy in-place
// graph transformation. The arbitrary mutation cannot be expressed as
// patch deltas, so the value demands a materialized private graph
// (OptNeedsGraph reports true and evaluation clones); prefer PatchOpt
// for structural what-ifs that should ride the clone-free patch path.
func StructuralOpt(name string, graph func(*Graph) error) Optimization {
	return &funcOpt{name: name, fp: Structural, graph: graph}
}

// rewriteOpt is a structural optimization that replaces the graph.
type rewriteOpt struct {
	funcOpt
	rewrite func(*Graph) (*Graph, error)
}

func (r *rewriteOpt) RewriteGraph(g *Graph) (*Graph, error) { return r.rewrite(g) }

// RewriteOpt builds a Structural Optimization that replaces the graph
// (e.g. repeating the iteration before annotating it) and optionally
// defines its own result metric; a nil measure keeps the default (the
// simulated makespan).
func RewriteOpt(name string, rewrite func(*Graph) (*Graph, error), measure func(TaskView, *SimResult) (time.Duration, error)) Optimization {
	return &rewriteOpt{
		funcOpt: funcOpt{name: name, fp: Structural, measure: measure},
		rewrite: rewrite,
	}
}

// stack composes optimizations in application order.
type stack struct {
	parts []Optimization
}

// Stack composes several optimizations into one Optimization value,
// applied in argument order — the paper's composed what-ifs (AMP +
// FusedAdam as a single question). Nil parts are dropped and nested
// stacks are flattened. The stack's footprint is the maximum of its
// parts', and a stack applies through one shared Patch, so any mix of
// timing-only and patch-form structural optimizations still evaluates
// clone-free; only a part that demands a materialized graph
// (GraphRewriter, legacy in-place transforms) moves the whole stack to
// the clone path. An empty Stack is a named no-op: evaluation replays
// the baseline without cloning.
func Stack(parts ...Optimization) Optimization {
	ps := make([]Optimization, 0, len(parts))
	for _, p := range parts {
		if p == nil {
			continue
		}
		if s, ok := p.(*stack); ok {
			ps = append(ps, s.parts...)
			continue
		}
		ps = append(ps, p)
	}
	return &stack{parts: ps}
}

func (s *stack) Name() string {
	if len(s.parts) == 0 {
		return "baseline"
	}
	names := make([]string, len(s.parts))
	for i, p := range s.parts {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

func (s *stack) Footprint() OptFootprint {
	fp := TimingOnly
	for _, p := range s.parts {
		if p.Footprint() > fp {
			fp = p.Footprint()
		}
	}
	return fp
}

func (s *stack) noopOpt() bool { return len(s.parts) == 0 }

func (s *stack) needsGraph() bool {
	for _, p := range s.parts {
		if OptNeedsGraph(p) {
			return true
		}
	}
	return false
}

func (s *stack) Apply(p *Patch) error {
	for _, part := range s.parts {
		if OptNeedsGraph(part) {
			return fmt.Errorf("core: stack part %q needs a materialized graph; apply the stack through ApplyOptimization", part.Name())
		}
		if err := part.Apply(p); err != nil {
			return err
		}
	}
	return nil
}

func (s *stack) applyGraphInPlace(g *Graph) error {
	for _, p := range s.parts {
		if _, ok := p.(GraphRewriter); ok {
			return fmt.Errorf("core: stack part %q replaces the graph; apply the stack through RewriteGraph", p.Name())
		}
		if err := ApplyGraph(p, g); err != nil {
			return err
		}
	}
	return nil
}

// RewriteGraph applies every part in order, threading the graph through
// rewriting parts, so a stack may mix in-place, patch-form and
// graph-replacing optimizations.
func (s *stack) RewriteGraph(g *Graph) (*Graph, error) {
	for _, p := range s.parts {
		if rw, ok := p.(GraphRewriter); ok {
			var err error
			if g, err = rw.RewriteGraph(g); err != nil {
				return nil, err
			}
			continue
		}
		if err := ApplyGraph(p, g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MeasureFunc returns the last part's custom metric, matching the
// intuition that the final transformation decides what the composed
// what-if measures (a stack ending in P3 reports P3's steady-state
// round distance).
func (s *stack) MeasureFunc() func(TaskView, *SimResult) (time.Duration, error) {
	for i := len(s.parts) - 1; i >= 0; i-- {
		if m := OptMeasure(s.parts[i]); m != nil {
			return m
		}
	}
	return nil
}

// StackParts returns the optimizations a Stack-composed value applies,
// in application order — opt itself (as a one-element slice) for a
// non-stack value, nil for nil or a no-op. Cross-cutting consumers use
// it to probe each part for optional interfaces the stack does not
// forward wholesale (internal/mem collects per-part MemMeasurers this
// way). The returned slice is fresh; callers may keep it.
func StackParts(opt Optimization) []Optimization {
	if OptIsNoop(opt) {
		return nil
	}
	if s, ok := opt.(*stack); ok {
		return append([]Optimization(nil), s.parts...)
	}
	return []Optimization{opt}
}

// SimScheduler returns the last part's carried scheduling policy (the
// same last-wins rule as MeasureFunc), or nil when no part carries one.
func (s *stack) SimScheduler() Scheduler {
	for i := len(s.parts) - 1; i >= 0; i-- {
		if sch := OptScheduler(s.parts[i]); sch != nil {
			return sch
		}
	}
	return nil
}
