package core

import (
	"fmt"
	"strings"
	"time"
)

// OptFootprint classifies how much of the graph an Optimization touches,
// which decides the cheapest valid evaluation path: TimingOnly
// optimizations ride the clone-free copy-on-write Overlay over a shared
// baseline, Structural ones need a private Clone to mutate.
type OptFootprint uint8

const (
	// TimingOnly marks an optimization that only rewrites per-task
	// durations, gaps or priorities — AMP, kernel profiles, device
	// upgrades, fused optimizers modeled as rescaling.
	TimingOnly OptFootprint = iota
	// Structural marks an optimization that inserts or removes tasks or
	// edges — Distributed, P3, custom graph surgery.
	Structural
)

// String returns "timing-only" or "structural".
func (f OptFootprint) String() string {
	if f == Structural {
		return "structural"
	}
	return "timing-only"
}

// Optimization is a first-class what-if value: a self-describing graph
// transformation that knows its own name, how much of the graph it
// touches, and how to apply itself on either evaluation path. The same
// value drives Compare, a sweep Scenario, the experiment grids and the
// CLI; Stack composes several into one.
type Optimization interface {
	// Name labels the optimization in results and CLI output.
	Name() string
	// Footprint reports whether the optimization only rewrites timings
	// (overlay-eligible) or changes graph structure (needs a clone).
	Footprint() OptFootprint
	// ApplyOverlay records the optimization's timing edits as
	// copy-on-write deltas over the overlay's shared baseline. Only
	// valid for TimingOnly footprints; Structural optimizations return
	// an error.
	ApplyOverlay(*Overlay) error
	// ApplyGraph applies the optimization to a private graph in place.
	// Valid for every footprint (a TimingOnly optimization writes its
	// effective timings into the tasks), except for optimizations that
	// must replace the graph — those implement GraphRewriter, and
	// ApplyGraph reports that it cannot apply in place.
	ApplyGraph(*Graph) error
}

// GraphRewriter is the optional interface of structural optimizations
// that replace the graph instead of editing it in place (P3 repeats the
// iteration graph before annotating it). ApplyOptimization prefers it
// over ApplyGraph when present.
type GraphRewriter interface {
	RewriteGraph(*Graph) (*Graph, error)
}

// Measurer is the optional interface of optimizations that define their
// own result metric. MeasureFunc returns the extractor to run on the
// optimization's simulation, or nil for the default (the simulated
// makespan). P3 uses it to report the steady-state round distance
// instead of the multi-round makespan. On the structural path the
// extractor receives the transformed graph; on the overlay path it
// receives the shared, unmutated baseline and must treat it as
// read-only, reading effective timings through the SimResult (Finish,
// TaskDuration) rather than Task fields — the same contract as
// sweep.Scenario.Measure.
type Measurer interface {
	MeasureFunc() func(*Graph, *SimResult) (time.Duration, error)
}

// OptMeasure returns opt's custom metric extractor, or nil when opt
// measures the default makespan.
func OptMeasure(opt Optimization) func(*Graph, *SimResult) (time.Duration, error) {
	if m, ok := opt.(Measurer); ok {
		return m.MeasureFunc()
	}
	return nil
}

// noopMarker is the internal interface of optimizations that are known
// to change nothing (an empty Stack). Consumers use OptIsNoop to take
// the replay fast path: simulate the shared baseline directly, no clone
// and no overlay.
type noopMarker interface {
	noopOpt() bool
}

// OptIsNoop reports whether opt is known to leave the graph unchanged
// (nil, or an empty Stack), so evaluation can replay the baseline
// without cloning or overlaying.
func OptIsNoop(opt Optimization) bool {
	if opt == nil {
		return true
	}
	if m, ok := opt.(noopMarker); ok {
		return m.noopOpt()
	}
	return false
}

// ApplyOptimization applies opt to g — in place when the optimization
// mutates, or through GraphRewriter when it replaces — and returns the
// graph to simulate. g must be private to the caller (a clone when the
// baseline is shared); rewriters may consume it.
func ApplyOptimization(g *Graph, opt Optimization) (*Graph, error) {
	if rw, ok := opt.(GraphRewriter); ok {
		return rw.RewriteGraph(g)
	}
	if err := opt.ApplyGraph(g); err != nil {
		return nil, err
	}
	return g, nil
}

// funcOpt is the ready-made Optimization implementation behind
// TimingOpt, StructuralOpt and RewriteOpt.
type funcOpt struct {
	name    string
	fp      OptFootprint
	overlay func(*Overlay) error
	graph   func(*Graph) error
	measure func(*Graph, *SimResult) (time.Duration, error)
}

func (f *funcOpt) Name() string            { return f.name }
func (f *funcOpt) Footprint() OptFootprint { return f.fp }

func (f *funcOpt) ApplyOverlay(o *Overlay) error {
	if f.overlay == nil {
		return fmt.Errorf("core: optimization %q is structural and cannot apply through an overlay", f.name)
	}
	return f.overlay(o)
}

func (f *funcOpt) ApplyGraph(g *Graph) error {
	if f.graph != nil {
		return f.graph(g)
	}
	if f.overlay != nil {
		return applyOverlayInPlace(g, f.overlay)
	}
	return fmt.Errorf("core: optimization %q replaces the graph; apply it through RewriteGraph", f.name)
}

func (f *funcOpt) MeasureFunc() func(*Graph, *SimResult) (time.Duration, error) {
	return f.measure
}

// applyOverlayInPlace derives a clone-path application from an overlay
// form: record the edits over g, then write the effective timings into
// g's own tasks. Correct because the overlay only reads the baseline
// while edits are recorded.
func applyOverlayInPlace(g *Graph, apply func(*Overlay) error) error {
	o := NewOverlay(g)
	if err := apply(o); err != nil {
		return err
	}
	for _, t := range g.tasks {
		if t == nil {
			continue
		}
		t.Duration = o.Duration(t)
		t.Gap = o.Gap(t)
		t.Priority = o.Priority(t)
	}
	return nil
}

// TimingOpt builds a TimingOnly Optimization from its overlay form and
// (optionally) its clone-path form. When graph is nil the clone path is
// derived from the overlay form — apply the edits, write the effective
// timings back — so a custom duration-only what-if only needs one
// function.
func TimingOpt(name string, overlay func(*Overlay) error, graph func(*Graph) error) Optimization {
	return &funcOpt{name: name, fp: TimingOnly, overlay: overlay, graph: graph}
}

// StructuralOpt builds a Structural Optimization from an in-place graph
// transformation.
func StructuralOpt(name string, graph func(*Graph) error) Optimization {
	return &funcOpt{name: name, fp: Structural, graph: graph}
}

// rewriteOpt is a structural optimization that replaces the graph.
type rewriteOpt struct {
	funcOpt
	rewrite func(*Graph) (*Graph, error)
}

func (r *rewriteOpt) RewriteGraph(g *Graph) (*Graph, error) { return r.rewrite(g) }

// RewriteOpt builds a Structural Optimization that replaces the graph
// (e.g. repeating the iteration before annotating it) and optionally
// defines its own result metric; a nil measure keeps the default (the
// simulated makespan).
func RewriteOpt(name string, rewrite func(*Graph) (*Graph, error), measure func(*Graph, *SimResult) (time.Duration, error)) Optimization {
	return &rewriteOpt{
		funcOpt: funcOpt{name: name, fp: Structural, measure: measure},
		rewrite: rewrite,
	}
}

// stack composes optimizations in application order.
type stack struct {
	parts []Optimization
}

// Stack composes several optimizations into one Optimization value,
// applied in argument order — the paper's composed what-ifs (AMP +
// FusedAdam as a single question). Nil parts are dropped and nested
// stacks are flattened. The stack's footprint is the maximum of its
// parts', so a stack of timing-only optimizations still rides the
// clone-free overlay path; one structural part moves the whole stack to
// the clone path. An empty Stack is a named no-op: evaluation replays
// the baseline without cloning.
func Stack(parts ...Optimization) Optimization {
	ps := make([]Optimization, 0, len(parts))
	for _, p := range parts {
		if p == nil {
			continue
		}
		if s, ok := p.(*stack); ok {
			ps = append(ps, s.parts...)
			continue
		}
		ps = append(ps, p)
	}
	return &stack{parts: ps}
}

func (s *stack) Name() string {
	if len(s.parts) == 0 {
		return "baseline"
	}
	names := make([]string, len(s.parts))
	for i, p := range s.parts {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

func (s *stack) Footprint() OptFootprint {
	fp := TimingOnly
	for _, p := range s.parts {
		if p.Footprint() > fp {
			fp = p.Footprint()
		}
	}
	return fp
}

func (s *stack) noopOpt() bool { return len(s.parts) == 0 }

func (s *stack) ApplyOverlay(o *Overlay) error {
	for _, p := range s.parts {
		if err := p.ApplyOverlay(o); err != nil {
			return err
		}
	}
	return nil
}

func (s *stack) ApplyGraph(g *Graph) error {
	for _, p := range s.parts {
		if _, ok := p.(GraphRewriter); ok {
			return fmt.Errorf("core: stack part %q replaces the graph; apply the stack through RewriteGraph", p.Name())
		}
		if err := p.ApplyGraph(g); err != nil {
			return err
		}
	}
	return nil
}

// RewriteGraph applies every part in order, threading the graph through
// rewriting parts, so a stack may mix in-place and graph-replacing
// optimizations.
func (s *stack) RewriteGraph(g *Graph) (*Graph, error) {
	for _, p := range s.parts {
		if rw, ok := p.(GraphRewriter); ok {
			var err error
			if g, err = rw.RewriteGraph(g); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.ApplyGraph(g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MeasureFunc returns the last part's custom metric, matching the
// intuition that the final transformation decides what the composed
// what-if measures (a stack ending in P3 reports P3's steady-state
// round distance).
func (s *stack) MeasureFunc() func(*Graph, *SimResult) (time.Duration, error) {
	for i := len(s.parts) - 1; i >= 0; i-- {
		if m := OptMeasure(s.parts[i]); m != nil {
			return m
		}
	}
	return nil
}
