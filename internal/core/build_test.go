package core

import (
	"testing"
	"time"

	"daydream/internal/comm"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/trace"
)

func TestBuildRejectsInvalidTrace(t *testing.T) {
	bad := &trace.Trace{Activities: []trace.Activity{
		{ID: 0, Kind: trace.KindKernel, Start: -1},
	}}
	if _, err := Build(bad); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestBuildFiveDependencyTypes(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	res, err := framework.Run(framework.Config{
		Model:        m,
		Cluster:      &framework.Cluster{Topology: comm.Topology{Machines: 2, GPUsPerMachine: 1, NICBandwidth: comm.Gbps(10), IntraBandwidth: 11e9}, Backend: framework.BackendNCCL},
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[DepKind]int{}
	for _, u := range g.Tasks() {
		for _, c := range u.Children() {
			if k, ok := g.EdgeKind(u, c); ok {
				counts[k]++
			}
		}
	}
	for _, k := range []DepKind{DepSequence, DepCorrelation, DepSync, DepComm} {
		if counts[k] == 0 {
			t.Errorf("no %v dependencies in a distributed trace", k)
		}
	}
}

func TestBuildCorrelationPeers(t *testing.T) {
	g := modelGraph(t, "resnet50")
	launches := g.Select(KindIs(trace.KindLaunch))
	if len(launches) == 0 {
		t.Fatal("no launches")
	}
	for _, l := range launches {
		peer := l.Peer()
		if peer == nil || !peer.OnGPU() {
			t.Fatalf("launch %v has no GPU peer", l)
		}
		if peer.Correlation != l.Correlation {
			t.Fatal("peer correlation mismatch")
		}
	}
}

func TestBuildGapsNonNegative(t *testing.T) {
	g := modelGraph(t, "gnmt")
	for _, u := range g.Tasks() {
		if u.Gap < 0 {
			t.Fatalf("task %v has negative gap", u)
		}
		if !u.OnCPU() && u.Gap != 0 {
			t.Fatalf("non-CPU task %v carries a gap", u)
		}
	}
}

func TestBuildSyncResidual(t *testing.T) {
	// Sync tasks must not retain their full traced (waiting-inclusive)
	// duration, or what-ifs could never shrink the iteration.
	g := modelGraph(t, "resnet50")
	syncs := g.Select(KindIs(trace.KindSync))
	if len(syncs) == 0 {
		t.Fatal("no syncs")
	}
	for _, s := range syncs {
		if s.Duration > 2*time.Millisecond {
			t.Fatalf("sync %v kept duration %v; waiting should be edges", s, s.Duration)
		}
		if len(s.Parents()) < 2 { // sequence predecessor + ≥1 GPU task
			t.Fatalf("sync %v lacks GPU dependencies", s)
		}
	}
}

func TestBuildBlockingD2HHasSyncEdge(t *testing.T) {
	g := modelGraph(t, "resnet50")
	d2h := g.Select(func(u *Task) bool {
		return u.Kind == trace.KindMemcpyAPI && u.Dir == trace.MemcpyD2H
	})
	if len(d2h) == 0 {
		t.Fatal("no blocking D2H copies (loss retrieval should produce one)")
	}
	for _, u := range d2h {
		hasGPUParent := false
		for _, p := range u.Parents() {
			if p.OnGPU() && p != u.Peer() {
				hasGPUParent = true
			}
		}
		if !hasGPUParent {
			t.Fatalf("blocking D2H %v has no GPU dependency", u)
		}
	}
}

func TestBuildMetadataCopied(t *testing.T) {
	m, _ := dnn.ByName("vgg19")
	res, err := framework.Run(framework.Config{Model: m, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if g.Meta.Model != "VGG-19" || g.Meta.IterationTime != res.IterationTime {
		t.Errorf("metadata wrong: %+v", g.Meta)
	}
	if len(g.Meta.Gradients) != len(res.Trace.Gradients) {
		t.Error("gradients not copied")
	}
	// Graph metadata must not alias the trace.
	g.Meta.Gradients[0].Bytes = -1
	if res.Trace.Gradients[0].Bytes == -1 {
		t.Error("metadata aliases the trace")
	}
}

func TestBuildValidatesResult(t *testing.T) {
	for _, name := range dnn.Names() {
		g := modelGraph(t, name)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: built graph invalid: %v", name, err)
		}
	}
}

func TestThreadOfError(t *testing.T) {
	a := &trace.Activity{Kind: trace.Kind(99)}
	if _, err := threadOf(a); err == nil {
		t.Fatal("unknown kind mapped to a thread")
	}
}

func TestSyncResidualMath(t *testing.T) {
	us := time.Microsecond
	u := &Task{TracedStart: 100 * us, Duration: 50 * us} // traced end 150µs
	// GPU finished at 140µs: residual = 10µs.
	if got := syncResidual(u, 140*us); got != 10*us {
		t.Fatalf("residual = %v, want 10µs", got)
	}
	// GPU finished before the call started: full duration remains.
	if got := syncResidual(u, 50*us); got != 50*us {
		t.Fatalf("residual = %v, want 50µs", got)
	}
	// GPU finished after the call's end: floor applies.
	if got := syncResidual(u, 200*us); got != minSyncResidual {
		t.Fatalf("residual = %v, want floor", got)
	}
}
