package core

import (
	"sort"
	"time"
)

// CriticalPath returns, for a simulated graph, a longest chain of tasks in
// which each task's simulated start coincides with the constraint imposed
// by its predecessor — the path that determines the makespan. It answers
// the paper's first what-if question ("Why did my DNN training workload
// run slowly?") quantitatively: shrinking any task off this path cannot
// improve the iteration.
func CriticalPath(g *Graph, res *SimResult) []*Task {
	return CriticalPathView(g, res)
}

// CriticalPathView is CriticalPath over any task view — the *Graph the
// simulation ran on, or the *Overlay/*Patch of a clone-free scenario,
// whose effective adjacency and sequence links the reconstruction reads
// without materializing anything. KeepSims sweep consumers use it to
// diagnose patch scenarios directly from the retained SimResult.
//
// The path is reconstructed backwards from the task that finishes last:
// at each step the binding constraint is either a dependency parent whose
// finish (plus gap) equals the task's start, or the previous task on the
// same execution thread. A task that started at time zero still walks to
// a binding zero-duration parent when one exists (zero-cost roots do not
// truncate the chain); only a task with no binding constraint at all
// ends it.
func CriticalPathView(v TaskView, res *SimResult) []*Task {
	// End times read through the result, so an overlay or patch
	// simulation's effective timings drive the reconstruction
	// (TaskDuration/TaskGap fall back to the Task fields for plain
	// simulations).
	end := func(t *Task) time.Duration {
		return res.Start[t.ID] + res.TaskDuration(t) + res.TaskGap(t)
	}
	// Find the last-finishing task.
	var last *Task
	var lastEnd time.Duration
	for _, t := range v.Tasks() {
		if e := end(t); last == nil || e > lastEnd {
			last, lastEnd = t, e
		}
	}
	if last == nil {
		return nil
	}
	var path []*Task
	for t := last; t != nil; {
		path = append(path, t)
		start := res.Start[t.ID]
		// Binding dependency parent? (Checked even at start == 0: a
		// zero-duration parent finishing at 0 is still the constraint.)
		var next *Task
		for _, p := range v.Parents(t) {
			if end(p) == start {
				next = p
				break
			}
		}
		// Otherwise the thread predecessor paced it.
		if next == nil {
			if prev := v.SeqPrev(t); prev != nil && end(prev) == start {
				next = prev
			}
		}
		if next == nil {
			// The task started at its earliest-possible time with
			// slack before it: the chain ends here.
			break
		}
		t = next
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// PathAttribution summarizes where a critical path's time goes.
type PathAttribution struct {
	// Label groups tasks (thread kind, or phase, or layer).
	Label string
	// Time is the summed duration+gap of the path's tasks in the group.
	Time time.Duration
	// Tasks is the group's task count.
	Tasks int
}

// AttributePath groups a critical path's time by the given labeling
// function, sorted by descending time. Times come from the raw Task
// fields; for paths over an overlay or patch simulation use
// AttributePathSim, which reads the effective timings.
func AttributePath(path []*Task, label func(*Task) string) []PathAttribution {
	return attributePath(path, label, func(t *Task) time.Duration {
		return t.Duration + t.Gap
	})
}

// AttributePathSim is AttributePath with the simulation's effective
// per-task timings: each task contributes res.TaskDuration+res.TaskGap,
// so paths from clone-free overlay or patch scenarios attribute the
// scenario's timings rather than the shared baseline's.
func AttributePathSim(res *SimResult, path []*Task, label func(*Task) string) []PathAttribution {
	return attributePath(path, label, func(t *Task) time.Duration {
		return res.TaskDuration(t) + res.TaskGap(t)
	})
}

func attributePath(path []*Task, label func(*Task) string, cost func(*Task) time.Duration) []PathAttribution {
	byLabel := map[string]*PathAttribution{}
	for _, t := range path {
		l := label(t)
		a := byLabel[l]
		if a == nil {
			a = &PathAttribution{Label: l}
			byLabel[l] = a
		}
		a.Time += cost(t)
		a.Tasks++
	}
	out := make([]PathAttribution, 0, len(byLabel))
	for _, a := range byLabel {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// ByThreadKind labels tasks by their execution-resource kind — the
// coarsest "where does the time go" split (CPU vs GPU vs network).
func ByThreadKind(t *Task) string { return t.Thread.Kind.String() }

// ByPhase labels mapped tasks by training phase and unmapped ones
// "unmapped".
func ByPhase(t *Task) string {
	if !t.HasLayer {
		return "unmapped"
	}
	return t.Phase.String()
}

// ByLayer labels mapped tasks by layer name.
func ByLayer(t *Task) string {
	if !t.HasLayer {
		return "unmapped"
	}
	return t.Layer
}
