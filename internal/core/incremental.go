package core

import (
	"fmt"
	"time"
)

// IncrementalSim re-simulates small timing deltas against a cached warm
// schedule in time proportional to the delta's *affected cone*, not the
// graph — the engine behind sublinear dense sweeps (per-layer scaling
// grids, kernel-profile curves), where adjacent scenarios differ by a
// handful of task durations but a cold Algorithm-1 run would replay all
// of them.
//
// Build once per baseline with NewIncrementalSim: the warm build runs
// one cold default-policy simulation, recording the execution order (a
// valid topological order of the dependency graph), the per-thread
// completion sequences, and every task's warm start/end. ReSimulate
// then takes any timing-only view of that baseline — the baseline
// itself, an *Overlay, or a non-structural *Patch — seeds a priority
// queue with the tasks whose effective duration/gap differ from warm,
// and propagates new start times forward in warm-ordinal order along
// dependency children and thread successors, stopping wherever a task's
// end time reconverges with the warm schedule.
//
// Results are bit-identical to a cold Simulate of the same view. The
// guarantee does not rest on the convergence heuristic: propagation is
// exact on threads whose warm execution order is forced by dependency
// edges (every consecutive pair linked — true of every thread the
// trace builder emits, which serializes thread sequences with
// DepSequence edges), and on any other thread the engine watches for
// the conditions under which the cold scheduler could reorder tasks
// (a processed task's dependency-ready time, start or end diverging
// from warm) and falls back to a full cold simulation of the view.
// Deltas the incremental schedule cannot model at all — structural
// patches, priority edits, custom schedulers, negative effective
// timings — take the same documented cold fallback, so ReSimulate is
// always safe to call and never less correct than Simulate, merely
// slower in the cases it cannot accelerate.
//
// An IncrementalSim is not safe for concurrent use; the sharing model
// is the overlay's — one per goroutine over one shared immutable
// baseline (the warm build itself only reads the graph). The baseline
// must not be mutated while the IncrementalSim is bound to it.
type IncrementalSim struct {
	g     *Graph
	tasks []*Task
	n     int

	// Warm schedule, indexed by task ID unless noted.
	warmStart []time.Duration
	warmEnd   []time.Duration
	warmDur   []time.Duration
	warmGap   []time.Duration
	ord       []int32 // execution ordinal; -1 for ID holes
	byOrd     []int32 // task ID by execution ordinal
	thrPred   []int32 // previous task ID in warm thread order; -1 none
	thrSucc   []int32 // next task ID in warm thread order; -1 none
	thrOf     []int32 // thread ordinal; -1 for ID holes

	// Per-thread-ordinal warm state.
	thrIDs        []ThreadID
	warmThreadEnd []time.Duration
	forced        []bool // warm order forced by dependency edges

	warmMakespan time.Duration
	// negWarm: some warm task has Duration+Gap < 0, which breaks the
	// per-thread end-time monotonicity the makespan reconstruction
	// relies on; every ReSimulate falls back cold.
	negWarm bool

	// Per-call scratch (generation-stamped so no O(n) clearing).
	gen       uint64
	state     []uint64 // == gen: newStart/newEnd valid for this call
	inQ       []uint64 // == gen: task already queued this call
	newStart  []time.Duration
	newEnd    []time.Duration
	pq        []int32 // min-heap of warm ordinals
	seeds     []int32
	touched   []int32 // IDs whose start or end changed
	thrEndCur []time.Duration

	lastRecomputed int
	lastFellBack   bool
	stats          IncrStats
}

// IncrStats summarizes an IncrementalSim's lifetime behavior.
type IncrStats struct {
	// Calls counts ReSimulate invocations.
	Calls int
	// Fallbacks counts the calls answered by a cold simulation.
	Fallbacks int
	// Recomputed totals the tasks processed by incremental propagation
	// (fallback calls contribute the view's live-task count).
	Recomputed int
}

// NewIncrementalSim runs one cold default-policy simulation of g and
// caches its schedule as warm state for ReSimulate. The graph must not
// be mutated while the IncrementalSim is in use.
func NewIncrementalSim(g *Graph) (*IncrementalSim, error) {
	if g == nil {
		return nil, fmt.Errorf("core: NewIncrementalSim: nil graph")
	}
	n := len(g.tasks)
	order := make([]int32, 0, g.live)
	res, err := g.Simulate(withExecOrder(&order))
	if err != nil {
		return nil, err
	}
	s := &IncrementalSim{
		g:         g,
		tasks:     g.tasks,
		n:         n,
		warmStart: res.Start,
		warmEnd:   make([]time.Duration, n),
		warmDur:   make([]time.Duration, n),
		warmGap:   make([]time.Duration, n),
		ord:       make([]int32, n),
		byOrd:     order,
		thrPred:   make([]int32, n),
		thrSucc:   make([]int32, n),
		thrOf:     make([]int32, n),

		warmMakespan: res.Makespan,

		state:    make([]uint64, n),
		inQ:      make([]uint64, n),
		newStart: make([]time.Duration, n),
		newEnd:   make([]time.Duration, n),
	}
	for id := range s.ord {
		s.ord[id] = -1
		s.thrPred[id] = -1
		s.thrSucc[id] = -1
		s.thrOf[id] = -1
	}
	for id, t := range g.tasks {
		if t == nil {
			continue
		}
		s.warmDur[id], s.warmGap[id] = t.Duration, t.Gap
		s.warmEnd[id] = s.warmStart[id] + t.Duration + t.Gap
		if t.Duration+t.Gap < 0 {
			s.negWarm = true
		}
	}
	// Per-thread warm sequences from the recorded execution order:
	// thread ordinals in order of first execution, predecessor/successor
	// links, and whether each thread's order is forced by edges.
	thrOrd := make(map[ThreadID]int32, len(g.threads))
	last := make([]int32, 0, len(g.threads)) // last executed task per thread ordinal
	for i, id32 := range order {
		s.ord[id32] = int32(i)
		t := g.tasks[id32]
		ti, ok := thrOrd[t.Thread]
		if !ok {
			ti = int32(len(s.thrIDs))
			thrOrd[t.Thread] = ti
			s.thrIDs = append(s.thrIDs, t.Thread)
			s.forced = append(s.forced, true)
			last = append(last, -1)
		}
		s.thrOf[id32] = ti
		if prev := last[ti]; prev >= 0 {
			s.thrPred[id32] = prev
			s.thrSucc[prev] = id32
			if s.forced[ti] && !hasEdge(g.tasks[prev], t) {
				s.forced[ti] = false
			}
		}
		last[ti] = id32
	}
	s.warmThreadEnd = make([]time.Duration, len(s.thrIDs))
	for ti, id := range last {
		s.warmThreadEnd[ti] = s.warmEnd[id]
	}
	return s, nil
}

// Baseline returns the graph the warm schedule was built from.
func (s *IncrementalSim) Baseline() *Graph { return s.g }

// WarmMakespan returns the baseline's cold-simulated makespan.
func (s *IncrementalSim) WarmMakespan() time.Duration { return s.warmMakespan }

// RecomputedTasks reports how many tasks the last ReSimulate call
// recomputed: the affected-cone size for an incremental call, the
// view's full live-task count for a fallback call.
func (s *IncrementalSim) RecomputedTasks() int { return s.lastRecomputed }

// LastFellBack reports whether the last ReSimulate call was answered by
// a cold simulation instead of incremental propagation.
func (s *IncrementalSim) LastFellBack() bool { return s.lastFellBack }

// Stats returns lifetime counters.
func (s *IncrementalSim) Stats() IncrStats { return s.stats }

// timingView extracts the overlay that carries view's timing deltas
// over s's baseline, or reports that the view needs a cold simulation
// (structural patch, foreign type). A *Graph view (the baseline itself)
// yields a nil overlay: the empty delta.
func (s *IncrementalSim) timingView(view TaskView) (o *Overlay, cold bool, err error) {
	switch v := view.(type) {
	case *Graph:
		if v != s.g {
			return nil, false, fmt.Errorf("core: ReSimulate: graph view is not the warm baseline")
		}
		return nil, false, nil
	case *Overlay:
		if v.Base() != s.g {
			return nil, false, fmt.Errorf("core: ReSimulate: overlay views a different baseline")
		}
		return v, false, nil
	case *Patch:
		if v.Base() != s.g {
			return nil, false, fmt.Errorf("core: ReSimulate: patch views a different baseline")
		}
		if v.Structural() {
			return nil, true, nil // added/removed tasks or edges: cold
		}
		return v.Timing(), false, nil
	default:
		return nil, true, nil
	}
}

// coldSimulate is the fallback: a full cold simulation of the view with
// the caller's options (scratch, result buffer, scheduler).
func (s *IncrementalSim) coldSimulate(view TaskView, opts []SimOption) (*SimResult, error) {
	s.stats.Fallbacks++
	s.lastFellBack = true
	s.lastRecomputed = view.NumTasks()
	switch v := view.(type) {
	case *Graph:
		return v.Simulate(opts...)
	case *Overlay:
		return v.Simulate(opts...)
	case *Patch:
		return v.Simulate(opts...)
	default:
		return nil, fmt.Errorf("core: ReSimulate: unsupported view %T", view)
	}
}

// ReSimulate computes the simulation result of a timing-only view of
// the warm baseline, bit-identical to view.Simulate(opts...), touching
// only the delta's affected cone when the delta permits. opts accepts
// the usual simulation options; WithResultBuffer reuses the caller's
// result storage exactly as in a cold simulation, and WithScratch /
// WithScheduler take effect on the fallback path (incremental
// propagation needs neither). Deltas outside the incremental schedule's
// reach — structural patches, priority edits, a custom scheduler,
// negative effective timings, or a divergence on a thread whose order
// is not dependency-forced — are answered by a cold simulation of the
// same view (see LastFellBack).
func (s *IncrementalSim) ReSimulate(view TaskView, opts ...SimOption) (*SimResult, error) {
	s.stats.Calls++
	s.lastFellBack = false
	if view == nil {
		return nil, fmt.Errorf("core: ReSimulate: nil view")
	}
	var so simOptions
	for _, fn := range opts {
		fn(&so)
	}
	if err := ctxCanceled(so.ctx); err != nil {
		return nil, err
	}
	o, cold, err := s.timingView(view)
	if err != nil {
		return nil, err
	}
	// A round window cannot ride the warm schedule: fillResult
	// reconstructs the full start array the window exists to avoid. The
	// cold fallback forwards the caller's options verbatim, so the
	// window takes effect there.
	if cold || so.window > 0 || s.negWarm || customScheduler(so.scheduler) != nil || (o != nil && o.prioEdited) {
		return s.coldSimulate(view, opts)
	}

	// Seed the queue with every task whose effective timing differs
	// from warm. A negative effective Duration+Gap breaks per-thread
	// end monotonicity, so it goes cold like the other unreachable
	// deltas.
	s.seeds = s.seeds[:0]
	if o != nil {
		if o.dense {
			for id := 0; id < s.n; id++ {
				if s.ord[id] < 0 {
					continue
				}
				if o.dur[id] != s.warmDur[id] || o.gap[id] != s.warmGap[id] {
					if o.dur[id]+o.gap[id] < 0 {
						return s.coldSimulate(view, opts)
					}
					s.seeds = append(s.seeds, int32(id))
				}
			}
		} else {
			for id, e := range o.sparse {
				if id < 0 || id >= s.n || s.ord[id] < 0 {
					continue
				}
				d, gp := s.warmDur[id], s.warmGap[id]
				if e.set&editDur != 0 {
					d = e.dur
				}
				if e.set&editGap != 0 {
					gp = e.gap
				}
				if d != s.warmDur[id] || gp != s.warmGap[id] {
					if d+gp < 0 {
						return s.coldSimulate(view, opts)
					}
					s.seeds = append(s.seeds, int32(id))
				}
			}
		}
	}

	// A delta touching a large fraction of the graph has an affected
	// cone close to the whole schedule, and the ordinal heap plus the
	// per-seed bookkeeping then cost more than the overlay's straight
	// frontier replay (measured: bulk AMP deltas — about half the live
	// tasks — run ~3× slower incrementally). Dense deltas go cold
	// instead: a performance cutoff rather than a soundness fallback,
	// but reported through the same counters so sweep tiers stay
	// honest about which engine produced each row.
	if len(s.seeds)*8 > len(s.byOrd) {
		return s.coldSimulate(view, opts)
	}

	s.gen++
	gen := s.gen
	pq := s.pq[:0]
	touched := s.touched[:0]
	recomputed := 0
	for _, id := range s.seeds {
		s.inQ[id] = gen
		pq = pushOrd(pq, s.ord[id])
	}

	// Propagate in warm-ordinal order. Ordinals only grow along pushes
	// (children and thread successors execute after their cause in the
	// warm order), so each task is processed at most once, after every
	// predecessor that could change has settled.
	for len(pq) > 0 {
		var o32 int32
		o32, pq = popOrd(pq)
		id := int(s.byOrd[o32])
		t := s.tasks[id]

		// Dependency-ready time under the delta, and the warm one for
		// the reorder check below.
		var ds, wds time.Duration
		for _, p := range t.parents {
			pid := p.ID
			if s.state[pid] == gen {
				if e := s.newEnd[pid]; e > ds {
					ds = e
				}
			} else if e := s.warmEnd[pid]; e > ds {
				ds = e
			}
			if e := s.warmEnd[pid]; e > wds {
				wds = e
			}
		}
		start := ds
		if tp := s.thrPred[id]; tp >= 0 {
			e := s.warmEnd[tp]
			if s.state[tp] == gen {
				e = s.newEnd[tp]
			}
			if e > start {
				start = e
			}
		}
		d, gp := s.warmDur[id], s.warmGap[id]
		if o != nil {
			d, gp = o.Duration(t), o.Gap(t)
		}
		end := start + d + gp
		s.state[id] = gen
		s.newStart[id], s.newEnd[id] = start, end
		recomputed++
		if so.ctx != nil && recomputed%cancelCheckInterval == 0 {
			if cerr := so.ctx.Err(); cerr != nil {
				s.pq = pq[:0]
				return nil, ContextError(cerr)
			}
		}

		startChanged := start != s.warmStart[id]
		endChanged := end != s.warmEnd[id]
		if !s.forced[s.thrOf[id]] && (startChanged || endChanged || ds != wds) {
			// On a thread whose warm order is not forced by edges, any
			// divergence in this task's readiness or schedule could let
			// the cold scheduler reorder the thread; the incremental
			// schedule would silently assume the warm order. Go cold.
			s.pq = pq[:0]
			return s.coldSimulate(view, opts)
		}
		if startChanged || endChanged {
			touched = append(touched, int32(id))
		}
		if endChanged {
			for _, c := range t.children {
				cid := c.ID
				if s.inQ[cid] != gen {
					s.inQ[cid] = gen
					pq = pushOrd(pq, s.ord[cid])
				}
			}
			if ts := s.thrSucc[id]; ts >= 0 && s.inQ[ts] != gen {
				s.inQ[ts] = gen
				pq = pushOrd(pq, s.ord[ts])
			}
		}
	}
	s.pq = pq[:0]
	s.touched = touched
	s.lastRecomputed = recomputed
	s.stats.Recomputed += recomputed
	return s.fillResult(so.result, o, touched), nil
}

// fillResult reconstructs the full SimResult from the warm schedule
// plus the recomputed cone, matching a cold simulation of the view bit
// for bit: starts, makespan, per-thread ends, and (for overlay views)
// the effective timings.
func (s *IncrementalSim) fillResult(buf *SimResult, o *Overlay, touched []int32) *SimResult {
	res := buf
	if res == nil {
		res = &SimResult{}
	}
	res.Start = growDurations(res.Start, s.n)
	copy(res.Start, s.warmStart)
	for _, id := range touched {
		res.Start[id] = s.newStart[id]
	}

	// Thread ends: a thread's cold ThreadEnd is its last executed
	// task's end (ends are monotone along each thread given
	// non-negative effective timings, which the seed scan enforced), so
	// only cone tasks that are their thread's warm tail can move it.
	s.thrEndCur = growDurations(s.thrEndCur, len(s.thrIDs))
	copy(s.thrEndCur, s.warmThreadEnd)
	for _, id := range touched {
		if s.thrSucc[id] < 0 {
			s.thrEndCur[s.thrOf[id]] = s.newEnd[id]
		}
	}
	if res.ThreadEnd == nil {
		res.ThreadEnd = make(map[ThreadID]time.Duration, len(s.thrIDs))
	} else {
		for k := range res.ThreadEnd {
			delete(res.ThreadEnd, k)
		}
	}
	res.Makespan = 0
	for ti, end := range s.thrEndCur {
		res.ThreadEnd[s.thrIDs[ti]] = end
		if end > res.Makespan {
			res.Makespan = end
		}
	}

	// Effective timings: a graph view leaves them empty (Task fields
	// are authoritative, as in Graph.Simulate); an overlay view carries
	// them so SimResult.TaskDuration/Finish/CriticalPath read the
	// overlaid values, as in Overlay.Simulate.
	if o == nil {
		res.dur = res.dur[:0]
		res.gap = res.gap[:0]
		return res
	}
	res.dur = growDurations(res.dur, s.n)
	res.gap = growDurations(res.gap, s.n)
	if o.dense {
		copy(res.dur, o.dur)
		copy(res.gap, o.gap)
	} else {
		copy(res.dur, s.warmDur)
		copy(res.gap, s.warmGap)
		for id, e := range o.sparse {
			if id < 0 || id >= s.n {
				continue
			}
			if e.set&editDur != 0 {
				res.dur[id] = e.dur
			}
			if e.set&editGap != 0 {
				res.gap[id] = e.gap
			}
		}
	}
	return res
}

// pushOrd pushes an ordinal onto the min-heap.
func pushOrd(h []int32, v int32) []int32 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// popOrd pops the smallest ordinal off the min-heap.
func popOrd(h []int32) (int32, []int32) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h[l] < h[least] {
			least = l
		}
		if r < n && h[r] < h[least] {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top, h
}
