package core

import (
	"sort"

	"daydream/internal/trace"
)

// MapLayers performs the paper's synchronization-free task-to-layer
// mapping (§4.3, Figure 3). Each layer span [start, end) recorded by the
// framework instrumentation on a CPU thread claims the CPU tasks whose
// traced start falls inside it; CUDA launch calls propagate the layer to
// the GPU tasks they triggered via CUPTI correlation IDs. No
// synchronization events are consulted, so the mapping never perturbs the
// execution being profiled.
//
// It returns the number of tasks that received a layer.
func MapLayers(g *Graph, spans []trace.LayerSpan) int {
	if len(spans) == 0 {
		return 0
	}
	g.InvalidateLayerPhaseIndex()
	// Group spans per CPU thread, sorted by start.
	perThread := make(map[int][]trace.LayerSpan)
	for _, s := range spans {
		perThread[s.Thread] = append(perThread[s.Thread], s)
	}
	mapped := 0
	for tnum, ss := range perThread {
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		tasks := g.ThreadTasks(CPU(tnum))
		si := 0
		for _, t := range tasks {
			for si < len(ss) && ss[si].End <= t.TracedStart {
				si++
			}
			if si >= len(ss) {
				break
			}
			s := ss[si]
			if t.TracedStart < s.Start {
				continue // between spans: framework glue
			}
			t.Layer, t.LayerIndex, t.Phase, t.HasLayer = s.Layer, s.Index, s.Phase, true
			mapped++
			if gpu := t.peer; gpu != nil && gpu.OnGPU() {
				gpu.Layer, gpu.LayerIndex, gpu.Phase, gpu.HasLayer = s.Layer, s.Index, s.Phase, true
				mapped++
			}
		}
	}
	return mapped
}

// MappedFraction returns the fraction of GPU tasks that carry a layer
// mapping — a quick health metric for instrumentation coverage.
func MappedFraction(g *Graph) float64 {
	total, mapped := 0, 0
	for _, t := range g.Tasks() {
		if !t.OnGPU() {
			continue
		}
		total++
		if t.HasLayer {
			mapped++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(mapped) / float64(total)
}
