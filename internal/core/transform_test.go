package core

import (
	"testing"
	"time"

	"daydream/internal/trace"
)

func TestPredicates(t *testing.T) {
	task := &Task{Name: "volta_sgemm_128x64", Kind: trace.KindKernel, Thread: Stream(7)}
	task.HasLayer, task.Layer, task.Phase = true, "fc", trace.Backward
	if !OnGPUPred(task) {
		t.Error("OnGPUPred failed")
	}
	if !NameContains("sgemm")(task) || NameContains("scudnn")(task) {
		t.Error("NameContains failed")
	}
	if !InPhase(trace.Backward)(task) || InPhase(trace.Forward)(task) {
		t.Error("InPhase failed")
	}
	if !InLayer("fc")(task) || InLayer("conv")(task) {
		t.Error("InLayer failed")
	}
	if !KindIs(trace.KindKernel)(task) {
		t.Error("KindIs failed")
	}
	if !And(OnGPUPred, NameContains("sgemm"))(task) {
		t.Error("And failed")
	}
	if And(OnGPUPred, NameContains("nope"))(task) {
		t.Error("And should short-circuit to false")
	}
	unmapped := &Task{Kind: trace.KindKernel, Thread: Stream(7)}
	if InPhase(trace.Backward)(unmapped) {
		t.Error("unmapped task matched a phase")
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		s, sub string
		want   bool
	}{
		{"hello", "ell", true}, {"hello", "", true}, {"hello", "hello", true},
		{"hello", "hellos", false}, {"", "x", false}, {"abc", "cb", false},
	}
	for _, c := range cases {
		if got := contains(c.s, c.sub); got != c.want {
			t.Errorf("contains(%q, %q) = %v", c.s, c.sub, got)
		}
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	tasks := []*Task{{Duration: 10}, {Duration: 20}, {Duration: 30}}
	if MeanDuration(tasks) != 20 {
		t.Error("mean wrong")
	}
}

func TestInsertKernel(t *testing.T) {
	g := NewGraph()
	us := time.Microsecond
	launch := g.NewTask("cudaLaunchKernel", trace.KindLaunch, CPU(1), 6*us)
	g.AppendTask(launch)
	kern := g.NewTask("k", trace.KindKernel, Stream(7), 50*us)
	g.AppendTask(kern)
	if err := g.Correlate(launch, kern); err != nil {
		t.Fatal(err)
	}

	nl, nk, err := g.InsertKernel(KernelInsertion{
		Name:        "gist_encode",
		Duration:    10 * us,
		LaunchAfter: launch,
		Layer:       "relu1",
		LayerIndex:  3,
		Phase:       trace.Forward,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nl.Thread != CPU(1) || nk.Thread != Stream(7) {
		t.Fatal("inserted tasks on wrong threads")
	}
	if nk.Peer() != nl || nl.Peer() != nk {
		t.Fatal("inserted pair not correlated")
	}
	if !nk.HasLayer || nk.Layer != "relu1" || nk.Phase != trace.Forward {
		t.Fatal("layer tagging lost")
	}
	// Stream order: original kernel, then the inserted one.
	order := g.ThreadTasks(Stream(7))
	if len(order) != 2 || order[1] != nk {
		t.Fatalf("stream order wrong: %v", order)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Simulation respects the insertion.
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Start[nk.ID] < res.Start[kern.ID]+kern.Duration {
		t.Fatal("inserted kernel overlaps its anchor")
	}
}

func TestInsertKernelErrors(t *testing.T) {
	g := NewGraph()
	if _, _, err := g.InsertKernel(KernelInsertion{Name: "x"}); err == nil {
		t.Fatal("missing anchor accepted")
	}
	cpu := g.NewTask("op", trace.KindCPUOp, CPU(1), time.Microsecond)
	g.AppendTask(cpu)
	if _, _, err := g.InsertKernel(KernelInsertion{Name: "x", LaunchAfter: cpu}); err == nil {
		t.Fatal("no stream anchor accepted")
	}
	// With an explicit stream it works even without a peer anchor.
	if _, _, err := g.InsertKernel(KernelInsertion{
		Name: "x", LaunchAfter: cpu, Stream: Stream(7),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatStructure(t *testing.T) {
	g := modelGraph(t, "resnet50")
	n := g.NumTasks()
	rep, err := g.Repeat(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumTasks() != 3*n {
		t.Fatalf("repeated tasks = %d, want %d", rep.NumTasks(), 3*n)
	}
	rounds := map[int]int{}
	for _, task := range rep.Tasks() {
		rounds[task.Round]++
	}
	for r := 0; r < 3; r++ {
		if rounds[r] != n {
			t.Fatalf("round %d has %d tasks, want %d", r, rounds[r], n)
		}
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatSteadyState(t *testing.T) {
	// For a synchronous single-worker iteration the steady-state period
	// of the doubled graph equals the single-iteration makespan.
	g := modelGraph(t, "gnmt")
	single, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Repeat(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rep.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	period := RoundSpan(rep, res, 1) - RoundSpan(rep, res, 0)
	diff := float64(period-single) / float64(single)
	if diff < -0.02 || diff > 0.02 {
		t.Fatalf("steady period %v vs single %v (%.2f%%)", period, single, 100*diff)
	}
}

func TestRepeatErrors(t *testing.T) {
	g, _ := chain(2, time.Microsecond)
	if _, err := g.Repeat(0); err == nil {
		t.Fatal("Repeat(0) accepted")
	}
}

func TestRepeatIsolatesRounds(t *testing.T) {
	g, _ := chain(2, 10*time.Microsecond)
	rep, err := g.Repeat(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rep.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 runs strictly after round 0 on the shared thread.
	if RoundSpan(rep, res, 1) != 2*RoundSpan(rep, res, 0) {
		t.Fatalf("rounds not chained: %v vs %v",
			RoundSpan(rep, res, 1), RoundSpan(rep, res, 0))
	}
}

func TestScaleByOneIsIdentity(t *testing.T) {
	g := modelGraph(t, "resnet50")
	before, err := g.Clone().PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	Scale(c.Select(OnGPUPred), 1.0)
	after, err := c.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("Scale(1.0) changed the prediction: %v vs %v", before, after)
	}
}
