package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"daydream/internal/dnn"
)

// referenceSimulate is a line-for-line replica of the seed engine's
// Simulate: map-backed bookkeeping and an O(n²) linear-scan frontier
// picked by EarliestStart. It is the executable specification the dense
// heap-frontier engine must match exactly — same makespan, same start
// time for every task.
func referenceSimulate(g *Graph) (*SimResult, error) {
	res := &SimResult{
		Start:     make([]time.Duration, g.IDSpan()),
		ThreadEnd: make(map[ThreadID]time.Duration),
	}
	ref := make(map[int]int)
	earliest := make(map[int]time.Duration)
	var frontier []*Task
	for _, t := range g.Tasks() {
		ref[t.ID] = len(t.Parents())
		if ref[t.ID] == 0 {
			frontier = append(frontier, t)
		}
	}
	effStart := func(t *Task) time.Duration {
		es := earliest[t.ID]
		if p := res.ThreadEnd[t.Thread]; p > es {
			es = p
		}
		return es
	}
	// The seed's schedule(): EarliestStart as an inline linear scan —
	// earliest effective start, then higher priority, then lower ID.
	pick := func() int {
		best := -1
		var bestT time.Duration
		for i, t := range frontier {
			et := effStart(t)
			switch {
			case best < 0, et < bestT:
				best, bestT = i, et
			case et == bestT:
				b := frontier[best]
				if t.Priority > b.Priority || (t.Priority == b.Priority && t.ID < b.ID) {
					best = i
				}
			}
		}
		return best
	}
	executed := 0
	for len(frontier) > 0 {
		i := pick()
		u := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		start := effStart(u)
		res.Start[u.ID] = start
		end := start + u.Duration + u.Gap
		res.ThreadEnd[u.Thread] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		executed++
		for _, c := range u.Children() {
			if end > earliest[c.ID] {
				earliest[c.ID] = end
			}
			ref[c.ID]--
			if ref[c.ID] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	if executed != g.NumTasks() {
		return nil, errCycle
	}
	return res, nil
}

var errCycle = &cycleError{}

type cycleError struct{}

func (*cycleError) Error() string { return "reference: cycle" }

// assertSameSchedule fails unless the two results agree on makespan and
// on the start time of every task.
func assertSameSchedule(t *testing.T, g *Graph, got, want *SimResult) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Fatalf("makespan: dense %v, reference %v", got.Makespan, want.Makespan)
	}
	for _, task := range g.Tasks() {
		if got.Start[task.ID] != want.Start[task.ID] {
			t.Fatalf("task %v starts at %v, reference %v",
				task, got.Start[task.ID], want.Start[task.ID])
		}
	}
	for tid, end := range want.ThreadEnd {
		if got.ThreadEnd[tid] != end {
			t.Fatalf("thread %v ends at %v, reference %v", tid, got.ThreadEnd[tid], end)
		}
	}
}

// TestDenseEngineMatchesReferenceOnZoo is the golden equivalence test:
// for every zoo model, the dense engine must produce the identical
// schedule (makespan + per-task starts) and the identical critical path
// as the seed-semantics reference simulator.
func TestDenseEngineMatchesReferenceOnZoo(t *testing.T) {
	for _, name := range dnn.Names() {
		t.Run(name, func(t *testing.T) {
			g := modelGraph(t, name)
			want, err := referenceSimulate(g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			assertSameSchedule(t, g, got, want)
			// The critical path is a pure function of the schedule, so
			// path identity follows task by task.
			gotPath := CriticalPath(g, got)
			wantPath := CriticalPath(g, want)
			if len(gotPath) != len(wantPath) {
				t.Fatalf("critical path length %d, reference %d", len(gotPath), len(wantPath))
			}
			for i := range gotPath {
				if gotPath[i] != wantPath[i] {
					t.Fatalf("critical path diverges at %d: %v vs %v", i, gotPath[i], wantPath[i])
				}
			}
		})
	}
}

// TestDenseEngineMatchesReferenceAfterTransforms checks equivalence on
// graphs that exercise the mutation paths: clone, scaling, insertion and
// removal (which triggers the pruned transitive reconnection).
func TestDenseEngineMatchesReferenceAfterTransforms(t *testing.T) {
	g := modelGraph(t, "resnet50")

	c := g.Clone()
	Scale(c.Select(OnGPUPred), 0.5)
	for _, u := range c.Select(func(t *Task) bool { return t.Kind.String() == "sync" }) {
		c.Remove(u)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	want, err := referenceSimulate(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	assertSameSchedule(t, c, got, want)
}

// TestDenseEngineMatchesReferenceOnRandomDAGs is the property-test
// variant over random multi-thread graphs with priorities, random
// removals included.
func TestDenseEngineMatchesReferenceOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		// Random removals exercise the pruned reconnection too.
		victims := g.Tasks()
		rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
		for _, v := range victims[:rng.Intn(len(victims)/3+1)] {
			g.Remove(v)
		}
		want, err := referenceSimulate(g)
		if err != nil {
			return false
		}
		got, err := g.Simulate()
		if err != nil {
			return false
		}
		if got.Makespan != want.Makespan {
			return false
		}
		for _, task := range g.Tasks() {
			if got.Start[task.ID] != want.Start[task.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestScratchReuseIsPure re-simulates with one scratch across differing
// graphs and checks results are independent of scratch history.
func TestScratchReuseIsPure(t *testing.T) {
	scratch := NewSimScratch()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		g := randomDAG(rng)
		fresh, err := g.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		reused, err := g.Simulate(WithScratch(scratch))
		if err != nil {
			t.Fatal(err)
		}
		assertSameSchedule(t, g, reused, fresh)
	}
}

// TestCustomSchedulerPathMatchesDefault checks the slice-frontier path
// (custom schedulers) agrees with the heap path when the custom policy is
// EarliestStart itself, wrapped so it does not type-assert as default.
type wrappedEarliest struct{ EarliestStart }

func TestCustomSchedulerPathMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		g := randomDAG(rng)
		def, err := g.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		custom, err := g.Simulate(WithScheduler(wrappedEarliest{}))
		if err != nil {
			t.Fatal(err)
		}
		assertSameSchedule(t, g, custom, def)
	}
}
