package core

import (
	"testing"
	"time"

	"daydream/internal/trace"
)

// chainGraph builds a small two-thread graph with a cross-thread edge:
//
//	cpu: a(10,gap 5) → b(20)      (sequence)
//	gpu: k1(30) → k2(40)          (sequence)
//	a —corr→ k1, b —corr→ k2
func chainGraph(t *testing.T) (*Graph, []*Task) {
	t.Helper()
	g := NewGraph()
	a := g.NewTask("launchA", trace.KindLaunch, CPU(0), 10)
	a.Gap = 5
	g.AppendTask(a)
	b := g.NewTask("launchB", trace.KindLaunch, CPU(0), 20)
	g.AppendTask(b)
	k1 := g.NewTask("sgemm_k1", trace.KindKernel, Stream(7), 30)
	g.AppendTask(k1)
	k2 := g.NewTask("elemwise_k2", trace.KindKernel, Stream(7), 40)
	g.AppendTask(k2)
	if err := g.Correlate(a, k1); err != nil {
		t.Fatal(err)
	}
	if err := g.Correlate(b, k2); err != nil {
		t.Fatal(err)
	}
	return g, []*Task{a, b, k1, k2}
}

func TestOverlayReadsFallThrough(t *testing.T) {
	g, ts := chainGraph(t)
	o := NewOverlay(g)
	if got := o.Duration(ts[2]); got != 30 {
		t.Fatalf("unedited Duration = %v, want 30", got)
	}
	if got := o.Gap(ts[0]); got != 5 {
		t.Fatalf("unedited Gap = %v, want 5", got)
	}
	o.SetDuration(ts[2], 300)
	o.SetGap(ts[0], 50)
	o.SetPriority(ts[3], 9)
	if got := o.Duration(ts[2]); got != 300 {
		t.Fatalf("edited Duration = %v, want 300", got)
	}
	if got := o.Gap(ts[0]); got != 50 {
		t.Fatalf("edited Gap = %v, want 50", got)
	}
	if got := o.Priority(ts[3]); got != 9 {
		t.Fatalf("edited Priority = %v, want 9", got)
	}
	// Baseline untouched.
	if ts[2].Duration != 30 || ts[0].Gap != 5 || ts[3].Priority != 0 {
		t.Fatal("overlay edit leaked into the baseline graph")
	}
	// Editing one field leaves the others falling through.
	if got := o.Gap(ts[2]); got != 0 {
		t.Fatalf("Gap of duration-edited task = %v, want 0", got)
	}
	if got := o.Duration(ts[0]); got != 10 {
		t.Fatalf("Duration of gap-edited task = %v, want 10", got)
	}
}

func TestOverlayDensifyCrossover(t *testing.T) {
	g := NewGraph()
	var tasks []*Task
	for i := 0; i < 2000; i++ {
		tk := g.NewTask("k", trace.KindKernel, Stream(7), time.Duration(i+1))
		g.AppendTask(tk)
		tasks = append(tasks, tk)
	}
	o := NewOverlay(g)
	// Force a sparse edit of every task: must cross over to dense and
	// still read back every value correctly.
	for i, tk := range tasks {
		o.SetDuration(tk, time.Duration(10*(i+1)))
	}
	if !o.dense {
		t.Fatalf("overlay with %d edits over %d tasks did not densify", len(tasks), len(tasks))
	}
	for i, tk := range tasks {
		if got := o.Duration(tk); got != time.Duration(10*(i+1)) {
			t.Fatalf("task %d: Duration = %v, want %v", i, got, 10*(i+1))
		}
	}
	// Unedited fields still read the baseline through the dense arrays.
	if got := o.Gap(tasks[0]); got != 0 {
		t.Fatalf("dense Gap = %v, want 0", got)
	}
	// Reset clears the edits (dense mode may stick — it re-materializes
	// from the baseline snapshot — but every read must see baseline
	// values again).
	o.Reset(g)
	for i, tk := range tasks {
		if got := o.Duration(tk); got != time.Duration(i+1) {
			t.Fatalf("after Reset, task %d Duration = %v, want %v", i, got, i+1)
		}
	}
	// Rebinding to a different graph drops the dense state entirely.
	g2 := NewGraph()
	k := g2.NewTask("k", trace.KindKernel, Stream(7), 123)
	g2.AppendTask(k)
	o.Reset(g2)
	if o.dense {
		t.Fatal("Reset to a new baseline left the overlay dense")
	}
	if got := o.Duration(k); got != 123 {
		t.Fatalf("after rebind, Duration = %v, want 123", got)
	}
}

// TestOverlaySimulateMatchesMutatedClone is the core equivalence
// property: simulate-through-overlay equals clone-mutate-simulate,
// bit for bit.
func TestOverlaySimulateMatchesMutatedClone(t *testing.T) {
	g, ts := chainGraph(t)
	o := NewOverlay(g)
	o.SetDuration(ts[2], 3) // shrink sgemm kernel
	o.SetGap(ts[0], 50)     // stretch the launch gap
	o.SetDuration(ts[1], 0) // zero a launch

	c := g.Clone()
	c.Task(ts[2].ID).Duration = 3
	c.Task(ts[0].ID).Gap = 50
	c.Task(ts[1].ID).Duration = 0

	want, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("overlay makespan %v, clone makespan %v", got.Makespan, want.Makespan)
	}
	for id := range want.Start {
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: overlay %v, clone %v", id, got.Start[id], want.Start[id])
		}
	}
	// The result reads effective timings.
	if got.TaskDuration(ts[2]) != 3 {
		t.Fatalf("TaskDuration = %v, want 3", got.TaskDuration(ts[2]))
	}
	if got.TaskGap(ts[0]) != 50 {
		t.Fatalf("TaskGap = %v, want 50", got.TaskGap(ts[0]))
	}
	if got.Finish(ts[2]) != got.Start[ts[2].ID]+3 {
		t.Fatal("Finish did not use the overlay duration")
	}
}

// TestOverlayPriorityTieBreak checks overlaid priorities drive the
// default scheduler's tie-breaking exactly as mutated priorities do.
func TestOverlayPriorityTieBreak(t *testing.T) {
	// Two unchained tasks competing for one channel (the P3 pattern:
	// NewTask without AppendTask, serialized only by thread progress),
	// so the scheduler's priority tie-break decides who goes first.
	g := NewGraph()
	ch := Channel("net")
	a := g.NewTask("a", trace.KindComm, ch, 10)
	b := g.NewTask("b", trace.KindComm, ch, 10)
	// In the baseline, a (lower ID) wins the tie and runs first.
	base, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if !(base.Start[a.ID] == 0 && base.Start[b.ID] == 10) {
		t.Fatalf("baseline tie-break: a=%v b=%v", base.Start[a.ID], base.Start[b.ID])
	}

	// Clone path: boost b's priority.
	c := g.Clone()
	c.Task(b.ID).Priority = 5
	want, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// Overlay path: same boost as a delta.
	o := NewOverlay(g)
	o.SetPriority(b, 5)
	got, err := o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Start[b.ID] != 0 || got.Start[a.ID] != 10 {
		t.Fatalf("overlay priority ignored: a=%v b=%v", got.Start[a.ID], got.Start[b.ID])
	}
	for id := range want.Start {
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: overlay %v, clone %v", id, got.Start[id], want.Start[id])
		}
	}
}

// TestOverlayCustomScheduler checks the slice-frontier path reads
// overlay timings.
func TestOverlayCustomScheduler(t *testing.T) {
	g, ts := chainGraph(t)
	o := NewOverlay(g)
	o.SetDuration(ts[2], 300)

	c := g.Clone()
	c.Task(ts[2].ID).Duration = 300

	want, err := c.Simulate(WithScheduler(lifoScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Simulate(WithScheduler(lifoScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("scheduled overlay makespan %v, clone %v", got.Makespan, want.Makespan)
	}
	for id := range want.Start {
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: overlay %v, clone %v", id, got.Start[id], want.Start[id])
		}
	}
}

// lifoScheduler picks the most recently enabled frontier task — a
// deliberately non-default policy.
type lifoScheduler struct{}

func (lifoScheduler) Pick(frontier []*Task, _ *SchedContext) int {
	return len(frontier) - 1
}

// TestResultBufferReuse checks WithResultBuffer round-trips between
// overlay and plain simulations without leaking stale state.
func TestResultBufferReuse(t *testing.T) {
	g, ts := chainGraph(t)
	buf := &SimResult{}

	o := NewOverlay(g)
	o.SetDuration(ts[2], 300)
	ores, err := o.Simulate(WithResultBuffer(buf))
	if err != nil {
		t.Fatal(err)
	}
	if ores != buf {
		t.Fatal("overlay Simulate did not return the supplied buffer")
	}
	if ores.TaskDuration(ts[2]) != 300 {
		t.Fatalf("buffered overlay TaskDuration = %v, want 300", ores.TaskDuration(ts[2]))
	}
	overlayMakespan := ores.Makespan

	// Reusing the same buffer for a plain simulation must drop the
	// overlay timings.
	pres, err := g.Simulate(WithResultBuffer(buf))
	if err != nil {
		t.Fatal(err)
	}
	if pres.TaskDuration(ts[2]) != 30 {
		t.Fatalf("plain TaskDuration through reused buffer = %v, want 30", pres.TaskDuration(ts[2]))
	}
	fresh, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if pres.Makespan != fresh.Makespan {
		t.Fatalf("reused-buffer makespan %v, fresh %v", pres.Makespan, fresh.Makespan)
	}
	if pres.Makespan == overlayMakespan {
		t.Fatal("plain simulation inherited overlay timings")
	}
	for id := range fresh.Start {
		if pres.Start[id] != fresh.Start[id] {
			t.Fatalf("task %d start: reused buffer %v, fresh %v", id, pres.Start[id], fresh.Start[id])
		}
	}
}

// TestOverlayCriticalPathUsesEffectiveTimings checks CriticalPath reads
// the overlay's durations via the result.
func TestOverlayCriticalPathUsesEffectiveTimings(t *testing.T) {
	g, ts := chainGraph(t)
	o := NewOverlay(g)
	o.SetDuration(ts[3], 4000) // k2 dominates under the overlay

	res, err := o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(g, res)
	if len(path) == 0 || path[len(path)-1] != ts[3] {
		t.Fatalf("critical path should end at the overlaid kernel, got %v", path)
	}

	c := g.Clone()
	c.Task(ts[3].ID).Duration = 4000
	cres, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	cpath := CriticalPath(c, cres)
	if len(cpath) != len(path) {
		t.Fatalf("path lengths differ: overlay %d, clone %d", len(path), len(cpath))
	}
	for i := range path {
		if path[i].ID != cpath[i].ID {
			t.Fatalf("path[%d]: overlay #%d, clone #%d", i, path[i].ID, cpath[i].ID)
		}
	}
}

// TestOverlayModelGraphEquivalence runs the full property on a real
// profiled graph: dense (every GPU task halved) and sparse (three
// tasks) overlays both match their clone counterparts exactly.
func TestOverlayModelGraphEquivalence(t *testing.T) {
	g := modelGraph(t, "resnet50")
	gpu := g.LayerPhaseIndex().GPUTasks()
	if len(gpu) == 0 {
		t.Fatal("no GPU tasks")
	}

	t.Run("dense", func(t *testing.T) {
		o := NewOverlay(g)
		for _, u := range gpu {
			o.SetDuration(u, o.Duration(u)/2)
		}
		c := g.Clone()
		for _, u := range c.Tasks() {
			if u.OnGPU() {
				u.Duration /= 2
			}
		}
		assertSimEqual(t, o, c)
	})
	t.Run("sparse", func(t *testing.T) {
		o := NewOverlay(g)
		picks := []*Task{gpu[0], gpu[len(gpu)/2], gpu[len(gpu)-1]}
		for _, u := range picks {
			o.SetDuration(u, u.Duration*7)
		}
		c := g.Clone()
		for _, u := range picks {
			c.Task(u.ID).Duration = u.Duration * 7
		}
		assertSimEqual(t, o, c)
	})
}

// assertSimEqual simulates the overlay and the mutated clone and
// requires bit-identical makespan and starts.
func assertSimEqual(t *testing.T, o *Overlay, c *Graph) {
	t.Helper()
	got, err := o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("makespan: overlay %v, clone %v", got.Makespan, want.Makespan)
	}
	for id := range want.Start {
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: overlay %v, clone %v", id, got.Start[id], want.Start[id])
		}
	}
}

// prioViewScheduler is a view-generic priority policy: among the tasks
// ready earliest it picks the highest *effective* priority — overlaid
// priorities included, which a legacy scheduler could never see.
type prioViewScheduler struct{}

func (prioViewScheduler) Pick(frontier []*Task, ctx *SchedContext) int {
	best := -1
	var bestT time.Duration
	var bestPrio int
	for i, task := range frontier {
		et := ctx.EffStart(task)
		p := ctx.Priority(task)
		switch {
		case best < 0, et < bestT, et == bestT && p > bestPrio:
			best, bestT, bestPrio = i, et, p
		}
	}
	return best
}

// TestOverlayPriorityWithCustomScheduler checks a view-generic custom
// scheduler reads overlaid priorities through the SchedContext and
// reproduces the clone path bit for bit, while the legacy adapter —
// which reads Task.Priority from the shared baseline — is rejected
// loudly instead of silently diverging.
func TestOverlayPriorityWithCustomScheduler(t *testing.T) {
	g, ts := chainGraph(t)
	o := NewOverlay(g)
	o.SetPriority(ts[3], 9)

	c := g.Clone()
	c.Task(ts[3].ID).Priority = 9
	want, err := c.Simulate(WithScheduler(prioViewScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Simulate(WithScheduler(prioViewScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("scheduled overlay makespan %v, clone %v", got.Makespan, want.Makespan)
	}
	for id := range want.Start {
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: overlay %v, clone %v", id, got.Start[id], want.Start[id])
		}
	}

	// The legacy shim cannot see the overlaid priority: rejected.
	if _, err := o.Simulate(WithScheduler(AdaptScheduler(legacyLifo{}))); err == nil {
		t.Fatal("priority overlay + legacy scheduler did not error")
	}
	// The default scheduler keeps working.
	if _, err := o.Simulate(); err != nil {
		t.Fatal(err)
	}
}

// legacyLifo is an old-contract scheduler, used through AdaptScheduler.
type legacyLifo struct{}

func (legacyLifo) Pick(frontier []*Task, _ func(*Task) time.Duration) *Task {
	return frontier[len(frontier)-1]
}

// TestAdaptSchedulerMatchesNative checks the compatibility shim: a
// legacy scheduler wrapped with AdaptScheduler schedules exactly like
// the equivalent native policy (here LIFO, on an overlay without
// priority edits).
func TestAdaptSchedulerMatchesNative(t *testing.T) {
	g, ts := chainGraph(t)
	o := NewOverlay(g)
	o.SetDuration(ts[2], 300)
	want, err := o.Simulate(WithScheduler(lifoScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Simulate(WithScheduler(AdaptScheduler(legacyLifo{})))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("adapted makespan %v, native %v", got.Makespan, want.Makespan)
	}
	for id := range want.Start {
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: adapted %v, native %v", id, got.Start[id], want.Start[id])
		}
	}
}
