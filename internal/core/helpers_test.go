package core

import (
	"testing"

	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/trace"
)

// collectTrace profiles a zoo model on the synthetic substrate.
func collectTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	m, err := dnn.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := framework.Run(framework.Config{Model: m, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

// modelGraph profiles a zoo model on the synthetic substrate and builds
// its mapped dependency graph — the shared fixture for integration-level
// core tests.
func modelGraph(t *testing.T, name string) *Graph {
	t.Helper()
	tr := collectTrace(t, name)
	g, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	MapLayers(g, tr.LayerSpans)
	return g
}
