package core_test

import (
	"math"
	"testing"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
)

// TestReplayIdentity checks the foundation of every what-if analysis: a
// dependency graph built from a baseline trace and simulated without any
// transformation must reproduce the traced iteration time almost exactly.
func TestReplayIdentity(t *testing.T) {
	for _, name := range dnn.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			model, err := dnn.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := framework.Run(framework.Config{Model: model, CollectTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			g, err := core.Build(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := g.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			traced := res.IterationTime
			relErr := math.Abs(float64(sim.Makespan-traced)) / float64(traced)
			t.Logf("%s: traced=%v simulated=%v err=%.3f%%", name, traced, sim.Makespan, 100*relErr)
			if relErr > 0.01 {
				t.Errorf("replay error %.2f%% exceeds 1%% (traced %v, simulated %v)", 100*relErr, traced, sim.Makespan)
			}
		})
	}
}
