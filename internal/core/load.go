package core

import (
	"io"

	"daydream/internal/trace"
)

// LoadGraph reads a trace from r and builds its kernel-granularity
// dependency graph with the synchronization-free task-to-layer mapping
// applied — the canonical trace-bytes-to-graph path. The public
// daydream.LoadGraph helper, both CLIs and the serve subsystem's
// baseline-upload endpoint all run through this one function, so trace
// ingestion (and its typed error taxonomy) cannot drift between entry
// points. Errors come straight from trace.ReadJSON (trace.ErrMalformed
// and friends) or from graph construction.
func LoadGraph(r io.Reader) (*trace.Trace, *Graph, error) {
	tr, err := trace.ReadJSON(r)
	if err != nil {
		return nil, nil, err
	}
	g, err := Build(tr)
	if err != nil {
		return tr, nil, err
	}
	MapLayers(g, tr.LayerSpans)
	return tr, g, nil
}
