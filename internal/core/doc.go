// Package core implements Daydream's primary contribution: the
// kernel-granularity dependency graph with mappings back to DNN layers
// (paper §4). It provides
//
//   - graph construction from CUPTI-shaped traces with the paper's five
//     dependency types (§4.2.2),
//   - the synchronization-free task-to-layer mapping (§4.3, Figure 3),
//   - the graph-transformation primitives Select / Scale / Insert /
//     Remove and overridable task scheduling (§4.4), and
//   - the frontier-based runtime simulator of Algorithm 1.
//
// # Simulation tiers
//
// One Algorithm-1 semantics, five evaluation tiers, cheapest first.
// Every tier is bit-identical to cloning the baseline, mutating the
// clone and cold-simulating it; they differ only in how much work a
// what-if costs. Numbers are BENCH.json's bert-large workload (~12.7K
// tasks); the sweep dispatches between them automatically and reports
// its choice per scenario in Result.Tier (daydream sweep -explain).
//
//   - incremental — IncrementalSim.ReSimulate over a warm baseline
//     schedule: recompute only the delta's affected cone, ~9.5µs for a
//     single-task duration delta (~70× the overlay replay). Cost is
//     proportional to the cone, so it shines on sparse deltas that land
//     late in the schedule or are absorbed by slack; a delta editing
//     more than 1/8 of the tasks is answered cold (the cutoff), and
//     deltas it cannot model — priority edits, structural ops, custom
//     schedulers, negative timings — take the documented cold fallback.
//   - overlay replay — Overlay.Simulate: a full cold replay through
//     copy-on-write timing deltas, ~0.67ms. The workhorse for dense
//     timing-only what-ifs (AMP rescales half the graph).
//   - patch — Patch.Simulate: the composite structural view (appendix
//     IDs, masked removals) over the overlay's timing tier, ~1.0ms for
//     the Distributed insertion scenario.
//   - cold — Graph.Simulate of the baseline itself, ~1.6ms; also the
//     replay tier for no-op scenarios in a sweep.
//   - clone — materialize a private mutated copy, ~7.7ms per scenario;
//     only for rewriters that must replace the graph (OptP3's Repeat
//     form, manual Transforms).
//
// # Round windows
//
// WithRoundWindow(w) puts any simulation — Graph, Overlay, Patch,
// scheduled or not — into windowed mode: rounds more than w behind the
// newest finished round are retired into RoundSummary records (round
// end, span contribution, per-thread ends including gaps) and their
// per-task start storage is reclaimed, so a Repeat(1000)-scale run
// holds O(window) starts instead of O(rounds). The contract:
//
//   - Eligibility: task IDs must be non-decreasing in Task.Round
//     (round-major order, which Repeat and the pipeline appendix
//     produce). A violating view fails fast with ErrNotRoundMajor
//     before simulating.
//   - Retained window: StartOf, Finish and TaskDuration on tasks of
//     the last w rounds are bit-identical to the unwindowed run, as
//     are Makespan, ThreadEnd and RoundSpan (served from summaries for
//     retired rounds). SimResult.Start is empty on windowed results —
//     always read through the accessors.
//   - Retired rounds: StartOf reports !ok; Finish/TaskDuration panic,
//     the same way out-of-range IDs do. Summaries() exposes the
//     retired rounds' aggregates, RetiredRounds() their count, and
//     WindowOccupancy() the high-water per-task slots held.
//   - Full-array consumers: code that needs every start (the
//     internal/mem post-pass) rejects windowed results with
//     ErrWindowedResult; the documented fallback is to re-simulate
//     without the window — full materialization costs exactly one
//     unwindowed run, never a hidden partial answer.
//   - Memory bound: O(window) occupancy also needs the graph to
//     couple rounds across threads (e.g. 1F1B's admission cap). An
//     uncoupled thread may run arbitrarily far ahead, and the window
//     tracks the skew — correct, just not smaller.
//
// # Failure modes
//
// Every way a simulation can fail is a typed sentinel, matchable with
// errors.Is through any wrapping:
//
//	ErrCanceled          the context was canceled (also matches context.Canceled)
//	ErrDeadlineExceeded  the context deadline passed (also matches context.DeadlineExceeded)
//	ErrCycle             Validate found a dependency cycle (*CycleError lists members)
//	ErrDanglingEdge      a patch edge references a removed or unknown task
//	ErrNegativeDuration  an effective duration or duration+gap is negative
//	ErrStalled           simulation ended with live tasks unexecuted (*StallError
//	                     names the first blocked tasks) — the runtime face of a cycle
//
// Cancellation contract: WithContext(ctx) threads a context through
// every tier. Graph.Simulate, Overlay.Simulate, Patch.Simulate and the
// scheduled path check the context on entry and then every 1024
// executed tasks; IncrementalSim.ReSimulate checks every 1024
// recomputed cone members. A nil context costs nothing (the checks
// compile to a nil test). On abort the typed error wraps both the
// taxonomy sentinel and the context's cause, and any WithScratch
// buffers are left reset and reusable.
//
// Validation contract: Graph.Validate and Patch.Validate reject cycles,
// dangling edges and negative timings up front with the sentinels
// above, so a hostile delta never half-executes; if a cyclic view does
// reach Simulate, the run completes and reports *StallError rather
// than returning a silently-partial schedule.
package core
