package core

import (
	"errors"
	"testing"
	"time"

	"daydream/internal/dnn"
	"daydream/internal/trace"
)

// checkWindowMatchesFull simulates the view windowed and unwindowed and
// asserts the windowed run is bit-identical on everything it retains:
// makespan, thread ends, retained-window starts/finishes, and retired
// rounds' summaries against the full result's RoundSpan.
func checkWindowMatchesFull(t *testing.T, v TaskView, rounds, window int, opts ...SimOption) {
	t.Helper()
	full, err := simulateView(v, opts...)
	if err != nil {
		t.Fatal(err)
	}
	win, err := simulateView(v, append([]SimOption{WithRoundWindow(window)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if !win.Windowed() || win.WindowOccupancy() == 0 {
		t.Fatalf("windowed run not marked windowed (windowed=%v occupancy=%d)", win.Windowed(), win.WindowOccupancy())
	}
	if len(win.Start) != 0 {
		t.Fatalf("windowed result retains a %d-entry Start array", len(win.Start))
	}
	if win.Makespan != full.Makespan {
		t.Fatalf("windowed makespan %v != full %v", win.Makespan, full.Makespan)
	}
	if len(win.ThreadEnd) != len(full.ThreadEnd) {
		t.Fatalf("thread-end cardinality %d != %d", len(win.ThreadEnd), len(full.ThreadEnd))
	}
	for tid, end := range full.ThreadEnd {
		if win.ThreadEnd[tid] != end {
			t.Fatalf("thread %v end %v != full %v", tid, win.ThreadEnd[tid], end)
		}
	}
	retired := win.RetiredRounds()
	if want := rounds - window; retired != want {
		t.Fatalf("retired %d rounds, want %d", retired, want)
	}
	sums := win.Summaries()
	if len(sums) != retired {
		t.Fatalf("%d summaries for %d retired rounds", len(sums), retired)
	}
	var prevEnd time.Duration
	for r, s := range sums {
		if s.Round != r {
			t.Fatalf("summary %d claims round %d", r, s.Round)
		}
		wantEnd := RoundSpan(v, full, r)
		if s.End != wantEnd {
			t.Fatalf("round %d summary end %v != full round span %v", r, s.End, wantEnd)
		}
		if s.Span != s.End-prevEnd {
			t.Fatalf("round %d span %v != end delta %v", r, s.Span, s.End-prevEnd)
		}
		if RoundSpan(v, win, r) != wantEnd {
			t.Fatalf("windowed RoundSpan(%d) = %v, want %v", r, RoundSpan(v, win, r), wantEnd)
		}
		prevEnd = s.End
	}
	checked := 0
	for _, task := range v.Tasks() {
		start, ok := win.StartOf(task)
		if task.Round < retired {
			if ok {
				t.Fatalf("task #%d of retired round %d still readable", task.ID, task.Round)
			}
			continue
		}
		if !ok {
			t.Fatalf("task #%d of retained round %d not readable", task.ID, task.Round)
		}
		if start != full.Start[task.ID] {
			t.Fatalf("task #%d start %v != full %v", task.ID, start, full.Start[task.ID])
		}
		if win.Finish(task) != full.Finish(task) {
			t.Fatalf("task #%d finish %v != full %v", task.ID, win.Finish(task), full.Finish(task))
		}
		if win.TaskDuration(task) != full.TaskDuration(task) {
			t.Fatalf("task #%d duration %v != full %v", task.ID, win.TaskDuration(task), full.TaskDuration(task))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no retained tasks checked")
	}
}

// simulateView dispatches Simulate across the three view types.
func simulateView(v TaskView, opts ...SimOption) (*SimResult, error) {
	switch view := v.(type) {
	case *Graph:
		return view.Simulate(opts...)
	case *Overlay:
		return view.Simulate(opts...)
	case *Patch:
		return view.Simulate(opts...)
	}
	panic("unknown view type")
}

// TestWindowedMatchesFullOnZoo is the zoo-wide bit-equivalence suite:
// on every model's repeated graph, a windowed simulation must match the
// unwindowed one on the retained window and summarize the retired
// rounds exactly — through the Graph heap path, an edited Overlay, and
// an edited structural Patch.
func TestWindowedMatchesFullOnZoo(t *testing.T) {
	const rounds, window = 6, 2
	for _, name := range dnn.Names() {
		t.Run(name, func(t *testing.T) {
			g := modelGraph(t, name)
			rg, err := g.Repeat(rounds)
			if err != nil {
				t.Fatal(err)
			}
			t.Run("graph", func(t *testing.T) {
				checkWindowMatchesFull(t, rg, rounds, window)
			})
			t.Run("overlay", func(t *testing.T) {
				ov := NewOverlay(rg)
				for i, task := range rg.Tasks() {
					if i%7 == 0 {
						ov.SetDuration(task, task.Duration*2)
					}
					if i%11 == 0 {
						ov.SetGap(task, task.Gap+time.Microsecond)
					}
				}
				checkWindowMatchesFull(t, ov, rounds, window)
			})
			t.Run("patch", func(t *testing.T) {
				p := NewPatch(rg)
				for i, task := range rg.Tasks() {
					if i%5 == 0 {
						p.SetDuration(task, task.Duration/2)
					}
				}
				// A round-major structural delta: one extra task in the
				// last round, downstream of the graph's final GPU task.
				var last *Task
				for _, task := range rg.Tasks() {
					if task.OnGPU() {
						last = task
					}
				}
				nt := p.NewTask("window_probe", trace.KindKernel, last.Thread, 42*time.Microsecond)
				nt.Round = rounds - 1
				if err := p.AddDependency(last, nt, DepCustom); err != nil {
					t.Fatal(err)
				}
				checkWindowMatchesFull(t, p, rounds, window)
			})
		})
	}
}

// TestWindowedScheduledMatchesFull pins the windowed path through
// simulateScheduled: a carried scheduler and a round window compose.
func TestWindowedScheduledMatchesFull(t *testing.T) {
	const rounds, window = 5, 2
	g := modelGraph(t, "resnet50")
	rg, err := g.Repeat(rounds)
	if err != nil {
		t.Fatal(err)
	}
	checkWindowMatchesFull(t, rg, rounds, window, WithScheduler(EarliestStart{}))
}

// TestWindowRejectsNonRoundMajor pins the layout contract: IDs
// decreasing in Round fail fast with ErrNotRoundMajor.
func TestWindowRejectsNonRoundMajor(t *testing.T) {
	g := NewGraph()
	a := g.NewTask("a", trace.KindKernel, Stream(0), time.Millisecond)
	a.Round = 1
	g.AppendTask(a)
	b := g.NewTask("b", trace.KindKernel, Stream(0), time.Millisecond)
	b.Round = 0
	g.AppendTask(b)
	if _, err := g.Simulate(WithRoundWindow(1)); !errors.Is(err, ErrNotRoundMajor) {
		t.Fatalf("got %v, want ErrNotRoundMajor", err)
	}
}

// TestWindowedRepeatMemoryFootprint is the O(window) assertion: a
// 1000-round repetition of a round-coupled iteration (each round's
// producer waits for the previous round's consumer, the shape a
// launch→kernel→sync loop or a pipeline's microbatch flow has) must
// retain a per-task span sized by the window, not the graph.
func TestWindowedRepeatMemoryFootprint(t *testing.T) {
	const rounds, window = 1000, 4
	g := NewGraph()
	launch := g.NewTask("launch", trace.KindKernel, Stream(1), time.Millisecond)
	g.AppendTask(launch)
	kernel := g.NewTask("kernel", trace.KindKernel, Stream(2), time.Millisecond)
	g.AppendTask(kernel)
	sync := g.NewTask("sync", trace.KindKernel, Stream(1), time.Millisecond)
	g.AppendTask(sync)
	if err := g.AddDependency(launch, kernel, DepCustom); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDependency(kernel, sync, DepCustom); err != nil {
		t.Fatal(err)
	}
	rg, err := g.Repeat(rounds)
	if err != nil {
		t.Fatal(err)
	}
	n := len(rg.Tasks())
	res, err := rg.Simulate(WithRoundWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	if res.RetiredRounds() != rounds-window {
		t.Fatalf("retired %d rounds, want %d", res.RetiredRounds(), rounds-window)
	}
	perRound := n / rounds
	budget := (window + 3) * 2 * perRound // generous 2× slack over w+2 rounds
	if occ := res.WindowOccupancy(); occ > budget {
		t.Fatalf("window occupancy %d tasks exceeds O(window) budget %d (graph has %d tasks)", occ, budget, n)
	}
	if got := len(res.win.ring); got > budget {
		t.Fatalf("start ring holds %d slots, want <= %d (graph has %d tasks)", got, budget, n)
	}
	if len(res.Start) != 0 {
		t.Fatalf("windowed result retains full Start array (%d entries)", len(res.Start))
	}
}

// TestWindowedRetiredReadPanics pins the fail-fast contract for
// per-task reads of retired rounds.
func TestWindowedRetiredReadPanics(t *testing.T) {
	g := modelGraph(t, "vgg19")
	rg, err := g.Repeat(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rg.Simulate(WithRoundWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	var victim *Task
	for _, task := range rg.Tasks() {
		if task.Round == 0 {
			victim = task
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Finish on a retired round did not panic")
		}
	}()
	_ = res.Finish(victim)
}
