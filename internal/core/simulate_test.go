package core

import (
	"testing"
	"time"

	"daydream/internal/trace"
)

func TestSimulateSerialChain(t *testing.T) {
	g, _ := chain(4, 10*time.Microsecond)
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 40*time.Microsecond {
		t.Fatalf("makespan = %v, want 40µs", res.Makespan)
	}
}

func TestSimulateGapSemantics(t *testing.T) {
	// Per Algorithm 1, a task's gap advances its thread's progress and
	// its children's earliest start.
	g, tasks := chain(2, 10*time.Microsecond)
	tasks[0].Gap = 5 * time.Microsecond
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Start[tasks[1].ID]; got != 15*time.Microsecond {
		t.Fatalf("second task starts at %v, want 15µs", got)
	}
	if res.Makespan != 25*time.Microsecond {
		t.Fatalf("makespan = %v, want 25µs", res.Makespan)
	}
}

func TestSimulateParallelThreads(t *testing.T) {
	// Two independent threads run concurrently: makespan = max, not sum.
	g := NewGraph()
	a := g.NewTask("a", trace.KindCPUOp, CPU(1), 30*time.Microsecond)
	g.AppendTask(a)
	b := g.NewTask("b", trace.KindKernel, Stream(7), 50*time.Microsecond)
	g.AppendTask(b)
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 50*time.Microsecond {
		t.Fatalf("makespan = %v, want 50µs", res.Makespan)
	}
	if res.Start[a.ID] != 0 || res.Start[b.ID] != 0 {
		t.Fatal("independent tasks should both start at 0")
	}
}

func TestSimulateCrossThreadDependency(t *testing.T) {
	// launch (10µs, CPU) → kernel (20µs, GPU); then a sync on the CPU
	// waits for the kernel. Classic launch/sync diamond.
	g := NewGraph()
	launch := g.NewTask("launch", trace.KindLaunch, CPU(1), 10*time.Microsecond)
	g.AppendTask(launch)
	kernel := g.NewTask("k", trace.KindKernel, Stream(7), 20*time.Microsecond)
	g.AppendTask(kernel)
	if err := g.Correlate(launch, kernel); err != nil {
		t.Fatal(err)
	}
	sync := g.NewTask("sync", trace.KindSync, CPU(1), 2*time.Microsecond)
	g.AppendTask(sync)
	if err := g.AddDependency(kernel, sync, DepSync); err != nil {
		t.Fatal(err)
	}
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Start[kernel.ID] != 10*time.Microsecond {
		t.Fatalf("kernel starts at %v, want 10µs", res.Start[kernel.ID])
	}
	if res.Start[sync.ID] != 30*time.Microsecond {
		t.Fatalf("sync starts at %v, want 30µs (after kernel)", res.Start[sync.ID])
	}
	if res.Makespan != 32*time.Microsecond {
		t.Fatalf("makespan = %v, want 32µs", res.Makespan)
	}
}

func TestSimulateDetectsCycle(t *testing.T) {
	g, tasks := chain(2, time.Microsecond)
	if err := g.AddDependency(tasks[1], tasks[0], DepCustom); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Simulate(); err == nil {
		t.Fatal("cycle simulated successfully")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	g, _ := chain(50, time.Microsecond)
	// Cross edges to create scheduling choice.
	tasks := g.Tasks()
	for i := 0; i+7 < len(tasks); i += 7 {
		k := g.NewTask("k", trace.KindKernel, Stream(7), 3*time.Microsecond)
		g.AppendTask(k)
		if err := g.AddDependency(tasks[i], k, DepCustom); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatal("simulation not deterministic")
	}
	for id, s := range r1.Start {
		if r2.Start[id] != s {
			t.Fatalf("task %d start differs across runs", id)
		}
	}
}

// prioritySched prefers higher-priority tasks among those ready at the
// same effective time — the shape of the P3 scheduler.
func TestSchedulerPriorityTieBreak(t *testing.T) {
	// Two channel tasks become ready at the same instant; the default
	// scheduler must favor the higher Priority.
	g := NewGraph()
	gate := g.NewTask("gate", trace.KindCPUOp, CPU(1), 10*time.Microsecond)
	g.AppendTask(gate)
	low := g.NewTask("low", trace.KindComm, Channel("ps.send"), 10*time.Microsecond)
	low.Priority = -5
	high := g.NewTask("high", trace.KindComm, Channel("ps.send"), 10*time.Microsecond)
	high.Priority = 5
	for _, task := range []*Task{low, high} {
		if err := g.AddDependency(gate, task, DepComm); err != nil {
			t.Fatal(err)
		}
	}
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Start[high.ID] != 10*time.Microsecond {
		t.Fatalf("high-priority task starts at %v, want first slot", res.Start[high.ID])
	}
	if res.Start[low.ID] != 20*time.Microsecond {
		t.Fatalf("low-priority task starts at %v, want second slot", res.Start[low.ID])
	}
}

// reversePriority inverts the default preference, to prove the override
// hook actually controls scheduling.
type reversePriority struct{}

func (reversePriority) Pick(frontier []*Task, ctx *SchedContext) int {
	best := -1
	var bestT time.Duration
	for i, task := range frontier {
		et := ctx.EffStart(task)
		switch {
		case best < 0, et < bestT:
			best, bestT = i, et
		case et == bestT && ctx.Priority(task) < ctx.Priority(frontier[best]):
			best = i
		}
	}
	return best
}

func TestSchedulerOverride(t *testing.T) {
	g := NewGraph()
	gate := g.NewTask("gate", trace.KindCPUOp, CPU(1), 10*time.Microsecond)
	g.AppendTask(gate)
	low := g.NewTask("low", trace.KindComm, Channel("c"), 10*time.Microsecond)
	low.Priority = -5
	high := g.NewTask("high", trace.KindComm, Channel("c"), 10*time.Microsecond)
	high.Priority = 5
	for _, task := range []*Task{low, high} {
		if err := g.AddDependency(gate, task, DepComm); err != nil {
			t.Fatal(err)
		}
	}
	res, err := g.Simulate(WithScheduler(reversePriority{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Start[low.ID] != 10*time.Microsecond {
		t.Fatal("scheduler override not honored")
	}
}

// failingSched picks LIFO for the first n steps, then returns an
// out-of-range index, aborting the simulation mid-flight with a
// populated frontier.
type failingSched struct {
	steps *int
	n     int
}

func (s failingSched) Pick(frontier []*Task, _ *SchedContext) int {
	if *s.steps >= s.n {
		return len(frontier) // out of range → simulation error
	}
	*s.steps++
	return len(frontier) - 1
}

// TestScratchReuseAfterSchedulerError pins the error-path reset: a
// scheduler failure used to leave stale frontier entries in the scratch
// (the reset ran only on success), corrupting the next simulation that
// reused it. Every exit path must reset, so a post-error reuse matches
// a fresh-scratch run exactly.
func TestScratchReuseAfterSchedulerError(t *testing.T) {
	g := modelGraph(t, "resnet50")
	scratch := NewSimScratch()

	// Abort mid-simulation, after enough steps that the frontier is
	// non-trivial, and also on the very first pick.
	for _, failAt := range []int{0, 25} {
		steps := 0
		if _, err := g.Simulate(WithScratch(scratch), WithScheduler(failingSched{steps: &steps, n: failAt})); err == nil {
			t.Fatalf("failing scheduler (n=%d) did not error", failAt)
		}
		fresh, err := g.Simulate(WithScheduler(lifoScheduler{}))
		if err != nil {
			t.Fatal(err)
		}
		reused, err := g.Simulate(WithScratch(scratch), WithScheduler(lifoScheduler{}))
		if err != nil {
			t.Fatal(err)
		}
		assertSameSchedule(t, g, reused, fresh)
	}

	// A cycle error resets too: the next scheduled run on the shared
	// scratch still succeeds.
	cyc := NewGraph()
	a := cyc.NewTask("a", trace.KindCPUOp, CPU(1), time.Microsecond)
	b := cyc.NewTask("b", trace.KindCPUOp, CPU(2), time.Microsecond)
	if err := cyc.AddDependency(a, b, DepCustom); err != nil {
		t.Fatal(err)
	}
	if err := cyc.AddDependency(b, a, DepCustom); err != nil {
		t.Fatal(err)
	}
	if _, err := cyc.Simulate(WithScratch(scratch), WithScheduler(lifoScheduler{})); err == nil {
		t.Fatal("cycle did not error on the scheduled path")
	}
	fresh, err := g.Simulate(WithScheduler(lifoScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	reused, err := g.Simulate(WithScratch(scratch), WithScheduler(lifoScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSchedule(t, g, reused, fresh)
}

// TestSimulationInvariants checks, on a real model graph, the two
// correctness properties of Algorithm 1: no task starts before a parent
// finishes (plus gap), and tasks on one thread never overlap.
func TestSimulationInvariants(t *testing.T) {
	g := modelGraph(t, "densenet121")
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range g.Tasks() {
		uEnd := res.Start[u.ID] + u.Duration + u.Gap
		for _, c := range u.Children() {
			if res.Start[c.ID] < uEnd {
				t.Fatalf("dependency violated: %v starts %v before parent %v ends %v",
					c, res.Start[c.ID], u, uEnd)
			}
		}
	}
	for _, tid := range g.Threads() {
		tasks := g.ThreadTasks(tid)
		for i := 1; i < len(tasks); i++ {
			prevEnd := res.Start[tasks[i-1].ID] + tasks[i-1].Duration + tasks[i-1].Gap
			if res.Start[tasks[i].ID] < prevEnd {
				t.Fatalf("thread %v overlap at position %d", tid, i)
			}
		}
	}
}

func TestSimResultFinish(t *testing.T) {
	g, tasks := chain(1, 10*time.Microsecond)
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish(tasks[0]) != 10*time.Microsecond {
		t.Fatal("Finish wrong")
	}
}

func TestEmptyGraphSimulates(t *testing.T) {
	g := NewGraph()
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Fatal("empty graph has nonzero makespan")
	}
}
