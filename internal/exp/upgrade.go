package exp

import (
	"fmt"
	"time"

	"daydream/internal/framework"
	"daydream/internal/whatif"
	"daydream/internal/xpu"
)

// UpgradeRow is one (model, source→target device) validation point for
// the device-upgrade what-if.
type UpgradeRow struct {
	// Model and Target label the row.
	Model, Target string
	// Source is the profiled device's iteration time.
	Source time.Duration
	// GroundTruth is the measured iteration time on the target device.
	GroundTruth time.Duration
	// Predicted is the what-if prediction from the source profile.
	Predicted time.Duration
	// Err is |Predicted − GroundTruth| / GroundTruth.
	Err float64
}

// RunUpgrade validates the device-upgrade extension: predict V100 and
// P4000 iteration times from 2080 Ti profiles and compare against actual
// engine runs on those devices — the "would a faster GPU help?" question
// from the paper's introduction, answered without access to the target
// hardware.
func RunUpgrade() ([]UpgradeRow, error) {
	targets := []*xpu.Device{xpu.V100(), xpu.P4000()}
	var rows []UpgradeRow
	for _, name := range []string{"resnet50", "gnmt", "bert-base"} {
		m := model(name)
		_, g, err := Profile(framework.Config{Model: m})
		if err != nil {
			return nil, err
		}
		src, err := g.Clone().PredictIteration()
		if err != nil {
			return nil, err
		}
		for _, target := range targets {
			c := g.Clone()
			if err := whatif.DeviceUpgrade(c, xpu.RTX2080Ti(), target); err != nil {
				return nil, err
			}
			pred, err := c.PredictIteration()
			if err != nil {
				return nil, err
			}
			gt, err := framework.Run(framework.Config{Model: m, Device: target})
			if err != nil {
				return nil, err
			}
			rows = append(rows, UpgradeRow{
				Model:       m.Name,
				Target:      target.Name,
				Source:      src,
				GroundTruth: gt.IterationTime,
				Predicted:   pred,
				Err:         relErr(pred, gt.IterationTime),
			})
		}
	}
	return rows, nil
}

// Upgrade renders the device-upgrade validation.
func Upgrade() ([]*Table, error) {
	rows, err := RunUpgrade()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "upgrade",
		Title:  "Device-upgrade what-if (extension): predicted from 2080 Ti profiles vs measured on the target",
		Header: []string{"Model", "Target device", "2080Ti (ms)", "Measured (ms)", "Predicted (ms)", "Pred. error"},
		Notes: []string{
			"answers the introduction's \"would upgrading the GPU help?\" from an existing profile",
			"near-zero errors are partly a substrate artifact: engine and what-if share the roofline model, so only size-dependent saturation, kernel floors and jitter differ; on real hardware per-kernel efficiency shifts would widen them",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model, r.Target, ms(r.Source), ms(r.GroundTruth), ms(r.Predicted),
			fmt.Sprintf("%.1f%%", 100*r.Err),
		})
	}
	return []*Table{t}, nil
}
