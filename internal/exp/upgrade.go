package exp

import (
	"fmt"
	"time"

	"daydream/internal/core"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/whatif"
	"daydream/internal/xpu"
)

// UpgradeRow is one (model, source→target device) validation point for
// the device-upgrade what-if.
type UpgradeRow struct {
	// Model and Target label the row.
	Model, Target string
	// Source is the profiled device's iteration time.
	Source time.Duration
	// GroundTruth is the measured iteration time on the target device.
	GroundTruth time.Duration
	// Predicted is the what-if prediction from the source profile.
	Predicted time.Duration
	// Err is |Predicted − GroundTruth| / GroundTruth.
	Err float64
}

// RunUpgrade validates the device-upgrade extension: predict V100 and
// P4000 iteration times from 2080 Ti profiles and compare against actual
// engine runs on those devices — the "would a faster GPU help?" question
// from the paper's introduction, answered without access to the target
// hardware. Profiling and the per-(model, target) ground-truth runs fan
// out over a bounded pool; the device grid itself is one sweep over
// each model's shared profile (one replay scenario for the source time,
// one timing-only OptDeviceUpgrade value per target, so every
// prediction stays on the clone-free overlay path).
func RunUpgrade() ([]UpgradeRow, error) {
	targets := []*xpu.Device{xpu.V100(), xpu.P4000()}
	models := []string{"resnet50", "gnmt", "bert-base"}
	nt := len(targets)

	graphs := make([]*core.Graph, len(models))
	err := runParallel(len(models), func(i int) error {
		_, g, err := Profile(framework.Config{Model: model(models[i])})
		graphs[i] = g
		return err
	})
	if err != nil {
		return nil, err
	}

	// Per model: one replay scenario (the source-device time) followed
	// by one overlay scenario per upgrade target.
	scenarios := make([]sweep.Scenario, 0, len(models)*(nt+1))
	for i, name := range models {
		g := graphs[i]
		scenarios = append(scenarios, sweep.Scenario{Name: name + "/source", Base: g})
		for _, target := range targets {
			scenarios = append(scenarios, sweep.Scenario{
				Name: name + "/" + target.Name,
				Base: g,
				Opt:  whatif.OptDeviceUpgrade(xpu.RTX2080Ti(), target),
			})
		}
	}
	preds, err := sweep.Run(nil, scenarios)
	if err != nil {
		return nil, err
	}

	rows := make([]UpgradeRow, len(models)*nt)
	err = runParallel(len(rows), func(i int) error {
		mi, ti := i/nt, i%nt
		target := targets[ti]
		gt, err := framework.Run(framework.Config{Model: model(models[mi]), Device: target})
		if err != nil {
			return err
		}
		pred := preds[mi*(nt+1)+1+ti].Value
		rows[i] = UpgradeRow{
			Model:       model(models[mi]).Name,
			Target:      target.Name,
			Source:      preds[mi*(nt+1)].Value,
			GroundTruth: gt.IterationTime,
			Predicted:   pred,
			Err:         relErr(pred, gt.IterationTime),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Upgrade renders the device-upgrade validation.
func Upgrade() ([]*Table, error) {
	rows, err := RunUpgrade()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "upgrade",
		Title:  "Device-upgrade what-if (extension): predicted from 2080 Ti profiles vs measured on the target",
		Header: []string{"Model", "Target device", "2080Ti (ms)", "Measured (ms)", "Predicted (ms)", "Pred. error"},
		Notes: []string{
			"answers the introduction's \"would upgrading the GPU help?\" from an existing profile",
			"near-zero errors are partly a substrate artifact: engine and what-if share the roofline model, so only size-dependent saturation, kernel floors and jitter differ; on real hardware per-kernel efficiency shifts would widen them",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model, r.Target, ms(r.Source), ms(r.GroundTruth), ms(r.Predicted),
			fmt.Sprintf("%.1f%%", 100*r.Err),
		})
	}
	return []*Table{t}, nil
}
