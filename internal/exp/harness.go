// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§6): for each experiment it runs the
// ground-truth engine, computes Daydream's prediction from a baseline
// trace, and renders the same rows/series the paper reports, including the
// prediction-error columns.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
)

// Table is a renderable experiment result.
type Table struct {
	// ID is the experiment identifier ("fig5", "fig8a", "sec6.4", ...).
	ID string
	// Title describes the experiment, paper-style.
	Title string
	// Header labels the columns.
	Header []string
	// Rows is the cell matrix.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Experiment pairs an identifier with a generator.
type Experiment struct {
	// ID is the experiment identifier used by the CLI's -run filter.
	ID string
	// Title is a one-line description.
	Title string
	// Run generates the result tables.
	Run func() ([]*Table, error)
}

// All returns every experiment of the paper's evaluation, in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Models and datasets (Table 2)", Run: Table2Models},
		{ID: "fig5", Title: "AMP prediction accuracy (Figure 5)", Run: Fig5AMP},
		{ID: "fig6", Title: "Runtime breakdown fp32 vs fp16 (Figure 6)", Run: Fig6Breakdown},
		{ID: "fig7", Title: "FusedAdam prediction accuracy (Figure 7)", Run: Fig7FusedAdam},
		{ID: "fig8", Title: "Distributed training predictions (Figure 8)", Run: Fig8Distributed},
		{ID: "fig9", Title: "NCCL all-reduce interference (Figure 9)", Run: Fig9NCCL},
		{ID: "fig10", Title: "P3 predictions vs bandwidth (Figure 10)", Run: Fig10P3},
		{ID: "sec6.4", Title: "Reconstructing batchnorm (Section 6.4)", Run: BatchnormRecon},
		{ID: "table1", Title: "Optimization-model coverage (Table 1)", Run: Table1Coverage},
		{ID: "ablation", Title: "Modeling-ingredient ablations (replay fidelity)", Run: Ablation},
		{ID: "upgrade", Title: "Device-upgrade what-if validation (extension)", Run: Upgrade},
		{ID: "ampgrid", Title: "Per-layer AMP attribution grid (incremental sweep)", Run: AMPLayerGrid},
		{ID: "kcurve", Title: "Kernel-profile sensitivity curve (incremental sweep)", Run: KernelCurve},
		{ID: "memgrid", Title: "Memory-vs-makespan trade-off grid (memory timeline extension)", Run: MemGrid},
		{ID: "pipegrid", Title: "Pipeline partitioning grid — stages × microbatches vs data-parallel (pipeline extension)", Run: PipeGrid},
	}
}

// runParallel evaluates fn(0..n-1) on a bounded worker pool and returns
// the first error in index order. The experiment grids use it to fan
// out their ground-truth framework.Run calls, which are independent and
// deterministic per configuration — the engine reads only its Config —
// so the parallel grid is bit-identical to the sequential loop.
func runParallel(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Profile runs the baseline configuration, builds the dependency graph and
// applies the layer mapping: the first two phases of Daydream's workflow.
func Profile(cfg framework.Config) (*framework.Result, *core.Graph, error) {
	cfg.CollectTrace = true
	res, err := framework.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	g, err := core.Build(res.Trace)
	if err != nil {
		return nil, nil, err
	}
	core.MapLayers(g, res.Trace.LayerSpans)
	return res, g, nil
}

// model loads a zoo model or panics: experiment code only uses known names.
func model(name string) *dnn.Model {
	m, err := dnn.ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// ms renders a duration as milliseconds with one decimal.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// pct renders a fraction as a percentage with one decimal.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// relErr returns |a−b| / b.
func relErr(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d / float64(b)
}

// improvement returns the fractional gain of new over base (1 − new/base).
func improvement(base, new time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return 1 - float64(new)/float64(base)
}
