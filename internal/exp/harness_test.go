package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableFormat(t *testing.T) {
	tb := &Table{
		ID:     "t1",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"x", "y"}, {"longer", "z"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tb.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"t1 — demo", "a       bb", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) != 15 {
		t.Errorf("%d experiments, want 15 (Table 2, Figs 5–10, §6.4, Table 1, ablation, upgrade, ampgrid, kcurve, memgrid, pipegrid)", len(seen))
	}
}

func TestHelpers(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.5" {
		t.Errorf("ms = %q", ms(1500*time.Microsecond))
	}
	if pct(0.123) != "12.3%" {
		t.Errorf("pct = %q", pct(0.123))
	}
	if relErr(110, 100) != 0.1 || relErr(90, 100) != 0.1 {
		t.Error("relErr not symmetric in magnitude")
	}
	if relErr(5, 0) != 0 {
		t.Error("relErr divide-by-zero not guarded")
	}
	if improvement(100, 75) != 0.25 {
		t.Error("improvement wrong")
	}
	if improvement(0, 80) != 0 {
		t.Error("improvement divide-by-zero not guarded")
	}
}

func TestModelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("model() with unknown name did not panic")
		}
	}()
	model("not-a-model")
}

// TestPaperBands asserts the headline reproduction claims so regressions
// in the substrate or the predictor are caught by CI, not by eyeballing
// tables. Bounds are the paper's, with slack for the synthetic substrate.
func TestPaperBands(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-band checks skipped in -short mode")
	}
	t.Run("fig5", func(t *testing.T) {
		rows, err := RunFig5AMP()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Err > 0.13 {
				t.Errorf("%s: AMP prediction error %.1f%% exceeds the paper's 13%%", r.Model, 100*r.Err)
			}
			if r.GroundTruth >= r.Baseline {
				t.Errorf("%s: AMP did not help", r.Model)
			}
			if r.Model == "BERT_Large" && r.Err > 0.05 {
				t.Errorf("BERT_Large AMP error %.1f%%, paper reports <3%%", 100*r.Err)
			}
		}
	})
	t.Run("fig7", func(t *testing.T) {
		rows, err := RunFig7FusedAdam()
		if err != nil {
			t.Fatal(err)
		}
		byModel := map[string]FusedAdamRow{}
		for _, r := range rows {
			byModel[r.Model] = r
			if r.Err > 0.13 {
				t.Errorf("%s: FusedAdam prediction error %.1f%% exceeds 13%%", r.Model, 100*r.Err)
			}
		}
		// BERT gains large, GNMT small (paper §6.3).
		if imp := improvement(byModel["BERT_Large"].Baseline, byModel["BERT_Large"].GroundTruth); imp < 0.15 {
			t.Errorf("BERT_Large FusedAdam improvement %.1f%%, want large", 100*imp)
		}
		if imp := improvement(byModel["Seq2Seq"].Baseline, byModel["Seq2Seq"].GroundTruth); imp > 0.10 {
			t.Errorf("Seq2Seq FusedAdam improvement %.1f%%, paper says <10%%", 100*imp)
		}
	})
	t.Run("fig9", func(t *testing.T) {
		_, sum, err := RunFig9NCCL()
		if err != nil {
			t.Fatal(err)
		}
		if sum.BaselineOverTheoretical < 0.20 || sum.BaselineOverTheoretical > 0.50 {
			t.Errorf("baseline over theoretical %.1f%%, paper: 34%%", 100*sum.BaselineOverTheoretical)
		}
		if sum.SyncImprovement < 0.10 {
			t.Errorf("sync improvement %.1f%%, paper: 22.8%%", 100*sum.SyncImprovement)
		}
		if sum.IterSync > sum.IterBaseline {
			t.Error("sync variant degraded the iteration (paper: never)")
		}
	})
	t.Run("sec6.4", func(t *testing.T) {
		r, err := RunBatchnormRecon()
		if err != nil {
			t.Fatal(err)
		}
		if r.PredictedSpeedup <= r.GroundTruthSpeedup {
			t.Errorf("prediction (%.1f%%) must overestimate ground truth (%.1f%%), as in §6.4",
				100*r.PredictedSpeedup, 100*r.GroundTruthSpeedup)
		}
		if r.GroundTruthSpeedup <= 0 {
			t.Error("reconstruction must still help")
		}
	})
	t.Run("fig10-overestimates-at-high-bw", func(t *testing.T) {
		rows, err := RunFig10Model("VGG-19", fig10Models[1].build(), []float64{5, 20})
		if err != nil {
			t.Fatal(err)
		}
		low, high := rows[0], rows[1]
		if high.Predicted > high.GroundTruth {
			t.Errorf("at 20Gbps prediction (%v) should be optimistic vs ground truth (%v)",
				high.Predicted, high.GroundTruth)
		}
		if high.Err < low.Err {
			t.Errorf("P3 error should grow with bandwidth: %.1f%% at 5Gbps vs %.1f%% at 20Gbps",
				100*low.Err, 100*high.Err)
		}
		if high.Err > 0.20 {
			t.Errorf("P3 error %.1f%% exceeds the paper's 16.2%% band (with slack)", 100*high.Err)
		}
	})
	t.Run("fig8-error-band", func(t *testing.T) {
		rows, err := RunFig8Model("ResNet-50", "resnet50")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Err > 0.18 {
				t.Errorf("%s %s: distributed prediction error %.1f%% out of band",
					r.Topology, r.GbpsLabel, 100*r.Err)
			}
		}
	})
}
