package exp

import (
	"time"

	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/whatif"
)

// FusedAdamRow is one bar group of Figure 7.
type FusedAdamRow struct {
	// Model is the paper's label.
	Model string
	// Baseline is the unfused-Adam iteration time.
	Baseline time.Duration
	// GroundTruth is the FusedAdam iteration time.
	GroundTruth time.Duration
	// Predicted is Daydream's prediction from the baseline trace.
	Predicted time.Duration
	// Err is |Predicted − GroundTruth| / GroundTruth.
	Err float64
}

// RunFig7FusedAdam computes Figure 7 for the Adam-trained models: the
// per-model profiling and ground-truth engine runs fan out over a
// bounded pool, then the Algorithm-4 predictions go through one sweep
// as the registry's FusedAdam Optimization value — timing-only (the
// fused optimizer is modeled as rescaling: superseded kernels and
// launches drop to zero time), so the sweep stays on the clone-free
// overlay path.
func RunFig7FusedAdam() ([]FusedAdamRow, error) {
	models := []struct{ label, zoo string }{
		{"BERT_Base", "bert-base"},
		{"BERT_Large", "bert-large"},
		{"Seq2Seq", "gnmt"},
	}
	scenarios := make([]sweep.Scenario, len(models))
	rows := make([]FusedAdamRow, len(models))
	err := runParallel(len(models), func(i int) error {
		mm := models[i]
		m := model(mm.zoo)
		baseRes, g, err := Profile(framework.Config{Model: m})
		if err != nil {
			return err
		}
		gt, err := framework.Run(framework.Config{
			Model: m, Optimizer: framework.OptFusedAdam, OptimizerSet: true,
		})
		if err != nil {
			return err
		}
		rows[i] = FusedAdamRow{
			Model:       mm.label,
			Baseline:    baseRes.IterationTime,
			GroundTruth: gt.IterationTime,
		}
		scenarios[i] = sweep.Scenario{
			Name: mm.label,
			Base: g,
			Opt:  whatif.OptFusedAdam(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	preds, err := sweep.Run(nil, scenarios)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Predicted = preds[i].Value
		rows[i].Err = relErr(preds[i].Value, rows[i].GroundTruth)
	}
	return rows, nil
}

// Fig7FusedAdam renders Figure 7 as a table.
func Fig7FusedAdam() ([]*Table, error) {
	rows, err := RunFig7FusedAdam()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig7",
		Title:  "FusedAdam — baseline (FP32), ground truth with FusedAdam, and Daydream's prediction",
		Header: []string{"Model", "Baseline (ms)", "Ground Truth (ms)", "Prediction (ms)", "GT speedup", "Pred. error"},
		Notes: []string{
			"paper: predictions within 13% of ground truth; BERT gains large (weight update is 30–45% of iteration, launch-bound), GNMT small (<10%)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model, ms(r.Baseline), ms(r.GroundTruth), ms(r.Predicted),
			pct(improvement(r.Baseline, r.GroundTruth)), pct(r.Err),
		})
	}
	return []*Table{t}, nil
}
