package exp

import (
	"testing"
)

// TestExperimentDeterminism runs the fastest full experiment twice and
// requires identical rows: every number this repository reports must be
// bit-reproducible (the substrate's jitter is a pure function of its
// inputs).
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep skipped in -short mode")
	}
	run := func() []AMPRow {
		rows, err := RunFig5AMP()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("row counts differ between runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
