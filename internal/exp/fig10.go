package exp

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/whatif"
	"daydream/internal/xpu"
)

// P3Row is one bandwidth point of Figure 10.
type P3Row struct {
	// Model is the paper's label.
	Model string
	// Gbps is the network bandwidth.
	Gbps float64
	// Baseline is the measured iteration time of the plain parameter
	// server (no P3).
	Baseline time.Duration
	// GroundTruth is the measured iteration time with P3 enabled.
	GroundTruth time.Duration
	// Predicted is Daydream's P3 prediction from the single-worker
	// profile.
	Predicted time.Duration
	// Err is |Predicted − GroundTruth| / GroundTruth.
	Err float64
}

// fig10Topology is the P3 paper's setup the evaluation reproduces: four
// machines with one Quadro P4000 each, MXNet parameter server.
func fig10Topology(gbps float64) comm.Topology {
	return comm.Topology{
		Machines:       4,
		GPUsPerMachine: 1,
		NICBandwidth:   comm.Gbps(gbps),
		IntraBandwidth: 11e9,
		StepLatency:    40 * time.Microsecond,
	}
}

// RunFig10Model computes one Figure 10 subfigure. The P3 experiments use
// smaller per-GPU batches than Table 2's defaults (the P3 paper's setup),
// which keeps the compute/communication ratio in the regime where
// prioritization matters. The bandwidth grid's Algorithm-7 predictions
// fan out through one sweep over the shared single-worker profile.
func RunFig10Model(label string, m *dnn.Model, bandwidths []float64) ([]P3Row, error) {
	base := framework.Config{
		Model:   m,
		Device:  xpu.P4000(),
		Dialect: framework.MXNet,
	}
	_, g, err := Profile(base)
	if err != nil {
		return nil, err
	}
	// One Repeat of the single-worker profile is shared immutably by
	// every bandwidth point: each scenario records Algorithm 7's
	// push/pull annotation as copy-on-write patch deltas over it, so
	// the grid runs without a single per-scenario clone.
	rep, err := g.Repeat(p3Rounds)
	if err != nil {
		return nil, err
	}
	scenarios := make([]sweep.Scenario, len(bandwidths))
	for i, bw := range bandwidths {
		scenarios[i] = P3Scenario(rep, fig10Topology(bw))
	}
	preds, err := sweep.Run(rep, scenarios)
	if err != nil {
		return nil, err
	}
	// Two ground-truth engine runs (plain PS, P3) per bandwidth point,
	// all independent: fan the 2×len(bandwidths) grid out over a
	// bounded pool.
	rows := make([]P3Row, len(bandwidths))
	gts := make([]*framework.Result, 2*len(bandwidths))
	err = runParallel(len(gts), func(i int) error {
		cfg := base
		cfg.Cluster = &framework.Cluster{
			Topology: fig10Topology(bandwidths[i/2]),
			Backend:  framework.BackendPS,
			P3:       i%2 == 1,
		}
		res, err := framework.Run(cfg)
		if err != nil {
			return err
		}
		gts[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, bw := range bandwidths {
		baseline, gt := gts[2*i], gts[2*i+1]
		rows[i] = P3Row{
			Model:       label,
			Gbps:        bw,
			Baseline:    baseline.IterationTime,
			GroundTruth: gt.IterationTime,
			Predicted:   preds[i].Value,
			Err:         relErr(preds[i].Value, gt.IterationTime),
		}
	}
	return rows, nil
}

// p3Rounds is the iteration count P3Scenario chains (whatif.P3's
// default and minimum): enough for one steady-state round distance.
const p3Rounds = 2

// P3Scenario wraps Algorithm 7 as a sweep scenario over a shared
// Repeat-expanded baseline (base must carry p3Rounds rounds): the
// scenario carries the patch-form P3 annotation value, which records
// the push/pull tasks, priorities and cross-round edges as
// copy-on-write deltas — no per-scenario clone — and supplies its own
// measure, the steady-state iteration time (the distance between the
// last two rounds' completion frontiers). The returned Scenario holds
// no shared mutable state, so it is reusable and safe across concurrent
// sweeps like any other.
func P3Scenario(base *core.Graph, topo comm.Topology) sweep.Scenario {
	return sweep.Scenario{
		Name: fmt.Sprintf("p3 %s @%.0fGbps", topo.String(), topo.NICBandwidth/comm.Gbps(1)),
		Base: base,
		Opt: whatif.OptP3Annotate(whatif.P3Options{
			Topology:   topo,
			SliceBytes: 800 << 10,
			Rounds:     p3Rounds,
		}),
	}
}

// fig10Models lists the two subfigures with their bandwidth sweeps.
var fig10Models = []struct {
	sub, label string
	build      func() *dnn.Model
	bandwidths []float64
}{
	{"fig10a", "ResNet-50", func() *dnn.Model { return dnn.ResNet50(32) }, []float64{1, 2, 4, 6, 8}},
	{"fig10b", "VGG-19", func() *dnn.Model { return dnn.VGG19(16) }, []float64{5, 10, 15, 20, 25}},
}

// Fig10P3 renders both subfigures of Figure 10.
func Fig10P3() ([]*Table, error) {
	var tables []*Table
	for _, mm := range fig10Models {
		rows, err := RunFig10Model(mm.label, mm.build(), mm.bandwidths)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:     mm.sub,
			Title:  fmt.Sprintf("P3 under different network bandwidths — %s (4×P4000, MXNet PS)", mm.label),
			Header: []string{"Bandwidth (Gbps)", "Baseline (ms)", "Ground Truth P3 (ms)", "Prediction (ms)", "Pred. error"},
			Notes: []string{
				"paper: error at most 16.2%; Daydream overestimates P3's speedup at high bandwidth, where server-side (non-network) overheads dominate",
			},
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f", r.Gbps),
				ms(r.Baseline), ms(r.GroundTruth), ms(r.Predicted), pct(r.Err),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}
