package exp

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/framework"
	"daydream/internal/whatif"
)

// Table2Models renders Table 2: the models and datasets of the evaluation.
func Table2Models() ([]*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "The models and datasets used in this reproduction",
		Header: []string{"Application", "Model", "Dataset", "Layers", "Param tensors", "Params (M)", "Batch", "Optimizer"},
	}
	apps := []struct{ app, zoo string }{
		{"Image Classification", "vgg19"},
		{"Image Classification", "densenet121"},
		{"Image Classification", "resnet50"},
		{"Machine Translation", "gnmt"},
		{"Language Modeling", "bert-base"},
		{"Language Modeling", "bert-large"},
	}
	for _, a := range apps {
		m := model(a.zoo)
		t.Rows = append(t.Rows, []string{
			a.app, m.Name, m.Dataset,
			fmt.Sprintf("%d", len(m.Layers)),
			fmt.Sprintf("%d", m.ParamTensorCount()),
			fmt.Sprintf("%.1f", float64(m.ParamCount())/1e6),
			fmt.Sprintf("%d", m.BatchSize),
			m.Optimizer.String(),
		})
	}
	return []*Table{t}, nil
}

// CoverageRow is one Table-1 optimization model exercised end to end.
type CoverageRow struct {
	// Optimization and Model identify the what-if.
	Optimization, Model string
	// Baseline and Predicted are simulated iteration times before and
	// after the transformation.
	Baseline, Predicted time.Duration
	// Delta is the predicted improvement (negative for overheads, as
	// expected for the memory-footprint techniques).
	Delta float64
}

// RunTable1Coverage exercises all ten optimization models of §5 on
// appropriate workloads, demonstrating that every bold/italic technique of
// the paper's Table 1 is representable with the graph-transformation
// primitives.
func RunTable1Coverage() ([]CoverageRow, error) {
	resnet := model("resnet50")
	_, rg, err := Profile(framework.Config{Model: resnet})
	if err != nil {
		return nil, err
	}
	rBase, err := rg.Clone().PredictIteration()
	if err != nil {
		return nil, err
	}
	gnmt := model("gnmt")
	_, gg, err := Profile(framework.Config{Model: gnmt})
	if err != nil {
		return nil, err
	}
	gBase, err := gg.Clone().PredictIteration()
	if err != nil {
		return nil, err
	}
	topo := fig8Topology(4, 1, 10)

	var rows []CoverageRow
	add := func(opt, mname string, base time.Duration, predict func() (time.Duration, error)) error {
		p, err := predict()
		if err != nil {
			return fmt.Errorf("exp: table1 %s: %w", opt, err)
		}
		rows = append(rows, CoverageRow{
			Optimization: opt, Model: mname,
			Baseline: base, Predicted: p,
			Delta: improvement(base, p),
		})
		return nil
	}

	if err := add("AMP (Alg 3)", resnet.Name, rBase, func() (time.Duration, error) {
		c := rg.Clone()
		whatif.AMP(c)
		return c.PredictIteration()
	}); err != nil {
		return nil, err
	}
	if err := add("FusedAdam (Alg 4)", gnmt.Name, gBase, func() (time.Duration, error) {
		c := gg.Clone()
		if err := whatif.FusedAdam(c); err != nil {
			return 0, err
		}
		return c.PredictIteration()
	}); err != nil {
		return nil, err
	}
	if err := add("Recon. batchnorm (Alg 5)", resnet.Name, rBase, func() (time.Duration, error) {
		c := rg.Clone()
		if err := whatif.ReconBatchnorm(c, whatif.ReconBatchnormOptions{}); err != nil {
			return 0, err
		}
		return c.PredictIteration()
	}); err != nil {
		return nil, err
	}
	if err := add("Distributed (Alg 6)", resnet.Name, rBase, func() (time.Duration, error) {
		c := rg.Clone()
		if err := whatif.Distributed(c, whatif.DistributedOptions{Topology: topo}); err != nil {
			return 0, err
		}
		return c.PredictIteration()
	}); err != nil {
		return nil, err
	}
	// P3 needs an MXNet-style profile; its baseline is the plain FIFO
	// parameter server at a bandwidth where transfer order matters.
	if err := func() error {
		_, mg, err := Profile(framework.Config{Model: resnet, Dialect: framework.MXNet})
		if err != nil {
			return err
		}
		psTopo := fig8Topology(4, 1, 2)
		predictPS := func(slice int64) (time.Duration, error) {
			res, err := whatif.P3(mg.Clone(), whatif.P3Options{Topology: psTopo, SliceBytes: slice})
			if err != nil {
				return 0, err
			}
			sim, err := res.Graph.Simulate()
			if err != nil {
				return 0, err
			}
			return res.IterationTime(sim), nil
		}
		fifo, err := predictPS(0)
		if err != nil {
			return err
		}
		return add("P3 (Alg 7, vs FIFO PS)", resnet.Name, fifo, func() (time.Duration, error) {
			return predictPS(800 << 10)
		})
	}(); err != nil {
		return nil, err
	}
	if err := add("BlueConnect (Alg 8)", resnet.Name, rBase, func() (time.Duration, error) {
		c := rg.Clone()
		if err := whatif.Distributed(c, whatif.DistributedOptions{Topology: topo}); err != nil {
			return 0, err
		}
		if err := whatif.BlueConnect(c, whatif.BlueConnectOptions{
			Factors:     []int{2, 2},
			Bandwidths:  []float64{comm.Gbps(10), 11e9},
			StepLatency: 15 * time.Microsecond,
		}); err != nil {
			return 0, err
		}
		return c.PredictIteration()
	}); err != nil {
		return nil, err
	}
	if err := add("MetaFlow (Alg 9)", resnet.Name, rBase, func() (time.Duration, error) {
		c := rg.Clone()
		subs := []whatif.Substitution{{
			Remove: []string{"layer1.0.relu1", "layer1.0.relu2"},
			Scale:  map[string]float64{"layer1.0.conv2": 1.15},
		}}
		if err := whatif.MetaFlow(c, subs); err != nil {
			return 0, err
		}
		return c.PredictIteration()
	}); err != nil {
		return nil, err
	}
	if err := add("vDNN (Alg 10)", resnet.Name, rBase, func() (time.Duration, error) {
		c := rg.Clone()
		if err := whatif.VDNN(c, whatif.VDNNOptions{}); err != nil {
			return 0, err
		}
		return c.PredictIteration()
	}); err != nil {
		return nil, err
	}
	if err := add("Gist (Alg 11)", resnet.Name, rBase, func() (time.Duration, error) {
		c := rg.Clone()
		if err := whatif.Gist(c, whatif.GistOptions{}); err != nil {
			return 0, err
		}
		return c.PredictIteration()
	}); err != nil {
		return nil, err
	}
	if err := add("DGC (Alg 12)", resnet.Name, rBase, func() (time.Duration, error) {
		c := rg.Clone()
		if err := whatif.Distributed(c, whatif.DistributedOptions{Topology: topo}); err != nil {
			return 0, err
		}
		if err := whatif.DGC(c, whatif.DGCOptions{}); err != nil {
			return 0, err
		}
		return c.PredictIteration()
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// Table1Coverage renders the coverage table.
func Table1Coverage() ([]*Table, error) {
	rows, err := RunTable1Coverage()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table1",
		Title:  "All ten §5 optimization models expressed with the graph-transformation primitives",
		Header: []string{"Optimization", "Model", "Baseline (ms)", "Predicted (ms)", "Predicted delta"},
		Notes: []string{
			"positive delta = predicted speedup; negative = predicted overhead (expected for the memory-footprint techniques vDNN and Gist)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Optimization, r.Model, ms(r.Baseline), ms(r.Predicted), pct(r.Delta),
		})
	}
	return []*Table{t}, nil
}
