package exp

import (
	"testing"

	"daydream/internal/xpu"
)

// TestFig6Invariants checks the paper's three Figure-6 observations on
// the generated breakdown rows.
func TestFig6Invariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep skipped in -short mode")
	}
	rows, err := RunFig6Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]BreakdownRow{}
	for _, r := range rows {
		byKey[r.Model+"/"+r.Precision] = r
	}
	for _, m := range []string{"ResNet-50", "GNMT", "BERT_BASE", "BERT_LARGE"} {
		fp32, ok32 := byKey[m+"/fp32"]
		fp16, ok16 := byKey[m+"/fp16"]
		if !ok32 || !ok16 {
			t.Fatalf("%s: missing precision rows", m)
		}
		// (i) total shrinks under AMP.
		if fp16.Breakdown.Total() >= fp32.Breakdown.Total() {
			t.Errorf("%s: AMP did not shrink the iteration", m)
		}
		// (ii) CPU runtime barely changes: CPU-involved time within 5%.
		cpu32 := fp32.Breakdown.CPUOnly + fp32.Breakdown.Parallel
		cpu16 := fp16.Breakdown.CPUOnly + fp16.Breakdown.Parallel
		rel := float64(cpu16-cpu32) / float64(cpu32)
		if rel < -0.08 || rel > 0.08 {
			t.Errorf("%s: CPU time changed %.1f%% under AMP; paper says it barely changes", m, 100*rel)
		}
	}
	// (iii) CPU becomes the bottleneck for BERT: CPU-only grows.
	for _, m := range []string{"BERT_BASE", "BERT_LARGE"} {
		if byKey[m+"/fp16"].Breakdown.CPUOnly <= byKey[m+"/fp32"].Breakdown.CPUOnly {
			t.Errorf("%s: CPU-only did not grow under AMP", m)
		}
	}
}

// TestFig8RowCount checks the configuration sweep shape: 1×1 once plus
// 6 configurations × 3 bandwidths.
func TestFig8RowCount(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 sweep skipped in -short mode")
	}
	rows, err := RunFig8Model("ResNet-50", "resnet50")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("fig8 rows = %d, want 19", len(rows))
	}
	// Ground truth grows with the worker count at fixed bandwidth
	// (ring cost is increasing in n).
	first := rows[1] // 2x1 @ 10Gbps
	last := rows[6]  // 4x2 @ 10Gbps
	if last.GroundTruth <= first.GroundTruth {
		t.Error("more workers at 10Gbps should cost more")
	}
}

// TestFig10BaselineMonotone checks the plain-PS baseline improves (weakly)
// with bandwidth, and P3's ground truth never loses to the baseline.
func TestFig10BaselineMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 sweep skipped in -short mode")
	}
	rows, err := RunFig10Model("VGG-19", fig10Models[1].build(), []float64{5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Baseline > rows[i-1].Baseline {
			t.Errorf("baseline got slower with more bandwidth: %v → %v",
				rows[i-1].Baseline, rows[i].Baseline)
		}
	}
	for _, r := range rows {
		if float64(r.GroundTruth) > 1.02*float64(r.Baseline) {
			t.Errorf("%vGbps: P3 (%v) lost to FIFO (%v)", r.Gbps, r.GroundTruth, r.Baseline)
		}
	}
}

// TestUpgradeRows checks the device-upgrade validation's structure and
// directionality: V100 faster than 2080 Ti, P4000 slower.
func TestUpgradeRows(t *testing.T) {
	if testing.Short() {
		t.Skip("upgrade sweep skipped in -short mode")
	}
	rows, err := RunUpgrade()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("upgrade rows = %d, want 6", len(rows))
	}
	v100 := xpu.V100().Name
	for _, r := range rows {
		if r.Err > 0.15 {
			t.Errorf("%s→%s: error %.1f%% out of band", r.Model, r.Target, 100*r.Err)
		}
		if r.Target == v100 && r.Predicted >= r.Source {
			t.Errorf("%s: V100 predicted no faster than 2080 Ti", r.Model)
		}
		if r.Target != v100 && r.Predicted <= r.Source {
			t.Errorf("%s: P4000 predicted no slower than 2080 Ti", r.Model)
		}
	}
}

// TestAblationStructure checks the ablation rows: the full model replays
// near-perfectly and every ablation is strictly worse for the model it
// targets.
func TestAblationStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep skipped in -short mode")
	}
	rows, err := RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		byKey[r.Model+"/"+r.Variant] = r
	}
	for _, m := range []string{"ResNet-50", "BERT-Large"} {
		full := byKey[m+"/full model"]
		if full.Err < -0.005 || full.Err > 0.005 {
			t.Errorf("%s: full model replay error %.2f%%", m, 100*full.Err)
		}
	}
	if r := byKey["BERT-Large/no CPU gaps"]; r.Err > -0.05 {
		t.Errorf("dropping gaps on BERT should underestimate heavily, got %.1f%%", 100*r.Err)
	}
	if r := byKey["ResNet-50/no sync decomposition"]; r.Err < 0.10 {
		t.Errorf("keeping full sync durations should overestimate heavily, got %.1f%%", 100*r.Err)
	}
	if r := byKey["BERT-Large/GPU-only model"]; r.Err > -0.05 {
		t.Errorf("GPU-only modeling should underestimate BERT, got %.1f%%", 100*r.Err)
	}
}

// TestTable1AllTenRun checks every §5 optimization model executes and the
// memory-footprint techniques predict overheads, not gains.
func TestTable1AllTenRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 sweep skipped in -short mode")
	}
	rows, err := RunTable1Coverage()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("table1 rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		switch r.Optimization {
		case "vDNN (Alg 10)", "Gist (Alg 11)":
			if r.Delta >= 0 {
				t.Errorf("%s should predict an overhead", r.Optimization)
			}
		case "AMP (Alg 3)", "Recon. batchnorm (Alg 5)":
			if r.Delta <= 0 {
				t.Errorf("%s should predict a speedup", r.Optimization)
			}
		}
	}
}
