package exp

import (
	"time"

	"daydream/internal/core"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/trace"
)

// AblationRow reports replay fidelity with one modeling ingredient
// removed.
type AblationRow struct {
	// Model names the workload.
	Model string
	// Variant names the ablation.
	Variant string
	// Traced is the measured iteration time.
	Traced time.Duration
	// Simulated is the replayed iteration time under the ablation.
	Simulated time.Duration
	// Err is the signed relative error (negative = underestimate).
	Err float64
}

// ablationVariants knock out one design ingredient the paper argues
// for. Each ablation is a custom core.Optimization value — built with
// the same TimingOpt/StructuralOpt constructors user code extends the
// system with — so the sweep dispatches it like any registry
// optimization: duration-only ablations ride the clone-free overlay
// path, only the structural one (dropping CPU tasks) pays for a clone,
// and the full model (a nil Opt) replays the shared baseline directly.
var ablationVariants = []struct {
	name string
	note string
	opt  core.Optimization // nil: replay the full model
}{
	{
		name: "full model",
		note: "all five dependency types, gaps, sync residuals",
	},
	{
		// §4.2.1 "Gap": non-CUDA CPU time is invisible to CUPTI but
		// "indispensable to simulation accuracy".
		name: "no CPU gaps",
		note: "drop the un-instrumented framework time between CUDA calls",
		opt: core.TimingOpt("no-cpu-gaps", func(o *core.Overlay) error {
			for _, t := range o.Base().Tasks() {
				o.SetGap(t, 0)
			}
			return nil
		}, nil),
	},
	{
		// Build decomposes a blocking call's traced duration into
		// dependency edges + a residual; keeping the full traced
		// duration double-counts the waiting.
		name: "no sync decomposition",
		note: "keep blocking calls' full traced durations (waiting counted twice)",
		opt: core.TimingOpt("no-sync-decomposition", func(o *core.Overlay) error {
			for _, t := range o.Base().Tasks() {
				if t.Kind == trace.KindSync ||
					(t.Kind == trace.KindMemcpyAPI && t.Dir == trace.MemcpyD2H) {
					o.SetDuration(t, t.TracedDuration)
				}
			}
			return nil
		}, nil),
	},
	{
		// §2.3/§3: framework built-in profilers "omit important
		// details (for example, the CPU runtime)"; a GPU-only model
		// is what you get without the kernel-level CPU abstraction.
		name: "GPU-only model",
		note: "drop all CPU tasks (what layer-level profilers see)",
		opt: core.StructuralOpt("gpu-only", func(g *core.Graph) error {
			for _, t := range g.Tasks() {
				if t.OnCPU() {
					g.Remove(t)
				}
			}
			return nil
		}),
	},
}

// ablationModels are the two models with the most contrasting CPU/GPU
// balance.
var ablationModels = []string{"resnet50", "bert-large"}

// RunAblation measures replay error for each modeling ablation. The two
// profiling runs fan out over a bounded pool; the models × variants
// grid then runs through one sweep, each scenario carrying its model's
// profile as Base.
func RunAblation() ([]AblationRow, error) {
	nv := len(ablationVariants)
	scenarios := make([]sweep.Scenario, len(ablationModels)*nv)
	rows := make([]AblationRow, len(ablationModels)*nv)
	err := runParallel(len(ablationModels), func(mi int) error {
		m := model(ablationModels[mi])
		res, g, err := Profile(framework.Config{Model: m})
		if err != nil {
			return err
		}
		for vi, v := range ablationVariants {
			i := mi*nv + vi
			rows[i] = AblationRow{
				Model:   m.Name,
				Variant: v.name,
				Traced:  res.IterationTime,
			}
			scenarios[i] = sweep.Scenario{
				Name: m.Name + "/" + v.name,
				Base: g,
				Opt:  v.opt,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sims, err := sweep.Run(nil, scenarios)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Simulated = sims[i].Value
		rows[i].Err = float64(sims[i].Value-rows[i].Traced) / float64(rows[i].Traced)
	}
	return rows, nil
}

// Ablation renders the ablation study.
func Ablation() ([]*Table, error) {
	rows, err := RunAblation()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation",
		Title:  "Replay fidelity with modeling ingredients removed (why the kernel-level CPU+GPU abstraction matters, §3)",
		Header: []string{"Model", "Variant", "Traced (ms)", "Simulated (ms)", "Error"},
	}
	for _, r := range rows {
		sign := ""
		if r.Err > 0 {
			sign = "+"
		}
		t.Rows = append(t.Rows, []string{
			r.Model, r.Variant, ms(r.Traced), ms(r.Simulated),
			sign + pct(r.Err),
		})
	}
	t.Notes = append(t.Notes,
		"the full model replays within a fraction of a percent; each ablation corresponds to a simpler profiler design the paper argues against",
	)
	return []*Table{t}, nil
}
