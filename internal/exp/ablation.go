package exp

import (
	"time"

	"daydream/internal/core"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/trace"
)

// AblationRow reports replay fidelity with one modeling ingredient
// removed.
type AblationRow struct {
	// Model names the workload.
	Model string
	// Variant names the ablation.
	Variant string
	// Traced is the measured iteration time.
	Traced time.Duration
	// Simulated is the replayed iteration time under the ablation.
	Simulated time.Duration
	// Err is the signed relative error (negative = underestimate).
	Err float64
}

// ablationVariants mutate a freshly built graph to knock out one design
// ingredient the paper argues for.
var ablationVariants = []struct {
	name  string
	note  string
	apply func(*core.Graph)
}{
	{
		name:  "full model",
		note:  "all five dependency types, gaps, sync residuals",
		apply: func(*core.Graph) {},
	},
	{
		// §4.2.1 "Gap": non-CUDA CPU time is invisible to CUPTI but
		// "indispensable to simulation accuracy".
		name: "no CPU gaps",
		note: "drop the un-instrumented framework time between CUDA calls",
		apply: func(g *core.Graph) {
			for _, t := range g.Tasks() {
				t.Gap = 0
			}
		},
	},
	{
		// Build decomposes a blocking call's traced duration into
		// dependency edges + a residual; keeping the full traced
		// duration double-counts the waiting.
		name: "no sync decomposition",
		note: "keep blocking calls' full traced durations (waiting counted twice)",
		apply: func(g *core.Graph) {
			for _, t := range g.Tasks() {
				if t.Kind == trace.KindSync ||
					(t.Kind == trace.KindMemcpyAPI && t.Dir == trace.MemcpyD2H) {
					t.Duration = t.TracedDuration
				}
			}
		},
	},
	{
		// §2.3/§3: framework built-in profilers "omit important
		// details (for example, the CPU runtime)"; a GPU-only model
		// is what you get without the kernel-level CPU abstraction.
		name: "GPU-only model",
		note: "drop all CPU tasks (what layer-level profilers see)",
		apply: func(g *core.Graph) {
			for _, t := range g.Tasks() {
				if t.OnCPU() {
					g.Remove(t)
				}
			}
		},
	},
}

// RunAblation measures replay error for each modeling ablation on the two
// models with the most contrasting CPU/GPU balance. The models × variants
// grid runs through one sweep, each scenario carrying its model's profile
// as Base.
func RunAblation() ([]AblationRow, error) {
	var scenarios []sweep.Scenario
	var rows []AblationRow
	for _, name := range []string{"resnet50", "bert-large"} {
		m := model(name)
		res, g, err := Profile(framework.Config{Model: m})
		if err != nil {
			return nil, err
		}
		for _, v := range ablationVariants {
			rows = append(rows, AblationRow{
				Model:   m.Name,
				Variant: v.name,
				Traced:  res.IterationTime,
			})
			scenarios = append(scenarios, sweep.Scenario{
				Name: m.Name + "/" + v.name,
				Base: g,
				Transform: func(c *core.Graph) (*core.Graph, error) {
					v.apply(c)
					return c, nil
				},
			})
		}
	}
	sims, err := sweep.Run(nil, scenarios)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Simulated = sims[i].Value
		rows[i].Err = float64(sims[i].Value-rows[i].Traced) / float64(rows[i].Traced)
	}
	return rows, nil
}

// Ablation renders the ablation study.
func Ablation() ([]*Table, error) {
	rows, err := RunAblation()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation",
		Title:  "Replay fidelity with modeling ingredients removed (why the kernel-level CPU+GPU abstraction matters, §3)",
		Header: []string{"Model", "Variant", "Traced (ms)", "Simulated (ms)", "Error"},
	}
	for _, r := range rows {
		sign := ""
		if r.Err > 0 {
			sign = "+"
		}
		t.Rows = append(t.Rows, []string{
			r.Model, r.Variant, ms(r.Traced), ms(r.Simulated),
			sign + pct(r.Err),
		})
	}
	t.Notes = append(t.Notes,
		"the full model replays within a fraction of a percent; each ablation corresponds to a simpler profiler design the paper argues against",
	)
	return []*Table{t}, nil
}
