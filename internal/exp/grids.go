package exp

import (
	"fmt"
	"sort"
	"time"

	"daydream/internal/core"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/whatif"
)

// The grid experiments drill into the paper's what-ifs one dimension at
// a time: hundreds of timing-only scenarios over ONE shared profile —
// exactly the shape the sweep's incremental tier accelerates. Each grid
// profiles its model once and lets the pool's worker-owned warm
// schedules re-simulate only the affected cone per scenario; the tables
// report which tier each sweep actually rode so a dispatch regression
// is visible in the experiment output itself.

// AMPLayerRow is one row of the per-layer AMP attribution grid.
type AMPLayerRow struct {
	// Layer is the DNN layer index (forward order).
	Layer int
	// Name labels the layer (from its mapped tasks).
	Name string
	// GPUTasks counts the layer's GPU tasks.
	GPUTasks int
	// Saving is the iteration-time reduction when AMP is applied to
	// this layer alone.
	Saving time.Duration
	// Share is Saving over the full-AMP saving.
	Share float64
}

// RunAMPLayerGrid computes the per-layer AMP attribution grid: Figure
// 5's headline model (BERT_Large) profiled once, then one scenario per
// DNN layer applying Algorithm 3's mixed-precision scaling to that
// layer's GPU tasks only. Per-layer savings need not sum to the full-AMP
// saving — overlapped kernels hide each other — which is exactly what
// the grid makes visible. The whole grid shares one baseline, so the
// sweep evaluates it on the incremental tier (warm schedule, affected
// cone only) after each worker's first warm-up scenario.
func RunAMPLayerGrid() ([]AMPLayerRow, time.Duration, time.Duration, []string, error) {
	_, g, err := Profile(framework.Config{Model: model("bert-large")})
	if err != nil {
		return nil, 0, 0, nil, err
	}
	baseline, err := g.PredictIteration()
	if err != nil {
		return nil, 0, 0, nil, err
	}
	ix := g.LayerPhaseIndex()
	layers := ix.Layers()
	rows := make([]AMPLayerRow, layers)
	scenarios := make([]sweep.Scenario, 0, layers+1)
	for layer := 0; layer < layers; layer++ {
		layer := layer
		row := &rows[layer]
		row.Layer = layer
		for _, u := range ix.GPUTasks() {
			if u.HasLayer && u.LayerIndex == layer {
				row.GPUTasks++
				if row.Name == "" {
					row.Name = u.Layer
				}
			}
		}
		scenarios = append(scenarios, sweep.Scenario{
			Name: fmt.Sprintf("layer-%d", layer),
			ScaleTransform: func(o *core.Overlay) error {
				compute := ix.GPUComputeBound()
				for i, u := range ix.GPUTasks() {
					if !u.HasLayer || u.LayerIndex != layer {
						continue
					}
					if compute[i] {
						o.SetDuration(u, o.Duration(u)/3)
					} else {
						o.SetDuration(u, o.Duration(u)/2)
					}
				}
				return nil
			},
		})
	}
	scenarios = append(scenarios, sweep.Scenario{Name: "full-amp", Opt: whatif.OptAMP()})
	results, err := sweep.Run(g, scenarios)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	tiers := make([]string, len(results))
	for i, r := range results {
		tiers[i] = r.Tier
	}
	fullSaving := baseline - results[layers].Value
	for layer := 0; layer < layers; layer++ {
		rows[layer].Saving = baseline - results[layer].Value
		if fullSaving > 0 {
			rows[layer].Share = float64(rows[layer].Saving) / float64(fullSaving)
		}
	}
	return rows, baseline, fullSaving, tiers, nil
}

// AMPLayerGrid renders the per-layer AMP attribution grid as a table:
// the top layers by saving plus an aggregate for the rest.
func AMPLayerGrid() ([]*Table, error) {
	rows, baseline, fullSaving, tiers, err := RunAMPLayerGrid()
	if err != nil {
		return nil, err
	}
	byS := append([]AMPLayerRow(nil), rows...)
	sort.SliceStable(byS, func(i, j int) bool { return byS[i].Saving > byS[j].Saving })
	const top = 12
	t := &Table{
		ID:     "ampgrid",
		Title:  "Per-layer AMP attribution on BERT_Large (Figure 5 drill-down, one scenario per layer)",
		Header: []string{"Layer", "Name", "GPU tasks", "Saving (ms)", "Share of full AMP"},
		Notes: []string{
			fmt.Sprintf("baseline %s ms; full AMP saves %s ms across %d layers", ms(baseline), ms(fullSaving), len(rows)),
			fmt.Sprintf("sweep tiers: %s", tierCounts(tiers)),
			"per-layer savings need not sum to the full-AMP saving: overlapped kernels hide each other",
		},
	}
	var restSaving time.Duration
	var restTasks, restLayers int
	for i, r := range byS {
		if i < top {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", r.Layer), r.Name, fmt.Sprintf("%d", r.GPUTasks),
				ms(r.Saving), pct(r.Share),
			})
			continue
		}
		restSaving += r.Saving
		restTasks += r.GPUTasks
		restLayers++
	}
	if restLayers > 0 {
		share := 0.0
		if fullSaving > 0 {
			share = float64(restSaving) / float64(fullSaving)
		}
		t.Rows = append(t.Rows, []string{
			"rest", fmt.Sprintf("(%d layers)", restLayers), fmt.Sprintf("%d", restTasks),
			ms(restSaving), pct(share),
		})
	}
	return []*Table{t}, nil
}

// kcurveFactors is the kernel-profile sensitivity grid: matching
// kernels run at factor× their profiled duration, COZ-style, from a 4×
// speed-up to a 1.5× slow-down.
var kcurveFactors = []float64{0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5}

// KCurveRow is one point of the kernel-profile sensitivity curve.
type KCurveRow struct {
	// Factor is the duration multiplier applied to matching kernels.
	Factor float64
	// Predicted is the predicted iteration time.
	Predicted time.Duration
	// Improvement is the relative iteration-time change vs the
	// baseline (positive = faster).
	Improvement float64
}

// RunKernelCurve computes the kernel-profile sensitivity curve (§7.4's
// externally-profiled-durations what-if, swept): ResNet-50 profiled
// once, then one scenario per factor running every cuDNN conv kernel at
// factor× its profiled duration. Like the AMP grid, every point shares
// the baseline, so the sweep rides the incremental tier.
func RunKernelCurve() ([]KCurveRow, time.Duration, []string, error) {
	_, g, err := Profile(framework.Config{Model: model("resnet50")})
	if err != nil {
		return nil, 0, nil, err
	}
	baseline, err := g.PredictIteration()
	if err != nil {
		return nil, 0, nil, err
	}
	scenarios := make([]sweep.Scenario, len(kcurveFactors))
	for i, f := range kcurveFactors {
		scenarios[i] = sweep.Scenario{
			Name: fmt.Sprintf("scudnn@%.2fx", f),
			Opt:  whatif.OptScale("scudnn", f),
		}
	}
	results, err := sweep.Run(g, scenarios)
	if err != nil {
		return nil, 0, nil, err
	}
	rows := make([]KCurveRow, len(results))
	tiers := make([]string, len(results))
	for i, r := range results {
		rows[i] = KCurveRow{
			Factor:      kcurveFactors[i],
			Predicted:   r.Value,
			Improvement: improvement(baseline, r.Value),
		}
		tiers[i] = r.Tier
	}
	return rows, baseline, tiers, nil
}

// KernelCurve renders the kernel-profile sensitivity curve as a table.
func KernelCurve() ([]*Table, error) {
	rows, baseline, tiers, err := RunKernelCurve()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "kcurve",
		Title:  "Kernel-profile sensitivity on ResNet-50 — scudnn conv kernels at factor× profiled duration (§7.4 swept)",
		Header: []string{"Factor", "Prediction (ms)", "Improvement"},
		Notes: []string{
			fmt.Sprintf("baseline %s ms; factor 1.00 must reproduce it exactly", ms(baseline)),
			fmt.Sprintf("sweep tiers: %s", tierCounts(tiers)),
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", r.Factor), ms(r.Predicted), pct(r.Improvement),
		})
	}
	return []*Table{t}, nil
}

// tierCounts summarizes a sweep's dispatch tiers ("incremental×13,
// overlay×1") in first-appearance order.
func tierCounts(tiers []string) string {
	counts := map[string]int{}
	var order []string
	for _, tier := range tiers {
		if counts[tier] == 0 {
			order = append(order, tier)
		}
		counts[tier]++
	}
	s := ""
	for i, tier := range order {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s×%d", tier, counts[tier])
	}
	return s
}
