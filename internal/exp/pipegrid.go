package exp

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/whatif"
)

// The pipeline grid asks PipeDream's planning question as a what-if
// sweep: given one single-GPU profile, which (stages × microbatches)
// partitioning — under which schedule — minimizes the per-iteration
// makespan, and how does each split compare against simply going
// data-parallel over the same number of GPUs? Every scenario is a
// structural patch over the shared profile (stage skeleton + carried
// 1F1B/GPipe scheduler), so the whole grid runs clone-free.

// pipegridModels are the models the grid partitions (the acceptance
// pair: an attention-heavy and a conv-heavy workload).
var pipegridModels = []string{"bert-large", "resnet50"}

// pipegridStages and pipegridMicrobatches span the grid.
var (
	pipegridStages       = []int{2, 4}
	pipegridMicrobatches = []int{2, 4, 8}
	pipegridSchedules    = []string{whatif.Schedule1F1B, whatif.ScheduleGPipe}
)

// PipeGridRow is one (model, stages, microbatches, schedule) point.
type PipeGridRow struct {
	Model        string
	Stages       int
	Microbatches int
	Schedule     string
	// Predicted is the pipeline-parallel iteration makespan.
	Predicted time.Duration
	// DataParallel is the data-parallel prediction over the same GPU
	// count (single machine, NVLink-class intra links).
	DataParallel time.Duration
	// Delta is the fractional improvement of the pipeline split over
	// the data-parallel baseline (positive = pipeline faster).
	Delta float64
}

// pipegridTopology is the data-parallel reference cluster for a stage
// count: one machine, stages GPUs, PCIe-class intra links.
func pipegridTopology(gpus int) comm.Topology {
	return comm.Topology{
		Machines:       1,
		GPUsPerMachine: gpus,
		NICBandwidth:   comm.Gbps(10),
		IntraBandwidth: 11e9,
		StepLatency:    15 * time.Microsecond,
	}
}

// RunPipeGrid computes the pipeline partitioning grid for one model:
// every (stages, microbatches, schedule) split plus one data-parallel
// reference per stage count, all swept over the shared profile.
func RunPipeGrid(modelName string) ([]PipeGridRow, time.Duration, []string, error) {
	_, g, err := Profile(framework.Config{Model: model(modelName)})
	if err != nil {
		return nil, 0, nil, err
	}
	baseline, err := g.PredictIteration()
	if err != nil {
		return nil, 0, nil, err
	}
	var scenarios []sweep.Scenario
	for _, s := range pipegridStages {
		scenarios = append(scenarios, sweep.Scenario{
			Name: fmt.Sprintf("dp-%dgpu", s),
			Opt:  whatif.OptDistributed(whatif.DistributedOptions{Topology: pipegridTopology(s)}),
		})
		for _, m := range pipegridMicrobatches {
			for _, sched := range pipegridSchedules {
				scenarios = append(scenarios, sweep.Scenario{
					Name: fmt.Sprintf("pipeline:%dx%d:%s", s, m, sched),
					Opt: whatif.OptPipeline(whatif.PipelineOptions{
						Stages: s, Microbatches: m, Schedule: sched,
					}),
				})
			}
		}
	}
	results, err := sweep.Run(g, scenarios)
	if err != nil {
		return nil, 0, nil, err
	}
	tiers := make([]string, len(results))
	dp := make(map[int]time.Duration, len(pipegridStages))
	var rows []PipeGridRow
	i := 0
	for _, s := range pipegridStages {
		r := results[i]
		tiers[i] = r.Tier
		i++
		if r.Err != nil {
			return nil, 0, nil, fmt.Errorf("exp: pipegrid %s: %w", r.Name, r.Err)
		}
		dp[s] = r.Value
		for _, m := range pipegridMicrobatches {
			for _, sched := range pipegridSchedules {
				r := results[i]
				tiers[i] = r.Tier
				i++
				if r.Err != nil {
					return nil, 0, nil, fmt.Errorf("exp: pipegrid %s: %w", r.Name, r.Err)
				}
				rows = append(rows, PipeGridRow{
					Model:        modelName,
					Stages:       s,
					Microbatches: m,
					Schedule:     sched,
					Predicted:    r.Value,
					DataParallel: dp[s],
					Delta:        improvement(dp[s], r.Value),
				})
			}
		}
	}
	return rows, baseline, tiers, nil
}

// PipeGrid renders the pipeline partitioning grid: one table per model,
// each row's makespan against the data-parallel baseline over the same
// GPU count, and the best split called out in the notes.
func PipeGrid() ([]*Table, error) {
	var tables []*Table
	for _, name := range pipegridModels {
		rows, baseline, tiers, err := RunPipeGrid(name)
		if err != nil {
			return nil, err
		}
		best := rows[0]
		for _, r := range rows[1:] {
			if r.Predicted < best.Predicted {
				best = r
			}
		}
		t := &Table{
			ID:    "pipegrid",
			Title: fmt.Sprintf("Pipeline partitioning grid on %s — stages × microbatches × schedule vs data-parallel (PipeDream's planning question as a sweep)", name),
			Header: []string{
				"Stages", "Microbatches", "Schedule",
				"Pipeline (ms)", "Data-parallel (ms)", "Delta vs DP",
			},
			Notes: []string{
				fmt.Sprintf("single-GPU baseline %s ms", ms(baseline)),
				fmt.Sprintf("best split: %dx%d under %s at %s ms (%s vs %d-GPU data-parallel)",
					best.Stages, best.Microbatches, best.Schedule, ms(best.Predicted),
					pct(best.Delta), best.Stages),
				fmt.Sprintf("sweep tiers: %s", tierCounts(tiers)),
			},
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", r.Stages),
				fmt.Sprintf("%d", r.Microbatches),
				r.Schedule,
				ms(r.Predicted),
				ms(r.DataParallel),
				pct(r.Delta),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}
