package exp

import (
	"fmt"
	"time"

	"daydream/internal/framework"
)

// NCCLRow is one reduction call of Figure 9.
type NCCLRow struct {
	// Bucket is the gradient bucket index (launch order).
	Bucket int
	// Bytes is the bucket payload.
	Bytes int64
	// Baseline is the call's duration in regular training (interfering
	// with backward compute).
	Baseline time.Duration
	// Sync is the call's duration with a CUDA synchronization inserted
	// before each reduction.
	Sync time.Duration
	// Optimal is the duration when executing exclusively.
	Optimal time.Duration
	// Theoretical is the NCCL-tests formula value.
	Theoretical time.Duration
}

// Fig9Summary aggregates the per-call comparison.
type Fig9Summary struct {
	// BaselineOverTheoretical is the mean baseline/theoretical ratio −1
	// (the paper measures +34% on average).
	BaselineOverTheoretical float64
	// SyncImprovement is the mean (baseline−sync)/baseline (the paper
	// measures 22.8%).
	SyncImprovement float64
	// IterBaseline and IterSync compare whole-iteration times of the
	// two modes (§6.5: the sync mitigation "could bring an improvement
	// of up to 22%" and never degrades).
	IterBaseline, IterSync time.Duration
}

// RunFig9NCCL reproduces Figure 9: every all-reduce of one GNMT iteration
// on a 4-machine × 2-GPU cluster at 10 Gbps, in the four variants.
func RunFig9NCCL() ([]NCCLRow, Fig9Summary, error) {
	m := model("gnmt")
	topo := fig8Topology(4, 2, 10)
	baseline, err := framework.Run(framework.Config{
		Model: m,
		Cluster: &framework.Cluster{
			Topology: topo,
			Backend:  framework.BackendNCCL,
		},
	})
	if err != nil {
		return nil, Fig9Summary{}, err
	}
	synced, err := framework.Run(framework.Config{
		Model: m,
		Cluster: &framework.Cluster{
			Topology:       topo,
			Backend:        framework.BackendNCCL,
			SyncBeforeComm: true,
		},
	})
	if err != nil {
		return nil, Fig9Summary{}, err
	}
	if len(baseline.Comm) != len(synced.Comm) {
		return nil, Fig9Summary{}, fmt.Errorf("exp: fig9: run disagreement: %d vs %d reductions",
			len(baseline.Comm), len(synced.Comm))
	}
	var rows []NCCLRow
	var ratioSum, improveSum float64
	for i, c := range baseline.Comm {
		s := synced.Comm[i]
		rows = append(rows, NCCLRow{
			Bucket:      c.Bucket,
			Bytes:       c.Bytes,
			Baseline:    c.Actual,
			Sync:        s.Actual,
			Optimal:     c.Exclusive,
			Theoretical: c.Theoretical,
		})
		ratioSum += float64(c.Actual)/float64(c.Theoretical) - 1
		improveSum += 1 - float64(s.Actual)/float64(c.Actual)
	}
	n := float64(len(rows))
	sum := Fig9Summary{
		BaselineOverTheoretical: ratioSum / n,
		SyncImprovement:         improveSum / n,
		IterBaseline:            baseline.IterationTime,
		IterSync:                synced.IterationTime,
	}
	return rows, sum, nil
}

// Fig9NCCL renders Figure 9 as a table.
func Fig9NCCL() ([]*Table, error) {
	rows, sum, err := RunFig9NCCL()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9",
		Title:  "All individual reduction runtimes in one GNMT iteration (4x2, 10Gbps)",
		Header: []string{"Bucket", "MB", "Baseline (ms)", "Sync (ms)", "Optimal (ms)", "Theoretical (ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Bucket),
			fmt.Sprintf("%.1f", float64(r.Bytes)/(1<<20)),
			ms(r.Baseline), ms(r.Sync), ms(r.Optimal), ms(r.Theoretical),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured: baseline %.1f%% above theoretical (paper: 34%%); sync improves primitives by %.1f%% (paper: 22.8%%)",
			100*sum.BaselineOverTheoretical, 100*sum.SyncImprovement),
		fmt.Sprintf("iteration time: baseline %sms vs sync %sms (%.1f%% improvement; paper: up to 22%%, never a degradation)",
			ms(sum.IterBaseline), ms(sum.IterSync),
			100*improvement(sum.IterBaseline, sum.IterSync)),
	)
	return []*Table{t}, nil
}
