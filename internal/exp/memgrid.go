package exp

// The memory grid is the memory-timeline extension's evaluation table:
// a Figure-10-style grid that, instead of sweeping bandwidth against
// iteration time, sweeps memory-footprint what-ifs (vDNN offload at
// several prefetch distances, Gist's lossy compression, and their
// stack) against BOTH predicted axes — simulated peak memory and
// simulated makespan — on bert-large, the zoo's most memory-hungry
// workload. Every row comes from one simulation via mem.ProfileOpt:
// the latency half from the inserted copies/kernels and the carried
// scheduler, the memory half from the optimizations' tensor rewrites.

import (
	"fmt"
	"time"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/mem"
	"daydream/internal/trace"
	"daydream/internal/whatif"
)

// MemRow is one memory-what-if point of the grid.
type MemRow struct {
	// Opt labels the optimization configuration.
	Opt string
	// Makespan is the predicted iteration time under it.
	Makespan time.Duration
	// Peak is the predicted peak device memory under it.
	Peak int64
	// MemSaving is 1 − Peak/baselinePeak; TimeCost is
	// Makespan/baselineMakespan − 1.
	MemSaving, TimeCost float64
}

// offloadAll widens vDNN's conv-only default to every layer with
// activation metadata: bert-large has no convolutions, so the
// vDNN_all policy is the one that bites.
func offloadAll(gr trace.GradientInfo) bool { return gr.ActBytes > 0 }

// memGridOpts enumerates the grid's what-ifs in presentation order.
func memGridOpts() []struct {
	label string
	opt   core.Optimization
} {
	vdnnAt := func(dist int) core.Optimization {
		return whatif.OptVDNN(whatif.VDNNOptions{OffloadLayer: offloadAll, PrefetchDistance: dist})
	}
	gist := whatif.OptGist(whatif.GistOptions{Lossy: true})
	return []struct {
		label string
		opt   core.Optimization
	}{
		{"baseline", nil},
		{"gist (lossy)", gist},
		{"vdnn_all d=1", vdnnAt(1)},
		{"vdnn_all d=3", vdnnAt(3)},
		{"vdnn_all d=6", vdnnAt(6)},
		{"gist+vdnn_all", core.Stack(gist, vdnnAt(3))},
	}
}

// RunMemGrid computes the grid over one shared bert-large profile.
func RunMemGrid() ([]MemRow, error) {
	_, g, err := Profile(framework.Config{Model: dnn.BERTLarge(2, 384)})
	if err != nil {
		return nil, err
	}
	opts := memGridOpts()
	rows := make([]MemRow, len(opts))
	for i, o := range opts {
		makespan, prof, err := mem.ProfileOpt(g, o.opt)
		if err != nil {
			return nil, fmt.Errorf("exp: memgrid %s: %w", o.label, err)
		}
		rows[i] = MemRow{Opt: o.label, Makespan: makespan, Peak: prof.MaxPeak()}
	}
	base := rows[0]
	for i := range rows {
		rows[i].MemSaving = 1 - float64(rows[i].Peak)/float64(base.Peak)
		rows[i].TimeCost = float64(rows[i].Makespan)/float64(base.Makespan) - 1
	}
	return rows, nil
}

// MemGrid renders the memory-vs-makespan trade-off table.
func MemGrid() ([]*Table, error) {
	rows, err := RunMemGrid()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "memgrid",
		Title:  "Memory-footprint what-ifs: predicted peak memory vs predicted makespan — BERT-large (2080 Ti, PyTorch)",
		Header: []string{"Optimization", "Makespan (ms)", "Peak (GB)", "Mem saving", "Time cost"},
		Notes: []string{
			"peak from the memory-timeline post-pass (params+grads resident, activations alloc at producer start / free after last consumer)",
			"vdnn_all offloads every activation over PCIe; larger prefetch distances hide more copy latency but hold re-fetched tensors longer",
			"the stacked row composes both tensor rewrites in application order; each treats the other's split tensors as ordinary ones, so its peak is an approximation, not a lower bound of either part",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Opt,
			ms(r.Makespan),
			fmt.Sprintf("%.2f", float64(r.Peak)/(1<<30)),
			pct(r.MemSaving),
			pct(r.TimeCost),
		})
	}
	return []*Table{t}, nil
}
