package exp

import (
	"time"

	"daydream/internal/core"
	"daydream/internal/framework"
	"daydream/internal/whatif"
)

// ReconResult is the §6.4 experiment outcome.
type ReconResult struct {
	// Baseline is the stock Caffe DenseNet-121 iteration time.
	Baseline time.Duration
	// GroundTruth is the iteration time with the reconstructed-batchnorm
	// implementation (including its new copies and allocations).
	GroundTruth time.Duration
	// Predicted is Daydream's idealized prediction (Algorithm 5).
	Predicted time.Duration
	// PredictedSpeedup and GroundTruthSpeedup are improvements over the
	// baseline.
	PredictedSpeedup, GroundTruthSpeedup float64
}

// RunBatchnormRecon reproduces §6.4: reconstructing batch normalization on
// the Caffe implementation of DenseNet-121. Daydream's idealized
// transformation predicts a larger speedup than the ground truth delivers,
// because the real re-implementation introduces new kernels, memory copies
// and allocations the prediction cannot know (paper: 12.7% predicted vs
// ~7% measured, against the original paper's 17.5% claim).
func RunBatchnormRecon() (*ReconResult, error) {
	m := model("densenet121")
	base := framework.Config{Model: m, Dialect: framework.Caffe}
	baseRes, g, err := Profile(base)
	if err != nil {
		return nil, err
	}
	gtCfg := base
	gtCfg.ReconBatchnorm = true
	gt, err := framework.Run(gtCfg)
	if err != nil {
		return nil, err
	}
	pred := g.Clone()
	if err := core.ApplyGraph(whatif.OptReconBatchnorm(whatif.ReconBatchnormOptions{}), pred); err != nil {
		return nil, err
	}
	predicted, err := pred.PredictIteration()
	if err != nil {
		return nil, err
	}
	return &ReconResult{
		Baseline:           baseRes.IterationTime,
		GroundTruth:        gt.IterationTime,
		Predicted:          predicted,
		PredictedSpeedup:   improvement(baseRes.IterationTime, predicted),
		GroundTruthSpeedup: improvement(baseRes.IterationTime, gt.IterationTime),
	}, nil
}

// BatchnormRecon renders §6.4 as a table.
func BatchnormRecon() ([]*Table, error) {
	r, err := RunBatchnormRecon()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "sec6.4",
		Title:  "Reconstructing batchnorm on DenseNet-121 (Caffe)",
		Header: []string{"Variant", "Iteration (ms)", "Improvement"},
		Rows: [][]string{
			{"Baseline", ms(r.Baseline), "-"},
			{"Ground truth (real reimplementation)", ms(r.GroundTruth), pct(r.GroundTruthSpeedup)},
			{"Daydream prediction (Algorithm 5)", ms(r.Predicted), pct(r.PredictedSpeedup)},
		},
		Notes: []string{
			"paper: predicted 12.7% vs measured ~7% (original optimization paper claimed 17.5%); the gap comes from the re-implementation's new kernels, memory copies and allocations",
		},
	}
	return []*Table{t}, nil
}
