package exp

import (
	"time"

	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/trace"
	"daydream/internal/whatif"
	"daydream/internal/xpu"
)

// AMPRow is one bar group of Figure 5.
type AMPRow struct {
	// Model is the paper's model label.
	Model string
	// Baseline is the measured fp32 iteration time.
	Baseline time.Duration
	// GroundTruth is the measured mixed-precision iteration time.
	GroundTruth time.Duration
	// Predicted is Daydream's prediction from the fp32 trace.
	Predicted time.Duration
	// Err is |Predicted − GroundTruth| / GroundTruth.
	Err float64
}

// ampModels lists Figure 5's models with the paper's labels.
var ampModels = []struct{ label, zoo string }{
	{"BERT_Base", "bert-base"},
	{"BERT_Large", "bert-large"},
	{"Seq2Seq", "gnmt"},
	{"ResNet-50", "resnet50"},
}

// RunFig5AMP computes Figure 5: baseline (fp32), ground truth with mixed
// precision, and Daydream's prediction with Algorithm 3. The per-model
// profiling and ground-truth engine runs fan out over a bounded pool;
// the predictions then fan out through one sweep, each scenario carrying
// its model's profile as Base and the registry's AMP Optimization value
// (timing-only, so the sweep rides the clone-free overlay path).
func RunFig5AMP() ([]AMPRow, error) {
	scenarios := make([]sweep.Scenario, len(ampModels))
	rows := make([]AMPRow, len(ampModels))
	err := runParallel(len(ampModels), func(i int) error {
		mm := ampModels[i]
		m := model(mm.zoo)
		baseRes, g, err := Profile(framework.Config{Model: m})
		if err != nil {
			return err
		}
		gt, err := framework.Run(framework.Config{Model: m, Precision: xpu.FP16})
		if err != nil {
			return err
		}
		rows[i] = AMPRow{
			Model:       mm.label,
			Baseline:    baseRes.IterationTime,
			GroundTruth: gt.IterationTime,
		}
		scenarios[i] = sweep.Scenario{
			Name: mm.label,
			Base: g,
			Opt:  whatif.OptAMP(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	preds, err := sweep.Run(nil, scenarios)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Predicted = preds[i].Value
		rows[i].Err = relErr(preds[i].Value, rows[i].GroundTruth)
	}
	return rows, nil
}

// Fig5AMP renders Figure 5 as a table.
func Fig5AMP() ([]*Table, error) {
	rows, err := RunFig5AMP()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5",
		Title:  "AMP — baseline (FP32), ground truth with mixed precision, and Daydream's prediction",
		Header: []string{"Model", "Baseline (ms)", "Ground Truth (ms)", "Prediction (ms)", "GT speedup", "Pred. error"},
		Notes: []string{
			"paper: prediction errors below 13% for all models; BERT_Large improvement 17.2% predicted with <3% error",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model, ms(r.Baseline), ms(r.GroundTruth), ms(r.Predicted),
			pct(improvement(r.Baseline, r.GroundTruth)), pct(r.Err),
		})
	}
	return []*Table{t}, nil
}

// BreakdownRow is one bar of Figure 6.
type BreakdownRow struct {
	// Model and Precision label the bar.
	Model, Precision string
	// Breakdown is the CPU/GPU decomposition.
	Breakdown trace.Breakdown
}

// RunFig6Breakdown computes Figure 6: the CPU-only / GPU-only / CPU+GPU
// runtime decomposition of the fp32 and fp16 runs of Figure 5's models.
// The eight engine runs are independent and fan out over a bounded pool.
func RunFig6Breakdown() ([]BreakdownRow, error) {
	// Figure 6 orders models the other way around.
	models := []struct{ label, zoo string }{
		{"ResNet-50", "resnet50"},
		{"GNMT", "gnmt"},
		{"BERT_BASE", "bert-base"},
		{"BERT_LARGE", "bert-large"},
	}
	precisions := []xpu.Precision{xpu.FP32, xpu.FP16}
	rows := make([]BreakdownRow, len(models)*len(precisions))
	err := runParallel(len(rows), func(i int) error {
		mm := models[i/len(precisions)]
		p := precisions[i%len(precisions)]
		res, err := framework.Run(framework.Config{Model: model(mm.zoo), Precision: p, CollectTrace: true})
		if err != nil {
			return err
		}
		rows[i] = BreakdownRow{
			Model:     mm.label,
			Precision: p.String(),
			Breakdown: trace.ComputeBreakdown(res.Trace),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig6Breakdown renders Figure 6 as a table.
func Fig6Breakdown() ([]*Table, error) {
	rows, err := RunFig6Breakdown()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig6",
		Title:  "Runtime breakdown of baseline (FP32) and mixed precision (FP16)",
		Header: []string{"Model", "Precision", "CPU+GPU (ms)", "CPU-only (ms)", "GPU-only (ms)", "Total (ms)"},
		Notes: []string{
			"paper: CPU runtime barely changes under AMP; improvements come from the GPU-only part, and CPU becomes the bottleneck for BERT",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model, r.Precision,
			ms(r.Breakdown.Parallel), ms(r.Breakdown.CPUOnly), ms(r.Breakdown.GPUOnly),
			ms(r.Breakdown.Total()),
		})
	}
	return []*Table{t}, nil
}
