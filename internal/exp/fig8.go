package exp

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/whatif"
)

// DistRow is one bar of Figure 8: a (model, machines×GPUs, bandwidth)
// configuration.
type DistRow struct {
	// Model is the paper's label.
	Model string
	// Topology is the cluster configuration.
	Topology comm.Topology
	// GbpsLabel is the bandwidth column label ("10Gbps", ...).
	GbpsLabel string
	// GroundTruth is the measured distributed iteration time (with the
	// sync-before-allReduce mitigation, as in the paper's Figure 8).
	GroundTruth time.Duration
	// Predicted is Daydream's prediction from the single-GPU profile.
	Predicted time.Duration
	// Err is |Predicted − GroundTruth| / GroundTruth.
	Err float64
}

// fig8Topology builds the cluster model for a configuration: machines
// share a NIC of the given rate; intra-machine traffic rides PCIe.
func fig8Topology(machines, gpus int, gbps float64) comm.Topology {
	return comm.Topology{
		Machines:       machines,
		GPUsPerMachine: gpus,
		NICBandwidth:   comm.Gbps(gbps),
		IntraBandwidth: 11e9,
		StepLatency:    15 * time.Microsecond,
	}
}

// fig8Configs lists the paper's system configurations in figure order.
var fig8Configs = []struct{ machines, gpus int }{
	{1, 1}, {2, 1}, {3, 1}, {4, 1}, {2, 2}, {3, 2}, {4, 2},
}

// fig8Bandwidths lists the evaluated network rates in Gbps.
var fig8Bandwidths = []float64{10, 20, 40}

// Fig8Grid returns the full configuration grid of one Figure 8
// subfigure, in figure order.
func Fig8Grid() []comm.Topology {
	var grid []comm.Topology
	for _, bw := range fig8Bandwidths {
		for _, cfg := range fig8Configs {
			if cfg.machines == 1 && cfg.gpus == 1 && bw != fig8Bandwidths[0] {
				continue // the single-GPU baseline has no network
			}
			grid = append(grid, fig8Topology(cfg.machines, cfg.gpus, bw))
		}
	}
	return grid
}

// Fig8Scenario wraps one grid point as a sweep scenario over the
// single-GPU baseline graph: the single-GPU point replays the baseline,
// every other point carries Algorithm 6 for its topology as an
// Optimization value (structural, so the sweep clones).
func Fig8Scenario(base *core.Graph, topo comm.Topology) sweep.Scenario {
	sc := sweep.Scenario{
		Name: fmt.Sprintf("%s @%s", topo.String(), gbpsLabel(topo)),
		Base: base,
	}
	if topo.TotalGPUs() > 1 {
		sc.Opt = whatif.OptDistributed(whatif.DistributedOptions{Topology: topo})
	}
	return sc
}

// gbpsLabel renders a topology's NIC rate the way the figure labels it.
func gbpsLabel(topo comm.Topology) string {
	return fmt.Sprintf("%.0fGbps", topo.NICBandwidth/comm.Gbps(1))
}

// RunFig8Model computes one Figure 8 subfigure: distributed predictions
// for one model across all configurations. The ground-truth engine runs
// each configuration sequentially; all 19 predictions fan out through
// one concurrent sweep over the shared single-GPU profile.
func RunFig8Model(label, zoo string) ([]DistRow, error) {
	m := model(zoo)
	// One single-GPU profile answers every configuration (§7.1:
	// "Daydream's profiling can be performed just once").
	_, g, err := Profile(framework.Config{Model: m})
	if err != nil {
		return nil, err
	}
	grid := Fig8Grid()
	scenarios := make([]sweep.Scenario, len(grid))
	for i, topo := range grid {
		scenarios[i] = Fig8Scenario(g, topo)
	}
	preds, err := sweep.Run(g, scenarios)
	if err != nil {
		return nil, err
	}
	// The 19 ground-truth engine runs are independent per configuration
	// and fan out over a bounded pool.
	rows := make([]DistRow, len(grid))
	err = runParallel(len(grid), func(i int) error {
		topo := grid[i]
		gt, err := framework.Run(framework.Config{
			Model: m,
			Cluster: &framework.Cluster{
				Topology:       topo,
				Backend:        framework.BackendNCCL,
				SyncBeforeComm: true,
			},
		})
		if err != nil {
			return err
		}
		rows[i] = DistRow{
			Model:       label,
			Topology:    topo,
			GbpsLabel:   gbpsLabel(topo),
			GroundTruth: gt.IterationTime,
			Predicted:   preds[i].Value,
			Err:         relErr(preds[i].Value, gt.IterationTime),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// fig8Models lists the four subfigures.
var fig8Models = []struct{ sub, label, zoo string }{
	{"fig8a", "ResNet-50", "resnet50"},
	{"fig8b", "GNMT", "gnmt"},
	{"fig8c", "BERT_BASE", "bert-base"},
	{"fig8d", "BERT_LARGE", "bert-large"},
}

// Fig8Distributed renders all four subfigures of Figure 8.
func Fig8Distributed() ([]*Table, error) {
	var tables []*Table
	for _, mm := range fig8Models {
		rows, err := RunFig8Model(mm.label, mm.zoo)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:     mm.sub,
			Title:  fmt.Sprintf("Runtime predictions for %s (ground truth: sync before each allReduce)", mm.label),
			Header: []string{"Config", "Bandwidth", "Ground Truth (ms)", "Prediction (ms)", "Pred. error"},
			Notes: []string{
				"paper: at most ~10% prediction error in most configurations, with a few exceptions at 20/40Gbps",
			},
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{
				r.Topology.String(), r.GbpsLabel,
				ms(r.GroundTruth), ms(r.Predicted), pct(r.Err),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}
