package exp

import (
	"os"
	"testing"
)

// TestRunAllExperiments runs every experiment end to end and prints the
// tables (go test -v): the fastest way to eyeball paper-vs-measured shape.
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			for _, tb := range tables {
				if err := tb.Format(os.Stdout); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
