package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	tr := validTrace()
	tr.Activities = append(tr.Activities, Activity{
		ID: 3, Name: "ncclAllReduce", Kind: KindComm, Channel: "nccl",
		Start: 20, Duration: 30, Bytes: 1 << 20,
	})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		OtherData   map[string]string        `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete, meta int
	tids := map[float64]bool{}
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			complete++
			tids[e["tid"].(float64)] = true
		case "M":
			meta++
		}
	}
	// 3 activities + 1 comm + 1 layer span.
	if complete != 5 {
		t.Errorf("complete events = %d, want 5", complete)
	}
	if meta == 0 {
		t.Error("no thread-name metadata")
	}
	// Kernel and comm land on synthetic tracks.
	if !tids[float64(chromeStreamBase+7)] {
		t.Error("kernel not on a stream track")
	}
	if !tids[float64(chromeChanBase)] {
		t.Error("comm not on a channel track")
	}
	if !tids[float64(chromeSpanBase)] {
		t.Error("layer span track missing")
	}
	if doc.OtherData["model"] != "m" {
		t.Error("metadata lost")
	}
}
