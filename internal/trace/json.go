package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the trace to w as indented JSON. The format is
// stable and self-contained so traces can be collected once and analyzed
// offline, mirroring the paper's collect-once/ask-many workflow (§7.1).
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// ReadJSON parses a trace previously written with WriteJSON and validates
// it.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
