package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the trace to w as indented JSON. The format is
// stable and self-contained so traces can be collected once and analyzed
// offline, mirroring the paper's collect-once/ask-many workflow (§7.1).
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// ReadJSON parses a trace previously written with WriteJSON and validates
// it. Bytes that do not decode into the schema — invalid JSON, or values
// like NaN/Inf/fractional timestamps that cannot land in the integer
// time fields — fail with ErrMalformed; a decodable trace that violates
// the structural invariants fails with the Validate taxonomy
// (ErrNegativeTime, ErrTimeOverflow, ErrDuplicateID, ErrBadCorrelation,
// ErrSpanInverted). Arbitrary input can therefore produce an error but
// never a panic or a half-validated trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("%w: decode: %w", ErrMalformed, err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
