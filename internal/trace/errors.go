package trace

import "errors"

// Error taxonomy for trace ingestion. ReadJSON and Validate wrap every
// rejection of untrusted input in one of these sentinels, so callers
// classify failures with errors.Is instead of string matching —
// the same contract internal/core gives simulation errors.
var (
	// ErrMalformed marks bytes that do not decode as a trace at all:
	// invalid JSON, or JSON whose values do not fit the schema (NaN,
	// Inf and fractional timestamps land here — time fields are integer
	// nanoseconds, so no non-finite value survives decoding).
	ErrMalformed = errors.New("trace: malformed trace")
	// ErrNegativeTime marks an activity with a negative start or
	// duration.
	ErrNegativeTime = errors.New("trace: negative time")
	// ErrTimeOverflow marks an activity whose start+duration overflows
	// the time axis — a "valid" record that would wrap to a negative
	// end time and corrupt every downstream interval computation.
	ErrTimeOverflow = errors.New("trace: time overflow")
	// ErrDuplicateID marks two activities sharing a record ID.
	ErrDuplicateID = errors.New("trace: duplicate activity ID")
	// ErrBadCorrelation marks a correlation ID that does not pair
	// exactly one CPU-side API record with exactly one GPU-side record,
	// or a correlation carried by a record kind that can have none.
	ErrBadCorrelation = errors.New("trace: bad correlation")
	// ErrSpanInverted marks a layer span whose End precedes its Start.
	ErrSpanInverted = errors.New("trace: inverted layer span")
)
