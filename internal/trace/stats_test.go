package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestUnionLengthBasics(t *testing.T) {
	if got := UnionLength(nil); got != 0 {
		t.Errorf("empty union = %v", got)
	}
	disjoint := []Interval{{0, 10}, {20, 30}}
	if got := UnionLength(disjoint); got != 20 {
		t.Errorf("disjoint union = %v, want 20", got)
	}
	overlapping := []Interval{{0, 10}, {5, 15}}
	if got := UnionLength(overlapping); got != 15 {
		t.Errorf("overlapping union = %v, want 15", got)
	}
	nested := []Interval{{0, 100}, {10, 20}, {30, 40}}
	if got := UnionLength(nested); got != 100 {
		t.Errorf("nested union = %v, want 100", got)
	}
	touching := []Interval{{0, 10}, {10, 20}}
	if got := UnionLength(touching); got != 20 {
		t.Errorf("touching union = %v, want 20", got)
	}
}

func TestUnionLengthDoesNotMutateInput(t *testing.T) {
	in := []Interval{{20, 30}, {0, 10}}
	UnionLength(in)
	if in[0].Start != 20 {
		t.Fatal("UnionLength sorted the caller's slice")
	}
}

// TestUnionLengthProperties checks, on random interval sets, that the
// union length never exceeds the summed lengths and never undercuts the
// longest single interval.
func TestUnionLengthProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%20) + 1
		ivs := make([]Interval, k)
		var sum, longest time.Duration
		for i := range ivs {
			start := time.Duration(rng.Intn(1000))
			length := time.Duration(rng.Intn(100))
			ivs[i] = Interval{start, start + length}
			sum += length
			if length > longest {
				longest = length
			}
		}
		u := UnionLength(ivs)
		return u <= sum && u >= longest
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectLength(t *testing.T) {
	a := []Interval{{0, 10}}
	b := []Interval{{5, 15}}
	if got := IntersectLength(a, b); got != 5 {
		t.Errorf("intersect = %v, want 5", got)
	}
	if got := IntersectLength(a, []Interval{{20, 30}}); got != 0 {
		t.Errorf("disjoint intersect = %v, want 0", got)
	}
	if got := IntersectLength(a, a); got != 10 {
		t.Errorf("self intersect = %v, want 10", got)
	}
}

// TestIntersectSymmetry checks |A∩B| == |B∩A| on random inputs.
func TestIntersectSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() []Interval {
			k := rng.Intn(8) + 1
			ivs := make([]Interval, k)
			for i := range ivs {
				s := time.Duration(rng.Intn(500))
				ivs[i] = Interval{s, s + time.Duration(rng.Intn(80))}
			}
			return ivs
		}
		a, b := gen(), gen()
		return IntersectLength(a, b) == IntersectLength(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeBreakdown(t *testing.T) {
	// One kernel [0,100); the CPU waits in a sync covering [40,100);
	// iteration is 120 long.
	tr := &Trace{
		IterationTime: 120,
		Activities: []Activity{
			{ID: 0, Kind: KindKernel, Stream: 7, Start: 0, Duration: 100},
			{ID: 1, Kind: KindSync, Thread: 1, Start: 40, Duration: 60},
		},
	}
	b := ComputeBreakdown(tr)
	if b.GPUOnly != 60 {
		t.Errorf("GPUOnly = %v, want 60", b.GPUOnly)
	}
	if b.CPUOnly != 20 { // 120 total − 100 GPU busy
		t.Errorf("CPUOnly = %v, want 20", b.CPUOnly)
	}
	if b.Parallel != 40 { // 100 busy − 60 waiting
		t.Errorf("Parallel = %v, want 40", b.Parallel)
	}
	if b.Total() != 120 {
		t.Errorf("Total = %v, want 120", b.Total())
	}
}

func TestComputeBreakdownBlockingD2H(t *testing.T) {
	tr := &Trace{
		IterationTime: 100,
		Activities: []Activity{
			{ID: 0, Kind: KindKernel, Stream: 7, Start: 0, Duration: 80},
			{ID: 1, Kind: KindMemcpyAPI, Thread: 1, Start: 10, Duration: 75, Dir: MemcpyD2H},
			{ID: 2, Kind: KindMemcpyAPI, Thread: 1, Start: 90, Duration: 5, Dir: MemcpyH2D},
		},
	}
	b := ComputeBreakdown(tr)
	// Only the D2H call counts as waiting, clamped to GPU-busy time.
	if b.GPUOnly != 75 {
		t.Errorf("GPUOnly = %v, want 75", b.GPUOnly)
	}
}

func TestComputeBreakdownFallsBackToSpan(t *testing.T) {
	tr := &Trace{Activities: []Activity{
		{ID: 0, Kind: KindKernel, Stream: 7, Start: 0, Duration: 50},
		{ID: 1, Kind: KindLaunch, Thread: 1, Start: 50, Duration: 25},
	}}
	b := ComputeBreakdown(tr)
	if b.Total() != 75 {
		t.Errorf("breakdown total without IterationTime = %v, want span 75", b.Total())
	}
}

func TestComputeStats(t *testing.T) {
	tr := validTrace()
	st := ComputeStats(tr)
	if st.Count[KindKernel] != 1 || st.Count[KindLaunch] != 1 || st.Count[KindSync] != 1 {
		t.Errorf("counts = %v", st.Count)
	}
	if st.GPUBusy != 10 {
		t.Errorf("GPUBusy = %v, want 10", st.GPUBusy)
	}
	if st.CPUBusy != 17 { // launch [0,5) + sync [5,17)
		t.Errorf("CPUBusy = %v, want 17", st.CPUBusy)
	}
	if st.Span != 17 {
		t.Errorf("Span = %v, want 17", st.Span)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(&Trace{})
	if st.Span != 0 || st.CPUBusy != 0 || st.GPUBusy != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}
