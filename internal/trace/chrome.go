package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one Trace Event Format record (the chrome://tracing and
// Perfetto JSON schema): a complete ("X") event with microsecond
// timestamps.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeMeta is a metadata record naming a process or thread.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// Track IDs for the Chrome export: CPU threads keep their IDs, GPU
// streams and communication channels get stable synthetic ones.
const (
	chromePID        = 1
	chromeStreamBase = 1000
	chromeChanBase   = 2000
	chromeSpanBase   = 3000
)

// WriteChromeTrace serializes the trace in the Chrome Trace Event Format,
// loadable in chrome://tracing or https://ui.perfetto.dev. CPU threads,
// GPU streams, communication channels and layer spans each get their own
// track, so the CPU/GPU overlap structure the paper's Figure 1 shows in
// NVProf is directly visible.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	var events []interface{}

	meta := func(tid int, name string) {
		events = append(events, chromeMeta{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: tid,
			Args: map[string]string{"name": name},
		})
	}
	meta(0, "process")
	for _, th := range t.CPUThreads() {
		meta(th, fmt.Sprintf("CPU thread %d", th))
	}
	for _, s := range t.Streams() {
		meta(chromeStreamBase+s, fmt.Sprintf("GPU stream %d", s))
	}
	chanIDs := map[string]int{}
	for i := range t.Activities {
		a := &t.Activities[i]
		if a.Kind.OnChannel() {
			if _, ok := chanIDs[a.Channel]; !ok {
				id := chromeChanBase + len(chanIDs)
				chanIDs[a.Channel] = id
				meta(id, "channel "+a.Channel)
			}
		}
	}
	meta(chromeSpanBase, "layer spans")

	us := func(d int64) float64 { return float64(d) / 1e3 } // ns → µs
	for i := range t.Activities {
		a := &t.Activities[i]
		tid := a.Thread
		switch {
		case a.Kind.OnGPU():
			tid = chromeStreamBase + a.Stream
		case a.Kind.OnChannel():
			tid = chanIDs[a.Channel]
		}
		args := map[string]string{"kind": a.Kind.String()}
		if a.Correlation != 0 {
			args["correlation"] = fmt.Sprintf("%d", a.Correlation)
		}
		if a.Bytes != 0 {
			args["bytes"] = fmt.Sprintf("%d", a.Bytes)
		}
		events = append(events, chromeEvent{
			Name: a.Name, Cat: a.Kind.String(), Ph: "X",
			TS: us(int64(a.Start)), Dur: us(int64(a.Duration)),
			PID: chromePID, TID: tid, Args: args,
		})
	}
	for i := range t.LayerSpans {
		s := &t.LayerSpans[i]
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s [%s]", s.Layer, s.Phase), Cat: "layer", Ph: "X",
			TS: us(int64(s.Start)), Dur: us(int64(s.End - s.Start)),
			PID: chromePID, TID: chromeSpanBase,
		})
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(map[string]interface{}{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]string{
			"model": t.Model, "device": t.Device,
			"framework": t.Framework, "precision": t.Precision,
		},
	}); err != nil {
		return fmt.Errorf("trace: chrome export: %w", err)
	}
	return nil
}
