package trace

import (
	"sort"
	"time"
)

// Interval is a half-open time interval [Start, End).
type Interval struct {
	Start, End time.Duration
}

// Len returns the interval length.
func (iv Interval) Len() time.Duration { return iv.End - iv.Start }

// UnionLength returns the total length covered by the union of the given
// intervals. The input is not modified.
func UnionLength(ivs []Interval) time.Duration {
	if len(ivs) == 0 {
		return 0
	}
	s := append([]Interval(nil), ivs...)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	var total time.Duration
	cur := s[0]
	for _, iv := range s[1:] {
		if iv.Start <= cur.End {
			if iv.End > cur.End {
				cur.End = iv.End
			}
			continue
		}
		total += cur.Len()
		cur = iv
	}
	total += cur.Len()
	return total
}

// IntersectLength returns the total length of the intersection of the unions
// of two interval sets, i.e. time covered by both a and b.
func IntersectLength(a, b []Interval) time.Duration {
	// |A ∩ B| = |A| + |B| − |A ∪ B|.
	both := append(append([]Interval(nil), a...), b...)
	return UnionLength(a) + UnionLength(b) - UnionLength(both)
}

// Breakdown is the paper's Figure-6 decomposition of one iteration into
// CPU-only, GPU-only and CPU+GPU-parallel runtime (§6.2 definitions).
type Breakdown struct {
	// CPUOnly is "the runtime when the CPU is busy, but the GPU is not
	// executing any kernels": total time minus GPU-busy time.
	CPUOnly time.Duration
	// GPUOnly is "the runtime when the CPU is waiting for the GPU
	// kernels to complete": the duration of CUDA synchronization APIs
	// plus device-to-host cudaMemcpyAsync calls.
	GPUOnly time.Duration
	// Parallel is the remainder: both CPU and GPU busy.
	Parallel time.Duration
}

// Total returns the sum of the three components.
func (b Breakdown) Total() time.Duration { return b.CPUOnly + b.GPUOnly + b.Parallel }

// ComputeBreakdown decomposes the trace exactly as the paper's §6.2 does:
// CPU-only is computed "by simply subtracting all GPU kernel runtime from
// the total runtime"; GPU-only is the union of synchronization-API and
// blocking device-to-host copy intervals; CPU+GPU parallel is the rest.
func ComputeBreakdown(t *Trace) Breakdown {
	var gpu, wait []Interval
	for i := range t.Activities {
		a := &t.Activities[i]
		iv := Interval{a.Start, a.End()}
		switch {
		case a.Kind.OnGPU():
			gpu = append(gpu, iv)
		case a.Kind == KindSync || (a.Kind == KindMemcpyAPI && a.Dir == MemcpyD2H):
			wait = append(wait, iv)
		}
	}
	total := t.IterationTime
	if total == 0 {
		total = ComputeStats(t).Span
	}
	gpuBusy := UnionLength(gpu)
	gpuOnly := UnionLength(wait)
	if gpuOnly > gpuBusy {
		gpuOnly = gpuBusy
	}
	cpuOnly := total - gpuBusy
	if cpuOnly < 0 {
		cpuOnly = 0
	}
	return Breakdown{
		CPUOnly:  cpuOnly,
		GPUOnly:  gpuOnly,
		Parallel: gpuBusy - gpuOnly,
	}
}

// Stats summarizes a trace.
type Stats struct {
	// Count is the number of activities of each kind.
	Count map[Kind]int
	// Busy is the summed duration of activities of each kind.
	Busy map[Kind]time.Duration
	// GPUBusy is the union-length of GPU stream occupancy.
	GPUBusy time.Duration
	// CPUBusy is the union-length of CPU thread occupancy.
	CPUBusy time.Duration
	// Span is the distance from the earliest start to the latest end.
	Span time.Duration
}

// ComputeStats summarizes the trace.
func ComputeStats(t *Trace) Stats {
	st := Stats{
		Count: make(map[Kind]int),
		Busy:  make(map[Kind]time.Duration),
	}
	var cpu, gpu []Interval
	var lo, hi time.Duration
	first := true
	for i := range t.Activities {
		a := &t.Activities[i]
		st.Count[a.Kind]++
		st.Busy[a.Kind] += a.Duration
		iv := Interval{a.Start, a.End()}
		if a.Kind.OnCPU() {
			cpu = append(cpu, iv)
		}
		if a.Kind.OnGPU() {
			gpu = append(gpu, iv)
		}
		if first || iv.Start < lo {
			lo = iv.Start
		}
		if first || iv.End > hi {
			hi = iv.End
		}
		first = false
	}
	st.CPUBusy = UnionLength(cpu)
	st.GPUBusy = UnionLength(gpu)
	if !first {
		st.Span = hi - lo
	}
	return st
}

// Filter returns the activities for which keep returns true, preserving
// order. The returned slice aliases no storage with the trace.
func (t *Trace) Filter(keep func(*Activity) bool) []Activity {
	var out []Activity
	for i := range t.Activities {
		if keep(&t.Activities[i]) {
			out = append(out, t.Activities[i])
		}
	}
	return out
}
