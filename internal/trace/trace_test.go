package trace

import (
	"strings"
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindCPUOp:     "cpu_op",
		KindLaunch:    "cuda_launch",
		KindMemcpyAPI: "memcpy_api",
		KindSync:      "cuda_sync",
		KindMalloc:    "cuda_malloc",
		KindKernel:    "kernel",
		KindMemcpy:    "memcpy",
		KindDataLoad:  "data_load",
		KindComm:      "comm",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindLocation(t *testing.T) {
	cpuKinds := []Kind{KindCPUOp, KindLaunch, KindMemcpyAPI, KindSync, KindMalloc, KindDataLoad}
	for _, k := range cpuKinds {
		if !k.OnCPU() || k.OnGPU() || k.OnChannel() {
			t.Errorf("%v: want CPU-only location", k)
		}
	}
	for _, k := range []Kind{KindKernel, KindMemcpy} {
		if !k.OnGPU() || k.OnCPU() || k.OnChannel() {
			t.Errorf("%v: want GPU-only location", k)
		}
	}
	if !KindComm.OnChannel() || KindComm.OnCPU() || KindComm.OnGPU() {
		t.Error("KindComm: want channel-only location")
	}
}

func TestMemcpyDirString(t *testing.T) {
	if MemcpyH2D.String() != "HtoD" || MemcpyD2H.String() != "DtoH" ||
		MemcpyD2D.String() != "DtoD" || MemcpyNone.String() != "none" {
		t.Error("MemcpyDir strings wrong")
	}
}

func TestPhaseString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" ||
		WeightUpdate.String() != "weight_update" {
		t.Error("Phase strings wrong")
	}
	if !strings.Contains(Phase(9).String(), "9") {
		t.Error("unknown phase should include its number")
	}
}

func TestActivityEnd(t *testing.T) {
	a := Activity{Start: 100, Duration: 50}
	if a.End() != 150 {
		t.Errorf("End = %v, want 150", a.End())
	}
}

func TestSortByStart(t *testing.T) {
	tr := &Trace{Activities: []Activity{
		{ID: 2, Start: 30},
		{ID: 0, Start: 10},
		{ID: 3, Start: 10}, // same start as ID 0: ID breaks the tie
		{ID: 1, Start: 20},
	}}
	tr.SortByStart()
	wantIDs := []int{0, 3, 1, 2}
	for i, want := range wantIDs {
		if tr.Activities[i].ID != want {
			t.Fatalf("position %d: ID %d, want %d", i, tr.Activities[i].ID, want)
		}
	}
}

func TestThreadAndStreamSets(t *testing.T) {
	tr := &Trace{Activities: []Activity{
		{ID: 0, Kind: KindLaunch, Thread: 3},
		{ID: 1, Kind: KindCPUOp, Thread: 1},
		{ID: 2, Kind: KindKernel, Stream: 7},
		{ID: 3, Kind: KindKernel, Stream: 9},
		{ID: 4, Kind: KindComm, Channel: "nccl"},
	}}
	if got := tr.CPUThreads(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("CPUThreads = %v, want [1 3]", got)
	}
	if got := tr.Streams(); len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("Streams = %v, want [7 9]", got)
	}
}

func validTrace() *Trace {
	return &Trace{
		Model: "m", Activities: []Activity{
			{ID: 0, Name: "cudaLaunchKernel", Kind: KindLaunch, Thread: 1, Start: 0, Duration: 5, Correlation: 1},
			{ID: 1, Name: "k", Kind: KindKernel, Stream: 7, Start: 5, Duration: 10, Correlation: 1},
			{ID: 2, Name: "sync", Kind: KindSync, Thread: 1, Start: 5, Duration: 12},
		},
		LayerSpans: []LayerSpan{{Layer: "l0", Thread: 1, Start: 0, End: 5}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateNegativeTime(t *testing.T) {
	tr := validTrace()
	tr.Activities[0].Start = -1
	if err := tr.Validate(); err == nil {
		t.Fatal("negative start accepted")
	}
}

func TestValidateDuplicateID(t *testing.T) {
	tr := validTrace()
	tr.Activities[2].ID = 0
	if err := tr.Validate(); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestValidateDanglingCorrelation(t *testing.T) {
	tr := validTrace()
	tr.Activities[1].Correlation = 2 // API 1 now pairs with nothing
	if err := tr.Validate(); err == nil {
		t.Fatal("dangling correlation accepted")
	}
}

func TestValidateDoubleCorrelation(t *testing.T) {
	tr := validTrace()
	tr.Activities = append(tr.Activities, Activity{
		ID: 3, Name: "k2", Kind: KindKernel, Stream: 7, Correlation: 1,
	})
	if err := tr.Validate(); err == nil {
		t.Fatal("correlation paired with two GPU records accepted")
	}
}

func TestValidateCorrelationOnComm(t *testing.T) {
	tr := validTrace()
	tr.Activities = append(tr.Activities, Activity{
		ID: 3, Name: "allreduce", Kind: KindComm, Channel: "nccl", Correlation: 9,
	})
	if err := tr.Validate(); err == nil {
		t.Fatal("correlation on a comm record accepted")
	}
}

func TestValidateInvertedSpan(t *testing.T) {
	tr := validTrace()
	tr.LayerSpans[0].End = -5
	if err := tr.Validate(); err == nil {
		t.Fatal("inverted layer span accepted")
	}
}

func TestClone(t *testing.T) {
	tr := validTrace()
	tr.Gradients = []GradientInfo{{Layer: "l0", Bytes: 100, Bucket: -1}}
	c := tr.Clone()
	c.Activities[0].Name = "mutated"
	c.LayerSpans[0].Layer = "mutated"
	c.Gradients[0].Bytes = 1
	if tr.Activities[0].Name == "mutated" || tr.LayerSpans[0].Layer == "mutated" || tr.Gradients[0].Bytes == 1 {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestFilter(t *testing.T) {
	tr := validTrace()
	got := tr.Filter(func(a *Activity) bool { return a.Kind == KindKernel })
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Filter = %v, want the single kernel", got)
	}
	// Mutating the result must not touch the trace.
	got[0].Name = "mutated"
	if tr.Activities[1].Name == "mutated" {
		t.Fatal("Filter aliases trace storage")
	}
}

func TestLayerSpanFields(t *testing.T) {
	s := LayerSpan{Layer: "conv1", Phase: Backward, Start: 10 * time.Microsecond, End: 20 * time.Microsecond}
	if s.End-s.Start != 10*time.Microsecond {
		t.Fatal("span arithmetic broken")
	}
}
