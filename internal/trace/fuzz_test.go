package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzTraceJSON proves the decoder's robustness contract: arbitrary
// bytes fed to ReadJSON produce either a valid trace or a typed error —
// never a panic, and never a trace that fails its own Validate. Accepted
// traces must also round-trip through WriteJSON/ReadJSON.
//
// The seed corpus under testdata/fuzz/FuzzTraceJSON (plus the f.Add
// seeds below) runs as a plain regression on every `go test`; `go test
// -fuzz=FuzzTraceJSON` explores beyond it.
func FuzzTraceJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"model":"m","activities":[{"id":1,"name":"k","kind":5,"start":0,"duration":10,"stream":7}]}`))
	f.Add([]byte(`{"activities":[{"id":1,"duration":-5}]}`))
	f.Add([]byte(`{"activities":[{"id":1,"start":9223372036854775807,"duration":9223372036854775807}]}`))
	f.Add([]byte(`{"activities":[{"id":1},{"id":1}]}`))
	f.Add([]byte(`{"activities":[{"id":1,"duration":NaN}]}`))
	f.Add([]byte(`{"activities":[{"id":1,"duration":1.5}]}`))
	f.Add([]byte(`{"layer_spans":[{"layer":"l","start":10,"end":3}]}`))
	f.Add([]byte(`{"activities":[{"id":1,"kind":0,"correlation":9}]}`)) // CPU record, unmatched correlation
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatalf("ReadJSON returned both a trace and error %v", err)
			}
			// Every rejection is classified by the taxonomy.
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrNegativeTime) &&
				!errors.Is(err, ErrTimeOverflow) && !errors.Is(err, ErrDuplicateID) &&
				!errors.Is(err, ErrBadCorrelation) && !errors.Is(err, ErrSpanInverted) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		// Accepted input: the trace is internally consistent and
		// round-trips.
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted a trace its own Validate rejects: %v", verr)
		}
		var buf strings.Builder
		if werr := tr.WriteJSON(&buf); werr != nil {
			t.Fatalf("round-trip encode failed: %v", werr)
		}
		if _, rerr := ReadJSON(strings.NewReader(buf.String())); rerr != nil {
			t.Fatalf("round-trip decode failed: %v", rerr)
		}
	})
}
