// Package trace defines the CUPTI-shaped activity records that Daydream
// consumes. A Trace is the result of profiling one training iteration: a
// flat list of timestamped activities (CUDA runtime API calls, GPU kernels,
// memory copies, synchronizations, data-loading and communication tasks)
// plus the lightweight framework instrumentation the paper adds on top of
// CUPTI — per-layer phase spans and gradient/bucket metadata.
//
// Real Daydream obtains these records from CUPTI and from small patches to
// PyTorch/MXNet/Caffe. This reproduction obtains them from the synthetic
// training executor in internal/framework, which emits exactly the same
// shape of data: names, start/duration timestamps, CPU thread IDs, GPU
// stream IDs, and CUDA correlation IDs.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Kind classifies an activity record, mirroring the CUPTI activity kinds
// Daydream cares about plus the two task types the paper adds (data loading
// and communication).
type Kind int

const (
	// KindCPUOp is a framework-level CPU operation: operator dispatch,
	// Python-to-C++ boundary work, optimizer bookkeeping. CUPTI does not
	// report these directly; the paper captures their effect as inter-task
	// gaps, but the synthetic tracer also reports the portions it can see.
	KindCPUOp Kind = iota
	// KindLaunch is a cudaLaunchKernel runtime API call on a CPU thread.
	KindLaunch
	// KindMemcpyAPI is a cudaMemcpy/cudaMemcpyAsync call on a CPU thread.
	KindMemcpyAPI
	// KindSync is a CUDA synchronization API call (cudaDeviceSynchronize,
	// cudaStreamSynchronize) on a CPU thread. It completes only after the
	// GPU work launched before it completes.
	KindSync
	// KindMalloc is a cudaMalloc/cudaFree style allocation API call.
	KindMalloc
	// KindKernel is a GPU kernel execution on a CUDA stream.
	KindKernel
	// KindMemcpy is the GPU-side execution of a memory copy on a stream.
	KindMemcpy
	// KindDataLoad is a data-loading task: one mini-batch moved from
	// disk/flash into host memory by a loader thread.
	KindDataLoad
	// KindComm is a communication primitive: an all-reduce, push, pull,
	// reduce-scatter or all-gather executing on a communication channel.
	KindComm
)

var kindNames = [...]string{
	KindCPUOp:     "cpu_op",
	KindLaunch:    "cuda_launch",
	KindMemcpyAPI: "memcpy_api",
	KindSync:      "cuda_sync",
	KindMalloc:    "cuda_malloc",
	KindKernel:    "kernel",
	KindMemcpy:    "memcpy",
	KindDataLoad:  "data_load",
	KindComm:      "comm",
}

// String returns the stable lower-case name of the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// OnCPU reports whether activities of this kind occupy a CPU thread.
func (k Kind) OnCPU() bool {
	switch k {
	case KindCPUOp, KindLaunch, KindMemcpyAPI, KindSync, KindMalloc, KindDataLoad:
		return true
	}
	return false
}

// OnGPU reports whether activities of this kind occupy a GPU stream.
func (k Kind) OnGPU() bool {
	return k == KindKernel || k == KindMemcpy
}

// OnChannel reports whether activities of this kind occupy a communication
// channel.
func (k Kind) OnChannel() bool { return k == KindComm }

// MemcpyDir describes the direction of a memory copy.
type MemcpyDir int

// Memory copy directions.
const (
	MemcpyNone MemcpyDir = iota
	MemcpyH2D            // host to device
	MemcpyD2H            // device to host
	MemcpyD2D            // device to device
)

// String returns the conventional CUDA abbreviation for the direction.
func (d MemcpyDir) String() string {
	switch d {
	case MemcpyH2D:
		return "HtoD"
	case MemcpyD2H:
		return "DtoH"
	case MemcpyD2D:
		return "DtoD"
	}
	return "none"
}

// Phase identifies which of the three per-iteration phases a layer span
// belongs to.
type Phase int

// Training phases of one iteration.
const (
	Forward Phase = iota
	Backward
	WeightUpdate
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	case WeightUpdate:
		return "weight_update"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Activity is one CUPTI-shaped trace record. Exactly one of the location
// fields is meaningful, depending on Kind: Thread for CPU-side records,
// Stream for GPU-side records, Channel for communication records.
type Activity struct {
	// ID is a unique, monotonically increasing record identifier.
	ID int `json:"id"`
	// Name is the API or kernel name, e.g. "cudaLaunchKernel",
	// "volta_sgemm_128x64_nn", "elementwise_kernel", "ncclAllReduce".
	Name string `json:"name"`
	// Kind classifies the record.
	Kind Kind `json:"kind"`
	// Start is the offset of the record from the start of the iteration.
	Start time.Duration `json:"start"`
	// Duration is how long the activity occupied its execution thread.
	Duration time.Duration `json:"duration"`
	// Thread is the CPU thread ID for CPU-side records.
	Thread int `json:"thread"`
	// Stream is the CUDA stream ID for GPU-side records.
	Stream int `json:"stream"`
	// Channel is the communication channel name for KindComm records
	// (e.g. "nccl", "ps.send", "ps.recv").
	Channel string `json:"channel,omitempty"`
	// Correlation links a runtime API call (cudaLaunchKernel,
	// cudaMemcpyAsync) to the GPU-side activity it triggered. Zero means
	// no correlation. CUPTI provides exactly this field.
	Correlation uint64 `json:"correlation,omitempty"`
	// Bytes is the payload size for memory copies, communication
	// primitives and data loads.
	Bytes int64 `json:"bytes,omitempty"`
	// Dir is the memory copy direction, if applicable.
	Dir MemcpyDir `json:"dir,omitempty"`
}

// End returns Start+Duration.
func (a *Activity) End() time.Duration { return a.Start + a.Duration }

// LayerSpan is one record of the framework instrumentation described in
// paper §4.3: the wall-clock interval during which the framework's CPU
// thread was inside the forward/backward/weight-update method of one layer.
// Daydream's synchronization-free mapping brackets CUDA launch calls with
// these spans and propagates the layer to GPU kernels via correlation IDs.
type LayerSpan struct {
	// Layer is the framework-level layer name, e.g. "layer3.2.conv1".
	Layer string `json:"layer"`
	// Index is the topological index of the layer in the model.
	Index int `json:"index"`
	// Phase is the training phase this span covers.
	Phase Phase `json:"phase"`
	// Thread is the CPU thread the span was recorded on.
	Thread int `json:"thread"`
	// Start and End delimit the span.
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// GradientInfo is the per-layer gradient metadata the paper collects with
// extra framework instrumentation (§4.1 phase 1): the size of the gradient
// each layer produces and, for PyTorch-style frameworks, which DDP bucket
// the gradient is grouped into.
type GradientInfo struct {
	// Layer is the layer name the gradient belongs to.
	Layer string `json:"layer"`
	// Index is the topological index of the layer.
	Index int `json:"index"`
	// Bytes is the gradient payload size.
	Bytes int64 `json:"bytes"`
	// Bucket is the DDP gradient bucket this layer's gradient is grouped
	// into; -1 if the framework does not bucket.
	Bucket int `json:"bucket"`
	// ActBytes is the layer's output activation size, used by
	// memory-footprint what-ifs (vDNN, Gist).
	ActBytes int64 `json:"act_bytes,omitempty"`
	// Kind is the framework-level operator type name ("conv",
	// "batchnorm", "relu", ...), part of the per-layer metadata the
	// instrumentation reports.
	Kind string `json:"op_kind,omitempty"`
}

// Trace is the complete profiling result for one training iteration.
type Trace struct {
	// Model is the DNN model name, e.g. "ResNet-50".
	Model string `json:"model"`
	// Framework identifies the framework dialect that produced the trace
	// ("pytorch", "mxnet", "caffe").
	Framework string `json:"framework"`
	// Device is the accelerator the trace was collected on.
	Device string `json:"device"`
	// BatchSize is the per-worker mini-batch size.
	BatchSize int `json:"batch_size"`
	// Precision records the numeric precision of the run ("fp32","fp16").
	Precision string `json:"precision"`
	// IterationTime is the measured wall-clock time of the iteration.
	IterationTime time.Duration `json:"iteration_time"`
	// Activities are the CUPTI-shaped records, in no particular order.
	Activities []Activity `json:"activities"`
	// LayerSpans is the per-layer instrumentation.
	LayerSpans []LayerSpan `json:"layer_spans"`
	// Gradients is the per-layer gradient metadata.
	Gradients []GradientInfo `json:"gradients"`
}

// SortByStart orders activities by start time, breaking ties by ID. Most
// consumers want this ordering; the tracer already emits it, but traces
// loaded from disk may not be sorted.
func (t *Trace) SortByStart() {
	sort.SliceStable(t.Activities, func(i, j int) bool {
		ai, aj := &t.Activities[i], &t.Activities[j]
		if ai.Start != aj.Start {
			return ai.Start < aj.Start
		}
		return ai.ID < aj.ID
	})
}

// CPUThreads returns the sorted set of CPU thread IDs present in the trace.
func (t *Trace) CPUThreads() []int {
	return t.locations(func(a *Activity) (int, bool) {
		return a.Thread, a.Kind.OnCPU()
	})
}

// Streams returns the sorted set of GPU stream IDs present in the trace.
func (t *Trace) Streams() []int {
	return t.locations(func(a *Activity) (int, bool) {
		return a.Stream, a.Kind.OnGPU()
	})
}

func (t *Trace) locations(f func(*Activity) (int, bool)) []int {
	seen := make(map[int]bool)
	for i := range t.Activities {
		if id, ok := f(&t.Activities[i]); ok {
			seen[id] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Validate checks structural invariants of the trace: non-negative,
// non-overflowing times, unique IDs, correlation IDs pairing exactly one
// API call with exactly one GPU activity, and layer spans with
// non-inverted intervals. It returns the first violation found, wrapped
// in the matching sentinel from the package's error taxonomy
// (ErrNegativeTime, ErrTimeOverflow, ErrDuplicateID, ErrBadCorrelation,
// ErrSpanInverted) so callers can classify with errors.Is.
func (t *Trace) Validate() error {
	ids := make(map[int]bool, len(t.Activities))
	api := make(map[uint64]int) // correlation -> count of CPU-side records
	gpu := make(map[uint64]int) // correlation -> count of GPU-side records
	for i := range t.Activities {
		a := &t.Activities[i]
		if a.Start < 0 || a.Duration < 0 {
			return fmt.Errorf("%w: activity %d (%s) has start %v, duration %v", ErrNegativeTime, a.ID, a.Name, a.Start, a.Duration)
		}
		if a.Duration > math.MaxInt64-a.Start {
			return fmt.Errorf("%w: activity %d (%s) ends past the time axis (start %v + duration %v)", ErrTimeOverflow, a.ID, a.Name, a.Start, a.Duration)
		}
		if ids[a.ID] {
			return fmt.Errorf("%w: activity ID %d", ErrDuplicateID, a.ID)
		}
		ids[a.ID] = true
		if a.Correlation != 0 {
			switch {
			case a.Kind.OnCPU():
				api[a.Correlation]++
			case a.Kind.OnGPU():
				gpu[a.Correlation]++
			default:
				return fmt.Errorf("%w: activity %d (%s) of kind %s carries a correlation ID", ErrBadCorrelation, a.ID, a.Name, a.Kind)
			}
		}
	}
	for c, n := range api {
		if n != 1 || gpu[c] != 1 {
			return fmt.Errorf("%w: correlation %d pairs %d API records with %d GPU records; want 1 and 1", ErrBadCorrelation, c, n, gpu[c])
		}
	}
	for c, n := range gpu {
		if api[c] != 1 {
			return fmt.Errorf("%w: correlation %d pairs %d API records with %d GPU records; want 1 and 1", ErrBadCorrelation, c, api[c], n)
		}
	}
	for i := range t.LayerSpans {
		s := &t.LayerSpans[i]
		if s.Start < 0 {
			return fmt.Errorf("%w: layer span %q %s starts at %v", ErrNegativeTime, s.Layer, s.Phase, s.Start)
		}
		if s.End < s.Start {
			return fmt.Errorf("%w: layer span %q %s has End %v < Start %v", ErrSpanInverted, s.Layer, s.Phase, s.End, s.Start)
		}
	}
	return nil
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := *t
	c.Activities = append([]Activity(nil), t.Activities...)
	c.LayerSpans = append([]LayerSpan(nil), t.LayerSpans...)
	c.Gradients = append([]GradientInfo(nil), t.Gradients...)
	return &c
}
