package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := validTrace()
	tr.Model = "ResNet-50"
	tr.Gradients = []GradientInfo{{Layer: "l0", Index: 0, Bytes: 4096, Bucket: 2, ActBytes: 99, Kind: "conv"}}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != tr.Model {
		t.Errorf("model = %q, want %q", got.Model, tr.Model)
	}
	if len(got.Activities) != len(tr.Activities) {
		t.Fatalf("activities = %d, want %d", len(got.Activities), len(tr.Activities))
	}
	for i := range got.Activities {
		if got.Activities[i] != tr.Activities[i] {
			t.Errorf("activity %d = %+v, want %+v", i, got.Activities[i], tr.Activities[i])
		}
	}
	if len(got.Gradients) != 1 || got.Gradients[0] != tr.Gradients[0] {
		t.Errorf("gradients = %+v", got.Gradients)
	}
	if len(got.LayerSpans) != 1 || got.LayerSpans[0] != tr.LayerSpans[0] {
		t.Errorf("spans = %+v", got.LayerSpans)
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadJSONInvalidTrace(t *testing.T) {
	bad := validTrace()
	bad.Activities[0].Start = -1
	var buf bytes.Buffer
	if err := bad.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf); err == nil {
		t.Fatal("invalid trace accepted on read")
	}
}
