package dnn

import "fmt"

// Transformer builds the base encoder–decoder Transformer of Vaswani et
// al. (cited by the paper as one of the models driving the demand for
// compute) for WMT'16: six encoder and six decoder blocks with d_model
// 512, 8 heads and a 2048-wide feed-forward, a 32 K vocabulary and tied
// generator. Trained with Adam. It extends the zoo beyond the paper's
// Table 2 and exercises the cross-attention dataflow pattern.
func Transformer(batch, seqLen int) *Model {
	const (
		vocab  = 32000
		dModel = 512
		heads  = 8
		dFF    = 2048
	)
	b := newBuilder("Transformer", "WMT16", batch, Adam)
	b.model.SeqLen = seqLen
	tokens := batch * seqLen
	tf := float64(tokens)
	dm := float64(dModel)

	attention := func(prefix string, crossTokens int) {
		b.add(linearLayer(prefix+".query", tokens, dModel, dModel))
		b.add(linearLayer(prefix+".key", crossTokens, dModel, dModel))
		b.add(linearLayer(prefix+".value", crossTokens, dModel, dModel))
		b.add(matmulLayer(prefix+".scores", float64(batch), float64(seqLen), float64(seqLen), dm/heads, heads))
		attnElems := float64(batch) * heads * float64(seqLen) * float64(seqLen)
		b.add(softmaxLayer(prefix+".softmax", attnElems))
		b.add(pointwiseLayer(prefix+".dropout", Dropout, attnElems))
		b.add(matmulLayer(prefix+".context", float64(batch), float64(seqLen), dm/heads, float64(seqLen), heads))
		b.add(linearLayer(prefix+".output", tokens, dModel, dModel))
		b.add(pointwiseLayer(prefix+".residual", Add, tf*dm))
		b.add(layerNormLayer(prefix+".ln", tf*dm, dModel))
	}
	ffn := func(prefix string) {
		b.add(linearLayer(prefix+".fc1", tokens, dModel, dFF))
		b.add(pointwiseLayer(prefix+".relu", ReLU, tf*float64(dFF)))
		b.add(linearLayer(prefix+".fc2", tokens, dFF, dModel))
		b.add(pointwiseLayer(prefix+".residual", Add, tf*dm))
		b.add(layerNormLayer(prefix+".ln", tf*dm, dModel))
	}

	b.add(embeddingLayer("encoder.embedding", tokens, vocab, dModel))
	b.add(pointwiseLayer("encoder.pos_dropout", Dropout, tf*dm))
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("encoder.layer%d", i)
		attention(p+".self_attn", tokens)
		ffn(p + ".ffn")
	}

	b.add(embeddingLayer("decoder.embedding", tokens, vocab, dModel))
	b.add(pointwiseLayer("decoder.pos_dropout", Dropout, tf*dm))
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("decoder.layer%d", i)
		attention(p+".self_attn", tokens)
		attention(p+".cross_attn", tokens)
		ffn(p + ".ffn")
	}

	b.add(linearLayer("generator", tokens, dModel, vocab))
	b.add(lossLayer("loss", tf*float64(vocab)))
	return b.done()
}
