package dnn

import (
	"fmt"
	"sort"
)

// OptimizerKind selects the weight-update rule a model trains with.
type OptimizerKind int

// Optimizers.
const (
	// SGD is stochastic gradient descent with momentum.
	SGD OptimizerKind = iota
	// Adam is the (unfused) Adam optimizer: roughly a dozen small
	// elementwise GPU kernels per parameter tensor per step, which is
	// what makes FusedAdam such a large win on BERT (paper §6.3).
	Adam
)

// String returns "sgd" or "adam".
func (o OptimizerKind) String() string {
	if o == Adam {
		return "adam"
	}
	return "sgd"
}

// Model is one member of the zoo: an ordered layer list plus training
// defaults matching the paper's Table 2 setups.
type Model struct {
	// Name is the model name as the paper spells it.
	Name string
	// Dataset names the paper's dataset for this model.
	Dataset string
	// Layers is the topologically ordered operator list.
	Layers []*Layer
	// BatchSize is the per-GPU batch size the cost metadata was built
	// for.
	BatchSize int
	// SeqLen is the sequence length for sequence models, 0 otherwise.
	SeqLen int
	// Optimizer is the optimizer the paper trains this model with.
	Optimizer OptimizerKind
}

// ParamCount returns the number of learnable parameters.
func (m *Model) ParamCount() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.Params()
	}
	return n
}

// GradientBytes returns the total fp32 gradient size.
func (m *Model) GradientBytes() int64 { return m.ParamCount() * 4 }

// ParamTensorCount returns the number of learnable parameter tensors,
// which is what determines unfused-Adam kernel counts.
func (m *Model) ParamTensorCount() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.Tensors)
	}
	return n
}

// TotalFLOPs returns the forward+backward arithmetic work per iteration.
func (m *Model) TotalFLOPs() float64 {
	var f float64
	for _, l := range m.Layers {
		f += l.FLOPsFwd + l.FLOPsBwd
	}
	return f
}

// Layer returns the layer with the given name, or nil.
func (m *Model) Layer(name string) *Layer {
	for _, l := range m.Layers {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// LayersOfKind returns the layers of the given kind, in order.
func (m *Model) LayersOfKind(k LayerKind) []*Layer {
	var out []*Layer
	for _, l := range m.Layers {
		if l.Kind == k {
			out = append(out, l)
		}
	}
	return out
}

// InputBytes returns the size of one mini-batch of input data, used to
// size the host-to-device copy and the data-loading task.
func (m *Model) InputBytes() int64 {
	if len(m.Layers) == 0 {
		return 0
	}
	// The first parameterized layer's forward traffic is dominated by
	// the input for vision models; for sequence models the token IDs
	// are small.
	if m.SeqLen > 0 {
		return int64(m.BatchSize*m.SeqLen) * 8
	}
	// Vision: 3×224×224 fp32.
	return int64(m.BatchSize) * 3 * 224 * 224 * 4
}

// builder accumulates layers with automatic index assignment.
type builder struct {
	model *Model
}

func newBuilder(name, dataset string, batch int, opt OptimizerKind) *builder {
	return &builder{model: &Model{
		Name:      name,
		Dataset:   dataset,
		BatchSize: batch,
		Optimizer: opt,
	}}
}

func (b *builder) add(l *Layer) *Layer {
	l.Index = len(b.model.Layers)
	b.model.Layers = append(b.model.Layers, l)
	return l
}

func (b *builder) done() *Model { return b.model }

// zoo registers the paper's models (plus the Transformer extension) by
// canonical name.
var zoo = map[string]func() *Model{
	"resnet50":    func() *Model { return ResNet50(64) },
	"vgg19":       func() *Model { return VGG19(32) },
	"densenet121": func() *Model { return DenseNet121(32) },
	"gnmt":        func() *Model { return GNMT(32, 25) },
	"bert-base":   func() *Model { return BERTBase(4, 384) },
	"bert-large":  func() *Model { return BERTLarge(2, 384) },
	"transformer": func() *Model { return Transformer(64, 32) },
}

// ByName builds the named model at the paper's default batch size.
// Known names: resnet50, vgg19, densenet121, gnmt, bert-base, bert-large,
// transformer.
func ByName(name string) (*Model, error) {
	f, ok := zoo[name]
	if !ok {
		return nil, fmt.Errorf("dnn: unknown model %q (known: %v)", name, Names())
	}
	return f(), nil
}

// zooAt registers the batch-parameterized constructors behind the zoo,
// with sequence lengths fixed at the paper's defaults.
var zooAt = map[string]func(batch int) *Model{
	"resnet50":    ResNet50,
	"vgg19":       VGG19,
	"densenet121": DenseNet121,
	"gnmt":        func(b int) *Model { return GNMT(b, 25) },
	"bert-base":   func(b int) *Model { return BERTBase(b, 384) },
	"bert-large":  func(b int) *Model { return BERTLarge(b, 384) },
	"transformer": func(b int) *Model { return Transformer(b, 32) },
}

// ByNameAtBatch builds the named zoo model at an explicit batch size
// (sequence lengths stay at the zoo defaults), for batch sweeps and
// capacity fits.
func ByNameAtBatch(name string, batch int) (*Model, error) {
	f, ok := zooAt[name]
	if !ok {
		return nil, fmt.Errorf("dnn: unknown model %q (known: %v)", name, Names())
	}
	if batch < 1 {
		return nil, fmt.Errorf("dnn: batch size must be positive, got %d", batch)
	}
	return f(batch), nil
}

// Names returns the sorted list of zoo model names.
func Names() []string {
	names := make([]string, 0, len(zoo))
	for n := range zoo {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
