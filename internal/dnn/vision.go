package dnn

import "fmt"

// visionBuilder tracks the (channels, height, width) of the activation
// flowing through a convolutional network while layers are appended.
type visionBuilder struct {
	*builder
	batch   int
	c, h, w int
}

func newVisionBuilder(name, dataset string, batch int, opt OptimizerKind) *visionBuilder {
	return &visionBuilder{
		builder: newBuilder(name, dataset, batch, opt),
		batch:   batch,
		c:       3, h: 224, w: 224,
	}
}

// elems returns the element count of the current activation across the
// batch.
func (v *visionBuilder) elems() float64 {
	return float64(v.batch) * float64(v.c) * float64(v.h) * float64(v.w)
}

func (v *visionBuilder) actBytes() int64 { return int64(v.elems()) * 4 }

// conv appends a 2-D convolution and updates the tracked shape.
func (v *visionBuilder) conv(name string, cout, k, stride int) *Layer {
	inElems := v.elems()
	hout := (v.h + stride - 1) / stride
	wout := (v.w + stride - 1) / stride
	outElems := float64(v.batch) * float64(cout) * float64(hout) * float64(wout)
	weights := float64(k*k) * float64(v.c) * float64(cout)
	flops := 2 * weights * float64(hout) * float64(wout) * float64(v.batch)
	bytesFwd := (inElems + outElems + weights) * 4
	l := v.add(&Layer{
		Name:     name,
		Kind:     Conv,
		Tensors:  []int64{int64(weights)},
		FLOPsFwd: flops, BytesFwd: bytesFwd,
		FLOPsBwd: 2 * flops, BytesBwd: 2 * bytesFwd,
	})
	v.c, v.h, v.w = cout, hout, wout
	l.ActBytes = v.actBytes()
	return l
}

// bn appends a batch-normalization layer over the current shape.
func (v *visionBuilder) bn(name string) *Layer {
	e := v.elems()
	l := v.add(&Layer{
		Name:     name,
		Kind:     BatchNorm,
		Tensors:  []int64{int64(v.c), int64(v.c)},
		FLOPsFwd: 5 * e, BytesFwd: 3.2 * e * 4,
		FLOPsBwd: 7 * e, BytesBwd: 4.5 * e * 4,
		ActBytes: v.actBytes(),
	})
	return l
}

// relu appends a ReLU over the current shape.
func (v *visionBuilder) relu(name string) *Layer {
	e := v.elems()
	return v.add(&Layer{
		Name:     name,
		Kind:     ReLU,
		FLOPsFwd: e, BytesFwd: 2 * e * 4,
		FLOPsBwd: e, BytesBwd: 3 * e * 4,
		ActBytes: v.actBytes(),
	})
}

// pool appends a pooling layer with the given kernel and stride.
func (v *visionBuilder) pool(name string, k, stride int) *Layer {
	inElems := v.elems()
	v.h = (v.h + stride - 1) / stride
	v.w = (v.w + stride - 1) / stride
	outElems := v.elems()
	return v.add(&Layer{
		Name:     name,
		Kind:     Pool,
		FLOPsFwd: inElems * float64(k*k) / float64(stride*stride),
		BytesFwd: (inElems + outElems) * 4,
		FLOPsBwd: inElems, BytesBwd: (inElems + outElems) * 4,
		ActBytes: v.actBytes(),
	})
}

// globalPool collapses the spatial dimensions to 1×1.
func (v *visionBuilder) globalPool(name string) *Layer {
	inElems := v.elems()
	v.h, v.w = 1, 1
	return v.add(&Layer{
		Name:     name,
		Kind:     Pool,
		FLOPsFwd: inElems, BytesFwd: inElems * 4,
		FLOPsBwd: inElems, BytesBwd: inElems * 4 * 2,
		ActBytes: v.actBytes(),
	})
}

// add2 appends an elementwise residual addition over the current shape.
func (v *visionBuilder) addResidual(name string) *Layer {
	e := v.elems()
	return v.add(&Layer{
		Name:     name,
		Kind:     Add,
		FLOPsFwd: e, BytesFwd: 3 * e * 4,
		FLOPsBwd: e, BytesBwd: 2 * e * 4,
		ActBytes: v.actBytes(),
	})
}

// concat appends a channel concatenation that grows the channel count by
// extra, reading and writing the combined tensor (DenseNet).
func (v *visionBuilder) concat(name string, extra int) *Layer {
	v.c += extra
	e := v.elems()
	return v.add(&Layer{
		Name:     name,
		Kind:     Concat,
		FLOPsFwd: 0, BytesFwd: 2 * e * 4,
		FLOPsBwd: 0, BytesBwd: 2 * e * 4,
		ActBytes: v.actBytes(),
	})
}

// fc appends a fully connected layer from the flattened activation.
func (v *visionBuilder) fc(name string, out int) *Layer {
	in := float64(v.c) * float64(v.h) * float64(v.w)
	flops := 2 * in * float64(out) * float64(v.batch)
	weights := in * float64(out)
	bytesFwd := (in*float64(v.batch) + float64(out)*float64(v.batch) + weights) * 4
	l := v.add(&Layer{
		Name:     name,
		Kind:     Linear,
		Tensors:  []int64{int64(weights), int64(out)},
		FLOPsFwd: flops, BytesFwd: bytesFwd,
		FLOPsBwd: 2 * flops, BytesBwd: 2 * bytesFwd,
	})
	v.c, v.h, v.w = out, 1, 1
	l.ActBytes = v.actBytes()
	return l
}

// dropout appends a dropout layer over the current shape.
func (v *visionBuilder) dropout(name string) *Layer {
	e := v.elems()
	return v.add(&Layer{
		Name:     name,
		Kind:     Dropout,
		FLOPsFwd: e, BytesFwd: 2.5 * e * 4,
		FLOPsBwd: e, BytesBwd: 2.5 * e * 4,
		ActBytes: v.actBytes(),
	})
}

// loss appends a classification softmax + NLL loss over the current shape.
func (v *visionBuilder) loss(name string) *Layer {
	e := v.elems()
	return v.add(&Layer{
		Name:     name,
		Kind:     Loss,
		FLOPsFwd: 4 * e, BytesFwd: 3 * e * 4,
		FLOPsBwd: 2 * e, BytesBwd: 2 * e * 4,
	})
}

// ResNet50 builds ResNet-50 (He et al.) for ImageNet at the given per-GPU
// batch size: a 7×7 stem, four bottleneck stages of [3,4,6,3] blocks, and a
// 1000-way classifier. Trained with SGD, as in the paper's evaluation.
func ResNet50(batch int) *Model {
	v := newVisionBuilder("ResNet-50", "ImageNet", batch, SGD)
	v.conv("conv1", 64, 7, 2)
	v.bn("bn1")
	v.relu("relu1")
	v.pool("maxpool", 3, 2)

	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			p := fmt.Sprintf("layer%d.%d", si+1, bi)
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			v.conv(p+".conv1", st.mid, 1, 1)
			v.bn(p + ".bn1")
			v.relu(p + ".relu1")
			v.conv(p+".conv2", st.mid, 3, stride)
			v.bn(p + ".bn2")
			v.relu(p + ".relu2")
			v.conv(p+".conv3", st.out, 1, 1)
			v.bn(p + ".bn3")
			if bi == 0 {
				// Downsample shortcut: a side branch joined by
				// the residual add (shape already updated by
				// conv3); eligible for concurrent execution.
				v.conv(p+".downsample.conv", st.out, 1, 1).Branch = true
				v.bn(p + ".downsample.bn").Branch = true
			}
			v.addResidual(p + ".add")
			v.relu(p + ".relu3")
		}
	}
	v.globalPool("avgpool")
	v.fc("fc", 1000)
	v.loss("loss")
	return v.done()
}

// VGG19 builds VGG-19 (Simonyan & Zisserman) for ImageNet: sixteen 3×3
// convolutions in five pooled groups, then the three enormous fully
// connected layers that make VGG the canonical communication-bound model
// for the P3 experiments (≈143 M parameters, ≈548 MB of gradients).
func VGG19(batch int) *Model {
	v := newVisionBuilder("VGG-19", "ImageNet", batch, SGD)
	groups := []struct {
		convs, ch int
	}{
		{2, 64}, {2, 128}, {4, 256}, {4, 512}, {4, 512},
	}
	for gi, g := range groups {
		for ci := 0; ci < g.convs; ci++ {
			name := fmt.Sprintf("features.g%d.conv%d", gi+1, ci+1)
			v.conv(name, g.ch, 3, 1)
			v.relu(fmt.Sprintf("features.g%d.relu%d", gi+1, ci+1))
		}
		v.pool(fmt.Sprintf("features.g%d.pool", gi+1), 2, 2)
	}
	v.fc("classifier.fc1", 4096)
	v.relu("classifier.relu1")
	v.dropout("classifier.drop1")
	v.fc("classifier.fc2", 4096)
	v.relu("classifier.relu2")
	v.dropout("classifier.drop2")
	v.fc("classifier.fc3", 1000)
	v.loss("loss")
	return v.done()
}

// DenseNet121 builds DenseNet-121 (Huang et al.) for ImageNet: four dense
// blocks of [6,12,24,16] layers (BN→ReLU→1×1 conv→BN→ReLU→3×3 conv→concat,
// growth rate 32) with compressing transitions. The heavy use of batchnorm
// and ReLU makes it the paper's §6.4 target for the reconstructed-batchnorm
// optimization (Caffe).
func DenseNet121(batch int) *Model {
	v := newVisionBuilder("DenseNet-121", "ImageNet", batch, SGD)
	const growth = 32
	v.conv("conv0", 64, 7, 2)
	v.bn("bn0")
	v.relu("relu0")
	v.pool("pool0", 3, 2)

	blocks := []int{6, 12, 24, 16}
	for bi, n := range blocks {
		for li := 0; li < n; li++ {
			p := fmt.Sprintf("block%d.layer%d", bi+1, li+1)
			pre := v.c // input channels to this dense layer
			v.bn(p + ".bn1")
			v.relu(p + ".relu1")
			v.conv(p+".conv1", 4*growth, 1, 1)
			v.bn(p + ".bn2")
			v.relu(p + ".relu2")
			v.conv(p+".conv2", growth, 3, 1)
			// Concatenate the new features onto the running
			// tensor: restore input channels and grow.
			v.c = pre
			v.concat(p+".concat", growth)
		}
		if bi != len(blocks)-1 {
			p := fmt.Sprintf("transition%d", bi+1)
			v.bn(p + ".bn")
			v.relu(p + ".relu")
			v.conv(p+".conv", v.c/2, 1, 1)
			v.pool(p+".pool", 2, 2)
		}
	}
	v.bn("bn_final")
	v.relu("relu_final")
	v.globalPool("avgpool")
	v.fc("classifier", 1000)
	v.loss("loss")
	return v.done()
}
