package dnn

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// TestZooParameterCounts checks every model's parameter count against the
// published values (our analytic builders should land within a few percent
// of the canonical numbers).
func TestZooParameterCounts(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi float64 // millions of parameters
	}{
		{"resnet50", 24, 30},     // canonical 25.6M (+ our downsample accounting)
		{"vgg19", 140, 147},      // canonical 143.7M
		{"densenet121", 7, 9},    // canonical 8.0M
		{"gnmt", 140, 220},       // large embeddings + 8 LSTM directions
		{"bert-base", 104, 115},  // canonical 110M
		{"bert-large", 325, 345}, // canonical 340M
		{"transformer", 80, 105}, // base (unshared embeddings)
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.ParamCount()) / 1e6
		if got < c.lo || got > c.hi {
			t.Errorf("%s: %.1fM params, want in [%v, %v]M", c.name, got, c.lo, c.hi)
		}
	}
}

// TestBERTTensorCounts pins the per-block parameter-tensor structure that
// drives the paper's §6.3 kernel counts: 16 tensors per Transformer block,
// so BERT-Base's ~200 tensors × 13 Adam kernels ≈ the 2633 weight-update
// kernels the paper reports.
func TestBERTTensorCounts(t *testing.T) {
	base, _ := ByName("bert-base")
	large, _ := ByName("bert-large")
	if n := base.ParamTensorCount(); n < 190 || n > 210 {
		t.Errorf("BERT-Base tensor count = %d, want ≈199", n)
	}
	if n := large.ParamTensorCount(); n < 380 || n > 400 {
		t.Errorf("BERT-Large tensor count = %d, want ≈391", n)
	}
	// Per-block: 16 tensors (q/k/v/out/fc1/fc2 pairs + two LayerNorms).
	perBlock := 0
	for _, l := range base.Layers {
		if strings.HasPrefix(l.Name, "encoder.layer0.") {
			perBlock += len(l.Tensors)
		}
	}
	if perBlock != 16 {
		t.Errorf("tensors per BERT block = %d, want 16", perBlock)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("alexnet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Error("Names() not sorted")
	}
	if len(names) != 7 {
		t.Errorf("zoo has %d models, want 7", len(names))
	}
}

// TestKernelExpansion checks that every layer with forward cost expands to
// at least one kernel in both directions, and that kernel work sums to the
// layer's accounting.
func TestKernelExpansion(t *testing.T) {
	for _, name := range Names() {
		m, _ := ByName(name)
		for _, l := range m.Layers {
			if l.Kind == DataPrep {
				continue
			}
			fwd, bwd := l.ForwardKernels(), l.BackwardKernels()
			if len(fwd) == 0 {
				t.Fatalf("%s/%s: no forward kernels", name, l.Name)
			}
			if len(bwd) == 0 {
				t.Fatalf("%s/%s: no backward kernels", name, l.Name)
			}
			var fb float64
			for _, k := range fwd {
				if k.Bytes < 0 || k.FLOPs < 0 {
					t.Fatalf("%s/%s: negative kernel cost", name, l.Name)
				}
				fb += k.Bytes
			}
			if l.BytesFwd > 0 && (fb < 0.5*l.BytesFwd || fb > 1.5*l.BytesFwd) {
				t.Errorf("%s/%s: fwd kernel bytes %.0f vs layer %.0f", name, l.Name, fb, l.BytesFwd)
			}
		}
	}
}

// TestBackwardRoughlyTwiceForward checks the standard 2× rule for the
// parameterized compute layers.
func TestBackwardRoughlyTwiceForward(t *testing.T) {
	m, _ := ByName("resnet50")
	for _, l := range m.Layers {
		if l.Kind != Conv && l.Kind != Linear {
			continue
		}
		r := l.FLOPsBwd / l.FLOPsFwd
		if r < 1.9 || r > 2.1 {
			t.Errorf("%s: bwd/fwd FLOPs = %.2f, want ≈2", l.Name, r)
		}
	}
}

func TestLayerIndicesAreDense(t *testing.T) {
	for _, name := range Names() {
		m, _ := ByName(name)
		for i, l := range m.Layers {
			if l.Index != i {
				t.Fatalf("%s: layer %q index %d at position %d", name, l.Name, l.Index, i)
			}
		}
	}
}

func TestLayerNamesUnique(t *testing.T) {
	for _, name := range Names() {
		m, _ := ByName(name)
		seen := map[string]bool{}
		for _, l := range m.Layers {
			if seen[l.Name] {
				t.Fatalf("%s: duplicate layer name %q", name, l.Name)
			}
			seen[l.Name] = true
		}
	}
}

func TestCPUOpsPositive(t *testing.T) {
	for _, name := range Names() {
		m, _ := ByName(name)
		for _, l := range m.Layers {
			if l.CPUOps() < 1 {
				t.Fatalf("%s/%s: CPUOps = %d", name, l.Name, l.CPUOps())
			}
		}
	}
}

func TestGradBytes(t *testing.T) {
	m, _ := ByName("vgg19")
	var total int64
	for _, l := range m.Layers {
		total += l.GradBytes()
	}
	if total != m.GradientBytes() {
		t.Errorf("per-layer gradients sum %d != model total %d", total, m.GradientBytes())
	}
	// VGG-19 gradients ≈ 548–588 MB (the paper's P3 motivation).
	mb := float64(total) / (1 << 20)
	if mb < 530 || mb > 600 {
		t.Errorf("VGG-19 gradient payload = %.0f MB, want ≈575", mb)
	}
}

func TestLSTMKernelStructure(t *testing.T) {
	m, _ := ByName("gnmt")
	lstm := m.LayersOfKind(LSTM)
	if len(lstm) != 8 { // 4 encoder (first bidirectional) + 4 decoder
		t.Fatalf("GNMT LSTM layer count = %d, want 8", len(lstm))
	}
	l := lstm[0]
	fwd := l.ForwardKernels()
	// 1 input GEMM + SeqChunks × (recurrent GEMM + gate elementwise).
	want := 1 + 2*l.SeqChunks
	if len(fwd) != want {
		t.Errorf("LSTM fwd kernels = %d, want %d", len(fwd), want)
	}
	bwd := l.BackwardKernels()
	if len(bwd) != want+1 { // + wgrad GEMM
		t.Errorf("LSTM bwd kernels = %d, want %d", len(bwd), want+1)
	}
}

func TestInputBytes(t *testing.T) {
	vision, _ := ByName("resnet50")
	if vision.InputBytes() != int64(vision.BatchSize)*3*224*224*4 {
		t.Error("vision input bytes wrong")
	}
	seq, _ := ByName("bert-base")
	if seq.InputBytes() != int64(seq.BatchSize*seq.SeqLen)*8 {
		t.Error("sequence input bytes wrong")
	}
}

func TestTotalFLOPsPositive(t *testing.T) {
	for _, name := range Names() {
		m, _ := ByName(name)
		if m.TotalFLOPs() <= 0 {
			t.Errorf("%s: non-positive FLOPs", name)
		}
	}
}

func TestModelLayerLookup(t *testing.T) {
	m, _ := ByName("resnet50")
	if m.Layer("conv1") == nil {
		t.Error("conv1 not found")
	}
	if m.Layer("no_such_layer") != nil {
		t.Error("phantom layer found")
	}
}

func TestShareProperty(t *testing.T) {
	f := func(total float64, num, den uint8) bool {
		if den == 0 {
			return share(total, float64(num), 0) == 0
		}
		got := share(total, float64(num), float64(den))
		want := total * float64(num) / float64(den)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResNetLayerCensus(t *testing.T) {
	m, _ := ByName("resnet50")
	convs := len(m.LayersOfKind(Conv))
	bns := len(m.LayersOfKind(BatchNorm))
	if convs != 53 { // 1 stem + 16 blocks × 3 + 4 downsamples
		t.Errorf("ResNet-50 convs = %d, want 53", convs)
	}
	if bns != 53 {
		t.Errorf("ResNet-50 batchnorms = %d, want 53", bns)
	}
}

func TestDenseNetLayerCensus(t *testing.T) {
	m, _ := ByName("densenet121")
	convs := len(m.LayersOfKind(Conv))
	// 1 stem + 58 dense layers × 2 + 3 transitions = 120.
	if convs != 120 {
		t.Errorf("DenseNet-121 convs = %d, want 120", convs)
	}
	if bn := len(m.LayersOfKind(BatchNorm)); bn != 121 {
		t.Errorf("DenseNet-121 batchnorms = %d, want 121", bn)
	}
}

func TestOptimizerAssignments(t *testing.T) {
	for name, want := range map[string]OptimizerKind{
		"resnet50": SGD, "vgg19": SGD, "densenet121": SGD,
		"gnmt": Adam, "bert-base": Adam, "bert-large": Adam,
		"transformer": Adam,
	} {
		m, _ := ByName(name)
		if m.Optimizer != want {
			t.Errorf("%s optimizer = %v, want %v", name, m.Optimizer, want)
		}
	}
}
