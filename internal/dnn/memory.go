package dnn

// Footprint is an analytic estimate of training-time device-memory use,
// answering the paper's introductory question "Does GPU memory capacity
// limit the performance of my model?" and sizing the headroom that
// memory-footprint optimizations (vDNN, Gist) would free.
type Footprint struct {
	// Params is the model weights (fp32).
	Params int64
	// Gradients is one fp32 gradient per parameter.
	Gradients int64
	// OptimizerState is the optimizer's per-parameter state (momentum
	// for SGD; first+second moments for Adam).
	OptimizerState int64
	// Activations is the sum of forward activations stashed for the
	// backward pass.
	Activations int64
	// Workspace approximates cuDNN algorithm workspaces and allocator
	// slack.
	Workspace int64
}

// Total sums all components.
func (f Footprint) Total() int64 {
	return f.Params + f.Gradients + f.OptimizerState + f.Activations + f.Workspace
}

// workspaceFraction approximates cuDNN workspace + caching-allocator
// slack as a fraction of activation memory.
const workspaceFraction = 0.15

// EstimateMemory computes the training footprint of a model with its
// native optimizer.
func EstimateMemory(m *Model) Footprint {
	params := m.ParamCount() * 4
	var acts int64
	for _, l := range m.Layers {
		acts += l.ActBytes
	}
	state := params // SGD: momentum buffer
	if m.Optimizer == Adam {
		state = 2 * params // exp. average + exp. square average
	}
	return Footprint{
		Params:         params,
		Gradients:      params,
		OptimizerState: state,
		Activations:    acts,
		Workspace:      int64(float64(acts) * workspaceFraction),
	}
}

// OffloadableActivations returns how much activation memory the given
// layer filter could release (e.g. vDNN_conv offloads convolutional
// feature maps).
func OffloadableActivations(m *Model, offload func(*Layer) bool) int64 {
	var n int64
	for _, l := range m.Layers {
		if offload(l) {
			n += l.ActBytes
		}
	}
	return n
}

// MaxBatchSize finds, by doubling then binary search, the largest batch
// size whose estimated footprint fits in memBytes. build constructs the
// model at a candidate batch size; the search covers [1, 65536].
func MaxBatchSize(build func(batch int) *Model, memBytes int64) int {
	fits := func(b int) bool {
		return EstimateMemory(build(b)).Total() <= memBytes
	}
	if !fits(1) {
		return 0
	}
	lo, hi := 1, 2
	for hi <= 65536 && fits(hi) {
		lo, hi = hi, hi*2
	}
	// Invariant: fits(lo), !fits(hi) (or hi beyond the cap).
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
