package dnn

import "testing"

func TestEstimateMemoryComponents(t *testing.T) {
	m, _ := ByName("resnet50")
	f := EstimateMemory(m)
	if f.Params != m.ParamCount()*4 {
		t.Errorf("params = %d, want %d", f.Params, m.ParamCount()*4)
	}
	if f.Gradients != f.Params {
		t.Error("gradients must mirror params at fp32")
	}
	if f.OptimizerState != f.Params { // SGD momentum
		t.Error("SGD state must be one buffer per parameter")
	}
	if f.Activations <= 0 || f.Workspace <= 0 {
		t.Error("activation/workspace estimates missing")
	}
	if f.Total() != f.Params+f.Gradients+f.OptimizerState+f.Activations+f.Workspace {
		t.Error("Total does not sum components")
	}
}

func TestEstimateMemoryAdamState(t *testing.T) {
	m, _ := ByName("bert-base")
	f := EstimateMemory(m)
	if f.OptimizerState != 2*f.Params {
		t.Errorf("Adam state = %d, want 2× params %d", f.OptimizerState, 2*f.Params)
	}
}

func TestResNetFootprintPlausible(t *testing.T) {
	// ResNet-50 at batch 64 trains within ~4–11 GB on real hardware.
	m, _ := ByName("resnet50")
	gb := float64(EstimateMemory(m).Total()) / (1 << 30)
	if gb < 2 || gb > 12 {
		t.Errorf("ResNet-50/64 footprint = %.1f GB, implausible", gb)
	}
}

func TestOffloadableActivations(t *testing.T) {
	m, _ := ByName("resnet50")
	convActs := OffloadableActivations(m, func(l *Layer) bool { return l.Kind == Conv })
	all := OffloadableActivations(m, func(l *Layer) bool { return true })
	if convActs <= 0 || convActs >= all {
		t.Errorf("conv activations %d of %d make no sense", convActs, all)
	}
}

func TestMaxBatchSize(t *testing.T) {
	const mem = 11 << 30 // 2080 Ti
	got := MaxBatchSize(func(b int) *Model { return ResNet50(b) }, mem)
	if got < 32 || got > 512 {
		t.Errorf("ResNet-50 max batch on 11GB = %d, implausible", got)
	}
	// The answer is exactly the fit boundary.
	if EstimateMemory(ResNet50(got)).Total() > mem {
		t.Error("reported batch does not fit")
	}
	if EstimateMemory(ResNet50(got+1)).Total() <= mem {
		t.Error("a larger batch would also fit")
	}
}

func TestMaxBatchSizeTooSmallMemory(t *testing.T) {
	if got := MaxBatchSize(func(b int) *Model { return ResNet50(b) }, 1<<20); got != 0 {
		t.Errorf("1MB fits batch %d, want 0", got)
	}
}

func TestMaxBatchSizeMonotoneInMemory(t *testing.T) {
	small := MaxBatchSize(func(b int) *Model { return ResNet50(b) }, 8<<30)
	large := MaxBatchSize(func(b int) *Model { return ResNet50(b) }, 16<<30)
	if large <= small {
		t.Errorf("more memory fits a smaller batch: %d vs %d", large, small)
	}
}
