// Package dnn defines the DNN model zoo the paper evaluates (Table 2):
// ResNet-50, VGG-19 and DenseNet-121 for image classification, GNMT for
// machine translation, and BERT-Base/Large for language modeling. Models
// are sequences of layers with analytic parameter, FLOP and memory-traffic
// accounting; each layer expands to the GPU kernels a cuDNN/cuBLAS-backed
// framework would launch for its forward, backward and weight-update
// phases.
package dnn

import (
	"fmt"

	"daydream/internal/xpu"
)

// LayerKind enumerates the operator types used by the model zoo.
type LayerKind int

// Layer kinds.
const (
	Conv LayerKind = iota
	BatchNorm
	ReLU
	GeLU
	Pool
	Linear
	MatMul // activation×activation product (attention); no parameters
	Softmax
	LayerNorm
	Dropout
	Add
	Concat
	Embedding
	LSTM
	Loss
	DataPrep // host-side only; no kernels
)

var layerKindNames = map[LayerKind]string{
	Conv: "conv", BatchNorm: "batchnorm", ReLU: "relu", GeLU: "gelu",
	Pool: "pool", Linear: "linear", MatMul: "matmul", Softmax: "softmax",
	LayerNorm: "layernorm", Dropout: "dropout", Add: "add", Concat: "concat",
	Embedding: "embedding", LSTM: "lstm", Loss: "loss", DataPrep: "dataprep",
}

// String returns the lower-case kind name.
func (k LayerKind) String() string {
	if n, ok := layerKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("layerkind(%d)", int(k))
}

// Layer is one operator instance in a model, with analytic cost metadata
// computed by the model builders for a specific batch size.
type Layer struct {
	// Name is the framework-style qualified name, e.g. "layer3.2.conv1".
	Name string
	// Kind is the operator type.
	Kind LayerKind
	// Index is the topological position within the model.
	Index int
	// Tensors lists the element counts of the layer's learnable
	// parameter tensors (weight, bias, gamma, beta, ...). Empty for
	// parameter-free layers.
	Tensors []int64
	// FLOPsFwd and BytesFwd are the forward-pass arithmetic work and
	// DRAM traffic at the builder's batch size.
	FLOPsFwd, BytesFwd float64
	// FLOPsBwd and BytesBwd are the same for the backward pass
	// (typically ≈2× forward for parameterized layers).
	FLOPsBwd, BytesBwd float64
	// ActBytes is the size of the layer's output activation, used by the
	// memory-footprint optimizations (vDNN, Gist).
	ActBytes int64
	// SeqChunks is, for LSTM layers, the number of sequential time-step
	// chunks the recurrence serializes into.
	SeqChunks int
	// Branch marks layers on a side branch of the dataflow (e.g.
	// ResNet's downsample shortcut) that a framework with multi-stream
	// execution could run concurrently with the main path. Used by the
	// engine's concurrent-kernels mode (paper §7.5).
	Branch bool
}

// CPUOps returns how many framework-level operator dispatches the layer's
// forward pass costs on the CPU. The model zoo's layers are coarse — one
// "MatMul" layer stands for the view/permute/bmm/view chain a real
// framework executes — so the CPU dispatch cost aggregates accordingly.
// This is what makes BERT's iteration CPU-bound in the right places
// (paper §6.3: "the CUDA launch calls on the CPU become the main
// bottleneck").
func (l *Layer) CPUOps() int {
	switch l.Kind {
	case Linear:
		return 4 // view, addmm/matmul, add bias, view
	case MatMul:
		return 6 // reshape/permute chains around bmm
	case Conv:
		return 2
	case BatchNorm, LayerNorm:
		return 3
	case Softmax, Dropout, GeLU, Pool:
		return 2
	case Embedding:
		return 3
	case LSTM:
		return 12 // per-sequence setup, packing, gate plumbing
	case Loss:
		return 4
	case ReLU, Add, Concat:
		return 1
	}
	return 1
}

// Params returns the total number of learnable parameters.
func (l *Layer) Params() int64 {
	var n int64
	for _, t := range l.Tensors {
		n += t
	}
	return n
}

// GradBytes returns the size of the fp32 gradient the layer produces.
func (l *Layer) GradBytes() int64 { return l.Params() * 4 }

// HasParams reports whether the layer has learnable parameters.
func (l *Layer) HasParams() bool { return len(l.Tensors) > 0 }

// share splits a total proportionally: part(total, num, den) = total*num/den.
func share(total float64, num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return total * num / den
}

// ForwardKernels expands the layer into the GPU kernels its forward pass
// launches, in launch order.
func (l *Layer) ForwardKernels() []xpu.Kernel {
	switch l.Kind {
	case Conv:
		return []xpu.Kernel{
			{Class: xpu.ClassConv, FLOPs: l.FLOPsFwd, Bytes: l.BytesFwd, TensorCore: true},
		}
	case Linear:
		return []xpu.Kernel{
			{Class: xpu.ClassGEMM, FLOPs: l.FLOPsFwd, Bytes: share(l.BytesFwd, 9, 10), TensorCore: true},
			{Name: "elementwise_kernel_add_bias", Class: xpu.ClassElementwise, Bytes: share(l.BytesFwd, 1, 10)},
		}
	case MatMul:
		return []xpu.Kernel{
			{Class: xpu.ClassGEMM, FLOPs: l.FLOPsFwd, Bytes: l.BytesFwd, TensorCore: true},
		}
	case BatchNorm:
		return []xpu.Kernel{
			{Class: xpu.ClassBatchNorm, FLOPs: l.FLOPsFwd, Bytes: l.BytesFwd},
		}
	case ReLU, Add, Dropout, Concat:
		return []xpu.Kernel{
			{Class: classOfPointwise(l.Kind), FLOPs: l.FLOPsFwd, Bytes: l.BytesFwd},
		}
	case GeLU:
		return []xpu.Kernel{
			{Name: "elementwise_kernel_gelu", Class: xpu.ClassElementwise, FLOPs: l.FLOPsFwd, Bytes: l.BytesFwd},
		}
	case Pool:
		return []xpu.Kernel{
			{Class: xpu.ClassPool, FLOPs: l.FLOPsFwd, Bytes: l.BytesFwd},
		}
	case Softmax:
		return []xpu.Kernel{
			{Class: xpu.ClassSoftmax, FLOPs: l.FLOPsFwd, Bytes: l.BytesFwd},
		}
	case LayerNorm:
		return []xpu.Kernel{
			{Class: xpu.ClassLayerNorm, FLOPs: l.FLOPsFwd, Bytes: l.BytesFwd},
		}
	case Embedding:
		return []xpu.Kernel{
			{Class: xpu.ClassEmbedding, FLOPs: l.FLOPsFwd, Bytes: l.BytesFwd},
		}
	case LSTM:
		return l.lstmKernels(l.FLOPsFwd, l.BytesFwd, false)
	case Loss:
		return []xpu.Kernel{
			{Class: xpu.ClassSoftmax, FLOPs: l.FLOPsFwd, Bytes: share(l.BytesFwd, 4, 5)},
			{Name: "reduce_kernel_nll_loss", Class: xpu.ClassReduce, Bytes: share(l.BytesFwd, 1, 5)},
		}
	case DataPrep:
		return nil
	}
	return nil
}

// BackwardKernels expands the layer into the GPU kernels its backward pass
// launches, in launch order.
func (l *Layer) BackwardKernels() []xpu.Kernel {
	switch l.Kind {
	case Conv:
		// Data-gradient and weight-gradient convolutions.
		return []xpu.Kernel{
			{Name: "scudnn_128x128_dgrad", Class: xpu.ClassConv, FLOPs: share(l.FLOPsBwd, 1, 2), Bytes: share(l.BytesBwd, 1, 2), TensorCore: true},
			{Name: "scudnn_128x64_wgrad", Class: xpu.ClassConv, FLOPs: share(l.FLOPsBwd, 1, 2), Bytes: share(l.BytesBwd, 1, 2), TensorCore: true},
		}
	case Linear:
		return []xpu.Kernel{
			{Name: "volta_sgemm_128x64_tn_dgrad", Class: xpu.ClassGEMM, FLOPs: share(l.FLOPsBwd, 1, 2), Bytes: share(l.BytesBwd, 2, 5), TensorCore: true},
			{Name: "volta_sgemm_128x64_nt_wgrad", Class: xpu.ClassGEMM, FLOPs: share(l.FLOPsBwd, 1, 2), Bytes: share(l.BytesBwd, 2, 5), TensorCore: true},
			{Name: "reduce_kernel_bias_grad", Class: xpu.ClassReduce, Bytes: share(l.BytesBwd, 1, 5)},
		}
	case MatMul:
		return []xpu.Kernel{
			{Name: "volta_sgemm_128x64_tn", Class: xpu.ClassGEMM, FLOPs: share(l.FLOPsBwd, 1, 2), Bytes: share(l.BytesBwd, 1, 2), TensorCore: true},
			{Name: "volta_sgemm_128x64_nt", Class: xpu.ClassGEMM, FLOPs: share(l.FLOPsBwd, 1, 2), Bytes: share(l.BytesBwd, 1, 2), TensorCore: true},
		}
	case BatchNorm:
		return []xpu.Kernel{
			{Name: "bn_bw_tr_1C11_kernel_NCHW", Class: xpu.ClassBatchNorm, FLOPs: l.FLOPsBwd, Bytes: l.BytesBwd},
		}
	case ReLU, Add, Dropout, Concat:
		return []xpu.Kernel{
			{Class: classOfPointwise(l.Kind), FLOPs: l.FLOPsBwd, Bytes: l.BytesBwd},
		}
	case GeLU:
		return []xpu.Kernel{
			{Name: "elementwise_kernel_gelu_backward", Class: xpu.ClassElementwise, FLOPs: l.FLOPsBwd, Bytes: l.BytesBwd},
		}
	case Pool:
		return []xpu.Kernel{
			{Name: "pooling_bw_4d_kernel", Class: xpu.ClassPool, FLOPs: l.FLOPsBwd, Bytes: l.BytesBwd},
		}
	case Softmax:
		return []xpu.Kernel{
			{Name: "softmax_warp_backward", Class: xpu.ClassSoftmax, FLOPs: l.FLOPsBwd, Bytes: l.BytesBwd},
		}
	case LayerNorm:
		return []xpu.Kernel{
			{Name: "layer_norm_grad_input_kernel", Class: xpu.ClassLayerNorm, FLOPs: share(l.FLOPsBwd, 3, 4), Bytes: share(l.BytesBwd, 3, 4)},
			{Name: "reduce_kernel_layer_norm_param_grad", Class: xpu.ClassReduce, Bytes: share(l.BytesBwd, 1, 4)},
		}
	case Embedding:
		return []xpu.Kernel{
			{Name: "embedding_backward_feature_kernel", Class: xpu.ClassEmbedding, FLOPs: l.FLOPsBwd, Bytes: l.BytesBwd},
		}
	case LSTM:
		return l.lstmKernels(l.FLOPsBwd, l.BytesBwd, true)
	case Loss:
		return []xpu.Kernel{
			{Name: "elementwise_kernel_nll_backward", Class: xpu.ClassElementwise, FLOPs: l.FLOPsBwd, Bytes: l.BytesBwd},
		}
	case DataPrep:
		return nil
	}
	return nil
}

func classOfPointwise(k LayerKind) xpu.Class {
	if k == Dropout {
		return xpu.ClassDropout
	}
	return xpu.ClassElementwise
}

// lstmKernels models a cuDNN-style LSTM layer: one large input GEMM batched
// over the whole sequence, then SeqChunks serialized chunks of
// (recurrent GEMM + fused pointwise gate math). Backward mirrors forward
// with an extra weight-gradient GEMM.
func (l *Layer) lstmKernels(flops, bytes float64, backward bool) []xpu.Kernel {
	chunks := l.SeqChunks
	if chunks <= 0 {
		chunks = 8
	}
	// Work split: half the GEMM work is the batched input projection,
	// half is the serialized recurrence; pointwise gates are ~12% of
	// traffic.
	gemmFLOPs := share(flops, 7, 8)
	ewBytes := share(bytes, 1, 8)
	gemmBytes := bytes - ewBytes
	ks := []xpu.Kernel{{
		Name: "volta_sgemm_128x128_nn_lstm_input", Class: xpu.ClassGEMM,
		FLOPs: gemmFLOPs / 2, Bytes: gemmBytes / 2, TensorCore: true,
	}}
	for i := 0; i < chunks; i++ {
		ks = append(ks,
			xpu.Kernel{
				Name: "volta_sgemm_64x64_nn_lstm_recur", Class: xpu.ClassGEMM,
				FLOPs: gemmFLOPs / 2 / float64(chunks), Bytes: gemmBytes / 2 / float64(chunks), TensorCore: true,
			},
			xpu.Kernel{
				Name: "elementwise_kernel_lstm_gates", Class: xpu.ClassElementwise,
				Bytes: ewBytes / float64(chunks),
			},
		)
	}
	if backward {
		ks = append(ks, xpu.Kernel{
			Name: "volta_sgemm_128x64_nt_lstm_wgrad", Class: xpu.ClassGEMM,
			FLOPs: share(gemmFLOPs, 1, 4), Bytes: share(gemmBytes, 1, 4), TensorCore: true,
		})
	}
	return ks
}
