package dnn

import "fmt"

// seqHelpers provides cost formulas shared by the sequence models.

// linearLayer builds a Linear layer mapping (batch·tokens, in) → out.
func linearLayer(name string, tokens, in, out int) *Layer {
	t, i, o := float64(tokens), float64(in), float64(out)
	flops := 2 * t * i * o
	weights := i * o
	bytes := (t*i + t*o + weights) * 4
	return &Layer{
		Name:     name,
		Kind:     Linear,
		Tensors:  []int64{int64(weights), int64(out)},
		FLOPsFwd: flops, BytesFwd: bytes,
		FLOPsBwd: 2 * flops, BytesBwd: 2 * bytes,
		ActBytes: int64(t*o) * 4,
	}
}

// pointwiseLayer builds an elementwise layer over n elements.
func pointwiseLayer(name string, kind LayerKind, n float64) *Layer {
	return &Layer{
		Name:     name,
		Kind:     kind,
		FLOPsFwd: n, BytesFwd: 2.5 * n * 4,
		FLOPsBwd: n, BytesBwd: 2.5 * n * 4,
		ActBytes: int64(n) * 4,
	}
}

// lstmLayer builds one (optionally bidirectional) LSTM layer over a
// sequence.
func lstmLayer(name string, batch, seq, in, hidden int, bidir bool) *Layer {
	dirs := 1
	if bidir {
		dirs = 2
	}
	b, s, i, h, d := float64(batch), float64(seq), float64(in), float64(hidden), float64(dirs)
	flops := 2 * b * s * (i*4*h + h*4*h) * d
	weights := (4*h*(i+h) + 8*h) * d
	bytes := (b*s*(i+h*d+8*h)*4 + weights*4)
	var tensors []int64
	for k := 0; k < dirs; k++ {
		tensors = append(tensors,
			int64(4*h*i), // w_ih
			int64(4*h*h), // w_hh
			int64(8*h),   // biases
		)
	}
	return &Layer{
		Name:     name,
		Kind:     LSTM,
		Tensors:  tensors,
		FLOPsFwd: flops, BytesFwd: bytes,
		FLOPsBwd: 2 * flops, BytesBwd: 2 * bytes,
		ActBytes: int64(b*s*h*d) * 4,
		// cuDNN fuses recurrent steps aggressively; four serialized
		// chunks per layer keeps the recurrent GEMMs at realistic
		// (tensor-core-friendly) sizes.
		SeqChunks: 4,
	}
}

// embeddingLayer builds a token embedding lookup.
func embeddingLayer(name string, tokens, vocab, hidden int, extraTensors ...int64) *Layer {
	t, h := float64(tokens), float64(hidden)
	tensors := append([]int64{int64(vocab) * int64(hidden)}, extraTensors...)
	return &Layer{
		Name:     name,
		Kind:     Embedding,
		Tensors:  tensors,
		FLOPsFwd: 0, BytesFwd: t*h*4 + t*8,
		FLOPsBwd: t * h, BytesBwd: 2 * t * h * 4,
		ActBytes: int64(t*h) * 4,
	}
}

// GNMT builds Google's neural machine translation model (Wu et al.) for
// WMT'16 En→De at the given batch size and (average) sequence length:
// a 4-layer encoder with a bidirectional first layer, a 4-layer decoder
// with additive attention, and a 32 K-vocabulary classifier. Trained with
// Adam, as in the paper's FusedAdam experiment ("Seq2Seq").
func GNMT(batch, seqLen int) *Model {
	const (
		vocab  = 32000
		hidden = 1024
	)
	b := newBuilder("GNMT", "WMT16", batch, Adam)
	b.model.SeqLen = seqLen
	tokens := batch * seqLen

	b.add(embeddingLayer("encoder.embedding", tokens, vocab, hidden))
	b.add(lstmLayer("encoder.lstm0", batch, seqLen, hidden, hidden, true))
	b.add(linearLayer("encoder.bridge", tokens, 2*hidden, hidden))
	for i := 1; i < 4; i++ {
		b.add(lstmLayer(fmt.Sprintf("encoder.lstm%d", i), batch, seqLen, hidden, hidden, false))
	}

	b.add(embeddingLayer("decoder.embedding", tokens, vocab, hidden))
	for i := 0; i < 4; i++ {
		b.add(lstmLayer(fmt.Sprintf("decoder.lstm%d", i), batch, seqLen, hidden, hidden, false))
		if i == 0 {
			// Attention after the first decoder layer: a query
			// projection, score and context products, and an
			// output projection.
			b.add(linearLayer("decoder.attention.query", tokens, hidden, hidden))
			b.add(matmulLayer("decoder.attention.scores", float64(batch), float64(seqLen), float64(seqLen), float64(hidden), 1))
			b.add(softmaxLayer("decoder.attention.softmax", float64(batch)*float64(seqLen)*float64(seqLen)))
			b.add(matmulLayer("decoder.attention.context", float64(batch), float64(seqLen), float64(hidden), float64(seqLen), 1))
			b.add(linearLayer("decoder.attention.out", tokens, 2*hidden, hidden))
		}
	}
	b.add(linearLayer("decoder.classifier", tokens, hidden, vocab))
	b.add(lossLayer("loss", float64(tokens)*float64(vocab)))
	return b.done()
}

// matmulLayer builds a batched activation×activation matrix product of
// shape (batchCount·heads) × (m×k · k×n).
func matmulLayer(name string, batchCount, m, n, k, heads float64) *Layer {
	bh := batchCount * heads
	flops := 2 * bh * m * n * k
	bytes := bh * (m*k + k*n + m*n) * 4
	return &Layer{
		Name:     name,
		Kind:     MatMul,
		FLOPsFwd: flops, BytesFwd: bytes,
		FLOPsBwd: 2 * flops, BytesBwd: 2 * bytes,
		ActBytes: int64(bh*m*n) * 4,
	}
}

// softmaxLayer builds a softmax over n elements.
func softmaxLayer(name string, n float64) *Layer {
	return &Layer{
		Name:     name,
		Kind:     Softmax,
		FLOPsFwd: 4 * n, BytesFwd: 3 * n * 4,
		FLOPsBwd: 3 * n, BytesBwd: 3 * n * 4,
		ActBytes: int64(n) * 4,
	}
}

// lossLayer builds a softmax + NLL loss over n logits.
func lossLayer(name string, n float64) *Layer {
	return &Layer{
		Name:     name,
		Kind:     Loss,
		FLOPsFwd: 4 * n, BytesFwd: 3 * n * 4,
		FLOPsBwd: 2 * n, BytesBwd: 2 * n * 4,
	}
}
