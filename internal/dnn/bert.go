package dnn

import "fmt"

// bertConfig parameterizes a BERT encoder stack.
type bertConfig struct {
	name   string
	blocks int
	hidden int
	heads  int
	vocab  int
	maxPos int
	batch  int
	seqLen int
}

// buildBERT assembles a BERT model for SQuAD fine-tuning: embeddings, a
// stack of Transformer blocks, and a span-prediction head. Per block there
// are exactly 16 parameter tensors (q/k/v/out/fc1/fc2 weight+bias pairs
// plus two LayerNorms), so the unfused-Adam weight-update phase launches
// the thousands of elementwise kernels the paper counts in §6.3.
func buildBERT(cfg bertConfig) *Model {
	b := newBuilder(cfg.name, "SQuAD", cfg.batch, Adam)
	b.model.SeqLen = cfg.seqLen
	tokens := cfg.batch * cfg.seqLen
	h := cfg.hidden
	tf := float64(tokens)
	hf := float64(h)

	// Embeddings: word + position + token-type tables feed one gather,
	// then LayerNorm and dropout.
	b.add(embeddingLayer("embeddings.gather", tokens, cfg.vocab, h,
		int64(cfg.maxPos)*int64(h), 2*int64(h)))
	b.add(layerNormLayer("embeddings.ln", tf*hf, h))
	b.add(pointwiseLayer("embeddings.dropout", Dropout, tf*hf))

	for i := 0; i < cfg.blocks; i++ {
		p := fmt.Sprintf("encoder.layer%d", i)
		b.add(linearLayer(p+".attn.query", tokens, h, h))
		b.add(linearLayer(p+".attn.key", tokens, h, h))
		b.add(linearLayer(p+".attn.value", tokens, h, h))
		b.add(matmulLayer(p+".attn.scores", float64(cfg.batch), float64(cfg.seqLen), float64(cfg.seqLen), hf/float64(cfg.heads), float64(cfg.heads)))
		attnElems := float64(cfg.batch) * float64(cfg.heads) * float64(cfg.seqLen) * float64(cfg.seqLen)
		b.add(softmaxLayer(p+".attn.softmax", attnElems))
		b.add(pointwiseLayer(p+".attn.dropout", Dropout, attnElems))
		b.add(matmulLayer(p+".attn.context", float64(cfg.batch), float64(cfg.seqLen), hf/float64(cfg.heads), float64(cfg.seqLen), float64(cfg.heads)))
		b.add(linearLayer(p+".attn.output", tokens, h, h))
		b.add(pointwiseLayer(p+".attn.residual", Add, tf*hf))
		b.add(layerNormLayer(p+".attn.ln", tf*hf, h))
		b.add(linearLayer(p+".ffn.fc1", tokens, h, 4*h))
		b.add(geluLayer(p+".ffn.gelu", tf*4*hf))
		b.add(linearLayer(p+".ffn.fc2", tokens, 4*h, h))
		b.add(pointwiseLayer(p+".ffn.residual", Add, tf*hf))
		b.add(layerNormLayer(p+".ffn.ln", tf*hf, h))
	}

	b.add(linearLayer("qa_outputs", tokens, h, 2))
	b.add(lossLayer("loss", 2*tf))
	return b.done()
}

// layerNormLayer builds a layer normalization over n elements with
// per-channel gamma/beta of the given width.
func layerNormLayer(name string, n float64, width int) *Layer {
	return &Layer{
		Name:     name,
		Kind:     LayerNorm,
		Tensors:  []int64{int64(width), int64(width)},
		FLOPsFwd: 5 * n, BytesFwd: 3 * n * 4,
		FLOPsBwd: 7 * n, BytesBwd: 4 * n * 4,
		ActBytes: int64(n) * 4,
	}
}

// geluLayer builds a GeLU activation over n elements.
func geluLayer(name string, n float64) *Layer {
	return &Layer{
		Name:     name,
		Kind:     GeLU,
		FLOPsFwd: 8 * n, BytesFwd: 2 * n * 4,
		FLOPsBwd: 10 * n, BytesBwd: 3 * n * 4,
		ActBytes: int64(n) * 4,
	}
}

// BERTBase builds the 12-block, 768-hidden BERT-Base model for SQuAD at
// the given batch size and sequence length.
func BERTBase(batch, seqLen int) *Model {
	return buildBERT(bertConfig{
		name: "BERT-Base", blocks: 12, hidden: 768, heads: 12,
		vocab: 30522, maxPos: 512, batch: batch, seqLen: seqLen,
	})
}

// BERTLarge builds the 24-block, 1024-hidden BERT-Large model for SQuAD.
func BERTLarge(batch, seqLen int) *Model {
	return buildBERT(bertConfig{
		name: "BERT-Large", blocks: 24, hidden: 1024, heads: 16,
		vocab: 30522, maxPos: 512, batch: batch, seqLen: seqLen,
	})
}
