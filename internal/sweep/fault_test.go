package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"daydream/internal/core"
)

// leakCheck snapshots the goroutine count and returns an assertion that
// the count came back down — the worker-hygiene guarantee that no sweep
// goroutine outlives Run, even after cancellation or a panic.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		var after int
		for i := 0; i < 100; i++ {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before Run, %d after\n%s", before, after, buf[:n])
	}
}

// shrinkScenario is a timing-only (patch-tier) scenario.
func shrinkScenario(name string, factor float64) Scenario {
	return Scenario{
		Name: name,
		ScaleTransform: func(o *core.Overlay) error {
			for _, task := range o.Base().Select(core.OnGPUPred) {
				o.ScaleDuration(task, factor)
			}
			return nil
		},
	}
}

func TestSweepPreCanceledContext(t *testing.T) {
	checkLeaks := leakCheck(t)
	g := testGraph(30)
	var scenarios []Scenario
	for i := 0; i < 16; i++ {
		scenarios = append(scenarios, shrinkScenario(fmt.Sprintf("s%d", i), 0.9))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	results, err := Run(g, scenarios, Workers(4), WithContext(ctx))
	if err == nil || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("Run = %v, want ErrCanceled", err)
	}
	if len(results) != len(scenarios) {
		t.Fatalf("got %d rows, want %d (cancellation must not drop rows)", len(results), len(scenarios))
	}
	for i, r := range results {
		if !errors.Is(r.Err, core.ErrCanceled) || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("row %d: Err = %v, want ErrCanceled wrapping context.Canceled", i, r.Err)
		}
		if r.Name != scenarios[i].Name {
			t.Fatalf("row %d named %q, want %q", i, r.Name, scenarios[i].Name)
		}
	}
	checkLeaks()
}

func TestSweepCancelMidSweep(t *testing.T) {
	checkLeaks := leakCheck(t)
	g := testGraph(30)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var scenarios []Scenario
	for i := 0; i < 12; i++ {
		sc := shrinkScenario(fmt.Sprintf("s%d", i), 1.0-float64(i)/32)
		if i == 3 {
			// Cancel from inside scenario 3's measurement; with one
			// worker, everything after it must come back typed-canceled.
			sc.Measure = func(v core.TaskView, res *core.SimResult) (time.Duration, error) {
				cancel()
				return res.Makespan, nil
			}
		}
		scenarios = append(scenarios, sc)
	}

	results, err := Run(g, scenarios, Workers(1), WithContext(ctx))
	if err == nil || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("Run = %v, want ErrCanceled", err)
	}
	for i, r := range results {
		if i <= 3 {
			if r.Err != nil {
				t.Fatalf("row %d (before cancel): Err = %v", i, r.Err)
			}
		} else if !errors.Is(r.Err, core.ErrCanceled) {
			t.Fatalf("row %d (after cancel): Err = %v, want ErrCanceled", i, r.Err)
		}
	}
	checkLeaks()
}

func TestSweepDeadline(t *testing.T) {
	g := testGraph(30)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	results, err := Run(g, []Scenario{shrinkScenario("s0", 0.9)}, WithContext(ctx))
	if err == nil || !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("Run = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("row 0: Err = %v, want context.DeadlineExceeded", results[0].Err)
	}
}

func TestSweepFailFast(t *testing.T) {
	g := testGraph(30)
	boom := errors.New("boom")
	var scenarios []Scenario
	ran := make([]bool, 12)
	for i := 0; i < 12; i++ {
		i := i
		sc := shrinkScenario(fmt.Sprintf("s%d", i), 0.9)
		inner := sc.ScaleTransform
		sc.ScaleTransform = func(o *core.Overlay) error {
			ran[i] = true
			if i == 2 {
				return boom
			}
			return inner(o)
		}
		scenarios = append(scenarios, sc)
	}

	results, err := Run(g, scenarios, Workers(1), FailFast())
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want the triggering error", err)
	}
	if !errors.Is(results[2].Err, boom) {
		t.Fatalf("row 2: Err = %v, want boom", results[2].Err)
	}
	for i := 3; i < 12; i++ {
		if ran[i] {
			t.Fatalf("scenario %d ran despite FailFast", i)
		}
		if !errors.Is(results[i].Err, core.ErrCanceled) {
			t.Fatalf("row %d: Err = %v, want ErrCanceled", i, results[i].Err)
		}
	}

	// Default policy: collect-all — everything runs, same trigger error.
	for i := range ran {
		ran[i] = false
	}
	results, err = Run(g, scenarios, Workers(1))
	if !errors.Is(err, boom) {
		t.Fatalf("collect-all Run = %v, want boom", err)
	}
	for i := 0; i < 12; i++ {
		if !ran[i] {
			t.Fatalf("collect-all: scenario %d did not run", i)
		}
		if i != 2 && results[i].Err != nil {
			t.Fatalf("collect-all row %d: Err = %v", i, results[i].Err)
		}
	}
}

// panicSched panics inside Simulate's Pick, exercising recovery around
// the scheduler callback.
type panicSched struct{}

func (panicSched) Pick(frontier []*core.Task, ctx *core.SchedContext) int {
	panic("scheduler gone rogue")
}

func TestSweepPanicIsolation(t *testing.T) {
	checkLeaks := leakCheck(t)
	g := testGraph(40)

	clean := make([]Scenario, 0, 10)
	for i := 0; i < 10; i++ {
		clean = append(clean, shrinkScenario(fmt.Sprintf("s%d", i), 1.0-float64(i)/32))
	}
	want, err := Run(g, clean, Workers(1))
	if err != nil {
		t.Fatal(err)
	}

	// The same scenarios with panics injected mid-list: a panicking
	// transform, a panicking scheduler, and a panicking measurer, all
	// on the one worker whose buffers they poison.
	faults := []Scenario{
		{Name: "panic-transform", ScaleTransform: func(o *core.Overlay) error { panic("bad transform") }},
		{Name: "panic-sched", SimOptions: []core.SimOption{core.WithScheduler(panicSched{})}},
		{Name: "panic-measure", ScaleTransform: clean[0].ScaleTransform,
			Measure: func(v core.TaskView, res *core.SimResult) (time.Duration, error) { panic("bad measure") }},
	}
	mixed := make([]Scenario, 0, len(clean)+len(faults))
	mixed = append(mixed, clean[:5]...)
	mixed = append(mixed, faults...)
	mixed = append(mixed, clean[5:]...)

	results, err := Run(g, mixed, Workers(1))
	if err == nil || !errors.Is(err, ErrPanic) {
		t.Fatalf("Run = %v, want ErrPanic", err)
	}
	for fi := range faults {
		r := results[5+fi]
		if !errors.Is(r.Err, ErrPanic) {
			t.Fatalf("fault row %q: Err = %v, want ErrPanic", r.Name, r.Err)
		}
		var pe *PanicError
		if !errors.As(r.Err, &pe) || len(pe.Stack) == 0 {
			t.Fatalf("fault row %q: error %v carries no stack", r.Name, r.Err)
		}
		if r.Name != faults[fi].Name {
			t.Fatalf("fault row named %q, want %q", r.Name, faults[fi].Name)
		}
	}
	// Bit-equivalence across the quarantine: every clean scenario —
	// including those evaluated on the same worker after each panic —
	// matches the fault-free sweep exactly.
	for i := 0; i < 5; i++ {
		if results[i].Err != nil || results[i].Value != want[i].Value {
			t.Fatalf("pre-fault row %d = (%v, %v), want (%v, nil)", i, results[i].Value, results[i].Err, want[i].Value)
		}
	}
	for i := 5; i < 10; i++ {
		got := results[i+len(faults)]
		if got.Err != nil || got.Value != want[i].Value {
			t.Fatalf("post-fault row %d = (%v, %v), want (%v, nil): worker state survived quarantine poisoned", i, got.Value, got.Err, want[i].Value)
		}
	}
	checkLeaks()
}

func TestSweepPanicIsolationAcrossTiers(t *testing.T) {
	g := testGraph(40)
	// A structural patch scenario (patch tier) and a clone scenario
	// bracketing a panic, verifying quarantine on the structural paths
	// too.
	structural := Scenario{
		Name: "structural",
		Opt: core.PatchOpt("drop-first-kernel", core.Structural, func(p *core.Patch) error {
			kerns := p.Base().Select(core.OnGPUPred)
			p.RemoveTask(kerns[0])
			return nil
		}, nil),
	}
	cloneSc := scaleScenario("clone", 0.5)
	panicSc := Scenario{Name: "kaboom", ScaleTransform: func(o *core.Overlay) error { panic("x") }}

	want, err := Run(g, []Scenario{structural, cloneSc}, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, []Scenario{structural, panicSc, cloneSc, structural}, Workers(1))
	if err == nil || !errors.Is(err, ErrPanic) {
		t.Fatalf("Run = %v, want ErrPanic", err)
	}
	if got[0].Err != nil || got[0].Value != want[0].Value {
		t.Fatalf("structural row = (%v, %v), want (%v, nil)", got[0].Value, got[0].Err, want[0].Value)
	}
	if got[2].Err != nil || got[2].Value != want[1].Value {
		t.Fatalf("post-panic clone row = (%v, %v), want (%v, nil)", got[2].Value, got[2].Err, want[1].Value)
	}
	if got[3].Err != nil || got[3].Value != want[0].Value {
		t.Fatalf("post-panic structural row = (%v, %v), want (%v, nil)", got[3].Value, got[3].Err, want[0].Value)
	}
}
