// Package sweep answers many what-if questions from one profiled
// baseline concurrently — the scaling axis of Daydream's value
// proposition (Algorithm 1, §4–5): once a trace is collected and its
// dependency graph built, every additional prediction is a
// transformation and a simulation, and those are independent across
// scenarios.
//
// Run fans a scenario list out over a worker pool. The baseline graph
// is shared immutably, and a scenario takes one of three paths:
//
//   - Patch scenarios (an Opt value, or ScaleTransform) record
//     copy-on-write deltas in a worker-owned core.Patch and simulate
//     through it — zero clone for timing edits AND structural edits
//     (task/edge additions and removals). Timing-only patches keep the
//     pure-overlay fast path, and once a worker has seen two
//     timing-only scenarios against the same baseline it builds a
//     core.IncrementalSim and re-simulates only each delta's affected
//     cone (the incremental tier; see Result.Tier). Custom Schedulers —
//     scenario-supplied or carried by the optimization itself
//     (core.SchedulerCarrier, e.g. vDNN's copy-stream policy) — run
//     view-generically over the same patch, so scheduled structural
//     scenarios are clone-free too.
//   - Rewrite scenarios (a Transform, or an Opt that demands a
//     materialized graph: a core.GraphRewriter such as P3's Repeat, or
//     a legacy in-place transform) mutate a private Graph.Clone.
//   - Replay scenarios (no what-if at all, or a no-op Opt such as an
//     empty core.Stack) simulate the shared baseline directly, which
//     never mutates it.
//
// Scenarios should declare their what-if as a core.Optimization value
// in Opt — every value applies through the one Patch surface, so a
// core.Stack mixing timing-only and patch-form structural optimizations
// still runs clone-free; the sweep materializes a private graph only
// when a rewrite demands one. The manual Transform/ScaleTransform
// fields remain for one-off custom edits.
//
// Each worker owns one reusable core.SimScratch, one patch and one
// result buffer, so steady-state scenario evaluation allocates almost
// nothing. Results come back in scenario order regardless of worker
// count, and every scenario is deterministic, so a sweep is
// bit-identical to the equivalent sequential loop — and the patch path
// is bit-identical to the clone path for the same edits.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"daydream/internal/core"
)

// ErrPanic marks a scenario whose user callback (Optimization,
// Transform, Scheduler, Measure) panicked. The worker recovered, the
// panic became the scenario's Result.Err (a *PanicError carrying the
// value and stack), and the worker's reusable buffers were quarantined
// so later scenarios start from fresh state.
var ErrPanic = errors.New("sweep: scenario panicked")

// PanicError is a recovered scenario panic: the panic value and the
// goroutine stack at recovery. It unwraps to ErrPanic.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the worker goroutine's stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: scenario panicked: %v\n%s", e.Value, e.Stack)
}

// Unwrap makes errors.Is(err, ErrPanic) true.
func (e *PanicError) Unwrap() error { return ErrPanic }

// Scenario is one what-if question: a transformation of the baseline
// graph, an optional scheduling policy, and an optional metric to
// extract from the simulation.
type Scenario struct {
	// Name labels the scenario in results; it always wins over the
	// optimization's own name — when empty and Opt is set, the
	// optimization's Name() fills in.
	Name string
	// Base optionally overrides the sweep-wide baseline for this
	// scenario — e.g. a per-model profile in a models × configs grid.
	Base *core.Graph
	// Opt is the preferred way to declare the scenario's what-if: a
	// self-describing core.Optimization value. Every value applies
	// through a worker-owned core.Patch over the shared baseline —
	// timing-only and patch-form structural optimizations alike run
	// clone-free; only values that demand a materialized graph (a
	// core.GraphRewriter such as P3's Repeat form, or a legacy in-place
	// transform) get a private clone, and a known no-op (an empty
	// core.Stack) replays the baseline without cloning. An optimization
	// carrying its own metric (P3) supplies the Measure unless the
	// scenario sets one. Setting Opt together with Transform or
	// ScaleTransform is an error.
	Opt core.Optimization
	// Transform mutates the scenario's private clone, or returns a
	// different graph to simulate (e.g. a Repeat-expanded one). A nil
	// Transform with a nil ScaleTransform and a nil Opt replays the
	// baseline unchanged (without cloning — Simulate never mutates).
	// Prefer Opt for anything expressible as an Optimization value;
	// Transform remains for one-off custom structural edits.
	Transform func(g *core.Graph) (*core.Graph, error)
	// ScaleTransform declares a duration-only what-if as a function of
	// the patch's timing tier: the scenario edits per-task durations,
	// gaps and priorities through the copy-on-write overlay over the
	// shared baseline. Prefer Opt for anything expressible as an
	// Optimization value. Setting both Transform and ScaleTransform is
	// an error.
	ScaleTransform func(o *core.Overlay) error
	// SimOptions are extra simulation options (e.g. a custom scheduler,
	// which runs view-generically over the worker's patch — clone-free —
	// and overrides any policy the Opt itself carries).
	SimOptions []core.SimOption
	// Measure extracts the scenario's value from the simulation; nil
	// means the makespan (the predicted iteration time). The TaskView
	// is whatever the simulation ran over — the shared baseline for
	// replay scenarios, the worker's Patch for patch scenarios, the
	// transformed private graph for rewrite scenarios — and MUST be
	// treated as read-only; read effective timings through the
	// SimResult (Finish, TaskDuration), never from Task fields. Unless
	// KeepSims is set, the SimResult's storage is reused for the
	// worker's next scenario, so Measure must not retain it (nor a
	// Patch view's Tasks() slice).
	Measure func(v core.TaskView, res *core.SimResult) (time.Duration, error)
}

// Dispatch tiers a scenario can be evaluated on, cheapest first. They
// are reported in Result.Tier and printed by `daydream sweep -explain`.
const (
	// TierReplay: no what-if at all; the shared baseline is simulated
	// in place.
	TierReplay = "replay"
	// TierIncremental: a timing-only delta re-simulated from the
	// worker's warm schedule, recomputing only the affected cone.
	TierIncremental = "incremental"
	// TierOverlay: a timing-only delta cold-simulated through the
	// copy-on-write overlay (no warm state yet, a custom scheduler, or
	// a delta the incremental schedule cannot model).
	TierOverlay = "overlay"
	// TierPatch: structural copy-on-write deltas simulated through the
	// composite patch view.
	TierPatch = "patch"
	// TierClone: a graph-replacing rewrite evaluated on a private
	// clone — the only tier that pays for a full copy.
	TierClone = "clone"
)

// Result is one scenario's outcome, delivered in scenario order.
type Result struct {
	// Name echoes the scenario label (Scenario.Name when set, the
	// optimization's name otherwise) — including on error results.
	Name string
	// Tier is the dispatch tier the scenario was evaluated on (one of
	// the Tier… constants), explaining its cost; empty on pre-dispatch
	// errors.
	Tier string
	// Value is the measured prediction (makespan unless the scenario
	// set a Measure).
	Value time.Duration
	// Graph is the transformed graph, retained only under KeepGraphs,
	// and always private to the caller: replay scenarios retain a
	// clone of the baseline, and patch scenarios retain a materialized
	// clone carrying the patch's timing and structural deltas.
	Graph *core.Graph
	// Sim is the simulation result, retained only under KeepSims.
	Sim *core.SimResult
	// Err is the scenario's failure, if any.
	Err error
}

type config struct {
	workers    int
	keepGraphs bool
	keepSims   bool
	ctx        context.Context
	failFast   bool
	pool       *Pool
}

// Option configures a sweep.
type Option func(*config)

// Workers caps the worker pool; values below 1 select GOMAXPROCS.
func Workers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithContext bounds the sweep by ctx: once it is canceled (or its
// deadline passes), in-flight simulations abort at their next periodic
// check and every not-yet-evaluated scenario returns a typed
// core.ErrCanceled/core.ErrDeadlineExceeded result row instead of
// running. Run still returns the full scenario-ordered result slice —
// cancellation produces error rows, never missing rows — and the pool
// always drains before Run returns, so no goroutines outlive the call.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// FailFast switches the error policy from collect-all (the default:
// every scenario runs, errors land in their rows) to stop-on-first:
// the first scenario error cancels the sweep's context, turning the
// remaining scenarios into core.ErrCanceled rows. The triggering error
// is still the one Run returns, as it stays first in scenario order
// among non-cancellation failures.
func FailFast() Option {
	return func(c *config) { c.failFast = true }
}

// KeepGraphs retains each scenario's transformed graph in its Result.
// Off by default: a large sweep would otherwise hold every clone alive.
func KeepGraphs() Option {
	return func(c *config) { c.keepGraphs = true }
}

// KeepSims retains each scenario's SimResult in its Result.
func KeepSims() Option {
	return func(c *config) { c.keepSims = true }
}

// Pool retains sweep worker state across Run calls, for long-lived
// callers that answer many small batteries against recurring baselines
// — a prediction service evaluating one scenario per request, or a
// driver issuing grids in a loop. A plain Run builds each worker's
// reusable buffers (simulation scratch, copy-on-write patch, result
// buffer, warm incremental schedule) fresh and discards them when the
// call returns; Pool.Run checks workers out of a free list instead, so
// the buffers — including the incremental tier's warm baseline
// schedule, the expensive one — survive from one call to the next.
// With a pooled worker, a single timing-only scenario against a
// baseline the pool has seen before rides the incremental tier
// immediately instead of paying a cold overlay replay.
//
// A Pool is safe for concurrent use: concurrent Run calls check out
// disjoint workers, and a worker whose scenario panicked was
// quarantined (its buffers replaced) before being returned, so
// poisoned state never crosses calls. When the free list is empty a
// fresh worker is built on demand; at most maxIdle workers are
// retained when calls finish.
type Pool struct {
	mu   sync.Mutex
	free []*worker
	max  int
}

// NewPool builds a worker-state pool retaining at most maxIdle idle
// workers; values below 1 select GOMAXPROCS.
func NewPool(maxIdle int) *Pool {
	if maxIdle < 1 {
		maxIdle = runtime.GOMAXPROCS(0)
	}
	return &Pool{max: maxIdle}
}

// Run is Run with this pool's reusable worker state. Options and
// semantics are identical to the package-level Run.
func (p *Pool) Run(baseline *core.Graph, scenarios []Scenario, opts ...Option) ([]Result, error) {
	merged := make([]Option, 0, len(opts)+1)
	merged = append(merged, opts...)
	merged = append(merged, func(c *config) { c.pool = p })
	return Run(baseline, scenarios, merged...)
}

// get checks a worker out of the free list, building one when empty.
func (p *Pool) get() *worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		w := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return w
	}
	return &worker{scratch: core.NewSimScratch()}
}

// put returns a worker to the free list, dropping it when the list is
// at capacity.
func (p *Pool) put(w *worker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < p.max {
		p.free = append(p.free, w)
	}
}

// worker is the per-goroutine reusable state: the simulation scratch,
// the copy-on-write patch for clone-free scenarios, the result buffer
// reused when results are not retained, and the incremental tier's warm
// state.
type worker struct {
	scratch *core.SimScratch
	patch   *core.Patch
	buf     *core.SimResult
	// incr is the worker's warm incremental simulator; incrBase arms
	// the lazy build. A warm build costs one cold simulation, so it
	// only pays off when a baseline recurs: the first timing-only
	// scenario against a baseline runs cold and arms, the second
	// builds, and later ones ride the warm schedule. One-off baselines
	// (a models × configs grid with per-scenario Base) never build.
	incr     *core.IncrementalSim
	incrBase *core.Graph
}

// quarantine discards every reusable buffer the worker owns. It runs
// after a recovered panic: a callback that panicked mid-edit can leave
// the patch, overlay, incremental warm state, scratch or result buffer
// in an arbitrary half-written state, and no invariant of theirs can be
// trusted afterwards. The replacements are rebuilt lazily by the next
// scenario, so one poisoned scenario costs one round of reallocation —
// never a corrupted later row (the shared baseline itself is immutable
// to the patch path and cannot be poisoned).
func (w *worker) quarantine() {
	w.scratch = core.NewSimScratch()
	w.patch = nil
	w.buf = nil
	w.incr = nil
	w.incrBase = nil
}

// simTimingOnly evaluates the worker's (timing-only) patch on the
// incremental tier when warm state for base exists or is now justified,
// and on the cold overlay path otherwise. It returns the simulation
// result and the dispatch tier taken.
func (w *worker) simTimingOnly(base *core.Graph, hasSched bool, simOpts []core.SimOption) (*core.SimResult, string, error) {
	// A custom scheduler can't ride the incremental tier (ReSimulate
	// would fall straight through to cold anyway) — and must not arm
	// the lazy build, whose warm simulation it could never use. The
	// same goes for a dense delta (one past the overlay's dense-storage
	// crossover, e.g. AMP rescaling half the graph): its affected cone
	// is the whole schedule, so it rides the overlay path and neither
	// arms nor consumes warm state. A sparse delta can have the same
	// shape — a few edits at the very front of the iteration invalidate
	// almost the whole warm schedule — so the estimated cone is checked
	// too: near-total cones (over ~3/4 of the span) take the overlay
	// replay instead of arming warm state their re-simulation could not
	// profit from.
	if !hasSched && !w.patch.Timing().DenseEdits() && !nearTotalCone(w.patch.Timing()) {
		if w.incr == nil || w.incr.Baseline() != base {
			if w.incrBase != base {
				w.incrBase = base
			} else if incr, err := core.NewIncrementalSim(base); err == nil {
				w.incr = incr
			}
			// A failed warm build (a cyclic graph) falls through: the
			// cold path below reports the same error to the caller.
		}
		if w.incr != nil && w.incr.Baseline() == base {
			res, err := w.incr.ReSimulate(w.patch, simOpts...)
			tier := TierIncremental
			if w.incr.LastFellBack() {
				tier = TierOverlay
			}
			return res, tier, err
		}
	}
	res, err := w.patch.Simulate(simOpts...)
	return res, TierOverlay, err
}

// nearTotalCone reports whether the overlay delta's estimated affected
// cone covers more than ~3/4 of the baseline's task span — the
// tier-chooser threshold past which incremental re-simulation is
// expected to recompute nearly everything and overlay replay wins.
func nearTotalCone(o *core.Overlay) bool {
	cone, total := o.EstimateConeSize()
	return total > 0 && cone*4 > total*3
}

// Run executes every scenario against the shared baseline (or the
// scenario's own Base) on a worker pool and returns the results in
// scenario order. The returned error is the first scenario error in
// scenario order, if any (preferring non-cancellation failures, so a
// FailFast trigger is reported rather than the rows it canceled);
// per-scenario errors are also in the results.
//
// The baseline (and any scenario Base) must not be mutated while the
// sweep runs; the sweep itself clones it only for rewrite transforms.
//
// Fault-tolerance contract: a scenario whose callback panics yields
// exactly one *PanicError row and quarantines that worker's reusable
// buffers (see ErrPanic); a canceled WithContext yields typed
// cancellation rows for everything not yet evaluated; in every case
// the pool drains fully before Run returns — no goroutine outlives it.
func Run(baseline *core.Graph, scenarios []Scenario, opts ...Option) ([]Result, error) {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]Result, len(scenarios))
	if len(scenarios) == 0 {
		return results, nil
	}

	// FailFast needs a context it can cancel even when the caller
	// supplied none; a caller context is wrapped so the trigger cannot
	// cancel the caller's own.
	ctx, cancel := cfg.ctx, func() {}
	if cfg.failFast {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithCancel(ctx)
	}
	cfg.ctx = ctx
	defer cancel()

	// The jobs channel is buffered for the whole scenario list, so the
	// producer enqueues everything up front and never interleaves with
	// the workers' draining.
	jobs := make(chan int, len(scenarios))
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &worker{scratch: core.NewSimScratch()}
			if cfg.pool != nil {
				w = cfg.pool.get()
				defer cfg.pool.put(w)
			}
			for i := range jobs {
				// A canceled sweep converts the remaining queue into
				// typed rows without evaluating anything further.
				if ctx != nil {
					if cerr := ctx.Err(); cerr != nil {
						results[i] = Result{Name: nameOf(&scenarios[i]), Err: core.ContextError(cerr)}
						continue
					}
				}
				results[i] = runOneSafe(baseline, &scenarios[i], w, &cfg)
				if cfg.failFast && results[i].Err != nil {
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	firstErr := -1
	for i := range results {
		if results[i].Err == nil {
			continue
		}
		if firstErr < 0 {
			firstErr = i
		}
		if !errors.Is(results[i].Err, core.ErrCanceled) && !errors.Is(results[i].Err, core.ErrDeadlineExceeded) {
			firstErr = i
			break
		}
	}
	if firstErr >= 0 {
		return results, fmt.Errorf("sweep: scenario %d (%s): %w", firstErr, results[firstErr].Name, results[firstErr].Err)
	}
	return results, nil
}

// nameOf resolves the result label for a scenario that was never
// evaluated, with runOne's precedence: Scenario.Name, then the
// optimization's own name.
func nameOf(sc *Scenario) string {
	if sc.Name != "" {
		return sc.Name
	}
	if sc.Opt != nil {
		return sc.Opt.Name()
	}
	return ""
}

// runOneSafe runs one scenario with panic isolation: a panic in any
// user callback — Optimization.Apply, Transform, ScaleTransform, a
// custom Scheduler picking inside Simulate, Measure — is recovered
// into a *PanicError result row, and the worker's reusable state is
// quarantined before the next scenario.
func runOneSafe(baseline *core.Graph, sc *Scenario, w *worker, cfg *config) (r Result) {
	defer func() {
		if v := recover(); v != nil {
			r = Result{Name: nameOf(sc), Err: &PanicError{Value: v, Stack: debug.Stack()}}
			w.quarantine()
		}
	}()
	return runOne(baseline, sc, w, cfg)
}

// runOne evaluates a single scenario with the worker-owned state.
func runOne(baseline *core.Graph, sc *Scenario, w *worker, cfg *config) Result {
	// Name precedence is fixed up front so every result — including
	// error results below — carries the scenario's own Name when set.
	r := Result{Name: sc.Name}
	if r.Name == "" && sc.Opt != nil {
		r.Name = sc.Opt.Name()
	}
	base := sc.Base
	if base == nil {
		base = baseline
	}
	if base == nil {
		r.Err = fmt.Errorf("no baseline graph (neither sweep-wide nor scenario Base)")
		return r
	}
	if sc.Transform != nil && sc.ScaleTransform != nil {
		r.Err = fmt.Errorf("scenario sets both Transform and ScaleTransform")
		return r
	}
	if sc.Opt != nil && (sc.Transform != nil || sc.ScaleTransform != nil) {
		r.Err = fmt.Errorf("scenario sets Opt together with Transform/ScaleTransform")
		return r
	}

	// Resolve the scenario's what-if onto the unified evaluation paths:
	// one patch branch for every Opt (and ScaleTransform), a rewrite
	// branch only when a transform demands a materialized graph, and
	// the replay fast path for no-ops.
	measure := sc.Measure
	var patchApply func(*core.Patch) error
	transform := sc.Transform
	if st := sc.ScaleTransform; st != nil {
		patchApply = func(p *core.Patch) error { return st(p.Timing()) }
	}
	if opt := sc.Opt; opt != nil {
		if measure == nil {
			measure = core.OptMeasure(opt)
		}
		switch {
		case core.OptIsNoop(opt):
			// Replay path: nothing to apply.
		case core.OptNeedsGraph(opt):
			transform = func(c *core.Graph) (*core.Graph, error) {
				return core.ApplyOptimization(c, opt)
			}
		default:
			patchApply = opt.Apply
		}
	}

	simOpts := make([]core.SimOption, 0, len(sc.SimOptions)+4)
	// The sweep's context rides into every simulation tier, so an
	// in-flight scenario aborts at the next periodic check — last in
	// precedence order would not matter, but appending it first keeps a
	// scenario-supplied WithContext (via SimOptions) authoritative.
	if cfg.ctx != nil {
		simOpts = append(simOpts, core.WithContext(cfg.ctx))
	}
	// An optimization carrying its own scheduling policy (vDNN's
	// delayed-prefetch ordering) supplies it first, so an explicit
	// WithScheduler in the scenario's SimOptions still wins.
	if sc.Opt != nil {
		if s := core.OptScheduler(sc.Opt); s != nil {
			simOpts = append(simOpts, core.WithScheduler(s))
		}
	}
	simOpts = append(simOpts, sc.SimOptions...)
	simOpts = append(simOpts, core.WithScratch(w.scratch))
	if !cfg.keepSims {
		if w.buf == nil {
			w.buf = &core.SimResult{}
		}
		simOpts = append(simOpts, core.WithResultBuffer(w.buf))
	}

	var (
		view core.TaskView
		res  *core.SimResult
		err  error
	)
	switch {
	case patchApply != nil:
		// Clone-free path: timing and structural deltas over the
		// shared baseline through the worker-owned patch.
		if w.patch == nil {
			w.patch = core.NewPatch(base)
		} else {
			w.patch.Reset(base)
		}
		if err = patchApply(w.patch); err != nil {
			r.Err = err
			return r
		}
		view = w.patch
		if w.patch.Structural() {
			r.Tier = TierPatch
			res, err = w.patch.Simulate(simOpts...)
		} else {
			hasSched := core.SchedulerOf(simOpts...) != nil
			res, r.Tier, err = w.simTimingOnly(base, hasSched, simOpts)
		}
	case transform != nil:
		// Rewrite path: a private clone to mutate or replace.
		g := base.Clone()
		g, err = transform(g)
		if err != nil {
			r.Err = err
			return r
		}
		if g == nil {
			r.Err = fmt.Errorf("transform returned a nil graph")
			return r
		}
		view = g
		r.Tier = TierClone
		res, err = g.Simulate(simOpts...)
	default:
		// Replay path: Simulate never mutates, so the baseline is
		// simulated in place and handed to Measure read-only. Cloning
		// still happens under KeepGraphs, where the caller receives a
		// graph it may legally mutate.
		view = base
		r.Tier = TierReplay
		res, err = base.Simulate(simOpts...)
	}
	if err != nil {
		r.Err = err
		return r
	}
	if measure != nil {
		r.Value, r.Err = measure(view, res)
		if r.Err != nil {
			return r
		}
	} else {
		r.Value = res.Makespan
	}
	if cfg.keepGraphs {
		switch {
		case patchApply != nil:
			// Honor the private-graph contract: hand back a clone
			// carrying the patch's timing and structural deltas, never
			// the shared baseline.
			r.Graph, r.Err = w.patch.Materialize()
			if r.Err != nil {
				return r
			}
		case transform != nil:
			r.Graph = view.(*core.Graph)
		default:
			r.Graph = base.Clone()
		}
	}
	if cfg.keepSims {
		r.Sim = res
	}
	return r
}
