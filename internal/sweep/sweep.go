// Package sweep answers many what-if questions from one profiled
// baseline concurrently — the scaling axis of Daydream's value
// proposition (Algorithm 1, §4–5): once a trace is collected and its
// dependency graph built, every additional prediction is a
// transformation and a simulation, and those are independent across
// scenarios.
//
// Run fans a scenario list out over a worker pool. The baseline graph
// is shared immutably, and a scenario takes one of three paths:
//
//   - Duration-only scenarios (a TimingOnly Opt, or ScaleTransform)
//     record copy-on-write timing deltas in a worker-owned core.Overlay
//     and simulate through it — zero clone, near-zero allocation per
//     scenario.
//   - Structural scenarios (a Structural Opt, or Transform) mutate a
//     private Graph.Clone as before.
//   - Replay scenarios (no what-if at all, or a no-op Opt such as an
//     empty core.Stack) simulate the shared baseline directly, which
//     never mutates it.
//
// Scenarios should declare their what-if as a core.Optimization value
// in Opt — the sweep picks the cheapest valid path from the value's
// footprint, so a core.Stack of timing-only optimizations still runs
// clone-free. The manual Transform/ScaleTransform fields remain for
// one-off custom edits.
//
// Each worker owns one reusable core.SimScratch, one overlay and one
// result buffer, so steady-state scenario evaluation allocates almost
// nothing. Results come back in scenario order regardless of worker
// count, and every scenario is deterministic, so a sweep is
// bit-identical to the equivalent sequential loop — and the overlay
// path is bit-identical to the clone path for the same timing edits.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"daydream/internal/core"
)

// Scenario is one what-if question: a transformation of the baseline
// graph, an optional scheduling policy, and an optional metric to
// extract from the simulation.
type Scenario struct {
	// Name labels the scenario in results; when empty and Opt is set,
	// the optimization's own name is used.
	Name string
	// Base optionally overrides the sweep-wide baseline for this
	// scenario — e.g. a per-model profile in a models × configs grid.
	Base *core.Graph
	// Opt is the preferred way to declare the scenario's what-if: a
	// self-describing core.Optimization value. The sweep dispatches on
	// its footprint — timing-only optimizations (and stacks of them)
	// ride the clone-free overlay path, structural ones get a private
	// clone, and a known no-op (an empty core.Stack) replays the
	// baseline without cloning. An optimization carrying its own metric
	// (P3) supplies the Measure unless the scenario sets one. A Measure
	// paired with a timing-only Opt follows the overlay contract
	// documented on Measure: it receives the shared read-only baseline
	// and reads effective timings through the SimResult. Setting Opt
	// together with Transform or ScaleTransform is an error.
	Opt core.Optimization
	// Transform mutates the scenario's private clone, or returns a
	// different graph to simulate (e.g. a Repeat-expanded one). A nil
	// Transform with a nil ScaleTransform and a nil Opt replays the
	// baseline unchanged (without cloning — Simulate never mutates).
	// Prefer Opt for anything expressible as an Optimization value;
	// Transform remains for one-off custom structural edits.
	Transform func(g *core.Graph) (*core.Graph, error)
	// ScaleTransform declares a duration-only footprint: the scenario
	// edits per-task durations, gaps and priorities through a
	// copy-on-write overlay over the shared baseline instead of
	// mutating a clone. Scenarios that never touch graph structure
	// (AMP, kernel profiles, device upgrades, bandwidth/duration
	// grids) should prefer this path — it skips the clone entirely.
	// Prefer Opt for anything expressible as an Optimization value.
	// Setting both Transform and ScaleTransform is an error.
	ScaleTransform func(o *core.Overlay) error
	// SimOptions are extra simulation options (e.g. a custom scheduler).
	SimOptions []core.SimOption
	// Measure extracts the scenario's value from the simulation; nil
	// means the makespan (the predicted iteration time). For overlay
	// scenarios the graph argument is the shared (unmutated) baseline
	// and MUST be treated as read-only; read effective timings through
	// the SimResult (Finish, TaskDuration), never from Task fields.
	// Replay scenarios (no transform at all) keep the old contract — a
	// Measure there receives a private clone it may mutate. Unless
	// KeepSims is set, the SimResult's storage is reused for the
	// worker's next scenario, so Measure must not retain it.
	Measure func(g *core.Graph, res *core.SimResult) (time.Duration, error)
}

// Result is one scenario's outcome, delivered in scenario order.
type Result struct {
	// Name echoes the scenario label.
	Name string
	// Value is the measured prediction (makespan unless the scenario
	// set a Measure).
	Value time.Duration
	// Graph is the transformed graph, retained only under KeepGraphs,
	// and always private to the caller: replay scenarios retain a
	// clone of the baseline, and overlay scenarios retain a
	// materialized clone carrying the overlay's effective timings.
	Graph *core.Graph
	// Sim is the simulation result, retained only under KeepSims.
	Sim *core.SimResult
	// Err is the scenario's failure, if any.
	Err error
}

type config struct {
	workers    int
	keepGraphs bool
	keepSims   bool
}

// Option configures a sweep.
type Option func(*config)

// Workers caps the worker pool; values below 1 select GOMAXPROCS.
func Workers(n int) Option {
	return func(c *config) { c.workers = n }
}

// KeepGraphs retains each scenario's transformed graph in its Result.
// Off by default: a large sweep would otherwise hold every clone alive.
func KeepGraphs() Option {
	return func(c *config) { c.keepGraphs = true }
}

// KeepSims retains each scenario's SimResult in its Result.
func KeepSims() Option {
	return func(c *config) { c.keepSims = true }
}

// worker is the per-goroutine reusable state: the simulation scratch,
// the copy-on-write overlay for duration-only scenarios, and the result
// buffer reused when results are not retained.
type worker struct {
	scratch *core.SimScratch
	overlay *core.Overlay
	buf     *core.SimResult
}

// Run executes every scenario against the shared baseline (or the
// scenario's own Base) on a worker pool and returns the results in
// scenario order. The returned error is the first scenario error in
// scenario order, if any; per-scenario errors are also in the results.
//
// The baseline (and any scenario Base) must not be mutated while the
// sweep runs; the sweep itself clones it only for structural
// transforms.
func Run(baseline *core.Graph, scenarios []Scenario, opts ...Option) ([]Result, error) {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]Result, len(scenarios))
	if len(scenarios) == 0 {
		return results, nil
	}

	// The jobs channel is buffered for the whole scenario list, so the
	// producer enqueues everything up front and never interleaves with
	// the workers' draining.
	jobs := make(chan int, len(scenarios))
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := worker{scratch: core.NewSimScratch()}
			for i := range jobs {
				results[i] = runOne(baseline, &scenarios[i], &w, &cfg)
			}
		}()
	}
	wg.Wait()

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("sweep: scenario %d (%s): %w", i, results[i].Name, results[i].Err)
		}
	}
	return results, nil
}

// runOne evaluates a single scenario with the worker-owned state.
func runOne(baseline *core.Graph, sc *Scenario, w *worker, cfg *config) Result {
	r := Result{Name: sc.Name}
	if r.Name == "" && sc.Opt != nil {
		r.Name = sc.Opt.Name()
	}
	base := sc.Base
	if base == nil {
		base = baseline
	}
	if base == nil {
		r.Err = fmt.Errorf("no baseline graph (neither sweep-wide nor scenario Base)")
		return r
	}
	if sc.Transform != nil && sc.ScaleTransform != nil {
		r.Err = fmt.Errorf("scenario sets both Transform and ScaleTransform")
		return r
	}
	if sc.Opt != nil && (sc.Transform != nil || sc.ScaleTransform != nil) {
		r.Err = fmt.Errorf("scenario sets Opt together with Transform/ScaleTransform")
		return r
	}

	// Resolve the scenario's what-if into the three evaluation paths.
	// An Optimization value dispatches on its footprint; a known no-op
	// (empty stack) leaves both nil and takes the replay fast path.
	measure := sc.Measure
	scale := sc.ScaleTransform
	transform := sc.Transform
	if opt := sc.Opt; opt != nil {
		if measure == nil {
			measure = core.OptMeasure(opt)
		}
		switch {
		case core.OptIsNoop(opt):
			// Replay path: nothing to apply.
		case opt.Footprint() == core.TimingOnly:
			scale = opt.ApplyOverlay
		default:
			transform = func(c *core.Graph) (*core.Graph, error) {
				return core.ApplyOptimization(c, opt)
			}
		}
	}

	simOpts := make([]core.SimOption, 0, len(sc.SimOptions)+2)
	simOpts = append(simOpts, sc.SimOptions...)
	simOpts = append(simOpts, core.WithScratch(w.scratch))
	if !cfg.keepSims {
		if w.buf == nil {
			w.buf = &core.SimResult{}
		}
		simOpts = append(simOpts, core.WithResultBuffer(w.buf))
	}

	var (
		g   *core.Graph
		res *core.SimResult
		err error
	)
	switch {
	case scale != nil:
		// Clone-free path: timing deltas over the shared baseline.
		if w.overlay == nil {
			w.overlay = core.NewOverlay(base)
		} else {
			w.overlay.Reset(base)
		}
		if err = scale(w.overlay); err != nil {
			r.Err = err
			return r
		}
		g = base
		res, err = w.overlay.Simulate(simOpts...)
	case transform != nil:
		// Structural path: a private clone to mutate.
		g = base.Clone()
		g, err = transform(g)
		if err != nil {
			r.Err = err
			return r
		}
		if g == nil {
			r.Err = fmt.Errorf("transform returned a nil graph")
			return r
		}
		res, err = g.Simulate(simOpts...)
	default:
		// Replay path: Simulate never mutates, so the baseline is
		// simulated in place. Cloning still happens where a caller
		// could observe (and legally mutate) the graph: under
		// KeepGraphs, and when a Measure is set (Measure historically
		// received a private clone).
		g = base
		if cfg.keepGraphs || measure != nil {
			g = base.Clone()
		}
		res, err = g.Simulate(simOpts...)
	}
	if err != nil {
		r.Err = err
		return r
	}
	if measure != nil {
		r.Value, r.Err = measure(g, res)
		if r.Err != nil {
			return r
		}
	} else {
		r.Value = res.Makespan
	}
	if cfg.keepGraphs {
		if scale != nil {
			// Honor the private-graph contract: hand back a clone
			// carrying the overlay's effective timings, never the
			// shared baseline.
			r.Graph = w.overlay.Materialize()
		} else {
			r.Graph = g
		}
	}
	if cfg.keepSims {
		r.Sim = res
	}
	return r
}
