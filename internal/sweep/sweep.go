// Package sweep answers many what-if questions from one profiled
// baseline concurrently — the scaling axis of Daydream's value
// proposition (Algorithm 1, §4–5): once a trace is collected and its
// dependency graph built, every additional prediction is a graph clone,
// a transformation and a simulation, and those are independent across
// scenarios.
//
// Run fans a scenario list out over a worker pool. The baseline graph is
// shared immutably: Graph.Clone never mutates its receiver, so workers
// clone concurrently without locking; each worker owns one reusable
// core.SimScratch so steady-state simulation allocates almost nothing.
// Results come back in scenario order regardless of worker count, and
// every scenario is deterministic, so a sweep is bit-identical to the
// equivalent sequential loop.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"daydream/internal/core"
)

// Scenario is one what-if question: a transformation of a private clone
// of the baseline graph, an optional scheduling policy, and an optional
// metric to extract from the simulation.
type Scenario struct {
	// Name labels the scenario in results.
	Name string
	// Base optionally overrides the sweep-wide baseline for this
	// scenario — e.g. a per-model profile in a models × configs grid.
	Base *core.Graph
	// Transform mutates the scenario's private clone, or returns a
	// different graph to simulate (e.g. a Repeat-expanded one). A nil
	// Transform replays the baseline unchanged.
	Transform func(g *core.Graph) (*core.Graph, error)
	// SimOptions are extra simulation options (e.g. a custom scheduler).
	SimOptions []core.SimOption
	// Measure extracts the scenario's value from the simulation; nil
	// means the makespan (the predicted iteration time).
	Measure func(g *core.Graph, res *core.SimResult) (time.Duration, error)
}

// Result is one scenario's outcome, delivered in scenario order.
type Result struct {
	// Name echoes the scenario label.
	Name string
	// Value is the measured prediction (makespan unless the scenario
	// set a Measure).
	Value time.Duration
	// Graph is the transformed graph, retained only under KeepGraphs.
	Graph *core.Graph
	// Sim is the simulation result, retained only under KeepSims.
	Sim *core.SimResult
	// Err is the scenario's failure, if any.
	Err error
}

type config struct {
	workers    int
	keepGraphs bool
	keepSims   bool
}

// Option configures a sweep.
type Option func(*config)

// Workers caps the worker pool; values below 1 select GOMAXPROCS.
func Workers(n int) Option {
	return func(c *config) { c.workers = n }
}

// KeepGraphs retains each scenario's transformed graph in its Result.
// Off by default: a large sweep would otherwise hold every clone alive.
func KeepGraphs() Option {
	return func(c *config) { c.keepGraphs = true }
}

// KeepSims retains each scenario's SimResult in its Result.
func KeepSims() Option {
	return func(c *config) { c.keepSims = true }
}

// Run executes every scenario against the shared baseline (or the
// scenario's own Base) on a worker pool and returns the results in
// scenario order. The returned error is the first scenario error in
// scenario order, if any; per-scenario errors are also in the results.
//
// The baseline (and any scenario Base) must not be mutated while the
// sweep runs; the sweep itself only clones them.
func Run(baseline *core.Graph, scenarios []Scenario, opts ...Option) ([]Result, error) {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]Result, len(scenarios))
	if len(scenarios) == 0 {
		return results, nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := core.NewSimScratch()
			for i := range jobs {
				results[i] = runOne(baseline, &scenarios[i], scratch, &cfg)
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("sweep: scenario %d (%s): %w", i, results[i].Name, results[i].Err)
		}
	}
	return results, nil
}

// runOne evaluates a single scenario with a worker-owned scratch.
func runOne(baseline *core.Graph, sc *Scenario, scratch *core.SimScratch, cfg *config) Result {
	r := Result{Name: sc.Name}
	base := sc.Base
	if base == nil {
		base = baseline
	}
	if base == nil {
		r.Err = fmt.Errorf("no baseline graph (neither sweep-wide nor scenario Base)")
		return r
	}
	g := base.Clone()
	if sc.Transform != nil {
		var err error
		g, err = sc.Transform(g)
		if err != nil {
			r.Err = err
			return r
		}
		if g == nil {
			r.Err = fmt.Errorf("transform returned a nil graph")
			return r
		}
	}
	simOpts := make([]core.SimOption, 0, len(sc.SimOptions)+1)
	simOpts = append(simOpts, sc.SimOptions...)
	simOpts = append(simOpts, core.WithScratch(scratch))
	res, err := g.Simulate(simOpts...)
	if err != nil {
		r.Err = err
		return r
	}
	if sc.Measure != nil {
		r.Value, r.Err = sc.Measure(g, res)
		if r.Err != nil {
			return r
		}
	} else {
		r.Value = res.Makespan
	}
	if cfg.keepGraphs {
		r.Graph = g
	}
	if cfg.keepSims {
		r.Sim = res
	}
	return r
}
