package sweep

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"daydream/internal/core"
)

// singleTaskScenarios builds n sparse timing-only scenarios (one task's
// duration nudged per scenario) — the shape the incremental tier is
// built for. Targets come from the tail of the graph so the deltas'
// affected cones stay small; front edits would correctly be routed to
// overlay replay by the tier chooser's cone estimate.
func singleTaskScenarios(g *core.Graph, n int) []Scenario {
	tasks := g.Tasks()
	scenarios := make([]Scenario, n)
	for i := range scenarios {
		u := tasks[len(tasks)-1-(i%len(tasks))]
		delta := time.Duration(i+1) * time.Microsecond
		scenarios[i] = Scenario{
			ScaleTransform: func(o *core.Overlay) error {
				o.SetDuration(u, o.Duration(u)+delta)
				return nil
			},
		}
	}
	return scenarios
}

// TestPoolWarmStateSurvivesRuns pins the pool's reason to exist: a
// second Run through the same Pool starts from the first Run's warm
// worker state, so even its first sparse timing-only scenario rides the
// incremental tier — a plain Run always pays at least one cold
// arm-and-build warm-up per worker.
func TestPoolWarmStateSurvivesRuns(t *testing.T) {
	g := testGraph(40)
	p := NewPool(1)
	scenarios := singleTaskScenarios(g, 4)

	first, err := p.Run(g, scenarios, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	// The first call warms up like a plain Run: scenario 0 arms, 1+
	// ride the incremental tier.
	if first[0].Tier != TierOverlay {
		t.Fatalf("first run scenario 0 tier = %q, want %q (cold arm)", first[0].Tier, TierOverlay)
	}
	for i, r := range first[1:] {
		if r.Tier != TierIncremental {
			t.Fatalf("first run scenario %d tier = %q, want %q", i+1, r.Tier, TierIncremental)
		}
	}

	second, err := p.Run(g, scenarios, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if r.Tier != TierIncremental {
			t.Fatalf("second run scenario %d tier = %q, want %q (warm state lost)", i, r.Tier, TierIncremental)
		}
	}

	// Pooled results are bit-identical to a fresh cold Run.
	fresh, err := Run(g, scenarios, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if second[i].Value != fresh[i].Value {
			t.Fatalf("scenario %d pooled value %v != fresh value %v", i, second[i].Value, fresh[i].Value)
		}
	}
}

// TestPoolConcurrentRuns hammers one Pool from many goroutines under
// the race detector: concurrent Run calls must check out disjoint
// workers and still produce correct values.
func TestPoolConcurrentRuns(t *testing.T) {
	g := testGraph(30)
	want, err := Run(g, singleTaskScenarios(g, 6), Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(2)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := p.Run(g, singleTaskScenarios(g, 6), Workers(2))
			if err != nil {
				errs <- err
				return
			}
			for j := range got {
				if got[j].Value != want[j].Value {
					errs <- fmt.Errorf("scenario %d pooled value %v != %v", j, got[j].Value, want[j].Value)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolQuarantineStaysIsolated runs a panicking scenario through a
// pooled worker, then reuses the pool: the quarantined buffers must not
// poison the next call's rows.
func TestPoolQuarantineStaysIsolated(t *testing.T) {
	g := testGraph(30)
	p := NewPool(1)
	boom := core.PatchOpt("boom", core.TimingOnly, func(*core.Patch) error {
		panic("pool chaos")
	}, nil)
	res, err := p.Run(g, []Scenario{{Opt: boom}}, Workers(1))
	if err == nil {
		t.Fatal("panicking scenario did not error")
	}
	if res[0].Err == nil {
		t.Fatal("panicking scenario has no error row")
	}

	clean, err := p.Run(g, singleTaskScenarios(g, 3), Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(g, singleTaskScenarios(g, 3), Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i].Value != fresh[i].Value {
			t.Fatalf("post-quarantine scenario %d value %v != fresh %v", i, clean[i].Value, fresh[i].Value)
		}
	}
}
