package sweep

import (
	"fmt"
	"testing"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// TestSweepWorkerMixedScenarioReuse drives one worker through an
// interleaving of structural-patch, timing-patch, rewrite and replay
// scenarios, checking buffer/patch reuse never leaks state between
// paths.
func TestSweepWorkerMixedScenarioReuse(t *testing.T) {
	g := testGraph(30)
	var scenarios []Scenario
	for i := 0; i < 6; i++ {
		scenarios = append(scenarios,
			Scenario{Name: fmt.Sprintf("struct%d", i), Opt: insertCommOpt(time.Duration(i+1) * time.Millisecond)},
			Scenario{Name: fmt.Sprintf("timing%d", i), Opt: gpuScaleOpt(0.5 + 0.05*float64(i))},
			Scenario{Name: fmt.Sprintf("replay%d", i)},
			Scenario{Name: fmt.Sprintf("rewrite%d", i), Transform: func(c *core.Graph) (*core.Graph, error) {
				k := c.NewTask("x", trace.KindComm, core.Channel("z"), time.Millisecond)
				c.AppendTask(k)
				return c, c.AddDependency(c.Task(1), k, core.DepComm)
			}},
		)
	}
	want, err := Run(g, scenarios, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	// Every scenario independently, fresh worker each.
	for i := range scenarios {
		got, err := Run(g, scenarios[i:i+1], Workers(1))
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Value != want[0+i].Value {
			t.Fatalf("scenario %d (%s): reused worker %v, fresh worker %v", i, want[i].Name, want[i].Value, got[0].Value)
		}
	}
}
