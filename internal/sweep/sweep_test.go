package sweep

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// testGraph builds a small two-thread graph: a CPU chain launching a GPU
// chain, enough structure for transformations to bite.
func testGraph(n int) *core.Graph {
	g := core.NewGraph()
	for i := 0; i < n; i++ {
		launch := g.NewTask("cudaLaunchKernel", trace.KindLaunch, core.CPU(1), 2*time.Microsecond)
		g.AppendTask(launch)
		kern := g.NewTask(fmt.Sprintf("k%d", i), trace.KindKernel, core.Stream(7), 10*time.Microsecond)
		g.AppendTask(kern)
		if err := g.Correlate(launch, kern); err != nil {
			panic(err)
		}
	}
	return g
}

// scaleScenario shrinks every GPU kernel by the given factor.
func scaleScenario(name string, factor float64) Scenario {
	return Scenario{
		Name: name,
		Transform: func(g *core.Graph) (*core.Graph, error) {
			core.Scale(g.Select(core.OnGPUPred), factor)
			return g, nil
		},
	}
}

// sequential runs the same scenarios one by one without the pool.
func sequential(t *testing.T, baseline *core.Graph, scenarios []Scenario) []time.Duration {
	t.Helper()
	out := make([]time.Duration, len(scenarios))
	for i, sc := range scenarios {
		base := sc.Base
		if base == nil {
			base = baseline
		}
		g := base.Clone()
		var err error
		if sc.Transform != nil {
			g, err = sc.Transform(g)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := g.Simulate(sc.SimOptions...)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Measure != nil {
			out[i], err = sc.Measure(core.TaskView(g), res)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			out[i] = res.Makespan
		}
	}
	return out
}

func TestSweepMatchesSequential(t *testing.T) {
	g := testGraph(40)
	var scenarios []Scenario
	for i := 0; i < 32; i++ {
		scenarios = append(scenarios, scaleScenario(fmt.Sprintf("s%d", i), 1.0-float64(i)/64))
	}
	want := sequential(t, g, scenarios)
	for _, workers := range []int{1, 2, 7, 64} {
		results, err := Run(g, scenarios, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Name != scenarios[i].Name {
				t.Fatalf("workers=%d: result %d is %q, want %q", workers, i, r.Name, scenarios[i].Name)
			}
			if r.Value != want[i] {
				t.Fatalf("workers=%d: scenario %q = %v, sequential %v", workers, r.Name, r.Value, want[i])
			}
		}
	}
}

func TestSweepPerScenarioBase(t *testing.T) {
	a, b := testGraph(10), testGraph(30)
	results, err := Run(nil, []Scenario{
		{Name: "a", Base: a},
		{Name: "b", Base: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantA, _ := a.PredictIteration()
	wantB, _ := b.PredictIteration()
	if results[0].Value != wantA || results[1].Value != wantB {
		t.Fatalf("per-scenario bases: got (%v, %v), want (%v, %v)",
			results[0].Value, results[1].Value, wantA, wantB)
	}
}

func TestSweepNoBaseline(t *testing.T) {
	results, err := Run(nil, []Scenario{{Name: "orphan"}})
	if err == nil {
		t.Fatal("sweep with no baseline succeeded")
	}
	if results[0].Err == nil {
		t.Fatal("orphan scenario has no error")
	}
}

func TestSweepScenarioError(t *testing.T) {
	g := testGraph(5)
	boom := fmt.Errorf("boom")
	results, err := Run(g, []Scenario{
		scaleScenario("ok", 0.5),
		{Name: "bad", Transform: func(*core.Graph) (*core.Graph, error) { return nil, boom }},
		scaleScenario("also ok", 0.25),
	})
	if err == nil {
		t.Fatal("sweep with failing scenario returned nil error")
	}
	if results[1].Err == nil || results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("error placement wrong: %+v", results)
	}
	if results[0].Value == 0 || results[2].Value == 0 {
		t.Fatal("healthy scenarios did not run")
	}
}

func TestSweepMeasureAndKeep(t *testing.T) {
	g := testGraph(8)
	results, err := Run(g, []Scenario{{
		Name: "repeat",
		Transform: func(c *core.Graph) (*core.Graph, error) {
			return c.Repeat(3)
		},
		Measure: func(rg core.TaskView, res *core.SimResult) (time.Duration, error) {
			return core.RoundSpan(rg, res, 2) - core.RoundSpan(rg, res, 1), nil
		},
	}}, KeepGraphs(), KeepSims())
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Graph == nil || r.Sim == nil {
		t.Fatal("KeepGraphs/KeepSims did not retain")
	}
	if r.Graph.NumTasks() != 3*g.NumTasks() {
		t.Fatalf("transformed graph has %d tasks, want %d", r.Graph.NumTasks(), 3*g.NumTasks())
	}
	if r.Value <= 0 {
		t.Fatalf("steady-state round time = %v", r.Value)
	}
}

// TestSweepSharedBaselineRace drives many concurrent sweeps over one
// shared baseline. Run under -race (the CI does) this verifies that
// concurrent Clone + Simulate over an immutable graph is data-race free.
func TestSweepSharedBaselineRace(t *testing.T) {
	g := testGraph(50)
	var scenarios []Scenario
	for i := 0; i < 16; i++ {
		scenarios = append(scenarios, scaleScenario(fmt.Sprintf("s%d", i), 0.9))
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Run(g, scenarios, Workers(4)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func TestSweepEmpty(t *testing.T) {
	results, err := Run(testGraph(1), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty sweep: %v, %v", results, err)
	}
}

// overlayScaleScenario is scaleScenario's clone-free form.
func overlayScaleScenario(name string, factor float64) Scenario {
	return Scenario{
		Name: name,
		ScaleTransform: func(o *core.Overlay) error {
			for _, u := range o.Base().LayerPhaseIndex().GPUTasks() {
				o.ScaleDuration(u, factor)
			}
			return nil
		},
	}
}

// TestSweepOverlayMatchesClonePath checks the clone-free dispatch: a
// duration-only scenario evaluated through ScaleTransform is
// bit-identical to the same edit through the structural clone path.
func TestSweepOverlayMatchesClonePath(t *testing.T) {
	g := testGraph(60)
	var clonePath, overlayPath []Scenario
	for i := 0; i < 12; i++ {
		f := 0.5 + 0.04*float64(i)
		clonePath = append(clonePath, scaleScenario(fmt.Sprintf("s%d", i), f))
		overlayPath = append(overlayPath, overlayScaleScenario(fmt.Sprintf("s%d", i), f))
	}
	want, err := Run(g, clonePath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, overlayPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Value != want[i].Value {
			t.Fatalf("scenario %d: overlay %v, clone %v", i, got[i].Value, want[i].Value)
		}
	}
	// The baseline must be untouched by the overlay path.
	for _, u := range g.Tasks() {
		if u.OnGPU() && u.Duration != 10*time.Microsecond {
			t.Fatalf("overlay sweep mutated baseline task %v", u)
		}
	}
}

// TestSweepBothTransformsRejected checks the ambiguous scenario shape
// errors out instead of silently picking a path.
func TestSweepBothTransformsRejected(t *testing.T) {
	g := testGraph(4)
	sc := Scenario{
		Name:           "both",
		Transform:      func(c *core.Graph) (*core.Graph, error) { return c, nil },
		ScaleTransform: func(o *core.Overlay) error { return nil },
	}
	if _, err := Run(g, []Scenario{sc}); err == nil {
		t.Fatal("scenario with both Transform and ScaleTransform did not error")
	}
}

// TestSweepReplayPathSkipsClone checks a no-transform scenario replays
// the shared baseline (and still honors KeepGraphs' private-copy
// contract when asked).
func TestSweepReplayPathSkipsClone(t *testing.T) {
	g := testGraph(10)
	want, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, []Scenario{{Name: "replay"}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Value != want {
		t.Fatalf("replay value %v, want %v", res[0].Value, want)
	}
	kept, err := Run(g, []Scenario{{Name: "replay"}}, KeepGraphs())
	if err != nil {
		t.Fatal(err)
	}
	if kept[0].Graph == g {
		t.Fatal("KeepGraphs replay returned the shared baseline instead of a private copy")
	}
}

// TestSweepOverlayMeasureSeesEffectiveTimings checks Measure receives
// the worker's patch as its TaskView on the clone-free path and reads
// the effective timings through the SimResult.
func TestSweepOverlayMeasureSeesEffectiveTimings(t *testing.T) {
	g := testGraph(5)
	kernels := g.Select(core.OnGPUPred)
	last := kernels[len(kernels)-1]
	sc := Scenario{
		Name: "measure",
		ScaleTransform: func(o *core.Overlay) error {
			o.SetDuration(last, time.Millisecond)
			return nil
		},
		Measure: func(v core.TaskView, res *core.SimResult) (time.Duration, error) {
			p, ok := v.(*core.Patch)
			if !ok {
				t.Errorf("clone-free Measure received %T, want *core.Patch", v)
			} else if p.Base() != g {
				t.Error("patch view is not over the shared baseline")
			}
			if d := res.TaskDuration(last); d != time.Millisecond {
				t.Errorf("TaskDuration through result = %v, want 1ms", d)
			}
			return res.Finish(last), nil
		},
	}
	res, err := Run(g, []Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Value <= time.Millisecond {
		t.Fatalf("Finish through overlay result = %v, want > 1ms", res[0].Value)
	}
}

// TestSweepConcurrentOverlayRace drives many concurrent overlay sweeps
// over one shared baseline and one shared layer index. Run under -race
// (the CI does) this verifies the copy-on-write sharing model: workers
// never write to the baseline, and the memoized index publishes safely.
func TestSweepConcurrentOverlayRace(t *testing.T) {
	g := testGraph(50)
	// Prime nothing: let the racing sweeps build the index concurrently.
	var scenarios []Scenario
	for i := 0; i < 16; i++ {
		scenarios = append(scenarios, overlayScaleScenario(fmt.Sprintf("s%d", i), 0.9))
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Run(g, scenarios, Workers(4)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestSweepOverlayKeepGraphsIsPrivate checks KeepGraphs never hands
// back the shared baseline for an overlay scenario: the retained graph
// is a private clone carrying the overlay's effective timings.
func TestSweepOverlayKeepGraphsIsPrivate(t *testing.T) {
	g := testGraph(6)
	res, err := Run(g, []Scenario{overlayScaleScenario("amp", 0.5)}, KeepGraphs())
	if err != nil {
		t.Fatal(err)
	}
	kept := res[0].Graph
	if kept == g {
		t.Fatal("KeepGraphs returned the shared baseline for an overlay scenario")
	}
	for _, u := range kept.Tasks() {
		if u.OnGPU() && u.Duration != 5*time.Microsecond {
			t.Fatalf("materialized graph task %v does not carry the overlay duration", u)
		}
	}
	// The baseline stays untouched.
	for _, u := range g.Tasks() {
		if u.OnGPU() && u.Duration != 10*time.Microsecond {
			t.Fatalf("baseline task %v mutated", u)
		}
	}
	// The materialized clone simulates to the overlay's prediction.
	mk, err := kept.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if mk != res[0].Value {
		t.Fatalf("materialized graph makespan %v, scenario value %v", mk, res[0].Value)
	}
}

// TestSweepReplayMeasureSeesBaseline pins the Measure contract on the
// replay path: the TaskView is the shared baseline itself (read-only —
// Simulate never mutates, and neither may the Measure), with no clone
// spent on it.
func TestSweepReplayMeasureSeesBaseline(t *testing.T) {
	g := testGraph(5)
	sc := Scenario{
		Name: "replay-measure",
		Measure: func(v core.TaskView, res *core.SimResult) (time.Duration, error) {
			if v.(*core.Graph) != g {
				t.Error("replay Measure did not receive the shared baseline view")
			}
			return res.Makespan, nil
		},
	}
	res, err := Run(g, []Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := g.PredictIteration()
	if res[0].Value != want {
		t.Fatalf("replay measure value %v, want %v", res[0].Value, want)
	}
}

// TestSweepNamePrecedence pins the Result naming rule: an explicit
// Scenario.Name always wins over the optimization's own name — on
// success AND on error results.
func TestSweepNamePrecedence(t *testing.T) {
	g := testGraph(4)
	failing := core.PatchOpt("opt-name-fail", core.Structural, func(*core.Patch) error {
		return fmt.Errorf("boom")
	}, nil)
	results, err := Run(g, []Scenario{
		{Name: "explicit", Opt: gpuScaleOpt(0.5)},
		{Opt: gpuScaleOpt(0.5)},
		{Name: "explicit-error", Opt: failing},
		{Opt: failing},
	})
	if err == nil {
		t.Fatal("sweep with failing scenarios returned nil error")
	}
	if results[0].Name != "explicit" {
		t.Fatalf("result 0 name = %q, want %q (Scenario.Name must win)", results[0].Name, "explicit")
	}
	if results[1].Name != "gpu-x0.5" {
		t.Fatalf("result 1 name = %q, want opt name", results[1].Name)
	}
	if results[2].Err == nil || results[2].Name != "explicit-error" {
		t.Fatalf("error result name = %q (err %v), want %q", results[2].Name, results[2].Err, "explicit-error")
	}
	if results[3].Err == nil || results[3].Name != "opt-name-fail" {
		t.Fatalf("error result name = %q (err %v), want opt name", results[3].Name, results[3].Err)
	}
}

// gpuScaleOpt is scaleScenario's what-if as a timing-only Optimization
// value.
func gpuScaleOpt(factor float64) core.Optimization {
	return core.TimingOpt(fmt.Sprintf("gpu-x%g", factor), func(o *core.Overlay) error {
		for _, u := range o.Base().Tasks() {
			if u.OnGPU() {
				o.ScaleDuration(u, factor)
			}
		}
		return nil
	}, nil)
}

// TestSweepOptDispatch checks the footprint dispatch on Scenario.Opt: a
// timing-only value, a stack of timing-only values, and a structural
// value all predict bit-identically to the equivalent manual paths.
func TestSweepOptDispatch(t *testing.T) {
	g := testGraph(40)
	structural := core.StructuralOpt("drop-first-kernel", func(c *core.Graph) error {
		kernels := c.Select(core.OnGPUPred)
		c.Remove(kernels[0])
		return nil
	})
	opts := []Scenario{
		{Opt: gpuScaleOpt(0.5)},
		{Opt: core.Stack(gpuScaleOpt(0.5), gpuScaleOpt(0.5))},
		{Opt: structural},
	}
	manual := []Scenario{
		overlayScaleScenario("a", 0.5),
		overlayScaleScenario("b", 0.25),
		{Name: "c", Transform: func(c *core.Graph) (*core.Graph, error) {
			return c, core.ApplyGraph(structural, c)
		}},
	}
	got, err := Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, manual)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Value != want[i].Value {
			t.Fatalf("scenario %d: Opt dispatch %v, manual path %v", i, got[i].Value, want[i].Value)
		}
	}
	// Default names come from the optimization values.
	if got[0].Name != "gpu-x0.5" || got[1].Name != "gpu-x0.5+gpu-x0.5" {
		t.Fatalf("default names = %q, %q", got[0].Name, got[1].Name)
	}
	// The baseline survives every path untouched.
	for _, u := range g.Tasks() {
		if u.OnGPU() && u.Duration != 10*time.Microsecond {
			t.Fatalf("Opt sweep mutated baseline task %v", u)
		}
	}
}

// TestSweepOptRejectsManualTransforms checks the ambiguous shape (Opt
// together with a manual transform) errors out.
func TestSweepOptRejectsManualTransforms(t *testing.T) {
	g := testGraph(4)
	for _, sc := range []Scenario{
		{Opt: gpuScaleOpt(0.5), Transform: func(c *core.Graph) (*core.Graph, error) { return c, nil }},
		{Opt: gpuScaleOpt(0.5), ScaleTransform: func(*core.Overlay) error { return nil }},
	} {
		if _, err := Run(g, []Scenario{sc}); err == nil {
			t.Fatal("scenario with Opt and a manual transform did not error")
		}
	}
}

// TestSweepOptCarriesMeasure checks an optimization's own metric is
// used when the scenario sets none, and that an explicit Measure wins.
func TestSweepOptCarriesMeasure(t *testing.T) {
	g := testGraph(8)
	repeat := core.RewriteOpt("repeat3",
		func(c *core.Graph) (*core.Graph, error) { return c.Repeat(3) },
		func(rg core.TaskView, res *core.SimResult) (time.Duration, error) {
			return core.RoundSpan(rg, res, 2) - core.RoundSpan(rg, res, 1), nil
		})
	res, err := Run(g, []Scenario{{Opt: repeat}})
	if err != nil {
		t.Fatal(err)
	}
	single, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Value <= 0 || res[0].Value >= 3*single {
		t.Fatalf("opt-carried measure = %v (single iteration %v)", res[0].Value, single)
	}
	override, err := Run(g, []Scenario{{
		Opt:     repeat,
		Measure: func(core.TaskView, *core.SimResult) (time.Duration, error) { return 42, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if override[0].Value != 42 {
		t.Fatalf("explicit Measure did not win: %v", override[0].Value)
	}
}

// TestSweepNoopStackReplaysWithoutClone pins the replay-path fast path
// for a no-op stack: a Scenario whose Opt is Stack() with zero parts
// must predict the baseline exactly and allocate no more than the
// existing "neither Transform" replay scenario — i.e. it takes the same
// clone-free, overlay-free path.
func TestSweepNoopStackReplaysWithoutClone(t *testing.T) {
	g := testGraph(20)
	want, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, []Scenario{{Opt: core.Stack()}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Value != want {
		t.Fatalf("no-op stack predicts %v, baseline %v", res[0].Value, want)
	}
	if res[0].Name != "baseline" {
		t.Fatalf("no-op stack name = %q", res[0].Name)
	}

	// Allocation parity with the replay path, measured over identical
	// single-worker sweeps (the scenario values are built outside the
	// measurement): an overlay or clone dispatch would show up as extra
	// allocations.
	plainScenarios := []Scenario{{Name: "replay"}}
	noopScenarios := []Scenario{{Name: "replay", Opt: core.Stack()}}
	replay := testing.AllocsPerRun(50, func() {
		if _, err := Run(g, plainScenarios, Workers(1)); err != nil {
			t.Fatal(err)
		}
	})
	noop := testing.AllocsPerRun(50, func() {
		if _, err := Run(g, noopScenarios, Workers(1)); err != nil {
			t.Fatal(err)
		}
	})
	if noop > replay {
		t.Fatalf("no-op stack allocates %.0f/run, plain replay %.0f/run — it is not on the replay fast path", noop, replay)
	}
}

// insertCommOpt is a patch-form structural test what-if: one comm task
// appended to a fresh channel, gated by the last GPU kernel.
func insertCommOpt(d time.Duration) core.Optimization {
	return core.PatchOpt(fmt.Sprintf("comm-%v", d), core.Structural, func(p *core.Patch) error {
		kernels := p.Base().Select(core.OnGPUPred)
		if len(kernels) == 0 {
			return fmt.Errorf("no kernels")
		}
		c := p.NewTask("comm", trace.KindComm, core.Channel("test"), d)
		p.AppendTask(c)
		return p.AddDependency(kernels[len(kernels)-1], c, core.DepComm)
	}, nil)
}

// TestSweepStructuralPatchMatchesClonePath checks the unified patch
// dispatch for structural optimizations: a patch-form value evaluates
// without cloning and predicts bit-identically to the same surgery on a
// private clone, and KeepGraphs hands back a materialized private graph
// carrying the structural deltas.
func TestSweepStructuralPatchMatchesClonePath(t *testing.T) {
	g := testGraph(30)
	opt := insertCommOpt(3 * time.Millisecond)
	got, err := Run(g, []Scenario{{Opt: opt}}, KeepGraphs())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, []Scenario{{Name: "clone", Transform: func(c *core.Graph) (*core.Graph, error) {
		return core.ApplyOptimization(c, opt)
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value != want[0].Value {
		t.Fatalf("patch dispatch %v, clone path %v", got[0].Value, want[0].Value)
	}
	// KeepGraphs: a private materialized graph with the comm task.
	kept := got[0].Graph
	if kept == g {
		t.Fatal("KeepGraphs returned the shared baseline for a patch scenario")
	}
	if kept.NumTasks() != g.NumTasks()+1 {
		t.Fatalf("materialized graph has %d tasks, want %d", kept.NumTasks(), g.NumTasks()+1)
	}
	mk, err := kept.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if mk != got[0].Value {
		t.Fatalf("materialized graph makespan %v, scenario value %v", mk, got[0].Value)
	}
	// The baseline survives untouched.
	if g.NumTasks() != 30*2 {
		t.Fatalf("baseline task count changed: %d", g.NumTasks())
	}
}

// lifoSched is a trivial non-default scheduler for the scheduled
// structural sweep test.
type lifoSched struct{}

func (lifoSched) Pick(frontier []*core.Task, _ *core.SchedContext) int {
	return len(frontier) - 1
}

// TestSweepStructuralOptWithCustomScheduler pins the scheduled
// clone-free path: a structural Opt combined with a custom Scheduler in
// SimOptions evaluates directly over the worker's patch view — no
// materialized fallback — and matches the explicit clone-path result
// bit for bit.
func TestSweepStructuralOptWithCustomScheduler(t *testing.T) {
	g := testGraph(20)
	opt := insertCommOpt(2 * time.Millisecond)
	simOpts := []core.SimOption{core.WithScheduler(lifoSched{})}
	got, err := Run(g, []Scenario{{Opt: opt, SimOptions: simOpts}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, []Scenario{{
		Name: "clone",
		Transform: func(c *core.Graph) (*core.Graph, error) {
			return core.ApplyOptimization(c, opt)
		},
		SimOptions: simOpts,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value != want[0].Value {
		t.Fatalf("custom-scheduler patch fallback %v, clone path %v", got[0].Value, want[0].Value)
	}
}

// TestSweepConcurrentPatchRace drives many concurrent structural patch
// sweeps over one shared baseline. Run under -race (the CI does) this
// verifies the copy-on-write structural sharing model: workers record
// task/edge deltas without ever writing to the baseline.
func TestSweepConcurrentPatchRace(t *testing.T) {
	g := testGraph(50)
	var scenarios []Scenario
	for i := 0; i < 16; i++ {
		scenarios = append(scenarios, Scenario{Opt: insertCommOpt(time.Duration(i+1) * time.Millisecond)})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Run(g, scenarios, Workers(4)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestSweepStackedOptRace drives concurrent sweeps of stacked
// optimizations over one shared baseline. Run under -race (the CI does)
// this verifies stacks inside Sweep never write to the shared graph.
func TestSweepStackedOptRace(t *testing.T) {
	g := testGraph(50)
	stacked := core.Stack(gpuScaleOpt(0.5), gpuScaleOpt(0.9))
	var scenarios []Scenario
	for i := 0; i < 16; i++ {
		scenarios = append(scenarios, Scenario{Name: fmt.Sprintf("s%d", i), Opt: stacked})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Run(g, scenarios, Workers(4)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// wrappedEarliest is EarliestStart hidden behind a distinct type, so
// the dispatch treats it as a genuinely custom scheduler.
type wrappedEarliest struct{ core.EarliestStart }

// TestSweepNearTotalConeTakesOverlay pins the tier chooser's cone
// estimate: a sparse delta touching the very front of the iteration
// invalidates almost the whole warm schedule, so the battery must ride
// the overlay replay on every row — never arming the incremental tier —
// while the same battery editing the tail keeps riding incremental.
func TestSweepNearTotalConeTakesOverlay(t *testing.T) {
	g := testGraph(40)
	edit := func(name string, pick func(ks []*core.Task) *core.Task, d time.Duration) Scenario {
		return Scenario{Name: name, ScaleTransform: func(o *core.Overlay) error {
			o.SetDuration(pick(o.Base().Select(core.OnGPUPred)), d)
			return nil
		}}
	}
	head := func(ks []*core.Task) *core.Task { return ks[0] }
	tail := func(ks []*core.Task) *core.Task { return ks[len(ks)-1] }
	results, err := Run(g, []Scenario{
		edit("front-a", head, 40*time.Microsecond),
		edit("front-b", head, 80*time.Microsecond),
		edit("front-c", head, 120*time.Microsecond),
		edit("tail-warmup", tail, 40*time.Microsecond),
		edit("tail-incr", tail, 80*time.Microsecond),
	}, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	wantTiers := []string{TierOverlay, TierOverlay, TierOverlay, TierOverlay, TierIncremental}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %q: %v", r.Name, r.Err)
		}
		if r.Tier != wantTiers[i] {
			t.Errorf("scenario %q: tier %q, want %q", r.Name, r.Tier, wantTiers[i])
		}
	}
}

// TestSweepTierDispatch pins the Tier reported for every dispatch path
// and checks the incremental tier's values stay bit-identical to the
// sequential cold evaluation. Workers(1) makes the worker-local warm-up
// deterministic: the first timing-only scenario arms the lazy build
// (and still runs on the overlay path), every later one rides the warm
// incremental state.
func TestSweepTierDispatch(t *testing.T) {
	g := testGraph(40)
	structural := core.PatchOpt("append", core.Structural, func(p *core.Patch) error {
		nt := p.NewTask("extra", trace.KindKernel, core.Stream(7), 5*time.Microsecond)
		p.AppendTask(nt)
		return nil
	}, nil)
	// The incremental scenarios edit a single kernel: editing every GPU
	// task (like scaleScenario) would trip the dense-delta cutoff and
	// legitimately report the overlay tier instead.
	sparseOverlay := func(name string, d time.Duration) Scenario {
		return Scenario{Name: name, ScaleTransform: func(o *core.Overlay) error {
			ks := o.Base().Select(core.OnGPUPred)
			o.SetDuration(ks[len(ks)-1], d)
			return nil
		}}
	}
	sparseClone := func(name string, d time.Duration) Scenario {
		return Scenario{Name: name, Transform: func(c *core.Graph) (*core.Graph, error) {
			ks := c.Select(core.OnGPUPred)
			ks[len(ks)-1].Duration = d
			return c, nil
		}}
	}
	scenarios := []Scenario{
		{Name: "replay"},
		sparseOverlay("warmup", 40*time.Microsecond),
		sparseOverlay("incr-a", 80*time.Microsecond),
		sparseOverlay("incr-b", 120*time.Microsecond),
		scaleScenario("clone", 0.6),
		{Name: "structural", Opt: structural},
		func() Scenario {
			sc := overlayScaleScenario("sched", 0.5)
			sc.SimOptions = []core.SimOption{core.WithScheduler(wrappedEarliest{})}
			return sc
		}(),
	}
	// sequential() only evaluates Transform scenarios, so the expected
	// values come from the clone-path equivalents of the first five.
	want := sequential(t, g, []Scenario{
		{Name: "replay"},
		sparseClone("warmup", 40*time.Microsecond),
		sparseClone("incr-a", 80*time.Microsecond),
		sparseClone("incr-b", 120*time.Microsecond),
		scaleScenario("clone", 0.6),
	})
	results, err := Run(g, scenarios, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	wantTiers := []string{
		TierReplay, TierOverlay, TierIncremental, TierIncremental,
		TierClone, TierPatch, TierOverlay,
	}
	for i, r := range results {
		if r.Tier != wantTiers[i] {
			t.Errorf("scenario %q: tier %q, want %q", r.Name, r.Tier, wantTiers[i])
		}
	}
	for i := range want {
		if results[i].Value != want[i] {
			t.Errorf("scenario %q: sweep %v, sequential %v", results[i].Name, results[i].Value, want[i])
		}
	}
}
