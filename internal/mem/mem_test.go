package mem_test

// Memory-timeline suite: the profile is a pure post-pass (SimResult
// bit-unchanged on every tier), the timeline balances back to the
// resident baseline (every alloc has a matching free), the simulated
// peak never exceeds the static dnn.EstimateMemory upper bound, the
// profile is bit-identical whether computed over a clone-free Patch or
// its materialized clone, the memory what-ifs (vDNN, Gist) report real
// savings on bert-large, and MaxBatchFit inverts the peak curve.

import (
	"reflect"
	"testing"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/mem"
	"daydream/internal/trace"
	"daydream/internal/whatif"
)

// profile builds a mapped baseline graph for a zoo model.
func profile(t *testing.T, name string) *core.Graph {
	t.Helper()
	m, err := dnn.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := framework.Run(framework.Config{Model: m, Dialect: framework.PyTorch, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	core.MapLayers(g, res.Trace.LayerSpans)
	return g
}

// assertResultUnchanged verifies a SimResult against a pre-post-pass
// snapshot of its makespan and start times.
func assertResultUnchanged(t *testing.T, res *core.SimResult, makespan int64, starts []int64) {
	t.Helper()
	if int64(res.Makespan) != makespan {
		t.Fatalf("post-pass changed makespan: %d != %d", res.Makespan, makespan)
	}
	for id, s := range starts {
		if int64(res.Start[id]) != s {
			t.Fatalf("post-pass changed start of task %d: %d != %d", id, res.Start[id], s)
		}
	}
}

func startsOf(res *core.SimResult) []int64 {
	out := make([]int64, len(res.Start))
	for i, s := range res.Start {
		out[i] = int64(s)
	}
	return out
}

// TestProfileInvariantsAcrossZoo checks, for every zoo model: the
// post-pass leaves the simulation result bit-identical, the timeline
// returns to the resident baseline (allocs and frees balance), the
// peak exceeds the resident floor, peak attribution is populated, and
// the simulated peak stays under the static estimate (which adds
// optimizer state and workspace the timeline deliberately excludes).
func TestProfileInvariantsAcrossZoo(t *testing.T) {
	for _, name := range dnn.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := dnn.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			g := profile(t, name)
			res, err := g.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			makespan, starts := int64(res.Makespan), startsOf(res)

			ann, err := mem.AnnotationOf(g)
			if err != nil {
				t.Fatal(err)
			}
			prof, err := mem.ComputeProfile(g, res, ann)
			if err != nil {
				t.Fatal(err)
			}
			assertResultUnchanged(t, res, makespan, starts)

			d := prof.Device(mem.DeviceGPU)
			if d == nil {
				t.Fatalf("no %s profile", mem.DeviceGPU)
			}
			if len(d.Timeline) == 0 {
				t.Fatal("empty timeline")
			}
			if last := d.Timeline[len(d.Timeline)-1]; last.Bytes != d.Resident {
				t.Fatalf("timeline does not balance: final sample %d bytes, resident %d", last.Bytes, d.Resident)
			}
			if d.Peak <= d.Resident {
				t.Fatalf("peak %d not above resident %d: no activation ever tracked", d.Peak, d.Resident)
			}
			if len(d.PeakTensors) == 0 {
				t.Fatal("no peak attribution")
			}
			for i := 1; i < len(d.PeakTensors); i++ {
				if d.PeakTensors[i].Bytes > d.PeakTensors[i-1].Bytes {
					t.Fatal("peak tensors not sorted largest-first")
				}
			}
			if est := dnn.EstimateMemory(m).Total(); d.Peak > est {
				t.Fatalf("simulated peak %d exceeds static estimate %d", d.Peak, est)
			}
			if d.PeakEnd <= d.PeakStart {
				t.Fatalf("degenerate peak interval [%v, %v)", d.PeakStart, d.PeakEnd)
			}
		})
	}
}

// TestProfilePostPassAcrossTiers runs the same unedited baseline
// through all five simulation tiers — cold, overlay, patch, scheduled,
// incremental — and checks the post-pass (a) never mutates any tier's
// result and (b) produces the identical profile wherever the schedule
// is identical.
func TestProfilePostPassAcrossTiers(t *testing.T) {
	g := profile(t, "resnet50")
	ann, err := mem.AnnotationOf(g)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := mem.ComputeProfile(g, cold, ann)
	if err != nil {
		t.Fatal(err)
	}

	inc, err := core.NewIncrementalSim(g)
	if err != nil {
		t.Fatal(err)
	}
	tiers := []struct {
		name      string
		view      core.TaskView
		simulate  func() (*core.SimResult, error)
		samePlan  bool // default scheduler, unedited → profile must equal cold's
	}{
		{"cold", g, func() (*core.SimResult, error) { return g.Simulate() }, true},
		{"overlay", core.NewOverlay(g), nil, true},
		{"patch", core.NewPatch(g), nil, true},
		{"scheduled", g, func() (*core.SimResult, error) {
			return g.Simulate(core.WithScheduler(whatif.VDNNScheduler{}))
		}, false},
		{"incremental", g, func() (*core.SimResult, error) { return inc.ReSimulate(core.NewOverlay(g)) }, true},
	}
	for _, tier := range tiers {
		tier := tier
		t.Run(tier.name, func(t *testing.T) {
			var res *core.SimResult
			var err error
			switch v := tier.view.(type) {
			case *core.Overlay:
				if tier.simulate == nil {
					res, err = v.Simulate()
				} else {
					res, err = tier.simulate()
				}
			case *core.Patch:
				res, err = v.Simulate()
			default:
				res, err = tier.simulate()
			}
			if err != nil {
				t.Fatal(err)
			}
			makespan, starts := int64(res.Makespan), startsOf(res)
			prof, err := mem.ComputeProfile(tier.view, res, ann)
			if err != nil {
				t.Fatal(err)
			}
			assertResultUnchanged(t, res, makespan, starts)
			if tier.samePlan && !reflect.DeepEqual(prof, want) {
				t.Fatalf("%s profile diverges from cold profile", tier.name)
			}
		})
	}
}

// TestProfileCloneVsPatchBitIdentity is the acceptance criterion: for a
// structural memory what-if, the profile computed clone-free over the
// Patch must be bit-identical to the profile computed over the
// materialized clone — same base annotation, same carried scheduler,
// same measurers.
func TestProfileCloneVsPatchBitIdentity(t *testing.T) {
	g := profile(t, "resnet50")
	ann, err := mem.AnnotationOf(g)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  core.Optimization
	}{
		{"vdnn", whatif.OptVDNN(whatif.VDNNOptions{})},
		{"gist", whatif.OptGist(whatif.GistOptions{})},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := core.NewPatch(g)
			if err := tc.opt.Apply(p); err != nil {
				t.Fatal(err)
			}
			var simOpts []core.SimOption
			if sched := core.OptScheduler(tc.opt); sched != nil {
				simOpts = append(simOpts, core.WithScheduler(sched))
			}
			resP, err := p.Simulate(simOpts...)
			if err != nil {
				t.Fatal(err)
			}
			measurers := mem.MeasurersOf(tc.opt)
			profP, err := mem.ComputeProfile(p, resP, ann, measurers...)
			if err != nil {
				t.Fatal(err)
			}

			mg, err := p.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			resC, err := mg.Simulate(simOpts...)
			if err != nil {
				t.Fatal(err)
			}
			profC, err := mem.ComputeProfile(mg, resC, ann, measurers...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(profP, profC) {
				t.Fatalf("patch profile diverges from materialized-clone profile:\npatch peak %d [%v,%v)\nclone peak %d [%v,%v)",
					profP.Peak(mem.DeviceGPU), profP.Device(mem.DeviceGPU).PeakStart, profP.Device(mem.DeviceGPU).PeakEnd,
					profC.Peak(mem.DeviceGPU), profC.Device(mem.DeviceGPU).PeakStart, profC.Device(mem.DeviceGPU).PeakEnd)
			}
		})
	}
}

// TestMemoryWhatIfsSaveOnBERTLarge checks the fig-10 story end to end:
// on bert-large (no conv, no relu — the registry defaults match
// nothing, so the filters must be widened), vDNN-all and lossy Gist
// both cut the simulated peak below the baseline while costing
// makespan.
func TestMemoryWhatIfsSaveOnBERTLarge(t *testing.T) {
	g := profile(t, "bert-large")
	baseMakespan, baseProf, err := mem.ProfileOpt(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	basePeak := baseProf.MaxPeak()

	cases := []struct {
		name string
		opt  core.Optimization
	}{
		{"vdnn-all", whatif.OptVDNN(whatif.VDNNOptions{
			OffloadLayer: func(gr trace.GradientInfo) bool { return gr.ActBytes > 0 },
		})},
		{"gist-lossy", whatif.OptGist(whatif.GistOptions{Lossy: true})},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			makespan, prof, err := mem.ProfileOpt(g, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			peak := prof.MaxPeak()
			if peak >= basePeak {
				t.Fatalf("no memory savings: peak %d, baseline %d", peak, basePeak)
			}
			if makespan < baseMakespan {
				t.Fatalf("memory optimization sped up the iteration: %v < baseline %v", makespan, baseMakespan)
			}
			t.Logf("%s: peak %d → %d (saves %.1f%%), makespan %v → %v",
				tc.name, basePeak, peak, 100*float64(basePeak-peak)/float64(basePeak), baseMakespan, makespan)
		})
	}
}

// TestMaxBatchFit calibrates a capacity from the simulated peak at
// batch 4 and checks the search inverts it exactly; an impossible
// capacity returns 0.
func TestMaxBatchFit(t *testing.T) {
	build := func(batch int) (*core.Graph, error) {
		res, err := framework.Run(framework.Config{
			Model: dnn.ResNet50(batch), Dialect: framework.PyTorch, CollectTrace: true,
		})
		if err != nil {
			return nil, err
		}
		g, err := core.Build(res.Trace)
		if err != nil {
			return nil, err
		}
		core.MapLayers(g, res.Trace.LayerSpans)
		return g, nil
	}
	peak4, err := mem.PeakAtBatch(build, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if peak4 <= 0 {
		t.Fatalf("no peak at batch 4")
	}
	fit, err := mem.MaxBatchFit(peak4, build, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fit != 4 {
		t.Fatalf("capacity calibrated to the batch-4 peak must fit exactly 4, got %d", fit)
	}
	peak1, err := mem.PeakAtBatch(build, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fit, err = mem.MaxBatchFit(peak1-1, build, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fit != 0 {
		t.Fatalf("sub-batch-1 capacity must fit 0, got %d", fit)
	}
	if _, err := mem.MaxBatchFit(0, build, nil, 6); err == nil {
		t.Fatal("zero capacity must error")
	}
	if _, err := mem.MaxBatchFit(1, nil, nil, 6); err == nil {
		t.Fatal("nil build must error")
	}
}

// TestAnnotateRejectsUnmappedGraph: a graph without layer metadata
// cannot carry a timeline, and says so.
func TestAnnotateRejectsUnmappedGraph(t *testing.T) {
	m, err := dnn.ByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	res, err := framework.Run(framework.Config{Model: m, Dialect: framework.PyTorch, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	// No MapLayers: Meta.Gradients stays empty.
	if _, err := mem.Annotate(g); err == nil {
		t.Fatal("Annotate accepted a graph with no layer metadata")
	}
}

// TestAnnotationMemoInvalidation: structural mutation drops the memo so
// a stale tensor schedule can never leak into a profile.
func TestAnnotationMemoInvalidation(t *testing.T) {
	g := profile(t, "resnet50")
	a1, err := mem.AnnotationOf(g)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := mem.AnnotationOf(g)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("AnnotationOf did not memoize")
	}
	g.NewTask("probe", trace.KindKernel, core.CPU(0), 0)
	a3, err := mem.AnnotationOf(g)
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Fatal("structural mutation did not invalidate the annotation memo")
	}
	// A clone must not inherit the memo pointer (it may diverge).
	c := g.Clone()
	if c.MemAnnotation() != nil {
		t.Fatal("clone inherited the memory-annotation memo")
	}
}
