package mem

import (
	"fmt"
	"sort"
	"time"

	"daydream/internal/core"
)

// DeviceGPU is the device key activations and resident state live on.
// Single-accelerator traces (every graph the framework emits today) put
// all GPU streams on one device; the per-device structure is kept so
// multi-device annotations slot in without an API change.
const DeviceGPU = "gpu0"

// Sample is one breakpoint of a device timeline: Bytes are allocated
// from simulated instant T until the next sample's T.
type Sample struct {
	T     time.Duration
	Bytes int64
}

// TensorUse attributes part of a profile to one tensor: its identity
// plus the simulated interval it occupied memory.
type TensorUse struct {
	Layer      string
	LayerIndex int
	Round      int
	Bytes      int64
	Alloc      time.Duration
	Free       time.Duration
}

// DeviceProfile is one device's memory timeline.
type DeviceProfile struct {
	Device string
	// Resident is the constant baseline (parameters + gradients).
	Resident int64
	// Peak is the maximum allocated bytes over the timeline, resident
	// included; it holds over [PeakStart, PeakEnd).
	Peak      int64
	PeakStart time.Duration
	PeakEnd   time.Duration
	// Timeline holds one sample per distinct event instant, starting at
	// {0, Resident-or-first-allocs}. Allocated bytes return to Resident
	// at the final sample: every tracked alloc has a matching free.
	Timeline []Sample
	// PeakTensors are the tensors live at PeakStart, largest first —
	// the layers to shrink, offload or recompute to lower the peak.
	PeakTensors []TensorUse
}

// Profile is the memory-timeline result of one simulation: a
// SimResult-adjacent post-pass product, keyed by device.
type Profile struct {
	Devices map[string]*DeviceProfile
}

// Device returns the named device's profile, or nil.
func (p *Profile) Device(name string) *DeviceProfile { return p.Devices[name] }

// Peak returns the named device's peak bytes (0 when absent).
func (p *Profile) Peak(device string) int64 {
	if d := p.Devices[device]; d != nil {
		return d.Peak
	}
	return 0
}

// MaxPeak returns the largest peak across devices — the number a
// single-accelerator capacity check compares against.
func (p *Profile) MaxPeak() int64 {
	var max int64
	for _, d := range p.Devices {
		if d.Peak > max {
			max = d.Peak
		}
	}
	return max
}

// MemMeasurer is the optional interface of optimizations whose graph
// surgery changes activation residency — vDNN's offload/prefetch
// copies, Gist's encode/decode compression, recompute-style rewrites.
// RewriteTensors maps the baseline tensor schedule onto the optimized
// view (splitting, shrinking or re-anchoring tensors against the tasks
// the optimization inserted) so ComputeProfile reports the
// optimization's predicted memory effect alongside its makespan. The
// view is whatever the simulation ran over — a Patch or a materialized
// clone — and must be treated as read-only; implementations must be
// deterministic and must not retain the view or the input slice.
type MemMeasurer interface {
	RewriteTensors(view core.TaskView, tensors []Tensor) ([]Tensor, error)
}

// MeasurersOf collects the MemMeasurer implementations of opt,
// unwrapping core.Stack parts in application order.
func MeasurersOf(opt core.Optimization) []MemMeasurer {
	var out []MemMeasurer
	for _, part := range core.StackParts(opt) {
		if m, ok := part.(MemMeasurer); ok {
			out = append(out, m)
		}
	}
	return out
}

// memEvent is one alloc (+bytes) or free (-bytes) at a simulated
// instant; idx orders simultaneous same-sign events deterministically.
type memEvent struct {
	t     time.Duration
	delta int64
	idx   int
}

// ComputeProfile sweeps the annotation's alloc/free events over a
// finished simulation and returns the per-device profile. It is a pure
// post-pass: view and res are only read (starts via res.Start,
// effective durations via res.TaskDuration), so the SimResult is
// bit-identical before and after, on every tier. Tensors whose producer
// is not live in the view are skipped (a Patch that removed the task);
// dead consumers simply drop out of the free-time max, with the
// producer's finish as the floor. Rewriters from measurers apply in
// order before the sweep.
func ComputeProfile(view core.TaskView, res *core.SimResult, ann *Annotation, measurers ...MemMeasurer) (*Profile, error) {
	if ann == nil {
		return nil, fmt.Errorf("mem: ComputeProfile: nil annotation")
	}
	if res.Windowed() {
		// The memory post-pass needs every producer/consumer start, but a
		// round-windowed result retired most of them. Documented
		// fallback: re-simulate the view unwindowed (ProfileOpt always
		// does) — the memory timeline is inherently O(ID span) anyway.
		return nil, fmt.Errorf("mem: ComputeProfile: %w", core.ErrWindowedResult)
	}
	if len(res.Start) < ann.span {
		return nil, fmt.Errorf("mem: ComputeProfile: result spans %d task IDs but the annotation was built over %d; profile with a result simulated from the annotated baseline", len(res.Start), ann.span)
	}
	tensors := ann.Tensors
	for _, m := range measurers {
		var err error
		if tensors, err = m.RewriteTensors(view, tensors); err != nil {
			return nil, err
		}
	}

	type span struct {
		alloc, free time.Duration
		live        bool
	}
	spans := make([]span, len(tensors))
	events := make([]memEvent, 0, 2*len(tensors))
	for i, tn := range tensors {
		prod := view.Task(tn.Producer)
		if prod == nil {
			continue
		}
		alloc := res.Start[prod.ID]
		free := alloc + res.TaskDuration(prod)
		for _, cid := range tn.Consumers {
			c := view.Task(cid)
			if c == nil {
				continue
			}
			if f := res.Finish(c); f > free {
				free = f
			}
		}
		spans[i] = span{alloc: alloc, free: free, live: true}
		events = append(events,
			memEvent{t: alloc, delta: tn.Bytes, idx: i},
			memEvent{t: free, delta: -tn.Bytes, idx: i},
		)
	}
	// Frees apply before allocs at equal instants (a tensor freed the
	// moment another allocates never overlaps it), then tensor order —
	// fully deterministic, so clone and view profiles match bit for bit.
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if (a.delta < 0) != (b.delta < 0) {
			return a.delta < 0
		}
		return a.idx < b.idx
	})

	d := &DeviceProfile{Device: DeviceGPU, Resident: ann.Resident}
	cur := ann.Resident
	d.Peak, d.PeakStart = cur, 0
	peakIdx := 0
	d.Timeline = append(d.Timeline, Sample{T: 0, Bytes: cur})
	for i := 0; i < len(events); {
		t := events[i].t
		for i < len(events) && events[i].t == t {
			cur += events[i].delta
			i++
		}
		if t == 0 {
			d.Timeline[0].Bytes = cur
		} else {
			d.Timeline = append(d.Timeline, Sample{T: t, Bytes: cur})
		}
		if cur > d.Peak {
			d.Peak = cur
			d.PeakStart = t
			peakIdx = len(d.Timeline) - 1
		}
	}
	if peakIdx+1 < len(d.Timeline) {
		d.PeakEnd = d.Timeline[peakIdx+1].T
	} else {
		d.PeakEnd = res.Makespan
	}
	for i, tn := range tensors {
		sp := spans[i]
		if !sp.live || sp.alloc > d.PeakStart || sp.free <= d.PeakStart {
			continue
		}
		d.PeakTensors = append(d.PeakTensors, TensorUse{
			Layer:      tn.Layer,
			LayerIndex: tn.LayerIndex,
			Round:      tn.Round,
			Bytes:      tn.Bytes,
			Alloc:      sp.alloc,
			Free:       sp.free,
		})
	}
	sort.SliceStable(d.PeakTensors, func(i, j int) bool {
		return d.PeakTensors[i].Bytes > d.PeakTensors[j].Bytes
	})
	return &Profile{Devices: map[string]*DeviceProfile{DeviceGPU: d}}, nil
}

// ProfileOpt runs the full memory-aware prediction pipeline for one
// optimization: apply opt over the baseline (clone-free through a Patch
// when possible), simulate under the opt's carried scheduler, then
// profile with the opt's MemMeasurer rewrites — predicted makespan and
// predicted memory, from one simulation. A nil or no-op opt profiles
// the baseline itself.
func ProfileOpt(g *core.Graph, opt core.Optimization, simOpts ...core.SimOption) (time.Duration, *Profile, error) {
	if sched := core.OptScheduler(opt); sched != nil {
		simOpts = append(simOpts, core.WithScheduler(sched))
	}
	if core.OptIsNoop(opt) {
		ann, err := AnnotationOf(g)
		if err != nil {
			return 0, nil, err
		}
		res, err := g.Simulate(simOpts...)
		if err != nil {
			return 0, nil, err
		}
		prof, err := ComputeProfile(g, res, ann)
		if err != nil {
			return 0, nil, err
		}
		return res.Makespan, prof, nil
	}
	if core.OptNeedsGraph(opt) {
		tg, err := core.ApplyOptimization(g.Clone(), opt)
		if err != nil {
			return 0, nil, err
		}
		ann, err := AnnotationOf(tg)
		if err != nil {
			return 0, nil, err
		}
		res, err := tg.Simulate(simOpts...)
		if err != nil {
			return 0, nil, err
		}
		prof, err := ComputeProfile(tg, res, ann, MeasurersOf(opt)...)
		if err != nil {
			return 0, nil, err
		}
		return res.Makespan, prof, nil
	}
	ann, err := AnnotationOf(g)
	if err != nil {
		return 0, nil, err
	}
	p := core.NewPatch(g)
	if err := opt.Apply(p); err != nil {
		return 0, nil, err
	}
	res, err := p.Simulate(simOpts...)
	if err != nil {
		return 0, nil, err
	}
	prof, err := ComputeProfile(p, res, ann, MeasurersOf(opt)...)
	if err != nil {
		return 0, nil, err
	}
	return res.Makespan, prof, nil
}
