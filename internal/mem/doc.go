// Package mem is the memory-timeline simulation layer: it tracks
// per-device allocated bytes over *simulated* time, turning the
// engine's time-only predictions into memory/throughput trade-off
// answers (the paper's fig10/vDNN story, generalized).
//
// # Model
//
// An Annotation is a per-graph tensor schedule derived from the
// workload metadata the trace already carries (Meta.Gradients holds
// per-layer activation and gradient sizes from the dnn layer sizing):
//
//   - Each layer's output activation is one Tensor per (layer, round).
//     It allocates at the simulated start of its producer — the layer's
//     last forward-phase GPU task — and frees after its last consumer
//     — the layer's backward-phase GPU tasks — finishes in simulated
//     time. A tensor with no live consumers frees at its producer's
//     finish.
//   - Parameters and gradients are Resident: a constant baseline
//     occupying the device for the whole iteration. (Optimizer state
//     is not recorded in trace metadata and is excluded; the static
//     dnn.EstimateMemory footprint therefore upper-bounds the
//     simulated peak.)
//
// Tensors reference tasks by ID, never by pointer, so one annotation —
// memoized on the baseline through the core.Graph MemAnnotation hook —
// serves every view sharing the baseline's ID space: the graph itself,
// an Overlay, a Patch, and any materialized clone.
//
// # Profiles
//
// ComputeProfile is a pure post-pass over a finished SimResult: it
// reads task starts and effective durations through the result (never
// Task fields), sweeps the alloc/free events in deterministic order
// (frees before allocs at equal instants), and emits a Profile — a
// per-device timeline of allocated bytes, the peak, the interval over
// which the peak holds, and attribution of the peak to the tensors
// (layers) live at that instant. Because it only reads, every
// simulation tier gets profiling clone-free: cold replay, overlay,
// patch, custom-scheduled, and incremental re-simulation all produce
// bit-identical SimResults before and after profiling, and the profile
// itself is bit-identical whether computed over a Patch view or over
// the materialized clone.
//
// # Optimizations
//
// Optimizations whose surgery changes activation residency implement
// MemMeasurer: RewriteTensors maps the baseline tensor schedule onto
// the optimized graph (vDNN splits a tensor's residency around its
// offload/prefetch copies; Gist inserts a compressed copy between
// encode and decode). MeasurersOf collects the implementations from an
// optimization or core.Stack, and ProfileOpt runs the full pipeline —
// apply, simulate under the opt's carried scheduler, rewrite, profile
// — reporting predicted peak memory alongside makespan.
//
// MaxBatchFit turns capacity into a first-class constraint: largest
// batch size whose simulated peak fits a byte budget under an
// optimization stack, found by doubling+bisection with every candidate
// evaluated through the sweep tier.
package mem
