package mem

import (
	"fmt"
	"time"

	"daydream/internal/core"
	"daydream/internal/sweep"
)

// DefaultMaxBatch bounds the MaxBatchFit search when the caller passes
// no ceiling.
const DefaultMaxBatch = 4096

// MaxBatchFit answers "what is the largest batch size that fits in
// capacityBytes under optimization stack opt?" — the capacity question
// the static dnn.MaxBatchSize estimates, answered against the
// *simulated* peak instead of a static sum, so memory optimizations
// (vDNN, Gist) raise the answer. build constructs the baseline graph
// for a candidate batch size; each candidate is evaluated as one
// scenario through the sweep tier (clone-free patch/overlay dispatch,
// the opt's carried scheduler, MemMeasurer rewrites) by
// doubling+bisection over [1, maxBatch] (maxBatch < 1 selects
// DefaultMaxBatch). Returns 0 when batch 1 already exceeds capacity.
func MaxBatchFit(capacityBytes int64, build func(batch int) (*core.Graph, error), opt core.Optimization, maxBatch int) (int, error) {
	if capacityBytes <= 0 {
		return 0, fmt.Errorf("mem: MaxBatchFit: capacity must be positive, got %d", capacityBytes)
	}
	if build == nil {
		return 0, fmt.Errorf("mem: MaxBatchFit: nil build function")
	}
	if maxBatch < 1 {
		maxBatch = DefaultMaxBatch
	}
	fits := func(b int) (bool, error) {
		peak, err := PeakAtBatch(build, b, opt)
		if err != nil {
			return false, fmt.Errorf("mem: MaxBatchFit: batch %d: %w", b, err)
		}
		return peak <= capacityBytes, nil
	}
	ok, err := fits(1)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	// Doubling: grow until the first batch that does not fit (hi), then
	// bisect (lo fits, hi does not; hi = maxBatch+1 counts as not-fit).
	lo, hi := 1, 2
	for hi <= maxBatch {
		if ok, err = fits(hi); err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
	}
	if hi > maxBatch {
		hi = maxBatch + 1
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if ok, err = fits(mid); err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// PeakAtBatch builds the graph for one batch size and returns its
// simulated peak memory under opt, evaluated as a single scenario
// through the sweep tier.
func PeakAtBatch(build func(batch int) (*core.Graph, error), batch int, opt core.Optimization) (int64, error) {
	g, err := build(batch)
	if err != nil {
		return 0, err
	}
	ann, err := AnnotationOf(g)
	if err != nil {
		return 0, err
	}
	measurers := MeasurersOf(opt)
	var peak int64
	sc := sweep.Scenario{
		Name: fmt.Sprintf("fit-batch-%d", batch),
		Opt:  opt,
		Measure: func(v core.TaskView, res *core.SimResult) (time.Duration, error) {
			prof, err := ComputeProfile(v, res, ann, measurers...)
			if err != nil {
				return 0, err
			}
			peak = prof.MaxPeak()
			return res.Makespan, nil
		},
	}
	rows, err := sweep.Run(g, []sweep.Scenario{sc}, sweep.Workers(1))
	if err != nil {
		return 0, err
	}
	if rows[0].Err != nil {
		return 0, rows[0].Err
	}
	return peak, nil
}
