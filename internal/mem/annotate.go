package mem

import (
	"fmt"
	"sort"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// Tensor is one tracked allocation: a layer's output activation for one
// round. Tasks are referenced by ID, so the same tensor is meaningful
// over any view or clone sharing the baseline's ID space.
type Tensor struct {
	// Layer and LayerIndex identify the producing layer; Round is the
	// iteration replica (0 for a non-repeated graph).
	Layer      string
	LayerIndex int
	Round      int
	// Bytes is the activation size (dnn layer tensor sizing, via the
	// trace's gradient metadata).
	Bytes int64
	// Producer is the task whose simulated start allocates the tensor:
	// the layer's last forward-phase GPU task for baseline activations;
	// rewriters may repoint it (a vDNN prefetch re-allocates on its own
	// start).
	Producer int
	// Consumers are the tasks that read the tensor — the layer's
	// backward-phase GPU tasks. The tensor frees when the last live
	// consumer finishes; with no live consumers it frees at the
	// producer's finish. Sorted ascending.
	Consumers []int
}

// Annotation is a graph's tensor schedule plus its constant resident
// footprint — the MemAnnotator output attached to the baseline via the
// core.Graph memo hook.
type Annotation struct {
	// Resident is the constant byte load (parameters + gradients,
	// derived from the per-layer gradient sizes) attributed to the
	// device for the whole timeline.
	Resident int64
	// Tensors is the schedule, ordered by (round, layer index).
	Tensors []Tensor
	// span is the baseline's ID span at build time, for mismatch
	// detection in ComputeProfile.
	span int
}

// ActivationBytes returns the total bytes of tracked activations (every
// tensor of round 0), the simulated counterpart of the static
// footprint's Activations column.
func (a *Annotation) ActivationBytes() int64 {
	var n int64
	for _, t := range a.Tensors {
		if t.Round == 0 {
			n += t.Bytes
		}
	}
	return n
}

// Annotate builds the annotation by a single scan of the graph: for
// every layer carrying activation metadata it finds, per round, the
// last forward-phase GPU task (producer) and the backward-phase GPU
// tasks (consumers). Layers without activation bytes, and layers whose
// producer or tasks are absent, contribute no tensor.
func Annotate(g *core.Graph) (*Annotation, error) {
	if len(g.Meta.Gradients) == 0 {
		return nil, fmt.Errorf("mem: graph carries no layer metadata (Meta.Gradients is empty); profile with a layer-mapped trace")
	}
	grads := make(map[int]trace.GradientInfo, len(g.Meta.Gradients))
	var resident int64
	for _, gr := range g.Meta.Gradients {
		grads[gr.Index] = gr
		resident += 2 * gr.Bytes // parameters + gradients
	}

	type key struct{ li, round int }
	prod := make(map[key]*core.Task)
	cons := make(map[key][]int)
	for _, t := range g.Tasks() {
		if !t.OnGPU() || !t.HasLayer || t.LayerIndex < 0 {
			continue
		}
		gr, ok := grads[t.LayerIndex]
		if !ok || gr.ActBytes == 0 {
			continue
		}
		k := key{t.LayerIndex, t.Round}
		switch t.Phase {
		case trace.Forward:
			if cur := prod[k]; cur == nil || t.TracedStart > cur.TracedStart {
				prod[k] = t
			}
		case trace.Backward:
			cons[k] = append(cons[k], t.ID)
		}
	}

	keys := make([]key, 0, len(prod))
	for k := range prod {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].round != keys[j].round {
			return keys[i].round < keys[j].round
		}
		return keys[i].li < keys[j].li
	})
	ann := &Annotation{Resident: resident, span: g.IDSpan()}
	for _, k := range keys {
		gr := grads[k.li]
		ids := append([]int(nil), cons[k]...)
		sort.Ints(ids)
		ann.Tensors = append(ann.Tensors, Tensor{
			Layer:      gr.Layer,
			LayerIndex: k.li,
			Round:      k.round,
			Bytes:      gr.ActBytes,
			Producer:   prod[k].ID,
			Consumers:  ids,
		})
	}
	if len(ann.Tensors) == 0 {
		return nil, fmt.Errorf("mem: no layers with activation metadata (every ActBytes is zero); cannot build a memory timeline")
	}
	return ann, nil
}

// AnnotationOf returns the graph's memoized annotation, building and
// attaching it on first use through the core.Graph MemAnnotation hook.
// Safe for concurrent use on an immutable graph; structural mutations
// invalidate the memo and the next call rebuilds.
func AnnotationOf(g *core.Graph) (*Annotation, error) {
	if v := g.MemAnnotation(); v != nil {
		if ann, ok := v.(*Annotation); ok {
			return ann, nil
		}
	}
	ann, err := Annotate(g)
	if err != nil {
		return nil, err
	}
	g.SetMemAnnotation(ann)
	return ann, nil
}
