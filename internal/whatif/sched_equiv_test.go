package whatif_test

// Scheduled-simulation equivalence suite: custom Schedulers run
// view-generically over the composite Patch view, with zero clones — so
// for every zoo model and every structural what-if with a patch form,
// simulating the patch under a non-default Scheduler must reproduce
// materialize+simulate under the same Scheduler bit for bit: same
// makespan, same start time for every task (baseline and appendix IDs
// alike), same per-thread end times — and without ever paying a
// materialization. A -race sweep drives concurrent scheduled structural
// scenarios over one shared baseline.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/whatif"
)

// lifoEquivSched is a deliberately non-default, frontier-order-sensitive
// policy: it dispatches the most recently enabled task, so any
// divergence between the patch view's frontier evolution and the
// materialized graph's shows up immediately.
type lifoEquivSched struct{}

func (lifoEquivSched) Pick(frontier []*core.Task, _ *core.SchedContext) int {
	return len(frontier) - 1
}

// schedEquivSchedulers returns the policies the suite checks: the LIFO
// order probe and vDNN's compute-preempts-copies policy (which reads
// effective priorities and thread identity through the context).
func schedEquivSchedulers() map[string]core.Scheduler {
	return map[string]core.Scheduler{
		"lifo": lifoEquivSched{},
		"vdnn": whatif.VDNNScheduler{},
	}
}

func TestScheduledPatchEquivalenceAcrossZoo(t *testing.T) {
	for _, name := range dnn.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := profile(t, name, framework.PyTorch)
			for _, tc := range patchEquivCases() {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					base := g
					if tc.base != nil {
						base = tc.base(t, g)
					}
					for schedName, sched := range schedEquivSchedulers() {
						t.Run(schedName, func(t *testing.T) {
							assertScheduledEquivalence(t, base, tc, sched)
						})
					}
				})
			}
		})
	}
}

func assertScheduledEquivalence(t *testing.T, g *core.Graph, tc patchEquivCase, sched core.Scheduler) {
	t.Helper()
	c := g.Clone()
	cloneErr := tc.clone(c)
	p := core.NewPatch(g)
	patchErr := tc.patch(p)
	if (cloneErr == nil) != (patchErr == nil) {
		t.Fatalf("error mismatch: clone=%v patch=%v", cloneErr, patchErr)
	}
	if cloneErr != nil {
		return // both forms reject the workload the same way
	}

	want, err := c.Simulate(core.WithScheduler(sched))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Simulate(core.WithScheduler(sched))
	if err != nil {
		t.Fatal(err)
	}
	// The scheduled path must never have materialized: the whole point
	// is running the policy over the composite view.
	if n := p.Materializations(); n != 0 {
		t.Fatalf("scheduled patch simulation materialized %d times, want 0", n)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("makespan: patch %v, clone %v", got.Makespan, want.Makespan)
	}
	if p.IDSpan() != c.IDSpan() {
		t.Fatalf("ID span: patch %d, clone %d", p.IDSpan(), c.IDSpan())
	}
	for id := 0; id < c.IDSpan(); id++ {
		ct := c.Task(id)
		pt := p.Task(id)
		if (ct == nil) != (pt == nil) {
			t.Fatalf("task %d liveness: patch %v, clone %v", id, pt, ct)
		}
		if ct == nil {
			continue
		}
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: patch %v, clone %v", id, got.Start[id], want.Start[id])
		}
	}
	if len(got.ThreadEnd) != len(want.ThreadEnd) {
		t.Fatalf("thread-end count: patch %d, clone %d", len(got.ThreadEnd), len(want.ThreadEnd))
	}
	for tid, end := range want.ThreadEnd {
		if got.ThreadEnd[tid] != end {
			t.Fatalf("thread %v end: patch %v, clone %v", tid, got.ThreadEnd[tid], end)
		}
	}
}

// TestOptVDNNSchedulerCarriedThroughSweep pins the scheduler-carrying
// form end to end: a sweep scenario with OptVDNN (no SimOptions at all)
// simulates under VDNNScheduler over the worker's patch, and must equal
// the explicit clone path — clone, mutate with VDNN, simulate under the
// same policy. An explicit WithScheduler in SimOptions overrides the
// carried policy.
func TestOptVDNNSchedulerCarriedThroughSweep(t *testing.T) {
	g := profile(t, "vgg19", framework.PyTorch)
	got, err := sweep.Run(g, []sweep.Scenario{{Opt: whatif.OptVDNN(whatif.VDNNOptions{})}})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := whatif.VDNN(c, whatif.VDNNOptions{}); err != nil {
		t.Fatal(err)
	}
	want, err := c.PredictIteration(core.WithScheduler(whatif.VDNNScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value != want {
		t.Fatalf("carried-scheduler sweep %v, explicit clone path %v", got[0].Value, want)
	}
	// Compare honors the carried policy the same way.
	_, pred, err := whatifCompare(g, whatif.OptVDNN(whatif.VDNNOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if pred != want {
		t.Fatalf("Compare with carried scheduler %v, explicit clone path %v", pred, want)
	}
	// An explicit scenario scheduler wins over the carried one.
	over, err := sweep.Run(g, []sweep.Scenario{{
		Opt:        whatif.OptVDNN(whatif.VDNNOptions{}),
		SimOptions: []core.SimOption{core.WithScheduler(core.EarliestStart{})},
	}})
	if err != nil {
		t.Fatal(err)
	}
	def, err := sweep.Run(g, []sweep.Scenario{{
		Name: "default-sched",
		Transform: func(c *core.Graph) (*core.Graph, error) {
			if err := whatif.VDNN(c, whatif.VDNNOptions{}); err != nil {
				return nil, err
			}
			return c, nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if over[0].Value != def[0].Value {
		t.Fatalf("SimOptions override %v, default-policy clone path %v", over[0].Value, def[0].Value)
	}
}

// whatifCompare evaluates an optimization the way daydream.Compare's
// value path does (patch apply + carried scheduler), kept local so the
// internal test does not import the root package.
func whatifCompare(g *core.Graph, opt core.Optimization) (time.Duration, time.Duration, error) {
	base, err := g.PredictIteration()
	if err != nil {
		return 0, 0, err
	}
	var simOpts []core.SimOption
	if s := core.OptScheduler(opt); s != nil {
		simOpts = append(simOpts, core.WithScheduler(s))
	}
	p := core.NewPatch(g)
	if err := opt.Apply(p); err != nil {
		return 0, 0, err
	}
	pred, err := p.PredictIteration(simOpts...)
	return base, pred, err
}

// TestStackedRemovalThenVDNN pins structural composition: vDNN applied
// after removal-form batchnorm restructuring in one Stack must gate its
// copies on tasks that are still live in the effective view — the same
// anchors sequential clone application finds — and predict identically
// under the carried scheduler.
func TestStackedRemovalThenVDNN(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	stacked := core.Stack(
		whatif.OptReconBatchnormRemoval(whatif.ReconBatchnormOptions{}),
		whatif.OptVDNN(whatif.VDNNOptions{}),
	)
	got, err := sweep.Run(g, []sweep.Scenario{{Opt: stacked}})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := core.ApplyGraph(whatif.OptReconBatchnormRemoval(whatif.ReconBatchnormOptions{}), c); err != nil {
		t.Fatal(err)
	}
	if err := whatif.VDNN(c, whatif.VDNNOptions{}); err != nil {
		t.Fatal(err)
	}
	want, err := c.PredictIteration(core.WithScheduler(whatif.VDNNScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value != want {
		t.Fatalf("stacked removal+vdnn patch %v, sequential clone path %v", got[0].Value, want)
	}
}

// TestConcurrentScheduledStructuralSweepRace fans scheduled structural
// patch scenarios — Distributed under LIFO, vDNN under its carried
// policy — over one shared baseline from several goroutines at once.
// Run under -race (the CI does) this verifies the scheduled clone-free
// path never writes to the shared graph, and stays deterministic across
// worker counts.
func TestConcurrentScheduledStructuralSweepRace(t *testing.T) {
	g := profile(t, "vgg19", framework.PyTorch)
	var scenarios []sweep.Scenario
	for i, gbps := range []float64{5, 10, 20, 40} {
		scenarios = append(scenarios, sweep.Scenario{
			Name:       fmt.Sprintf("dist-lifo%d", i),
			Opt:        whatif.OptDistributed(whatif.DistributedOptions{Topology: topo4x1(gbps)}),
			SimOptions: []core.SimOption{core.WithScheduler(lifoEquivSched{})},
		})
	}
	scenarios = append(scenarios, sweep.Scenario{Opt: whatif.OptVDNN(whatif.VDNNOptions{})})
	want, err := sweep.Run(g, scenarios, sweep.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := sweep.Run(g, scenarios, sweep.Workers(3))
			if err != nil {
				t.Error(err)
				return
			}
			for j := range want {
				if got[j].Value != want[j].Value {
					t.Errorf("scenario %d: concurrent %v, sequential %v", j, got[j].Value, want[j].Value)
				}
			}
		}()
	}
	wg.Wait()
}
