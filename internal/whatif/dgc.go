package whatif

import (
	"fmt"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// DGCOptions configures the deep-gradient-compression what-if.
type DGCOptions struct {
	// CompressionRatio is the fraction of gradient traffic that remains
	// after compression (DGC reaches ~0.3% = 0.003).
	CompressionRatio float64
	// KernelCostFactor scales the estimated compression/decompression
	// kernel durations relative to the profile's mean element-wise
	// kernel (top-k selection is more expensive than a pure pointwise
	// op).
	KernelCostFactor float64
}

func (o *DGCOptions) defaults() {
	if o.CompressionRatio == 0 {
		o.CompressionRatio = 0.003
	}
	if o.KernelCostFactor == 0 {
		o.KernelCostFactor = 4
	}
}

// DGC models deep gradient compression (Lin et al.) per the paper's §5.2
// and Algorithm 12, applied to a graph that already carries communication
// tasks (run Distributed first): (i) every all-reduce's duration is scaled
// by the compression ratio, and (ii) compression kernels are inserted
// before, and decompression kernels after, each communication primitive,
// with durations estimated from existing element-wise kernels.
func DGC(g *core.Graph, opts DGCOptions) error {
	opts.defaults()
	reduces := g.Select(core.And(core.KindIs(trace.KindComm), core.NameContains("AllReduce")))
	if len(reduces) == 0 {
		return fmt.Errorf("whatif: DGC: no allReduce tasks in graph (apply Distributed first)")
	}
	ew := g.Select(core.And(core.OnGPUPred, core.NameContains("elementwise")))
	est := core.MeanDuration(ew)
	if est == 0 {
		return fmt.Errorf("whatif: DGC: no element-wise kernels to estimate from")
	}
	kcost := scaleDuration(est, opts.KernelCostFactor)
	for _, r := range reduces {
		r.Duration = scaleDuration(r.Duration, opts.CompressionRatio)
		r.Bytes = int64(float64(r.Bytes) * opts.CompressionRatio)

		// Compression runs on the GPU after the gradients (the
		// all-reduce's compute parents) are ready and gates the
		// transfer.
		// The inserted kernels are not threaded into the stream's
		// fixed sequence: their position is decided at simulation
		// time by thread progress, like any dynamically scheduled
		// kernel (appending them after the weight-update kernels
		// would manufacture a cycle through the all-reduce).
		parents := append([]*core.Task(nil), r.Parents()...)
		children := append([]*core.Task(nil), r.Children()...)
		compress := g.NewTask("dgc_compress_topk", trace.KindKernel, gpuAnchor(parents, children), kcost)
		for _, p := range parents {
			if p.OnGPU() {
				if err := g.AddDependency(p, compress, core.DepCustom); err != nil {
					return err
				}
			}
		}
		if err := g.AddDependency(compress, r, core.DepCustom); err != nil {
			return err
		}

		decompress := g.NewTask("dgc_decompress", trace.KindKernel, compress.Thread, kcost)
		if err := g.AddDependency(r, decompress, core.DepCustom); err != nil {
			return err
		}
		for _, c := range children {
			if err := g.AddDependency(decompress, c, core.DepCustom); err != nil {
				return err
			}
		}
	}
	return nil
}

// gpuAnchor picks a GPU stream for inserted kernels: the stream of any
// GPU-side neighbour, defaulting to stream 7.
func gpuAnchor(parents, children []*core.Task) core.ThreadID {
	for _, t := range parents {
		if t.OnGPU() {
			return t.Thread
		}
	}
	for _, t := range children {
		if t.OnGPU() {
			return t.Thread
		}
	}
	return core.Stream(7)
}
