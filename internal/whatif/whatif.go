// Package whatif implements the paper's optimization models (§5 and the
// appendix): each function transforms a baseline kernel-level dependency
// graph using only the core package's primitives — Select, Scale, Insert,
// Remove and Schedule overrides — exactly as Algorithms 3–12 describe.
// Nothing in this package consults the ground-truth engine; prediction
// errors measured by internal/exp are therefore genuine.
package whatif

import (
	"fmt"
	"sort"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// Per-layer/per-phase queries (last backward GPU task of a layer,
// first forward task of a round, the earliest weight-update node) ride
// the graph's memoized core.LayerPhaseIndex: one O(tasks) build (shared
// read-only across sweep workers on an immutable baseline) replaces the
// O(layers × tasks) linear scans Algorithms 6 and 7 would otherwise
// pay. Transformations that insert layer-less tasks (communication
// primitives) may keep querying through a held index — the snapshot
// stays correct because inserted tasks never match a layer/phase
// filter.

// gradientsByIndex indexes the graph's gradient metadata by layer index.
func gradientsByIndex(g *core.Graph) map[int]trace.GradientInfo {
	out := make(map[int]trace.GradientInfo, len(g.Meta.Gradients))
	for _, gr := range g.Meta.Gradients {
		out[gr.Index] = gr
	}
	return out
}

// sortedLayerIndices returns the layer indices with gradients, ascending.
func sortedLayerIndices(grads map[int]trace.GradientInfo) []int {
	out := make([]int, 0, len(grads))
	for i := range grads {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// requireLayers verifies the graph carries a layer mapping, which most
// transformations need.
func requireLayers(g *core.Graph, who string) error {
	if core.MappedFraction(g) == 0 {
		return fmt.Errorf("whatif: %s requires a task-to-layer mapping (call core.MapLayers first)", who)
	}
	return nil
}

// scaleDuration multiplies a duration by a factor.
func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}
