// Package whatif implements the paper's optimization models (§5 and the
// appendix): each function transforms a baseline kernel-level dependency
// graph using only the core package's primitives — Select, Scale, Insert,
// Remove and Schedule overrides — exactly as Algorithms 3–12 describe.
// Nothing in this package consults the ground-truth engine; prediction
// errors measured by internal/exp are therefore genuine.
package whatif

import (
	"fmt"
	"sort"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// lastBwdGPUTask returns the backward-phase GPU task of the given layer
// index that finishes last in the traced schedule, or nil.
func lastBwdGPUTask(g *core.Graph, layerIndex int) *core.Task {
	var best *core.Task
	for _, t := range g.Tasks() {
		if !t.OnGPU() || !t.HasLayer || t.Phase != trace.Backward || t.LayerIndex != layerIndex {
			continue
		}
		if best == nil || t.TracedStart > best.TracedStart {
			best = t
		}
	}
	return best
}

// firstFwdGPUTask returns the forward-phase GPU task of the given layer
// index (in the given round) that starts first, or nil.
func firstFwdGPUTask(g *core.Graph, layerIndex, round int) *core.Task {
	var best *core.Task
	for _, t := range g.Tasks() {
		if !t.OnGPU() || !t.HasLayer || t.Phase != trace.Forward ||
			t.LayerIndex != layerIndex || t.Round != round {
			continue
		}
		if best == nil || t.TracedStart < best.TracedStart {
			best = t
		}
	}
	return best
}

// earliestWUTask returns the earliest task of the weight-update phase
// (Algorithm 6's "WU ← the earliest node in the weight update phase").
func earliestWUTask(g *core.Graph) *core.Task {
	var best *core.Task
	for _, t := range g.Tasks() {
		if !t.HasLayer || t.Phase != trace.WeightUpdate {
			continue
		}
		if best == nil || t.TracedStart < best.TracedStart {
			best = t
		}
	}
	return best
}

// gradientsByIndex indexes the graph's gradient metadata by layer index.
func gradientsByIndex(g *core.Graph) map[int]trace.GradientInfo {
	out := make(map[int]trace.GradientInfo, len(g.Meta.Gradients))
	for _, gr := range g.Meta.Gradients {
		out[gr.Index] = gr
	}
	return out
}

// sortedLayerIndices returns the layer indices with gradients, ascending.
func sortedLayerIndices(grads map[int]trace.GradientInfo) []int {
	out := make([]int, 0, len(grads))
	for i := range grads {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// requireLayers verifies the graph carries a layer mapping, which most
// transformations need.
func requireLayers(g *core.Graph, who string) error {
	if core.MappedFraction(g) == 0 {
		return fmt.Errorf("whatif: %s requires a task-to-layer mapping (call core.MapLayers first)", who)
	}
	return nil
}

// scaleDuration multiplies a duration by a factor.
func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}
